// Protocol-independent client file system interface.
//
// Workload generators are written against this interface once and run
// unchanged over the Redbud client (sync or delayed commit), the NFS3
// baseline and the PVFS2 baseline — the Figure 3 comparison depends on
// exactly this substitutability.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "sim/future.hpp"

namespace redbud::fsapi {

struct OpenResult {
  net::Status status = net::Status::kOk;
  net::FileId file = net::kInvalidFile;
  std::uint64_t size_bytes = 0;
};

struct ReadResult {
  net::Status status = net::Status::kOk;
  std::vector<storage::ContentToken> tokens;  // one per requested block
};

class FsClient {
 public:
  virtual ~FsClient() = default;

  [[nodiscard]] virtual redbud::sim::SimFuture<net::FileId> create(
      net::DirId dir, std::string name) = 0;
  [[nodiscard]] virtual redbud::sim::SimFuture<OpenResult> open(
      net::DirId dir, std::string name) = 0;
  [[nodiscard]] virtual redbud::sim::SimFuture<net::Status> write(
      net::FileId file, std::uint64_t offset_bytes, std::uint32_t nbytes) = 0;
  [[nodiscard]] virtual redbud::sim::SimFuture<ReadResult> read(
      net::FileId file, std::uint64_t offset_bytes, std::uint32_t nbytes) = 0;
  [[nodiscard]] virtual redbud::sim::SimFuture<net::Status> fsync(
      net::FileId file) = 0;
  [[nodiscard]] virtual redbud::sim::SimFuture<net::Status> close(
      net::FileId file) = 0;
  [[nodiscard]] virtual redbud::sim::SimFuture<net::Status> remove(
      net::DirId dir, std::string name) = 0;

  // Verification hook: the token the most recent write of (file, block)
  // through THIS client should read back.
  [[nodiscard]] virtual storage::ContentToken expected_token(
      net::FileId file, std::uint64_t block) const = 0;
};

}  // namespace redbud::fsapi
