// ShardMap: routing policy of the sharded metadata service.
//
// The metadata service is a cluster of N independent MDS shards, each with
// its own RPC endpoint, metadata disk + journal, and a disjoint slice of
// the space manager's allocation groups. Placement rules:
//
//  * every directory has a *home shard*, a hash of its DirId;
//  * a directory's entries are striped across shards by name hash,
//    anchored at the home shard (the dirfrag idea: one giant directory —
//    the simulated workloads hammer the root — must not serialise on a
//    single shard). create/lookup/remove for the same (dir, name) always
//    resolve to the same shard;
//  * a file lives where it was created: its FileId carries the shard in
//    the high bits (net::shard_of_id), so layout/commit/stat/fsync route
//    without consulting any table.
//
// With nshards == 1 every function returns 0 and ids are untagged — the
// paper's single-MDS testbed is the N=1 special case, bit-for-bit.
#pragma once

#include <cstdint>
#include <string_view>

#include "net/protocol.hpp"

namespace redbud::core {

class ShardMap {
 public:
  explicit ShardMap(std::uint32_t nshards);

  [[nodiscard]] std::uint32_t nshards() const { return nshards_; }

  // Home shard of a directory.
  [[nodiscard]] std::uint32_t shard_of_dir(net::DirId dir) const;

  // Shard owning the (dir, name) entry — the home shard offset by the
  // name's stripe index. Used for create/lookup/remove.
  [[nodiscard]] std::uint32_t shard_of_name(net::DirId dir,
                                            std::string_view name) const;

  // Shard owning a file, straight from the id's high bits.
  [[nodiscard]] std::uint32_t shard_of_file(net::FileId file) const;

  // The id-tag a shard's namespace mints ids with.
  [[nodiscard]] static std::uint64_t id_tag(std::uint32_t shard) {
    return net::shard_tag(shard);
  }

 private:
  std::uint32_t nshards_;
};

}  // namespace redbud::core
