#include "core/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace redbud::core {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_ratio(double v) { return fmt(v, 2) + "x"; }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto line = [&](char fill) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      out << '+' << std::string(widths[i] + 2, fill);
    }
    out << "+\n";
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : headers_[i];
      out << "| " << std::left << std::setw(int(widths[i])) << c << ' ';
    }
    out << "|\n";
  };
  line('-');
  print_row(headers_);
  line('-');
  for (const auto& row : rows_) print_row(row);
  line('-');
}

void print_banner(std::ostream& out, const std::string& title,
                  const std::string& subtitle) {
  out << "\n=== " << title << " ===\n";
  if (!subtitle.empty()) out << subtitle << "\n";
  out << "\n";
}

}  // namespace redbud::core
