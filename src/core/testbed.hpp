// Unified testbed: the same workload runs over any of the four Figure 3
// protocol stacks (PVFS2, NFS3, original Redbud, Redbud + delayed commit)
// through the fsapi::FsClient interface.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baseline/nfs3.hpp"
#include "baseline/pvfs2.hpp"
#include "core/cluster.hpp"
#include "fsapi/fs_client.hpp"

namespace redbud::core {

enum class Protocol : std::uint8_t {
  kPvfs2,
  kNfs3,
  kRedbudSync,     // original Redbud (synchronous ordered writes)
  kRedbudDelayed,  // Redbud with delayed commit
};

[[nodiscard]] const char* protocol_name(Protocol p);

struct TestbedParams {
  Protocol protocol = Protocol::kRedbudDelayed;
  std::uint32_t nclients = 7;
  // Redbud stack configuration (client mode is set from `protocol`).
  ClusterParams redbud;
  // Baseline stacks reuse the same disk/network models for fairness.
  baseline::Nfs3ServerParams nfs_server;
  baseline::Nfs3ClientParams nfs_client;
  baseline::PvfsServerParams pvfs_server;
  baseline::PvfsClientParams pvfs_client;
  std::uint32_t pvfs_io_servers = 4;
};

class Testbed {
 public:
  explicit Testbed(TestbedParams params);
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;
  ~Testbed();

  void start();

  [[nodiscard]] redbud::sim::Simulation& sim();
  [[nodiscard]] std::size_t nclients() const { return fs_.size(); }
  [[nodiscard]] fsapi::FsClient& fs(std::size_t i) { return *fs_[i]; }
  [[nodiscard]] Protocol protocol() const { return params_.protocol; }

  // Partitioned-kernel dispatchers. Baselines are always serial, so these
  // collapse to the plain Simulation calls for them (and for serial
  // Redbud clusters).
  [[nodiscard]] bool parallel() const;
  // The partition simulating client host `i` (== sim() serially).
  [[nodiscard]] redbud::sim::Simulation& client_sim(std::size_t i);
  void run_until(redbud::sim::SimTime t);
  [[nodiscard]] redbud::sim::SimTime now();
  [[nodiscard]] std::uint64_t events_processed();
  void check_failures();

  // Redbud-only accessor (nullptr for the baselines).
  [[nodiscard]] Cluster* cluster() { return cluster_.get(); }

 private:
  TestbedParams params_;

  // Redbud stack.
  std::unique_ptr<Cluster> cluster_;

  // Baseline stacks (own simulation + network + disks).
  struct BaselineStack;
  std::unique_ptr<BaselineStack> baseline_;

  std::vector<fsapi::FsClient*> fs_;
};

}  // namespace redbud::core
