// Crash-consistency checking and orphan collection.
//
// A "crash" in the simulation is simply stopping the run at time T and
// inspecting what is durable: the disks' content stores (writes apply at
// I/O completion) and the MDS's journal-flushed commit log. The
// ordered-writes property the whole paper rests on is:
//
//   every durably committed extent refers to data that was durable at
//   commit time — metadata may never outrun its data.
//
// check_consistency() verifies exactly that; under CommitMode::kSync and
// kDelayed it must always hold, under kUnordered it visibly breaks.
// Orphans — space allocated (provisionally or via delegation) whose
// commit never became durable — are legal ("they can be recycled with
// garbage collection"); collect_orphans() performs that recycling.
#pragma once

#include <cstdint>

#include "core/cluster.hpp"

namespace redbud::core {

struct ConsistencyReport {
  std::uint64_t commits_checked = 0;
  std::uint64_t blocks_checked = 0;
  // Committed blocks whose durable content does not match the committed
  // checksum — the inconsistency ordered writes exist to prevent.
  std::uint64_t inconsistent_blocks = 0;
  std::uint64_t inconsistent_commits = 0;

  [[nodiscard]] bool consistent() const { return inconsistent_blocks == 0; }
};

// Validate every durably-committed block against the disks' durable
// contents, honouring overwrites (only the latest committed version of
// each physical block is checked).
[[nodiscard]] ConsistencyReport check_consistency(mds::MdsServer& mds,
                                                  storage::DiskArray& array);

// Whole-cluster check: every shard's durable commit log against the
// shared array. Shard partitions are disjoint, so per-shard reports sum
// without double counting.
[[nodiscard]] ConsistencyReport check_consistency(Cluster& cluster);

struct GcReport {
  std::uint64_t provisional_extents_freed = 0;
  std::uint64_t provisional_blocks_freed = 0;
  std::uint64_t delegated_chunks_reclaimed = 0;
  std::uint64_t delegated_blocks_reclaimed = 0;
};

// Post-crash garbage collection at the MDS: release provisional
// allocations and outstanding delegation grants (minus their committed
// parts, which stay owned by files).
GcReport collect_orphans(mds::MdsServer& mds);

// Whole-cluster GC: reclaim provisional allocations and outstanding
// grants on every shard. Each shard frees only into its own space
// partition — its grants and provisional extents came from there.
GcReport collect_orphans(Cluster& cluster);

}  // namespace redbud::core
