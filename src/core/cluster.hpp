// Cluster wiring: the paper's Figure 2 testbed in one object.
//
// The metadata service is a cluster of `nshards` independent MDS shards.
// Each shard has its own network node + RPC endpoint, its own metadata
// disk (journal) behind its own I/O scheduler, its own MdsServer, and a
// disjoint slice of every data device for its SpaceManager — shards never
// allocate the same physical block. Clients run ClientFs and route
// operations with the ShardMap; file data goes to the shared FC disk
// array directly.
//
// nshards == 1 (the default) is the paper's single-MDS testbed,
// event-for-event identical to the pre-sharding implementation; the
// singular accessors (mds(), journal(), ...) alias shard 0 so existing
// tests and benches read naturally.
//
// With nthreads > 1 the cluster becomes a partitioned SimDomain: one
// event-loop partition per MDS shard, per client host, and one for the
// disk array, synchronized in conservative time windows bounded by the
// network's minimum cross-node latency (see sim/parallel.hpp). nthreads
// <= 1 (the default) collapses to the single serial Simulation,
// event-for-event identical to the pre-partitioning kernel.
//
// Declaration order matters: the SimDomain (which owns every Simulation)
// must outlive every component, so it is the first stateful member.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "client/client_fs.hpp"
#include "core/shard_map.hpp"
#include "mds/mds_server.hpp"
#include "net/network.hpp"
#include "net/rpc.hpp"
#include "obs/obs.hpp"
#include "sim/parallel.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "storage/disk_array.hpp"

namespace redbud::core {

// How the data array's capacity is divided among metadata shards.
enum class SpacePartition : std::uint8_t {
  // Every device is carved into nshards disjoint block ranges — each
  // shard allocates on every spindle. Keeps single-device testbeds
  // shardable, but on a seek-bound array the N active regions per
  // device cost long head sweeps whenever shards interleave.
  kSliceDevices,
  // Whole devices are dealt out in contiguous runs: shard s owns devices
  // [s * ndisks / nshards, (s + 1) * ndisks / nshards). Shards never
  // share a spindle, so sharding adds no seek interference. Requires
  // ndisks divisible by nshards; falls back to kSliceDevices otherwise.
  kWholeDevices,
};

struct ClusterParams {
  std::uint32_t nclients = 7;  // the paper's eight-node cluster: 7 + MDS
  std::uint32_t nshards = 1;   // metadata shards (1 = the paper's testbed)
  // Worker threads driving the partitioned kernel; <= 1 = serial kernel.
  std::uint32_t nthreads = 1;
  // Keep the partitioned window kernel even at nthreads == 1, so a run's
  // results are bit-identical for ANY worker count (see sim/parallel.hpp).
  // Off by default: the classic serial kernel's event interleaving is
  // pinned by replay goldens.
  bool force_partitioned = false;
  SpacePartition partition = SpacePartition::kSliceDevices;
  net::NetworkParams network;
  storage::ArrayParams array;
  storage::DiskParams metadata_disk;
  mds::SpaceManagerParams space;
  mds::JournalParams journal;
  mds::MdsParams mds;
  client::ClientFsParams client;
  obs::ObsParams obs;
};

class Cluster {
 public:
  explicit Cluster(ClusterParams params);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Spawn every daemon (schedulers, journals, MDS pools, client commit
  // pools). Call once before running.
  void start();

  // The partition owning shard 0 — the whole cluster when serial. Parallel
  // callers drive the cluster through the domain accessors below instead.
  [[nodiscard]] redbud::sim::Simulation& sim() { return domain_.partition(0); }
  [[nodiscard]] redbud::sim::SimDomain& domain() { return domain_; }
  [[nodiscard]] bool parallel() const { return domain_.parallel(); }
  // The partition simulating client host `i` (== sim() serially).
  [[nodiscard]] redbud::sim::Simulation& client_sim(std::size_t i) {
    return *client_sims_[i];
  }
  // Domain-wide driving: advance all partitions to exactly `t`.
  void run_until(redbud::sim::SimTime t) { domain_.run_until(t); }
  [[nodiscard]] redbud::sim::SimTime now() const { return domain_.now(); }
  [[nodiscard]] std::uint64_t events_processed() const {
    return domain_.events_processed();
  }
  void check_failures() const { domain_.check_failures(); }
  [[nodiscard]] std::size_t nclients() const { return clients_.size(); }
  [[nodiscard]] client::ClientFs& client(std::size_t i) {
    return *clients_[i];
  }
  [[nodiscard]] storage::DiskArray& array() { return *array_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] const ClusterParams& params() const { return params_; }
  // The cluster-wide observability bundle: every component registered its
  // instruments here at construction; the tracer holds the span log.
  [[nodiscard]] obs::Obs& obs() { return obs_; }
  [[nodiscard]] const obs::Obs& obs() const { return obs_; }

  // --- sharded metadata service ---------------------------------------------
  [[nodiscard]] std::uint32_t nshards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const ShardMap& shard_map() const { return shard_map_; }
  [[nodiscard]] mds::MdsServer& mds(std::size_t s) { return *shards_[s]->mds; }
  [[nodiscard]] mds::Journal& journal(std::size_t s) {
    return *shards_[s]->journal;
  }
  [[nodiscard]] mds::SpaceManager& space(std::size_t s) {
    return *shards_[s]->space;
  }
  [[nodiscard]] net::RpcEndpoint& mds_endpoint(std::size_t s) {
    return *shards_[s]->endpoint;
  }
  [[nodiscard]] storage::IoScheduler& metadata_scheduler(std::size_t s) {
    return *shards_[s]->meta_sched;
  }

  // Shard-0 aliases: the full service on a single-shard cluster.
  [[nodiscard]] mds::MdsServer& mds() { return mds(0); }
  [[nodiscard]] mds::Journal& journal() { return journal(0); }
  [[nodiscard]] mds::SpaceManager& space() { return space(0); }
  [[nodiscard]] net::RpcEndpoint& mds_endpoint() { return mds_endpoint(0); }
  [[nodiscard]] storage::IoScheduler& metadata_scheduler() {
    return metadata_scheduler(0);
  }

  // The partition simulating the disk array (== sim() serially).
  [[nodiscard]] redbud::sim::Simulation& array_sim() { return *array_sim_; }
  // The partition simulating shard `s` (== sim() serially).
  [[nodiscard]] redbud::sim::Simulation& shard_sim(std::size_t s) {
    return *shard_sims_[s];
  }

  // --- fault injection / failover -------------------------------------------
  // Crash metadata shard `s` (Lustre failover model: the service keeps
  // its NID; a cold standby mounts the same metadata disk). Everything
  // volatile dies: queued and in-flight requests, unflushed journal
  // appends, the RPC reply cache. Must run in shard `s`'s partition.
  void crash_shard(std::uint32_t s);
  // Begin journal-replay failover of shard `s` onto the standby: after
  // the replay I/O completes the service accepts requests again at the
  // same node id. Must run in shard `s`'s partition (the fault injector
  // schedules both calls there).
  void failover_shard(std::uint32_t s);
  [[nodiscard]] bool shard_crashed(std::uint32_t s) const {
    return shards_[s]->crashed;
  }
  [[nodiscard]] std::uint64_t shard_crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t failovers_completed() const {
    return failovers_;
  }
  // Crash-detected -> serving-again, one sample per completed failover.
  [[nodiscard]] redbud::sim::LatencyHistogram& failover_time() {
    return failover_time_;
  }

 private:
  // One metadata shard: endpoint, metadata disk + scheduler, journal,
  // space partition, server.
  struct Shard {
    std::unique_ptr<net::RpcEndpoint> endpoint;
    std::unique_ptr<storage::Disk> meta_disk;
    std::unique_ptr<storage::IoScheduler> meta_sched;
    std::unique_ptr<mds::Journal> journal;
    std::unique_ptr<mds::SpaceManager> space;
    std::unique_ptr<mds::MdsServer> mds;
    bool crashed = false;
  };

  redbud::sim::Process failover_proc(std::uint32_t s);

  ClusterParams params_;
  ShardMap shard_map_;
  // Declared before every component (destroyed after them): components
  // hold non-owning registry views and tracer pointers.
  obs::Obs obs_;
  redbud::sim::SimDomain domain_;
  // Partition assignment (all aliases of partition 0 when serial).
  std::vector<redbud::sim::Simulation*> shard_sims_;
  std::vector<redbud::sim::Simulation*> client_sims_;
  redbud::sim::Simulation* array_sim_ = nullptr;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<storage::DiskArray> array_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<client::ClientFs>> clients_;
  bool started_ = false;
  std::uint64_t crashes_ = 0;
  std::uint64_t failovers_ = 0;
  redbud::sim::LatencyHistogram failover_time_;
};

}  // namespace redbud::core
