// Cluster wiring: the paper's Figure 2 testbed in one object.
//
// One MDS node (RPC over Ethernet, metadata disk for the journal), N
// client nodes running ClientFs, and a shared FC disk array the clients
// write data to directly. Declaration order matters: the Simulation must
// outlive every component, so it is the first member.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "client/client_fs.hpp"
#include "mds/mds_server.hpp"
#include "net/network.hpp"
#include "net/rpc.hpp"
#include "sim/simulation.hpp"
#include "storage/disk_array.hpp"

namespace redbud::core {

struct ClusterParams {
  std::uint32_t nclients = 7;  // the paper's eight-node cluster: 7 + MDS
  net::NetworkParams network;
  storage::ArrayParams array;
  storage::DiskParams metadata_disk;
  mds::SpaceManagerParams space;
  mds::JournalParams journal;
  mds::MdsParams mds;
  client::ClientFsParams client;
};

class Cluster {
 public:
  explicit Cluster(ClusterParams params);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Spawn every daemon (schedulers, journal, MDS pool, client commit
  // pools). Call once before running.
  void start();

  [[nodiscard]] redbud::sim::Simulation& sim() { return sim_; }
  [[nodiscard]] std::size_t nclients() const { return clients_.size(); }
  [[nodiscard]] client::ClientFs& client(std::size_t i) {
    return *clients_[i];
  }
  [[nodiscard]] mds::MdsServer& mds() { return *mds_; }
  [[nodiscard]] storage::DiskArray& array() { return *array_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] mds::Journal& journal() { return *journal_; }
  [[nodiscard]] mds::SpaceManager& space() { return *space_; }
  [[nodiscard]] net::RpcEndpoint& mds_endpoint() { return *mds_endpoint_; }
  [[nodiscard]] storage::IoScheduler& metadata_scheduler() {
    return *meta_sched_;
  }
  [[nodiscard]] const ClusterParams& params() const { return params_; }

 private:
  ClusterParams params_;
  redbud::sim::Simulation sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<storage::DiskArray> array_;
  std::unique_ptr<storage::Disk> meta_disk_;
  std::unique_ptr<storage::IoScheduler> meta_sched_;
  std::unique_ptr<mds::Journal> journal_;
  std::unique_ptr<mds::SpaceManager> space_;
  std::unique_ptr<net::RpcEndpoint> mds_endpoint_;
  std::unique_ptr<mds::MdsServer> mds_;
  std::vector<std::unique_ptr<client::ClientFs>> clients_;
  bool started_ = false;
};

}  // namespace redbud::core
