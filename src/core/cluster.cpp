#include "core/cluster.hpp"

#include <cassert>

namespace redbud::core {

Cluster::Cluster(ClusterParams params) : params_(std::move(params)) {
  network_ = std::make_unique<net::Network>(sim_, params_.network);
  array_ = std::make_unique<storage::DiskArray>(sim_, params_.array);

  // MDS: node + endpoint + metadata disk (journal) + space manager.
  const auto mds_node = network_->add_node();
  mds_endpoint_ = std::make_unique<net::RpcEndpoint>(sim_, *network_, mds_node);
  meta_disk_ = std::make_unique<storage::Disk>(sim_, params_.metadata_disk);
  meta_sched_ = std::make_unique<storage::IoScheduler>(
      sim_, *meta_disk_, params_.array.scheduler);
  journal_ =
      std::make_unique<mds::Journal>(sim_, *meta_sched_, params_.journal);
  space_ = std::make_unique<mds::SpaceManager>(
      params_.array.ndisks, params_.array.disk.total_blocks, params_.space);
  mds_ = std::make_unique<mds::MdsServer>(sim_, *mds_endpoint_, *space_,
                                          *journal_, params_.mds);

  for (std::uint32_t i = 0; i < params_.nclients; ++i) {
    clients_.push_back(std::make_unique<client::ClientFs>(
        sim_, *network_, *mds_endpoint_, *array_, params_.client));
  }
}

void Cluster::start() {
  assert(!started_);
  started_ = true;
  array_->start();
  meta_sched_->start();
  journal_->start();
  mds_->start();
  for (auto& c : clients_) c->start();
}

}  // namespace redbud::core
