#include "core/cluster.hpp"

#include <algorithm>
#include <cassert>

namespace redbud::core {

namespace {
// Conservative lookahead of the partitioned kernel: the smallest latency
// any cross-partition interaction can have. Partitions are joined only by
// the Ethernet switch (link + switch propagation) and the FC fabric.
redbud::sim::SimTime cluster_lookahead(const ClusterParams& p) {
  return std::min(p.network.link_latency + p.network.switch_latency,
                  p.array.fc_latency);
}
}  // namespace

Cluster::Cluster(ClusterParams params)
    : params_(std::move(params)),
      shard_map_(params_.nshards),
      obs_(params_.obs),
      domain_(params_.nthreads, cluster_lookahead(params_),
              params_.force_partitioned) {
  // Partition layout: one event loop per MDS shard, one per client host,
  // one for the disk array behind the FC fabric. A serial domain hands
  // back the same single Simulation for every add_partition() call, so
  // the wiring below covers both modes.
  for (std::uint32_t s = 0; s < params_.nshards; ++s) {
    shard_sims_.push_back(&domain_.add_partition());
  }
  for (std::uint32_t c = 0; c < params_.nclients; ++c) {
    client_sims_.push_back(&domain_.add_partition());
  }
  redbud::sim::Simulation& array_sim = domain_.add_partition();
  array_sim_ = &array_sim;
  if (domain_.parallel()) {
    // Per-partition trace/metrics lanes, merged deterministically at read.
    obs_.tracer.set_lane_count(domain_.nparts());
  }

  if (domain_.parallel()) {
    network_ = std::make_unique<net::Network>(domain_, params_.network);
  } else {
    network_ = std::make_unique<net::Network>(*shard_sims_[0], params_.network);
  }
  array_ = std::make_unique<storage::DiskArray>(array_sim, params_.array);
  array_->bind_domain(&domain_);

  // Metadata shards. Node ids are handed out in shard order before any
  // client node, so a one-shard cluster reproduces the single-MDS node
  // numbering (and hence event ordering) exactly.
  //
  // The data array's capacity is split among shards so they can never
  // hand out overlapping physical blocks — frees and recovery stay
  // shard-local by construction. kSliceDevices carves every device into
  // nshards block ranges; kWholeDevices (when the disk count divides
  // evenly) deals each shard its own contiguous run of spindles instead,
  // so shards do not seek-interfere on a shared head.
  const bool whole_devices =
      params_.partition == SpacePartition::kWholeDevices &&
      params_.array.ndisks % params_.nshards == 0;
  const std::uint32_t devices_per_shard =
      whole_devices ? params_.array.ndisks / params_.nshards
                    : params_.array.ndisks;
  const std::uint64_t span =
      whole_devices ? params_.array.disk.total_blocks
                    : params_.array.disk.total_blocks / params_.nshards;
  assert(span > 0);
  for (std::uint32_t s = 0; s < params_.nshards; ++s) {
    redbud::sim::Simulation& ssim = *shard_sims_[s];
    auto sh = std::make_unique<Shard>();
    const auto node = network_->add_node(ssim);
    sh->endpoint = std::make_unique<net::RpcEndpoint>(ssim, *network_, node);

    auto disk_params = params_.metadata_disk;
    disk_params.seed += s;
    sh->meta_disk = std::make_unique<storage::Disk>(ssim, disk_params);
    sh->meta_sched = std::make_unique<storage::IoScheduler>(
        ssim, *sh->meta_disk, params_.array.scheduler);
    sh->journal =
        std::make_unique<mds::Journal>(ssim, *sh->meta_sched, params_.journal);

    auto space_params = params_.space;
    space_params.seed += s;
    if (whole_devices) {
      space_params.device_base = s * devices_per_shard;
    } else {
      space_params.device_block_offset = std::uint64_t(s) * span;
    }
    sh->space = std::make_unique<mds::SpaceManager>(devices_per_shard, span,
                                                    space_params);

    auto mds_params = params_.mds;
    mds_params.shard = s;
    sh->mds = std::make_unique<mds::MdsServer>(ssim, *sh->endpoint, *sh->space,
                                               *sh->journal, mds_params);

    // Observability: name the shard's track rows and register every
    // shard-side instrument under {shard=s}.
    const std::string sname = "mds shard " + std::to_string(s);
    obs_.tracer.name_track({obs::shard_track(s), 1}, sname, "mds daemons");
    obs_.tracer.name_track({obs::shard_track(s), 2}, sname, "journal");
    const obs::Labels slabels{{"shard", std::to_string(s)}};
    sh->endpoint->set_obs(&obs_, obs::Track{obs::shard_track(s), 1}, slabels);
    sh->mds->set_obs(&obs_);
    sh->journal->set_obs(&obs_, s);
    sh->space->register_metrics(obs_.registry, slabels);
    sh->meta_sched->register_metrics(
        obs_.registry, {{"shard", std::to_string(s)}, {"device", "metadata"}});
    shards_.push_back(std::move(sh));
  }

  std::vector<net::RpcEndpoint*> endpoints;
  endpoints.reserve(shards_.size());
  for (auto& sh : shards_) endpoints.push_back(sh->endpoint.get());

  // One immutable personality shared by the whole fleet; only the client
  // id varies per instance.
  const auto personality =
      std::make_shared<const client::ClientPersonality>(params_.client);
  for (std::uint32_t i = 0; i < params_.nclients; ++i) {
    clients_.push_back(std::make_unique<client::ClientFs>(
        *client_sims_[i], *network_, shard_map_, endpoints, *array_,
        personality, i));
    clients_.back()->set_obs(&obs_);
  }

  // Cluster-level fault accounting, readable by the watchdog's
  // failover-stall detector (crashes that no completed failover answers).
  obs_.registry.register_value("cluster.shard_crashes", {}, &crashes_);
  obs_.registry.register_value("cluster.failovers", {}, &failovers_);
  obs_.registry.register_histogram("cluster.failover_time", {},
                                   &failover_time_);
  // Per-node fabric drop counters: the only series that separates an
  // injected lossy link from ordinary retry noise (a loss-free run
  // retransmits on the 5 ms first-retry timeout yet never drops a frame),
  // so the watchdog's retry-storm detector reads these.
  network_->register_metrics(obs_.registry);

  // Time-series plane: install the off-event probe last, once every
  // component above has registered its instruments. The probe drives the
  // sampler and the incident watchdog off one grid and is strictly
  // passive (see obs/timeseries.hpp, obs/watchdog.hpp) so the event
  // stream is unchanged whether either is on or off. Detectors armed
  // after construction ride the same probe: the thunk re-checks
  // watchdog.enabled() at every grid instant.
  if (obs_.sampler.enabled()) {
    const redbud::sim::SimTime iv = obs_.sampler.interval();
    domain_.set_probe(iv, iv, &obs_, &obs::Obs::probe_thunk);
  }
}

void Cluster::start() {
  assert(!started_);
  started_ = true;
  array_->start();
  for (auto& sh : shards_) {
    sh->meta_sched->start();
    sh->journal->start();
    sh->mds->start();
  }
  for (auto& c : clients_) c->start();
}

void Cluster::crash_shard(std::uint32_t s) {
  Shard& sh = *shards_[s];
  assert(!sh.crashed && "shard crashed twice without failover");
  sh.crashed = true;
  ++crashes_;
  // Order matters: take the endpoint down first so nothing new is
  // accepted while the journal discards unflushed appends and the server
  // marks its daemons to abandon in-flight work.
  sh.endpoint->set_down(true);
  sh.journal->crash();
  sh.mds->crash();
}

void Cluster::failover_shard(std::uint32_t s) {
  assert(shards_[s]->crashed && "failover of a healthy shard");
  shard_sims_[s]->spawn(failover_proc(s));
}

redbud::sim::Process Cluster::failover_proc(std::uint32_t s) {
  Shard& sh = *shards_[s];
  redbud::sim::Simulation& ssim = *shard_sims_[s];
  const redbud::sim::SimTime t0 = ssim.now();
  // Lustre-style failover: the cold standby mounts the crashed shard's
  // metadata disk, replays the journal's active window, then serves at
  // the same NID — clients keep their endpoint pointer and simply see the
  // service answer again. The in-memory image is retained conservatively
  // (executed-but-unflushed mutations survive as unacknowledged state;
  // at-least-once client retries make re-execution idempotent), so
  // replay cost is the I/O, not a state rebuild.
  auto rf = sh.journal->replay();
  co_await rf;
  sh.mds->recover();
  sh.endpoint->set_down(false);
  sh.crashed = false;
  ++failovers_;
  failover_time_.record(ssim.now() - t0);
  if (obs_.tracer.enabled()) {
    const obs::TraceContext ctx = obs_.tracer.mint();
    obs_.tracer.record(obs::Stage::kFailover, ctx, 0,
                       obs::Track{obs::shard_track(s), 1}, t0, ssim.now(), s);
  }
}

}  // namespace redbud::core
