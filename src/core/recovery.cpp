#include "core/recovery.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace redbud::core {

ConsistencyReport check_consistency(mds::MdsServer& mds,
                                    storage::DiskArray& array) {
  ConsistencyReport report;

  // Replay the durable mutation history: the expected durable content of
  // each physical block is whatever the *latest* commit wrote there — and
  // a durable remove retracts the removed file's expectations, because
  // its freed blocks may be legally reallocated and rewritten with
  // not-yet-committed data. Commits and removes share one seq counter
  // stamped in execution order, so a merge by ascending seq reconstructs
  // the shard's namespace history.
  struct Expected {
    storage::ContentToken token;
    std::size_t commit_index;
  };
  std::map<std::pair<std::uint32_t, storage::BlockNo>, Expected> expected;

  const auto& log = mds.durable_commits();
  const auto& removes = mds.durable_removes();
  struct Event {
    std::uint64_t seq;
    bool is_remove;
    std::size_t index;
  };
  std::vector<Event> events;
  events.reserve(log.size() + removes.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    events.push_back({log[i].seq, false, i});
  }
  for (std::size_t i = 0; i < removes.size(); ++i) {
    events.push_back({removes[i].seq, true, i});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });

  for (const Event& ev : events) {
    if (ev.is_remove) {
      for (const auto& e : removes[ev.index].extents) {
        for (std::uint32_t k = 0; k < e.nblocks; ++k) {
          expected.erase({e.addr.device, e.addr.block + k});
        }
      }
      continue;
    }
    const auto& rec = log[ev.index];
    std::size_t bi = 0;
    for (const auto& e : rec.extents) {
      for (std::uint32_t k = 0; k < e.nblocks; ++k, ++bi) {
        if (bi < rec.block_tokens.size()) {
          expected[{e.addr.device, e.addr.block + k}] =
              Expected{rec.block_tokens[bi], ev.index};
        }
      }
    }
  }
  report.commits_checked = log.size();

  std::set<std::size_t> bad_commits;
  for (const auto& [addr, exp] : expected) {
    ++report.blocks_checked;
    const auto durable =
        array.peek({addr.first, addr.second}, 1)[0];
    if (durable != exp.token) {
      ++report.inconsistent_blocks;
      bad_commits.insert(exp.commit_index);
    }
  }
  report.inconsistent_commits = bad_commits.size();
  return report;
}

ConsistencyReport check_consistency(Cluster& cluster) {
  ConsistencyReport total;
  for (std::uint32_t s = 0; s < cluster.nshards(); ++s) {
    const ConsistencyReport r =
        check_consistency(cluster.mds(s), cluster.array());
    total.commits_checked += r.commits_checked;
    total.blocks_checked += r.blocks_checked;
    total.inconsistent_blocks += r.inconsistent_blocks;
    total.inconsistent_commits += r.inconsistent_commits;
  }
  return total;
}

GcReport collect_orphans(mds::MdsServer& mds) {
  GcReport report;

  // 1. Provisional allocations: handed out by layout-get but never
  //    committed. Pure orphans — recycle.
  for (const auto& [file, extents] : mds.provisional()) {
    (void)file;
    for (const auto& [off, e] : extents) {
      (void)off;
      mds.space().free(mds::PhysExtent{e.addr, e.nblocks});
      ++report.provisional_extents_freed;
      report.provisional_blocks_freed += e.nblocks;
    }
  }
  mds.clear_provisional();

  // 2. Delegation grants: the granted chunk minus whatever committed
  //    extents ended up inside it.
  auto grants = mds.take_grants();
  for (const auto& g : grants) {
    const auto dev = g.extent.addr.device;
    const auto lo = g.extent.addr.block;
    const auto hi = lo + g.extent.nblocks;

    // Committed sub-ranges inside this grant, from the live namespace.
    std::vector<std::pair<storage::BlockNo, storage::BlockNo>> used;
    for (const auto& [id, ino] : mds.ns().inodes()) {
      (void)id;
      for (const auto& e : ino.all_extents()) {
        if (e.addr.device != dev) continue;
        const auto b = std::max<storage::BlockNo>(e.addr.block, lo);
        const auto t =
            std::min<storage::BlockNo>(e.addr.block + e.nblocks, hi);
        if (b < t) used.emplace_back(b, t);
      }
    }
    std::sort(used.begin(), used.end());
    // Free the gaps.
    storage::BlockNo cursor = lo;
    for (const auto& [b, t] : used) {
      if (b > cursor) {
        mds.space().free(
            mds::PhysExtent{{dev, cursor}, b - cursor});
        report.delegated_blocks_reclaimed += b - cursor;
      }
      cursor = std::max(cursor, t);
    }
    if (cursor < hi) {
      mds.space().free(mds::PhysExtent{{dev, cursor}, hi - cursor});
      report.delegated_blocks_reclaimed += hi - cursor;
    }
    ++report.delegated_chunks_reclaimed;
  }
  return report;
}

GcReport collect_orphans(Cluster& cluster) {
  GcReport total;
  for (std::uint32_t s = 0; s < cluster.nshards(); ++s) {
    const GcReport r = collect_orphans(cluster.mds(s));
    total.provisional_extents_freed += r.provisional_extents_freed;
    total.provisional_blocks_freed += r.provisional_blocks_freed;
    total.delegated_chunks_reclaimed += r.delegated_chunks_reclaimed;
    total.delegated_blocks_reclaimed += r.delegated_blocks_reclaimed;
  }
  return total;
}

}  // namespace redbud::core
