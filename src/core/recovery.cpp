#include "core/recovery.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace redbud::core {

ConsistencyReport check_consistency(mds::MdsServer& mds,
                                    storage::DiskArray& array) {
  ConsistencyReport report;

  // Replay the durable commit log: the expected durable content of each
  // physical block is whatever the *latest* commit wrote there.
  struct Expected {
    storage::ContentToken token;
    std::size_t commit_index;
  };
  std::map<std::pair<std::uint32_t, storage::BlockNo>, Expected> expected;

  const auto& log = mds.durable_commits();
  for (std::size_t ci = 0; ci < log.size(); ++ci) {
    const auto& rec = log[ci];
    std::size_t bi = 0;
    for (const auto& e : rec.extents) {
      for (std::uint32_t k = 0; k < e.nblocks; ++k, ++bi) {
        if (bi < rec.block_tokens.size()) {
          expected[{e.addr.device, e.addr.block + k}] =
              Expected{rec.block_tokens[bi], ci};
        }
      }
    }
  }
  report.commits_checked = log.size();

  std::set<std::size_t> bad_commits;
  for (const auto& [addr, exp] : expected) {
    ++report.blocks_checked;
    const auto durable =
        array.peek({addr.first, addr.second}, 1)[0];
    if (durable != exp.token) {
      ++report.inconsistent_blocks;
      bad_commits.insert(exp.commit_index);
    }
  }
  report.inconsistent_commits = bad_commits.size();
  return report;
}

GcReport collect_orphans(mds::MdsServer& mds) {
  GcReport report;

  // 1. Provisional allocations: handed out by layout-get but never
  //    committed. Pure orphans — recycle.
  for (const auto& [file, extents] : mds.provisional()) {
    (void)file;
    for (const auto& [off, e] : extents) {
      (void)off;
      mds.space().free(mds::PhysExtent{e.addr, e.nblocks});
      ++report.provisional_extents_freed;
      report.provisional_blocks_freed += e.nblocks;
    }
  }
  mds.clear_provisional();

  // 2. Delegation grants: the granted chunk minus whatever committed
  //    extents ended up inside it.
  auto grants = mds.take_grants();
  for (const auto& g : grants) {
    const auto dev = g.extent.addr.device;
    const auto lo = g.extent.addr.block;
    const auto hi = lo + g.extent.nblocks;

    // Committed sub-ranges inside this grant, from the live namespace.
    std::vector<std::pair<storage::BlockNo, storage::BlockNo>> used;
    for (const auto& [id, ino] : mds.ns().inodes()) {
      (void)id;
      for (const auto& e : ino.all_extents()) {
        if (e.addr.device != dev) continue;
        const auto b = std::max<storage::BlockNo>(e.addr.block, lo);
        const auto t =
            std::min<storage::BlockNo>(e.addr.block + e.nblocks, hi);
        if (b < t) used.emplace_back(b, t);
      }
    }
    std::sort(used.begin(), used.end());
    // Free the gaps.
    storage::BlockNo cursor = lo;
    for (const auto& [b, t] : used) {
      if (b > cursor) {
        mds.space().free(
            mds::PhysExtent{{dev, cursor}, b - cursor});
        report.delegated_blocks_reclaimed += b - cursor;
      }
      cursor = std::max(cursor, t);
    }
    if (cursor < hi) {
      mds.space().free(mds::PhysExtent{{dev, cursor}, hi - cursor});
      report.delegated_blocks_reclaimed += hi - cursor;
    }
    ++report.delegated_chunks_reclaimed;
  }
  return report;
}

}  // namespace redbud::core
