// Fixed-width console tables for the bench harness — every figure's data
// is printed as rows the paper's reader can compare directly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace redbud::core {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);
  void print(std::ostream& out) const;

  // Formatting helpers.
  [[nodiscard]] static std::string fmt(double v, int precision = 2);
  [[nodiscard]] static std::string fmt_ratio(double v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Section banner for bench output.
void print_banner(std::ostream& out, const std::string& title,
                  const std::string& subtitle = "");

}  // namespace redbud::core
