#include "core/shard_map.hpp"

#include <cassert>

namespace redbud::core {

namespace {

// splitmix64 finaliser — cheap, well-mixed, and stable across platforms
// (routing must be identical on every node and every run).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// FNV-1a over the name bytes, then mixed.
std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return mix64(h);
}

}  // namespace

ShardMap::ShardMap(std::uint32_t nshards) : nshards_(nshards) {
  assert(nshards_ >= 1 && nshards_ < net::kMaxShards);
}

std::uint32_t ShardMap::shard_of_dir(net::DirId dir) const {
  if (nshards_ == 1) return 0;
  return static_cast<std::uint32_t>(mix64(dir) % nshards_);
}

std::uint32_t ShardMap::shard_of_name(net::DirId dir,
                                      std::string_view name) const {
  if (nshards_ == 1) return 0;
  const std::uint64_t stripe = hash_name(name);
  return static_cast<std::uint32_t>((mix64(dir) + stripe) % nshards_);
}

std::uint32_t ShardMap::shard_of_file(net::FileId file) const {
  const auto s = net::shard_of_id(file);
  assert(s < nshards_);
  return s;
}

}  // namespace redbud::core
