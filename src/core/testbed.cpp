#include "core/testbed.hpp"

#include <cassert>

namespace redbud::core {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kPvfs2:
      return "PVFS2";
    case Protocol::kNfs3:
      return "NFS3";
    case Protocol::kRedbudSync:
      return "Redbud";
    case Protocol::kRedbudDelayed:
      return "Redbud+DC";
  }
  return "?";
}

// Holds whichever baseline stack is active. Declaration order = teardown
// safety: the Simulation first.
struct Testbed::BaselineStack {
  redbud::sim::Simulation sim;
  std::unique_ptr<net::Network> network;

  // NFS3 pieces.
  std::unique_ptr<storage::Disk> nfs_disk;
  std::unique_ptr<storage::IoScheduler> nfs_sched;
  std::unique_ptr<net::RpcEndpoint> nfs_endpoint;
  std::unique_ptr<baseline::Nfs3Server> nfs_server;
  std::vector<std::unique_ptr<baseline::Nfs3Client>> nfs_clients;

  // PVFS2 pieces.
  struct IoServer {
    std::unique_ptr<storage::Disk> disk;
    std::unique_ptr<storage::IoScheduler> sched;
    std::unique_ptr<net::RpcEndpoint> endpoint;
    std::unique_ptr<baseline::PvfsIoServer> server;
  };
  std::vector<IoServer> pvfs_io;
  std::unique_ptr<net::RpcEndpoint> pvfs_meta_endpoint;
  std::unique_ptr<baseline::PvfsMetaServer> pvfs_meta;
  std::vector<std::unique_ptr<baseline::PvfsClient>> pvfs_clients;
};

Testbed::Testbed(TestbedParams params) : params_(std::move(params)) {
  switch (params_.protocol) {
    case Protocol::kRedbudSync:
    case Protocol::kRedbudDelayed: {
      ClusterParams cp = params_.redbud;
      cp.nclients = params_.nclients;
      cp.client.mode = params_.protocol == Protocol::kRedbudSync
                           ? client::CommitMode::kSync
                           : client::CommitMode::kDelayed;
      cluster_ = std::make_unique<Cluster>(cp);
      for (std::size_t i = 0; i < cluster_->nclients(); ++i) {
        fs_.push_back(&cluster_->client(i));
      }
      break;
    }
    case Protocol::kNfs3: {
      baseline_ = std::make_unique<BaselineStack>();
      auto& b = *baseline_;
      b.network =
          std::make_unique<net::Network>(b.sim, params_.redbud.network);
      const auto server_node = b.network->add_node();
      b.nfs_endpoint =
          std::make_unique<net::RpcEndpoint>(b.sim, *b.network, server_node);
      b.nfs_disk =
          std::make_unique<storage::Disk>(b.sim, params_.redbud.array.disk);
      b.nfs_sched = std::make_unique<storage::IoScheduler>(
          b.sim, *b.nfs_disk, params_.redbud.array.scheduler);
      b.nfs_server = std::make_unique<baseline::Nfs3Server>(
          b.sim, *b.nfs_endpoint, *b.nfs_sched, params_.nfs_server);
      for (std::uint32_t i = 0; i < params_.nclients; ++i) {
        b.nfs_clients.push_back(std::make_unique<baseline::Nfs3Client>(
            b.sim, *b.network, *b.nfs_endpoint, params_.nfs_client));
        fs_.push_back(b.nfs_clients.back().get());
      }
      break;
    }
    case Protocol::kPvfs2: {
      baseline_ = std::make_unique<BaselineStack>();
      auto& b = *baseline_;
      b.network =
          std::make_unique<net::Network>(b.sim, params_.redbud.network);
      const auto meta_node = b.network->add_node();
      b.pvfs_meta_endpoint =
          std::make_unique<net::RpcEndpoint>(b.sim, *b.network, meta_node);
      b.pvfs_meta = std::make_unique<baseline::PvfsMetaServer>(
          b.sim, *b.pvfs_meta_endpoint, params_.pvfs_server);
      std::vector<net::RpcEndpoint*> io_eps;
      for (std::uint32_t i = 0; i < params_.pvfs_io_servers; ++i) {
        BaselineStack::IoServer srv;
        storage::DiskParams dp = params_.redbud.array.disk;
        dp.seed += i;
        srv.disk = std::make_unique<storage::Disk>(b.sim, dp);
        srv.sched = std::make_unique<storage::IoScheduler>(
            b.sim, *srv.disk, params_.redbud.array.scheduler);
        const auto node = b.network->add_node();
        srv.endpoint =
            std::make_unique<net::RpcEndpoint>(b.sim, *b.network, node);
        srv.server = std::make_unique<baseline::PvfsIoServer>(
            b.sim, *srv.endpoint, *srv.sched, params_.pvfs_server);
        b.pvfs_io.push_back(std::move(srv));
        io_eps.push_back(b.pvfs_io.back().endpoint.get());
      }
      for (std::uint32_t i = 0; i < params_.nclients; ++i) {
        b.pvfs_clients.push_back(std::make_unique<baseline::PvfsClient>(
            b.sim, *b.network, *b.pvfs_meta_endpoint, io_eps,
            params_.pvfs_client));
        fs_.push_back(b.pvfs_clients.back().get());
      }
      break;
    }
  }
}

Testbed::~Testbed() = default;

void Testbed::start() {
  if (cluster_) {
    cluster_->start();
    return;
  }
  auto& b = *baseline_;
  if (b.nfs_server) {
    b.nfs_sched->start();
    b.nfs_server->start();
  }
  if (b.pvfs_meta) {
    b.pvfs_meta->start();
    for (auto& srv : b.pvfs_io) {
      srv.sched->start();
      srv.server->start();
    }
  }
}

redbud::sim::Simulation& Testbed::sim() {
  return cluster_ ? cluster_->sim() : baseline_->sim;
}

bool Testbed::parallel() const {
  return cluster_ != nullptr && cluster_->parallel();
}

redbud::sim::Simulation& Testbed::client_sim(std::size_t i) {
  return cluster_ ? cluster_->client_sim(i) : baseline_->sim;
}

void Testbed::run_until(redbud::sim::SimTime t) {
  if (cluster_) {
    cluster_->run_until(t);
  } else {
    baseline_->sim.run_until(t);
  }
}

redbud::sim::SimTime Testbed::now() {
  return cluster_ ? cluster_->now() : baseline_->sim.now();
}

std::uint64_t Testbed::events_processed() {
  return cluster_ ? cluster_->events_processed()
                  : baseline_->sim.events_processed();
}

void Testbed::check_failures() {
  if (cluster_) {
    cluster_->check_failures();
  } else {
    baseline_->sim.check_failures();
  }
}

}  // namespace redbud::core
