#include "mds/journal.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace redbud::mds {

using redbud::sim::Done;
using redbud::sim::Process;
using redbud::sim::SimFuture;
using redbud::sim::SimPromise;
using storage::BlockNo;
using storage::ContentToken;
using storage::IoKind;
using storage::kBlockSize;

Journal::Journal(redbud::sim::Simulation& sim, storage::IoScheduler& device,
                 JournalParams params)
    : sim_(&sim), device_(&device), params_(params), work_(sim) {
  assert(params_.region_blocks > 0);
}

void Journal::start() {
  assert(!started_);
  started_ = true;
  sim_->spawn(flusher());
}

void Journal::set_obs(obs::Obs* obs, std::uint32_t shard) {
  obs_ = obs;
  track_ = obs::Track{obs::shard_track(shard), 2};
  const obs::Labels labels{{"shard", std::to_string(shard)}};
  obs->registry.register_value("journal.records", labels, &records_);
  obs->registry.register_value("journal.flushes", labels, &flushes_);
  obs->registry.register_value("journal.bytes_flushed", labels,
                               &bytes_flushed_);
}

SimFuture<Done> Journal::append(std::size_t bytes, obs::TraceContext ctx) {
  assert(started_ && "Journal::start() not called");
  assert(bytes > 0);
  ++records_;
  pending_bytes_ += bytes;
  SimPromise<Done> p(*sim_);
  auto fut = p.future();
  pending_.push_back(PendingAppend{std::move(p), ctx, sim_->now()});
  work_.notify_all();
  return fut;
}

Process Journal::flusher() {
  for (;;) {
    while (pending_.empty()) co_await work_.wait();

    // Take the whole batch: records arriving during the flush join the
    // next one (group commit).
    auto batch = std::move(pending_);
    pending_.clear();
    const std::size_t bytes = pending_bytes_;
    pending_bytes_ = 0;

    const auto nblocks =
        static_cast<std::uint32_t>(storage::blocks_for_bytes(bytes));
    // Journal writes are sequential within the region, wrapping at the end.
    if (head_ + nblocks > params_.region_blocks) head_ = 0;
    const BlockNo at = params_.region_start + head_;
    head_ += nblocks;

    std::vector<ContentToken> tokens(nblocks, 1);  // journal payload marker
    const std::uint64_t gen = crash_gen_;
    // Two-step await: see the GCC 12 note in disk_array.cpp.
    auto io = device_->submit(IoKind::kWrite, at, nblocks, std::move(tokens));
    co_await io;

    if (gen != crash_gen_) {
      // The host crashed while this flush was in flight: the write may
      // have hit the platter, but the commit record set was torn from the
      // in-memory state that described it. Treat the whole batch as lost;
      // waiters wake and detect the generation bump.
      appends_lost_ += batch.size();
      for (auto& rec : batch) rec.promise.set_value(Done{});
      continue;
    }

    ++flushes_;
    bytes_flushed_ += std::size_t(nblocks) * kBlockSize;
    for (auto& rec : batch) {
      if (obs_ != nullptr && rec.ctx.active()) {
        // One span per record: each shows its own append -> durable wait,
        // all ending at this flush (the group-commit ride-along).
        obs_->tracer.record(obs::Stage::kJournalFsync,
                            obs_->tracer.child(rec.ctx), rec.ctx.span, track_,
                            rec.appended_at, sim_->now(), bytes);
      }
      rec.promise.set_value(Done{});
    }
  }
}

void Journal::crash() {
  ++crash_gen_;
  // Unflushed appends die with the host's memory. Resolve their futures
  // so waiting daemons wake; the generation bump tells them the record
  // never became durable.
  auto lost = std::move(pending_);
  pending_.clear();
  pending_bytes_ = 0;
  appends_lost_ += lost.size();
  for (auto& rec : lost) rec.promise.set_value(Done{});
}

SimFuture<Done> Journal::replay() {
  SimPromise<Done> p(*sim_);
  auto fut = p.future();
  sim_->spawn(replay_proc(std::move(p)));
  return fut;
}

Process Journal::replay_proc(SimPromise<Done> p) {
  // The standby mounts the metadata disk and reads the active journal
  // window back sequentially before it can serve. An empty journal still
  // pays one device round trip (reading the journal superblock).
  const auto window = std::min<std::uint64_t>(
      std::max<storage::BlockNo>(head_, 1), params_.replay_window_blocks);
  const auto nblocks = static_cast<std::uint32_t>(window);
  const BlockNo at =
      params_.region_start + (head_ >= window ? head_ - window : 0);
  auto io = device_->submit(IoKind::kRead, at, nblocks);
  co_await io;
  ++replays_;
  p.set_value(Done{});
}

}  // namespace redbud::mds
