// The metadata server: daemon thread pool draining the RPC queue,
// executing namespace/space operations, journaling mutations, replying
// with a piggybacked load signal.
//
// Matches the paper's Figure 2 architecture: metadata requests arrive over
// Ethernet RPC; metadata durability goes to the MDS's own metadata disk;
// file data never touches the MDS. The number of server daemon threads is
// the Figure 7 sweep variable.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <unordered_map>
#include <vector>

#include "mds/inode.hpp"
#include "mds/journal.hpp"
#include "mds/space_manager.hpp"
#include "net/rpc.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"

namespace redbud::mds {

struct MdsParams {
  // Which shard of the metadata cluster this server is. Minted ids carry
  // the shard in their high bits (net::shard_tag); shard 0 mints the
  // same ids a single-MDS deployment always did.
  std::uint32_t shard = 0;
  // Server daemon threads (Figure 7 sweeps 1 / 8 / 16).
  std::uint32_t ndaemons = 8;
  // Physical cores backing the daemons (the paper's MDS has one).
  std::uint32_t cores = 1;
  // Fractional CPU inflation per extra daemon (context switching, lock
  // contention) — why 16 daemons run slightly worse than 8 in Figure 7.
  double ctx_overhead_per_daemon = 0.012;

  redbud::sim::SimTime cpu_create = redbud::sim::SimTime::micros(60);
  redbud::sim::SimTime cpu_lookup = redbud::sim::SimTime::micros(30);
  redbud::sim::SimTime cpu_layout_get = redbud::sim::SimTime::micros(80);
  redbud::sim::SimTime cpu_commit_entry = redbud::sim::SimTime::micros(40);
  redbud::sim::SimTime cpu_delegate = redbud::sim::SimTime::micros(50);
  redbud::sim::SimTime cpu_remove = redbud::sim::SimTime::micros(60);
  redbud::sim::SimTime cpu_stat = redbud::sim::SimTime::micros(15);

  std::size_t journal_record_bytes = 160;
  bool journal_enabled = true;
};

// A commit that reached stable storage (journal flushed). The recovery
// checker validates these against durable disk contents. `seq` totally
// orders durable mutations on one shard (shared with remove records):
// it is assigned in execution order, so replaying commits and removes by
// ascending seq reconstructs the namespace history exactly.
struct DurableCommitRecord {
  net::FileId file = net::kInvalidFile;
  std::vector<net::Extent> extents;
  std::vector<storage::ContentToken> block_tokens;
  std::uint64_t new_size_bytes = 0;
  redbud::sim::SimTime committed_at;
  std::uint64_t seq = 0;
};

// A remove that reached stable storage. Its extents were freed for reuse,
// so the recovery checker must stop expecting the removed file's committed
// tokens at those addresses — any later content there is legal.
struct DurableRemoveRecord {
  net::FileId file = net::kInvalidFile;
  std::vector<net::Extent> extents;
  redbud::sim::SimTime removed_at;
  std::uint64_t seq = 0;
};

// An active space-delegation grant.
struct DelegationGrant {
  net::NodeId client = 0;
  PhysExtent extent;
};

class MdsServer {
 public:
  MdsServer(redbud::sim::Simulation& sim, net::RpcEndpoint& endpoint,
            SpaceManager& space, Journal& journal, MdsParams params);
  MdsServer(const MdsServer&) = delete;
  MdsServer& operator=(const MdsServer&) = delete;

  // Spawn the daemon pool. Call once.
  void start();

  // Attach the cluster's observability bundle; mds-handle spans land on
  // this shard's daemon row, counters register under {shard=...}.
  void set_obs(obs::Obs* obs);

  [[nodiscard]] Namespace& ns() { return ns_; }
  [[nodiscard]] const Namespace& ns() const { return ns_; }
  [[nodiscard]] SpaceManager& space() { return *space_; }
  [[nodiscard]] const MdsParams& params() const { return params_; }

  // Durable commit log (journal-flushed), for recovery/consistency checks.
  [[nodiscard]] const std::vector<DurableCommitRecord>& durable_commits()
      const {
    return durable_commits_;
  }
  [[nodiscard]] const std::vector<DurableRemoveRecord>& durable_removes()
      const {
    return durable_removes_;
  }
  // Extents handed out by layout-get but not yet committed — the "orphan"
  // candidates ordered writes exist to keep unreachable.
  [[nodiscard]] std::size_t provisional_extent_count() const;
  [[nodiscard]] const std::unordered_map<net::FileId,
                                         std::map<std::uint64_t, net::Extent>>&
  provisional() const {
    return provisional_;
  }
  void clear_provisional() { provisional_.clear(); }
  [[nodiscard]] const std::vector<DelegationGrant>& grants() const {
    return grants_;
  }
  // Recovery-time reclaim: hand the outstanding grants to the caller.
  [[nodiscard]] std::vector<DelegationGrant> take_grants() {
    return std::exchange(grants_, {});
  }

  // --- fault injection / failover -------------------------------------------
  // Crash the server's host: daemons abandon whatever they were doing
  // (the coroutines themselves survive — they check crashed() after every
  // suspension point — but no mutation becomes durable and no reply goes
  // out). The endpoint's and journal's own crash() handle their state;
  // Cluster::crash_shard() sequences all three.
  void crash() { crashed_ = true; }
  // Standby takeover complete (journal replayed): serve again. The
  // in-memory image is conservatively retained — executed-but-unflushed
  // mutations survive as unacknowledged state that at-least-once retries
  // re-execute idempotently.
  void recover() { crashed_ = false; }
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] std::uint64_t requests_abandoned() const {
    return requests_abandoned_;
  }

  // --- statistics -----------------------------------------------------------
  [[nodiscard]] std::uint64_t ops_processed() const { return ops_; }
  [[nodiscard]] std::uint64_t commit_entries_processed() const {
    return commit_entries_;
  }
  [[nodiscard]] std::uint64_t rpcs_processed() const { return rpcs_; }
  [[nodiscard]] std::size_t queue_len() const {
    return endpoint_->incoming_depth();
  }
  [[nodiscard]] redbud::sim::Gauge& queue_gauge() { return queue_gauge_; }

 private:
  // Durable records staged by execute(): pushed to the durable logs only
  // after the covering journal append flushes. Commit entries whose file
  // was already removed are never staged — do_commit skipped them, so
  // they must not create expectations for freed (reusable) blocks.
  struct PendingDurable {
    std::vector<DurableCommitRecord> commits;
    std::vector<DurableRemoveRecord> removes;
  };

  redbud::sim::Process daemon();
  [[nodiscard]] redbud::sim::SimTime cpu_cost(const net::RequestBody& body) const;
  [[nodiscard]] bool needs_journal(const net::RequestBody& body) const;
  [[nodiscard]] net::ResponseBody execute(const net::IncomingRpc& rpc,
                                          PendingDurable& pending);
  [[nodiscard]] bool in_active_grant(const net::Extent& e) const;

  net::ResponseBody do_create(const net::CreateReq& r);
  net::ResponseBody do_lookup(const net::LookupReq& r);
  net::ResponseBody do_layout_get(const net::LayoutGetReq& r);
  net::ResponseBody do_commit(const net::CommitReq& r, PendingDurable& pending);
  net::ResponseBody do_delegate(const net::DelegateReq& r, net::NodeId from);
  net::ResponseBody do_delegate_return(const net::DelegateReturnReq& r);
  net::ResponseBody do_remove(const net::RemoveReq& r, PendingDurable& pending);
  net::ResponseBody do_stat(const net::StatReq& r);

  redbud::sim::Simulation* sim_;
  net::RpcEndpoint* endpoint_;
  SpaceManager* space_;
  Journal* journal_;
  MdsParams params_;
  Namespace ns_;
  redbud::sim::Semaphore cpu_;
  bool started_ = false;
  bool crashed_ = false;
  std::uint64_t requests_abandoned_ = 0;

  // Provisionally allocated (uncommitted) extents, per file by file block.
  std::unordered_map<net::FileId, std::map<std::uint64_t, net::Extent>>
      provisional_;
  std::vector<DelegationGrant> grants_;
  std::vector<DurableCommitRecord> durable_commits_;
  std::vector<DurableRemoveRecord> durable_removes_;
  // Execution-order stamp shared by both durable logs (see
  // DurableCommitRecord::seq). Incremented once per executed RPC.
  std::uint64_t durable_seq_ = 0;

  std::uint64_t ops_ = 0;
  std::uint64_t rpcs_ = 0;
  std::uint64_t commit_entries_ = 0;
  redbud::sim::Gauge queue_gauge_;
  obs::Obs* obs_ = nullptr;
  obs::Track track_;  // shard track group, daemon row
};

}  // namespace redbud::mds
