// Physical space management across devices and allocation groups.
//
// "All storage devices are divided into allocation groups (AGs). ...
// Multiple AGs provide parallel allocations. Across AGs, flexible
// allocation strategies can be applied to the metadata server. The
// default is round-robin."
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mds/alloc_group.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/random.hpp"
#include "storage/types.hpp"

namespace redbud::mds {

struct PhysExtent {
  storage::PhysAddr addr;
  std::uint64_t nblocks = 0;

  friend bool operator==(const PhysExtent&, const PhysExtent&) = default;
};

enum class AgSelect : std::uint8_t {
  kRoundRobin,  // paper default
  kMostFree,
  // Round-robin that rotates across *devices* first, then within a
  // device's AGs. The AG list is device-major, so plain kRoundRobin
  // parks the first ags_per_device allocations on device 0, the next
  // batch on device 1, and so on — on a wide array a workload that only
  // ever needs a handful of delegation chunks never reaches the upper
  // spindles. Striping the cursor spreads consecutive chunk grants over
  // every device, which is what a wide-array deployment wants.
  kDeviceStripe,
};

struct SpaceManagerParams {
  std::uint32_t ags_per_device = 4;
  AllocPolicy within_ag = AllocPolicy::kNextFit;
  AgSelect across_ags = AgSelect::kRoundRobin;
  // Aged-volume model: central allocations rarely land adjacent to the
  // previous one — long-lived AGs are fragmented, and concurrent clients'
  // requests interleave ("the physical addresses allocated for successive
  // I/Os often scatter over a large space", §IV-A). Delegated chunks
  // (alloc_contiguous) are unaffected: carving one contiguous chunk is
  // exactly what delegation buys.
  bool fragmented = false;
  double adjacent_prob = 0.25;  // chance a central alloc continues the last
  std::uint32_t frag_gap_min = 8;
  std::uint32_t frag_gap_max = 64;
  std::uint64_t seed = 0xA110C;
  // First block this manager owns on every device. A sharded metadata
  // cluster carves each device into disjoint [offset, offset + span)
  // slices, one per shard, so shards never allocate the same physical
  // block.
  std::uint64_t device_block_offset = 0;
  // First device this manager owns: extents carry absolute device ids
  // device_base .. device_base + ndevices - 1. A whole-device-partitioned
  // cluster (SpacePartition::kWholeDevices) gives each shard its own
  // contiguous run of spindles.
  std::uint32_t device_base = 0;
};

class SpaceManager {
 public:
  SpaceManager(std::uint32_t ndevices, std::uint64_t blocks_per_device,
               SpaceManagerParams params);

  // Allocate `nblocks`, splitting across free extents / AGs when no single
  // contiguous run exists. Empty result means out of space (all-or-nothing:
  // partial reservations are rolled back).
  [[nodiscard]] std::vector<PhysExtent> alloc(std::uint64_t nblocks);

  // Allocate one contiguous extent or nothing — used for delegation
  // chunks, which must be contiguous to cluster a client's writes.
  [[nodiscard]] std::optional<PhysExtent> alloc_contiguous(
      std::uint64_t nblocks);

  void free(const PhysExtent& extent);

  [[nodiscard]] std::uint64_t free_blocks() const;
  [[nodiscard]] std::uint64_t total_blocks() const { return total_blocks_; }
  [[nodiscard]] std::size_t ag_count() const { return ags_.size(); }
  [[nodiscard]] const AllocGroup& ag(std::size_t i) const { return ags_[i]; }
  [[nodiscard]] bool validate() const;

  [[nodiscard]] std::uint64_t allocs() const { return allocs_; }
  [[nodiscard]] std::uint64_t frees() const { return frees_; }
  [[nodiscard]] std::uint64_t blocks_allocated() const {
    return blocks_allocated_;
  }

  // Register this manager's counters with the central registry.
  void register_metrics(obs::MetricsRegistry& reg,
                        const obs::Labels& labels) const {
    reg.register_value("space.allocs", labels, &allocs_);
    reg.register_value("space.frees", labels, &frees_);
    reg.register_value("space.blocks_allocated", labels, &blocks_allocated_);
  }

 private:
  [[nodiscard]] std::size_t pick_ag(std::uint64_t nblocks);
  // Advance the round-robin cursor and return the AG index it names
  // (identity order for kRoundRobin, device-interleaved for
  // kDeviceStripe).
  [[nodiscard]] std::size_t next_rr();
  [[nodiscard]] AllocGroup* ag_containing(storage::PhysAddr addr,
                                          std::uint64_t nblocks);

  SpaceManagerParams params_;
  std::vector<AllocGroup> ags_;
  std::uint64_t total_blocks_ = 0;
  std::size_t rr_next_ = 0;
  redbud::sim::Rng rng_;
  std::uint64_t allocs_ = 0;  // successful alloc()/alloc_contiguous() calls
  std::uint64_t frees_ = 0;
  std::uint64_t blocks_allocated_ = 0;
};

}  // namespace redbud::mds
