// Allocation group: the MDS's unit of physical space management.
//
// Each AG owns a contiguous block range on one device and tracks free
// space with two B+ trees, exactly as the paper describes ("Each AG has
// its own B+ tree to allocate and deallocate physical space"): one keyed
// by offset (for free/coalesce and near-hint allocation) and one keyed by
// (length, offset) (for best-fit allocation).
#pragma once

#include <cstdint>
#include <optional>

#include "mds/btree.hpp"
#include "storage/types.hpp"

namespace redbud::mds {

struct FreeExtent {
  storage::BlockNo offset = 0;
  std::uint64_t nblocks = 0;
};

enum class AllocPolicy : std::uint8_t {
  // Smallest free extent that fits (reduces fragmentation).
  kBestFit,
  // First free extent at or after the cursor / hint (improves locality of
  // successive allocations — what central MDS allocation degenerates from
  // when several clients interleave).
  kNextFit,
};

class AllocGroup {
 public:
  AllocGroup(std::uint32_t device, storage::BlockNo start,
             std::uint64_t nblocks);

  // Allocate a contiguous extent; nullopt when no single free extent is
  // large enough (the caller may then split the request).
  [[nodiscard]] std::optional<FreeExtent> alloc(std::uint64_t nblocks,
                                                AllocPolicy policy);
  // Allocate preferring space at/after `hint` (falls back to wrap-around).
  [[nodiscard]] std::optional<FreeExtent> alloc_near(std::uint64_t nblocks,
                                                     storage::BlockNo hint);
  // Return an extent to the pool, coalescing with free neighbours.
  void free(storage::BlockNo offset, std::uint64_t nblocks);

  // Largest single free extent (0 when empty).
  [[nodiscard]] std::uint64_t largest_free() const;
  [[nodiscard]] std::uint64_t free_blocks() const { return free_blocks_; }
  [[nodiscard]] std::uint64_t total_blocks() const { return nblocks_; }
  [[nodiscard]] std::uint32_t device() const { return device_; }
  [[nodiscard]] storage::BlockNo cursor() const { return cursor_; }
  [[nodiscard]] storage::BlockNo start() const { return start_; }
  [[nodiscard]] storage::BlockNo end() const { return start_ + nblocks_; }
  [[nodiscard]] std::size_t fragment_count() const { return by_offset_.size(); }

  // Invariant check: the two indexes agree and describe disjoint,
  // non-adjacent (fully coalesced) extents inside the AG bounds.
  [[nodiscard]] bool validate() const;

 private:
  // The by-size index packs (length, offset) into one key; AG-relative
  // offsets and lengths both fit in 32 bits by construction.
  [[nodiscard]] static BPlusTree::Key size_key(std::uint64_t nblocks,
                                               storage::BlockNo offset);

  void remove_free(storage::BlockNo offset, std::uint64_t nblocks);
  void add_free(storage::BlockNo offset, std::uint64_t nblocks);
  [[nodiscard]] std::optional<FreeExtent> take(storage::BlockNo offset,
                                               std::uint64_t have,
                                               std::uint64_t want);

  std::uint32_t device_;
  storage::BlockNo start_;
  std::uint64_t nblocks_;
  std::uint64_t free_blocks_;
  storage::BlockNo cursor_;  // next-fit rotating cursor
  BPlusTree by_offset_;      // offset -> length
  BPlusTree by_size_;        // (length, offset) -> length (value unused)
};

}  // namespace redbud::mds
