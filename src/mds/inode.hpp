// File metadata: inodes with extent maps, and the flat directory
// namespace the MDS serves.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"

namespace redbud::mds {

// Per-file metadata. The extent map is keyed by file block offset; commits
// replace any previously-mapped range they overlap (file overwrite).
class Inode {
 public:
  explicit Inode(net::FileId id) : id_(id) {}

  [[nodiscard]] net::FileId id() const { return id_; }
  [[nodiscard]] std::uint64_t size_bytes() const { return size_bytes_; }
  [[nodiscard]] std::uint64_t version() const { return version_; }

  // Apply a commit: map the extents, trimming/splitting whatever they
  // overlap, and update the size (sizes never shrink on commit).
  void apply_commit(const std::vector<net::Extent>& extents,
                    std::uint64_t new_size_bytes);

  // Extents covering [file_block, file_block + nblocks); trimmed to the
  // requested range. Holes are simply absent from the result.
  [[nodiscard]] std::vector<net::Extent> lookup(std::uint64_t file_block,
                                                std::uint32_t nblocks) const;

  // All extents (for free-on-remove and consistency checking).
  [[nodiscard]] std::vector<net::Extent> all_extents() const;

  [[nodiscard]] std::size_t extent_count() const { return extents_.size(); }

  // Invariant: extents are disjoint and sorted.
  [[nodiscard]] bool validate() const;

 private:
  void insert_trimming(const net::Extent& e);

  net::FileId id_;
  std::uint64_t size_bytes_ = 0;
  std::uint64_t version_ = 0;
  std::map<std::uint64_t, net::Extent> extents_;  // by file_block
};

// The namespace: directories of name -> file, plus the inode table.
//
// `id_tag` is OR-ed into every minted FileId/DirId (high bits) — the
// metadata shard that owns this namespace stamps its identity into the
// ids it hands out, so clients can route by id alone. Tag 0 (shard 0,
// and every pre-sharding caller) mints the same ids as always.
class Namespace {
 public:
  explicit Namespace(std::uint64_t id_tag = 0);

  [[nodiscard]] net::DirId make_dir(net::DirId parent, const std::string& name);

  // Returns kInvalidFile when the name already exists.
  net::FileId create(net::DirId dir, const std::string& name);
  [[nodiscard]] std::optional<net::FileId> lookup(net::DirId dir,
                                                  const std::string& name) const;
  // Removes the file; returns its extents for the space manager to free,
  // or nullopt when absent.
  std::optional<std::vector<net::Extent>> remove(net::DirId dir,
                                                 const std::string& name);

  [[nodiscard]] Inode* inode(net::FileId id);
  [[nodiscard]] const Inode* inode(net::FileId id) const;

  [[nodiscard]] std::size_t file_count() const { return inodes_.size(); }
  [[nodiscard]] std::size_t dir_count() const { return dirs_.size(); }
  [[nodiscard]] const std::unordered_map<net::FileId, Inode>& inodes() const {
    return inodes_;
  }

 private:
  std::unordered_map<net::DirId, std::unordered_map<std::string, net::FileId>>
      dirs_;
  std::unordered_map<net::FileId, Inode> inodes_;
  std::uint64_t id_tag_ = 0;
  net::FileId next_file_ = 1;
  net::DirId next_dir_ = 1;
};

}  // namespace redbud::mds
