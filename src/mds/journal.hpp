// Metadata write-ahead journal with group commit.
//
// The MDS makes metadata mutations durable by appending records to a
// journal region on its metadata disk. Records that arrive while a flush
// is in progress ride the next flush together (group commit), so a busy
// MDS amortises journal I/O across many commits — one of the reasons more
// server daemon threads help in Figure 7.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/obs.hpp"
#include "sim/future.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "storage/io_scheduler.hpp"

namespace redbud::mds {

struct JournalParams {
  storage::BlockNo region_start = 0;
  std::uint64_t region_blocks = (1ull << 30) / storage::kBlockSize;  // 1 GiB
  // Failover replay reads back at most this many journal blocks — the
  // active window since the last checkpoint, not the whole region.
  std::uint32_t replay_window_blocks = 4096;
};

class Journal {
 public:
  Journal(redbud::sim::Simulation& sim, storage::IoScheduler& device,
          JournalParams params);
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Spawn the flusher daemon. Call once.
  void start();

  // Append a record of `bytes`; the future resolves when the record is on
  // stable storage. An active `ctx` records a journal-fsync span (append
  // -> covering group-commit flush durable) parented under the caller.
  [[nodiscard]] redbud::sim::SimFuture<redbud::sim::Done> append(
      std::size_t bytes, obs::TraceContext ctx = {});

  // Attach the cluster's observability bundle; spans land on shard
  // `shard`'s journal row, counters register under {shard=shard}.
  void set_obs(obs::Obs* obs, std::uint32_t shard);

  [[nodiscard]] std::uint64_t records_appended() const { return records_; }
  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }
  [[nodiscard]] std::uint64_t bytes_flushed() const { return bytes_flushed_; }
  // Mean records per flush — the group-commit amortisation factor.
  [[nodiscard]] double records_per_flush() const {
    return flushes_ == 0 ? 0.0 : double(records_) / double(flushes_);
  }

  // --- fault injection / failover -------------------------------------------
  // Crash the journal's host. Unflushed appends (and any flush whose
  // device I/O is still in flight) are discarded: their futures resolve
  // so waiting daemons wake, but the records never became durable —
  // callers MUST compare crash_generation() across the await to learn
  // whether their append survived.
  void crash();
  [[nodiscard]] std::uint64_t crash_generation() const { return crash_gen_; }
  [[nodiscard]] std::uint64_t appends_lost() const { return appends_lost_; }
  [[nodiscard]] std::uint64_t replays() const { return replays_; }

  // Standby takeover: read back the active journal window (sequential
  // I/O on the metadata disk) to rebuild the in-memory image. The future
  // resolves when the replay I/O completes.
  [[nodiscard]] redbud::sim::SimFuture<redbud::sim::Done> replay();

 private:
  redbud::sim::Process flusher();
  redbud::sim::Process replay_proc(
      redbud::sim::SimPromise<redbud::sim::Done> p);

  redbud::sim::Simulation* sim_;
  storage::IoScheduler* device_;
  JournalParams params_;
  struct PendingAppend {
    redbud::sim::SimPromise<redbud::sim::Done> promise;
    obs::TraceContext ctx;            // inert for untraced appends
    redbud::sim::SimTime appended_at; // start of the journal-fsync span
  };

  redbud::sim::Signal work_;
  std::size_t pending_bytes_ = 0;
  std::vector<PendingAppend> pending_;
  storage::BlockNo head_ = 0;  // next journal block, relative to region
  bool started_ = false;
  std::uint64_t records_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t bytes_flushed_ = 0;
  std::uint64_t crash_gen_ = 0;
  std::uint64_t appends_lost_ = 0;
  std::uint64_t replays_ = 0;
  obs::Obs* obs_ = nullptr;
  obs::Track track_;  // shard track group, journal row
};

}  // namespace redbud::mds
