#include "mds/space_manager.hpp"

#include <cassert>

namespace redbud::mds {

SpaceManager::SpaceManager(std::uint32_t ndevices,
                           std::uint64_t blocks_per_device,
                           SpaceManagerParams params)
    : params_(params), rng_(params.seed) {
  assert(ndevices > 0 && params.ags_per_device > 0);
  const std::uint64_t per_ag = blocks_per_device / params.ags_per_device;
  assert(per_ag > 0);
  for (std::uint32_t d = 0; d < ndevices; ++d) {
    for (std::uint32_t a = 0; a < params.ags_per_device; ++a) {
      ags_.emplace_back(
          params.device_base + d,
          params.device_block_offset + storage::BlockNo(a) * per_ag, per_ag);
      total_blocks_ += per_ag;
    }
  }
}

std::size_t SpaceManager::next_rr() {
  const std::size_t j = rr_next_++;
  if (params_.across_ags == AgSelect::kDeviceStripe) {
    // AGs are device-major; remap the cursor so consecutive grants walk
    // the devices before revisiting a device's next AG.
    const std::size_t apd = params_.ags_per_device;
    const std::size_t ndev = ags_.size() / apd;
    return (j % ndev) * apd + (j / ndev) % apd;
  }
  return j % ags_.size();
}

std::size_t SpaceManager::pick_ag(std::uint64_t nblocks) {
  if (params_.across_ags == AgSelect::kMostFree) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < ags_.size(); ++i) {
      if (ags_[i].free_blocks() > ags_[best].free_blocks()) best = i;
    }
    return best;
  }
  // Round-robin over AGs that can plausibly serve the request.
  for (std::size_t tried = 0; tried < ags_.size(); ++tried) {
    const std::size_t i = next_rr();
    if (ags_[i].free_blocks() >= nblocks) return i;
  }
  return rr_next_ % ags_.size();
}

std::vector<PhysExtent> SpaceManager::alloc(std::uint64_t nblocks) {
  assert(nblocks > 0);
  std::vector<PhysExtent> out;
  std::uint64_t remaining = nblocks;
  std::size_t agi = pick_ag(nblocks);

  for (std::size_t hops = 0; remaining > 0 && hops <= ags_.size(); ) {
    AllocGroup& ag = ags_[agi];
    // Grab the largest piece this AG can give, up to what we still need.
    const std::uint64_t chunk = std::min(remaining, ag.largest_free());
    if (chunk == 0) {
      agi = (agi + 1) % ags_.size();
      ++hops;
      continue;
    }
    std::optional<FreeExtent> got;
    if (params_.fragmented && !rng_.bernoulli(params_.adjacent_prob)) {
      // Aged volume: skip a fragmentation gap past the cursor, so
      // back-to-back central allocations are rarely block-adjacent.
      const auto gap = std::uint64_t(rng_.uniform_int(
          params_.frag_gap_min, params_.frag_gap_max));
      got = ag.alloc_near(chunk, ag.cursor() + gap);
      if (!got) got = ag.alloc(chunk, params_.within_ag);
    } else {
      got = ag.alloc(chunk, params_.within_ag);
    }
    assert(got);
    out.push_back(PhysExtent{{ag.device(), got->offset}, got->nblocks});
    remaining -= got->nblocks;
    hops = 0;  // progress resets the give-up counter
  }

  if (remaining > 0) {
    for (const auto& e : out) free(e);
    return {};
  }
  ++allocs_;
  blocks_allocated_ += nblocks;
  return out;
}

std::optional<PhysExtent> SpaceManager::alloc_contiguous(
    std::uint64_t nblocks) {
  assert(nblocks > 0);
  for (std::size_t tried = 0; tried < ags_.size(); ++tried) {
    const std::size_t i = next_rr();
    if (ags_[i].largest_free() >= nblocks) {
      auto got = ags_[i].alloc(nblocks, params_.within_ag);
      assert(got);
      ++allocs_;
      blocks_allocated_ += got->nblocks;
      return PhysExtent{{ags_[i].device(), got->offset}, got->nblocks};
    }
  }
  return std::nullopt;
}

AllocGroup* SpaceManager::ag_containing(storage::PhysAddr addr,
                                        std::uint64_t nblocks) {
  for (auto& ag : ags_) {
    if (ag.device() == addr.device && addr.block >= ag.start() &&
        addr.block + nblocks <= ag.end()) {
      return &ag;
    }
  }
  return nullptr;
}

void SpaceManager::free(const PhysExtent& extent) {
  AllocGroup* ag = ag_containing(extent.addr, extent.nblocks);
  assert(ag && "freeing an extent that crosses AG boundaries or is foreign");
  ag->free(extent.addr.block, extent.nblocks);
  ++frees_;
}

std::uint64_t SpaceManager::free_blocks() const {
  std::uint64_t n = 0;
  for (const auto& ag : ags_) n += ag.free_blocks();
  return n;
}

bool SpaceManager::validate() const {
  for (const auto& ag : ags_) {
    if (!ag.validate()) return false;
  }
  return true;
}

}  // namespace redbud::mds
