#include "mds/mds_server.hpp"

#include <algorithm>
#include <cassert>

namespace redbud::mds {

using net::ResponseBody;
using net::Status;
using redbud::sim::Process;
using redbud::sim::SimTime;

MdsServer::MdsServer(redbud::sim::Simulation& sim, net::RpcEndpoint& endpoint,
                     SpaceManager& space, Journal& journal, MdsParams params)
    : sim_(&sim),
      endpoint_(&endpoint),
      space_(&space),
      journal_(&journal),
      params_(params),
      ns_(net::shard_tag(params.shard)),
      cpu_(sim, params.cores) {
  assert(params_.ndaemons > 0 && params_.cores > 0);
  assert(params_.shard < net::kMaxShards);
}

void MdsServer::set_obs(obs::Obs* obs) {
  obs_ = obs;
  track_ = obs::Track{obs::shard_track(params_.shard), 1};
  const obs::Labels labels{{"shard", std::to_string(params_.shard)}};
  obs->registry.register_value("mds.ops", labels, &ops_);
  obs->registry.register_value("mds.rpcs", labels, &rpcs_);
  obs->registry.register_value("mds.commit_entries", labels, &commit_entries_);
  obs->registry.register_gauge("mds.queue_len", labels, &queue_gauge_);
}

void MdsServer::start() {
  assert(!started_);
  started_ = true;
  for (std::uint32_t i = 0; i < params_.ndaemons; ++i) {
    sim_->spawn(daemon());
  }
}

SimTime MdsServer::cpu_cost(const net::RequestBody& body) const {
  struct Cost {
    const MdsParams& p;
    SimTime operator()(const net::CreateReq&) const { return p.cpu_create; }
    SimTime operator()(const net::LookupReq&) const { return p.cpu_lookup; }
    SimTime operator()(const net::LayoutGetReq&) const {
      return p.cpu_layout_get;
    }
    SimTime operator()(const net::CommitReq& r) const {
      return p.cpu_commit_entry * std::int64_t(std::max<std::size_t>(
                                      1, r.entries.size()));
    }
    SimTime operator()(const net::DelegateReq&) const { return p.cpu_delegate; }
    SimTime operator()(const net::DelegateReturnReq&) const {
      return p.cpu_delegate;
    }
    SimTime operator()(const net::RemoveReq&) const { return p.cpu_remove; }
    SimTime operator()(const net::StatReq&) const { return p.cpu_stat; }
    // Baseline-only ops are not served by the Redbud MDS.
    SimTime operator()(const net::NfsWriteReq&) const { return p.cpu_stat; }
    SimTime operator()(const net::NfsCommitReq&) const { return p.cpu_stat; }
    SimTime operator()(const net::NfsReadReq&) const { return p.cpu_stat; }
    SimTime operator()(const net::PvfsIoReq&) const { return p.cpu_stat; }
  };
  return std::visit(Cost{params_}, body);
}

bool MdsServer::needs_journal(const net::RequestBody& body) const {
  if (!params_.journal_enabled) return false;
  return std::holds_alternative<net::CreateReq>(body) ||
         std::holds_alternative<net::CommitReq>(body) ||
         std::holds_alternative<net::RemoveReq>(body) ||
         std::holds_alternative<net::DelegateReq>(body) ||
         std::holds_alternative<net::DelegateReturnReq>(body);
}

Process MdsServer::daemon() {
  for (;;) {
    queue_gauge_.set(sim_->now(), double(endpoint_->incoming_depth()));
    net::IncomingRpc rpc = co_await endpoint_->incoming().recv();
    if (crashed_) {
      // The channel is drained at crash, but a request can slip between
      // the recv wake-up and the crash flag: it dies with the host.
      ++requests_abandoned_;
      continue;
    }
    ++rpcs_;
    const SimTime recv_at = sim_->now();
    // Server-side span: dequeue -> reply issued, a child of the wire span
    // the request arrived under. Journal appends parent under it in turn.
    obs::TraceContext mctx;
    if (obs_ != nullptr && rpc.ctx.active()) mctx = obs_->tracer.child(rpc.ctx);

    // CPU: daemons beyond the core count time-share; extra daemons add a
    // small context-switch inflation.
    co_await cpu_.acquire();
    const double inflation =
        1.0 + params_.ctx_overhead_per_daemon * double(params_.ndaemons - 1);
    co_await sim_->delay(cpu_cost(rpc.body) * inflation);
    cpu_.release();
    if (crashed_) {
      // Host died while the request was on CPU: nothing executed.
      ++requests_abandoned_;
      continue;
    }

    const bool journal = needs_journal(rpc.body);
    // execute() runs without suspension, so stamping seq right after it
    // returns orders the records exactly as the mutations were applied —
    // even with several daemons interleaving at their co_await points.
    PendingDurable pending;
    ResponseBody resp = execute(rpc, pending);
    const std::uint64_t seq = durable_seq_++;

    // A remove frees its blocks inside execute(), so the checker must see
    // it from that instant — not from journal flush. Otherwise a crash in
    // the execute→flush window keeps expectations for blocks that were
    // already reallocated and legally rewritten.
    for (auto& rec : pending.removes) {
      rec.removed_at = sim_->now();
      rec.seq = seq;
      durable_removes_.push_back(std::move(rec));
    }

    if (journal) {
      std::size_t bytes = params_.journal_record_bytes;
      if (const auto* c = std::get_if<net::CommitReq>(&rpc.body)) {
        bytes = params_.journal_record_bytes * std::max<std::size_t>(
                                                   1, c->entries.size());
      }
      const std::uint64_t jgen = journal_->crash_generation();
      co_await journal_->append(bytes, mctx);
      if (jgen != journal_->crash_generation()) {
        // Crashed before the flush: the executed mutations never became
        // durable and no reply goes out. The in-memory image keeps them
        // (the standby conservatively retains it), so the client's
        // retransmit after failover re-executes idempotently.
        ++requests_abandoned_;
        continue;
      }
      // Journal flushed: the staged mutations are now durable; record
      // them for the recovery checker.
      for (auto& rec : pending.commits) {
        rec.committed_at = sim_->now();
        rec.seq = seq;
        durable_commits_.push_back(std::move(rec));
      }
    }

    // Piggyback the current load on commit replies.
    if (auto* cr = std::get_if<net::CommitResp>(&resp)) {
      cr->mds_queue_len =
          static_cast<std::uint32_t>(endpoint_->incoming_depth());
    }
    if (mctx.active()) {
      obs_->tracer.record(obs::Stage::kMdsHandle, mctx, rpc.ctx.span, track_,
                          recv_at, sim_->now(), ops_);
    }
    endpoint_->reply(rpc, std::move(resp));
  }
}

ResponseBody MdsServer::execute(const net::IncomingRpc& rpc,
                                PendingDurable& pending) {
  ++ops_;
  struct Exec {
    MdsServer& s;
    net::NodeId from;
    PendingDurable& pending;
    ResponseBody operator()(const net::CreateReq& r) { return s.do_create(r); }
    ResponseBody operator()(const net::LookupReq& r) { return s.do_lookup(r); }
    ResponseBody operator()(const net::LayoutGetReq& r) {
      return s.do_layout_get(r);
    }
    ResponseBody operator()(const net::CommitReq& r) {
      return s.do_commit(r, pending);
    }
    ResponseBody operator()(const net::DelegateReq& r) {
      return s.do_delegate(r, from);
    }
    ResponseBody operator()(const net::DelegateReturnReq& r) {
      return s.do_delegate_return(r);
    }
    ResponseBody operator()(const net::RemoveReq& r) {
      return s.do_remove(r, pending);
    }
    ResponseBody operator()(const net::StatReq& r) { return s.do_stat(r); }
    ResponseBody operator()(const net::NfsWriteReq&) {
      return net::NfsWriteResp{Status::kNoEnt};
    }
    ResponseBody operator()(const net::NfsCommitReq&) {
      return net::NfsCommitResp{Status::kNoEnt};
    }
    ResponseBody operator()(const net::NfsReadReq&) {
      return net::NfsReadResp{Status::kNoEnt, {}};
    }
    ResponseBody operator()(const net::PvfsIoReq&) {
      return net::PvfsIoResp{Status::kNoEnt, {}};
    }
  };
  return std::visit(Exec{*this, rpc.from, pending}, rpc.body);
}

ResponseBody MdsServer::do_create(const net::CreateReq& r) {
  const net::FileId id = ns_.create(r.dir, r.name);
  if (id == net::kInvalidFile) {
    // Duplicate name. Return the existing id: a retransmitted create whose
    // first attempt executed but whose reply was lost can treat this as
    // success (at-least-once idempotency); first-attempt callers still see
    // kExists and report the collision.
    const auto existing = ns_.lookup(r.dir, r.name);
    return net::CreateResp{Status::kExists,
                           existing ? *existing : net::kInvalidFile};
  }
  return net::CreateResp{Status::kOk, id};
}

ResponseBody MdsServer::do_lookup(const net::LookupReq& r) {
  auto id = ns_.lookup(r.dir, r.name);
  if (!id) return net::LookupResp{Status::kNoEnt, net::kInvalidFile, 0};
  const Inode* ino = ns_.inode(*id);
  assert(ino);
  return net::LookupResp{Status::kOk, *id, ino->size_bytes()};
}

ResponseBody MdsServer::do_layout_get(const net::LayoutGetReq& r) {
  Inode* ino = ns_.inode(r.file);
  if (!ino) return net::LayoutGetResp{Status::kStale, {}};

  net::LayoutGetResp resp;
  resp.extents = ino->lookup(r.file_block, r.nblocks);
  if (!r.allocate) return resp;

  // Merge in provisional extents and allocate holes.
  auto& prov = provisional_[r.file];
  for (const auto& [off, e] : prov) {
    if (off < r.file_block + r.nblocks && e.end_block() > r.file_block) {
      resp.extents.push_back(e);
    }
  }
  std::sort(resp.extents.begin(), resp.extents.end(),
            [](const net::Extent& a, const net::Extent& b) {
              return a.file_block < b.file_block;
            });

  // Walk the requested range, allocating what is still unmapped.
  std::uint64_t cursor = r.file_block;
  const std::uint64_t end = r.file_block + r.nblocks;
  std::vector<net::Extent> fresh;
  for (const auto& e : resp.extents) {
    if (e.file_block > cursor) {
      const auto hole = e.file_block - cursor;
      auto pieces = space_->alloc(hole);
      if (pieces.empty()) return net::LayoutGetResp{Status::kNoSpace, {}};
      for (const auto& pe : pieces) {
        net::Extent ne{cursor, static_cast<std::uint32_t>(pe.nblocks),
                       pe.addr};
        fresh.push_back(ne);
        cursor += pe.nblocks;
      }
    }
    cursor = std::max(cursor, e.end_block());
  }
  if (cursor < end) {
    auto pieces = space_->alloc(end - cursor);
    if (pieces.empty()) return net::LayoutGetResp{Status::kNoSpace, {}};
    for (const auto& pe : pieces) {
      net::Extent ne{cursor, static_cast<std::uint32_t>(pe.nblocks), pe.addr};
      fresh.push_back(ne);
      cursor += pe.nblocks;
    }
  }
  for (const auto& ne : fresh) {
    prov.emplace(ne.file_block, ne);
    resp.extents.push_back(ne);
  }
  std::sort(resp.extents.begin(), resp.extents.end(),
            [](const net::Extent& a, const net::Extent& b) {
              return a.file_block < b.file_block;
            });
  return resp;
}

ResponseBody MdsServer::do_commit(const net::CommitReq& r,
                                  PendingDurable& pending) {
  for (const auto& entry : r.entries) {
    ++commit_entries_;
    Inode* ino = ns_.inode(entry.file);
    if (!ino) continue;  // file was removed while the commit was in flight
    ino->apply_commit(entry.extents, entry.new_size_bytes);
    // Committed extents are no longer provisional.
    if (auto it = provisional_.find(entry.file); it != provisional_.end()) {
      for (const auto& e : entry.extents) it->second.erase(e.file_block);
      if (it->second.empty()) provisional_.erase(it);
    }
    pending.commits.push_back(DurableCommitRecord{
        entry.file, entry.extents, entry.block_tokens, entry.new_size_bytes,
        {}, 0});
  }
  return net::CommitResp{Status::kOk, 0};
}

ResponseBody MdsServer::do_delegate(const net::DelegateReq& r,
                                    net::NodeId from) {
  auto chunk = space_->alloc_contiguous(r.nblocks);
  if (!chunk) return net::DelegateResp{Status::kNoSpace, {}, 0};
  grants_.push_back(DelegationGrant{from, *chunk});
  return net::DelegateResp{Status::kOk, chunk->addr, chunk->nblocks};
}

ResponseBody MdsServer::do_delegate_return(const net::DelegateReturnReq& r) {
  // Free the returned tail and shrink/drop the covering grant.
  for (auto it = grants_.begin(); it != grants_.end(); ++it) {
    const auto& g = it->extent;
    if (g.addr.device == r.start.device && r.start.block >= g.addr.block &&
        r.start.block + r.nblocks <= g.addr.block + g.nblocks) {
      if (r.nblocks > 0) {
        space_->free(PhysExtent{r.start, r.nblocks});
      }
      if (r.start.block == g.addr.block && r.nblocks == g.nblocks) {
        grants_.erase(it);
      } else {
        it->extent.nblocks -= r.nblocks;
      }
      return net::DelegateResp{Status::kOk, {}, 0};
    }
  }
  return net::DelegateResp{Status::kStale, {}, 0};
}

bool MdsServer::in_active_grant(const net::Extent& e) const {
  for (const auto& g : grants_) {
    if (g.extent.addr.device == e.addr.device &&
        e.addr.block >= g.extent.addr.block &&
        e.addr.block + e.nblocks <=
            g.extent.addr.block + g.extent.nblocks) {
      return true;
    }
  }
  return false;
}

ResponseBody MdsServer::do_remove(const net::RemoveReq& r,
                                  PendingDurable& pending) {
  auto id = ns_.lookup(r.dir, r.name);
  auto extents = ns_.remove(r.dir, r.name);
  if (!extents) return net::RemoveResp{Status::kNoEnt};
  if (id) provisional_.erase(*id);
  pending.removes.push_back(DurableRemoveRecord{
      id ? *id : net::kInvalidFile, *extents, {}, 0});
  for (const auto& e : *extents) {
    // Space inside an active delegation grant belongs to the client's
    // local pool; it is reclaimed when the grant is returned, not here.
    if (in_active_grant(e)) continue;
    space_->free(PhysExtent{e.addr, e.nblocks});
  }
  return net::RemoveResp{Status::kOk};
}

ResponseBody MdsServer::do_stat(const net::StatReq& r) {
  const Inode* ino = ns_.inode(r.file);
  if (!ino) return net::StatResp{Status::kNoEnt, 0};
  return net::StatResp{Status::kOk, ino->size_bytes()};
}

std::size_t MdsServer::provisional_extent_count() const {
  std::size_t n = 0;
  for (const auto& [_, m] : provisional_) n += m.size();
  return n;
}

}  // namespace redbud::mds
