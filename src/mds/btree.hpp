// B+ tree keyed by 64-bit integers.
//
// The paper's MDS manages free space with one B+ tree per allocation
// group. This is a real B+ tree — sorted internal nodes, linked leaves,
// split/borrow/merge rebalancing — used twice by each allocation group:
// keyed by extent offset (for coalescing) and by (length, offset) (for
// best-fit lookup). validate() checks the full structural invariant set
// and backs the property tests.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace redbud::mds {

class BPlusTree {
 public:
  using Key = std::uint64_t;
  using Value = std::uint64_t;

  // Max keys per node. Small enough that rebalancing paths are exercised
  // constantly by the tests; large enough to keep trees shallow.
  static constexpr std::size_t kMaxKeys = 16;
  static constexpr std::size_t kMinKeys = kMaxKeys / 2;

  BPlusTree();
  ~BPlusTree() = default;
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;

  // Insert a new key; returns false (and leaves the tree unchanged) when
  // the key already exists.
  bool insert(Key key, Value value);
  // Overwrite an existing key's value; returns false when absent.
  bool update(Key key, Value value);
  // Remove a key; returns false when absent.
  bool erase(Key key);

  [[nodiscard]] std::optional<Value> find(Key key) const;
  // Smallest entry with key >= `key`.
  [[nodiscard]] std::optional<std::pair<Key, Value>> lower_bound(Key key) const;
  // Largest entry with key <= `key`.
  [[nodiscard]] std::optional<std::pair<Key, Value>> floor(Key key) const;
  [[nodiscard]] std::optional<std::pair<Key, Value>> min() const;
  [[nodiscard]] std::optional<std::pair<Key, Value>> max() const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t height() const;
  [[nodiscard]] std::size_t node_count() const;

  // Full in-order scan via the leaf chain.
  [[nodiscard]] std::vector<std::pair<Key, Value>> items() const;

  // Structural invariants: key ordering, separator correctness, fill
  // factors, uniform leaf depth, leaf-chain consistency. Used by tests.
  [[nodiscard]] bool validate() const;

 private:
  struct Node {
    bool leaf = true;
    std::vector<Key> keys;
    std::vector<std::unique_ptr<Node>> children;  // internal only
    std::vector<Value> values;                    // leaf only
    Node* next = nullptr;                         // leaf chain
  };

  struct SplitResult {
    Key separator;
    std::unique_ptr<Node> right;
  };

  [[nodiscard]] const Node* leaf_for(Key key) const;
  std::optional<SplitResult> insert_rec(Node& node, Key key, Value value,
                                        bool& inserted);
  bool erase_rec(Node& node, Key key);
  void rebalance_child(Node& parent, std::size_t idx);
  bool validate_rec(const Node& node, bool root, std::size_t depth,
                    std::size_t leaf_depth, Key lo, Key hi, bool has_lo,
                    bool has_hi) const;
  [[nodiscard]] std::size_t leaf_depth() const;
  [[nodiscard]] std::size_t count_nodes(const Node& node) const;

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace redbud::mds
