#include "mds/inode.hpp"

#include <algorithm>
#include <cassert>

namespace redbud::mds {

using net::Extent;

namespace {
// Trim `e` to keep only [lo, hi) of its file range; adjusts the physical
// address accordingly. Returns nullopt when nothing remains.
std::optional<Extent> slice(const Extent& e, std::uint64_t lo,
                            std::uint64_t hi) {
  const std::uint64_t b = std::max(lo, e.file_block);
  const std::uint64_t t = std::min(hi, e.end_block());
  if (b >= t) return std::nullopt;
  Extent out;
  out.file_block = b;
  out.nblocks = static_cast<std::uint32_t>(t - b);
  out.addr.device = e.addr.device;
  out.addr.block = e.addr.block + (b - e.file_block);
  return out;
}
}  // namespace

void Inode::insert_trimming(const Extent& e) {
  // Find everything overlapping [e.file_block, e.end_block()) and trim it.
  std::vector<Extent> fragments;
  auto it = extents_.lower_bound(e.file_block);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end_block() > e.file_block) it = prev;
  }
  while (it != extents_.end() && it->second.file_block < e.end_block()) {
    const Extent old = it->second;
    it = extents_.erase(it);
    // Keep the parts of `old` outside the new extent.
    if (auto head = slice(old, 0, e.file_block)) fragments.push_back(*head);
    if (auto tail = slice(old, e.end_block(), ~std::uint64_t{0})) {
      fragments.push_back(*tail);
    }
  }
  for (const auto& f : fragments) extents_.emplace(f.file_block, f);
  extents_.emplace(e.file_block, e);
}

void Inode::apply_commit(const std::vector<Extent>& extents,
                         std::uint64_t new_size_bytes) {
  for (const auto& e : extents) {
    assert(e.nblocks > 0);
    insert_trimming(e);
  }
  size_bytes_ = std::max(size_bytes_, new_size_bytes);
  ++version_;
}

std::vector<Extent> Inode::lookup(std::uint64_t file_block,
                                  std::uint32_t nblocks) const {
  std::vector<Extent> out;
  const std::uint64_t lo = file_block;
  const std::uint64_t hi = file_block + nblocks;
  auto it = extents_.lower_bound(lo);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end_block() > lo) it = prev;
  }
  for (; it != extents_.end() && it->second.file_block < hi; ++it) {
    if (auto s = slice(it->second, lo, hi)) out.push_back(*s);
  }
  return out;
}

std::vector<Extent> Inode::all_extents() const {
  std::vector<Extent> out;
  out.reserve(extents_.size());
  for (const auto& [_, e] : extents_) out.push_back(e);
  return out;
}

bool Inode::validate() const {
  std::uint64_t prev_end = 0;
  bool first = true;
  for (const auto& [off, e] : extents_) {
    if (off != e.file_block || e.nblocks == 0) return false;
    if (!first && e.file_block < prev_end) return false;
    first = false;
    prev_end = e.end_block();
  }
  return true;
}

Namespace::Namespace(std::uint64_t id_tag) : id_tag_(id_tag) {
  dirs_[net::kRootDir];  // root exists from the start
}

net::DirId Namespace::make_dir(net::DirId parent, const std::string& name) {
  (void)parent;
  (void)name;  // directory names are not needed by the simulated workloads
  const net::DirId id = id_tag_ | next_dir_++;
  dirs_[id];
  return id;
}

net::FileId Namespace::create(net::DirId dir, const std::string& name) {
  // Unknown directories materialise on first touch: a directory striped
  // across shards exists on every shard its entries hash to.
  auto dit = dirs_.try_emplace(dir).first;
  if (dit->second.count(name)) return net::kInvalidFile;
  const net::FileId id = id_tag_ | next_file_++;
  dit->second.emplace(name, id);
  inodes_.emplace(id, Inode(id));
  return id;
}

std::optional<net::FileId> Namespace::lookup(net::DirId dir,
                                             const std::string& name) const {
  auto dit = dirs_.find(dir);
  if (dit == dirs_.end()) return std::nullopt;
  auto fit = dit->second.find(name);
  if (fit == dit->second.end()) return std::nullopt;
  return fit->second;
}

std::optional<std::vector<Extent>> Namespace::remove(net::DirId dir,
                                                     const std::string& name) {
  auto dit = dirs_.find(dir);
  if (dit == dirs_.end()) return std::nullopt;
  auto fit = dit->second.find(name);
  if (fit == dit->second.end()) return std::nullopt;
  const net::FileId id = fit->second;
  dit->second.erase(fit);
  auto iit = inodes_.find(id);
  assert(iit != inodes_.end());
  auto extents = iit->second.all_extents();
  inodes_.erase(iit);
  return extents;
}

Inode* Namespace::inode(net::FileId id) {
  auto it = inodes_.find(id);
  return it == inodes_.end() ? nullptr : &it->second;
}

const Inode* Namespace::inode(net::FileId id) const {
  auto it = inodes_.find(id);
  return it == inodes_.end() ? nullptr : &it->second;
}

}  // namespace redbud::mds
