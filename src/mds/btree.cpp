#include "mds/btree.hpp"

#include <algorithm>
#include <cassert>

namespace redbud::mds {

BPlusTree::BPlusTree() : root_(std::make_unique<Node>()) {}

// --- lookup helpers -----------------------------------------------------------

namespace {
// Index of the child to descend into for `key`: the first separator
// greater than key selects the child at its index.
std::size_t child_index(const std::vector<BPlusTree::Key>& keys,
                        BPlusTree::Key key) {
  return static_cast<std::size_t>(
      std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
}
}  // namespace

const BPlusTree::Node* BPlusTree::leaf_for(Key key) const {
  const Node* n = root_.get();
  while (!n->leaf) {
    n = n->children[child_index(n->keys, key)].get();
  }
  return n;
}

std::optional<BPlusTree::Value> BPlusTree::find(Key key) const {
  const Node* leaf = leaf_for(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it != leaf->keys.end() && *it == key) {
    return leaf->values[static_cast<std::size_t>(it - leaf->keys.begin())];
  }
  return std::nullopt;
}

std::optional<std::pair<BPlusTree::Key, BPlusTree::Value>>
BPlusTree::lower_bound(Key key) const {
  const Node* leaf = leaf_for(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end()) {
    // All keys in this leaf are smaller; the answer is the first key of
    // the next leaf (separators guarantee no in-between keys).
    leaf = leaf->next;
    if (!leaf || leaf->keys.empty()) return std::nullopt;
    return std::make_pair(leaf->keys.front(), leaf->values.front());
  }
  return std::make_pair(*it, leaf->values[static_cast<std::size_t>(
                                 it - leaf->keys.begin())]);
}

std::optional<std::pair<BPlusTree::Key, BPlusTree::Value>> BPlusTree::floor(
    Key key) const {
  // Descend greedily toward `key`, remembering the last entry <= key.
  const Node* n = root_.get();
  while (!n->leaf) {
    n = n->children[child_index(n->keys, key)].get();
  }
  auto it = std::upper_bound(n->keys.begin(), n->keys.end(), key);
  if (it != n->keys.begin()) {
    const auto idx = static_cast<std::size_t>(it - n->keys.begin()) - 1;
    return std::make_pair(n->keys[idx], n->values[idx]);
  }
  // Everything in this leaf is greater: the floor, if any, is the maximum
  // of the subtree to the left — walk from the root toward `key`, taking
  // note of left siblings.
  const Node* best = nullptr;
  n = root_.get();
  while (!n->leaf) {
    const auto idx = child_index(n->keys, key);
    if (idx > 0) best = n->children[idx - 1].get();
    n = n->children[idx].get();
  }
  if (!best) return std::nullopt;
  while (!best->leaf) best = best->children.back().get();
  if (best->keys.empty()) return std::nullopt;
  return std::make_pair(best->keys.back(), best->values.back());
}

std::optional<std::pair<BPlusTree::Key, BPlusTree::Value>> BPlusTree::min()
    const {
  const Node* n = root_.get();
  while (!n->leaf) n = n->children.front().get();
  if (n->keys.empty()) return std::nullopt;
  return std::make_pair(n->keys.front(), n->values.front());
}

std::optional<std::pair<BPlusTree::Key, BPlusTree::Value>> BPlusTree::max()
    const {
  const Node* n = root_.get();
  while (!n->leaf) n = n->children.back().get();
  if (n->keys.empty()) return std::nullopt;
  return std::make_pair(n->keys.back(), n->values.back());
}

// --- insert ---------------------------------------------------------------------

bool BPlusTree::insert(Key key, Value value) {
  bool inserted = false;
  auto split = insert_rec(*root_, key, value, inserted);
  if (split) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(split->separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  if (inserted) ++size_;
  return inserted;
}

std::optional<BPlusTree::SplitResult> BPlusTree::insert_rec(Node& node,
                                                            Key key,
                                                            Value value,
                                                            bool& inserted) {
  if (node.leaf) {
    auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
    if (it != node.keys.end() && *it == key) {
      inserted = false;
      return std::nullopt;
    }
    const auto idx = static_cast<std::size_t>(it - node.keys.begin());
    node.keys.insert(it, key);
    node.values.insert(node.values.begin() + std::ptrdiff_t(idx), value);
    inserted = true;
    if (node.keys.size() <= kMaxKeys) return std::nullopt;

    // Split the leaf: right half moves to a new node; the separator is
    // the first key of the right node (B+ convention: separator repeats).
    auto right = std::make_unique<Node>();
    right->leaf = true;
    const std::size_t half = node.keys.size() / 2;
    right->keys.assign(node.keys.begin() + std::ptrdiff_t(half),
                       node.keys.end());
    right->values.assign(node.values.begin() + std::ptrdiff_t(half),
                         node.values.end());
    node.keys.resize(half);
    node.values.resize(half);
    right->next = node.next;
    node.next = right.get();
    return SplitResult{right->keys.front(), std::move(right)};
  }

  const auto idx = child_index(node.keys, key);
  auto split = insert_rec(*node.children[idx], key, value, inserted);
  if (!split) return std::nullopt;

  node.keys.insert(node.keys.begin() + std::ptrdiff_t(idx), split->separator);
  node.children.insert(node.children.begin() + std::ptrdiff_t(idx) + 1,
                       std::move(split->right));
  if (node.keys.size() <= kMaxKeys) return std::nullopt;

  // Split the internal node: the middle key moves *up* (not copied).
  auto right = std::make_unique<Node>();
  right->leaf = false;
  const std::size_t mid = node.keys.size() / 2;
  const Key up = node.keys[mid];
  right->keys.assign(node.keys.begin() + std::ptrdiff_t(mid) + 1,
                     node.keys.end());
  for (std::size_t i = mid + 1; i < node.children.size(); ++i) {
    right->children.push_back(std::move(node.children[i]));
  }
  node.keys.resize(mid);
  node.children.resize(mid + 1);
  return SplitResult{up, std::move(right)};
}

bool BPlusTree::update(Key key, Value value) {
  Node* n = root_.get();
  while (!n->leaf) n = n->children[child_index(n->keys, key)].get();
  auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
  if (it == n->keys.end() || *it != key) return false;
  n->values[static_cast<std::size_t>(it - n->keys.begin())] = value;
  return true;
}

// --- erase ----------------------------------------------------------------------

bool BPlusTree::erase(Key key) {
  if (!erase_rec(*root_, key)) return false;
  --size_;
  // Shrink the root when it has become a trivial passthrough.
  if (!root_->leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children.front());
  }
  return true;
}

bool BPlusTree::erase_rec(Node& node, Key key) {
  if (node.leaf) {
    auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
    if (it == node.keys.end() || *it != key) return false;
    const auto idx = static_cast<std::size_t>(it - node.keys.begin());
    node.keys.erase(it);
    node.values.erase(node.values.begin() + std::ptrdiff_t(idx));
    return true;
  }
  const auto idx = child_index(node.keys, key);
  if (!erase_rec(*node.children[idx], key)) return false;
  // Restore the fill invariant of the child we descended into.
  const Node& child = *node.children[idx];
  if (child.keys.size() < kMinKeys) rebalance_child(node, idx);
  return true;
}

void BPlusTree::rebalance_child(Node& parent, std::size_t idx) {
  Node& child = *parent.children[idx];

  // Borrow from the left sibling.
  if (idx > 0) {
    Node& left = *parent.children[idx - 1];
    if (left.keys.size() > kMinKeys) {
      if (child.leaf) {
        child.keys.insert(child.keys.begin(), left.keys.back());
        child.values.insert(child.values.begin(), left.values.back());
        left.keys.pop_back();
        left.values.pop_back();
        parent.keys[idx - 1] = child.keys.front();
      } else {
        child.keys.insert(child.keys.begin(), parent.keys[idx - 1]);
        parent.keys[idx - 1] = left.keys.back();
        left.keys.pop_back();
        child.children.insert(child.children.begin(),
                              std::move(left.children.back()));
        left.children.pop_back();
      }
      return;
    }
  }
  // Borrow from the right sibling.
  if (idx + 1 < parent.children.size()) {
    Node& right = *parent.children[idx + 1];
    if (right.keys.size() > kMinKeys) {
      if (child.leaf) {
        child.keys.push_back(right.keys.front());
        child.values.push_back(right.values.front());
        right.keys.erase(right.keys.begin());
        right.values.erase(right.values.begin());
        parent.keys[idx] = right.keys.front();
      } else {
        child.keys.push_back(parent.keys[idx]);
        parent.keys[idx] = right.keys.front();
        right.keys.erase(right.keys.begin());
        child.children.push_back(std::move(right.children.front()));
        right.children.erase(right.children.begin());
      }
      return;
    }
  }
  // Merge with a sibling (prefer left).
  const std::size_t li = idx > 0 ? idx - 1 : idx;  // left node of the pair
  Node& left = *parent.children[li];
  Node& right = *parent.children[li + 1];
  if (left.leaf) {
    left.keys.insert(left.keys.end(), right.keys.begin(), right.keys.end());
    left.values.insert(left.values.end(), right.values.begin(),
                       right.values.end());
    left.next = right.next;
  } else {
    left.keys.push_back(parent.keys[li]);
    left.keys.insert(left.keys.end(), right.keys.begin(), right.keys.end());
    for (auto& c : right.children) left.children.push_back(std::move(c));
  }
  parent.keys.erase(parent.keys.begin() + std::ptrdiff_t(li));
  parent.children.erase(parent.children.begin() + std::ptrdiff_t(li) + 1);
}

// --- introspection ---------------------------------------------------------------

std::size_t BPlusTree::height() const {
  std::size_t h = 1;
  const Node* n = root_.get();
  while (!n->leaf) {
    ++h;
    n = n->children.front().get();
  }
  return h;
}

std::size_t BPlusTree::count_nodes(const Node& node) const {
  std::size_t n = 1;
  for (const auto& c : node.children) n += count_nodes(*c);
  return n;
}

std::size_t BPlusTree::node_count() const { return count_nodes(*root_); }

std::vector<std::pair<BPlusTree::Key, BPlusTree::Value>> BPlusTree::items()
    const {
  std::vector<std::pair<Key, Value>> out;
  out.reserve(size_);
  const Node* n = root_.get();
  while (!n->leaf) n = n->children.front().get();
  for (; n; n = n->next) {
    for (std::size_t i = 0; i < n->keys.size(); ++i) {
      out.emplace_back(n->keys[i], n->values[i]);
    }
  }
  return out;
}

std::size_t BPlusTree::leaf_depth() const {
  std::size_t d = 0;
  const Node* n = root_.get();
  while (!n->leaf) {
    ++d;
    n = n->children.front().get();
  }
  return d;
}

bool BPlusTree::validate_rec(const Node& node, bool root, std::size_t depth,
                             std::size_t expected_leaf_depth, Key lo, Key hi,
                             bool has_lo, bool has_hi) const {
  // Key ordering within the node.
  if (!std::is_sorted(node.keys.begin(), node.keys.end())) return false;
  if (std::adjacent_find(node.keys.begin(), node.keys.end()) !=
      node.keys.end()) {
    return false;
  }
  // Range bounds from ancestors. Leaf keys satisfy lo <= k < hi; internal
  // separators likewise.
  for (Key k : node.keys) {
    if (has_lo && k < lo) return false;
    if (has_hi && k >= hi) return false;
  }
  if (node.leaf) {
    if (depth != expected_leaf_depth) return false;
    if (node.values.size() != node.keys.size()) return false;
    if (!root && node.keys.size() < kMinKeys) return false;
    if (node.keys.size() > kMaxKeys) return false;
    return true;
  }
  if (!node.values.empty()) return false;
  if (node.children.size() != node.keys.size() + 1) return false;
  if (!root && node.keys.size() < kMinKeys) return false;
  if (node.keys.size() > kMaxKeys) return false;
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    const bool child_has_lo = i > 0 || has_lo;
    const Key child_lo = i > 0 ? node.keys[i - 1] : lo;
    const bool child_has_hi = i < node.keys.size() || has_hi;
    const Key child_hi = i < node.keys.size() ? node.keys[i] : hi;
    if (!validate_rec(*node.children[i], false, depth + 1,
                      expected_leaf_depth, child_lo, child_hi, child_has_lo,
                      child_has_hi)) {
      return false;
    }
  }
  return true;
}

bool BPlusTree::validate() const {
  if (!validate_rec(*root_, true, 0, leaf_depth(), 0, 0, false, false)) {
    return false;
  }
  // Leaf chain must enumerate exactly size_ entries in sorted order.
  const auto all = items();
  if (all.size() != size_) return false;
  for (std::size_t i = 1; i < all.size(); ++i) {
    if (all[i - 1].first >= all[i].first) return false;
  }
  return true;
}

}  // namespace redbud::mds
