#include "mds/alloc_group.hpp"

#include <cassert>

namespace redbud::mds {

using storage::BlockNo;

AllocGroup::AllocGroup(std::uint32_t device, BlockNo start,
                       std::uint64_t nblocks)
    : device_(device),
      start_(start),
      nblocks_(nblocks),
      free_blocks_(nblocks),
      cursor_(start) {
  assert(nblocks > 0);
  assert(start < (1ull << 32) && start + nblocks <= (1ull << 32) &&
         "AG offsets must fit the packed by-size key");
  add_free(start, nblocks);
}

BPlusTree::Key AllocGroup::size_key(std::uint64_t nblocks, BlockNo offset) {
  return (nblocks << 32) | (offset & 0xFFFFFFFFull);
}

void AllocGroup::add_free(BlockNo offset, std::uint64_t nblocks) {
  const bool a = by_offset_.insert(offset, nblocks);
  const bool b = by_size_.insert(size_key(nblocks, offset), nblocks);
  assert(a && b);
  (void)a;
  (void)b;
}

void AllocGroup::remove_free(BlockNo offset, std::uint64_t nblocks) {
  const bool a = by_offset_.erase(offset);
  const bool b = by_size_.erase(size_key(nblocks, offset));
  assert(a && b);
  (void)a;
  (void)b;
}

std::optional<FreeExtent> AllocGroup::take(BlockNo offset, std::uint64_t have,
                                           std::uint64_t want) {
  remove_free(offset, have);
  if (have > want) add_free(offset + want, have - want);
  free_blocks_ -= want;
  cursor_ = offset + want;
  return FreeExtent{offset, want};
}

std::optional<FreeExtent> AllocGroup::alloc(std::uint64_t nblocks,
                                            AllocPolicy policy) {
  assert(nblocks > 0);
  if (policy == AllocPolicy::kBestFit) {
    // Smallest (length, offset) key with length >= nblocks.
    auto hit = by_size_.lower_bound(size_key(nblocks, 0));
    if (!hit) return std::nullopt;
    const std::uint64_t have = hit->first >> 32;
    const BlockNo offset = hit->first & 0xFFFFFFFFull;
    return take(offset, have, nblocks);
  }
  return alloc_near(nblocks, cursor_);
}

std::optional<FreeExtent> AllocGroup::alloc_near(std::uint64_t nblocks,
                                                 BlockNo hint) {
  assert(nblocks > 0);
  // The free extent containing or preceding `hint` may have room at/after
  // the hint.
  if (auto prev = by_offset_.floor(hint)) {
    const BlockNo off = prev->first;
    const std::uint64_t len = prev->second;
    if (off + len > hint && off + len - hint >= nblocks) {
      // Carve from the hint position: split the head off first.
      remove_free(off, len);
      if (hint > off) add_free(off, hint - off);
      if (off + len > hint + nblocks) {
        add_free(hint + nblocks, off + len - hint - nblocks);
      }
      free_blocks_ -= nblocks;
      cursor_ = hint + nblocks;
      return FreeExtent{hint, nblocks};
    }
  }
  // Scan forward from the hint; wrap once.
  for (int pass = 0; pass < 2; ++pass) {
    BlockNo from = pass == 0 ? hint : start_;
    for (auto e = by_offset_.lower_bound(from); e;
         e = by_offset_.lower_bound(e->first + 1)) {
      if (e->second >= nblocks) {
        return take(e->first, e->second, nblocks);
      }
      if (pass == 1 && e->first >= hint) return std::nullopt;
    }
  }
  return std::nullopt;
}

void AllocGroup::free(BlockNo offset, std::uint64_t nblocks) {
  assert(nblocks > 0);
  assert(offset >= start_ && offset + nblocks <= end());

  BlockNo new_off = offset;
  std::uint64_t new_len = nblocks;

  // Coalesce with the predecessor.
  if (auto prev = by_offset_.floor(offset); prev) {
    assert(prev->first + prev->second <= offset && "double free");
    if (prev->first + prev->second == offset) {
      remove_free(prev->first, prev->second);
      new_off = prev->first;
      new_len += prev->second;
    }
  }
  // Coalesce with the successor.
  if (auto next = by_offset_.lower_bound(offset); next) {
    assert(next->first >= offset + nblocks && "double free");
    if (next->first == offset + nblocks) {
      remove_free(next->first, next->second);
      new_len += next->second;
    }
  }
  add_free(new_off, new_len);
  free_blocks_ += nblocks;
}

std::uint64_t AllocGroup::largest_free() const {
  auto m = by_size_.max();
  return m ? (m->first >> 32) : 0;
}

bool AllocGroup::validate() const {
  const auto by_off = by_offset_.items();
  if (by_off.size() != by_size_.size()) return false;
  std::uint64_t total = 0;
  BlockNo prev_end = start_;
  bool first = true;
  for (const auto& [off, len] : by_off) {
    if (off < start_ || off + len > end()) return false;
    // Fully coalesced: no two free extents may touch.
    if (!first && off <= prev_end) return false;
    first = false;
    prev_end = off + len;
    total += len;
    if (by_size_.find(size_key(len, off)) != len) return false;
  }
  if (!by_offset_.validate() || !by_size_.validate()) return false;
  return total == free_blocks_;
}

}  // namespace redbud::mds
