// Seed-derived fault schedules.
//
// A FaultSchedule is a plain list of timed fault windows, generated up
// front from one seed and replayed verbatim by the FaultInjector: every
// event carries its absolute raise time, its duration, a target index and
// an intensity. Nothing in the schedule depends on simulation state, so
// the same (seed, params, topology) triple always produces the identical
// byte-for-byte schedule — the determinism tests hash exactly this, and
// the scenario-matrix bench enumerates grids of these parameter structs.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace redbud::fault {

enum class FaultKind : std::uint8_t {
  // A data-array device turns fail-slow: its service time is multiplied
  // by `intensity` for the window (the RNG streams of the disk model are
  // untouched, so the same seeks/rotations happen, just slower).
  kSlowDisk,
  // A client's uplink loses `intensity` of its frames (both its requests
  // and, from the fabric's view, nothing else: loss is drawn per frame at
  // the sender's NIC).
  kLossyLink,
  // A client's uplink loses every frame — a full partition of that host
  // for the window.
  kLinkPartition,
  // An MDS shard crashes: volatile state dies, unflushed journal appends
  // are lost, the endpoint goes dark. `duration` is the detection delay;
  // when it elapses the cold standby begins journal-replay failover and
  // serves again at the same node id once the replay I/O completes.
  kShardCrash,
};
inline constexpr std::size_t kFaultKindCount = 4;
[[nodiscard]] const char* fault_name(FaultKind k);

struct FaultEvent {
  FaultKind kind = FaultKind::kSlowDisk;
  redbud::sim::SimTime at;        // fault raised
  redbud::sim::SimTime duration;  // raised -> cleared (crash: detection)
  std::uint32_t target = 0;       // device / client / shard index by kind
  double intensity = 0.0;         // slow factor / loss rate; unused: crash
};

struct FaultScheduleParams {
  std::uint64_t seed = 1;
  // Faults are raised inside [window_start, window_end); durations may
  // extend past the end (the injector still clears them).
  redbud::sim::SimTime window_start = redbud::sim::SimTime::millis(50);
  redbud::sim::SimTime window_end = redbud::sim::SimTime::millis(400);
  // Events drawn per kind. Shard crashes are capped at the shard count:
  // each crash gets its own shard, so a shard never crashes again while
  // its failover is still replaying the journal.
  std::uint32_t slow_disks = 0;
  std::uint32_t lossy_links = 0;
  std::uint32_t link_partitions = 0;
  std::uint32_t shard_crashes = 0;
  redbud::sim::SimTime min_duration = redbud::sim::SimTime::millis(20);
  redbud::sim::SimTime max_duration = redbud::sim::SimTime::millis(120);
  double min_loss = 0.05;   // kLossyLink intensity range
  double max_loss = 0.40;
  double min_slow = 2.0;    // kSlowDisk factor range
  double max_slow = 16.0;
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  // Draw a schedule for a cluster of `ndisks` data devices, `nclients`
  // client hosts and `nshards` metadata shards. Pure function of its
  // arguments (one private Rng, fixed draw order).
  [[nodiscard]] static FaultSchedule generate(const FaultScheduleParams& p,
                                              std::uint32_t ndisks,
                                              std::uint32_t nclients,
                                              std::uint32_t nshards);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  // FNV-1a over every event field — the determinism tests compare this
  // across reruns and against the injected-fault counters of a run.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace redbud::fault
