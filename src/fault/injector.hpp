// Replays a FaultSchedule against a live Cluster.
//
// arm() walks the schedule once, before the first run_until, and plants
// two timers per event — raise and clear — in the partition that owns the
// faulted component: disk events in the array partition, link events in
// the owning client's partition, crash/failover in the shard's partition.
// Partition-local timers keep the parallel kernel deterministic: a fault
// transition is just another event in its partition's totally-ordered
// loop, so the same schedule produces the same run for any worker count.
//
// The injector is strictly one-shot and passive after arm(): it holds no
// simulation state of its own beyond counters, and a cleared fault always
// restores the component's healthy configuration (slow factor 1.0, loss
// 0.0), so a drained run ends with a fault-free cluster.
#pragma once

#include <cstdint>

#include "core/cluster.hpp"
#include "fault/schedule.hpp"

namespace redbud::fault {

class FaultInjector {
 public:
  FaultInjector(core::Cluster& cluster, FaultSchedule schedule);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Plant every raise/clear timer. Call exactly once, before driving the
  // cluster (all timers land strictly in the simulated future).
  void arm();

  // Register fault.injected{kind=...} / fault.cleared{kind=...} counters
  // with the cluster's metrics registry. Optional; call before arm().
  void register_metrics();

  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }
  [[nodiscard]] std::uint64_t injected(FaultKind k) const {
    return injected_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t cleared(FaultKind k) const {
    return cleared_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t total_injected() const {
    std::uint64_t n = 0;
    for (const auto c : injected_) n += c;
    return n;
  }
  [[nodiscard]] std::uint64_t total_cleared() const {
    std::uint64_t n = 0;
    for (const auto c : cleared_) n += c;
    return n;
  }

 private:
  void raise(const FaultEvent& e);
  void clear(const FaultEvent& e, redbud::sim::SimTime raised_at);
  // The partition whose event loop owns the faulted component.
  [[nodiscard]] redbud::sim::Simulation& partition_of(const FaultEvent& e);

  core::Cluster* cluster_;
  FaultSchedule schedule_;
  bool armed_ = false;
  std::uint64_t injected_[kFaultKindCount] = {};
  std::uint64_t cleared_[kFaultKindCount] = {};
};

}  // namespace redbud::fault
