#include "fault/schedule.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <tuple>

namespace redbud::fault {

using redbud::sim::Rng;
using redbud::sim::SimTime;

const char* fault_name(FaultKind k) {
  switch (k) {
    case FaultKind::kSlowDisk:
      return "slow_disk";
    case FaultKind::kLossyLink:
      return "lossy_link";
    case FaultKind::kLinkPartition:
      return "link_partition";
    case FaultKind::kShardCrash:
      return "shard_crash";
  }
  return "unknown";
}

namespace {

SimTime draw_at(Rng& rng, const FaultScheduleParams& p) {
  return SimTime::nanos(
      rng.uniform_int(p.window_start.ns(), p.window_end.ns()));
}

SimTime draw_duration(Rng& rng, const FaultScheduleParams& p) {
  return SimTime::nanos(
      rng.uniform_int(p.min_duration.ns(), p.max_duration.ns()));
}

}  // namespace

FaultSchedule FaultSchedule::generate(const FaultScheduleParams& p,
                                      std::uint32_t ndisks,
                                      std::uint32_t nclients,
                                      std::uint32_t nshards) {
  assert(p.window_end >= p.window_start);
  assert(p.max_duration >= p.min_duration);
  FaultSchedule out;
  Rng rng(p.seed ^ 0x7ea1a5ef00d5eedull);

  // Fixed draw order (kind by kind, fields in declaration order) so the
  // schedule is a pure function of (params, topology).
  for (std::uint32_t i = 0; i < p.slow_disks && ndisks > 0; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kSlowDisk;
    e.at = draw_at(rng, p);
    e.duration = draw_duration(rng, p);
    e.target = static_cast<std::uint32_t>(rng.next_below(ndisks));
    e.intensity = rng.uniform(p.min_slow, p.max_slow);
    out.events_.push_back(e);
  }
  for (std::uint32_t i = 0; i < p.lossy_links && nclients > 0; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kLossyLink;
    e.at = draw_at(rng, p);
    e.duration = draw_duration(rng, p);
    e.target = static_cast<std::uint32_t>(rng.next_below(nclients));
    e.intensity = rng.uniform(p.min_loss, p.max_loss);
    out.events_.push_back(e);
  }
  for (std::uint32_t i = 0; i < p.link_partitions && nclients > 0; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kLinkPartition;
    e.at = draw_at(rng, p);
    e.duration = draw_duration(rng, p);
    e.target = static_cast<std::uint32_t>(rng.next_below(nclients));
    e.intensity = 1.0;
    out.events_.push_back(e);
  }
  // Each crash gets its own shard (a deterministic shuffle of the shard
  // indices), so no shard crashes twice — crashing a shard that is still
  // replaying its journal would be a double fault the failover model
  // (one cold standby per shard) does not pretend to survive.
  if (nshards > 0 && p.shard_crashes > 0) {
    std::vector<std::uint32_t> shards(nshards);
    for (std::uint32_t s = 0; s < nshards; ++s) shards[s] = s;
    for (std::uint32_t s = nshards - 1; s > 0; --s) {
      const auto j = static_cast<std::uint32_t>(rng.next_below(s + 1));
      std::swap(shards[s], shards[j]);
    }
    const std::uint32_t ncrash = std::min(p.shard_crashes, nshards);
    for (std::uint32_t i = 0; i < ncrash; ++i) {
      FaultEvent e;
      e.kind = FaultKind::kShardCrash;
      e.at = draw_at(rng, p);
      e.duration = draw_duration(rng, p);
      e.target = shards[i];
      e.intensity = 0.0;
      out.events_.push_back(e);
    }
  }

  std::sort(out.events_.begin(), out.events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return std::tie(a.at, a.kind, a.target) <
                     std::tie(b.at, b.kind, b.target);
            });
  return out;
}

std::uint64_t FaultSchedule::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix(events_.size());
  for (const auto& e : events_) {
    mix(static_cast<std::uint64_t>(e.kind));
    mix(static_cast<std::uint64_t>(e.at.ns()));
    mix(static_cast<std::uint64_t>(e.duration.ns()));
    mix(e.target);
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(e.intensity));
    std::memcpy(&bits, &e.intensity, sizeof(bits));
    mix(bits);
  }
  return h;
}

}  // namespace redbud::fault
