#include "fault/injector.hpp"

#include <cassert>
#include <string>

namespace redbud::fault {

using redbud::sim::SimTime;

FaultInjector::FaultInjector(core::Cluster& cluster, FaultSchedule schedule)
    : cluster_(&cluster), schedule_(std::move(schedule)) {}

void FaultInjector::register_metrics() {
  auto& reg = cluster_->obs().registry;
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    const obs::Labels labels{
        {"kind", fault_name(static_cast<FaultKind>(k))}};
    reg.register_value("fault.injected", labels, &injected_[k]);
    reg.register_value("fault.cleared", labels, &cleared_[k]);
  }
}

redbud::sim::Simulation& FaultInjector::partition_of(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kSlowDisk:
      return cluster_->array_sim();
    case FaultKind::kLossyLink:
    case FaultKind::kLinkPartition:
      return cluster_->client_sim(e.target);
    case FaultKind::kShardCrash:
      return cluster_->shard_sim(e.target);
  }
  return cluster_->sim();
}

void FaultInjector::arm() {
  assert(!armed_ && "a FaultInjector replays its schedule once");
  armed_ = true;
  for (const FaultEvent& ev : schedule_.events()) {
    redbud::sim::Simulation& part = partition_of(ev);
    assert(ev.at > part.now() && "faults must be armed before the run");
    const FaultEvent e = ev;  // captured by value: the timers outlive arm()
    part.call_at(e.at, [this, e] { raise(e); });
    part.call_at(e.at + e.duration, [this, e] { clear(e, e.at); });
  }
}

void FaultInjector::raise(const FaultEvent& e) {
  ++injected_[static_cast<std::size_t>(e.kind)];
  switch (e.kind) {
    case FaultKind::kSlowDisk:
      cluster_->array().set_disk_slow_factor(e.target, e.intensity);
      break;
    case FaultKind::kLossyLink:
    case FaultKind::kLinkPartition:
      cluster_->network().set_link_loss(
          cluster_->client(e.target).endpoint().node(), e.intensity);
      break;
    case FaultKind::kShardCrash:
      cluster_->crash_shard(e.target);
      break;
  }
}

void FaultInjector::clear(const FaultEvent& e, SimTime raised_at) {
  ++cleared_[static_cast<std::size_t>(e.kind)];
  obs::Track track{0, 1};  // span row; overwritten per kind below
  switch (e.kind) {
    case FaultKind::kSlowDisk:
      cluster_->array().set_disk_slow_factor(e.target, 1.0);
      break;
    case FaultKind::kLossyLink:
    case FaultKind::kLinkPartition:
      cluster_->network().set_link_loss(
          cluster_->client(e.target).endpoint().node(), 0.0);
      track = obs::Track{obs::client_track(e.target), 1};
      break;
    case FaultKind::kShardCrash:
      // Clearing a crash = the detection delay elapsed; failover (journal
      // replay on the standby, then serving resumes) starts now and its
      // completion is traced separately as a kFailover span.
      cluster_->failover_shard(e.target);
      track = obs::Track{obs::shard_track(e.target), 1};
      break;
  }
  auto& tracer = cluster_->obs().tracer;
  if (tracer.enabled()) {
    const obs::TraceContext ctx = tracer.mint();
    tracer.record(obs::Stage::kFaultEvent, ctx, 0, track, raised_at,
                  partition_of(e).now(), e.target,
                  static_cast<std::uint64_t>(e.kind));
  }
}

}  // namespace redbud::fault
