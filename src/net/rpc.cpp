#include "net/rpc.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <utility>

#include "sim/parallel.hpp"

namespace redbud::net {

using redbud::sim::Process;
using redbud::sim::SimFuture;
using redbud::sim::SimPromise;
using redbud::sim::SimTime;

namespace {

// Estimated on-the-wire payload sizes, modelled after typical XDR
// encodings of comparable protocols.
struct ReqSize {
  std::size_t operator()(const CreateReq& r) const { return 48 + r.name.size(); }
  std::size_t operator()(const LookupReq& r) const { return 48 + r.name.size(); }
  std::size_t operator()(const LayoutGetReq&) const { return 64; }
  std::size_t operator()(const CommitReq& r) const {
    std::size_t s = 16;
    for (const auto& e : r.entries) {
      s += 48 + e.extents.size() * 40 + e.block_tokens.size() * 8;
    }
    return s;
  }
  std::size_t operator()(const DelegateReq&) const { return 32; }
  std::size_t operator()(const DelegateReturnReq&) const { return 48; }
  std::size_t operator()(const RemoveReq& r) const { return 48 + r.name.size(); }
  std::size_t operator()(const StatReq&) const { return 32; }
  std::size_t operator()(const NfsWriteReq& r) const { return 96 + r.nbytes; }
  std::size_t operator()(const NfsCommitReq&) const { return 40; }
  std::size_t operator()(const NfsReadReq&) const { return 64; }
  std::size_t operator()(const PvfsIoReq& r) const {
    return 96 + (r.is_write ? r.nbytes : 0);
  }
};

struct RespSize {
  std::size_t operator()(const CreateResp&) const { return 40; }
  std::size_t operator()(const LookupResp&) const { return 48; }
  std::size_t operator()(const LayoutGetResp& r) const {
    return 24 + r.extents.size() * 40;
  }
  std::size_t operator()(const CommitResp&) const { return 32; }
  std::size_t operator()(const DelegateResp&) const { return 48; }
  std::size_t operator()(const RemoveResp&) const { return 24; }
  std::size_t operator()(const StatResp&) const { return 40; }
  std::size_t operator()(const NfsWriteResp&) const { return 40; }
  std::size_t operator()(const NfsCommitResp&) const { return 32; }
  std::size_t operator()(const NfsReadResp& r) const {
    return 48 + r.tokens.size() * storage::kBlockSize;
  }
  std::size_t operator()(const PvfsIoResp& r) const {
    return 48 + r.tokens.size() * storage::kBlockSize;
  }
};

struct OpName {
  const char* operator()(const CreateReq&) const { return "create"; }
  const char* operator()(const LookupReq&) const { return "lookup"; }
  const char* operator()(const LayoutGetReq&) const { return "layout_get"; }
  const char* operator()(const CommitReq&) const { return "commit"; }
  const char* operator()(const DelegateReq&) const { return "delegate"; }
  const char* operator()(const DelegateReturnReq&) const {
    return "delegate_return";
  }
  const char* operator()(const RemoveReq&) const { return "remove"; }
  const char* operator()(const StatReq&) const { return "stat"; }
  const char* operator()(const NfsWriteReq&) const { return "nfs_write"; }
  const char* operator()(const NfsCommitReq&) const { return "nfs_commit"; }
  const char* operator()(const NfsReadReq&) const { return "nfs_read"; }
  const char* operator()(const PvfsIoReq&) const { return "pvfs_io"; }
};

}  // namespace

std::size_t wire_size(const RequestBody& body) {
  return std::visit(ReqSize{}, body);
}
std::size_t wire_size(const ResponseBody& body) {
  return std::visit(RespSize{}, body);
}
const char* op_name(const RequestBody& body) {
  return std::visit(OpName{}, body);
}

RpcEndpoint::RpcEndpoint(redbud::sim::Simulation& sim, Network& net,
                         NodeId node)
    : sim_(&sim), net_(&net), node_(node), incoming_(sim) {
  // Directory entry so a parallel-mode reply can be routed back to this
  // endpoint's partition without the server touching caller state.
  net.register_endpoint(node, this);
}

SimFuture<ResponseBody> RpcEndpoint::call(RpcEndpoint& server,
                                          RequestBody body,
                                          obs::TraceContext ctx) {
  const std::uint64_t xid = next_xid_++;
  const std::size_t bytes = kRpcHeaderBytes + wire_size(body);

  const char* op = op_name(body);
  SimPromise<ResponseBody> promise(*sim_);
  auto fut = promise.future();
  // The wire span is minted here and carried to the server in the message
  // header; it is recorded once the reply has fully arrived back.
  obs::TraceContext rpc_ctx;
  if (obs_ != nullptr && ctx.active()) rpc_ctx = obs_->tracer.child(ctx);
  pending_.emplace(xid, PendingCall{std::move(promise), sim_->now(), op,
                                    rpc_ctx, ctx.span});

  ++calls_sent_;
  req_bytes_sent_ += bytes;
  auto& st = op_stats_[op];
  ++st.sent;
  st.bytes_sent += bytes;
  if (net_->parallel()) {
    // Cross-partition request: arrival bookkeeping runs in the server's
    // partition when the last byte lands there.
    net_->deliver(node_, server.node_, bytes,
                  [srv = &server, xid, from = node_, body = std::move(body),
                   rpc_ctx]() mutable {
                    srv->receive_request(xid, from, std::move(body), rpc_ctx,
                                         false);
                  });
  } else {
    server.peers_[node_] = this;
    sim_->spawn(
        deliver_request(&server, xid, std::move(body), bytes, rpc_ctx, false));
  }
  return fut;
}

SimFuture<RpcResult> RpcEndpoint::call_retry(RpcEndpoint& server,
                                             RequestBody body,
                                             const RetryPolicy& policy,
                                             obs::TraceContext ctx) {
  REDBUD_REQUIRE(policy.max_attempts >= 1, "retry policy with zero attempts");
  REDBUD_REQUIRE(policy.backoff >= 1.0,
                 "retry backoff must not shrink the timeout");
  // A timeout below the fabric's round-trip floor (which also bounds the
  // parallel domain's lookahead window) would retransmit before any reply
  // could possibly arrive — every call would burn its whole budget.
  REDBUD_REQUIRE(policy.timeout >= net_->min_rtt(),
                 "retry timeout below the network min-RTT/lookahead floor");

  const std::uint64_t xid = next_xid_++;
  SimPromise<RpcResult> promise(*sim_);
  auto fut = promise.future();
  obs::TraceContext rpc_ctx;
  if (obs_ != nullptr && ctx.active()) rpc_ctx = obs_->tracer.child(ctx);
  const char* op = op_name(body);
  auto [it, inserted] = retry_pending_.emplace(
      xid,
      RetryCall{std::move(promise), sim_->now(), sim_->now(), policy,
                policy.timeout, 1, true, std::move(body), &server, op,
                rpc_ctx, ctx.span});
  assert(inserted);
  transmit(xid, it->second);
  arm_retry_timer(xid, it->second.cur_timeout);
  return fut;
}

SimFuture<RpcResult> RpcEndpoint::call_result(RpcEndpoint& server,
                                              RequestBody body,
                                              obs::TraceContext ctx) {
  const std::uint64_t xid = next_xid_++;
  SimPromise<RpcResult> promise(*sim_);
  auto fut = promise.future();
  obs::TraceContext rpc_ctx;
  if (obs_ != nullptr && ctx.active()) rpc_ctx = obs_->tracer.child(ctx);
  const char* op = op_name(body);
  auto [it, inserted] = retry_pending_.emplace(
      xid,
      RetryCall{std::move(promise), sim_->now(), sim_->now(), RetryPolicy{},
                redbud::sim::SimTime::zero(), 1, false, std::move(body),
                &server, op, rpc_ctx, ctx.span});
  assert(inserted);
  transmit(xid, it->second);
  return fut;
}

void RpcEndpoint::transmit(std::uint64_t xid, RetryCall& rc) {
  const std::size_t bytes = kRpcHeaderBytes + wire_size(rc.body);
  ++calls_sent_;
  req_bytes_sent_ += bytes;
  auto& st = op_stats_[rc.op];
  ++st.sent;
  st.bytes_sent += bytes;
  rc.sent_at = sim_->now();
  RequestBody copy = rc.body;  // the original stays for retransmission
  if (net_->parallel()) {
    net_->deliver(node_, rc.server->node_, bytes,
                  [srv = rc.server, xid, from = node_,
                   body = std::move(copy), rpc_ctx = rc.rpc_ctx,
                   retryable = rc.retryable]() mutable {
                    srv->receive_request(xid, from, std::move(body), rpc_ctx,
                                         retryable);
                  });
  } else {
    rc.server->peers_[node_] = this;
    sim_->spawn(deliver_request(rc.server, xid, std::move(copy), bytes,
                                rc.rpc_ctx, rc.retryable));
  }
}

void RpcEndpoint::arm_retry_timer(std::uint64_t xid,
                                  redbud::sim::SimTime timeout) {
  sim_->call_at(sim_->now() + timeout,
                [this, xid] { on_retry_timeout(xid); });
}

void RpcEndpoint::on_retry_timeout(std::uint64_t xid) {
  // Xids are never reused, so a stale timer (its call completed, maybe
  // even a later one armed) simply misses here.
  auto it = retry_pending_.find(xid);
  if (it == retry_pending_.end()) return;
  RetryCall& rc = it->second;
  if (sim_->now() < rc.sent_at + rc.cur_timeout) return;  // superseded timer
  if (rc.attempts >= rc.policy.max_attempts) {
    ++retries_exhausted_;
    RpcResult out;
    out.ok = false;
    out.attempts = rc.attempts;
    rc.promise.set_value(std::move(out));
    retry_pending_.erase(it);
    return;
  }
  ++rc.attempts;
  ++retries_sent_;
  rc.cur_timeout =
      std::min(rc.cur_timeout * rc.policy.backoff, rc.policy.max_timeout);
  transmit(xid, rc);
  arm_retry_timer(xid, rc.cur_timeout);
}

Process RpcEndpoint::deliver_request(RpcEndpoint* server, std::uint64_t xid,
                                     RequestBody body, std::size_t bytes,
                                     obs::TraceContext ctx, bool retryable) {
  co_await net_->send(node_, server->node_, bytes);
  server->receive_request(xid, node_, std::move(body), ctx, retryable);
}

void RpcEndpoint::receive_request(std::uint64_t xid, NodeId from,
                                  RequestBody body, obs::TraceContext ctx,
                                  bool retryable) {
  if (down_) {
    // Crashed host: the NIC is dark, the request evaporates. The caller's
    // timeout (if any) is the recovery path.
    ++dropped_while_down_;
    return;
  }
  if (retryable) {
    const std::uint64_t key = dedup_key(from, xid);
    if (auto rit = reply_cache_.find(key); rit != reply_cache_.end()) {
      // Already executed and answered: the reply must have been lost (or
      // is still in flight). Retransmit it instead of re-executing.
      ++dup_replies_served_;
      send_response(from, xid, rit->second);
      return;
    }
    if (!inflight_dedup_.insert(key).second) {
      // Still queued or executing; the eventual reply answers both.
      ++dup_requests_dropped_;
      return;
    }
  }
  ++calls_received_;
  ++op_stats_[op_name(body)].received;
  const bool ok = incoming_.try_send(
      IncomingRpc{xid, from, std::move(body), ctx, retryable});
  assert(ok);
  (void)ok;
}

void RpcEndpoint::cache_reply(NodeId from, std::uint64_t xid,
                              const ResponseBody& body) {
  const std::uint64_t key = dedup_key(from, xid);
  inflight_dedup_.erase(key);
  if (reply_cache_.emplace(key, body).second) {
    reply_cache_fifo_.push_back(key);
    if (reply_cache_fifo_.size() > kReplyCacheCap) {
      reply_cache_.erase(reply_cache_fifo_.front());
      reply_cache_fifo_.pop_front();
    }
  }
}

void RpcEndpoint::reply(const IncomingRpc& rpc, ResponseBody body) {
  if (down_) {
    // The host died between execute and reply: the response is lost. For
    // retryable requests the retransmit after failover re-executes (the
    // reply cache died with the host) — ops must be idempotent.
    ++dropped_while_down_;
    return;
  }
  if (rpc.retryable) cache_reply(rpc.from, rpc.xid, body);
  send_response(rpc.from, rpc.xid, std::move(body));
}

void RpcEndpoint::send_response(NodeId to, std::uint64_t xid,
                                ResponseBody body) {
  const std::size_t bytes = kRpcHeaderBytes + wire_size(body);
  if (net_->parallel()) {
    // Route the response through the endpoint directory: completion runs
    // in the caller's partition at wire arrival.
    RpcEndpoint* peer = net_->endpoint(to);
    assert(peer != nullptr && "reply to an unregistered endpoint");
    net_->deliver(node_, to, bytes,
                  [peer, xid, body = std::move(body)]() mutable {
                    peer->complete_call(xid, std::move(body));
                  });
    return;
  }
  sim_->spawn(deliver_response(to, xid, std::move(body), bytes));
}

Process RpcEndpoint::deliver_response(NodeId to, std::uint64_t xid,
                                      ResponseBody body, std::size_t bytes) {
  co_await net_->send(node_, to, bytes);
  auto it = peers_.find(to);
  assert(it != peers_.end());
  it->second->complete_call(xid, std::move(body));
}

void RpcEndpoint::complete_call(std::uint64_t xid, ResponseBody body) {
  if (auto it = pending_.find(xid); it != pending_.end()) {
    const SimTime rtt = sim_->now() - it->second.sent_at;
    rtt_.record(rtt);
    if (it->second.op != nullptr) op_stats_[it->second.op].rtt.record(rtt);
    if (obs_ != nullptr && it->second.rpc_ctx.active()) {
      obs_->tracer.record(obs::Stage::kRpcWire, it->second.rpc_ctx,
                          it->second.parent, track_, it->second.sent_at,
                          sim_->now());
    }
    it->second.promise.set_value(std::move(body));
    pending_.erase(it);
    return;
  }
  if (auto it = retry_pending_.find(xid); it != retry_pending_.end()) {
    // RTT of the transmission that got answered — approximated as the
    // latest one (a reply racing a retransmit can bias this low; the
    // per-attempt matching a real XID cache would do is not worth it).
    const SimTime rtt = sim_->now() - it->second.sent_at;
    rtt_.record(rtt);
    if (it->second.op != nullptr) op_stats_[it->second.op].rtt.record(rtt);
    if (obs_ != nullptr && it->second.rpc_ctx.active()) {
      obs_->tracer.record(obs::Stage::kRpcWire, it->second.rpc_ctx,
                          it->second.parent, track_, it->second.first_sent_at,
                          sim_->now());
    }
    RpcResult out;
    out.ok = true;
    out.attempts = it->second.attempts;
    out.body = std::move(body);
    it->second.promise.set_value(std::move(out));
    retry_pending_.erase(it);
    return;
  }
  // Late duplicate: the call already completed (a retransmitted request
  // and its lost-then-found original can both produce replies), or it
  // already resolved ok = false and the caller moved on. Drop it.
  ++late_replies_;
}

void RpcEndpoint::set_down(bool down) {
  down_ = down;
  if (down) {
    // Crash semantics: everything volatile on the host is gone — queued
    // requests that were never pulled, the in-flight dedup set, and the
    // reply cache. Survivors are only what the journal made durable.
    while (incoming_.try_recv().has_value()) {
      ++dropped_while_down_;
    }
    inflight_dedup_.clear();
    reply_cache_.clear();
    reply_cache_fifo_.clear();
  }
}

SimTime RpcEndpoint::mean_rtt() const { return rtt_.mean(); }

void RpcEndpoint::dump(std::ostream& out, const std::string& label) const {
  if (op_stats_.empty()) return;
  out << "per-op RPC stats [" << label << "]\n";
  out << "  " << std::left << std::setw(16) << "op" << std::right
      << std::setw(10) << "sent" << std::setw(10) << "served" << std::setw(14)
      << "bytes_sent" << std::setw(14) << "mean_rtt_us" << std::setw(13)
      << "p99_rtt_us" << "\n";
  for (const auto& [op, st] : op_stats_) {
    out << "  " << std::left << std::setw(16) << op << std::right
        << std::setw(10) << st.sent << std::setw(10) << st.received
        << std::setw(14) << st.bytes_sent;
    if (st.rtt.count() > 0) {
      out << std::setw(14) << std::fixed << std::setprecision(1)
          << st.rtt.mean().to_micros() << std::setw(13)
          << st.rtt.percentile(99).to_micros();
    } else {
      out << std::setw(14) << "-" << std::setw(13) << "-";
    }
    out << "\n";
  }
  out.flush();
}

}  // namespace redbud::net
