// Star-topology Ethernet model: every node owns an egress and an ingress
// pipe (its NIC), joined through a switch with fixed fabric latency.
//
// Congestion appears exactly where the paper needs it: when many clients
// flood the MDS with small commit RPCs, the MDS *ingress* pipe and request
// queue back up, and when NFS3 funnels all data through one server, that
// server's NIC saturates.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/future.hpp"
#include "sim/pipe.hpp"
#include "sim/simulation.hpp"

namespace redbud::net {

using NodeId = std::uint32_t;

struct NetworkParams {
  // 1000 Mb/s Ethernet minus framing => ~110 MiB/s usable.
  double nic_bytes_per_second = 110.0 * 1024 * 1024;
  redbud::sim::SimTime link_latency = redbud::sim::SimTime::micros(30);
  redbud::sim::SimTime switch_latency = redbud::sim::SimTime::micros(10);
};

class Network {
 public:
  Network(redbud::sim::Simulation& sim, NetworkParams params);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Register a node; returns its id. Optional NIC speed override.
  NodeId add_node(double nic_bytes_per_second = 0.0);

  // Move `bytes` from `from` to `to`; the future resolves when the last
  // byte has been received (egress queueing + fabric + ingress queueing).
  [[nodiscard]] redbud::sim::SimFuture<redbud::sim::Done> send(
      NodeId from, NodeId to, std::size_t bytes);

  [[nodiscard]] redbud::sim::BitPipe& egress(NodeId n) {
    return *nodes_[n]->egress;
  }
  [[nodiscard]] redbud::sim::BitPipe& ingress(NodeId n) {
    return *nodes_[n]->ingress;
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

 private:
  struct Node {
    std::unique_ptr<redbud::sim::BitPipe> egress;
    std::unique_ptr<redbud::sim::BitPipe> ingress;
  };

  redbud::sim::Process send_proc(NodeId from, NodeId to, std::size_t bytes,
                                 redbud::sim::SimPromise<redbud::sim::Done> p);

  redbud::sim::Simulation* sim_;
  NetworkParams params_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace redbud::net
