// Star-topology Ethernet model: every node owns an egress and an ingress
// pipe (its NIC), joined through a switch with fixed fabric latency.
//
// Congestion appears exactly where the paper needs it: when many clients
// flood the MDS with small commit RPCs, the MDS *ingress* pipe and request
// queue back up, and when NFS3 funnels all data through one server, that
// server's NIC saturates.
//
// Under a parallel SimDomain the switch is the only cross-partition edge:
// each node's pipes live in the partition that simulates the node, and a
// remote send becomes a timestamped mailbox push — the egress reservation
// happens synchronously in the sender's partition (same instant and FIFO
// order as the serial kernel's send coroutine), the ingress reservation
// and completion callback run in the receiver's partition at
// egress-arrival + switch latency, which is >= the domain lookahead.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/future.hpp"
#include "sim/parallel.hpp"
#include "sim/pipe.hpp"
#include "sim/simulation.hpp"

namespace redbud::net {

using NodeId = std::uint32_t;

class RpcEndpoint;

struct NetworkParams {
  // 1000 Mb/s Ethernet minus framing => ~110 MiB/s usable.
  double nic_bytes_per_second = 110.0 * 1024 * 1024;
  redbud::sim::SimTime link_latency = redbud::sim::SimTime::micros(30);
  redbud::sim::SimTime switch_latency = redbud::sim::SimTime::micros(10);
};

class Network {
 public:
  Network(redbud::sim::Simulation& sim, NetworkParams params);
  // Parallel-capable network: nodes must be added with an owning
  // partition via add_node(Simulation&, ...).
  Network(redbud::sim::SimDomain& domain, NetworkParams params);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Register a node; returns its id. Optional NIC speed override.
  NodeId add_node(double nic_bytes_per_second = 0.0);
  // Register a node whose pipes live in `owner`'s partition.
  NodeId add_node(redbud::sim::Simulation& owner,
                  double nic_bytes_per_second = 0.0);

  // Move `bytes` from `from` to `to`; the future resolves when the last
  // byte has been received (egress queueing + fabric + ingress queueing).
  // Requires both nodes in the same partition (always true serially).
  [[nodiscard]] redbud::sim::SimFuture<redbud::sim::Done> send(
      NodeId from, NodeId to, std::size_t bytes);

  // Move `bytes` from `from` to `to` and run `done` in the *receiver's*
  // partition when the last byte arrives. The cross-partition primitive;
  // also valid (and equivalent to send) within one partition.
  void deliver(NodeId from, NodeId to, std::size_t bytes,
               redbud::sim::SmallFn done);

  [[nodiscard]] bool parallel() const {
    return domain_ != nullptr && domain_->parallel();
  }

  // RPC endpoint directory, so a reply can be routed to the caller's
  // partition without the server ever touching caller state directly.
  void register_endpoint(NodeId n, RpcEndpoint* ep);
  [[nodiscard]] RpcEndpoint* endpoint(NodeId n) const {
    return n < endpoints_.size() ? endpoints_[n] : nullptr;
  }

  // The partition simulating node `n` (the network's own sim serially).
  [[nodiscard]] redbud::sim::Simulation& node_sim(NodeId n) {
    return *nodes_[n]->sim;
  }

  [[nodiscard]] redbud::sim::BitPipe& egress(NodeId n) {
    return *nodes_[n]->egress;
  }
  [[nodiscard]] redbud::sim::BitPipe& ingress(NodeId n) {
    return *nodes_[n]->ingress;
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::uint64_t messages_sent() const {
    return messages_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_sent() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    std::unique_ptr<redbud::sim::BitPipe> egress;
    std::unique_ptr<redbud::sim::BitPipe> ingress;
    redbud::sim::Simulation* sim = nullptr;
    std::uint32_t partition = 0;
  };

  redbud::sim::Process send_proc(NodeId from, NodeId to, std::size_t bytes,
                                 redbud::sim::SimPromise<redbud::sim::Done> p);
  redbud::sim::Process deliver_proc(NodeId from, NodeId to,
                                    std::size_t bytes,
                                    redbud::sim::SmallFn done);

  redbud::sim::Simulation* sim_;
  redbud::sim::SimDomain* domain_ = nullptr;
  NetworkParams params_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<RpcEndpoint*> endpoints_;
  // Relaxed atomics: bumped from whichever partition initiates a send.
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace redbud::net
