// Star-topology Ethernet model: every node owns an egress and an ingress
// pipe (its NIC), joined through a switch with fixed fabric latency.
//
// Congestion appears exactly where the paper needs it: when many clients
// flood the MDS with small commit RPCs, the MDS *ingress* pipe and request
// queue back up, and when NFS3 funnels all data through one server, that
// server's NIC saturates.
//
// Under a parallel SimDomain the switch is the only cross-partition edge:
// each node's pipes live in the partition that simulates the node, and a
// remote send becomes a timestamped mailbox push — the egress reservation
// happens synchronously in the sender's partition (same instant and FIFO
// order as the serial kernel's send coroutine), the ingress reservation
// and completion callback run in the receiver's partition at
// egress-arrival + switch latency, which is >= the domain lookahead.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/future.hpp"
#include "sim/parallel.hpp"
#include "sim/pipe.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace redbud::obs {
class MetricsRegistry;
}  // namespace redbud::obs

namespace redbud::net {

using NodeId = std::uint32_t;

class RpcEndpoint;

struct NetworkParams {
  // 1000 Mb/s Ethernet minus framing => ~110 MiB/s usable.
  double nic_bytes_per_second = 110.0 * 1024 * 1024;
  redbud::sim::SimTime link_latency = redbud::sim::SimTime::micros(30);
  redbud::sim::SimTime switch_latency = redbud::sim::SimTime::micros(10);
  // Fault injection: fraction of frames a node's uplink loses, applied to
  // every node at registration. 0 = lossless (the default; no RNG draws
  // happen, so fault-free runs are byte-identical to a build without the
  // hooks). Per-link overrides via set_link_loss().
  double loss_rate = 0.0;
  // Seed for the per-node loss/delay RNG streams (xor-folded with the
  // node id, so each link draws from an independent stream).
  std::uint64_t fault_seed = 0x6c7c7a2f90d3f1b5ull;
};

class Network {
 public:
  Network(redbud::sim::Simulation& sim, NetworkParams params);
  // Parallel-capable network: nodes must be added with an owning
  // partition via add_node(Simulation&, ...).
  Network(redbud::sim::SimDomain& domain, NetworkParams params);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Register a node; returns its id. Optional NIC speed override.
  NodeId add_node(double nic_bytes_per_second = 0.0);
  // Register a node whose pipes live in `owner`'s partition.
  NodeId add_node(redbud::sim::Simulation& owner,
                  double nic_bytes_per_second = 0.0);

  // Move `bytes` from `from` to `to`; the future resolves when the last
  // byte has been received (egress queueing + fabric + ingress queueing).
  // Requires both nodes in the same partition (always true serially).
  [[nodiscard]] redbud::sim::SimFuture<redbud::sim::Done> send(
      NodeId from, NodeId to, std::size_t bytes);

  // Move `bytes` from `from` to `to` and run `done` in the *receiver's*
  // partition when the last byte arrives. The cross-partition primitive;
  // also valid (and equivalent to send) within one partition.
  void deliver(NodeId from, NodeId to, std::size_t bytes,
               redbud::sim::SmallFn done);

  [[nodiscard]] bool parallel() const {
    return domain_ != nullptr && domain_->parallel();
  }

  // RPC endpoint directory, so a reply can be routed to the caller's
  // partition without the server ever touching caller state directly.
  void register_endpoint(NodeId n, RpcEndpoint* ep);
  [[nodiscard]] RpcEndpoint* endpoint(NodeId n) const {
    return n < endpoints_.size() ? endpoints_[n] : nullptr;
  }

  // The partition simulating node `n` (the network's own sim serially).
  [[nodiscard]] redbud::sim::Simulation& node_sim(NodeId n) {
    return *nodes_[n]->sim;
  }

  [[nodiscard]] redbud::sim::BitPipe& egress(NodeId n) {
    return *nodes_[n]->egress;
  }
  [[nodiscard]] redbud::sim::BitPipe& ingress(NodeId n) {
    return *nodes_[n]->ingress;
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::uint64_t messages_sent() const {
    return messages_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_sent() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  // --- fault injection ------------------------------------------------------
  // All fault state is per *source* node and is read/written only from the
  // source's own partition: the loss draw and the extra-delay read happen
  // synchronously at deliver()/send() entry, in per-node RNG streams whose
  // draw order equals the call order — identical serial and parallel, for
  // any worker count. A dropped frame still occupies its slot on the
  // sender's egress pipe (the NIC transmitted it; the fabric lost it) but
  // never arrives: the completion callback is never run, the send future
  // never resolves, and recovery is the caller's (RPC retry) problem.
  // Must be called from the node's owning partition.
  void set_link_loss(NodeId n, double loss_rate);
  // Fixed extra one-way latency added to every frame leaving `n` (a
  // congested or flapping uplink). Must be called from `n`'s partition.
  void set_link_delay(NodeId n, redbud::sim::SimTime extra);
  [[nodiscard]] double link_loss(NodeId n) const {
    return nodes_[n]->loss_rate;
  }
  [[nodiscard]] redbud::sim::SimTime link_delay(NodeId n) const {
    return nodes_[n]->extra_delay;
  }
  [[nodiscard]] std::uint64_t link_dropped(NodeId n) const {
    return nodes_[n]->dropped;
  }
  [[nodiscard]] std::uint64_t messages_dropped() const {
    return drops_.load(std::memory_order_relaxed);
  }
  // Register every node's frame-drop counter as
  // net.frames_dropped{node=N}. Each counter is a plain value written
  // only from the node's owning partition, so sampling it at a barrier
  // instant is race-free — the same argument as the per-client RPC
  // counters. Call once all nodes have been added.
  void register_metrics(redbud::obs::MetricsRegistry& registry) const;
  // Round-trip floor of the fabric: the least time a request + reply pair
  // can take. Retry timeouts below this could never observe a reply.
  [[nodiscard]] redbud::sim::SimTime min_rtt() const {
    return (params_.link_latency + params_.switch_latency) +
           (params_.link_latency + params_.switch_latency);
  }

 private:
  struct Node {
    std::unique_ptr<redbud::sim::BitPipe> egress;
    std::unique_ptr<redbud::sim::BitPipe> ingress;
    redbud::sim::Simulation* sim = nullptr;
    std::uint32_t partition = 0;
    // Fault state, owned by this node's partition (see the fault section
    // of the public API for the determinism argument).
    double loss_rate = 0.0;
    redbud::sim::SimTime extra_delay{};
    redbud::sim::Rng fault_rng{0};
    std::uint64_t dropped = 0;
  };

  // Loss draw for a frame leaving `src`; true = the fabric eats it.
  // Consumes an RNG draw only when the link is actually lossy.
  [[nodiscard]] static bool lose_frame(Node& src) {
    return src.loss_rate > 0.0 &&
           src.fault_rng.next_double() < src.loss_rate;
  }

  redbud::sim::Process send_proc(NodeId from, NodeId to, std::size_t bytes,
                                 bool lost, redbud::sim::SimTime extra,
                                 redbud::sim::SimPromise<redbud::sim::Done> p);
  redbud::sim::Process deliver_proc(NodeId from, NodeId to,
                                    std::size_t bytes, bool lost,
                                    redbud::sim::SimTime extra,
                                    redbud::sim::SmallFn done);

  redbud::sim::Simulation* sim_;
  redbud::sim::SimDomain* domain_ = nullptr;
  NetworkParams params_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<RpcEndpoint*> endpoints_;
  // Relaxed atomics: bumped from whichever partition initiates a send.
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> drops_{0};
};

}  // namespace redbud::net
