#include "net/network.hpp"

#include <cassert>
#include <string>
#include <utility>

#include "obs/metrics_registry.hpp"

namespace redbud::net {

using redbud::sim::BitPipe;
using redbud::sim::Done;
using redbud::sim::Process;
using redbud::sim::SimFuture;
using redbud::sim::SimPromise;
using redbud::sim::SimTime;
using redbud::sim::SmallFn;

Network::Network(redbud::sim::Simulation& sim, NetworkParams params)
    : sim_(&sim), params_(params) {}

Network::Network(redbud::sim::SimDomain& domain, NetworkParams params)
    : sim_(nullptr), domain_(&domain), params_(params) {}

NodeId Network::add_node(double nic_bytes_per_second) {
  assert(sim_ != nullptr && "partitioned network nodes need an owning sim");
  return add_node(*sim_, nic_bytes_per_second);
}

NodeId Network::add_node(redbud::sim::Simulation& owner,
                         double nic_bytes_per_second) {
  const double bw = nic_bytes_per_second > 0.0 ? nic_bytes_per_second
                                               : params_.nic_bytes_per_second;
  auto node = std::make_unique<Node>();
  node->egress = std::make_unique<BitPipe>(owner, bw, params_.link_latency);
  node->ingress = std::make_unique<BitPipe>(owner, bw, params_.link_latency);
  node->sim = &owner;
  node->partition = owner.partition_id();
  node->loss_rate = params_.loss_rate;
  const auto id = static_cast<NodeId>(nodes_.size());
  node->fault_rng = redbud::sim::Rng(params_.fault_seed ^
                                     (0x9e3779b97f4a7c15ull * (id + 1)));
  nodes_.push_back(std::move(node));
  return id;
}

void Network::set_link_loss(NodeId n, double loss_rate) {
  assert(n < nodes_.size());
  assert(loss_rate >= 0.0 && loss_rate <= 1.0);
  nodes_[n]->loss_rate = loss_rate;
}

void Network::set_link_delay(NodeId n, SimTime extra) {
  assert(n < nodes_.size());
  nodes_[n]->extra_delay = extra;
}

void Network::register_metrics(redbud::obs::MetricsRegistry& registry) const {
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    registry.register_value("net.frames_dropped", {{"node", std::to_string(n)}},
                            &nodes_[n]->dropped);
  }
}

void Network::register_endpoint(NodeId n, RpcEndpoint* ep) {
  if (endpoints_.size() <= n) endpoints_.resize(n + 1, nullptr);
  endpoints_[n] = ep;
}

Process Network::send_proc(NodeId from, NodeId to, std::size_t bytes,
                           bool lost, SimTime extra, SimPromise<Done> p) {
  co_await nodes_[from]->egress->transfer(bytes);
  if (lost) co_return;  // frame left the NIC; the fabric ate it — `p`
                        // is destroyed unresolved, waiters stay parked
  co_await nodes_[from]->sim->delay(params_.switch_latency + extra);
  co_await nodes_[to]->ingress->transfer(bytes);
  p.set_value(Done{});
}

SimFuture<Done> Network::send(NodeId from, NodeId to, std::size_t bytes) {
  assert(from < nodes_.size() && to < nodes_.size());
  assert(nodes_[from]->partition == nodes_[to]->partition &&
         "send() across partitions — use deliver()");
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  Node& src = *nodes_[from];
  // Fault decisions happen synchronously at entry so the per-node RNG
  // draw order is the call order — the same FIFO argument that makes the
  // parallel egress reservation match the serial coroutine order.
  const bool lost = lose_frame(src);
  if (lost) {
    ++src.dropped;
    drops_.fetch_add(1, std::memory_order_relaxed);
  }
  SimPromise<Done> p(*src.sim);
  auto fut = p.future();
  src.sim->spawn(send_proc(from, to, bytes, lost, src.extra_delay,
                           std::move(p)));
  return fut;
}

Process Network::deliver_proc(NodeId from, NodeId to, std::size_t bytes,
                              bool lost, SimTime extra, SmallFn done) {
  co_await nodes_[from]->egress->transfer(bytes);
  if (lost) co_return;  // dropped in the fabric: `done` is never run
  co_await nodes_[from]->sim->delay(params_.switch_latency + extra);
  co_await nodes_[to]->ingress->transfer(bytes);
  done();
}

void Network::deliver(NodeId from, NodeId to, std::size_t bytes,
                      SmallFn done) {
  assert(from < nodes_.size() && to < nodes_.size());
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  Node& src = *nodes_[from];
  Node& dst = *nodes_[to];
  // Loss draw + delay read at entry, in the source partition, in call
  // order (see send()). The serial coroutine still makes the egress
  // reservation at its own run point so reservation ordering between
  // dropped and delivered frames is unchanged from the lossless path.
  const bool lost = lose_frame(src);
  if (lost) {
    ++src.dropped;
    drops_.fetch_add(1, std::memory_order_relaxed);
  }
  if (domain_ == nullptr || src.partition == dst.partition) {
    src.sim->spawn(
        deliver_proc(from, to, bytes, lost, src.extra_delay, std::move(done)));
    return;
  }
  // Cross-partition hop. The egress reservation is made synchronously in
  // the sender's partition — same instant and FIFO order as the serial
  // send coroutine, whose first action is the egress transfer. Arrival at
  // the switch output is egress-arrival + switch latency, which is at
  // least link + switch >= domain lookahead in the future, so it is a
  // legal mailbox injection into the receiver's partition, where the
  // ingress reservation and the completion callback run.
  const SimTime at_egress = src.egress->enqueue(bytes);
  if (lost) return;  // NIC slot consumed; nothing crosses the fabric
  const SimTime at_switch_out =
      at_egress + params_.switch_latency + src.extra_delay;
  domain_->post(*src.sim, dst.partition, at_switch_out,
                [this, to, bytes, done = std::move(done)]() mutable {
                  Node& d = *nodes_[to];
                  const SimTime arrival = d.ingress->enqueue(bytes);
                  d.sim->call_at(arrival, std::move(done));
                });
}

}  // namespace redbud::net
