#include "net/network.hpp"

#include <cassert>

namespace redbud::net {

using redbud::sim::BitPipe;
using redbud::sim::Done;
using redbud::sim::Process;
using redbud::sim::SimFuture;
using redbud::sim::SimPromise;

Network::Network(redbud::sim::Simulation& sim, NetworkParams params)
    : sim_(&sim), params_(params) {}

NodeId Network::add_node(double nic_bytes_per_second) {
  const double bw = nic_bytes_per_second > 0.0 ? nic_bytes_per_second
                                               : params_.nic_bytes_per_second;
  auto node = std::make_unique<Node>();
  node->egress = std::make_unique<BitPipe>(*sim_, bw, params_.link_latency);
  node->ingress = std::make_unique<BitPipe>(*sim_, bw, params_.link_latency);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

Process Network::send_proc(NodeId from, NodeId to, std::size_t bytes,
                           SimPromise<Done> p) {
  co_await nodes_[from]->egress->transfer(bytes);
  co_await sim_->delay(params_.switch_latency);
  co_await nodes_[to]->ingress->transfer(bytes);
  p.set_value(Done{});
}

SimFuture<Done> Network::send(NodeId from, NodeId to, std::size_t bytes) {
  assert(from < nodes_.size() && to < nodes_.size());
  ++messages_;
  bytes_ += bytes;
  SimPromise<Done> p(*sim_);
  auto fut = p.future();
  sim_->spawn(send_proc(from, to, bytes, std::move(p)));
  return fut;
}

}  // namespace redbud::net
