#include "net/network.hpp"

#include <cassert>
#include <utility>

namespace redbud::net {

using redbud::sim::BitPipe;
using redbud::sim::Done;
using redbud::sim::Process;
using redbud::sim::SimFuture;
using redbud::sim::SimPromise;
using redbud::sim::SimTime;
using redbud::sim::SmallFn;

Network::Network(redbud::sim::Simulation& sim, NetworkParams params)
    : sim_(&sim), params_(params) {}

Network::Network(redbud::sim::SimDomain& domain, NetworkParams params)
    : sim_(nullptr), domain_(&domain), params_(params) {}

NodeId Network::add_node(double nic_bytes_per_second) {
  assert(sim_ != nullptr && "partitioned network nodes need an owning sim");
  return add_node(*sim_, nic_bytes_per_second);
}

NodeId Network::add_node(redbud::sim::Simulation& owner,
                         double nic_bytes_per_second) {
  const double bw = nic_bytes_per_second > 0.0 ? nic_bytes_per_second
                                               : params_.nic_bytes_per_second;
  auto node = std::make_unique<Node>();
  node->egress = std::make_unique<BitPipe>(owner, bw, params_.link_latency);
  node->ingress = std::make_unique<BitPipe>(owner, bw, params_.link_latency);
  node->sim = &owner;
  node->partition = owner.partition_id();
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::register_endpoint(NodeId n, RpcEndpoint* ep) {
  if (endpoints_.size() <= n) endpoints_.resize(n + 1, nullptr);
  endpoints_[n] = ep;
}

Process Network::send_proc(NodeId from, NodeId to, std::size_t bytes,
                           SimPromise<Done> p) {
  co_await nodes_[from]->egress->transfer(bytes);
  co_await nodes_[from]->sim->delay(params_.switch_latency);
  co_await nodes_[to]->ingress->transfer(bytes);
  p.set_value(Done{});
}

SimFuture<Done> Network::send(NodeId from, NodeId to, std::size_t bytes) {
  assert(from < nodes_.size() && to < nodes_.size());
  assert(nodes_[from]->partition == nodes_[to]->partition &&
         "send() across partitions — use deliver()");
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  Node& src = *nodes_[from];
  SimPromise<Done> p(*src.sim);
  auto fut = p.future();
  src.sim->spawn(send_proc(from, to, bytes, std::move(p)));
  return fut;
}

Process Network::deliver_proc(NodeId from, NodeId to, std::size_t bytes,
                              SmallFn done) {
  co_await nodes_[from]->egress->transfer(bytes);
  co_await nodes_[from]->sim->delay(params_.switch_latency);
  co_await nodes_[to]->ingress->transfer(bytes);
  done();
}

void Network::deliver(NodeId from, NodeId to, std::size_t bytes,
                      SmallFn done) {
  assert(from < nodes_.size() && to < nodes_.size());
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  Node& src = *nodes_[from];
  Node& dst = *nodes_[to];
  if (domain_ == nullptr || src.partition == dst.partition) {
    src.sim->spawn(deliver_proc(from, to, bytes, std::move(done)));
    return;
  }
  // Cross-partition hop. The egress reservation is made synchronously in
  // the sender's partition — same instant and FIFO order as the serial
  // send coroutine, whose first action is the egress transfer. Arrival at
  // the switch output is egress-arrival + switch latency, which is at
  // least link + switch >= domain lookahead in the future, so it is a
  // legal mailbox injection into the receiver's partition, where the
  // ingress reservation and the completion callback run.
  const SimTime at_switch_out =
      src.egress->enqueue(bytes) + params_.switch_latency;
  domain_->post(*src.sim, dst.partition, at_switch_out,
                [this, to, bytes, done = std::move(done)]() mutable {
                  Node& d = *nodes_[to];
                  const SimTime arrival = d.ingress->enqueue(bytes);
                  d.sim->call_at(arrival, std::move(done));
                });
}

}  // namespace redbud::net
