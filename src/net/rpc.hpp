// RPC endpoints over the simulated network.
//
// Each endpoint binds to a network node. Clients `call()` a server
// endpoint and receive a SimFuture of the response; servers pull
// IncomingRpc records from their request channel and `reply()` when done.
// The request channel length is the MDS load signal the paper's adaptive
// compound controller reads.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "obs/obs.hpp"
#include "sim/channel.hpp"
#include "sim/future.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "net/network.hpp"
#include "net/protocol.hpp"

namespace redbud::net {

// Fixed per-message framing overhead (RPC header, XID, auth), bytes.
inline constexpr std::size_t kRpcHeaderBytes = 96;

struct IncomingRpc {
  std::uint64_t xid = 0;
  NodeId from = 0;
  RequestBody body;
  // Trace context carried in the message header: a child span of the
  // caller's context, which the server parents its own spans under.
  // Tracing-only metadata — it does not contribute to wire_size().
  obs::TraceContext ctx;
  // The caller may retransmit this xid: the server dedups duplicates and
  // caches the reply for retransmission (at-least-once wire semantics,
  // exactly-once execution while the reply cache holds the entry).
  bool retryable = false;
};

// Exponential-backoff retransmission contract for call_retry(). The
// timeout doubles (by `backoff`) after every unanswered attempt, capped
// at `max_timeout`; after `max_attempts` unanswered attempts the call
// resolves with ok = false and the caller decides (re-queue, surface).
struct RetryPolicy {
  redbud::sim::SimTime timeout = redbud::sim::SimTime::millis(5);
  double backoff = 2.0;
  redbud::sim::SimTime max_timeout = redbud::sim::SimTime::millis(320);
  std::uint32_t max_attempts = 8;
};

// Outcome of a retryable (or result-style) call. `body` is only valid
// when ok; `attempts` counts transmissions (1 = no retransmit needed).
struct RpcResult {
  bool ok = false;
  std::uint32_t attempts = 1;
  ResponseBody body;
};

class RpcEndpoint {
 public:
  RpcEndpoint(redbud::sim::Simulation& sim, Network& net, NodeId node);
  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  [[nodiscard]] NodeId node() const { return node_; }

  // Client side: send a request to `server`; future resolves with the
  // response body once the reply has fully arrived back. An active `ctx`
  // makes the call traced: a child rpc-wire span is minted, carried to the
  // server in the message header and recorded when the reply completes.
  [[nodiscard]] redbud::sim::SimFuture<ResponseBody> call(
      RpcEndpoint& server, RequestBody body, obs::TraceContext ctx = {});

  // Like call(), but with at-least-once delivery: the request is
  // retransmitted under `policy` (same xid, so the server's reply cache
  // dedups re-executions) until a reply lands or the attempt budget is
  // exhausted. Resolves ALWAYS — with ok = false after the last timeout —
  // so callers never park forever on a lossy or partitioned link.
  // Aborts (REDBUD_REQUIRE) if the policy's first timeout is below the
  // network's min RTT / lookahead floor: such a schedule would retransmit
  // before any reply could arrive.
  [[nodiscard]] redbud::sim::SimFuture<RpcResult> call_retry(
      RpcEndpoint& server, RequestBody body, const RetryPolicy& policy,
      obs::TraceContext ctx = {});

  // call() with an RpcResult envelope and no timeout: single transmission,
  // resolves ok = true on reply, parks forever on loss (exactly the plain
  // call() semantics). Lets call sites switch retry on/off uniformly.
  [[nodiscard]] redbud::sim::SimFuture<RpcResult> call_result(
      RpcEndpoint& server, RequestBody body, obs::TraceContext ctx = {});

  // Attach the cluster's observability bundle; `track` is the Perfetto
  // track rpc-wire spans of calls made from this endpoint land on, and
  // `labels` identify this endpoint's registered counters.
  void set_obs(obs::Obs* obs, obs::Track track, const obs::Labels& labels) {
    obs_ = obs;
    track_ = track;
    obs->registry.register_value("rpc.calls_sent", labels, &calls_sent_);
    obs->registry.register_value("rpc.calls_received", labels,
                                 &calls_received_);
    obs->registry.register_value("rpc.request_bytes_sent", labels,
                                 &req_bytes_sent_);
    obs->registry.register_histogram("rpc.rtt", labels, &rtt_);
    obs->registry.register_value("rpc.retries_sent", labels, &retries_sent_);
    obs->registry.register_value("rpc.retries_exhausted", labels,
                                 &retries_exhausted_);
    obs->registry.register_value("rpc.dup_requests_dropped", labels,
                                 &dup_requests_dropped_);
    obs->registry.register_value("rpc.dup_replies_served", labels,
                                 &dup_replies_served_);
    obs->registry.register_value("rpc.late_replies", labels, &late_replies_);
    obs->registry.register_value("rpc.dropped_while_down", labels,
                                 &dropped_while_down_);
  }

  // Server side: the queue of requests awaiting processing.
  [[nodiscard]] redbud::sim::Channel<IncomingRpc>& incoming() {
    return incoming_;
  }
  [[nodiscard]] std::size_t incoming_depth() const { return incoming_.size(); }

  // Server side: answer a pulled request.
  void reply(const IncomingRpc& rpc, ResponseBody body);

  // --- fault injection ------------------------------------------------------
  // Crash/restore the endpoint's host. While down, arriving requests and
  // outgoing replies are dropped. Going down also wipes volatile server
  // state: the queued request channel, the in-flight dedup set and the
  // reply cache — exactly what a real crash loses.
  void set_down(bool down);
  [[nodiscard]] bool down() const { return down_; }

  // --- statistics -----------------------------------------------------------
  [[nodiscard]] std::uint64_t calls_sent() const { return calls_sent_; }
  [[nodiscard]] std::uint64_t calls_received() const { return calls_received_; }
  [[nodiscard]] std::uint64_t retries_sent() const { return retries_sent_; }
  [[nodiscard]] std::uint64_t retries_exhausted() const {
    return retries_exhausted_;
  }
  [[nodiscard]] std::uint64_t dup_requests_dropped() const {
    return dup_requests_dropped_;
  }
  [[nodiscard]] std::uint64_t dup_replies_served() const {
    return dup_replies_served_;
  }
  [[nodiscard]] std::uint64_t late_replies() const { return late_replies_; }
  [[nodiscard]] std::uint64_t dropped_while_down() const {
    return dropped_while_down_;
  }
  [[nodiscard]] std::uint64_t request_bytes_sent() const {
    return req_bytes_sent_;
  }
  // Mean observed round-trip time of completed calls from this endpoint —
  // the network congestion signal for the adaptive compound controller.
  [[nodiscard]] redbud::sim::SimTime mean_rtt() const;
  [[nodiscard]] redbud::sim::LatencyHistogram& rtt() { return rtt_; }

  // Per-op accounting, keyed by op_name(): calls issued/served by this
  // endpoint, request bytes, and client-side round-trip histograms.
  struct OpStats {
    std::uint64_t sent = 0;          // calls issued from this endpoint
    std::uint64_t received = 0;      // requests that arrived here
    std::uint64_t bytes_sent = 0;    // request bytes incl. framing
    redbud::sim::LatencyHistogram rtt;  // completed round trips
  };
  [[nodiscard]] const std::map<std::string, OpStats>& op_stats() const {
    return op_stats_;
  }
  // Render the per-op table (op, sent, served, mean/p99 RTT) to `out`,
  // prefixed with `label`. Prints nothing when no ops were recorded.
  void dump(std::ostream& out, const std::string& label) const;

 private:
  friend class RpcRegistry;

  struct PendingCall {
    redbud::sim::SimPromise<ResponseBody> promise;
    redbud::sim::SimTime sent_at;
    const char* op = nullptr;  // op_name() of the request, for op_stats_
    obs::TraceContext rpc_ctx;   // the rpc-wire span (inert when untraced)
    std::uint64_t parent = 0;    // caller's span, parent of the wire span
  };

  // A call carrying an RpcResult promise: retryable (timer armed, body
  // kept for retransmission) or result-style (single shot, no timer).
  struct RetryCall {
    redbud::sim::SimPromise<RpcResult> promise;
    redbud::sim::SimTime first_sent_at;
    redbud::sim::SimTime sent_at;  // of the latest transmission
    RetryPolicy policy;
    redbud::sim::SimTime cur_timeout;
    std::uint32_t attempts = 1;
    bool retryable = false;  // false: call_result(), no timer, no body copy
    RequestBody body;        // kept only for retransmission
    RpcEndpoint* server = nullptr;
    const char* op = nullptr;
    obs::TraceContext rpc_ctx;
    std::uint64_t parent = 0;
  };

  // Dedup identity of a retryable request as seen by the server. Xids are
  // per-caller monotone and never reused, so (caller node, xid) is unique
  // across the cluster lifetime; 16 bits of node + 48 bits of xid.
  [[nodiscard]] static std::uint64_t dedup_key(NodeId from,
                                               std::uint64_t xid) {
    return (static_cast<std::uint64_t>(from) << 48) |
           (xid & 0xffffffffffffull);
  }

  redbud::sim::Process deliver_request(RpcEndpoint* server, std::uint64_t xid,
                                       RequestBody body, std::size_t bytes,
                                       obs::TraceContext ctx, bool retryable);
  redbud::sim::Process deliver_response(NodeId to, std::uint64_t xid,
                                        ResponseBody body, std::size_t bytes);
  // Server-side arrival bookkeeping + enqueue. Runs in the server's
  // partition (directly from the wire-arrival event in parallel mode).
  void receive_request(std::uint64_t xid, NodeId from, RequestBody body,
                       obs::TraceContext ctx, bool retryable);
  void complete_call(std::uint64_t xid, ResponseBody body);
  // (Re)transmit a RetryCall's request; updates sent_at + wire stats.
  void transmit(std::uint64_t xid, RetryCall& rc);
  void arm_retry_timer(std::uint64_t xid, redbud::sim::SimTime timeout);
  void on_retry_timeout(std::uint64_t xid);
  // Put a response on the wire towards `to` (shared by reply() and the
  // reply-cache retransmission path).
  void send_response(NodeId to, std::uint64_t xid, ResponseBody body);
  void cache_reply(NodeId from, std::uint64_t xid, const ResponseBody& body);

  redbud::sim::Simulation* sim_;
  Network* net_;
  NodeId node_;
  redbud::sim::Channel<IncomingRpc> incoming_;
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  std::unordered_map<std::uint64_t, RetryCall> retry_pending_;
  // Reverse lookup: who do we send replies to. Registered on first call.
  std::unordered_map<NodeId, RpcEndpoint*> peers_;
  // Server-side exactly-once-execution state for retryable requests:
  // requests currently queued or executing (duplicates dropped), and a
  // bounded FIFO cache of sent replies (duplicates answered from cache).
  std::unordered_set<std::uint64_t> inflight_dedup_;
  std::unordered_map<std::uint64_t, ResponseBody> reply_cache_;
  std::deque<std::uint64_t> reply_cache_fifo_;
  static constexpr std::size_t kReplyCacheCap = 4096;
  bool down_ = false;
  std::uint64_t next_xid_ = 1;
  std::uint64_t calls_sent_ = 0;
  std::uint64_t calls_received_ = 0;
  std::uint64_t req_bytes_sent_ = 0;
  std::uint64_t retries_sent_ = 0;
  std::uint64_t retries_exhausted_ = 0;
  std::uint64_t dup_requests_dropped_ = 0;
  std::uint64_t dup_replies_served_ = 0;
  std::uint64_t late_replies_ = 0;
  std::uint64_t dropped_while_down_ = 0;
  redbud::sim::LatencyHistogram rtt_;
  std::map<std::string, OpStats> op_stats_;
  obs::Obs* obs_ = nullptr;
  obs::Track track_;
};

}  // namespace redbud::net
