// RPC endpoints over the simulated network.
//
// Each endpoint binds to a network node. Clients `call()` a server
// endpoint and receive a SimFuture of the response; servers pull
// IncomingRpc records from their request channel and `reply()` when done.
// The request channel length is the MDS load signal the paper's adaptive
// compound controller reads.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <unordered_map>

#include "obs/obs.hpp"
#include "sim/channel.hpp"
#include "sim/future.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "net/network.hpp"
#include "net/protocol.hpp"

namespace redbud::net {

// Fixed per-message framing overhead (RPC header, XID, auth), bytes.
inline constexpr std::size_t kRpcHeaderBytes = 96;

struct IncomingRpc {
  std::uint64_t xid = 0;
  NodeId from = 0;
  RequestBody body;
  // Trace context carried in the message header: a child span of the
  // caller's context, which the server parents its own spans under.
  // Tracing-only metadata — it does not contribute to wire_size().
  obs::TraceContext ctx;
};

class RpcEndpoint {
 public:
  RpcEndpoint(redbud::sim::Simulation& sim, Network& net, NodeId node);
  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  [[nodiscard]] NodeId node() const { return node_; }

  // Client side: send a request to `server`; future resolves with the
  // response body once the reply has fully arrived back. An active `ctx`
  // makes the call traced: a child rpc-wire span is minted, carried to the
  // server in the message header and recorded when the reply completes.
  [[nodiscard]] redbud::sim::SimFuture<ResponseBody> call(
      RpcEndpoint& server, RequestBody body, obs::TraceContext ctx = {});

  // Attach the cluster's observability bundle; `track` is the Perfetto
  // track rpc-wire spans of calls made from this endpoint land on, and
  // `labels` identify this endpoint's registered counters.
  void set_obs(obs::Obs* obs, obs::Track track, const obs::Labels& labels) {
    obs_ = obs;
    track_ = track;
    obs->registry.register_value("rpc.calls_sent", labels, &calls_sent_);
    obs->registry.register_value("rpc.calls_received", labels,
                                 &calls_received_);
    obs->registry.register_value("rpc.request_bytes_sent", labels,
                                 &req_bytes_sent_);
    obs->registry.register_histogram("rpc.rtt", labels, &rtt_);
  }

  // Server side: the queue of requests awaiting processing.
  [[nodiscard]] redbud::sim::Channel<IncomingRpc>& incoming() {
    return incoming_;
  }
  [[nodiscard]] std::size_t incoming_depth() const { return incoming_.size(); }

  // Server side: answer a pulled request.
  void reply(const IncomingRpc& rpc, ResponseBody body);

  // --- statistics -----------------------------------------------------------
  [[nodiscard]] std::uint64_t calls_sent() const { return calls_sent_; }
  [[nodiscard]] std::uint64_t calls_received() const { return calls_received_; }
  [[nodiscard]] std::uint64_t request_bytes_sent() const {
    return req_bytes_sent_;
  }
  // Mean observed round-trip time of completed calls from this endpoint —
  // the network congestion signal for the adaptive compound controller.
  [[nodiscard]] redbud::sim::SimTime mean_rtt() const;
  [[nodiscard]] redbud::sim::LatencyHistogram& rtt() { return rtt_; }

  // Per-op accounting, keyed by op_name(): calls issued/served by this
  // endpoint, request bytes, and client-side round-trip histograms.
  struct OpStats {
    std::uint64_t sent = 0;          // calls issued from this endpoint
    std::uint64_t received = 0;      // requests that arrived here
    std::uint64_t bytes_sent = 0;    // request bytes incl. framing
    redbud::sim::LatencyHistogram rtt;  // completed round trips
  };
  [[nodiscard]] const std::map<std::string, OpStats>& op_stats() const {
    return op_stats_;
  }
  // Render the per-op table (op, sent, served, mean/p99 RTT) to `out`,
  // prefixed with `label`. Prints nothing when no ops were recorded.
  void dump(std::ostream& out, const std::string& label) const;

 private:
  friend class RpcRegistry;

  struct PendingCall {
    redbud::sim::SimPromise<ResponseBody> promise;
    redbud::sim::SimTime sent_at;
    const char* op = nullptr;  // op_name() of the request, for op_stats_
    obs::TraceContext rpc_ctx;   // the rpc-wire span (inert when untraced)
    std::uint64_t parent = 0;    // caller's span, parent of the wire span
  };

  redbud::sim::Process deliver_request(RpcEndpoint* server, std::uint64_t xid,
                                       RequestBody body, std::size_t bytes,
                                       obs::TraceContext ctx);
  redbud::sim::Process deliver_response(NodeId to, std::uint64_t xid,
                                        ResponseBody body, std::size_t bytes);
  // Server-side arrival bookkeeping + enqueue. Runs in the server's
  // partition (directly from the wire-arrival event in parallel mode).
  void receive_request(std::uint64_t xid, NodeId from, RequestBody body,
                       obs::TraceContext ctx);
  void complete_call(std::uint64_t xid, ResponseBody body);

  redbud::sim::Simulation* sim_;
  Network* net_;
  NodeId node_;
  redbud::sim::Channel<IncomingRpc> incoming_;
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  // Reverse lookup: who do we send replies to. Registered on first call.
  std::unordered_map<NodeId, RpcEndpoint*> peers_;
  std::uint64_t next_xid_ = 1;
  std::uint64_t calls_sent_ = 0;
  std::uint64_t calls_received_ = 0;
  std::uint64_t req_bytes_sent_ = 0;
  redbud::sim::LatencyHistogram rtt_;
  std::map<std::string, OpStats> op_stats_;
  obs::Obs* obs_ = nullptr;
  obs::Track track_;
};

}  // namespace redbud::net
