// RPC protocol vocabulary shared by the Redbud client/MDS and the NFS3 /
// PVFS2 baseline models.
//
// Messages are plain structs carried by value through the simulated
// network; wire_size() gives the byte count that actually occupies the
// pipes. CommitReq is the *compound* RPC: one network message carrying the
// commit entries of several files (its entry count is the paper's
// "compound degree").
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "storage/types.hpp"

namespace redbud::net {

using FileId = std::uint64_t;
using DirId = std::uint64_t;
using ClientId = std::uint32_t;

inline constexpr DirId kRootDir = 0;
inline constexpr FileId kInvalidFile = ~FileId{0};

// --- shard routing ----------------------------------------------------------
//
// The metadata service is an N-shard cluster. A file's owning shard is
// encoded in the high bits of its FileId (ids are minted by that shard's
// namespace), so routing a file op is a pure function of the id — no
// lookup table, no extra RPC. DirIds minted by make_dir carry the same
// tag. Shard 0 uses tag 0: a single-shard cluster produces exactly the
// ids the unsharded code did.
inline constexpr unsigned kShardBits = 8;
inline constexpr unsigned kShardShift = 64 - kShardBits;
// kInvalidFile's high byte is 0xFF; valid shards stay below this.
inline constexpr std::uint32_t kMaxShards = 0xFF;

[[nodiscard]] constexpr std::uint32_t shard_of_id(std::uint64_t id) {
  return static_cast<std::uint32_t>(id >> kShardShift);
}
[[nodiscard]] constexpr std::uint64_t shard_tag(std::uint32_t shard) {
  return std::uint64_t(shard) << kShardShift;
}

enum class Status : std::uint8_t {
  kOk,
  kNoEnt,
  kExists,
  kNoSpace,
  kStale,
  // The service did not answer within the caller's retry budget (crashed
  // shard, partitioned link). Only surfaced by retry-enabled clients.
  kUnavailable,
};

// Mapping of a contiguous file range to physical storage — the paper's
// <file offset, length, device id, volume offset, state> extent.
struct Extent {
  std::uint64_t file_block = 0;  // offset within the file, in blocks
  std::uint32_t nblocks = 0;
  storage::PhysAddr addr;

  [[nodiscard]] std::uint64_t end_block() const { return file_block + nblocks; }
  friend bool operator==(const Extent&, const Extent&) = default;
};

// --- Redbud metadata ops ----------------------------------------------------

struct CreateReq {
  DirId dir = kRootDir;
  std::string name;
};
struct CreateResp {
  Status status = Status::kOk;
  FileId file = kInvalidFile;
};

struct LookupReq {
  DirId dir = kRootDir;
  std::string name;
};
struct LookupResp {
  Status status = Status::kOk;
  FileId file = kInvalidFile;
  std::uint64_t size_bytes = 0;
};

// Fetch (and for writes, allocate) the layout of a file range.
struct LayoutGetReq {
  FileId file = kInvalidFile;
  std::uint64_t file_block = 0;
  std::uint32_t nblocks = 0;
  bool allocate = false;
};
struct LayoutGetResp {
  Status status = Status::kOk;
  std::vector<Extent> extents;
};

// One file's worth of metadata commit.
struct CommitEntry {
  FileId file = kInvalidFile;
  std::vector<Extent> extents;
  std::uint64_t new_size_bytes = 0;
  // Content checksums, one per block across `extents` in order. Journaled
  // by the MDS; the crash-consistency checker compares them against the
  // durable disk state to detect metadata that outran its data.
  std::vector<storage::ContentToken> block_tokens;
};
// Compound commit RPC: `entries.size()` is the compound degree.
struct CommitReq {
  std::vector<CommitEntry> entries;
};
struct CommitResp {
  Status status = Status::kOk;
  // MDS load signal piggybacked for the adaptive compound controller.
  std::uint32_t mds_queue_len = 0;
};

// Space delegation: grant this client a contiguous chunk to allocate from
// locally.
struct DelegateReq {
  std::uint64_t nblocks = 0;
};
struct DelegateResp {
  Status status = Status::kOk;
  storage::PhysAddr start;
  std::uint64_t nblocks = 0;
};
// Return the unused tail of a delegated chunk.
struct DelegateReturnReq {
  storage::PhysAddr start;
  std::uint64_t nblocks = 0;
};

struct RemoveReq {
  DirId dir = kRootDir;
  std::string name;
};
struct RemoveResp {
  Status status = Status::kOk;
};

struct StatReq {
  FileId file = kInvalidFile;
};
struct StatResp {
  Status status = Status::kOk;
  std::uint64_t size_bytes = 0;
};

// --- NFS3 baseline ops (data flows through the server over Ethernet) --------

struct NfsWriteReq {
  FileId file = kInvalidFile;
  std::uint64_t offset_bytes = 0;
  std::uint32_t nbytes = 0;
  // UNSTABLE writes buffer on the server; stable writes hit its disk.
  bool stable = false;
  std::vector<storage::ContentToken> tokens;  // one per touched block
};
struct NfsWriteResp {
  Status status = Status::kOk;
};

struct NfsCommitReq {
  FileId file = kInvalidFile;
};
struct NfsCommitResp {
  Status status = Status::kOk;
};

struct NfsReadReq {
  FileId file = kInvalidFile;
  std::uint64_t offset_bytes = 0;
  std::uint32_t nbytes = 0;
};
struct NfsReadResp {
  Status status = Status::kOk;
  std::vector<storage::ContentToken> tokens;  // payload rides in wire_size
};

// --- PVFS2 baseline ops (user-space servers; data over Ethernet) ------------

struct PvfsIoReq {
  FileId file = kInvalidFile;
  std::uint64_t offset_bytes = 0;
  std::uint32_t nbytes = 0;
  bool is_write = false;
  std::vector<storage::ContentToken> tokens;
};
struct PvfsIoResp {
  Status status = Status::kOk;
  std::vector<storage::ContentToken> tokens;
};

// -----------------------------------------------------------------------------

using RequestBody =
    std::variant<CreateReq, LookupReq, LayoutGetReq, CommitReq, DelegateReq,
                 DelegateReturnReq, RemoveReq, StatReq, NfsWriteReq,
                 NfsCommitReq, NfsReadReq, PvfsIoReq>;

using ResponseBody =
    std::variant<CreateResp, LookupResp, LayoutGetResp, CommitResp,
                 DelegateResp, RemoveResp, StatResp, NfsWriteResp,
                 NfsCommitResp, NfsReadResp, PvfsIoResp>;

// Wire sizes (bytes) as they occupy network pipes. RPC framing overhead is
// added by the transport.
[[nodiscard]] std::size_t wire_size(const RequestBody& body);
[[nodiscard]] std::size_t wire_size(const ResponseBody& body);

// Human-readable op name, for statistics.
[[nodiscard]] const char* op_name(const RequestBody& body);

}  // namespace redbud::net
