// Elevator I/O scheduler with request merging.
//
// Mirrors the Linux block layer behaviour the paper leans on: requests
// that arrive while the disk is busy sit in a sorted queue where adjacent
// same-kind requests are merged (front, back, and bridge coalescing), and
// dispatch follows C-LOOK elevator order from the current head position.
//
// Merge statistics feed Figure 4 (I/O merge ratio): synchronous commit
// keeps at most one outstanding request per application thread, so merges
// almost never happen; delayed commit floods the queue and merges appear;
// space delegation makes the flooded requests *contiguous* and merges
// multiply.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "sim/future.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "storage/disk.hpp"
#include "storage/types.hpp"

namespace redbud::storage {

struct SchedulerParams {
  bool merging = true;
  // Cap on a merged request, in blocks (Linux: max_sectors_kb analogue).
  std::uint32_t max_merge_blocks = 2048;  // 8 MiB
  // C-LOOK elevator dispatch when true; arrival order when false.
  bool elevator = true;
};

class IoScheduler {
 public:
  IoScheduler(redbud::sim::Simulation& sim, Disk& disk, SchedulerParams params);
  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  // Spawn the dispatch daemon. Must be called once before submitting.
  void start();

  [[nodiscard]] Disk& disk() { return *disk_; }
  [[nodiscard]] const Disk& disk() const { return *disk_; }

  // Submit an I/O. For writes, `tokens` holds one content token per block
  // and is applied to the disk's durable store when the I/O completes.
  // The future resolves at completion time.
  [[nodiscard]] redbud::sim::SimFuture<redbud::sim::Done> submit(
      IoKind kind, BlockNo block, std::uint32_t nblocks,
      std::vector<ContentToken> tokens = {});

  // Future that resolves once the queue is empty and the disk idle.
  [[nodiscard]] redbud::sim::SimFuture<redbud::sim::Done> drained();

  // --- statistics -----------------------------------------------------------
  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }
  [[nodiscard]] std::uint64_t merged() const { return merged_; }
  [[nodiscard]] std::uint64_t submitted_writes() const {
    return submitted_writes_;
  }
  [[nodiscard]] std::uint64_t merged_writes() const { return merged_writes_; }
  // Fraction of submitted requests absorbed by merging into another
  // request (iostat's rrqm/wrqm analogue).
  [[nodiscard]] double merge_ratio() const {
    return submitted_ == 0 ? 0.0 : double(merged_) / double(submitted_);
  }
  // Write-only merge ratio (iostat wrqm/s / w/s — what Figure 4 plots).
  [[nodiscard]] double write_merge_ratio() const {
    return submitted_writes_ == 0
               ? 0.0
               : double(merged_writes_) / double(submitted_writes_);
  }
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] redbud::sim::LatencyHistogram& latency() { return latency_; }
  [[nodiscard]] const redbud::sim::LatencyHistogram& latency() const {
    return latency_;
  }
  [[nodiscard]] bool busy() const { return busy_; }
  void reset_stats();

  // Register this scheduler's counters and latency with the registry.
  void register_metrics(obs::MetricsRegistry& reg,
                        const obs::Labels& labels) const {
    reg.register_value("io_sched.submitted", labels, &submitted_);
    reg.register_value("io_sched.dispatched", labels, &dispatched_);
    reg.register_value("io_sched.merged", labels, &merged_);
    reg.register_value("io_sched.submitted_writes", labels,
                       &submitted_writes_);
    reg.register_value("io_sched.merged_writes", labels, &merged_writes_);
    reg.register_histogram("io_sched.latency", labels, &latency_);
  }

 private:
  struct Segment {
    BlockNo block;
    std::uint32_t nblocks;
    std::vector<ContentToken> tokens;
    redbud::sim::SimPromise<redbud::sim::Done> promise;
    redbud::sim::SimTime submitted_at;
  };
  struct Pending {
    BlockNo block = 0;
    std::uint32_t nblocks = 0;
    IoKind kind = IoKind::kRead;
    std::uint64_t arrival_seq = 0;  // of the oldest constituent
    std::vector<Segment> segments;
  };
  using PendingMap = std::map<BlockNo, Pending>;

  redbud::sim::Process dispatch_loop();
  [[nodiscard]] Pending take_next();
  // Try to merge a new request into `map`; returns true when absorbed.
  bool try_merge(PendingMap& map, BlockNo block, std::uint32_t nblocks,
                 Segment&& seg);
  void complete(Pending& p);

  redbud::sim::Simulation* sim_;
  Disk* disk_;
  SchedulerParams params_;
  PendingMap reads_;
  PendingMap writes_;
  redbud::sim::Signal work_;
  std::vector<redbud::sim::SimPromise<redbud::sim::Done>> drain_waiters_;
  bool busy_ = false;
  bool started_ = false;
  std::uint64_t next_arrival_seq_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t merged_ = 0;
  std::uint64_t submitted_writes_ = 0;
  std::uint64_t merged_writes_ = 0;
  // Scratch: kind of the request currently being inserted (for stats).
  bool inserting_write_ = false;
  redbud::sim::LatencyHistogram latency_;
};

}  // namespace redbud::storage
