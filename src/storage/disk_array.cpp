#include "storage/disk_array.hpp"

#include <cassert>
#include <utility>

namespace redbud::storage {

using redbud::sim::Done;
using redbud::sim::Process;
using redbud::sim::SimFuture;
using redbud::sim::SimPromise;
using redbud::sim::SimTime;

ContentToken make_token(std::uint64_t file_id, std::uint64_t block_in_file,
                        std::uint64_t version) {
  // SplitMix64-style mix of the three coordinates; never the unwritten
  // sentinel.
  std::uint64_t z = file_id * 0x9E3779B97F4A7C15ULL +
                    block_in_file * 0xBF58476D1CE4E5B9ULL +
                    version * 0x94D049BB133111EBULL + 0x2545F4914F6CDD1DULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z == kUnwrittenToken ? 1 : z;
}

DiskArray::DiskArray(redbud::sim::Simulation& sim, ArrayParams params)
    : sim_(&sim), params_(params) {
  assert(params_.ndisks > 0);
  for (std::uint32_t i = 0; i < params_.ndisks; ++i) {
    DiskParams dp = params_.disk;
    dp.seed = params_.disk.seed + i;
    disks_.push_back(std::make_unique<Disk>(sim, dp));
    schedulers_.push_back(
        std::make_unique<IoScheduler>(sim, *disks_.back(), params_.scheduler));
  }
  fc_ = std::make_unique<redbud::sim::BitPipe>(
      sim, params_.fc_bytes_per_second, params_.fc_latency);
}

void DiskArray::start() {
  for (auto& s : schedulers_) s->start();
}

Process DiskArray::write_proc(PhysAddr addr, std::uint32_t nblocks,
                              std::vector<ContentToken> tokens,
                              SimPromise<Done> p) {
  co_await fc_->transfer(std::size_t(nblocks) * kBlockSize);
  // Future obtained in its own statement: GCC 12 double-destroys
  // non-trivially-destructible by-value call arguments placed inside a
  // co_await expression, so never pass the token vector there directly.
  auto io = schedulers_[addr.device]->submit(IoKind::kWrite, addr.block,
                                             nblocks, std::move(tokens));
  co_await io;
  p.set_value(Done{});
}

Process DiskArray::read_proc(PhysAddr addr, std::uint32_t nblocks,
                             SimPromise<Done> p) {
  co_await schedulers_[addr.device]->submit(IoKind::kRead, addr.block, nblocks);
  co_await fc_->transfer(std::size_t(nblocks) * kBlockSize);
  p.set_value(Done{});
}

SimFuture<Done> DiskArray::write(PhysAddr addr, std::uint32_t nblocks,
                                 std::vector<ContentToken> tokens) {
  assert(addr.device < disks_.size());
  assert(tokens.size() == nblocks);
  SimPromise<Done> p(*sim_);
  auto fut = p.future();
  sim_->spawn(write_proc(addr, nblocks, std::move(tokens), std::move(p)));
  return fut;
}

SimFuture<Done> DiskArray::write(redbud::sim::Simulation& issuer,
                                 PhysAddr addr, std::uint32_t nblocks,
                                 std::vector<ContentToken> tokens) {
  if (!parallel()) return write(addr, nblocks, std::move(tokens));
  assert(addr.device < disks_.size());
  assert(tokens.size() == nblocks);
  SimPromise<Done> p(issuer);
  auto fut = p.future();
  // Command/payload hop to the array: one FC propagation delay, which is
  // >= the domain lookahead, so the arrival is a legal mailbox injection.
  // Payload serialization on the shared fabric pipe happens at the array.
  domain_->post(
      issuer, sim_->partition_id(), issuer.now() + params_.fc_latency,
      [this, addr, nblocks, toks = std::move(tokens), p,
       ipart = issuer.partition_id()]() mutable {
        sim_->spawn(
            write_arrival_proc(addr, nblocks, std::move(toks), std::move(p),
                               ipart));
      });
  return fut;
}

Process DiskArray::write_arrival_proc(PhysAddr addr, std::uint32_t nblocks,
                                      std::vector<ContentToken> tokens,
                                      SimPromise<Done> p,
                                      std::uint32_t issuer_partition) {
  // Serialize the payload on the shared fabric pipe. enqueue() reports the
  // far-end arrival; propagation was already paid on the request hop, so
  // strip the latency term to get the transmit-complete instant.
  const std::size_t bytes = std::size_t(nblocks) * kBlockSize;
  const SimTime tx_done = fc_->enqueue(bytes) - fc_->latency();
  if (tx_done > sim_->now()) co_await sim_->delay(tx_done - sim_->now());
  auto io = schedulers_[addr.device]->submit(IoKind::kWrite, addr.block,
                                             nblocks, std::move(tokens));
  co_await io;
  // Durable-ack hop back to the issuer's partition.
  domain_->post(*sim_, issuer_partition, sim_->now() + params_.fc_latency,
                [p]() mutable { p.set_value(Done{}); });
}

SimFuture<Done> DiskArray::read(PhysAddr addr, std::uint32_t nblocks) {
  assert(addr.device < disks_.size());
  SimPromise<Done> p(*sim_);
  auto fut = p.future();
  sim_->spawn(read_proc(addr, nblocks, std::move(p)));
  return fut;
}

SimFuture<std::vector<ContentToken>> DiskArray::read_tokens(
    redbud::sim::Simulation& issuer, PhysAddr addr, std::uint32_t nblocks) {
  assert(addr.device < disks_.size());
  SimPromise<std::vector<ContentToken>> p(issuer);
  auto fut = p.future();
  if (!parallel()) {
    // Same event pattern as read(); the tokens are captured at completion
    // instead of peeked afterwards by the caller.
    sim_->spawn(read_tokens_proc(addr, nblocks, std::move(p)));
    return fut;
  }
  domain_->post(
      issuer, sim_->partition_id(), issuer.now() + params_.fc_latency,
      [this, addr, nblocks, p, ipart = issuer.partition_id()]() mutable {
        sim_->spawn(read_arrival_proc(addr, nblocks, std::move(p), ipart));
      });
  return fut;
}

Process DiskArray::read_tokens_proc(PhysAddr addr, std::uint32_t nblocks,
                                    SimPromise<std::vector<ContentToken>> p) {
  co_await schedulers_[addr.device]->submit(IoKind::kRead, addr.block, nblocks);
  co_await fc_->transfer(std::size_t(nblocks) * kBlockSize);
  p.set_value(disks_[addr.device]->load(addr.block, nblocks));
}

Process DiskArray::read_arrival_proc(PhysAddr addr, std::uint32_t nblocks,
                                     SimPromise<std::vector<ContentToken>> p,
                                     std::uint32_t issuer_partition) {
  auto io = schedulers_[addr.device]->submit(IoKind::kRead, addr.block, nblocks);
  co_await io;
  auto tokens = disks_[addr.device]->load(addr.block, nblocks);
  const SimTime tx_done =
      fc_->enqueue(std::size_t(nblocks) * kBlockSize) - fc_->latency();
  domain_->post(*sim_, issuer_partition, tx_done + params_.fc_latency,
                [p, toks = std::move(tokens)]() mutable {
                  p.set_value(std::move(toks));
                });
}

std::vector<ContentToken> DiskArray::peek(PhysAddr addr,
                                          std::uint32_t nblocks) const {
  return disks_[addr.device]->load(addr.block, nblocks);
}

std::uint64_t DiskArray::total_submitted() const {
  std::uint64_t n = 0;
  for (const auto& s : schedulers_) n += s->submitted();
  return n;
}

std::uint64_t DiskArray::total_dispatched() const {
  std::uint64_t n = 0;
  for (const auto& s : schedulers_) n += s->dispatched();
  return n;
}

std::uint64_t DiskArray::total_merged() const {
  std::uint64_t n = 0;
  for (const auto& s : schedulers_) n += s->merged();
  return n;
}

double DiskArray::merge_ratio() const {
  const auto sub = total_submitted();
  return sub == 0 ? 0.0 : double(total_merged()) / double(sub);
}

double DiskArray::write_merge_ratio() const {
  std::uint64_t sub = 0;
  std::uint64_t merged = 0;
  for (const auto& s : schedulers_) {
    sub += s->submitted_writes();
    merged += s->merged_writes();
  }
  return sub == 0 ? 0.0 : double(merged) / double(sub);
}

void DiskArray::reset_stats() {
  for (auto& s : schedulers_) s->reset_stats();
  for (auto& d : disks_) d->reset_stats();
}

}  // namespace redbud::storage
