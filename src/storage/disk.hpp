// Mechanical disk model.
//
// Service time = controller overhead + seek + rotational latency +
// transfer. Seek time grows with the square root of the head travel
// distance between the shortest (track-to-track) and full-stroke times;
// sequential I/O (zero travel) pays neither seek nor rotation, which is
// exactly why the paper's space delegation — clustering one client's
// allocations — pays off.
//
// The disk also stores per-block content tokens so reads, verification and
// crash-consistency checks observe real durable state: a write's tokens
// become visible only when its service completes.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "storage/blktrace.hpp"
#include "storage/types.hpp"

namespace redbud::storage {

struct DiskParams {
  std::uint64_t total_blocks = (64ull << 30) / kBlockSize;  // 64 GiB volume
  redbud::sim::SimTime track_seek = redbud::sim::SimTime::micros(300);
  redbud::sim::SimTime full_seek = redbud::sim::SimTime::millis(14);
  double rpm = 7200.0;
  double transfer_bytes_per_sec = 120.0 * 1024 * 1024;
  redbud::sim::SimTime controller_overhead = redbud::sim::SimTime::micros(60);
  std::uint64_t seed = 0x5EEDD15C;
};

class Disk {
 public:
  Disk(redbud::sim::Simulation& sim, DiskParams params);
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Compute the service time for an I/O starting at `block`, advance the
  // head past it, and record a trace event. Called by the I/O scheduler at
  // dispatch time.
  [[nodiscard]] redbud::sim::SimTime service(IoKind kind, BlockNo block,
                                             std::uint32_t nblocks);

  // Durable content store. Writes are applied by the scheduler when the
  // corresponding I/O completes.
  void store(BlockNo block, std::span<const ContentToken> tokens);
  [[nodiscard]] std::vector<ContentToken> load(BlockNo block,
                                               std::uint32_t nblocks) const;

  [[nodiscard]] const DiskParams& params() const { return params_; }
  [[nodiscard]] BlockNo head() const { return head_; }
  [[nodiscard]] BlkTrace& trace() { return trace_; }
  [[nodiscard]] const BlkTrace& trace() const { return trace_; }

  [[nodiscard]] std::uint64_t ios_serviced() const { return ios_serviced_; }
  [[nodiscard]] std::uint64_t blocks_written() const { return blocks_written_; }
  [[nodiscard]] std::uint64_t blocks_read() const { return blocks_read_; }
  [[nodiscard]] redbud::sim::SimTime busy_time() const { return busy_time_; }
  [[nodiscard]] std::uint64_t stored_block_count() const {
    return contents_.size();
  }

  // Wipe volatile statistics (not the content store).
  void reset_stats();

  // Fail-slow injection: every subsequent service time is multiplied by
  // `f` (>= 1; 1 restores health). Models a degraded spindle — media
  // retries, vibration, a dying motor — without touching the RNG stream,
  // so a slowed run draws the same rotational positions as a healthy one.
  void set_slow_factor(double f) { slow_factor_ = f; }
  [[nodiscard]] double slow_factor() const { return slow_factor_; }

 private:
  [[nodiscard]] redbud::sim::SimTime seek_time(std::uint64_t distance) const;

  redbud::sim::Simulation* sim_;
  DiskParams params_;
  redbud::sim::Rng rng_;
  BlockNo head_ = 0;
  redbud::sim::SimTime last_io_end_ = redbud::sim::SimTime::zero();
  BlkTrace trace_;
  std::unordered_map<BlockNo, ContentToken> contents_;
  std::uint64_t ios_serviced_ = 0;
  std::uint64_t blocks_written_ = 0;
  std::uint64_t blocks_read_ = 0;
  redbud::sim::SimTime busy_time_ = redbud::sim::SimTime::zero();
  double slow_factor_ = 1.0;
};

}  // namespace redbud::storage
