#include "storage/blktrace.hpp"

#include <cmath>
#include <fstream>

namespace redbud::storage {

std::uint64_t BlkTrace::seek_count() const {
  std::uint64_t n = 0;
  for (const auto& e : events_) {
    if (e.seek_distance != 0) ++n;
  }
  return n;
}

double BlkTrace::mean_abs_seek() const {
  if (events_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& e : events_) {
    sum += std::abs(double(e.seek_distance));
  }
  return sum / double(events_.size());
}

bool BlkTrace::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "time_s,kind,block,nblocks,seek_distance\n";
  for (const auto& e : events_) {
    out << e.at.to_seconds() << ','
        << (e.kind == IoKind::kWrite ? 'W' : 'R') << ',' << e.block << ','
        << e.nblocks << ',' << e.seek_distance << '\n';
  }
  return bool(out);
}

}  // namespace redbud::storage
