#include "storage/io_scheduler.hpp"

#include <cassert>
#include <limits>
#include <utility>

namespace redbud::storage {

using redbud::sim::Done;
using redbud::sim::Process;
using redbud::sim::SimFuture;
using redbud::sim::SimPromise;
using redbud::sim::SimTime;

IoScheduler::IoScheduler(redbud::sim::Simulation& sim, Disk& disk,
                         SchedulerParams params)
    : sim_(&sim), disk_(&disk), params_(params), work_(sim) {}

void IoScheduler::start() {
  assert(!started_);
  started_ = true;
  sim_->spawn(dispatch_loop());
}

std::size_t IoScheduler::queue_depth() const {
  std::size_t n = 0;
  for (const auto& [_, p] : reads_) n += p.segments.size();
  for (const auto& [_, p] : writes_) n += p.segments.size();
  return n;
}

SimFuture<Done> IoScheduler::submit(IoKind kind, BlockNo block,
                                    std::uint32_t nblocks,
                                    std::vector<ContentToken> tokens) {
  assert(started_ && "IoScheduler::start() not called");
  assert(nblocks > 0);
  assert(kind == IoKind::kRead || tokens.size() == nblocks);
  ++submitted_;
  inserting_write_ = kind == IoKind::kWrite;
  if (inserting_write_) ++submitted_writes_;

  SimPromise<Done> promise(*sim_);
  auto fut = promise.future();
  Segment seg{block, nblocks, std::move(tokens), std::move(promise),
              sim_->now()};

  auto& map = kind == IoKind::kRead ? reads_ : writes_;
  if (!params_.merging || !try_merge(map, block, nblocks, std::move(seg))) {
    if (auto it = map.find(block); it != map.end()) {
      // A pending request already starts at this block (rewrite of the
      // same extent): absorb the new request into it.
      it->second.nblocks = std::max(it->second.nblocks, nblocks);
      it->second.segments.push_back(std::move(seg));
      if (params_.merging) {
        ++merged_;
        if (inserting_write_) ++merged_writes_;
      }
    } else {
      Pending p;
      p.block = block;
      p.nblocks = nblocks;
      p.kind = kind;
      p.arrival_seq = next_arrival_seq_++;
      p.segments.push_back(std::move(seg));
      map.emplace(block, std::move(p));
    }
  }
  work_.notify_all();
  return fut;
}

bool IoScheduler::try_merge(PendingMap& map, BlockNo block,
                            std::uint32_t nblocks, Segment&& seg) {
  // Back merge: a pending request ends exactly where this one starts.
  if (auto it = map.lower_bound(block); it != map.begin()) {
    auto prev = std::prev(it);
    Pending& p = prev->second;
    if (p.block + p.nblocks == block &&
        p.nblocks + nblocks <= params_.max_merge_blocks) {
      p.nblocks += nblocks;
      p.segments.push_back(std::move(seg));
      ++merged_;
      if (inserting_write_) ++merged_writes_;
      // Bridge coalesce: the grown request may now touch its successor.
      if (it != map.end() && p.block + p.nblocks == it->first &&
          p.nblocks + it->second.nblocks <= params_.max_merge_blocks) {
        p.nblocks += it->second.nblocks;
        p.arrival_seq = std::min(p.arrival_seq, it->second.arrival_seq);
        for (auto& s : it->second.segments) p.segments.push_back(std::move(s));
        map.erase(it);
        ++merged_;
      }
      return true;
    }
  }
  // Front merge: this request ends exactly where a pending one starts.
  if (auto it = map.find(block + nblocks); it != map.end()) {
    if (nblocks + it->second.nblocks <= params_.max_merge_blocks) {
      Pending p = std::move(it->second);
      map.erase(it);
      p.block = block;
      p.nblocks += nblocks;
      p.segments.push_back(std::move(seg));
      ++merged_;
      if (inserting_write_) ++merged_writes_;
      if (auto existing = map.find(block); existing != map.end()) {
        // Overlapping request streams (e.g. several readers of the same
        // strip) can leave a pending that already starts here; absorb the
        // merged request into it — dropping it would strand its promises.
        Pending& e = existing->second;
        e.nblocks = std::max(e.nblocks, p.nblocks);
        e.arrival_seq = std::min(e.arrival_seq, p.arrival_seq);
        for (auto& s : p.segments) e.segments.push_back(std::move(s));
        ++merged_;
      } else {
        map.emplace(block, std::move(p));
      }
      return true;
    }
  }
  return false;
}

IoScheduler::Pending IoScheduler::take_next() {
  assert(!reads_.empty() || !writes_.empty());
  PendingMap* map = nullptr;
  PendingMap::iterator pick;

  if (params_.elevator) {
    // C-LOOK: the nearest pending request at or beyond the head, over both
    // kinds; wrap to the lowest block when none is ahead.
    const BlockNo head = disk_->head();
    auto candidate = [&](PendingMap& m) {
      if (m.empty()) return;
      auto it = m.lower_bound(head);
      if (it == m.end()) it = m.begin();  // wrap
      const bool ahead = it->first >= head;
      if (!map) {
        map = &m;
        pick = it;
        return;
      }
      const bool cur_ahead = pick->first >= head;
      // Prefer ahead-of-head requests; among equals, smaller travel.
      if (ahead != cur_ahead) {
        if (ahead) {
          map = &m;
          pick = it;
        }
        return;
      }
      if (it->first < pick->first || (!ahead && it->first < pick->first)) {
        map = &m;
        pick = it;
      }
    };
    candidate(reads_);
    candidate(writes_);
  } else {
    // Arrival order: the request containing the oldest constituent.
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (auto* m : {&reads_, &writes_}) {
      for (auto it = m->begin(); it != m->end(); ++it) {
        if (it->second.arrival_seq < best) {
          best = it->second.arrival_seq;
          map = m;
          pick = it;
        }
      }
    }
  }

  assert(map);
  Pending out = std::move(pick->second);
  map->erase(pick);
  return out;
}

void IoScheduler::complete(Pending& p) {
  for (auto& seg : p.segments) {
    if (p.kind == IoKind::kWrite) {
      disk_->store(seg.block, seg.tokens);
    }
    latency_.record(sim_->now() - seg.submitted_at);
    seg.promise.set_value(Done{});
  }
}

Process IoScheduler::dispatch_loop() {
  for (;;) {
    while (reads_.empty() && writes_.empty()) {
      busy_ = false;
      for (auto& w : drain_waiters_) w.set_value(Done{});
      drain_waiters_.clear();
      co_await work_.wait();
    }
    busy_ = true;
    Pending p = take_next();
    ++dispatched_;
    const SimTime svc = disk_->service(p.kind, p.block, p.nblocks);
    co_await sim_->delay(svc);
    complete(p);
  }
}

SimFuture<Done> IoScheduler::drained() {
  SimPromise<Done> p(*sim_);
  auto fut = p.future();
  if (!busy_ && reads_.empty() && writes_.empty()) {
    p.set_value(Done{});
  } else {
    drain_waiters_.push_back(std::move(p));
  }
  return fut;
}

void IoScheduler::reset_stats() {
  submitted_ = 0;
  dispatched_ = 0;
  merged_ = 0;
  submitted_writes_ = 0;
  merged_writes_ = 0;
  latency_.reset();
}

}  // namespace redbud::storage
