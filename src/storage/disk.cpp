#include "storage/disk.hpp"

#include <cassert>
#include <cmath>

namespace redbud::storage {

using redbud::sim::SimTime;

Disk::Disk(redbud::sim::Simulation& sim, DiskParams params)
    : sim_(&sim), params_(params), rng_(params.seed) {}

SimTime Disk::seek_time(std::uint64_t distance) const {
  if (distance == 0) return SimTime::zero();
  const double frac =
      std::min(1.0, double(distance) / double(params_.total_blocks));
  const double span_ms =
      (params_.full_seek - params_.track_seek).to_millis();
  return params_.track_seek + SimTime::millis_f(span_ms * std::sqrt(frac));
}

SimTime Disk::service(IoKind kind, BlockNo block, std::uint32_t nblocks) {
  assert(nblocks > 0);
  const auto distance = block >= head_ ? block - head_ : head_ - block;
  const std::int64_t signed_distance =
      block >= head_ ? std::int64_t(distance) : -std::int64_t(distance);

  SimTime t = params_.controller_overhead;
  t += seek_time(distance);
  const double rev_ms = 60'000.0 / params_.rpm;
  if (distance != 0) {
    // Random rotational positioning; sequential access streams with the
    // platter and pays no extra rotation.
    t += SimTime::millis_f(rng_.next_double() * rev_ms);
  } else if (sim_->now() > last_io_end_ + SimTime::millis_f(rev_ms)) {
    // Sequential with the previous I/O, but the disk has been idle: the
    // platter rotated away and the head must wait for the sector again.
    // This is what makes an isolated journal flush cost milliseconds.
    t += SimTime::millis_f(rng_.next_double() * rev_ms);
  }
  t += SimTime::seconds_f(double(nblocks) * double(kBlockSize) /
                          params_.transfer_bytes_per_sec);
  if (slow_factor_ != 1.0) t = t * slow_factor_;

  trace_.record(TraceEvent{sim_->now(), kind, block, nblocks, signed_distance});
  head_ = block + nblocks;
  ++ios_serviced_;
  if (kind == IoKind::kWrite) {
    blocks_written_ += nblocks;
  } else {
    blocks_read_ += nblocks;
  }
  busy_time_ += t;
  last_io_end_ = sim_->now() + t;
  return t;
}

void Disk::store(BlockNo block, std::span<const ContentToken> tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    contents_[block + i] = tokens[i];
  }
}

std::vector<ContentToken> Disk::load(BlockNo block,
                                     std::uint32_t nblocks) const {
  std::vector<ContentToken> out(nblocks, kUnwrittenToken);
  for (std::uint32_t i = 0; i < nblocks; ++i) {
    if (auto it = contents_.find(block + i); it != contents_.end()) {
      out[i] = it->second;
    }
  }
  return out;
}

void Disk::reset_stats() {
  ios_serviced_ = 0;
  blocks_written_ = 0;
  blocks_read_ = 0;
  busy_time_ = SimTime::zero();
  trace_.clear();
}

}  // namespace redbud::storage
