// Common block-layer types.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace redbud::storage {

// The file systems in this repository operate on 4 KiB blocks.
inline constexpr std::uint64_t kBlockSize = 4096;

using BlockNo = std::uint64_t;

[[nodiscard]] inline constexpr std::uint64_t blocks_for_bytes(std::uint64_t bytes) {
  return (bytes + kBlockSize - 1) / kBlockSize;
}

enum class IoKind : std::uint8_t { kRead, kWrite };

// A physical address on the disk array: device + block within its volume.
struct PhysAddr {
  std::uint32_t device = 0;
  BlockNo block = 0;

  friend constexpr bool operator==(const PhysAddr&, const PhysAddr&) = default;
};

// Content tokens stand in for real page contents: each written block
// carries a 64-bit token (a hash of file id / offset / version computed by
// the writer). Reads return the stored tokens, so end-to-end data
// verification and crash-consistency checks are real, not cosmetic.
using ContentToken = std::uint64_t;

// Token for a block that was never written.
inline constexpr ContentToken kUnwrittenToken = 0;

[[nodiscard]] ContentToken make_token(std::uint64_t file_id,
                                      std::uint64_t block_in_file,
                                      std::uint64_t version);

}  // namespace redbud::storage
