// blktrace-style block-level trace recorder.
//
// The paper's Figure 5 plots disk-seek scatter over time collected with
// blktrace; this recorder captures the same information natively from the
// disk model: every dispatched I/O with its start block, size, and the
// seek distance from the previous head position.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "storage/types.hpp"

namespace redbud::storage {

struct TraceEvent {
  redbud::sim::SimTime at;
  IoKind kind;
  BlockNo block;
  std::uint32_t nblocks;
  // Signed head movement from the previous dispatch (blocks); 0 means the
  // I/O was sequential with its predecessor.
  std::int64_t seek_distance;
};

class BlkTrace {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(TraceEvent ev) {
    if (enabled_) events_.push_back(ev);
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

  // Number of dispatches that required head movement.
  [[nodiscard]] std::uint64_t seek_count() const;
  // Mean absolute seek distance in blocks over all dispatches.
  [[nodiscard]] double mean_abs_seek() const;

  // CSV: time_s,kind,block,nblocks,seek_distance
  [[nodiscard]] bool write_csv(const std::string& path) const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace redbud::storage
