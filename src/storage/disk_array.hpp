// Shared disk array reached over Fibre Channel.
//
// Matches the paper's data path: clients bypass the MDS and talk to the
// array directly through a 4 Gb FC network. The array hosts one volume
// per device; each device has its own elevator scheduler. All clients
// share one FC fabric pipe, so heavy large-file traffic queues there —
// which is why Redbud still beats NFS3 on large files (NFS3 pushes data
// through the single server's 1 Gb Ethernet NIC instead).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/future.hpp"
#include "sim/parallel.hpp"
#include "sim/pipe.hpp"
#include "sim/simulation.hpp"
#include "storage/disk.hpp"
#include "storage/io_scheduler.hpp"
#include "storage/types.hpp"

namespace redbud::storage {

struct ArrayParams {
  std::uint32_t ndisks = 4;
  DiskParams disk;
  SchedulerParams scheduler;
  // 4 Gb FC with 8b/10b encoding => ~400 MB/s of payload.
  double fc_bytes_per_second = 400.0 * 1024 * 1024;
  redbud::sim::SimTime fc_latency = redbud::sim::SimTime::micros(50);
};

class DiskArray {
 public:
  DiskArray(redbud::sim::Simulation& sim, ArrayParams params);
  DiskArray(const DiskArray&) = delete;
  DiskArray& operator=(const DiskArray&) = delete;

  // Spawn per-device dispatch daemons. Call once before any I/O.
  void start();

  // Attach the partitioned domain (parallel clusters only). The array and
  // its schedulers live in `sim_`'s partition; cross-partition issuers
  // reach it through timestamped FC-latency mailbox hops.
  void bind_domain(redbud::sim::SimDomain* domain) { domain_ = domain; }
  [[nodiscard]] bool parallel() const {
    return domain_ != nullptr && domain_->parallel();
  }

  // Data-path write: FC transfer of the payload, then the device write.
  // Resolves when the blocks are durable on the platter.
  [[nodiscard]] redbud::sim::SimFuture<redbud::sim::Done> write(
      PhysAddr addr, std::uint32_t nblocks, std::vector<ContentToken> tokens);
  // Partition-aware variant: the completion resolves in `issuer`'s
  // partition. Serially identical to write() above.
  [[nodiscard]] redbud::sim::SimFuture<redbud::sim::Done> write(
      redbud::sim::Simulation& issuer, PhysAddr addr, std::uint32_t nblocks,
      std::vector<ContentToken> tokens);

  // Data-path read: device read, then FC transfer back. Fetch the tokens
  // with peek() after the future resolves.
  [[nodiscard]] redbud::sim::SimFuture<redbud::sim::Done> read(
      PhysAddr addr, std::uint32_t nblocks);
  // Partition-aware read: resolves in `issuer`'s partition with the block
  // tokens captured at read completion (a cross-partition issuer cannot
  // peek() the device from its own thread).
  [[nodiscard]] redbud::sim::SimFuture<std::vector<ContentToken>> read_tokens(
      redbud::sim::Simulation& issuer, PhysAddr addr, std::uint32_t nblocks);

  // Durable content inspection (used by reads after completion, by the
  // crash-consistency checker, and by tests).
  [[nodiscard]] std::vector<ContentToken> peek(PhysAddr addr,
                                               std::uint32_t nblocks) const;

  [[nodiscard]] std::uint32_t ndisks() const {
    return static_cast<std::uint32_t>(disks_.size());
  }
  [[nodiscard]] Disk& disk(std::uint32_t device) { return *disks_[device]; }
  [[nodiscard]] const Disk& disk(std::uint32_t device) const {
    return *disks_[device];
  }
  // Fail-slow injection on one spindle (see Disk::set_slow_factor). Must
  // be called from the array's partition.
  void set_disk_slow_factor(std::uint32_t device, double f) {
    disks_[device]->set_slow_factor(f);
  }
  [[nodiscard]] IoScheduler& scheduler(std::uint32_t device) {
    return *schedulers_[device];
  }
  [[nodiscard]] redbud::sim::BitPipe& fc_pipe() { return *fc_; }

  // Aggregate elevator statistics over all devices.
  [[nodiscard]] std::uint64_t total_submitted() const;
  [[nodiscard]] std::uint64_t total_dispatched() const;
  [[nodiscard]] std::uint64_t total_merged() const;
  [[nodiscard]] double merge_ratio() const;
  [[nodiscard]] double write_merge_ratio() const;
  void reset_stats();

 private:
  redbud::sim::Process write_proc(PhysAddr addr, std::uint32_t nblocks,
                                  std::vector<ContentToken> tokens,
                                  redbud::sim::SimPromise<redbud::sim::Done> p);
  redbud::sim::Process read_proc(PhysAddr addr, std::uint32_t nblocks,
                                 redbud::sim::SimPromise<redbud::sim::Done> p);
  redbud::sim::Process read_tokens_proc(
      PhysAddr addr, std::uint32_t nblocks,
      redbud::sim::SimPromise<std::vector<ContentToken>> p);
  redbud::sim::Process write_arrival_proc(
      PhysAddr addr, std::uint32_t nblocks, std::vector<ContentToken> tokens,
      redbud::sim::SimPromise<redbud::sim::Done> p,
      std::uint32_t issuer_partition);
  redbud::sim::Process read_arrival_proc(
      PhysAddr addr, std::uint32_t nblocks,
      redbud::sim::SimPromise<std::vector<ContentToken>> p,
      std::uint32_t issuer_partition);

  redbud::sim::Simulation* sim_;
  redbud::sim::SimDomain* domain_ = nullptr;
  ArrayParams params_;
  std::vector<std::unique_ptr<Disk>> disks_;
  std::vector<std::unique_ptr<IoScheduler>> schedulers_;
  std::unique_ptr<redbud::sim::BitPipe> fc_;
};

}  // namespace redbud::storage
