#include "workload/openloop.hpp"

#include <algorithm>
#include <cassert>

#include "sim/simulation.hpp"

namespace redbud::workload {

using net::Status;
using redbud::sim::Done;
using redbud::sim::Process;
using redbud::sim::SimFuture;
using redbud::sim::SimPromise;
using redbud::sim::SimTime;

const char* op_class_name(OpClass c) {
  switch (c) {
    case OpClass::kCreate:
      return "create";
    case OpClass::kWrite:
      return "write";
    case OpClass::kRead:
      return "read";
    case OpClass::kFsync:
      return "fsync";
    case OpClass::kRemove:
      return "remove";
  }
  return "?";
}

OpenLoopEngine::OpenLoopEngine(redbud::sim::Simulation& sim,
                               client::ClientHost& host, OpenLoopParams params,
                               redbud::sim::Rng rng)
    : sim_(&sim),
      host_(&host),
      params_(params),
      rng_(rng),
      arrivals_(params.arrivals, rng_.split()),
      zipf_(std::uint64_t(params.clients) * params.files_per_client,
            params.zipf_theta) {
  assert(params_.clients > 0 && params_.files_per_client > 0);
  double total = 0;
  for (const double w : params_.mix) total += w;
  assert(total > 0);
  double acc = 0;
  for (std::size_t i = 0; i < kNumOpClasses; ++i) {
    acc += params_.mix[i] / total;
    cum_mix_[i] = acc;
  }
  files_.assign(std::uint64_t(params_.clients) * params_.files_per_client,
                net::kInvalidFile);
  sessions_.reserve(params_.clients);
  for (std::uint32_t c = 0; c < params_.clients; ++c) {
    sessions_.push_back(&host_->open_session());
  }
}

std::string OpenLoopEngine::file_name(std::uint32_t client,
                                      std::uint32_t slot) const {
  return "h" + std::to_string(host_->host_id()) + "_c" +
         std::to_string(client) + "_f" + std::to_string(slot);
}

SimFuture<Done> OpenLoopEngine::prepare() {
  assert(!prep_promise_.has_value() && "prepare() called twice");
  prep_promise_.emplace(*sim_);
  auto fut = prep_promise_->future();
  const std::uint32_t lanes =
      std::min(params_.prepare_parallelism, params_.clients);
  prepared_pending_ = lanes;
  const std::uint32_t per = (params_.clients + lanes - 1) / lanes;
  for (std::uint32_t l = 0; l < lanes; ++l) {
    const std::uint32_t first = l * per;
    if (first >= params_.clients) {
      // Short final stripe: the lane has no clients, retire it now.
      if (--prepared_pending_ == 0) prep_promise_->set_value(Done{});
      continue;
    }
    const std::uint32_t n = std::min(per, params_.clients - first);
    sim_->spawn(creator(first, n));
  }
  return fut;
}

Process OpenLoopEngine::creator(std::uint32_t first_client,
                                std::uint32_t nclients) {
  for (std::uint32_t c = first_client; c < first_client + nclients; ++c) {
    auto& fs = *sessions_[c];
    for (std::uint32_t s = 0; s < params_.files_per_client; ++s) {
      auto cfut = fs.create(net::kRootDir, file_name(c, s));
      const net::FileId id = co_await cfut;
      if (id == net::kInvalidFile) {
        ++prepare_failures_;
        continue;
      }
      files_[std::uint64_t(c) * params_.files_per_client + s] = id;
      auto wfut = fs.write(id, 0, params_.write_bytes);
      if (co_await wfut != Status::kOk) ++prepare_failures_;
    }
  }
  if (--prepared_pending_ == 0) prep_promise_->set_value(Done{});
}

void OpenLoopEngine::register_metrics(obs::MetricsRegistry& reg,
                                      std::uint32_t host_id) {
  const obs::Labels labels = {{"host", std::to_string(host_id)}};
  reg.register_value("openloop.outstanding", labels, &outstanding_);
  reg.register_value("openloop.shed", labels, &shed_);
  reg.register_value("openloop.arrivals", labels, &arrivals_n_);
}

void OpenLoopEngine::start(const Schedule& schedule) {
  assert(!started_);
  assert(schedule.measure_from <= schedule.measure_until &&
         schedule.measure_until <= schedule.stop_at &&
         schedule.start_at <= schedule.measure_from);
  started_ = true;
  sched_ = schedule;
  measured_span_ = sched_.measure_until - sched_.measure_from;
  sim_->spawn(dispatcher());
}

OpClass OpenLoopEngine::sample_class() {
  const double u = rng_.next_double();
  for (std::size_t i = 0; i < kNumOpClasses; ++i) {
    if (u < cum_mix_[i]) return static_cast<OpClass>(i);
  }
  return OpClass::kRemove;
}

Process OpenLoopEngine::dispatcher() {
  // Spawned before the cluster runs, so now() here is 0 in every kernel
  // and the wait below lands at the same absolute instant regardless of
  // worker count. (Spawning mid-run from the host thread would anchor
  // the dispatcher at a partition-local now() that differs between the
  // serial and partitioned kernels.)
  if (sched_.start_at > sim_->now()) {
    co_await sim_->delay(sched_.start_at - sim_->now());
  }
  assert(prepared_pending_ == 0 && "start_at arrived before prepare() done");
  for (;;) {
    co_await sim_->delay(arrivals_.next_gap(sim_->now()));
    const SimTime now = sim_->now();
    if (stopped_ || now >= sched_.stop_at) co_return;
    ++arrivals_n_;
    if (outstanding_ >= params_.max_outstanding) {
      ++shed_;
      continue;
    }
    OpClass cls = sample_class();
    // A remove with nothing scratch-created yet becomes a create, so the
    // scratch namespace stays balanced instead of shedding the op.
    if (cls == OpClass::kRemove && scratch_names_.empty()) {
      cls = OpClass::kCreate;
    }
    const std::uint64_t slot = zipf_.sample(rng_);
    const auto client =
        static_cast<std::uint32_t>(slot / params_.files_per_client);
    const bool measured =
        now >= sched_.measure_from && now < sched_.measure_until;
    sim_->spawn(op_proc(cls, client, slot, measured));
  }
}

Process OpenLoopEngine::op_proc(OpClass cls, std::uint32_t client,
                                std::uint64_t file_slot, bool measured) {
  ++outstanding_;
  if (outstanding_ > peak_out_) peak_out_ = outstanding_;
  // Re-check the scratch stack: an earlier remove issued this timestep
  // may have drained it between dispatch and here.
  if (cls == OpClass::kRemove && scratch_names_.empty()) {
    cls = OpClass::kCreate;
  }
  OpClassStats& st = stats_[static_cast<std::size_t>(cls)];
  ++st.issued;
  const SimTime t0 = sim_->now();
  auto& fs = *sessions_[client];
  Status status = Status::kOk;
  switch (cls) {
    case OpClass::kCreate: {
      const std::string name = "h" + std::to_string(host_->host_id()) + "_s" +
                               std::to_string(scratch_seq_++);
      auto fut = fs.create(net::kRootDir, name);
      const net::FileId id = co_await fut;
      if (id == net::kInvalidFile) {
        status = Status::kUnavailable;
      } else {
        scratch_names_.push_back(name);
      }
      break;
    }
    case OpClass::kWrite: {
      auto fut = fs.write(files_[file_slot], 0, params_.write_bytes);
      status = co_await fut;
      break;
    }
    case OpClass::kRead: {
      auto fut = fs.read(files_[file_slot], 0, params_.read_bytes);
      const fsapi::ReadResult rr = co_await fut;
      status = rr.status;
      break;
    }
    case OpClass::kFsync: {
      auto fut = fs.fsync(files_[file_slot]);
      status = co_await fut;
      break;
    }
    case OpClass::kRemove: {
      const std::string name = std::move(scratch_names_.back());
      scratch_names_.pop_back();
      auto fut = fs.remove(net::kRootDir, name);
      status = co_await fut;
      break;
    }
  }
  ++st.completed;
  if (status != Status::kOk) ++st.failed;
  if (measured) st.latency.record(sim_->now() - t0);
  --outstanding_;
}

}  // namespace redbud::workload
