// Workload engine: drives fsapi::FsClient implementations with the
// paper's five benchmarks and collects the measured-window statistics the
// figures are built from.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/testbed.hpp"
#include "fsapi/fs_client.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace redbud::workload {

// Shared mutable state for one workload run. The serial driver uses one
// context for every client; the partitioned driver gives each client host
// its own slot (with an independent RNG stream split from the master
// seed) so workload threads never share mutable state across partitions,
// then merges the slots into one result.
struct WorkloadContext {
  explicit WorkloadContext(std::uint64_t seed) : master_rng(seed) {}
  explicit WorkloadContext(redbud::sim::Rng rng) : master_rng(rng) {}

  redbud::sim::Rng master_rng;
  bool stop = false;
  bool measuring = false;

  // Per-class measurement: count + latency distribution.
  struct OpClass {
    redbud::sim::Counter count;
    redbud::sim::LatencyHistogram latency;
    void reset() {
      count.reset();
      latency.reset();
    }
    void merge(const OpClass& other) {
      count.merge(other.count);
      latency.merge(other.latency);
    }
  };

  // Measured-window statistics.
  redbud::sim::Counter ops;
  OpClass read_ops;
  OpClass write_ops;
  OpClass meta_ops;
  OpClass fsync_ops;
  redbud::sim::ThroughputMeter data;
  redbud::sim::LatencyHistogram op_latency;

  // Correctness accounting (always on, never reset).
  std::uint64_t verify_failures = 0;
  std::uint64_t op_errors = 0;

  void note(OpClass& kind, redbud::sim::SimTime latency,
            std::uint64_t bytes) {
    if (!measuring) return;
    ops.add();
    kind.count.add();
    kind.latency.record(latency);
    data.add_ops();
    data.add_bytes(bytes);
    op_latency.record(latency);
  }
  void reset_measurement() {
    ops.reset();
    read_ops.reset();
    write_ops.reset();
    meta_ops.reset();
    fsync_ops.reset();
    data = {};
    op_latency.reset();
  }
  // Fold another slot's measured-window statistics into this one.
  void merge_stats(const WorkloadContext& other) {
    ops.merge(other.ops);
    read_ops.merge(other.read_ops);
    write_ops.merge(other.write_ops);
    meta_ops.merge(other.meta_ops);
    fsync_ops.merge(other.fsync_ops);
    data.merge(other.data);
    op_latency.merge(other.op_latency);
    verify_failures += other.verify_failures;
    op_errors += other.op_errors;
  }
};

class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::uint32_t threads_per_client() const = 0;
  // Fixed-work benchmarks (NPB BT) run to completion; time-driven ones
  // loop until ctx.stop.
  [[nodiscard]] virtual bool fixed_work() const { return false; }

  // Pre-grow any lazily-sized shared containers to their full `nclients`
  // extent. The partitioned driver calls this before spawning anything so
  // client threads running on different partitions never reallocate a
  // shared vector concurrently; per-element state stays owned by one
  // client. Serial runs never call it. Default: nothing shared, no-op.
  virtual void presize(std::uint32_t nclients) { (void)nclients; }

  // Per-client preparation (populate filesets). Runs before measurement.
  virtual redbud::sim::Process prepare(redbud::sim::Simulation& sim,
                                       fsapi::FsClient& fs,
                                       std::uint32_t client_id,
                                       WorkloadContext& ctx);
  // One workload thread.
  virtual redbud::sim::Process thread(redbud::sim::Simulation& sim,
                                      fsapi::FsClient& fs,
                                      std::uint32_t client_id,
                                      std::uint32_t thread_id,
                                      WorkloadContext& ctx) = 0;
};

struct WorkloadResult {
  std::string workload;
  std::string protocol;
  redbud::sim::SimTime measured = redbud::sim::SimTime::zero();
  std::uint64_t ops = 0;
  double ops_per_sec = 0.0;
  double mb_per_sec = 0.0;
  redbud::sim::SimTime mean_latency = redbud::sim::SimTime::zero();
  redbud::sim::SimTime p99_latency = redbud::sim::SimTime::zero();
  // Per-class latency breakdown (reads / writes / metadata / fsync).
  struct ClassStats {
    std::uint64_t count = 0;
    redbud::sim::SimTime mean = redbud::sim::SimTime::zero();
    redbud::sim::SimTime p99 = redbud::sim::SimTime::zero();
  };
  ClassStats read_stats;
  ClassStats write_stats;
  ClassStats meta_stats;
  ClassStats fsync_stats;
  std::uint64_t verify_failures = 0;
  std::uint64_t op_errors = 0;
};

struct RunOptions {
  redbud::sim::SimTime warmup = redbud::sim::SimTime::seconds(5);
  redbud::sim::SimTime duration = redbud::sim::SimTime::seconds(30);
  std::uint64_t seed = 42;
  // Hard cap for fixed-work benchmarks.
  redbud::sim::SimTime time_limit = redbud::sim::SimTime::seconds(3600);
  // Invoked when the measured window opens (after warmup) — benches use
  // it to reset substrate statistics (elevator merges, blktrace, ...).
  std::function<void()> on_measure_start;
};

// Run `w` over every client of the testbed and report the measured window.
WorkloadResult run_workload(core::Testbed& bed, Workload& w,
                            const RunOptions& opt);

}  // namespace redbud::workload
