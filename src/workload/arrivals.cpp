#include "workload/arrivals.hpp"

#include <cassert>
#include <cmath>

namespace redbud::workload {

using redbud::sim::SimTime;

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

ArrivalProcess::ArrivalProcess(const ArrivalParams& params,
                               redbud::sim::Rng rng)
    : params_(params), rng_(rng) {
  assert(params_.rate > 0);
  if (params_.kind == ArrivalKind::kMmpp) {
    assert(params_.mmpp_burst_factor >= 1.0);
    assert(params_.mmpp_dwell_quiet_s > 0 && params_.mmpp_dwell_burst_s > 0);
    dwell_remaining_s_ = rng_.exponential(params_.mmpp_dwell_quiet_s);
  }
  if (params_.kind == ArrivalKind::kDiurnal) {
    assert(params_.diurnal_period_s > 0);
    assert(params_.diurnal_trough > 0 && params_.diurnal_trough <= 1.0);
  }
}

double ArrivalProcess::mmpp_burst_rate() const {
  return params_.rate * params_.mmpp_burst_factor;
}

double ArrivalProcess::mmpp_quiet_rate() const {
  // Long-run mean = (q*dq + b*db) / (dq + db) with dwell means dq, db.
  // Solve for the quiet rate q given burst rate b = rate * factor:
  const double dq = params_.mmpp_dwell_quiet_s;
  const double db = params_.mmpp_dwell_burst_s;
  const double q =
      (params_.rate * (dq + db) - mmpp_burst_rate() * db) / dq;
  // A burst factor/dwell split demanding a negative quiet rate is a
  // misconfiguration; floor at a token trickle instead of going negative.
  return q > 0 ? q : params_.rate * 0.01;
}

double ArrivalProcess::diurnal_rate(double t_s) const {
  const double phase = kTwoPi * (t_s / params_.diurnal_period_s);
  const double swell = (1.0 - std::cos(phase)) * 0.5;  // 0 at t=0, 1 mid
  return params_.rate *
         (params_.diurnal_trough + (1.0 - params_.diurnal_trough) * swell);
}

double ArrivalProcess::rate_at(SimTime now) const {
  switch (params_.kind) {
    case ArrivalKind::kPoisson:
      return params_.rate;
    case ArrivalKind::kMmpp:
      return burst_ ? mmpp_burst_rate() : mmpp_quiet_rate();
    case ArrivalKind::kDiurnal:
      return diurnal_rate(now.to_seconds());
  }
  return params_.rate;
}

SimTime ArrivalProcess::next_gap(SimTime now) {
  switch (params_.kind) {
    case ArrivalKind::kPoisson:
      return SimTime::seconds_f(rng_.exponential(1.0 / params_.rate));

    case ArrivalKind::kMmpp: {
      // Walk dwell intervals until an arrival candidate lands inside one.
      double elapsed = 0;
      for (;;) {
        const double rate = burst_ ? mmpp_burst_rate() : mmpp_quiet_rate();
        const double gap = rng_.exponential(1.0 / rate);
        if (gap <= dwell_remaining_s_) {
          dwell_remaining_s_ -= gap;
          return SimTime::seconds_f(elapsed + gap);
        }
        elapsed += dwell_remaining_s_;
        burst_ = !burst_;
        dwell_remaining_s_ = rng_.exponential(
            burst_ ? params_.mmpp_dwell_burst_s : params_.mmpp_dwell_quiet_s);
      }
    }

    case ArrivalKind::kDiurnal: {
      // Lewis-Shedler thinning at the peak rate: candidate gaps at
      // `rate`, accepted with probability rate(t)/rate.
      double t = now.to_seconds();
      for (;;) {
        t += rng_.exponential(1.0 / params_.rate);
        if (rng_.next_double() * params_.rate <= diurnal_rate(t)) {
          return SimTime::seconds_f(t) - now;
        }
      }
    }
  }
  return SimTime::zero();
}

}  // namespace redbud::workload
