// Open-loop load engine.
//
// One engine per simulated host drives that host's flyweight client fleet
// at an offered load decided by an ArrivalProcess, independent of service
// completions. The engine exploits Poisson superposition: the merge of N
// independent per-client arrival streams is one stream at the summed
// rate, so a SINGLE dispatcher coroutine with a uniform client draw per
// arrival is distributionally exact — no per-idle-client timers, which is
// what makes 10^5 live clients cheap. Each arrival samples an op class
// from the mix and a target file by Zipf rank over the host's population,
// then runs as a short-lived coroutine so op latencies overlap naturally.
//
// The overload valve: past `max_outstanding` in-flight ops, arrivals are
// shed (counted, not issued). An open-loop generator with no valve grows
// its in-flight set without bound past saturation and the run never
// drains; the shed count is part of the reported result, not hidden.
//
// Determinism: the dispatcher owns one Rng stream (derive via
// Rng::split), spawns everything on the host partition's Simulation, and
// never reads other partitions' state — so sweeps replay identically
// across worker counts, same as the closed-loop workloads.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "client/flyweight.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/future.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "workload/arrivals.hpp"

namespace redbud::workload {

enum class OpClass : std::uint8_t { kCreate, kWrite, kRead, kFsync, kRemove };
constexpr std::size_t kNumOpClasses = 5;
[[nodiscard]] const char* op_class_name(OpClass c);

struct OpenLoopParams {
  ArrivalParams arrivals;
  // Op-class mix weights (normalised internally).
  std::array<double, kNumOpClasses> mix{0.1, 0.45, 0.3, 0.1, 0.05};
  // Fleet size on this host and the pre-sized namespace per client.
  std::uint32_t clients = 1000;
  std::uint32_t files_per_client = 2;
  // Zipf skew of file popularity (0 = uniform).
  double zipf_theta = 0.99;
  std::uint32_t write_bytes = 16 << 10;
  std::uint32_t read_bytes = 16 << 10;
  // Overload valve: arrivals past this many in-flight ops are shed.
  std::uint64_t max_outstanding = 1 << 14;
  // Parallel creator coroutines during prepare().
  std::uint32_t prepare_parallelism = 64;
};

// Per-op-class open-loop results. `shed` counts valve drops (kWrite slot
// only, sheds are classless), `failed` non-kOk completions.
struct OpClassStats {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  redbud::sim::LatencyHistogram latency;

  void merge(const OpClassStats& o) {
    issued += o.issued;
    completed += o.completed;
    failed += o.failed;
    latency.merge(o.latency);
  }
};

class OpenLoopEngine {
 public:
  // Sessions are opened on `host` at construction (params.clients of
  // them); `rng` should be an independent split of the run's master seed.
  OpenLoopEngine(redbud::sim::Simulation& sim, client::ClientHost& host,
                 OpenLoopParams params, redbud::sim::Rng rng);

  // Create and pre-write the per-client population files. Must complete
  // (await the future) before start().
  [[nodiscard]] redbud::sim::SimFuture<redbud::sim::Done> prepare();

  // Phase schedule, all ABSOLUTE simulated instants. Driving the phases
  // in-sim (rather than flipping flags from the host thread between
  // run_until calls) is what keeps open-loop runs bit-identical across
  // worker counts: partition-local now() at a window boundary is not
  // comparable between the serial and partitioned kernels.
  struct Schedule {
    redbud::sim::SimTime start_at;       // first arrival no earlier than
    redbud::sim::SimTime measure_from;   // latencies recorded from here
    redbud::sim::SimTime measure_until;  // ... to here (issue time)
    redbud::sim::SimTime stop_at;        // dispatcher exits
  };

  // Spawn the dispatcher with a phase schedule. Call BEFORE the cluster
  // runs (alongside prepare()); start_at must leave prepare() room to
  // finish. stop() additionally makes the dispatcher exit at the next
  // arrival (manual early-out).
  void start(const Schedule& schedule);
  void stop() { stopped_ = true; }

  // Expose the engine's live load state to the observability plane as
  // value views (sampled off-event by the TimeSeriesSampler, never read
  // by sim events). The engine must outlive the registry's consumers.
  void register_metrics(obs::MetricsRegistry& reg, std::uint32_t host_id);

  [[nodiscard]] const OpClassStats& stats(OpClass c) const {
    return stats_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t outstanding() const { return outstanding_; }
  [[nodiscard]] std::uint64_t peak_outstanding() const { return peak_out_; }
  [[nodiscard]] std::uint64_t shed_total() const { return shed_; }
  [[nodiscard]] std::uint64_t arrivals_total() const { return arrivals_n_; }
  [[nodiscard]] std::uint64_t prepare_failures() const {
    return prepare_failures_;
  }
  // Total simulated time spent inside measure windows.
  [[nodiscard]] redbud::sim::SimTime measured_span() const {
    return measured_span_;
  }
  [[nodiscard]] client::ClientHost& host() { return *host_; }

 private:
  redbud::sim::Process dispatcher();
  redbud::sim::Process op_proc(OpClass cls, std::uint32_t client,
                               std::uint64_t file_slot, bool measured);
  redbud::sim::Process creator(std::uint32_t first_client,
                               std::uint32_t nclients);
  [[nodiscard]] OpClass sample_class();
  [[nodiscard]] std::string file_name(std::uint32_t client,
                                      std::uint32_t slot) const;

  redbud::sim::Simulation* sim_;
  client::ClientHost* host_;
  OpenLoopParams params_;
  redbud::sim::Rng rng_;
  ArrivalProcess arrivals_;
  redbud::sim::Zipf zipf_;
  std::array<double, kNumOpClasses> cum_mix_{};
  // The host's population table: file ids flat, client-major — the whole
  // per-client durable state is `files_per_client` slots in this vector.
  std::vector<net::FileId> files_;
  std::vector<client::FlyweightSession*> sessions_;
  // Scratch files made by kCreate, unmade (LIFO) by kRemove.
  std::vector<std::string> scratch_names_;
  std::uint64_t scratch_seq_ = 0;
  std::array<OpClassStats, kNumOpClasses> stats_{};
  std::uint64_t outstanding_ = 0;
  std::uint64_t peak_out_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t arrivals_n_ = 0;
  std::uint64_t prepare_failures_ = 0;
  std::uint32_t prepared_pending_ = 0;
  std::optional<redbud::sim::SimPromise<redbud::sim::Done>> prep_promise_;
  Schedule sched_{};
  redbud::sim::SimTime measured_span_;
  bool stopped_ = false;
  bool started_ = false;
};

}  // namespace redbud::workload
