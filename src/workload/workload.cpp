#include "workload/workload.hpp"

#include <memory>
#include <utility>

namespace redbud::workload {

using redbud::sim::Process;
using redbud::sim::ProcRef;
using redbud::sim::Simulation;
using redbud::sim::SimTime;

Process Workload::prepare(Simulation& sim, fsapi::FsClient& fs,
                          std::uint32_t client_id, WorkloadContext& ctx) {
  (void)fs;
  (void)client_id;
  (void)ctx;
  co_await sim.yield();
}

namespace {

void fill_result(core::Testbed& bed, Workload& w, SimTime measured,
                 WorkloadContext& ctx, WorkloadResult& r) {
  r.workload = w.name();
  r.protocol = core::protocol_name(bed.protocol());
  r.measured = measured;
  r.ops = ctx.ops.value();
  r.ops_per_sec = ctx.ops.rate_per_second(measured);
  r.mb_per_sec = ctx.data.mb_per_second(measured);
  r.mean_latency = ctx.op_latency.mean();
  r.p99_latency = ctx.op_latency.percentile(99);
  const auto fill = [](WorkloadResult::ClassStats& out,
                       WorkloadContext::OpClass& in) {
    out.count = in.count.value();
    out.mean = in.latency.mean();
    out.p99 = in.latency.percentile(99);
  };
  fill(r.read_stats, ctx.read_ops);
  fill(r.write_stats, ctx.write_ops);
  fill(r.meta_stats, ctx.meta_ops);
  fill(r.fsync_stats, ctx.fsync_ops);
  r.verify_failures = ctx.verify_failures;
  r.op_errors = ctx.op_errors;
}

// Partitioned-kernel driver. The structure mirrors the serial driver, but
// every client gets its own WorkloadContext slot (independent RNG stream,
// private stats) and its coroutines are spawned onto that client host's
// partition. All driving goes through the domain (bed.run_until), and the
// driver only touches contexts / ProcRefs while the domain is quiescent
// between run_until calls — the domain barrier orders those accesses
// against the worker threads. Slot stats merge into one result at the
// end, so the report shape matches the serial driver.
//
// Note the RNG streams differ from the serial driver's single shared
// stream by construction, so parallel and serial throughput numbers are
// statistically comparable, not identical.
WorkloadResult run_workload_parallel(core::Testbed& bed, Workload& w,
                                     const RunOptions& opt) {
  const std::size_t n = bed.nclients();
  w.presize(static_cast<std::uint32_t>(n));

  // Context slots: streams split from the master seed in client order, so
  // the draw sequences are independent of the worker-thread count.
  redbud::sim::Rng master(opt.seed);
  std::vector<std::unique_ptr<WorkloadContext>> ctxs;
  ctxs.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    ctxs.push_back(std::make_unique<WorkloadContext>(master.split()));
  }

  // Preparation phase: run every client's prepare() to completion.
  {
    std::vector<ProcRef> preps;
    for (std::size_t c = 0; c < n; ++c) {
      auto& csim = bed.client_sim(c);
      preps.push_back(csim.spawn(
          w.prepare(csim, bed.fs(c), static_cast<std::uint32_t>(c),
                    *ctxs[c])));
    }
    bool all_done = false;
    while (!all_done) {
      bed.run_until(bed.now() + SimTime::seconds(1));
      all_done = true;
      for (const auto& p : preps) all_done = all_done && p.done();
    }
  }
  bed.check_failures();

  // Spawn the workload threads on their client partitions.
  std::vector<ProcRef> threads;
  for (std::size_t c = 0; c < n; ++c) {
    auto& csim = bed.client_sim(c);
    for (std::uint32_t t = 0; t < w.threads_per_client(); ++t) {
      threads.push_back(csim.spawn(
          w.thread(csim, bed.fs(c), static_cast<std::uint32_t>(c), t,
                   *ctxs[c])));
    }
  }

  SimTime measured;
  if (w.fixed_work()) {
    if (opt.on_measure_start) opt.on_measure_start();
    for (auto& c : ctxs) c->measuring = true;
    const SimTime t0 = bed.now();
    const SimTime deadline = bed.now() + opt.time_limit;
    bool all_done = false;
    while (!all_done && bed.now() < deadline) {
      bed.run_until(bed.now() + SimTime::millis(20));
      all_done = true;
      for (const auto& p : threads) all_done = all_done && p.done();
    }
    measured = bed.now() - t0;
  } else {
    bed.run_until(bed.now() + opt.warmup);
    for (auto& c : ctxs) c->reset_measurement();
    if (opt.on_measure_start) opt.on_measure_start();
    for (auto& c : ctxs) c->measuring = true;
    bed.run_until(bed.now() + opt.duration);
    for (auto& c : ctxs) {
      c->measuring = false;
      c->stop = true;
    }
    measured = opt.duration;
    const SimTime drain_deadline = bed.now() + SimTime::seconds(300);
    bool all_done = false;
    while (!all_done && bed.now() < drain_deadline) {
      bed.run_until(bed.now() + SimTime::seconds(1));
      all_done = true;
      for (const auto& p : threads) all_done = all_done && p.done();
    }
  }
  bed.check_failures();

  WorkloadContext total(opt.seed);
  for (const auto& c : ctxs) total.merge_stats(*c);
  WorkloadResult r;
  fill_result(bed, w, measured, total, r);
  return r;
}

}  // namespace

WorkloadResult run_workload(core::Testbed& bed, Workload& w,
                            const RunOptions& opt) {
  if (bed.parallel()) return run_workload_parallel(bed, w, opt);
  auto& sim = bed.sim();
  WorkloadContext ctx(opt.seed);

  // Preparation phase: run every client's prepare() to completion.
  {
    std::vector<ProcRef> preps;
    for (std::size_t c = 0; c < bed.nclients(); ++c) {
      preps.push_back(sim.spawn(
          w.prepare(sim, bed.fs(c), static_cast<std::uint32_t>(c), ctx)));
    }
    bool all_done = false;
    while (!all_done) {
      sim.run_until(sim.now() + SimTime::seconds(1));
      all_done = true;
      for (const auto& p : preps) all_done = all_done && p.done();
    }
  }
  sim.check_failures();

  // Spawn the workload threads.
  std::vector<ProcRef> threads;
  for (std::size_t c = 0; c < bed.nclients(); ++c) {
    for (std::uint32_t t = 0; t < w.threads_per_client(); ++t) {
      threads.push_back(sim.spawn(w.thread(
          sim, bed.fs(c), static_cast<std::uint32_t>(c), t, ctx)));
    }
  }

  SimTime measured;
  if (w.fixed_work()) {
    // Measure the makespan of the whole job.
    if (opt.on_measure_start) opt.on_measure_start();
    ctx.measuring = true;
    const SimTime t0 = sim.now();
    const SimTime deadline = sim.now() + opt.time_limit;
    bool all_done = false;
    while (!all_done && sim.now() < deadline) {
      sim.run_until(sim.now() + SimTime::millis(20));
      all_done = true;
      for (const auto& p : threads) all_done = all_done && p.done();
    }
    measured = sim.now() - t0;
  } else {
    // Warmup, then a measured window.
    sim.run_until(sim.now() + opt.warmup);
    ctx.reset_measurement();
    if (opt.on_measure_start) opt.on_measure_start();
    ctx.measuring = true;
    sim.run_until(sim.now() + opt.duration);
    ctx.measuring = false;
    ctx.stop = true;
    measured = opt.duration;
    // Drain: every thread must unwind before we return, or coroutine
    // frames could outlive the Workload object they reference.
    const SimTime drain_deadline = sim.now() + SimTime::seconds(300);
    bool all_done = false;
    while (!all_done && sim.now() < drain_deadline) {
      sim.run_until(sim.now() + SimTime::seconds(1));
      all_done = true;
      for (const auto& p : threads) all_done = all_done && p.done();
    }
  }
  sim.check_failures();

  WorkloadResult r;
  fill_result(bed, w, measured, ctx, r);
  return r;
}

}  // namespace redbud::workload
