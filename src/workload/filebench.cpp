#include "workload/filebench.hpp"

#include <algorithm>
#include <cmath>

namespace redbud::workload {

using net::Status;
using redbud::sim::Process;
using redbud::sim::Rng;
using redbud::sim::SimPromise;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

int Fileset::pick(Rng& rng) const {
  if (entries_.empty()) return -1;
  // Bounded random probing; a linear fallback guarantees progress.
  for (int tries = 0; tries < 16; ++tries) {
    const auto i = rng.next_below(entries_.size());
    if (entries_[i].live && !entries_[i].in_use) return static_cast<int>(i);
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].live && !entries_[i].in_use) return static_cast<int>(i);
  }
  return -1;
}

std::size_t Fileset::live_count() const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.live) ++n;
  }
  return n;
}

std::uint32_t sample_file_size(Rng& rng, std::uint64_t mean_bytes,
                               std::uint64_t max_bytes) {
  // Lognormal with sigma 0.7, shifted so the mean lands near mean_bytes.
  const double sigma = 0.7;
  const double mu = std::log(double(mean_bytes)) - sigma * sigma / 2.0;
  const double v = rng.lognormal(mu, sigma);
  const auto bytes = static_cast<std::uint64_t>(v);
  return static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(bytes, 4096, max_bytes));
}

Process read_whole_verified(Simulation& sim, fsapi::FsClient& fs,
                            net::FileId file, std::uint64_t size,
                            WorkloadContext& ctx, SimPromise<bool> done) {
  const SimTime t0 = sim.now();
  const auto nbytes = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(size, storage::kBlockSize));
  auto fut = fs.read(file, 0, nbytes);
  fsapi::ReadResult rr = co_await fut;
  if (rr.status != Status::kOk) {
    ++ctx.op_errors;
    done.set_value(false);
    co_return;
  }
  for (std::size_t b = 0; b < rr.tokens.size(); ++b) {
    const auto expect = fs.expected_token(file, b);
    if (expect != storage::kUnwrittenToken && rr.tokens[b] != expect) {
      ++ctx.verify_failures;
    }
  }
  ctx.note(ctx.read_ops, sim.now() - t0, nbytes);
  done.set_value(true);
}

namespace {

// Create a file and write its whole contents; returns (via promise) the
// file id or kInvalidFile.
Process create_and_write(Simulation& sim, fsapi::FsClient& fs,
                         std::string name, std::uint32_t nbytes,
                         WorkloadContext& ctx,
                         SimPromise<net::FileId> done) {
  SimTime t0 = sim.now();
  auto cfut = fs.create(net::kRootDir, std::move(name));
  const net::FileId id = co_await cfut;
  if (id == net::kInvalidFile) {
    ++ctx.op_errors;
    done.set_value(net::kInvalidFile);
    co_return;
  }
  ctx.note(ctx.meta_ops, sim.now() - t0, 0);
  t0 = sim.now();
  auto wfut = fs.write(id, 0, nbytes);
  const Status ws = co_await wfut;
  if (ws != Status::kOk) ++ctx.op_errors;
  ctx.note(ctx.write_ops, sim.now() - t0, nbytes);
  auto clfut = fs.close(id);
  (void)co_await clfut;
  done.set_value(id);
}

// Append `nbytes` at the current end of the file.
Process append_file(Simulation& sim, fsapi::FsClient& fs, net::FileId id,
                    std::uint64_t at, std::uint32_t nbytes,
                    WorkloadContext& ctx, SimPromise<bool> done) {
  const SimTime t0 = sim.now();
  auto wfut = fs.write(id, at, nbytes);
  const Status ws = co_await wfut;
  if (ws != Status::kOk) ++ctx.op_errors;
  ctx.note(ctx.write_ops, sim.now() - t0, nbytes);
  done.set_value(ws == Status::kOk);
}

Process fsync_file(Simulation& sim, fsapi::FsClient& fs, net::FileId id,
                   WorkloadContext& ctx, SimPromise<bool> done) {
  const SimTime t0 = sim.now();
  auto sfut = fs.fsync(id);
  const Status ss = co_await sfut;
  if (ss != Status::kOk) ++ctx.op_errors;
  ctx.note(ctx.fsync_ops, sim.now() - t0, 0);
  done.set_value(ss == Status::kOk);
}

Process delete_file(Simulation& sim, fsapi::FsClient& fs, std::string name,
                    WorkloadContext& ctx, SimPromise<bool> done) {
  const SimTime t0 = sim.now();
  auto dfut = fs.remove(net::kRootDir, std::move(name));
  const Status ds = co_await dfut;
  // NoEnt can happen when another thread deleted it first; not an error.
  ctx.note(ctx.meta_ops, sim.now() - t0, 0);
  done.set_value(ds == Status::kOk);
}

// Populate a fileset with `nfiles` files.
Process populate(Simulation& sim, fsapi::FsClient& fs, Fileset& set,
                 std::uint32_t nfiles, const FilebenchParams& params,
                 Rng rng) {
  for (std::uint32_t i = 0; i < nfiles; ++i) {
    Fileset::Entry e;
    e.name = set.fresh_name("fb");
    e.size = sample_file_size(rng, params.mean_file_bytes,
                              params.max_file_bytes);
    auto cfut = fs.create(net::kRootDir, e.name);
    e.id = co_await cfut;
    if (e.id == net::kInvalidFile) continue;
    auto wfut = fs.write(e.id, 0, static_cast<std::uint32_t>(e.size));
    (void)co_await wfut;
    auto clfut = fs.close(e.id);
    (void)co_await clfut;
    e.live = true;
    set.add(std::move(e));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// fileserver
// ---------------------------------------------------------------------------

FileserverWorkload::FileserverWorkload(FilebenchParams params)
    : params_(params) {}

void FileserverWorkload::presize(std::uint32_t nclients) {
  if (nclients > 0) set_for(nclients - 1);
}

Fileset& FileserverWorkload::set_for(std::uint32_t client_id) {
  while (sets_.size() <= client_id) {
    sets_.push_back(
        std::make_unique<Fileset>(std::uint32_t(sets_.size())));
  }
  return *sets_[client_id];
}

Process FileserverWorkload::prepare(Simulation& sim, fsapi::FsClient& fs,
                                    std::uint32_t client_id,
                                    WorkloadContext& ctx) {
  Fileset& set = set_for(client_id);
  auto ref = sim.spawn(populate(sim, fs, set, params_.nfiles_per_client,
                                params_, ctx.master_rng.split()));
  co_await ref.join();
}

Process FileserverWorkload::thread(Simulation& sim, fsapi::FsClient& fs,
                                   std::uint32_t client_id, std::uint32_t,
                                   WorkloadContext& ctx) {
  Fileset& set = set_for(client_id);
  Rng rng = ctx.master_rng.split();
  while (!ctx.stop) {
    // 1. create + write a new file
    {
      Fileset::Entry e;
      e.name = set.fresh_name("fs");
      e.size = sample_file_size(rng, params_.mean_file_bytes,
                                params_.max_file_bytes);
      SimPromise<net::FileId> done(sim);
      auto fut = done.future();
      sim.spawn(create_and_write(sim, fs, e.name,
                                 static_cast<std::uint32_t>(e.size), ctx,
                                 std::move(done)));
      e.id = co_await fut;
      if (e.id != net::kInvalidFile) {
        e.live = true;
        set.add(std::move(e));
      }
    }
    // 2. append to a random file
    if (int i = set.pick(rng); i >= 0) {
      auto& e = set.at(i);
      BusyGuard guard(e);
      SimPromise<bool> done(sim);
      auto fut = done.future();
      sim.spawn(append_file(sim, fs, e.id, e.size, params_.append_bytes, ctx,
                            std::move(done)));
      if (co_await fut) e.size += params_.append_bytes;
    }
    // 3. read a whole random file
    if (int i = set.pick(rng); i >= 0) {
      auto& e = set.at(i);
      BusyGuard guard(e);
      SimPromise<bool> done(sim);
      auto fut = done.future();
      sim.spawn(
          read_whole_verified(sim, fs, e.id, e.size, ctx, std::move(done)));
      (void)co_await fut;
    }
    // 4. delete a random file (keep the set from shrinking to nothing)
    if (set.live_count() > params_.nfiles_per_client / 2) {
      if (int i = set.pick(rng); i >= 0) {
        auto& e = set.at(i);
        BusyGuard guard(e);
        e.live = false;
        SimPromise<bool> done(sim);
        auto fut = done.future();
        sim.spawn(delete_file(sim, fs, e.name, ctx, std::move(done)));
        (void)co_await fut;
      }
    }
    // 5. stat a random file
    if (int i = set.pick(rng); i >= 0) {
      auto& e = set.at(i);
      BusyGuard guard(e);
      const SimTime t0 = sim.now();
      auto ofut = fs.open(net::kRootDir, e.name);
      (void)co_await ofut;
      ctx.note(ctx.meta_ops, sim.now() - t0, 0);
    }
  }
}

// ---------------------------------------------------------------------------
// varmail
// ---------------------------------------------------------------------------

VarmailWorkload::VarmailWorkload(FilebenchParams params) : params_(params) {}

void VarmailWorkload::presize(std::uint32_t nclients) {
  if (nclients > 0) set_for(nclients - 1);
}

Fileset& VarmailWorkload::set_for(std::uint32_t client_id) {
  while (sets_.size() <= client_id) {
    sets_.push_back(
        std::make_unique<Fileset>(std::uint32_t(sets_.size())));
  }
  return *sets_[client_id];
}

Process VarmailWorkload::prepare(Simulation& sim, fsapi::FsClient& fs,
                                 std::uint32_t client_id,
                                 WorkloadContext& ctx) {
  Fileset& set = set_for(client_id);
  auto ref = sim.spawn(populate(sim, fs, set, params_.nfiles_per_client,
                                params_, ctx.master_rng.split()));
  co_await ref.join();
}

Process VarmailWorkload::thread(Simulation& sim, fsapi::FsClient& fs,
                                std::uint32_t client_id, std::uint32_t,
                                WorkloadContext& ctx) {
  Fileset& set = set_for(client_id);
  Rng rng = ctx.master_rng.split();
  while (!ctx.stop) {
    // delete one mail file
    if (set.live_count() > params_.nfiles_per_client / 2) {
      if (int i = set.pick(rng); i >= 0) {
        auto& e = set.at(i);
        BusyGuard guard(e);
        e.live = false;
        SimPromise<bool> done(sim);
        auto fut = done.future();
        sim.spawn(delete_file(sim, fs, e.name, ctx, std::move(done)));
        (void)co_await fut;
      }
    }
    // receive mail: create + append + fsync + close
    {
      Fileset::Entry e;
      e.name = set.fresh_name("mail");
      e.size = params_.append_bytes;
      SimPromise<net::FileId> done(sim);
      auto fut = done.future();
      sim.spawn(create_and_write(sim, fs, e.name,
                                 static_cast<std::uint32_t>(e.size), ctx,
                                 std::move(done)));
      e.id = co_await fut;
      if (e.id != net::kInvalidFile) {
        SimPromise<bool> sdone(sim);
        auto sfut = sdone.future();
        sim.spawn(fsync_file(sim, fs, e.id, ctx, std::move(sdone)));
        (void)co_await sfut;
        e.live = true;
        set.add(std::move(e));
      }
    }
    // read mail then reply: read whole + append + close (the reply is
    // buffered; delivery durability was already paid at receive time)
    if (int i = set.pick(rng); i >= 0) {
      auto& e = set.at(i);
      BusyGuard guard(e);
      SimPromise<bool> rdone(sim);
      auto rfut = rdone.future();
      sim.spawn(
          read_whole_verified(sim, fs, e.id, e.size, ctx, std::move(rdone)));
      (void)co_await rfut;
      SimPromise<bool> adone(sim);
      auto afut = adone.future();
      sim.spawn(append_file(sim, fs, e.id, e.size, params_.append_bytes, ctx,
                            std::move(adone)));
      if (co_await afut) e.size += params_.append_bytes;
      const SimTime t0 = sim.now();
      auto cfut = fs.close(e.id);
      (void)co_await cfut;
      ctx.note(ctx.meta_ops, sim.now() - t0, 0);
    }
    // read another mail
    if (int i = set.pick(rng); i >= 0) {
      auto& e = set.at(i);
      BusyGuard guard(e);
      SimPromise<bool> done(sim);
      auto fut = done.future();
      sim.spawn(
          read_whole_verified(sim, fs, e.id, e.size, ctx, std::move(done)));
      (void)co_await fut;
    }
  }
}

// ---------------------------------------------------------------------------
// webproxy
// ---------------------------------------------------------------------------

WebproxyWorkload::WebproxyWorkload(FilebenchParams params)
    : params_(params) {}

void WebproxyWorkload::presize(std::uint32_t nclients) {
  if (nclients > 0) set_for(nclients - 1);
}

Fileset& WebproxyWorkload::set_for(std::uint32_t client_id) {
  while (sets_.size() <= client_id) {
    sets_.push_back(
        std::make_unique<Fileset>(std::uint32_t(sets_.size())));
  }
  return *sets_[client_id];
}

Process WebproxyWorkload::prepare(Simulation& sim, fsapi::FsClient& fs,
                                  std::uint32_t client_id,
                                  WorkloadContext& ctx) {
  Fileset& set = set_for(client_id);
  auto ref = sim.spawn(populate(sim, fs, set, params_.nfiles_per_client,
                                params_, ctx.master_rng.split()));
  co_await ref.join();
}

Process WebproxyWorkload::thread(Simulation& sim, fsapi::FsClient& fs,
                                 std::uint32_t client_id, std::uint32_t,
                                 WorkloadContext& ctx) {
  Fileset& set = set_for(client_id);
  Rng rng = ctx.master_rng.split();
  while (!ctx.stop) {
    // evict one cached object
    if (set.live_count() > params_.nfiles_per_client / 2) {
      if (int i = set.pick(rng); i >= 0) {
        auto& e = set.at(i);
        BusyGuard guard(e);
        e.live = false;
        SimPromise<bool> done(sim);
        auto fut = done.future();
        sim.spawn(delete_file(sim, fs, e.name, ctx, std::move(done)));
        (void)co_await fut;
      }
    }
    // fetch a new object into the proxy cache
    {
      Fileset::Entry e;
      e.name = set.fresh_name("obj");
      e.size = sample_file_size(rng, params_.mean_file_bytes,
                                params_.max_file_bytes);
      SimPromise<net::FileId> done(sim);
      auto fut = done.future();
      sim.spawn(create_and_write(sim, fs, e.name,
                                 static_cast<std::uint32_t>(e.size), ctx,
                                 std::move(done)));
      e.id = co_await fut;
      if (e.id != net::kInvalidFile) {
        e.live = true;
        set.add(std::move(e));
      }
    }
    // serve five objects
    for (int r = 0; r < 5 && !ctx.stop; ++r) {
      if (int i = set.pick(rng); i >= 0) {
        auto& e = set.at(i);
        BusyGuard guard(e);
        SimPromise<bool> done(sim);
        auto fut = done.future();
        sim.spawn(
            read_whole_verified(sim, fs, e.id, e.size, ctx, std::move(done)));
        (void)co_await fut;
      }
    }
  }
}

}  // namespace redbud::workload
