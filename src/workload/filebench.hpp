// Filebench-style personalities (§V-B): fileserver, varmail, webproxy.
//
// Each personality reproduces the op cycle of the corresponding Filebench
// ".f" model — create/write/append/read/delete mixes with per-personality
// file sizes and fsync behaviour — scaled to simulation-friendly fileset
// sizes (the shapes, not the absolute numbers, matter for Figure 3).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "workload/workload.hpp"

namespace redbud::workload {

// Per-client collection of live files with busy-marking so concurrent
// threads never operate on the same file (Filebench semantics).
class Fileset {
 public:
  struct Entry {
    std::string name;
    net::FileId id = net::kInvalidFile;
    std::uint64_t size = 0;
    bool in_use = false;
    bool live = false;
  };

  explicit Fileset(std::uint32_t client_id) : client_id_(client_id) {}

  [[nodiscard]] std::string fresh_name(const char* prefix) {
    return std::string(prefix) + "_c" + std::to_string(client_id_) + "_" +
           std::to_string(next_seq_++);
  }

  // Index of a random live, non-busy entry; -1 when none.
  [[nodiscard]] int pick(redbud::sim::Rng& rng) const;

  [[nodiscard]] Entry& at(int i) { return entries_[std::size_t(i)]; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t live_count() const;
  int add(Entry e) {
    entries_.push_back(std::move(e));
    return static_cast<int>(entries_.size() - 1);
  }

 private:
  std::uint32_t client_id_;
  std::uint64_t next_seq_ = 0;
  // deque: workload threads hold Entry references across co_await points,
  // so growth must never relocate existing entries.
  std::deque<Entry> entries_;
};

// RAII busy-marker for a fileset entry.
class BusyGuard {
 public:
  explicit BusyGuard(Fileset::Entry& e) : e_(&e) { e_->in_use = true; }
  BusyGuard(const BusyGuard&) = delete;
  BusyGuard& operator=(const BusyGuard&) = delete;
  ~BusyGuard() { e_->in_use = false; }

 private:
  Fileset::Entry* e_;
};

struct FilebenchParams {
  std::uint32_t nfiles_per_client = 300;
  std::uint32_t threads_per_client = 16;
  std::uint64_t mean_file_bytes = 128 * 1024;  // fileserver default
  std::uint64_t max_file_bytes = 512 * 1024;
  std::uint32_t append_bytes = 16 * 1024;
};

// fileserver.f: create/write, append, whole-file read, delete, stat.
class FileserverWorkload final : public Workload {
 public:
  explicit FileserverWorkload(FilebenchParams params = {});
  [[nodiscard]] std::string name() const override { return "fileserver"; }
  [[nodiscard]] std::uint32_t threads_per_client() const override {
    return params_.threads_per_client;
  }
  void presize(std::uint32_t nclients) override;
  redbud::sim::Process prepare(redbud::sim::Simulation&, fsapi::FsClient&,
                               std::uint32_t, WorkloadContext&) override;
  redbud::sim::Process thread(redbud::sim::Simulation&, fsapi::FsClient&,
                              std::uint32_t, std::uint32_t,
                              WorkloadContext&) override;

 private:
  FilebenchParams params_;
  std::vector<std::unique_ptr<Fileset>> sets_;
  Fileset& set_for(std::uint32_t client_id);
};

// varmail.f: fsync-heavy mail spool — delete / create+append+fsync /
// read+append+fsync / read.
class VarmailWorkload final : public Workload {
 public:
  explicit VarmailWorkload(FilebenchParams params = varmail_defaults());
  [[nodiscard]] static FilebenchParams varmail_defaults() {
    FilebenchParams p;
    p.nfiles_per_client = 400;
    p.threads_per_client = 8;
    p.mean_file_bytes = 16 * 1024;
    p.max_file_bytes = 64 * 1024;
    p.append_bytes = 16 * 1024;
    return p;
  }
  [[nodiscard]] std::string name() const override { return "varmail"; }
  [[nodiscard]] std::uint32_t threads_per_client() const override {
    return params_.threads_per_client;
  }
  void presize(std::uint32_t nclients) override;
  redbud::sim::Process prepare(redbud::sim::Simulation&, fsapi::FsClient&,
                               std::uint32_t, WorkloadContext&) override;
  redbud::sim::Process thread(redbud::sim::Simulation&, fsapi::FsClient&,
                              std::uint32_t, std::uint32_t,
                              WorkloadContext&) override;

 private:
  FilebenchParams params_;
  std::vector<std::unique_ptr<Fileset>> sets_;
  Fileset& set_for(std::uint32_t client_id);
};

// webproxy.f: create+append+delete plus five whole-file reads per cycle.
class WebproxyWorkload final : public Workload {
 public:
  explicit WebproxyWorkload(FilebenchParams params = webproxy_defaults());
  [[nodiscard]] static FilebenchParams webproxy_defaults() {
    FilebenchParams p;
    p.nfiles_per_client = 500;
    p.threads_per_client = 8;
    p.mean_file_bytes = 16 * 1024;
    p.max_file_bytes = 64 * 1024;
    p.append_bytes = 16 * 1024;
    return p;
  }
  [[nodiscard]] std::string name() const override { return "webproxy"; }
  [[nodiscard]] std::uint32_t threads_per_client() const override {
    return params_.threads_per_client;
  }
  void presize(std::uint32_t nclients) override;
  redbud::sim::Process prepare(redbud::sim::Simulation&, fsapi::FsClient&,
                               std::uint32_t, WorkloadContext&) override;
  redbud::sim::Process thread(redbud::sim::Simulation&, fsapi::FsClient&,
                              std::uint32_t, std::uint32_t,
                              WorkloadContext&) override;

 private:
  FilebenchParams params_;
  std::vector<std::unique_ptr<Fileset>> sets_;
  Fileset& set_for(std::uint32_t client_id);
};

// Shared helper: lognormal file size with mean ~mean and cap.
[[nodiscard]] std::uint32_t sample_file_size(redbud::sim::Rng& rng,
                                             std::uint64_t mean_bytes,
                                             std::uint64_t max_bytes);

// Verified whole-file read; bumps ctx counters and verify_failures.
redbud::sim::Process read_whole_verified(redbud::sim::Simulation& sim,
                                         fsapi::FsClient& fs,
                                         net::FileId file, std::uint64_t size,
                                         WorkloadContext& ctx,
                                         redbud::sim::SimPromise<bool> done);

}  // namespace redbud::workload
