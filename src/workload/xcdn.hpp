// xcdn: the paper's CDN benchmark (§V-B).
//
// Emulates the read/write behaviour of CDN edge servers: cache fills
// create new fixed-size files scattered across a large namespace, while
// serves read random existing objects. File size is the sweep parameter
// (32 KB / 64 KB / 1 MB in the paper); the namespace is kept far larger
// than the client cache so reads mostly miss (the paper's observation
// that "client cache is useless" here).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "workload/workload.hpp"

namespace redbud::workload {

struct XcdnParams {
  std::uint32_t file_bytes = 32 * 1024;
  std::uint32_t threads_per_client = 16;
  std::uint32_t initial_files_per_client = 1500;
  // Fraction of operations that are cache fills (writes).
  double write_fraction = 0.5;
  // Read popularity skew (CDN object popularity): 0 = uniform over the
  // whole namespace; higher concentrates reads on the newest objects.
  double read_zipf_theta = 0.0;
};

class XcdnWorkload final : public Workload {
 public:
  explicit XcdnWorkload(XcdnParams params = {});
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t threads_per_client() const override {
    return params_.threads_per_client;
  }
  void presize(std::uint32_t nclients) override;
  redbud::sim::Process prepare(redbud::sim::Simulation&, fsapi::FsClient&,
                               std::uint32_t, WorkloadContext&) override;
  redbud::sim::Process thread(redbud::sim::Simulation&, fsapi::FsClient&,
                              std::uint32_t, std::uint32_t,
                              WorkloadContext&) override;

  [[nodiscard]] const XcdnParams& params() const { return params_; }

 private:
  struct Object {
    net::FileId id = net::kInvalidFile;
  };
  struct ClientState {
    // Stable storage for objects (threads hold references across awaits).
    std::deque<Object> objects;
    std::uint64_t next_seq = 0;
    // Cached popularity distribution (the Zipf constructor is O(n); it is
    // rebuilt only when the population grows noticeably).
    std::unique_ptr<redbud::sim::Zipf> zipf;
    std::size_t zipf_built_for = 0;
  };

  ClientState& state_for(std::uint32_t client_id);

  XcdnParams params_;
  std::vector<std::unique_ptr<ClientState>> states_;
};

}  // namespace redbud::workload
