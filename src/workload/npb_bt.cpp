#include "workload/npb_bt.hpp"

#include <string>

namespace redbud::workload {

using net::Status;
using redbud::sim::Process;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

NpbBtWorkload::NpbBtWorkload(NpbBtParams params) : params_(params) {}

void NpbBtWorkload::presize(std::uint32_t nclients) {
  if (nclients > 0) state_for(nclients - 1);
}

NpbBtWorkload::ClientState& NpbBtWorkload::state_for(
    std::uint32_t client_id) {
  while (states_.size() <= client_id) {
    states_.push_back(std::make_unique<ClientState>());
  }
  return *states_[client_id];
}

Process NpbBtWorkload::prepare(Simulation& sim, fsapi::FsClient& fs,
                               std::uint32_t client_id,
                               WorkloadContext& ctx) {
  (void)ctx;
  ClientState& st = state_for(client_id);
  st.barrier = std::make_unique<Barrier>(sim, params_.ranks_per_client);
  auto cfut = fs.create(net::kRootDir, "bt.out.c" + std::to_string(client_id));
  st.file = co_await cfut;
}

Process NpbBtWorkload::barrier_wait(Simulation& sim, Barrier& b) {
  const std::uint64_t gen = b.generation;
  if (++b.waiting == b.parties) {
    b.waiting = 0;
    ++b.generation;
    b.signal.notify_all();
    co_await sim.yield();  // let released ranks run in FIFO order
    co_return;
  }
  while (b.generation == gen) co_await b.signal.wait();
}

Process NpbBtWorkload::thread(Simulation& sim, fsapi::FsClient& fs,
                              std::uint32_t client_id, std::uint32_t rank,
                              WorkloadContext& ctx) {
  ClientState& st = state_for(client_id);
  if (st.file == net::kInvalidFile) {
    ++ctx.op_errors;
    co_return;
  }
  const std::uint64_t chunk = params_.chunk_bytes;
  const std::uint32_t nranks = params_.ranks_per_client;

  // Write phase: at each timestep, rank r writes the r-th interleaved
  // chunk of the step's region (BT-IO's blocked-cyclic layout).
  for (std::uint32_t step = 0; step < params_.timesteps; ++step) {
    co_await sim.delay(params_.compute_per_step);  // the solver phase
    const std::uint64_t offset =
        (std::uint64_t(step) * nranks + rank) * chunk;
    const SimTime t0 = sim.now();
    auto wfut = fs.write(st.file, offset, params_.chunk_bytes);
    const Status ws = co_await wfut;
    if (ws != Status::kOk) ++ctx.op_errors;
    ctx.note(ctx.write_ops, sim.now() - t0, chunk);
    auto bref = sim.spawn(barrier_wait(sim, *st.barrier));
    co_await bref.join();
  }

  // Verification phase: every rank reads the WHOLE file back and checks
  // its own chunks (reads of other ranks' chunks may race their commits —
  // the conflict reads Figure 3 shows are unharmed by delayed commit).
  const std::uint64_t total =
      std::uint64_t(params_.timesteps) * nranks * chunk;
  const std::uint64_t blocks_per_chunk = chunk / storage::kBlockSize;
  for (std::uint64_t off = 0; off < total; off += chunk) {
    const SimTime t0 = sim.now();
    auto rfut = fs.read(st.file, off, params_.chunk_bytes);
    fsapi::ReadResult rr = co_await rfut;
    if (rr.status != Status::kOk) {
      ++ctx.op_errors;
      continue;
    }
    // All ranks of a client share the FsClient, and the per-step barrier
    // guarantees every chunk was written before verification starts — so
    // every block is strictly checkable.
    const std::uint64_t first_block = off / storage::kBlockSize;
    for (std::uint64_t b = 0; b < blocks_per_chunk; ++b) {
      const auto expect = fs.expected_token(st.file, first_block + b);
      if (rr.tokens[b] != expect) ++ctx.verify_failures;
    }
    ctx.note(ctx.read_ops, sim.now() - t0, chunk);
  }
  // Final barrier so the makespan covers every rank.
  auto bref = sim.spawn(barrier_wait(sim, *st.barrier));
  co_await bref.join();
}

}  // namespace redbud::workload
