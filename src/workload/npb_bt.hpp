// NPB BT-IO style workload (§V-B, §V-C).
//
// Emulates the I/O pattern of the NAS Parallel Benchmarks BT class with
// the IO extension: several MPI ranks per client collectively write a
// shared checkpoint file in interleaved chunks over a number of
// timesteps, then "written data is read out into memory to verify the
// correctness at the end of the program" — those read-backs may hit data
// whose commits are still in flight (the paper's conflict reads), and
// this workload verifies every block.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/sync.hpp"
#include "workload/workload.hpp"

namespace redbud::workload {

struct NpbBtParams {
  std::uint32_t ranks_per_client = 4;
  std::uint32_t timesteps = 5;
  // Bytes each rank writes per timestep (one interleaved chunk).
  std::uint32_t chunk_bytes = 256 * 1024;
  // BT is compute-bound: each timestep solves block-tridiagonal systems
  // before writing. This keeps the four protocols comparable (the paper
  // sees "no significant difference" on NPB).
  redbud::sim::SimTime compute_per_step = redbud::sim::SimTime::millis(150);
};

class NpbBtWorkload final : public Workload {
 public:
  explicit NpbBtWorkload(NpbBtParams params = {});
  [[nodiscard]] std::string name() const override { return "NPB-BT"; }
  [[nodiscard]] std::uint32_t threads_per_client() const override {
    return params_.ranks_per_client;
  }
  [[nodiscard]] bool fixed_work() const override { return true; }
  void presize(std::uint32_t nclients) override;

  redbud::sim::Process prepare(redbud::sim::Simulation&, fsapi::FsClient&,
                               std::uint32_t, WorkloadContext&) override;
  redbud::sim::Process thread(redbud::sim::Simulation&, fsapi::FsClient&,
                              std::uint32_t, std::uint32_t,
                              WorkloadContext&) override;

 private:
  // Reusable rendezvous barrier for one client's ranks.
  struct Barrier {
    explicit Barrier(redbud::sim::Simulation& sim, std::uint32_t n)
        : signal(sim), parties(n) {}
    redbud::sim::Signal signal;
    std::uint32_t parties;
    std::uint32_t waiting = 0;
    std::uint64_t generation = 0;
  };
  struct ClientState {
    net::FileId file = net::kInvalidFile;
    std::unique_ptr<Barrier> barrier;
  };

  redbud::sim::Process barrier_wait(redbud::sim::Simulation& sim, Barrier& b);

  NpbBtParams params_;
  std::vector<std::unique_ptr<ClientState>> states_;
  ClientState& state_for(std::uint32_t client_id);
};

}  // namespace redbud::workload
