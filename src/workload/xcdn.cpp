#include "workload/xcdn.hpp"

#include <string>

namespace redbud::workload {

using net::Status;
using redbud::sim::Process;
using redbud::sim::Rng;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

XcdnWorkload::XcdnWorkload(XcdnParams params) : params_(params) {}

std::string XcdnWorkload::name() const {
  const auto kb = params_.file_bytes / 1024;
  return kb >= 1024 ? "xcdn-" + std::to_string(kb / 1024) + "MB"
                    : "xcdn-" + std::to_string(kb) + "KB";
}

void XcdnWorkload::presize(std::uint32_t nclients) {
  if (nclients > 0) state_for(nclients - 1);
}

XcdnWorkload::ClientState& XcdnWorkload::state_for(std::uint32_t client_id) {
  while (states_.size() <= client_id) {
    states_.push_back(std::make_unique<ClientState>());
  }
  return *states_[client_id];
}

Process XcdnWorkload::prepare(Simulation& sim, fsapi::FsClient& fs,
                              std::uint32_t client_id, WorkloadContext& ctx) {
  (void)ctx;
  ClientState& st = state_for(client_id);
  for (std::uint32_t i = 0; i < params_.initial_files_per_client; ++i) {
    const std::string name =
        "cdn_c" + std::to_string(client_id) + "_" + std::to_string(st.next_seq++);
    auto cfut = fs.create(net::kRootDir, name);
    const net::FileId id = co_await cfut;
    if (id == net::kInvalidFile) continue;
    auto wfut = fs.write(id, 0, params_.file_bytes);
    (void)co_await wfut;
    auto clfut = fs.close(id);
    (void)co_await clfut;
    st.objects.push_back(Object{id});
  }
  // Populate writes must not linger in the page cache for the measured
  // window: force them out.
  if (!st.objects.empty()) {
    auto sfut = fs.fsync(st.objects.back().id);
    (void)co_await sfut;
  }
}

Process XcdnWorkload::thread(Simulation& sim, fsapi::FsClient& fs,
                             std::uint32_t client_id, std::uint32_t,
                             WorkloadContext& ctx) {
  ClientState& st = state_for(client_id);
  Rng rng = ctx.master_rng.split();
  while (!ctx.stop) {
    if (rng.bernoulli(params_.write_fraction)) {
      // Cache fill: a brand-new object somewhere in the namespace.
      const std::string name = "cdn_c" + std::to_string(client_id) + "_" +
                               std::to_string(st.next_seq++);
      const SimTime t0 = sim.now();
      auto cfut = fs.create(net::kRootDir, name);
      const net::FileId id = co_await cfut;
      if (id == net::kInvalidFile) {
        ++ctx.op_errors;
        continue;
      }
      auto wfut = fs.write(id, 0, params_.file_bytes);
      const Status ws = co_await wfut;
      if (ws != Status::kOk) ++ctx.op_errors;
      auto clfut = fs.close(id);
      (void)co_await clfut;
      ctx.note(ctx.write_ops, sim.now() - t0, params_.file_bytes);
      st.objects.push_back(Object{id});
    } else {
      // Serve: pick an object. With zero skew this is uniform over the
      // whole namespace ("randomly scattered", cache useless); with skew,
      // popularity follows a Zipf over recency (newest objects hottest).
      if (st.objects.empty()) continue;
      std::size_t idx;
      if (params_.read_zipf_theta > 0.0) {
        if (!st.zipf || st.objects.size() > st.zipf_built_for * 11 / 10) {
          st.zipf = std::make_unique<redbud::sim::Zipf>(
              st.objects.size(), params_.read_zipf_theta);
          st.zipf_built_for = st.objects.size();
        }
        const auto rank = std::min<std::uint64_t>(st.zipf->sample(rng),
                                                  st.objects.size() - 1);
        idx = st.objects.size() - 1 - rank;  // rank 0 = newest
      } else {
        idx = rng.next_below(st.objects.size());
      }
      const auto& obj = st.objects[idx];
      const SimTime t0 = sim.now();
      auto rfut = fs.read(obj.id, 0, params_.file_bytes);
      fsapi::ReadResult rr = co_await rfut;
      if (rr.status != Status::kOk) {
        ++ctx.op_errors;
        continue;
      }
      for (std::size_t b = 0; b < rr.tokens.size(); ++b) {
        const auto expect = fs.expected_token(obj.id, b);
        if (expect != storage::kUnwrittenToken && rr.tokens[b] != expect) {
          ++ctx.verify_failures;
        }
      }
      ctx.note(ctx.read_ops, sim.now() - t0, params_.file_bytes);
    }
  }
}

}  // namespace redbud::workload
