// Open-loop arrival processes.
//
// Closed-loop workloads (filebench et al.) issue the next op when the
// previous one completes, so offered load self-throttles exactly when the
// system congests — the regime the paper's latency-vs-load figures need
// is unreachable. An ArrivalProcess generates arrival instants
// independently of service completions:
//
//  * Poisson — memoryless gaps at a fixed rate; the aggregate of N
//    independent client processes IS a Poisson process at the summed
//    rate, which is what lets one dispatcher stand in for 10^5 clients.
//  * MMPP(2) — Markov-modulated Poisson: quiet/burst states with
//    exponential dwell times, the standard bursty-traffic model (its
//    index of dispersion exceeds Poisson's 1).
//  * Diurnal — a sinusoidal day curve sampled by Lewis-Shedler thinning
//    of a Poisson process at the peak rate.
//
// All randomness comes from the one Rng handed in (derive it with
// Rng::split), so arrival sequences are bit-identical across platforms
// and worker counts.
#pragma once

#include <cstdint>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace redbud::workload {

enum class ArrivalKind : std::uint8_t { kPoisson, kMmpp, kDiurnal };

struct ArrivalParams {
  ArrivalKind kind = ArrivalKind::kPoisson;
  // Mean aggregate rate, ops/sec. For Poisson this is the rate; for MMPP
  // and diurnal it anchors the modulation below.
  double rate = 1000.0;

  // MMPP(2): rates are `rate * burst_factor` in the burst state and the
  // quiet rate chosen so the long-run mean stays `rate` given the dwell
  // split. Dwells are exponential with these means (seconds).
  double mmpp_burst_factor = 4.0;
  double mmpp_dwell_quiet_s = 2.0;
  double mmpp_dwell_burst_s = 0.5;

  // Diurnal: rate(t) = rate * (trough + (1-trough) * (1-cos(2*pi*t/T))/2),
  // peaking at `rate` mid-period and bottoming at `rate * trough`.
  double diurnal_period_s = 60.0;
  double diurnal_trough = 0.2;
};

class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalParams& params, redbud::sim::Rng rng);

  // Gap from `now` to the next arrival; advances internal state. `now` is
  // only read by the diurnal phase, so Poisson/MMPP gaps are
  // time-origin independent.
  [[nodiscard]] redbud::sim::SimTime next_gap(redbud::sim::SimTime now);

  // Instantaneous rate at `now` (ops/sec), for telemetry.
  [[nodiscard]] double rate_at(redbud::sim::SimTime now) const;

  [[nodiscard]] const ArrivalParams& params() const { return params_; }
  [[nodiscard]] bool in_burst() const { return burst_; }

 private:
  // Quiet-state rate making the MMPP long-run mean equal params_.rate.
  [[nodiscard]] double mmpp_quiet_rate() const;
  [[nodiscard]] double mmpp_burst_rate() const;
  [[nodiscard]] double diurnal_rate(double t_s) const;

  ArrivalParams params_;
  redbud::sim::Rng rng_;
  bool burst_ = false;            // MMPP state
  double dwell_remaining_s_ = 0;  // time left in the current MMPP state
};

}  // namespace redbud::workload
