#include "baseline/pvfs2.hpp"

#include <algorithm>
#include <cassert>

namespace redbud::baseline {

using net::ResponseBody;
using net::Status;
using redbud::sim::Done;
using redbud::sim::Process;
using redbud::sim::SimFuture;
using redbud::sim::SimPromise;
using storage::ContentToken;
using storage::kBlockSize;

// ---------------------------------------------------------------------------
// I/O server
// ---------------------------------------------------------------------------

PvfsIoServer::PvfsIoServer(redbud::sim::Simulation& sim,
                           net::RpcEndpoint& endpoint,
                           storage::IoScheduler& disk,
                           PvfsServerParams params)
    : sim_(&sim), endpoint_(&endpoint), disk_(&disk), params_(params) {}

void PvfsIoServer::start() {
  assert(!started_);
  started_ = true;
  for (std::uint32_t i = 0; i < params_.ndaemons; ++i) sim_->spawn(daemon());
}

storage::BlockNo PvfsIoServer::block_for(net::FileId file,
                                         std::uint64_t fblock) {
  auto& m = blocks_[file];
  auto it = m.find(fblock);
  if (it != m.end()) return it->second;
  const storage::BlockNo b = alloc_cursor_++;
  m.emplace(fblock, b);
  return b;
}

Process PvfsIoServer::daemon() {
  for (;;) {
    net::IncomingRpc rpc = co_await endpoint_->incoming().recv();
    co_await sim_->delay(params_.cpu_per_op);
    ++ops_;

    const auto* io = std::get_if<net::PvfsIoReq>(&rpc.body);
    if (!io) {
      endpoint_->reply(rpc, net::PvfsIoResp{Status::kNoEnt, {}});
      continue;
    }
    const std::uint64_t first = io->offset_bytes / kBlockSize;
    const std::uint64_t last =
        (io->offset_bytes + io->nbytes + kBlockSize - 1) / kBlockSize;
    const auto nblocks = static_cast<std::uint32_t>(last - first);

    if (io->is_write) {
      // Map file blocks to disk blocks (bump allocation keeps one file's
      // strip contiguous) and write through.
      std::vector<SimFuture<Done>> futs;
      std::size_t i = 0;
      while (i < nblocks) {
        const storage::BlockNo start = block_for(io->file, first + i);
        std::size_t j = i + 1;
        while (j < nblocks && block_for(io->file, first + j) == start + (j - i)) {
          ++j;
        }
        std::vector<ContentToken> toks(io->tokens.begin() + std::ptrdiff_t(i),
                                       io->tokens.begin() + std::ptrdiff_t(j));
        futs.push_back(disk_->submit(storage::IoKind::kWrite, start,
                                     static_cast<std::uint32_t>(j - i),
                                     std::move(toks)));
        i = j;
      }
      for (auto& f : futs) co_await f;
      endpoint_->reply(rpc, net::PvfsIoResp{Status::kOk, {}});
    } else {
      net::PvfsIoResp resp;
      resp.tokens.assign(nblocks, storage::kUnwrittenToken);
      std::vector<SimFuture<Done>> futs;
      std::vector<std::pair<std::size_t, storage::BlockNo>> fetched;
      auto& m = blocks_[io->file];
      for (std::uint32_t i = 0; i < nblocks; ++i) {
        auto bit = m.find(first + i);
        if (bit == m.end()) continue;  // hole
        futs.push_back(disk_->submit(storage::IoKind::kRead, bit->second, 1));
        fetched.emplace_back(i, bit->second);
      }
      for (auto& f : futs) co_await f;
      for (auto& [idx, blk] : fetched) {
        resp.tokens[idx] = disk_->disk().load(blk, 1)[0];
      }
      endpoint_->reply(rpc, std::move(resp));
    }
  }
}

// ---------------------------------------------------------------------------
// Metadata server
// ---------------------------------------------------------------------------

PvfsMetaServer::PvfsMetaServer(redbud::sim::Simulation& sim,
                               net::RpcEndpoint& endpoint,
                               PvfsServerParams params)
    : sim_(&sim), endpoint_(&endpoint), params_(params) {}

void PvfsMetaServer::start() {
  assert(!started_);
  started_ = true;
  for (std::uint32_t i = 0; i < params_.ndaemons; ++i) sim_->spawn(daemon());
}

Process PvfsMetaServer::daemon() {
  for (;;) {
    net::IncomingRpc rpc = co_await endpoint_->incoming().recv();
    co_await sim_->delay(params_.cpu_per_op);
    ++ops_;

    ResponseBody resp;
    if (const auto* r = std::get_if<net::CreateReq>(&rpc.body)) {
      const auto id = ns_.create(r->dir, r->name);
      resp = id == net::kInvalidFile
                 ? net::CreateResp{Status::kExists, net::kInvalidFile}
                 : net::CreateResp{Status::kOk, id};
    } else if (const auto* r = std::get_if<net::LookupReq>(&rpc.body)) {
      auto id = ns_.lookup(r->dir, r->name);
      resp = id ? net::LookupResp{Status::kOk, *id, sizes_[*id]}
                : net::LookupResp{Status::kNoEnt, net::kInvalidFile, 0};
    } else if (const auto* r = std::get_if<net::RemoveReq>(&rpc.body)) {
      resp = ns_.remove(r->dir, r->name) ? net::RemoveResp{Status::kOk}
                                         : net::RemoveResp{Status::kNoEnt};
    } else if (const auto* r = std::get_if<net::StatReq>(&rpc.body)) {
      auto it = sizes_.find(r->file);
      resp = it != sizes_.end() ? net::StatResp{Status::kOk, it->second}
                                : net::StatResp{Status::kOk, 0};
    } else if (const auto* r = std::get_if<net::CommitReq>(&rpc.body)) {
      // Setattr: size updates only (PVFS2 keeps sizes at the metadata
      // server; extents live on the I/O servers).
      for (const auto& e : r->entries) {
        auto& sz = sizes_[e.file];
        sz = std::max(sz, e.new_size_bytes);
      }
      resp = net::CommitResp{Status::kOk, 0};
    } else {
      resp = net::StatResp{Status::kNoEnt, 0};
    }
    endpoint_->reply(rpc, std::move(resp));
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

PvfsClient::PvfsClient(redbud::sim::Simulation& sim, net::Network& network,
                       net::RpcEndpoint& meta,
                       std::vector<net::RpcEndpoint*> io_servers,
                       PvfsClientParams params)
    : sim_(&sim),
      meta_(&meta),
      io_servers_(std::move(io_servers)),
      params_(params),
      strip_blocks_(params.strip_blocks),
      node_(network.add_node()),
      endpoint_(sim, network, node_) {
  assert(!io_servers_.empty());
}

SimFuture<net::FileId> PvfsClient::create(net::DirId dir, std::string name) {
  SimPromise<net::FileId> p(*sim_);
  auto fut = p.future();
  sim_->spawn(create_proc(dir, std::move(name), std::move(p)));
  return fut;
}

SimFuture<fsapi::OpenResult> PvfsClient::open(net::DirId dir,
                                              std::string name) {
  SimPromise<fsapi::OpenResult> p(*sim_);
  auto fut = p.future();
  sim_->spawn(open_proc(dir, std::move(name), std::move(p)));
  return fut;
}

SimFuture<Status> PvfsClient::write(net::FileId file, std::uint64_t offset,
                                    std::uint32_t nbytes) {
  SimPromise<Status> p(*sim_);
  auto fut = p.future();
  sim_->spawn(write_proc(file, offset, nbytes, std::move(p)));
  return fut;
}

SimFuture<fsapi::ReadResult> PvfsClient::read(net::FileId file,
                                              std::uint64_t offset,
                                              std::uint32_t nbytes) {
  SimPromise<fsapi::ReadResult> p(*sim_);
  auto fut = p.future();
  sim_->spawn(read_proc(file, offset, nbytes, std::move(p)));
  return fut;
}

SimFuture<Status> PvfsClient::fsync(net::FileId file) {
  SimPromise<Status> p(*sim_);
  auto fut = p.future();
  sim_->spawn(sync_proc(file, std::move(p)));
  return fut;
}

SimFuture<Status> PvfsClient::close(net::FileId file) { return fsync(file); }

SimFuture<Status> PvfsClient::remove(net::DirId dir, std::string name) {
  SimPromise<Status> p(*sim_);
  auto fut = p.future();
  sim_->spawn(remove_proc(dir, std::move(name), std::move(p)));
  return fut;
}

ContentToken PvfsClient::expected_token(net::FileId file,
                                        std::uint64_t block) const {
  auto fit = versions_.find(file);
  if (fit == versions_.end()) return storage::kUnwrittenToken;
  auto vit = fit->second.find(block);
  if (vit == fit->second.end()) return storage::kUnwrittenToken;
  return storage::make_token(file, block, vit->second);
}

Process PvfsClient::create_proc(net::DirId dir, std::string name,
                                SimPromise<net::FileId> p) {
  co_await sim_->delay(params_.cpu_op);
  net::RequestBody req = net::CreateReq{dir, std::move(name)};
  auto fut = endpoint_.call(*meta_, std::move(req));
  auto resp = co_await fut;
  const auto& cr = std::get<net::CreateResp>(resp);
  p.set_value(cr.status == Status::kOk ? cr.file : net::kInvalidFile);
}

Process PvfsClient::open_proc(net::DirId dir, std::string name,
                              SimPromise<fsapi::OpenResult> p) {
  co_await sim_->delay(params_.cpu_op);
  net::RequestBody req = net::LookupReq{dir, std::move(name)};
  auto fut = endpoint_.call(*meta_, std::move(req));
  auto resp = co_await fut;
  const auto& lr = std::get<net::LookupResp>(resp);
  p.set_value(fsapi::OpenResult{lr.status, lr.file, lr.size_bytes});
}

Process PvfsClient::flush_staging(net::FileId file, bool all,
                                  SimPromise<Status> p) {
  auto sit = staging_.find(file);
  if (sit == staging_.end() || sit->second.empty()) {
    p.set_value(Status::kOk);
    co_return;
  }
  // Collect runs to flush: whole strips, or everything when `all`.
  Staging& st = sit->second;
  std::vector<std::pair<std::uint64_t, std::vector<ContentToken>>> runs;
  {
    auto it = st.begin();
    while (it != st.end()) {
      const std::uint64_t strip = it->first / strip_blocks_;
      // Gather this strip's staged pages (contiguity within a strip).
      std::vector<std::pair<std::uint64_t, ContentToken>> pages;
      auto jt = it;
      while (jt != st.end() && jt->first / strip_blocks_ == strip) {
        pages.emplace_back(jt->first, jt->second);
        ++jt;
      }
      const bool full_strip = pages.size() == strip_blocks_;
      if (full_strip || all) {
        // Split into contiguous runs.
        std::size_t i = 0;
        while (i < pages.size()) {
          std::size_t j = i + 1;
          while (j < pages.size() && pages[j].first == pages[j - 1].first + 1) {
            ++j;
          }
          std::vector<ContentToken> toks;
          for (std::size_t k = i; k < j; ++k) toks.push_back(pages[k].second);
          runs.emplace_back(pages[i].first, std::move(toks));
          i = j;
        }
        it = st.erase(it, jt);
      } else {
        it = jt;
      }
    }
  }
  if (runs.empty()) {
    p.set_value(Status::kOk);
    co_return;
  }

  // One parallel request per run to the owning I/O server.
  std::vector<SimFuture<ResponseBody>> futs;
  for (auto& [fblock, toks] : runs) {
    net::PvfsIoReq io;
    io.file = file;
    io.offset_bytes = fblock * kBlockSize;
    io.nbytes = static_cast<std::uint32_t>(toks.size() * kBlockSize);
    io.is_write = true;
    io.tokens = std::move(toks);
    net::RequestBody req = std::move(io);
    futs.push_back(endpoint_.call(*io_servers_[server_for(fblock)],
                                  std::move(req)));
  }
  for (auto& f : futs) (void)co_await f;

  // Size update at the metadata server (PVFS2's own distributed update).
  net::CommitReq creq;
  net::CommitEntry e;
  e.file = file;
  e.new_size_bytes = sizes_[file];
  creq.entries.push_back(std::move(e));
  net::RequestBody req = std::move(creq);
  auto fut = endpoint_.call(*meta_, std::move(req));
  (void)co_await fut;
  p.set_value(Status::kOk);
}

Process PvfsClient::write_proc(net::FileId file, std::uint64_t offset,
                               std::uint32_t nbytes, SimPromise<Status> p) {
  const std::uint64_t first = offset / kBlockSize;
  const std::uint64_t last = (offset + nbytes + kBlockSize - 1) / kBlockSize;
  co_await sim_->delay(params_.cpu_op +
                       params_.cpu_page * std::int64_t(last - first));

  auto& st = staging_[file];
  for (std::uint64_t b = first; b < last; ++b) {
    const auto ver = ++versions_[file][b];
    st[b] = storage::make_token(file, b, ver);
  }
  auto& sz = sizes_[file];
  sz = std::max(sz, offset + nbytes);

  if (!params_.collective_buffering) {
    SimPromise<Status> fp(*sim_);
    auto ffut = fp.future();
    sim_->spawn(flush_staging(file, true, std::move(fp)));
    const Status s = co_await ffut;
    p.set_value(s);
    co_return;
  }
  // Collective buffering: flush only completed strips; the remainder goes
  // out on fsync/close.
  SimPromise<Status> fp(*sim_);
  auto ffut = fp.future();
  sim_->spawn(flush_staging(file, false, std::move(fp)));
  const Status s = co_await ffut;
  p.set_value(s);
}

Process PvfsClient::read_proc(net::FileId file, std::uint64_t offset,
                              std::uint32_t nbytes,
                              SimPromise<fsapi::ReadResult> p) {
  const std::uint64_t first = offset / kBlockSize;
  const std::uint64_t last = (offset + nbytes + kBlockSize - 1) / kBlockSize;
  const auto nblocks = static_cast<std::uint32_t>(last - first);
  co_await sim_->delay(params_.cpu_op +
                       params_.cpu_page * std::int64_t(nblocks));

  fsapi::ReadResult out;
  out.tokens.assign(nblocks, storage::kUnwrittenToken);

  // Staged pages are visible to the writer immediately.
  std::vector<bool> have(nblocks, false);
  if (auto sit = staging_.find(file); sit != staging_.end()) {
    for (std::uint32_t i = 0; i < nblocks; ++i) {
      if (auto it = sit->second.find(first + i); it != sit->second.end()) {
        out.tokens[i] = it->second;
        have[i] = true;
      }
    }
  }

  // Fetch per-server runs in parallel (no client cache: always network).
  struct Req {
    std::uint32_t index;
    std::uint64_t fblock;
    std::uint32_t count;
  };
  std::vector<Req> reqs;
  {
    std::uint32_t i = 0;
    while (i < nblocks) {
      if (have[i]) {
        ++i;
        continue;
      }
      const std::size_t srv = server_for(first + i);
      std::uint32_t run = 1;
      while (i + run < nblocks && !have[i + run] &&
             server_for(first + i + run) == srv) {
        ++run;
      }
      reqs.push_back(Req{i, first + i, run});
      i += run;
    }
  }
  std::vector<SimFuture<ResponseBody>> futs;
  for (const auto& r : reqs) {
    net::PvfsIoReq io;
    io.file = file;
    io.offset_bytes = r.fblock * kBlockSize;
    io.nbytes = r.count * static_cast<std::uint32_t>(kBlockSize);
    io.is_write = false;
    net::RequestBody req = std::move(io);
    futs.push_back(
        endpoint_.call(*io_servers_[server_for(r.fblock)], std::move(req)));
  }
  for (std::size_t k = 0; k < futs.size(); ++k) {
    auto resp = co_await futs[k];
    auto& io = std::get<net::PvfsIoResp>(resp);
    for (std::uint32_t j = 0; j < reqs[k].count; ++j) {
      out.tokens[reqs[k].index + j] = io.tokens[j];
    }
  }
  p.set_value(std::move(out));
}

Process PvfsClient::sync_proc(net::FileId file, SimPromise<Status> p) {
  co_await sim_->delay(params_.cpu_op);
  SimPromise<Status> fp(*sim_);
  auto ffut = fp.future();
  sim_->spawn(flush_staging(file, true, std::move(fp)));
  const Status s = co_await ffut;
  p.set_value(s);
}

Process PvfsClient::remove_proc(net::DirId dir, std::string name,
                                SimPromise<Status> p) {
  co_await sim_->delay(params_.cpu_op);
  net::RequestBody req = net::RemoveReq{dir, std::move(name)};
  auto fut = endpoint_.call(*meta_, std::move(req));
  auto resp = co_await fut;
  p.set_value(std::get<net::RemoveResp>(resp).status);
}

}  // namespace redbud::baseline
