// PVFS2 baseline (§V-C comparison point; "Orangefs 2.8.5" in the paper).
//
// Architecture: user-space servers; file data striped over I/O servers
// and carried over Ethernet (no FC fast path, no client page cache); a
// metadata server handles the namespace. The client implements MPI-IO
// style collective buffering — contiguous writes are staged per stripe
// and flushed as whole strips — which is why PVFS2 shines on NPB BT-IO's
// interleaved checkpoint writes while trailing on small-file workloads
// (per small file: an RPC round trip plus a synchronous server disk
// write, with nothing to aggregate).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "fsapi/fs_client.hpp"
#include "mds/inode.hpp"
#include "net/rpc.hpp"
#include "storage/io_scheduler.hpp"

namespace redbud::baseline {

struct PvfsServerParams {
  std::uint32_t ndaemons = 4;
  redbud::sim::SimTime cpu_per_op = redbud::sim::SimTime::micros(60);
};

// One PVFS2 I/O server: owns a disk, services striped data requests.
class PvfsIoServer {
 public:
  PvfsIoServer(redbud::sim::Simulation& sim, net::RpcEndpoint& endpoint,
               storage::IoScheduler& disk, PvfsServerParams params);
  PvfsIoServer(const PvfsIoServer&) = delete;
  PvfsIoServer& operator=(const PvfsIoServer&) = delete;

  void start();
  [[nodiscard]] std::uint64_t ops_processed() const { return ops_; }

 private:
  redbud::sim::Process daemon();
  [[nodiscard]] storage::BlockNo block_for(net::FileId file,
                                           std::uint64_t fblock);

  redbud::sim::Simulation* sim_;
  net::RpcEndpoint* endpoint_;
  storage::IoScheduler* disk_;
  PvfsServerParams params_;
  std::unordered_map<net::FileId,
                     std::unordered_map<std::uint64_t, storage::BlockNo>>
      blocks_;
  storage::BlockNo alloc_cursor_ = 0;
  bool started_ = false;
  std::uint64_t ops_ = 0;
};

// PVFS2 metadata server: namespace + sizes (no data).
class PvfsMetaServer {
 public:
  PvfsMetaServer(redbud::sim::Simulation& sim, net::RpcEndpoint& endpoint,
                 PvfsServerParams params);
  PvfsMetaServer(const PvfsMetaServer&) = delete;
  PvfsMetaServer& operator=(const PvfsMetaServer&) = delete;

  void start();
  [[nodiscard]] std::uint64_t ops_processed() const { return ops_; }

 private:
  redbud::sim::Process daemon();

  redbud::sim::Simulation* sim_;
  net::RpcEndpoint* endpoint_;
  PvfsServerParams params_;
  mds::Namespace ns_;
  std::unordered_map<net::FileId, std::uint64_t> sizes_;
  bool started_ = false;
  std::uint64_t ops_ = 0;
};

struct PvfsClientParams {
  // User-space client library overhead per op.
  redbud::sim::SimTime cpu_op = redbud::sim::SimTime::micros(25);
  redbud::sim::SimTime cpu_page = redbud::sim::SimTime::micros(1);
  std::uint32_t strip_blocks = 16;  // 64 KiB strips
  // MPI-IO collective buffering: stage contiguous writes per strip and
  // flush whole strips.
  bool collective_buffering = true;
};

class PvfsClient final : public fsapi::FsClient {
 public:
  PvfsClient(redbud::sim::Simulation& sim, net::Network& network,
             net::RpcEndpoint& meta,
             std::vector<net::RpcEndpoint*> io_servers,
             PvfsClientParams params);

  [[nodiscard]] redbud::sim::SimFuture<net::FileId> create(
      net::DirId dir, std::string name) override;
  [[nodiscard]] redbud::sim::SimFuture<fsapi::OpenResult> open(
      net::DirId dir, std::string name) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> write(
      net::FileId file, std::uint64_t offset_bytes,
      std::uint32_t nbytes) override;
  [[nodiscard]] redbud::sim::SimFuture<fsapi::ReadResult> read(
      net::FileId file, std::uint64_t offset_bytes,
      std::uint32_t nbytes) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> fsync(
      net::FileId file) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> close(
      net::FileId file) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> remove(
      net::DirId dir, std::string name) override;
  [[nodiscard]] storage::ContentToken expected_token(
      net::FileId file, std::uint64_t block) const override;

  [[nodiscard]] net::RpcEndpoint& endpoint() { return endpoint_; }

 private:
  // Staged (not yet sent) pages of a file, keyed by file block.
  using Staging = std::map<std::uint64_t, storage::ContentToken>;

  redbud::sim::Process create_proc(net::DirId dir, std::string name,
                                   redbud::sim::SimPromise<net::FileId> p);
  redbud::sim::Process open_proc(net::DirId dir, std::string name,
                                 redbud::sim::SimPromise<fsapi::OpenResult> p);
  redbud::sim::Process write_proc(net::FileId file, std::uint64_t offset,
                                  std::uint32_t nbytes,
                                  redbud::sim::SimPromise<net::Status> p);
  redbud::sim::Process read_proc(net::FileId file, std::uint64_t offset,
                                 std::uint32_t nbytes,
                                 redbud::sim::SimPromise<fsapi::ReadResult> p);
  redbud::sim::Process sync_proc(net::FileId file,
                                 redbud::sim::SimPromise<net::Status> p);
  redbud::sim::Process remove_proc(net::DirId dir, std::string name,
                                   redbud::sim::SimPromise<net::Status> p);
  // Flush staged pages (whole strips, or everything when `all`).
  redbud::sim::Process flush_staging(net::FileId file, bool all,
                                     redbud::sim::SimPromise<net::Status> p);

  [[nodiscard]] std::size_t server_for(std::uint64_t fblock) const {
    return (fblock / strip_blocks_) % io_servers_.size();
  }

  redbud::sim::Simulation* sim_;
  net::RpcEndpoint* meta_;
  std::vector<net::RpcEndpoint*> io_servers_;
  PvfsClientParams params_;
  std::uint32_t strip_blocks_;
  net::NodeId node_;
  net::RpcEndpoint endpoint_;
  std::unordered_map<net::FileId, Staging> staging_;
  std::unordered_map<net::FileId, std::uint64_t> sizes_;
  std::unordered_map<net::FileId,
                     std::unordered_map<std::uint64_t, std::uint64_t>>
      versions_;
};

}  // namespace redbud::baseline
