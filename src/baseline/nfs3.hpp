// NFS3 baseline (§V-C comparison point).
//
// Architecture per RFC 1813 / the NFS3 design paper: ONE server owns both
// data and metadata; clients reach it over Ethernet; WRITEs may be sent
// UNSTABLE and buffered server-side, with a later COMMIT forcing them to
// the server's disk. There are no distributed updates — which is exactly
// why NFS3 holds up on random small writes (the server's memory absorbs
// them) but becomes the bottleneck for large transfers (all data squeezes
// through its single NIC) and cannot scale with clients.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fsapi/fs_client.hpp"
#include "client/page_cache.hpp"
#include "mds/inode.hpp"
#include "net/rpc.hpp"
#include "sim/random.hpp"
#include "sim/sync.hpp"
#include "storage/io_scheduler.hpp"

namespace redbud::baseline {

struct Nfs3ServerParams {
  std::uint32_t ndaemons = 8;  // nfsd threads
  redbud::sim::SimTime cpu_per_op = redbud::sim::SimTime::micros(40);
  // Server page cache (the paper's servers have 8 GB of RAM); dirty pages
  // beyond the limit trigger eager flushing.
  std::size_t cache_pages = 1 << 19;  // 2 GiB
  std::size_t dirty_limit_pages = 1 << 18;  // 1 GiB (8 GB server RAM, scaled)
  // pdflush analogue: dirty data is written back in the background.
  // Sweeps are size-capped so foreground COMMITs are not starved behind
  // a giant background pass (writeback throttling).
  redbud::sim::SimTime writeback_interval = redbud::sim::SimTime::seconds(1);
  std::size_t writeback_files_per_sweep = 512;
  // Aged-ext3 placement: files live in scattered regions of the volume.
  // ext3-style placement: new files stream into the active block group
  // nearly contiguously (tiny gaps), so writeback sweeps of freshly
  // created files merge well; REwrites of old files revisit their
  // scattered original regions.
  std::uint32_t region_blocks = 512;
  std::uint32_t region_gap_min = 0;
  std::uint32_t region_gap_max = 16;
};

class Nfs3Server {
 public:
  Nfs3Server(redbud::sim::Simulation& sim, net::RpcEndpoint& endpoint,
             storage::IoScheduler& disk, Nfs3ServerParams params);
  Nfs3Server(const Nfs3Server&) = delete;
  Nfs3Server& operator=(const Nfs3Server&) = delete;

  void start();

  [[nodiscard]] std::uint64_t ops_processed() const { return ops_; }
  [[nodiscard]] std::size_t dirty_pages() const { return cache_.dirty_count(); }
  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }

 private:
  struct FileMeta {
    std::uint64_t size_bytes = 0;
    // Where each file block lives on the server disk.
    std::unordered_map<std::uint64_t, storage::BlockNo> blocks;
    // Current allocation region (per-file contiguity, inter-file scatter).
    storage::BlockNo region_next = 0;
    std::uint32_t region_left = 0;
  };
  redbud::sim::Process daemon();
  redbud::sim::Process writeback_daemon();
  net::ResponseBody execute(const net::IncomingRpc& rpc);
  // Flush a file's dirty pages to disk; returns a future for durability.
  redbud::sim::Process flush_file(net::FileId file,
                                  redbud::sim::SimPromise<redbud::sim::Done> p);
  [[nodiscard]] storage::BlockNo block_for(net::FileId file,
                                           std::uint64_t fblock);

  redbud::sim::Simulation* sim_;
  net::RpcEndpoint* endpoint_;
  storage::IoScheduler* disk_;
  Nfs3ServerParams params_;
  mds::Namespace ns_;
  std::unordered_map<net::FileId, FileMeta> meta_;
  client::PageCache cache_;  // server memory: dirty + clean pages
  storage::BlockNo alloc_cursor_ = 0;
  redbud::sim::Rng rng_{0xAF53};
  // Files with dirty pages, for the background writeback daemon.
  std::vector<net::FileId> dirty_files_;
  bool started_ = false;
  std::uint64_t ops_ = 0;
  std::uint64_t flushes_ = 0;
};

struct Nfs3ClientParams {
  redbud::sim::SimTime cpu_op = redbud::sim::SimTime::micros(5);
  redbud::sim::SimTime cpu_page = redbud::sim::SimTime::micros(1);
  // Client-side write-back: WRITEs are sent asynchronously (UNSTABLE).
  bool async_writes = true;
};

class Nfs3Client final : public fsapi::FsClient {
 public:
  Nfs3Client(redbud::sim::Simulation& sim, net::Network& network,
             net::RpcEndpoint& server, Nfs3ClientParams params);

  [[nodiscard]] redbud::sim::SimFuture<net::FileId> create(
      net::DirId dir, std::string name) override;
  [[nodiscard]] redbud::sim::SimFuture<fsapi::OpenResult> open(
      net::DirId dir, std::string name) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> write(
      net::FileId file, std::uint64_t offset_bytes,
      std::uint32_t nbytes) override;
  [[nodiscard]] redbud::sim::SimFuture<fsapi::ReadResult> read(
      net::FileId file, std::uint64_t offset_bytes,
      std::uint32_t nbytes) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> fsync(
      net::FileId file) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> close(
      net::FileId file) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> remove(
      net::DirId dir, std::string name) override;
  [[nodiscard]] storage::ContentToken expected_token(
      net::FileId file, std::uint64_t block) const override;

  [[nodiscard]] net::RpcEndpoint& endpoint() { return endpoint_; }

 private:
  redbud::sim::Process create_proc(net::DirId dir, std::string name,
                                   redbud::sim::SimPromise<net::FileId> p);
  redbud::sim::Process open_proc(net::DirId dir, std::string name,
                                 redbud::sim::SimPromise<fsapi::OpenResult> p);
  redbud::sim::Process write_proc(net::FileId file, std::uint64_t offset,
                                  std::uint32_t nbytes,
                                  redbud::sim::SimPromise<net::Status> p);
  redbud::sim::Process read_proc(net::FileId file, std::uint64_t offset,
                                 std::uint32_t nbytes,
                                 redbud::sim::SimPromise<fsapi::ReadResult> p);
  redbud::sim::Process sync_proc(net::FileId file,
                                 redbud::sim::SimPromise<net::Status> p);
  redbud::sim::Process remove_proc(net::DirId dir, std::string name,
                                   redbud::sim::SimPromise<net::Status> p);

  redbud::sim::Simulation* sim_;
  net::RpcEndpoint* server_;
  Nfs3ClientParams params_;
  net::NodeId node_;
  net::RpcEndpoint endpoint_;
  // Outstanding async WRITE futures per file (awaited by fsync/close).
  std::unordered_map<net::FileId,
                     std::vector<redbud::sim::SimFuture<net::ResponseBody>>>
      outstanding_;
  // Token versions for verification.
  std::unordered_map<net::FileId,
                     std::unordered_map<std::uint64_t, std::uint64_t>>
      versions_;
};

}  // namespace redbud::baseline
