#include "baseline/nfs3.hpp"

#include <algorithm>
#include <cassert>

namespace redbud::baseline {

using net::ResponseBody;
using net::Status;
using redbud::sim::Done;
using redbud::sim::Process;
using redbud::sim::SimFuture;
using redbud::sim::SimPromise;
using storage::ContentToken;
using storage::kBlockSize;

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Nfs3Server::Nfs3Server(redbud::sim::Simulation& sim,
                       net::RpcEndpoint& endpoint,
                       storage::IoScheduler& disk, Nfs3ServerParams params)
    : sim_(&sim),
      endpoint_(&endpoint),
      disk_(&disk),
      params_(params),
      cache_(params.cache_pages) {}

void Nfs3Server::start() {
  assert(!started_);
  started_ = true;
  for (std::uint32_t i = 0; i < params_.ndaemons; ++i) sim_->spawn(daemon());
  sim_->spawn(writeback_daemon());
}

Process Nfs3Server::writeback_daemon() {
  // pdflush analogue: periodically push dirty data to the platter so the
  // server's buffered memory does not hold durability hostage forever.
  // All files of a sweep flush CONCURRENTLY — the elevator sorts the
  // scattered regions into one C-LOOK pass, as Linux writeback does.
  for (;;) {
    co_await sim_->delay(params_.writeback_interval);
    const std::size_t n =
        std::min(params_.writeback_files_per_sweep, dirty_files_.size());
    std::vector<net::FileId> files(dirty_files_.begin(),
                                   dirty_files_.begin() + std::ptrdiff_t(n));
    dirty_files_.erase(dirty_files_.begin(),
                       dirty_files_.begin() + std::ptrdiff_t(n));
    std::vector<SimFuture<Done>> futs;
    futs.reserve(files.size());
    for (const auto file : files) {
      SimPromise<Done> p(*sim_);
      futs.push_back(p.future());
      sim_->spawn(flush_file(file, std::move(p)));
    }
    for (auto& f : futs) co_await f;
  }
}

storage::BlockNo Nfs3Server::block_for(net::FileId file,
                                       std::uint64_t fblock) {
  FileMeta& m = meta_[file];
  auto it = m.blocks.find(fblock);
  if (it != m.blocks.end()) return it->second;
  if (m.region_left == 0) {
    // New scattered region: per-file contiguity, inter-file fragmentation
    // (an aged ext3 volume, not a freshly mkfs'd bump allocator).
    alloc_cursor_ += std::uint64_t(
        rng_.uniform_int(params_.region_gap_min, params_.region_gap_max));
    m.region_next = alloc_cursor_;
    m.region_left = params_.region_blocks;
    alloc_cursor_ += params_.region_blocks;
  }
  const storage::BlockNo b = m.region_next++;
  --m.region_left;
  m.blocks.emplace(fblock, b);
  return b;
}

Process Nfs3Server::flush_file(net::FileId file, SimPromise<Done> p) {
  // Collect this file's dirty pages, write them to disk in block order;
  // the pages stay resident (clean) in the server cache afterwards.
  std::vector<std::pair<storage::BlockNo, ContentToken>> to_write;
  for (const auto& [fblock, token] : cache_.dirty_pages_of(file)) {
    to_write.emplace_back(block_for(file, fblock), token);
    cache_.mark_clean(file, fblock);
  }
  std::sort(to_write.begin(), to_write.end());
  std::vector<SimFuture<Done>> futs;
  // Coalesce physically adjacent pages into single submissions.
  std::size_t i = 0;
  while (i < to_write.size()) {
    std::size_t j = i + 1;
    while (j < to_write.size() &&
           to_write[j].first == to_write[j - 1].first + 1) {
      ++j;
    }
    std::vector<ContentToken> tokens;
    tokens.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) tokens.push_back(to_write[k].second);
    futs.push_back(disk_->submit(storage::IoKind::kWrite, to_write[i].first,
                                 static_cast<std::uint32_t>(j - i),
                                 std::move(tokens)));
    i = j;
  }
  for (auto& f : futs) co_await f;
  if (!to_write.empty()) ++flushes_;
  p.set_value(Done{});
}

ResponseBody Nfs3Server::execute(const net::IncomingRpc& rpc) {
  ++ops_;
  if (const auto* r = std::get_if<net::CreateReq>(&rpc.body)) {
    const auto id = ns_.create(r->dir, r->name);
    if (id == net::kInvalidFile) {
      return net::CreateResp{Status::kExists, net::kInvalidFile};
    }
    meta_[id];
    return net::CreateResp{Status::kOk, id};
  }
  if (const auto* r = std::get_if<net::LookupReq>(&rpc.body)) {
    auto id = ns_.lookup(r->dir, r->name);
    if (!id) return net::LookupResp{Status::kNoEnt, net::kInvalidFile, 0};
    return net::LookupResp{Status::kOk, *id, meta_[*id].size_bytes};
  }
  if (const auto* r = std::get_if<net::RemoveReq>(&rpc.body)) {
    auto extents = ns_.remove(r->dir, r->name);
    if (!extents) return net::RemoveResp{Status::kNoEnt};
    return net::RemoveResp{Status::kOk};
  }
  if (const auto* r = std::get_if<net::StatReq>(&rpc.body)) {
    auto it = meta_.find(r->file);
    if (it == meta_.end()) return net::StatResp{Status::kNoEnt, 0};
    return net::StatResp{Status::kOk, it->second.size_bytes};
  }
  if (const auto* r = std::get_if<net::NfsWriteReq>(&rpc.body)) {
    FileMeta& m = meta_[r->file];
    const std::uint64_t first = r->offset_bytes / kBlockSize;
    const bool was_clean = cache_.dirty_pages_of(r->file).empty();
    for (std::size_t i = 0; i < r->tokens.size(); ++i) {
      cache_.put_dirty(r->file, first + i, r->tokens[i]);
    }
    if (was_clean) dirty_files_.push_back(r->file);
    m.size_bytes = std::max(m.size_bytes, r->offset_bytes + r->nbytes);
    return net::NfsWriteResp{Status::kOk};
  }
  if (const auto* r = std::get_if<net::NfsReadReq>(&rpc.body)) {
    net::NfsReadResp resp;
    auto it = meta_.find(r->file);
    if (it == meta_.end()) {
      resp.status = Status::kNoEnt;
      return resp;
    }
    const std::uint64_t first = r->offset_bytes / kBlockSize;
    const std::uint64_t last =
        (r->offset_bytes + r->nbytes + kBlockSize - 1) / kBlockSize;
    resp.tokens.assign(last - first, storage::kUnwrittenToken);
    for (std::uint64_t b = first; b < last; ++b) {
      if (auto tok = cache_.get(r->file, b)) {
        resp.tokens[b - first] = *tok;  // served from server memory
      }
    }
    return resp;
  }
  // NfsCommitReq handled in the daemon (needs awaits).
  return net::NfsCommitResp{Status::kOk};
}

Process Nfs3Server::daemon() {
  for (;;) {
    net::IncomingRpc rpc = co_await endpoint_->incoming().recv();
    co_await sim_->delay(params_.cpu_per_op);

    if (const auto* c = std::get_if<net::NfsCommitReq>(&rpc.body)) {
      SimPromise<Done> p(*sim_);
      auto fut = p.future();
      sim_->spawn(flush_file(c->file, std::move(p)));
      co_await fut;
      ++ops_;
      endpoint_->reply(rpc, net::NfsCommitResp{Status::kOk});
      continue;
    }

    // Reads may need disk I/O for blocks not in the dirty buffer.
    if (const auto* r = std::get_if<net::NfsReadReq>(&rpc.body)) {
      ResponseBody resp = execute(rpc);
      auto& rr = std::get<net::NfsReadResp>(resp);
      if (rr.status == Status::kOk) {
        const std::uint64_t first = r->offset_bytes / kBlockSize;
        FileMeta& m = meta_[r->file];
        std::vector<SimFuture<Done>> futs;
        std::vector<std::pair<std::size_t, storage::BlockNo>> fetched;
        for (std::size_t i = 0; i < rr.tokens.size(); ++i) {
          if (rr.tokens[i] != storage::kUnwrittenToken) continue;
          auto bit = m.blocks.find(first + i);
          if (bit == m.blocks.end()) continue;  // hole
          futs.push_back(
              disk_->submit(storage::IoKind::kRead, bit->second, 1));
          fetched.emplace_back(i, bit->second);
        }
        for (auto& f : futs) co_await f;
        for (auto& [idx, blk] : fetched) {
          rr.tokens[idx] = disk_->disk().load(blk, 1)[0];
          cache_.put_clean(r->file, first + idx, rr.tokens[idx]);
        }
      }
      endpoint_->reply(rpc, std::move(resp));
      continue;
    }

    ResponseBody resp = execute(rpc);

    // Memory-pressure flush: too many dirty pages -> synchronous flush of
    // the writing file (the server cannot buffer indefinitely).
    if (std::get_if<net::NfsWriteReq>(&rpc.body) &&
        cache_.dirty_count() > params_.dirty_limit_pages) {
      const auto file = std::get<net::NfsWriteReq>(rpc.body).file;
      SimPromise<Done> p(*sim_);
      auto fut = p.future();
      sim_->spawn(flush_file(file, std::move(p)));
      co_await fut;
    }
    endpoint_->reply(rpc, std::move(resp));
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Nfs3Client::Nfs3Client(redbud::sim::Simulation& sim, net::Network& network,
                       net::RpcEndpoint& server, Nfs3ClientParams params)
    : sim_(&sim),
      server_(&server),
      params_(params),
      node_(network.add_node()),
      endpoint_(sim, network, node_) {}

SimFuture<net::FileId> Nfs3Client::create(net::DirId dir, std::string name) {
  SimPromise<net::FileId> p(*sim_);
  auto fut = p.future();
  sim_->spawn(create_proc(dir, std::move(name), std::move(p)));
  return fut;
}

SimFuture<fsapi::OpenResult> Nfs3Client::open(net::DirId dir,
                                              std::string name) {
  SimPromise<fsapi::OpenResult> p(*sim_);
  auto fut = p.future();
  sim_->spawn(open_proc(dir, std::move(name), std::move(p)));
  return fut;
}

SimFuture<Status> Nfs3Client::write(net::FileId file, std::uint64_t offset,
                                    std::uint32_t nbytes) {
  SimPromise<Status> p(*sim_);
  auto fut = p.future();
  sim_->spawn(write_proc(file, offset, nbytes, std::move(p)));
  return fut;
}

SimFuture<fsapi::ReadResult> Nfs3Client::read(net::FileId file,
                                              std::uint64_t offset,
                                              std::uint32_t nbytes) {
  SimPromise<fsapi::ReadResult> p(*sim_);
  auto fut = p.future();
  sim_->spawn(read_proc(file, offset, nbytes, std::move(p)));
  return fut;
}

SimFuture<Status> Nfs3Client::fsync(net::FileId file) {
  SimPromise<Status> p(*sim_);
  auto fut = p.future();
  sim_->spawn(sync_proc(file, std::move(p)));
  return fut;
}

namespace {
Process close_proc(redbud::sim::Simulation& sim,
                   std::vector<SimFuture<ResponseBody>> writes,
                   SimPromise<Status> p) {
  (void)sim;
  for (auto& f : writes) (void)co_await f;
  p.set_value(Status::kOk);
}
}  // namespace

SimFuture<Status> Nfs3Client::close(net::FileId file) {
  // Close-to-open consistency: close flushes the client's dirty pages to
  // the SERVER (waits out the async WRITEs), but does not force them to
  // the server's disk — that is fsync's COMMIT.
  SimPromise<Status> p(*sim_);
  auto fut = p.future();
  auto it = outstanding_.find(file);
  if (it == outstanding_.end() || it->second.empty()) {
    p.set_value(Status::kOk);
    return fut;
  }
  auto writes = std::move(it->second);
  outstanding_.erase(it);
  sim_->spawn(close_proc(*sim_, std::move(writes), std::move(p)));
  return fut;
}

SimFuture<Status> Nfs3Client::remove(net::DirId dir, std::string name) {
  SimPromise<Status> p(*sim_);
  auto fut = p.future();
  sim_->spawn(remove_proc(dir, std::move(name), std::move(p)));
  return fut;
}

ContentToken Nfs3Client::expected_token(net::FileId file,
                                        std::uint64_t block) const {
  auto fit = versions_.find(file);
  if (fit == versions_.end()) return storage::kUnwrittenToken;
  auto vit = fit->second.find(block);
  if (vit == fit->second.end()) return storage::kUnwrittenToken;
  return storage::make_token(file, block, vit->second);
}

Process Nfs3Client::create_proc(net::DirId dir, std::string name,
                                SimPromise<net::FileId> p) {
  co_await sim_->delay(params_.cpu_op);
  net::RequestBody req = net::CreateReq{dir, std::move(name)};
  auto fut = endpoint_.call(*server_, std::move(req));
  auto resp = co_await fut;
  const auto& cr = std::get<net::CreateResp>(resp);
  p.set_value(cr.status == Status::kOk ? cr.file : net::kInvalidFile);
}

Process Nfs3Client::open_proc(net::DirId dir, std::string name,
                              SimPromise<fsapi::OpenResult> p) {
  co_await sim_->delay(params_.cpu_op);
  net::RequestBody req = net::LookupReq{dir, std::move(name)};
  auto fut = endpoint_.call(*server_, std::move(req));
  auto resp = co_await fut;
  const auto& lr = std::get<net::LookupResp>(resp);
  p.set_value(fsapi::OpenResult{lr.status, lr.file, lr.size_bytes});
}

Process Nfs3Client::write_proc(net::FileId file, std::uint64_t offset,
                               std::uint32_t nbytes, SimPromise<Status> p) {
  const std::uint64_t first = offset / kBlockSize;
  const std::uint64_t last = (offset + nbytes + kBlockSize - 1) / kBlockSize;
  const auto nblocks = static_cast<std::uint32_t>(last - first);
  co_await sim_->delay(params_.cpu_op +
                       params_.cpu_page * std::int64_t(nblocks));

  net::NfsWriteReq w;
  w.file = file;
  w.offset_bytes = offset;
  w.nbytes = nbytes;
  w.stable = !params_.async_writes;
  w.tokens.resize(nblocks);
  for (std::uint32_t i = 0; i < nblocks; ++i) {
    const auto ver = ++versions_[file][first + i];
    w.tokens[i] = storage::make_token(file, first + i, ver);
  }
  net::RequestBody req = std::move(w);
  auto fut = endpoint_.call(*server_, std::move(req));
  if (params_.async_writes) {
    // Write-back: remember the in-flight WRITE; return immediately.
    outstanding_[file].push_back(fut);
    p.set_value(Status::kOk);
    co_return;
  }
  auto resp = co_await fut;
  p.set_value(std::get<net::NfsWriteResp>(resp).status);
}

Process Nfs3Client::read_proc(net::FileId file, std::uint64_t offset,
                              std::uint32_t nbytes,
                              SimPromise<fsapi::ReadResult> p) {
  co_await sim_->delay(params_.cpu_op);
  net::RequestBody req = net::NfsReadReq{file, offset, nbytes};
  auto fut = endpoint_.call(*server_, std::move(req));
  auto resp = co_await fut;
  auto& rr = std::get<net::NfsReadResp>(resp);
  p.set_value(fsapi::ReadResult{rr.status, std::move(rr.tokens)});
}

Process Nfs3Client::sync_proc(net::FileId file, SimPromise<Status> p) {
  co_await sim_->delay(params_.cpu_op);
  // Wait out the in-flight WRITEs, then COMMIT.
  if (auto it = outstanding_.find(file); it != outstanding_.end()) {
    auto futs = std::move(it->second);
    outstanding_.erase(it);
    for (auto& f : futs) (void)co_await f;
  }
  net::RequestBody req = net::NfsCommitReq{file};
  auto fut = endpoint_.call(*server_, std::move(req));
  auto resp = co_await fut;
  p.set_value(std::get<net::NfsCommitResp>(resp).status);
}

Process Nfs3Client::remove_proc(net::DirId dir, std::string name,
                                SimPromise<Status> p) {
  co_await sim_->delay(params_.cpu_op);
  net::RequestBody req = net::RemoveReq{dir, std::move(name)};
  auto fut = endpoint_.call(*server_, std::move(req));
  auto resp = co_await fut;
  p.set_value(std::get<net::RemoveResp>(resp).status);
}

}  // namespace redbud::baseline
