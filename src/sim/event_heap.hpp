// POD event storage for the simulation kernel hot path.
//
// Three cooperating structures replace the old
// `std::priority_queue<Event{time, seq, handle, std::function}>`:
//
//  * EventHeap — a 4-ary min-heap of 24-byte POD entries keyed by
//    (time, seq). Siftup/siftdown move trivially-copyable values; no
//    std::function is ever copied on the heap path.
//  * ReadyRing — a FIFO ring of events scheduled at exactly `now`.
//    schedule_now / zero-delay yields (the dominant event class: every
//    channel/semaphore/future wakeup) bypass the heap entirely. Entries
//    keep their global sequence number so the kernel can merge ring and
//    heap events back into the exact (time, seq) total order — replay
//    stays bit-identical with the single-queue kernel.
//  * TimerSlab — side storage for `call_at` callbacks. The heap carries a
//    slab index; the SmallFn moves exactly twice (in, out), and captures up
//    to SmallFn::kInlineBytes live in the slab itself — no per-timer heap
//    allocation.
//
// Payload tagging: coroutine frame addresses are at least 2-byte aligned,
// so the low bit distinguishes a coroutine resumption (bit clear, value is
// the frame address) from a timer callback (bit set, value is
// `slot << 1 | 1`).
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace redbud::sim::detail {

[[nodiscard]] inline std::uint64_t coro_payload(std::coroutine_handle<> h) {
  const auto addr = reinterpret_cast<std::uintptr_t>(h.address());
  assert((addr & 1u) == 0 && "coroutine frame address must be even");
  return addr;
}

[[nodiscard]] inline std::uint64_t timer_payload(std::uint32_t slot) {
  return (std::uint64_t(slot) << 1) | 1u;
}

[[nodiscard]] inline bool is_timer(std::uint64_t payload) {
  return (payload & 1u) != 0;
}

[[nodiscard]] inline std::uint32_t timer_slot(std::uint64_t payload) {
  return static_cast<std::uint32_t>(payload >> 1);
}

[[nodiscard]] inline std::coroutine_handle<> coro_of(std::uint64_t payload) {
  return std::coroutine_handle<>::from_address(
      reinterpret_cast<void*>(payload));
}

struct HeapEvent {
  SimTime at;
  std::uint64_t seq;
  std::uint64_t payload;
};
static_assert(sizeof(HeapEvent) == 24);
static_assert(std::is_trivially_copyable_v<HeapEvent>);

struct ReadyEvent {
  std::uint64_t seq;
  std::uint64_t payload;
};
static_assert(std::is_trivially_copyable_v<ReadyEvent>);

// 4-ary min-heap keyed by (at, seq). A wider node halves the tree depth of
// a binary heap, and the four-child scan stays within one cache line of
// 24-byte PODs — a good trade for the push/pop-dominated DES access mix.
class EventHeap {
 public:
  [[nodiscard]] bool empty() const { return v_.empty(); }
  [[nodiscard]] std::size_t size() const { return v_.size(); }
  [[nodiscard]] const HeapEvent& top() const {
    assert(!v_.empty());
    return v_.front();
  }

  void push(HeapEvent e) {
    std::size_t i = v_.size();
    v_.emplace_back();  // hole; filled below
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!less(e, v_[parent])) break;
      v_[i] = v_[parent];
      i = parent;
    }
    v_[i] = e;
  }

  HeapEvent pop() {
    assert(!v_.empty());
    const HeapEvent top = v_.front();
    const HeapEvent last = v_.back();
    v_.pop_back();
    const std::size_t n = v_.size();
    if (n > 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = (i << 2) + 1;
        if (first >= n) break;
        const std::size_t end = first + 4 < n ? first + 4 : n;
        std::size_t min_child = first;
        for (std::size_t c = first + 1; c < end; ++c) {
          if (less(v_[c], v_[min_child])) min_child = c;
        }
        if (!less(v_[min_child], last)) break;
        v_[i] = v_[min_child];
        i = min_child;
      }
      v_[i] = last;
    }
    return top;
  }

 private:
  [[nodiscard]] static bool less(const HeapEvent& a, const HeapEvent& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }

  std::vector<HeapEvent> v_;
};

// Power-of-two FIFO ring for same-timestamp events.
class ReadyRing {
 public:
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] std::size_t size() const { return tail_ - head_; }
  [[nodiscard]] const ReadyEvent& front() const {
    assert(!empty());
    return buf_[head_ & mask_];
  }

  void push(ReadyEvent e) {
    if (tail_ - head_ == buf_.size()) grow();
    buf_[tail_++ & mask_] = e;
  }

  ReadyEvent pop() {
    assert(!empty());
    return buf_[head_++ & mask_];
  }

 private:
  void grow() {
    std::vector<ReadyEvent> bigger(buf_.size() * 2);
    const std::size_t n = tail_ - head_;
    for (std::size_t i = 0; i < n; ++i) {
      bigger[i] = buf_[(head_ + i) & mask_];
    }
    buf_ = std::move(bigger);
    mask_ = buf_.size() - 1;
    head_ = 0;
    tail_ = n;
  }

  std::vector<ReadyEvent> buf_ = std::vector<ReadyEvent>(16);
  std::size_t mask_ = 15;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

// Slab of pending timer callbacks, indexed by the heap/ring payload.
// Freed slots are recycled LIFO.
class TimerSlab {
 public:
  [[nodiscard]] std::uint32_t put(SmallFn fn) {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      slots_[slot] = std::move(fn);
      return slot;
    }
    slots_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  // Moves the callback out and frees the slot. The caller invokes the
  // returned function *after* this returns, so a callback that schedules
  // new timers may safely reallocate the slab.
  [[nodiscard]] SmallFn take(std::uint32_t slot) {
    SmallFn fn = std::move(slots_[slot]);
    free_.push_back(slot);
    return fn;
  }

 private:
  std::vector<SmallFn> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace redbud::sim::detail
