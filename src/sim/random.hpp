// Deterministic random number generation for workloads.
//
// We implement xoshiro256** plus the distributions the workload generators
// need (uniform, exponential, Pareto, lognormal, Zipf) ourselves, so that
// results are bit-identical across standard libraries and platforms —
// std::<distribution> implementations are not portable.
#pragma once

#include <cstdint>
#include <vector>

namespace redbud::sim {

// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  [[nodiscard]] std::uint64_t next_u64();

  // Uniform in [0, n) without modulo bias (Lemire's method).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t n);
  // Uniform in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Uniform in [0, 1).
  [[nodiscard]] double next_double();
  [[nodiscard]] double uniform(double lo, double hi);
  [[nodiscard]] bool bernoulli(double p);

  [[nodiscard]] double exponential(double mean);
  // Bounded Pareto on [lo, hi] with shape alpha.
  [[nodiscard]] double pareto(double alpha, double lo, double hi);
  [[nodiscard]] double lognormal(double mu, double sigma);
  [[nodiscard]] double normal(double mean, double stddev);

  // Derive an independent stream (for per-client / per-thread RNGs).
  [[nodiscard]] Rng split();

 private:
  std::uint64_t s_[4];
  // Cached second value for the Box-Muller normal generator.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

// Zipf-distributed integers in [0, n) with parameter theta (0 = uniform,
// ~0.99 = typical web popularity skew). Uses the Gray et al. rejection
// method with precomputed constants so sampling is O(1).
class Zipf {
 public:
  Zipf(std::uint64_t n, double theta);
  [[nodiscard]] std::uint64_t sample(Rng& rng) const;
  [[nodiscard]] std::uint64_t n() const { return n_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

}  // namespace redbud::sim
