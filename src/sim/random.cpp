#include "sim/random.hpp"

#include <cassert>
#include <cmath>

namespace redbud::sim {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = -n % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) { return next_double() < p; }

double Rng::exponential(double mean) {
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::pareto(double alpha, double lo, double hi) {
  assert(alpha > 0 && lo > 0 && hi > lo);
  const double u = next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = next_double();
  } while (u1 == 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

Rng Rng::split() { return Rng(next_u64()); }

namespace {
double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}
}  // namespace

Zipf::Zipf(std::uint64_t n, double theta)
    : n_(n),
      theta_(theta),
      alpha_(1.0 / (1.0 - theta)),
      zetan_(zeta(n, theta)),
      zeta2_(zeta(2, theta)) {
  assert(n > 0);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) / (1.0 - zeta2_ / zetan_);
}

std::uint64_t Zipf::sample(Rng& rng) const {
  if (theta_ == 0.0) return rng.next_below(n_);
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto v = static_cast<std::uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace redbud::sim
