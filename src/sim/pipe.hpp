// FIFO bandwidth server ("store-and-forward pipe") with propagation delay.
//
// Models any serialising resource with a byte rate: a NIC egress port, an
// Ethernet link, a Fibre Channel HBA. Transfers queue behind one another;
// a transfer of B bytes that starts at `s` finishes transmitting at
// s + B/bandwidth and arrives at the far end one propagation delay later.
// The backlog (time until the pipe drains) doubles as the congestion
// signal used by the adaptive RPC compound controller.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "sim/future.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"

namespace redbud::sim {

class BitPipe {
 public:
  BitPipe(Simulation& sim, double bytes_per_second, SimTime latency)
      : sim_(&sim), bytes_per_second_(bytes_per_second), latency_(latency) {}
  BitPipe(const BitPipe&) = delete;
  BitPipe& operator=(const BitPipe&) = delete;

  // Queue a transfer; the returned future resolves when the last byte
  // arrives at the far end.
  [[nodiscard]] SimFuture<Done> transfer(std::size_t bytes) {
    const SimTime arrival = enqueue(bytes);
    SimPromise<Done> p(*sim_);
    auto fut = p.future();
    sim_->call_at(arrival, [p]() mutable { p.set_value(Done{}); });
    return fut;
  }

  // Reserve pipe time for a transfer and return its far-end arrival time
  // without creating a future (for callers that schedule themselves).
  SimTime enqueue(std::size_t bytes) {
    const SimTime start = std::max(sim_->now(), next_free_);
    const SimTime tx = tx_time(bytes);
    next_free_ = start + tx;
    meter_.add_bytes(bytes);
    meter_.add_ops();
    return next_free_ + latency_;
  }

  [[nodiscard]] SimTime tx_time(std::size_t bytes) const {
    return SimTime::seconds_f(double(bytes) / bytes_per_second_);
  }

  // How long until the pipe drains — 0 when idle. The congestion signal.
  [[nodiscard]] SimTime backlog() const {
    return next_free_ <= sim_->now() ? SimTime::zero()
                                     : next_free_ - sim_->now();
  }
  [[nodiscard]] bool idle() const { return backlog() == SimTime::zero(); }

  [[nodiscard]] const ThroughputMeter& meter() const { return meter_; }
  [[nodiscard]] double bytes_per_second() const { return bytes_per_second_; }
  [[nodiscard]] SimTime latency() const { return latency_; }

 private:
  Simulation* sim_;
  double bytes_per_second_;
  SimTime latency_;
  SimTime next_free_ = SimTime::zero();
  ThroughputMeter meter_;
};

}  // namespace redbud::sim
