#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <numeric>

namespace redbud::sim {

LatencyHistogram::LatencyHistogram()
    : buckets_(kBucketsPerDecade * kDecades, 0) {}

int LatencyHistogram::bucket_for(SimTime t) {
  const double us = std::max(t.to_micros(), 1.0);
  const double log10us = std::log10(us);
  int idx = static_cast<int>(log10us * kBucketsPerDecade);
  return std::clamp(idx, 0, kBucketsPerDecade * kDecades - 1);
}

SimTime LatencyHistogram::bucket_lower(int idx) {
  const double us = std::pow(10.0, double(idx) / kBucketsPerDecade);
  return SimTime::micros_f(us);
}

void LatencyHistogram::record(SimTime latency) {
  ++buckets_[static_cast<std::size_t>(bucket_for(latency))];
  ++count_;
  assert(latency.ns() >= 0);
  sum_ns_ += WideNanos(latency.ns());
  min_ = std::min(min_, latency);
  max_ = std::max(max_, latency);
}

SimTime LatencyHistogram::mean() const {
  if (count_ == 0) return SimTime::zero();
  return SimTime::nanos(std::int64_t(sum_ns_ / WideNanos(count_)));
}

SimTime LatencyHistogram::percentile(double p) const {
  assert(p > 0.0 && p <= 100.0);
  if (count_ == 0) return SimTime::zero();
  const auto target =
      static_cast<std::uint64_t>(std::ceil(double(count_) * p / 100.0));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= target) return bucket_lower(static_cast<int>(i) + 1);
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ns_ = 0;
  min_ = SimTime::max();
  max_ = SimTime::zero();
}

double TimeSeries::max_value() const {
  double m = 0.0;
  for (const auto& p : points_) m = std::max(m, p.value);
  return m;
}

double TimeSeries::mean_value() const {
  if (points_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& p : points_) s += p.value;
  return s / double(points_.size());
}

bool TimeSeries::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "time_s," << name_ << "\n";
  for (const auto& p : points_) {
    out << p.at.to_seconds() << "," << p.value << "\n";
  }
  return bool(out);
}

void Gauge::set(SimTime now, double value) {
  if (!started_) {
    started_ = true;
    start_ = now;
    last_change_ = now;
    value_ = value;
    max_ = value;
    return;
  }
  integral_ += value_ * (now - last_change_).to_seconds();
  last_change_ = now;
  value_ = value;
  max_ = std::max(max_, value);
}

double Gauge::time_weighted_mean(SimTime now) const {
  if (!started_ || now <= start_) return value_;
  const double total =
      integral_ + value_ * (now - last_change_).to_seconds();
  return total / (now - start_).to_seconds();
}

}  // namespace redbud::sim
