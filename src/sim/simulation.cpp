#include "sim/simulation.hpp"

#include <stdexcept>
#include <utility>

namespace redbud::sim {

thread_local std::uint32_t Simulation::tls_partition_ = 0;

Simulation::~Simulation() {
  // Destroy any still-suspended frames (perpetual daemons). Locals in those
  // frames must not touch other simulation components from destructors.
  for (auto h : live_) h.destroy();
}

ProcRef Simulation::spawn(Process p) {
  assert(p.handle_ && "spawning a moved-from Process");
  auto h = p.handle_;
  p.handle_ = nullptr;  // ownership transfers to the kernel
  h.promise().state->sim = this;
  h.promise().live_index = static_cast<std::uint32_t>(live_.size());
  live_.push_back(h);
  schedule_now(h);
  return ProcRef(p.state_);
}

void Simulation::call_at(SimTime at, SmallFn fn) {
  assert(at >= now_ && "scheduling into the past");
  const std::uint64_t payload = detail::timer_payload(timers_.put(std::move(fn)));
  if (at == now_) {
    ring_.push({next_seq_++, payload});
  } else {
    heap_.push({at, next_seq_++, payload});
  }
}

void Simulation::dispatch_payload(std::uint64_t payload) {
  ++events_processed_;
  if (detail::is_timer(payload)) {
    // Move the callback out first: it may schedule new timers and
    // reallocate the slab under its own slot.
    auto fn = timers_.take(detail::timer_slot(payload));
    fn();
  } else {
    detail::coro_of(payload).resume();
  }
  // Retire frames that hit final suspension while the event ran.
  if (!retired_.empty()) drain_retired();
}

void Simulation::drain_retired() {
  for (auto h : retired_) {
    const std::uint32_t i = h.promise().live_index;
    assert(i < live_.size() && live_[i] == h && "stale live index");
    Process::Handle moved = live_.back();
    live_[i] = moved;
    moved.promise().live_index = i;
    live_.pop_back();
    h.destroy();
  }
  retired_.clear();
}

bool Simulation::step(SimTime limit) {
  // Ring events are timestamped now_; a heap event at the same time with a
  // smaller sequence number was scheduled earlier and must run first.
  if (!ring_.empty() && now_ <= limit) {
    if (!heap_.empty() && heap_.top().at == now_ &&
        heap_.top().seq < ring_.front().seq) {
      dispatch_payload(heap_.pop().payload);
    } else {
      dispatch_payload(ring_.pop().payload);
    }
    return true;
  }
  if (!heap_.empty() && heap_.top().at <= limit) {
    const detail::HeapEvent ev = heap_.pop();
    assert(ev.at >= now_ && "event queue went backwards in time");
    // Clock is about to cross one or more probe grid instants: sample
    // before the first event at or past the instant runs. probe_next_ is
    // SimTime::max() when no probe is installed, so the common case is a
    // single never-taken comparison.
    if (ev.at >= probe_next_) fire_probes(ev.at);
    now_ = ev.at;
    dispatch_payload(ev.payload);
    return true;
  }
  return false;
}

void Simulation::fire_probes(SimTime upto) {
  while (probe_next_ <= upto) {
    const SimTime instant = probe_next_;
    probe_next_ = probe_next_ + probe_stride_;
    probe_fn_(probe_ctx_, instant);
  }
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && step(SimTime::max())) {
  }
}

void Simulation::run_until(SimTime t) {
  stopped_ = false;
  while (!stopped_ && step(t)) {
  }
  if (!stopped_) {
    // Grid instants between the last event and the horizon fire as the
    // clock jumps to t (sampling a quiescent tail still yields samples).
    if (probe_next_ <= t) fire_probes(t);
    if (now_ < t) now_ = t;
  }
}

void Simulation::run_window(SimTime end, bool inclusive) {
  tls_partition_ = partition_id_;
  for (;;) {
    // Ring events are timestamped now_, which is always inside the window
    // (now_ only advances via heap events admitted below), so the ring
    // drains unconditionally; same (time, seq) merge rule as step().
    if (!ring_.empty()) {
      if (!heap_.empty() && heap_.top().at == now_ &&
          heap_.top().seq < ring_.front().seq) {
        dispatch_payload(heap_.pop().payload);
      } else {
        dispatch_payload(ring_.pop().payload);
      }
      continue;
    }
    if (heap_.empty()) break;
    const SimTime t = heap_.top().at;
    if (inclusive ? t > end : t >= end) break;
    const detail::HeapEvent ev = heap_.pop();
    assert(ev.at >= now_ && "event queue went backwards in time");
    now_ = ev.at;
    dispatch_payload(ev.payload);
  }
  tls_partition_ = 0;
}

void Simulation::on_process_done(Process::Handle h) {
  auto& st = *h.promise().state;
  st.done = true;
  if (st.error && st.joiners.empty()) {
    failures_.push_back(st.error);
  }
  for (auto j : st.joiners) schedule_now(j);
  st.joiners.clear();
  retired_.push_back(h);
}

void Simulation::check_failures() const {
  if (!failures_.empty()) std::rethrow_exception(failures_.front());
}

void Process::FinalAwaiter::await_suspend(Process::Handle h) noexcept {
  auto* sim = h.promise().state->sim;
  assert(sim && "process finished without having been spawned");
  sim->on_process_done(h);
}

}  // namespace redbud::sim
