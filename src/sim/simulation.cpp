#include "sim/simulation.hpp"

#include <algorithm>
#include <stdexcept>

namespace redbud::sim {

Simulation::~Simulation() {
  // Destroy any still-suspended frames (perpetual daemons). Locals in those
  // frames must not touch other simulation components from destructors.
  for (auto h : live_) h.destroy();
}

ProcRef Simulation::spawn(Process p) {
  assert(p.handle_ && "spawning a moved-from Process");
  auto h = p.handle_;
  p.handle_ = nullptr;  // ownership transfers to the kernel
  h.promise().state->sim = this;
  live_.push_back(h);
  schedule_now(h);
  return ProcRef(p.state_);
}

void Simulation::schedule_at(SimTime at, std::coroutine_handle<> h) {
  assert(at >= now_ && "scheduling into the past");
  queue_.push(Event{at, next_seq_++, h, nullptr});
}

void Simulation::call_at(SimTime at, std::function<void()> fn) {
  assert(at >= now_ && "scheduling into the past");
  queue_.push(Event{at, next_seq_++, nullptr, std::move(fn)});
}

void Simulation::dispatch(Event& ev) {
  now_ = ev.at;
  ++events_processed_;
  if (ev.h) {
    ev.h.resume();
  } else {
    ev.fn();
  }
  // Retire frames that hit final suspension while the event ran.
  for (auto h : retired_) {
    live_.erase(std::remove(live_.begin(), live_.end(),
                            static_cast<std::coroutine_handle<>>(h)),
                live_.end());
    h.destroy();
  }
  retired_.clear();
}

void Simulation::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
}

void Simulation::run_until(SimTime t) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().at <= t) {
    Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
  if (!stopped_ && now_ < t) now_ = t;
}

void Simulation::on_process_done(Process::Handle h) {
  auto& st = *h.promise().state;
  st.done = true;
  if (st.error && st.joiners.empty()) {
    failures_.push_back(st.error);
  }
  for (auto j : st.joiners) schedule_now(j);
  st.joiners.clear();
  retired_.push_back(h);
}

void Simulation::check_failures() const {
  if (!failures_.empty()) std::rethrow_exception(failures_.front());
}

void Process::FinalAwaiter::await_suspend(Process::Handle h) noexcept {
  auto* sim = h.promise().state->sim;
  assert(sim && "process finished without having been spawned");
  sim->on_process_done(h);
}

}  // namespace redbud::sim
