// Partitioned simulation kernel: conservative time-window parallelism.
//
// A SimDomain owns N Simulation partitions — one per simulated node (each
// client host, each MDS shard, the disk array behind the fabric) — and
// drives them from a pool of OS worker threads. Correctness rests on one
// invariant, the *lookahead* L: any event one partition schedules into
// another lies at least L in the simulated future (the network's minimum
// cross-node hop — link + switch latency — or the FC fabric latency,
// whichever is smaller). The coordinator therefore repeats:
//
//   1. deliver staged cross-partition injections into their target heaps,
//   2. m  := min over partitions of peek_next_time(),
//   3. stop if m > horizon, else run every partition concurrently through
//      the window [m, min(m + L, horizon)) — no partition can invalidate
//      another inside the window, because any injection it posts lands at
//      >= m + L,
//   4. barrier; go to 1.
//
// Determinism contract: within a partition events replay in exact
// (time, seq) order — run_window() is the same merge loop as the serial
// kernel. Cross-partition injections are sequenced by
// (time, src_partition, src_seq) before delivery, so the target's sequence
// numbers are assigned identically for any worker count, and a given
// config + seed + partition count replays identically for nthreads 2, 4, 8.
// With nthreads <= 1 the domain holds exactly one partition and delegates
// to Simulation::run_until — byte-identical to the serial kernel.
//
// Threading model: only the worker that is currently running partition P
// touches P's state; the coordinator thread touches it only between
// rounds. The release-inc of round_gen_ / done_workers_ publishes each
// side's writes to the other (acquire loads), which is also what makes
// driver-side reads between run_until calls (ProcRef::done, queue depths,
// consistency checks) race-free under TSan.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/simulation.hpp"

namespace redbud::sim {

namespace detail {
[[noreturn]] void require_failed(const char* what, const char* file, int line);
}  // namespace detail

// Always-on invariant check (not compiled out in release builds): a stale
// cross-partition timestamp would silently corrupt the (time, seq) order,
// so the mailbox path refuses it loudly instead.
#define REDBUD_REQUIRE(cond, what)                                       \
  do {                                                                   \
    if (!(cond)) ::redbud::sim::detail::require_failed(what, __FILE__, __LINE__); \
  } while (0)

// Wall-clock accounting of one SimDomain's execution, read between
// run_until calls (the barrier's release/acquire pair makes the reads
// race-free). All wall-clock figures are steady_clock nanoseconds; they
// describe the host's execution of the simulation, never simulated time,
// and have no effect on the event stream.
struct KernelProfile {
  struct Partition {
    std::uint64_t events = 0;          // events dispatched by the partition
    std::uint64_t windows = 0;         // run_window calls issued to it
    std::uint64_t windows_active = 0;  // windows that dispatched >= 1 event
    std::uint64_t busy_ns = 0;         // wall time spent inside run_window
  };
  struct Worker {
    std::uint64_t busy_ns = 0;     // wall time executing partition windows
    std::uint64_t stall_ns = 0;    // barrier wake latency + coordinator wait
    std::uint64_t windows_run = 0; // partition windows this worker claimed
  };
  std::uint64_t rounds = 0;    // synchronization rounds run
  std::uint64_t wall_ns = 0;   // wall time inside run_until bodies
  std::uint64_t injections_staged = 0;     // cross-partition posts staged
  std::uint64_t injections_delivered = 0;  // staged posts delivered to heaps
  std::vector<Partition> partitions;
  std::vector<Worker> workers;  // [0] is the coordinator thread

  [[nodiscard]] std::uint64_t events_total() const {
    std::uint64_t n = 0;
    for (const auto& p : partitions) n += p.events;
    return n;
  }
  [[nodiscard]] std::uint64_t busy_ns_total() const {
    std::uint64_t n = 0;
    for (const auto& w : workers) n += w.busy_ns;
    return n;
  }
  [[nodiscard]] std::uint64_t stall_ns_total() const {
    std::uint64_t n = 0;
    for (const auto& w : workers) n += w.stall_ns;
    return n;
  }
  [[nodiscard]] std::uint64_t max_partition_events() const {
    std::uint64_t n = 0;
    for (const auto& p : partitions) n = std::max(n, p.events);
    return n;
  }
};

class SimDomain {
 public:
  // nthreads <= 1 selects the serial kernel: add_partition() returns one
  // shared Simulation and run_until() is a plain delegation. Passing
  // force_partitioned = true keeps the partitioned window algorithm even
  // at nthreads == 1 (the coordinator runs every partition itself): same
  // partition layout, staged injections and round loop as nthreads >= 2,
  // so results are bit-identical across {1, 2, 4, ...} workers. Use it
  // when a run must be reproducible for ANY worker count; the classic
  // serial kernel remains the nthreads == 1 default because it needs no
  // lookahead and its event interleaving is pinned by replay goldens.
  explicit SimDomain(unsigned nthreads = 1,
                     SimTime lookahead = SimTime::micros(40),
                     bool force_partitioned = false);
  SimDomain(const SimDomain&) = delete;
  SimDomain& operator=(const SimDomain&) = delete;
  ~SimDomain();

  [[nodiscard]] bool parallel() const {
    return nthreads_ > 1 || force_partitioned_;
  }
  [[nodiscard]] unsigned nthreads() const { return nthreads_; }
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }

  // Parallel domains get one fresh partition per call; a serial domain
  // returns the same single Simulation every time, so cluster wiring can
  // be written once for both modes.
  Simulation& add_partition();
  [[nodiscard]] Simulation& partition(std::size_t i) { return *parts_[i]; }
  [[nodiscard]] std::size_t nparts() const { return parts_.size(); }

  // Cross-partition event injection (the "mailbox push"). Must satisfy
  // at >= src.now() + lookahead; checked unconditionally. `fn` runs in
  // partition `dst` at time `at`, sequenced against all other injections
  // by (at, src_partition, src_seq).
  void post(Simulation& src, std::uint32_t dst, SimTime at, SmallFn fn);

  // Advance every partition to exactly `t` (all partitions' now() == t on
  // return), executing all events with time <= t.
  void run_until(SimTime t);

  // Valid between run_until calls (all partitions share the same clock).
  [[nodiscard]] SimTime now() const { return parts_[0]->now(); }
  [[nodiscard]] std::uint64_t events_processed() const;
  [[nodiscard]] std::size_t failure_count() const;
  void check_failures() const;

  // ---- Off-event probe (domain form; see Simulation::set_probe) ---------
  //
  // Serial domains delegate to the single partition's in-loop probe, so a
  // grid instant samples exactly the t_k^- state. Parallel domains fire
  // from the coordinator between synchronization rounds: before a round
  // starting at min-time m, every pending instant <= m fires — at that
  // point all events strictly before m have executed in every partition,
  // and no event at >= m has, so the instant-m sample is exact and earlier
  // instants lag by less than one window (< lookahead, 40 us of simulated
  // time). The firing sequence depends only on the deterministic series of
  // round start times, so samples are bit-identical for any worker count
  // under force_partitioned. The callback runs on the coordinator thread
  // while all workers are parked at the barrier.
  void set_probe(SimTime first, SimTime stride, void* ctx,
                 Simulation::ProbeFn fn);

  // Kernel self-profile: wall-clock accounting accumulated across every
  // run_until call so far. Serial domains report one partition and one
  // worker whose busy time is the whole run (no rounds, no stalls).
  [[nodiscard]] KernelProfile kernel_profile() const;

 private:
  struct Injection {
    SimTime at;
    std::uint32_t src;
    std::uint32_t dst;
    std::uint64_t seq;  // per-source-lane sequence, assigned at post()
    SmallFn fn;
  };
  // One staging lane per source partition: during a round only the worker
  // executing partition i appends to lanes_[i], so no locking is needed;
  // the coordinator drains every lane between rounds.
  struct Lane {
    std::vector<Injection> staged;
    std::uint64_t next_seq = 0;
    std::uint64_t staged_total = 0;  // lifetime count, owner-thread written
  };
  // Per-partition profile slice, written only by the worker currently
  // running the partition; read by the coordinator between rounds.
  struct PartStats {
    std::uint64_t windows = 0;
    std::uint64_t windows_active = 0;
    std::uint64_t busy_ns = 0;
  };
  // Per-worker profile slice (index 0 = coordinator), same ownership rule.
  struct WorkerStats {
    std::uint64_t busy_ns = 0;
    std::uint64_t stall_ns = 0;
    std::uint64_t windows_run = 0;
  };

  void ensure_workers();
  void deliver_staged();
  void run_round(SimTime end, bool inclusive);
  void work_round(unsigned worker);
  void worker_loop(unsigned worker);
  void fire_probes(SimTime upto);

  unsigned nthreads_;
  SimTime lookahead_;
  bool force_partitioned_;
  std::vector<std::unique_ptr<Simulation>> parts_;
  std::vector<Lane> lanes_;
  std::vector<Injection> deliver_buf_;

  // Probe state (parallel domains only; serial delegates to partition 0).
  SimTime probe_next_ = SimTime::max();
  SimTime probe_stride_ = SimTime::zero();
  void* probe_ctx_ = nullptr;
  Simulation::ProbeFn probe_fn_ = nullptr;

  // Profile accumulators. pstats_/wstats_ follow the same ownership
  // discipline as the partitions themselves; the scalar counters are
  // coordinator-only.
  std::vector<PartStats> pstats_;
  std::vector<WorkerStats> wstats_;
  std::uint64_t rounds_ = 0;
  std::uint64_t wall_ns_ = 0;
  std::uint64_t injections_delivered_ = 0;
  std::uint64_t injections_staged_serial_ = 0;  // direct posts (serial mode)
  // Wall-clock stamp taken just before the round_gen_ release-increment;
  // workers read it after their acquire load to account wake latency.
  std::uint64_t round_start_wall_ns_ = 0;

  // Round control. round_end_/round_inclusive_ are published to workers by
  // the release-increment of round_gen_ and read back under its acquire.
  SimTime round_end_ = SimTime::zero();
  bool round_inclusive_ = false;
  std::atomic<std::uint64_t> round_gen_{0};
  std::atomic<std::uint32_t> next_part_{0};
  std::atomic<std::uint32_t> done_workers_{0};
  std::atomic<bool> quit_{false};
  std::vector<std::thread> workers_;
};

}  // namespace redbud::sim
