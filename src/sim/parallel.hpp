// Partitioned simulation kernel: conservative time-window parallelism.
//
// A SimDomain owns N Simulation partitions — one per simulated node (each
// client host, each MDS shard, the disk array behind the fabric) — and
// drives them from a pool of OS worker threads. Correctness rests on one
// invariant, the *lookahead* L: any event one partition schedules into
// another lies at least L in the simulated future (the network's minimum
// cross-node hop — link + switch latency — or the FC fabric latency,
// whichever is smaller). The coordinator therefore repeats:
//
//   1. deliver staged cross-partition injections into their target heaps,
//   2. m  := min over partitions of peek_next_time(),
//   3. stop if m > horizon, else run every partition concurrently through
//      the window [m, min(m + L, horizon)) — no partition can invalidate
//      another inside the window, because any injection it posts lands at
//      >= m + L,
//   4. barrier; go to 1.
//
// Determinism contract: within a partition events replay in exact
// (time, seq) order — run_window() is the same merge loop as the serial
// kernel. Cross-partition injections are sequenced by
// (time, src_partition, src_seq) before delivery, so the target's sequence
// numbers are assigned identically for any worker count, and a given
// config + seed + partition count replays identically for nthreads 2, 4, 8.
// With nthreads <= 1 the domain holds exactly one partition and delegates
// to Simulation::run_until — byte-identical to the serial kernel.
//
// Threading model: only the worker that is currently running partition P
// touches P's state; the coordinator thread touches it only between
// rounds. The release-inc of round_gen_ / done_workers_ publishes each
// side's writes to the other (acquire loads), which is also what makes
// driver-side reads between run_until calls (ProcRef::done, queue depths,
// consistency checks) race-free under TSan.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/simulation.hpp"

namespace redbud::sim {

namespace detail {
[[noreturn]] void require_failed(const char* what, const char* file, int line);
}  // namespace detail

// Always-on invariant check (not compiled out in release builds): a stale
// cross-partition timestamp would silently corrupt the (time, seq) order,
// so the mailbox path refuses it loudly instead.
#define REDBUD_REQUIRE(cond, what)                                       \
  do {                                                                   \
    if (!(cond)) ::redbud::sim::detail::require_failed(what, __FILE__, __LINE__); \
  } while (0)

class SimDomain {
 public:
  // nthreads <= 1 selects the serial kernel: add_partition() returns one
  // shared Simulation and run_until() is a plain delegation. Passing
  // force_partitioned = true keeps the partitioned window algorithm even
  // at nthreads == 1 (the coordinator runs every partition itself): same
  // partition layout, staged injections and round loop as nthreads >= 2,
  // so results are bit-identical across {1, 2, 4, ...} workers. Use it
  // when a run must be reproducible for ANY worker count; the classic
  // serial kernel remains the nthreads == 1 default because it needs no
  // lookahead and its event interleaving is pinned by replay goldens.
  explicit SimDomain(unsigned nthreads = 1,
                     SimTime lookahead = SimTime::micros(40),
                     bool force_partitioned = false);
  SimDomain(const SimDomain&) = delete;
  SimDomain& operator=(const SimDomain&) = delete;
  ~SimDomain();

  [[nodiscard]] bool parallel() const {
    return nthreads_ > 1 || force_partitioned_;
  }
  [[nodiscard]] unsigned nthreads() const { return nthreads_; }
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }

  // Parallel domains get one fresh partition per call; a serial domain
  // returns the same single Simulation every time, so cluster wiring can
  // be written once for both modes.
  Simulation& add_partition();
  [[nodiscard]] Simulation& partition(std::size_t i) { return *parts_[i]; }
  [[nodiscard]] std::size_t nparts() const { return parts_.size(); }

  // Cross-partition event injection (the "mailbox push"). Must satisfy
  // at >= src.now() + lookahead; checked unconditionally. `fn` runs in
  // partition `dst` at time `at`, sequenced against all other injections
  // by (at, src_partition, src_seq).
  void post(Simulation& src, std::uint32_t dst, SimTime at, SmallFn fn);

  // Advance every partition to exactly `t` (all partitions' now() == t on
  // return), executing all events with time <= t.
  void run_until(SimTime t);

  // Valid between run_until calls (all partitions share the same clock).
  [[nodiscard]] SimTime now() const { return parts_[0]->now(); }
  [[nodiscard]] std::uint64_t events_processed() const;
  [[nodiscard]] std::size_t failure_count() const;
  void check_failures() const;

 private:
  struct Injection {
    SimTime at;
    std::uint32_t src;
    std::uint32_t dst;
    std::uint64_t seq;  // per-source-lane sequence, assigned at post()
    SmallFn fn;
  };
  // One staging lane per source partition: during a round only the worker
  // executing partition i appends to lanes_[i], so no locking is needed;
  // the coordinator drains every lane between rounds.
  struct Lane {
    std::vector<Injection> staged;
    std::uint64_t next_seq = 0;
  };

  void ensure_workers();
  void deliver_staged();
  void run_round(SimTime end, bool inclusive);
  void work_round();
  void worker_loop();

  unsigned nthreads_;
  SimTime lookahead_;
  bool force_partitioned_;
  std::vector<std::unique_ptr<Simulation>> parts_;
  std::vector<Lane> lanes_;
  std::vector<Injection> deliver_buf_;

  // Round control. round_end_/round_inclusive_ are published to workers by
  // the release-increment of round_gen_ and read back under its acquire.
  SimTime round_end_ = SimTime::zero();
  bool round_inclusive_ = false;
  std::atomic<std::uint64_t> round_gen_{0};
  std::atomic<std::uint32_t> next_part_{0};
  std::atomic<std::uint32_t> done_workers_{0};
  std::atomic<bool> quit_{false};
  std::vector<std::thread> workers_;
};

}  // namespace redbud::sim
