// Virtual time for the discrete-event simulation.
//
// SimTime is a strong integer-nanosecond type: cheap to copy, exact (no
// floating-point drift across long runs), and wide enough for ~292 years of
// simulated time. All simulation components express latencies in SimTime.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace redbud::sim {

class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime nanos(std::int64_t n) {
    return SimTime(n);
  }
  [[nodiscard]] static constexpr SimTime micros(std::int64_t u) {
    return SimTime(u * 1000);
  }
  [[nodiscard]] static constexpr SimTime millis(std::int64_t m) {
    return SimTime(m * 1'000'000);
  }
  [[nodiscard]] static constexpr SimTime seconds(std::int64_t s) {
    return SimTime(s * 1'000'000'000);
  }
  // Fractional constructors, rounding to the nearest nanosecond.
  [[nodiscard]] static constexpr SimTime micros_f(double u) {
    return SimTime(static_cast<std::int64_t>(u * 1e3 + 0.5));
  }
  [[nodiscard]] static constexpr SimTime millis_f(double m) {
    return SimTime(static_cast<std::int64_t>(m * 1e6 + 0.5));
  }
  [[nodiscard]] static constexpr SimTime seconds_f(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e9 + 0.5));
  }

  [[nodiscard]] static constexpr SimTime zero() { return SimTime(0); }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_micros() const { return ns_ / 1e3; }
  [[nodiscard]] constexpr double to_millis() const { return ns_ / 1e6; }
  [[nodiscard]] constexpr double to_seconds() const { return ns_ / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  [[nodiscard]] friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.ns_ + b.ns_);
  }
  [[nodiscard]] friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.ns_ - b.ns_);
  }
  [[nodiscard]] friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime(a.ns_ * k);
  }
  [[nodiscard]] friend constexpr SimTime operator*(std::int64_t k, SimTime a) {
    return a * k;
  }
  [[nodiscard]] friend constexpr SimTime operator*(SimTime a, double k) {
    return SimTime(static_cast<std::int64_t>(a.ns_ * k + 0.5));
  }
  [[nodiscard]] friend constexpr double operator/(SimTime a, SimTime b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  [[nodiscard]] friend constexpr SimTime operator/(SimTime a, std::int64_t k) {
    return SimTime(a.ns_ / k);
  }

  [[nodiscard]] std::string str() const {
    if (ns_ >= 1'000'000'000) return std::to_string(to_seconds()) + "s";
    if (ns_ >= 1'000'000) return std::to_string(to_millis()) + "ms";
    if (ns_ >= 1'000) return std::to_string(to_micros()) + "us";
    return std::to_string(ns_) + "ns";
  }

 private:
  explicit constexpr SimTime(std::int64_t n) : ns_(n) {}
  std::int64_t ns_ = 0;
};

}  // namespace redbud::sim
