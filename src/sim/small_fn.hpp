// Small-buffer type-erased callable for the kernel's timer hot path.
//
// Simulation::call_at used to store std::function<void()>, whose libstdc++
// small-object buffer is 16 bytes — every sampler/pipe-completion lambda
// that captures more than two words heap-allocates per scheduled timer.
// SmallFn inlines up to 48 bytes of capture (covering every timer the
// kernel schedules today) and falls back to the heap above that, so the
// timer path stays allocation-free without capping capture size.
//
// Move-only by design: timers fire exactly once and the slab moves the
// callable in and out; copyability would force every capture to be
// copyable and buy nothing.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace redbud::sim {

class SmallFn {
 public:
  // Inline capture budget. 48 + the ops pointer keeps sizeof(SmallFn) at
  // 56–64 bytes: one cache line per timer slab slot.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      heap_ = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFn(SmallFn&& o) noexcept { move_from(o); }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->call(*this); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(*this);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*call)(SmallFn&);
    // Move-construct into raw `dst` storage and destroy `src`'s payload.
    void (*relocate)(SmallFn& dst, SmallFn& src);
    void (*destroy)(SmallFn&);
  };

  template <typename Fn>
  static void call_inline(SmallFn& self) {
    (*std::launder(reinterpret_cast<Fn*>(self.buf_)))();
  }
  template <typename Fn>
  static void relocate_inline(SmallFn& dst, SmallFn& src) {
    Fn* p = std::launder(reinterpret_cast<Fn*>(src.buf_));
    ::new (static_cast<void*>(dst.buf_)) Fn(std::move(*p));
    p->~Fn();
  }
  template <typename Fn>
  static void destroy_inline(SmallFn& self) {
    std::launder(reinterpret_cast<Fn*>(self.buf_))->~Fn();
  }

  template <typename Fn>
  static void call_heap(SmallFn& self) {
    (*static_cast<Fn*>(self.heap_))();
  }
  template <typename Fn>
  static void relocate_heap(SmallFn& dst, SmallFn& src) {
    dst.heap_ = src.heap_;  // pointer steal: no move, no allocation
  }
  template <typename Fn>
  static void destroy_heap(SmallFn& self) {
    delete static_cast<Fn*>(self.heap_);
  }

  template <typename Fn>
  static constexpr Ops inline_ops{&call_inline<Fn>, &relocate_inline<Fn>,
                                  &destroy_inline<Fn>};
  template <typename Fn>
  static constexpr Ops heap_ops{&call_heap<Fn>, &relocate_heap<Fn>,
                                &destroy_heap<Fn>};

  void move_from(SmallFn& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(*this, o);
      o.ops_ = nullptr;
    }
  }

  union {
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    void* heap_;
  };
  const Ops* ops_ = nullptr;
};

}  // namespace redbud::sim
