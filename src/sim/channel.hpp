// FIFO channels between simulation processes.
//
// Channel<T> is an (optionally bounded) multi-producer multi-consumer
// queue. Hand-off is race-free under deferred wakeups: a sender either
// deposits directly into a waiting receiver's slot or enqueues the item;
// a woken receiver never finds its item stolen.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <limits>
#include <optional>
#include <utility>

#include "sim/simulation.hpp"

namespace redbud::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Simulation& sim,
                   std::size_t capacity = std::numeric_limits<std::size_t>::max())
      : sim_(&sim), capacity_(capacity) {
    assert(capacity_ > 0);
  }
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] bool full() const { return items_.size() >= capacity_; }

  // --- receive ------------------------------------------------------------
  struct RecvAwaiter {
    Channel* ch;
    std::optional<T> slot;

    bool await_ready() {
      if (!ch->items_.empty()) {
        slot.emplace(std::move(ch->items_.front()));
        ch->items_.pop_front();
        ch->wake_one_sender();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ch->recv_waiters_.push_back({h, &slot});
    }
    T await_resume() {
      assert(slot.has_value());
      return std::move(*slot);
    }
  };
  [[nodiscard]] RecvAwaiter recv() { return RecvAwaiter{this, std::nullopt}; }

  // Non-blocking receive.
  [[nodiscard]] std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    std::optional<T> v(std::move(items_.front()));
    items_.pop_front();
    wake_one_sender();
    return v;
  }

  // --- send ---------------------------------------------------------------
  struct SendAwaiter {
    Channel* ch;
    std::optional<T> item;

    bool await_ready() {
      if (ch->deliver_or_buffer(item)) return true;
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ch->send_waiters_.push_back({h, &item});
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] SendAwaiter send(T v) {
    return SendAwaiter{this, std::optional<T>(std::move(v))};
  }

  // Non-blocking send; returns false when the channel is full.
  bool try_send(T v) {
    std::optional<T> item(std::move(v));
    return deliver_or_buffer(item);
  }

 private:
  struct RecvWaiter {
    std::coroutine_handle<> h;
    std::optional<T>* slot;
  };
  struct SendWaiter {
    std::coroutine_handle<> h;
    std::optional<T>* item;
  };

  // Deposit into a waiting receiver or the buffer. Returns true on success
  // (consumes *item), false when the buffer is full.
  bool deliver_or_buffer(std::optional<T>& item) {
    if (!recv_waiters_.empty()) {
      RecvWaiter w = recv_waiters_.front();
      recv_waiters_.pop_front();
      w.slot->emplace(std::move(*item));
      item.reset();
      sim_->schedule_now(w.h);
      return true;
    }
    if (items_.size() < capacity_) {
      items_.push_back(std::move(*item));
      item.reset();
      return true;
    }
    return false;
  }

  void wake_one_sender() {
    if (send_waiters_.empty()) return;
    SendWaiter w = send_waiters_.front();
    send_waiters_.pop_front();
    // The freed slot is handed to this sender directly.
    bool ok = deliver_or_buffer(*w.item);
    assert(ok);
    (void)ok;
    sim_->schedule_now(w.h);
  }

  Simulation* sim_;
  std::size_t capacity_;
  std::deque<T> items_;
  std::deque<RecvWaiter> recv_waiters_;
  std::deque<SendWaiter> send_waiters_;
};

}  // namespace redbud::sim
