// Measurement utilities: counters, latency histograms, time series and
// time-weighted gauges used by every experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace redbud::sim {

// Monotonic event counter with a helper for rates over simulated time.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  // Fold another counter in — used to combine per-partition instruments
  // after a partitioned run.
  void merge(const Counter& other) { value_ += other.value_; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  [[nodiscard]] double rate_per_second(SimTime elapsed) const {
    return elapsed == SimTime::zero() ? 0.0 : double(value_) / elapsed.to_seconds();
  }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

// 128-bit accumulator for the histogram's exact nanosecond sum. A 64-bit
// signed sum overflows after ~9.2e18 ns-observations — e.g. ~4.6 billion
// records of 2 s each, which long traced runs of wide sweeps can reach —
// and from then on mean() silently goes negative/garbage.
using WideNanos = unsigned __int128;

// Latency histogram with logarithmic buckets from 1us to ~1000s.
// Records exact sum/count for means; percentiles are bucket-interpolated.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(SimTime latency);
  // Fold another histogram in (bucket-wise sum, exact sum/count/min/max).
  // Merging then reading percentiles is equivalent to having recorded
  // every observation into one histogram.
  void merge(const LatencyHistogram& other);
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] SimTime mean() const;
  [[nodiscard]] SimTime percentile(double p) const;  // p in (0, 100)
  [[nodiscard]] SimTime min() const { return min_; }
  [[nodiscard]] SimTime max() const { return max_; }
  void reset();

 private:
  static constexpr int kBucketsPerDecade = 16;
  static constexpr int kDecades = 9;  // 1us .. 1e9 us
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  WideNanos sum_ns_ = 0;
  SimTime min_ = SimTime::max();
  SimTime max_ = SimTime::zero();

  [[nodiscard]] static int bucket_for(SimTime t);
  [[nodiscard]] static SimTime bucket_lower(int idx);
};

// A (time, value) series — used for Figure 5 (seek traces) and Figure 6
// (commit queue length / thread count over time).
class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void record(SimTime at, double value) { points_.push_back({at, value}); }
  struct Point {
    SimTime at;
    double value;
  };
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  [[nodiscard]] double max_value() const;
  [[nodiscard]] double mean_value() const;
  // Write as CSV ("time_s,value") to the given path; returns success.
  // Callers must check the result — a failed open or short write here is
  // lost figure data, not a recoverable condition.
  [[nodiscard]] bool write_csv(const std::string& path) const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

// Time-weighted gauge: integrates value over simulated time, e.g. average
// queue length. Call set() whenever the value changes.
class Gauge {
 public:
  void set(SimTime now, double value);
  [[nodiscard]] double current() const { return value_; }
  [[nodiscard]] double time_weighted_mean(SimTime now) const;
  [[nodiscard]] double max() const { return max_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
  double integral_ = 0.0;
  SimTime last_change_ = SimTime::zero();
  SimTime start_ = SimTime::zero();
  bool started_ = false;
};

// Bytes-moved meter with MB/s convenience.
class ThroughputMeter {
 public:
  void add_bytes(std::uint64_t b) { bytes_ += b; }
  void add_ops(std::uint64_t n = 1) { ops_ += n; }
  void merge(const ThroughputMeter& other) {
    bytes_ += other.bytes_;
    ops_ += other.ops_;
  }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] std::uint64_t ops() const { return ops_; }
  [[nodiscard]] double mb_per_second(SimTime elapsed) const {
    return elapsed == SimTime::zero()
               ? 0.0
               : double(bytes_) / (1024.0 * 1024.0) / elapsed.to_seconds();
  }
  [[nodiscard]] double ops_per_second(SimTime elapsed) const {
    return elapsed == SimTime::zero() ? 0.0 : double(ops_) / elapsed.to_seconds();
  }

 private:
  std::uint64_t bytes_ = 0;
  std::uint64_t ops_ = 0;
};

}  // namespace redbud::sim
