// One-shot future/promise pair for simulation processes.
//
// SimPromise<T>::set_value() fulfils the future; any number of processes
// may `co_await` the corresponding SimFuture<T> (all are woken through the
// event queue). Used pervasively for asynchronous completions: disk I/O,
// RPC replies, commit acknowledgements.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"

namespace redbud::sim {

namespace detail {
template <typename T>
struct FutureShared {
  Simulation* sim;
  std::optional<T> value;
  std::exception_ptr error;
  std::vector<std::coroutine_handle<>> waiters;

  [[nodiscard]] bool ready() const { return value.has_value() || error; }

  void fulfil() {
    for (auto h : waiters) sim->schedule_now(h);
    waiters.clear();
  }
};
}  // namespace detail

template <typename T>
class SimFuture {
 public:
  SimFuture() = default;
  explicit SimFuture(std::shared_ptr<detail::FutureShared<T>> s)
      : s_(std::move(s)) {}

  [[nodiscard]] bool valid() const { return s_ != nullptr; }
  [[nodiscard]] bool ready() const { return s_ && s_->ready(); }

  // Peek at the value without consuming (valid only when ready).
  [[nodiscard]] const T& peek() const {
    assert(ready() && !s_->error);
    return *s_->value;
  }

  struct Awaiter {
    std::shared_ptr<detail::FutureShared<T>> s;
    bool await_ready() const noexcept { return s->ready(); }
    void await_suspend(std::coroutine_handle<> h) { s->waiters.push_back(h); }
    T await_resume() const {
      if (s->error) std::rethrow_exception(s->error);
      return *s->value;  // copy: several waiters may consume
    }
  };
  [[nodiscard]] Awaiter operator co_await() const {
    assert(valid());
    return Awaiter{s_};
  }

 private:
  std::shared_ptr<detail::FutureShared<T>> s_;
};

template <typename T>
class SimPromise {
 public:
  explicit SimPromise(Simulation& sim)
      : s_(std::make_shared<detail::FutureShared<T>>()) {
    s_->sim = &sim;
  }

  [[nodiscard]] SimFuture<T> future() const { return SimFuture<T>(s_); }
  [[nodiscard]] bool fulfilled() const { return s_->ready(); }

  void set_value(T v) {
    assert(!s_->ready() && "promise fulfilled twice");
    s_->value.emplace(std::move(v));
    s_->fulfil();
  }
  void set_error(std::exception_ptr e) {
    assert(!s_->ready() && "promise fulfilled twice");
    s_->error = e;
    s_->fulfil();
  }

 private:
  std::shared_ptr<detail::FutureShared<T>> s_;
};

// Convenience empty payload for futures that only signal completion.
struct Done {};

}  // namespace redbud::sim
