// Discrete-event simulation kernel.
//
// Single-threaded, deterministic: events are ordered by (time, sequence
// number), where the sequence number is a monotonically increasing tie
// breaker, so two runs with the same seed replay identically.
//
// Hot-path layout (see event_heap.hpp): future events live in a POD 4-ary
// min-heap; events scheduled at exactly `now()` — zero-delay yields and
// every channel/semaphore/future wakeup — go to a FIFO ready ring that
// bypasses the heap. Both structures carry the global sequence number, and
// the run loop merges them back into the exact (time, seq) total order, so
// the split is invisible to replay determinism.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/event_heap.hpp"
#include "sim/process.hpp"
#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace redbud::sim {

class SimDomain;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation();

  [[nodiscard]] SimTime now() const { return now_; }

  // Spawn a process; its first resumption is scheduled at the current time.
  ProcRef spawn(Process p);

  // Awaitable that resumes the caller after `d` of virtual time. A zero
  // delay still goes through the event queue (FIFO yield).
  struct Delay {
    Simulation* sim;
    SimTime dur;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->schedule_in(dur, h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Delay delay(SimTime d) { return Delay{this, d}; }
  [[nodiscard]] Delay yield() { return Delay{this, SimTime::zero()}; }

  // Run until the event queue drains (beware: perpetual daemons never
  // drain; prefer run_until for systems with background processes).
  void run();
  // Run until virtual time exceeds `t`; `now()` is exactly `t` afterwards.
  void run_until(SimTime t);
  // Request the run loop to stop after the current event.
  void stop() { stopped_ = true; }

  // Schedule a raw coroutine handle (used by synchronization primitives).
  void schedule_in(SimTime after, std::coroutine_handle<> h) {
    schedule_at(now_ + after, h);
  }
  void schedule_at(SimTime at, std::coroutine_handle<> h) {
    assert(at >= now_ && "scheduling into the past");
    const std::uint64_t payload = detail::coro_payload(h);
    if (at == now_) {
      ring_.push({next_seq_++, payload});
    } else {
      heap_.push({at, next_seq_++, payload});
    }
  }
  void schedule_now(std::coroutine_handle<> h) {
    ring_.push({next_seq_++, detail::coro_payload(h)});
  }

  // Schedule a plain callback (timer). Captures up to SmallFn::kInlineBytes
  // are stored in the timer slab itself — no heap allocation.
  void call_at(SimTime at, SmallFn fn);
  void call_in(SimTime after, SmallFn fn) {
    call_at(now_ + after, std::move(fn));
  }

  // Failure accounting: processes that terminated with an uncaught
  // exception and were never joined.
  [[nodiscard]] std::size_t failure_count() const { return failures_.size(); }
  // Throws the first recorded unjoined failure (no-op when clean).
  void check_failures() const;

  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }
  [[nodiscard]] std::size_t live_processes() const { return live_.size(); }

  // ---- Partitioned-kernel interface (see sim/parallel.hpp) --------------
  //
  // A Simulation that is one partition of a SimDomain is driven through
  // run_window() instead of run_until(); the domain advances all partitions
  // in conservative time windows bounded by the network lookahead.

  // Identity of this partition within its domain (0 for a standalone sim).
  [[nodiscard]] std::uint32_t partition_id() const { return partition_id_; }
  // The partition the calling thread is currently executing, for
  // per-partition routing of observability state. 0 outside run_window.
  [[nodiscard]] static std::uint32_t current_partition() {
    return tls_partition_;
  }

  // Earliest pending event time: `now()` if the ready ring is non-empty,
  // else the heap minimum, else SimTime::max().
  [[nodiscard]] SimTime peek_next_time() const {
    if (!ring_.empty()) return now_;
    if (!heap_.empty()) return heap_.top().at;
    return SimTime::max();
  }

  // Execute every event with time < end (or <= end when `inclusive`), in
  // exact (time, seq) order, then return. Does not advance now() past the
  // last executed event; the domain calls advance_to() at the window end.
  void run_window(SimTime end, bool inclusive);

  // Move the clock forward to `t` without executing anything.
  void advance_to(SimTime t) {
    if (now_ < t) now_ = t;
  }

  // ---- Off-event probe (see obs/timeseries.hpp) -------------------------
  //
  // A probe is a passive observer fired from the run loop whenever the
  // clock is about to cross a grid instant `first + k * stride`: it runs
  // after every event strictly before the instant and before the first
  // event at or after it, without ever entering the event queue. Because
  // nothing is scheduled, sequence numbers and the event stream are
  // byte-identical with the probe installed or not. The callback must not
  // schedule events or otherwise mutate simulation state.
  using ProbeFn = void (*)(void* ctx, SimTime instant);
  void set_probe(SimTime first, SimTime stride, void* ctx, ProbeFn fn) {
    assert(stride > SimTime::zero() && "probe stride must be positive");
    probe_next_ = first;
    probe_stride_ = stride;
    probe_ctx_ = ctx;
    probe_fn_ = fn;
  }
  void clear_probe() {
    probe_next_ = SimTime::max();
    probe_fn_ = nullptr;
    probe_ctx_ = nullptr;
  }
  // Next grid instant that has not fired yet (SimTime::max() when none).
  [[nodiscard]] SimTime probe_next() const { return probe_next_; }

 private:
  friend struct Process::FinalAwaiter;
  friend class SimDomain;

  void on_process_done(Process::Handle h);
  // Dispatch one event whose time is <= limit; false when none remain.
  bool step(SimTime limit);
  void dispatch_payload(std::uint64_t payload);
  void drain_retired();
  // Fire every pending grid instant <= upto (cold path of the probe check).
  void fire_probes(SimTime upto);

  SimTime now_ = SimTime::zero();
  SimTime probe_next_ = SimTime::max();
  SimTime probe_stride_ = SimTime::zero();
  void* probe_ctx_ = nullptr;
  ProbeFn probe_fn_ = nullptr;
  std::uint32_t partition_id_ = 0;
  static thread_local std::uint32_t tls_partition_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  bool stopped_ = false;
  detail::EventHeap heap_;    // events strictly in the future
  detail::ReadyRing ring_;    // events at exactly now_
  detail::TimerSlab timers_;  // pending call_at callbacks
  // Frames of spawned processes still alive (owned by the kernel); each
  // frame's promise records its index here for O(1) swap-pop retirement.
  std::vector<Process::Handle> live_;
  // Frames that reached final suspension during the current dispatch.
  std::vector<Process::Handle> retired_;
  std::vector<std::exception_ptr> failures_;
};

}  // namespace redbud::sim
