#include "sim/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace redbud::sim {

namespace detail {

void require_failed(const char* what, const char* file, int line) {
  std::fprintf(stderr, "REDBUD_REQUIRE failed: %s (%s:%d)\n", what, file,
               line);
  std::fflush(stderr);
  std::abort();
}

namespace {

// Monotonic wall clock for the kernel self-profile. Nanoseconds since an
// arbitrary epoch; only differences are ever used.
std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Spin politely, then back off to real sleeps: rounds are short (tens of
// microseconds of real time), but between run_until calls the driver may
// run long serial phases (consistency checks, exports) and the pool must
// not burn cores while it does.
struct Backoff {
  unsigned spins = 0;
  void pause() {
    if (spins < 64) {
      ++spins;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(
          spins < 256 ? 50 : 500));
      if (spins < 256) ++spins;
    }
  }
};
}  // namespace

}  // namespace detail

SimDomain::SimDomain(unsigned nthreads, SimTime lookahead,
                     bool force_partitioned)
    : nthreads_(nthreads == 0 ? 1 : nthreads),
      lookahead_(lookahead),
      force_partitioned_(force_partitioned) {
  REDBUD_REQUIRE(lookahead_ > SimTime::zero(),
                 "domain lookahead must be positive");
  wstats_.resize(nthreads_);
}

SimDomain::~SimDomain() {
  if (!workers_.empty()) {
    quit_.store(true, std::memory_order_relaxed);
    round_gen_.fetch_add(1, std::memory_order_release);
    for (auto& w : workers_) w.join();
  }
}

Simulation& SimDomain::add_partition() {
  if (!parallel() && !parts_.empty()) return *parts_[0];
  REDBUD_REQUIRE(workers_.empty(), "cannot add partitions after first run");
  auto sim = std::make_unique<Simulation>();
  sim->partition_id_ = static_cast<std::uint32_t>(parts_.size());
  parts_.push_back(std::move(sim));
  lanes_.resize(parts_.size());
  pstats_.resize(parts_.size());
  return *parts_.back();
}

void SimDomain::post(Simulation& src, std::uint32_t dst, SimTime at,
                     SmallFn fn) {
  REDBUD_REQUIRE(dst < parts_.size(), "injection into unknown partition");
  REDBUD_REQUIRE(at >= src.now() + lookahead_,
                 "cross-partition injection inside the lookahead window");
  if (!parallel()) {
    // One partition, one thread: schedule directly. Staging would hold
    // the callback until the next run_until call, past its due time.
    ++injections_staged_serial_;
    ++injections_delivered_;
    parts_[dst]->call_at(at, std::move(fn));
    return;
  }
  Lane& lane = lanes_[src.partition_id()];
  ++lane.staged_total;
  lane.staged.push_back(
      {at, src.partition_id(), dst, lane.next_seq++, std::move(fn)});
}

void SimDomain::deliver_staged() {
  deliver_buf_.clear();
  for (Lane& lane : lanes_) {
    for (auto& inj : lane.staged) deliver_buf_.push_back(std::move(inj));
    lane.staged.clear();
  }
  if (deliver_buf_.empty()) return;
  injections_delivered_ += deliver_buf_.size();
  // Total order over injections: (time, src partition, per-source seq).
  // Target-side sequence numbers are assigned in this order, so replay is
  // identical for any worker count.
  std::sort(deliver_buf_.begin(), deliver_buf_.end(),
            [](const Injection& a, const Injection& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (auto& inj : deliver_buf_) {
    Simulation& target = *parts_[inj.dst];
    REDBUD_REQUIRE(inj.at >= target.now(),
                   "cross-partition injection behind the target clock");
    target.call_at(inj.at, std::move(inj.fn));
  }
  deliver_buf_.clear();
}

void SimDomain::ensure_workers() {
  if (!workers_.empty()) return;
  workers_.reserve(nthreads_ - 1);
  for (unsigned i = 1; i < nthreads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void SimDomain::work_round(unsigned worker) {
  WorkerStats& ws = wstats_[worker];
  for (;;) {
    const std::uint32_t i =
        next_part_.fetch_add(1, std::memory_order_relaxed);
    if (i >= parts_.size()) return;
    Simulation& part = *parts_[i];
    PartStats& ps = pstats_[i];
    const std::uint64_t before = part.events_processed();
    const std::uint64_t t0 = detail::wall_now_ns();
    part.run_window(round_end_, round_inclusive_);
    const std::uint64_t dt = detail::wall_now_ns() - t0;
    ps.busy_ns += dt;
    ps.windows += 1;
    if (part.events_processed() != before) ps.windows_active += 1;
    ws.busy_ns += dt;
    ws.windows_run += 1;
  }
}

void SimDomain::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  for (;;) {
    detail::Backoff backoff;
    std::uint64_t gen;
    while ((gen = round_gen_.load(std::memory_order_acquire)) == seen) {
      backoff.pause();
    }
    seen = gen;
    if (quit_.load(std::memory_order_relaxed)) return;
    // Wake latency: the coordinator stamped round_start_wall_ns_ right
    // before the release-increment we just acquired, so the difference is
    // this worker's barrier-exit stall for the round.
    const std::uint64_t woke = detail::wall_now_ns();
    if (woke > round_start_wall_ns_) {
      wstats_[worker].stall_ns += woke - round_start_wall_ns_;
    }
    work_round(worker);
    done_workers_.fetch_add(1, std::memory_order_release);
  }
}

void SimDomain::run_round(SimTime end, bool inclusive) {
  round_end_ = end;
  round_inclusive_ = inclusive;
  next_part_.store(0, std::memory_order_relaxed);
  done_workers_.store(0, std::memory_order_relaxed);
  round_start_wall_ns_ = detail::wall_now_ns();
  round_gen_.fetch_add(1, std::memory_order_release);
  work_round(0);  // the coordinator participates
  detail::Backoff backoff;
  const auto target = static_cast<std::uint32_t>(workers_.size());
  const std::uint64_t wait0 = detail::wall_now_ns();
  while (done_workers_.load(std::memory_order_acquire) != target) {
    backoff.pause();
  }
  // The coordinator's stall is the tail wait at the closing barrier: how
  // long the slowest worker kept it idle after its own partitions ran dry.
  wstats_[0].stall_ns += detail::wall_now_ns() - wait0;
}

void SimDomain::fire_probes(SimTime upto) {
  while (probe_next_ <= upto) {
    const SimTime instant = probe_next_;
    probe_next_ = probe_next_ + probe_stride_;
    probe_fn_(probe_ctx_, instant);
  }
}

void SimDomain::run_until(SimTime t) {
  REDBUD_REQUIRE(!parts_.empty(), "domain has no partitions");
  if (!parallel()) {
    // Serial delegation still feeds the profile: the whole run is one
    // worker's busy time, with no rounds and no stalls.
    const std::uint64_t t0 = detail::wall_now_ns();
    parts_[0]->run_until(t);
    const std::uint64_t dt = detail::wall_now_ns() - t0;
    wall_ns_ += dt;
    wstats_[0].busy_ns += dt;
    return;
  }
  ensure_workers();
  const std::uint64_t t0 = detail::wall_now_ns();
  for (;;) {
    deliver_staged();
    SimTime m = SimTime::max();
    for (const auto& p : parts_) m = std::min(m, p->peek_next_time());
    if (m > t) break;
    // All events strictly before m have executed and none at >= m has:
    // probe grid instants <= m sample here (instant m exactly, earlier
    // instants with sub-window skew — see set_probe).
    if (probe_next_ <= m) fire_probes(m);
    // Window [m, m + L), or the inclusive remainder [m, t] when the
    // horizon is nearer than the lookahead. Events at exactly t must run
    // (run_until semantics), and any injection a final-window event posts
    // lands at >= m + L > t — delivered by the next run_until call.
    if (t - m < lookahead_) {
      run_round(t, /*inclusive=*/true);
    } else {
      run_round(m + lookahead_, /*inclusive=*/false);
    }
    ++rounds_;
  }
  if (probe_next_ <= t) fire_probes(t);
  for (const auto& p : parts_) p->advance_to(t);
  wall_ns_ += detail::wall_now_ns() - t0;
}

void SimDomain::set_probe(SimTime first, SimTime stride, void* ctx,
                          Simulation::ProbeFn fn) {
  REDBUD_REQUIRE(!parts_.empty(), "probe on a domain with no partitions");
  REDBUD_REQUIRE(stride > SimTime::zero(), "probe stride must be positive");
  if (!parallel()) {
    parts_[0]->set_probe(first, stride, ctx, fn);
    return;
  }
  probe_next_ = first;
  probe_stride_ = stride;
  probe_ctx_ = ctx;
  probe_fn_ = fn;
}

KernelProfile SimDomain::kernel_profile() const {
  KernelProfile kp;
  kp.rounds = rounds_;
  kp.wall_ns = wall_ns_;
  kp.injections_delivered = injections_delivered_;
  kp.injections_staged = injections_staged_serial_;
  for (const Lane& lane : lanes_) kp.injections_staged += lane.staged_total;
  kp.partitions.resize(parts_.size());
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    kp.partitions[i].events = parts_[i]->events_processed();
    kp.partitions[i].windows = pstats_[i].windows;
    kp.partitions[i].windows_active = pstats_[i].windows_active;
    kp.partitions[i].busy_ns = pstats_[i].busy_ns;
  }
  kp.workers.resize(wstats_.size());
  for (std::size_t i = 0; i < wstats_.size(); ++i) {
    kp.workers[i].busy_ns = wstats_[i].busy_ns;
    kp.workers[i].stall_ns = wstats_[i].stall_ns;
    kp.workers[i].windows_run = wstats_[i].windows_run;
  }
  return kp;
}

std::uint64_t SimDomain::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& p : parts_) total += p->events_processed();
  return total;
}

std::size_t SimDomain::failure_count() const {
  std::size_t total = 0;
  for (const auto& p : parts_) total += p->failure_count();
  return total;
}

void SimDomain::check_failures() const {
  for (const auto& p : parts_) p->check_failures();
}

}  // namespace redbud::sim
