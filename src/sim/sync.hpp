// Counting semaphore and broadcast signal for simulation processes.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <vector>

#include "sim/simulation.hpp"

namespace redbud::sim {

// FIFO counting semaphore with direct permit hand-off (a released permit
// goes straight to the oldest waiter; it cannot be stolen by a later
// acquirer that runs before the waiter resumes).
class Semaphore {
 public:
  Semaphore(Simulation& sim, std::size_t initial)
      : sim_(&sim), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  [[nodiscard]] std::size_t available() const { return count_; }
  [[nodiscard]] std::size_t waiters() const { return waiters_.size(); }

  struct Acquire {
    Semaphore* s;
    bool await_ready() {
      if (s->count_ > 0) {
        --s->count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      s->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Acquire acquire() { return Acquire{this}; }

  bool try_acquire() {
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  void release(std::size_t n = 1) {
    while (n > 0 && !waiters_.empty()) {
      sim_->schedule_now(waiters_.front());
      waiters_.pop_front();
      --n;
    }
    count_ += n;
  }

 private:
  Simulation* sim_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// RAII permit for Semaphore (acquire with `co_await sem.acquire()` first).
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore& s) : s_(&s) {}
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;
  ~SemaphoreGuard() {
    if (s_) s_->release();
  }

 private:
  Semaphore* s_;
};

// Broadcast condition signal. Waiters must re-check their predicate in a
// loop, as with a condition variable:
//
//   while (!pred()) co_await signal.wait();
class Signal {
 public:
  explicit Signal(Simulation& sim) : sim_(&sim) {}
  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  [[nodiscard]] std::size_t waiters() const { return waiters_.size(); }

  struct Wait {
    Signal* s;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      s->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Wait wait() { return Wait{this}; }

  void notify_all() {
    for (auto h : waiters_) sim_->schedule_now(h);
    waiters_.clear();
  }
  void notify_one() {
    if (waiters_.empty()) return;
    sim_->schedule_now(waiters_.front());
    waiters_.erase(waiters_.begin());
  }

 private:
  Simulation* sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace redbud::sim
