// Coroutine process type for the simulation kernel.
//
// A simulation "process" (an application thread, a commit daemon, a disk
// servicing loop, ...) is a C++20 coroutine returning `Process`. Processes
// are spawned onto a Simulation, which schedules every resumption through
// its event queue — processes never resume each other inline, which keeps
// stack depth bounded and execution order deterministic.
//
//   Process app_thread(Simulation& sim, ClientFs& fs) {
//     co_await sim.delay(SimTime::millis(1));
//     co_await fs.write(...);
//   }
//   ProcRef h = sim.spawn(app_thread(sim, fs));
//   co_await h.join();
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "sim/arena.hpp"
#include "sim/time.hpp"

namespace redbud::sim {

class Simulation;

// Shared completion state, outliving the coroutine frame so that joiners
// holding a ProcRef remain valid after the process finishes.
struct ProcessState {
  Simulation* sim = nullptr;
  bool done = false;
  std::exception_ptr error;
  std::vector<std::coroutine_handle<>> joiners;
};

// The coroutine task type. Move-only owner of the (not yet spawned)
// coroutine frame; Simulation::spawn() consumes it.
class [[nodiscard]] Process {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    void await_suspend(Handle h) noexcept;
    void await_resume() const noexcept {}
  };

  struct promise_type {
    std::shared_ptr<ProcessState> state = std::make_shared<ProcessState>();
    // Position in the kernel's live-frame table; maintained by Simulation
    // so retirement is a swap-pop instead of a linear scan.
    std::uint32_t live_index = 0;

    // Coroutine frames come from the thread-local recycling arena.
    static void* operator new(std::size_t bytes) {
      return detail::FrameArena::local().allocate(bytes);
    }
    static void operator delete(void* p, std::size_t bytes) noexcept {
      detail::FrameArena::local().deallocate(p, bytes);
    }

    Process get_return_object() {
      return Process(Handle::from_promise(*this), state);
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      state->error = std::current_exception();
    }
  };

  Process(Process&& o) noexcept : handle_(o.handle_), state_(std::move(o.state_)) {
    o.handle_ = nullptr;
  }
  Process& operator=(Process&&) = delete;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() {
    if (handle_) handle_.destroy();
  }

 private:
  friend class Simulation;
  Process(Handle h, std::shared_ptr<ProcessState> s)
      : handle_(h), state_(std::move(s)) {}

  Handle handle_;
  std::shared_ptr<ProcessState> state_;
};

// Lightweight, copyable reference to a spawned process.
class ProcRef {
 public:
  ProcRef() = default;
  explicit ProcRef(std::shared_ptr<ProcessState> s) : state_(std::move(s)) {}

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool done() const { return state_ && state_->done; }

  // Awaitable: suspends until the process completes; rethrows the process's
  // uncaught exception, if any.
  struct JoinAwaiter {
    std::shared_ptr<ProcessState> state;
    bool await_ready() const noexcept { return state->done; }
    void await_suspend(std::coroutine_handle<> h) {
      state->joiners.push_back(h);
    }
    void await_resume() const {
      if (state->error) std::rethrow_exception(state->error);
    }
  };
  [[nodiscard]] JoinAwaiter join() const { return JoinAwaiter{state_}; }

 private:
  std::shared_ptr<ProcessState> state_;
};

}  // namespace redbud::sim
