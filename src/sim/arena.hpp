// Size-bucketed freelist arena for coroutine frames.
//
// Simulations spawn a coroutine per request (millions per run), and the
// frames of a given process type are all the same size — a perfect
// recycling workload. Process::promise_type routes frame allocation here
// via operator new/delete: frames up to kMaxBucketed bytes come from
// per-size freelists (O(1) pointer pop/push after warmup); larger frames
// fall through to the global allocator.
//
// The arena is thread_local: each Simulation is single-threaded, and the
// parallel bench runner gives every configuration its own OS thread, so
// no locking is needed. A frame freed on a different thread than it was
// allocated on simply lands in that thread's freelist — the backing
// memory comes from the global allocator either way.
#pragma once

#include <array>
#include <cstddef>
#include <new>

namespace redbud::sim::detail {

class FrameArena {
 public:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kMaxBucketed = 2048;
  static constexpr std::size_t kBuckets = kMaxBucketed / kGranularity;

  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  ~FrameArena() {
    for (FreeBlock* head : free_) {
      while (head != nullptr) {
        FreeBlock* next = head->next;
        ::operator delete(head);
        head = next;
      }
    }
  }

  [[nodiscard]] void* allocate(std::size_t bytes) {
    const std::size_t b = bucket(bytes);
    if (b < kBuckets) {
      if (FreeBlock* block = free_[b]) {
        free_[b] = block->next;
        return block;
      }
      return ::operator new((b + 1) * kGranularity);
    }
    return ::operator new(bytes);
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    const std::size_t b = bucket(bytes);
    if (b < kBuckets) {
      auto* block = static_cast<FreeBlock*>(p);
      block->next = free_[b];
      free_[b] = block;
      return;
    }
    ::operator delete(p);
  }

  [[nodiscard]] static FrameArena& local() {
    thread_local FrameArena arena;
    return arena;
  }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };
  static_assert(kGranularity >= sizeof(FreeBlock));

  [[nodiscard]] static std::size_t bucket(std::size_t bytes) {
    return (bytes - 1) / kGranularity;
  }

  std::array<FreeBlock*, kBuckets> free_{};
};

}  // namespace redbud::sim::detail
