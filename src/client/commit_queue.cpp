#include "client/commit_queue.hpp"

#include <algorithm>
#include <cassert>

#include "client/commit_slab.hpp"

namespace redbud::client {

using redbud::sim::Done;
using redbud::sim::SimFuture;
using redbud::sim::SimPromise;

CommitQueue::CommitQueue(redbud::sim::Simulation& sim)
    : sim_(&sim),
      owned_slab_(std::make_unique<CommitSlab>()),
      slab_(owned_slab_.get()),
      work_(sim),
      space_(sim) {}

CommitQueue::CommitQueue(redbud::sim::Simulation& sim, CommitSlab* slab)
    : sim_(&sim), slab_(slab), work_(sim), space_(sim) {
  assert(slab_ != nullptr);
}

CommitQueue::~CommitQueue() = default;

void CommitQueue::set_obs(obs::Obs* obs, std::uint32_t client_id) {
  obs_ = obs;
  track_ = obs::Track{obs::client_track(client_id), 2};
  const obs::Labels labels{{"client", std::to_string(client_id)}};
  obs->registry.register_value("commit_queue.enqueued", labels, &enqueued_);
  obs->registry.register_value("commit_queue.merged", labels, &merged_);
  obs->registry.register_value("commit_queue.committed", labels, &committed_);
  obs->registry.register_value("commit_queue.depth", labels, &depth_);
  obs->registry.register_value("commit_queue.oldest_enqueued_us", labels,
                               &oldest_enqueued_us_);
  obs->registry.register_histogram("commit_queue.latency", labels,
                                   &commit_latency_);
}

void CommitQueue::refresh_state() {
  depth_ = order_.size();
  oldest_enqueued_us_ =
      order_.empty()
          ? 0
          : std::uint64_t(queued_.at(order_.front()).enqueued_at.ns() / 1000);
}

void CommitQueue::add(net::FileId file, std::vector<net::Extent> extents,
                      std::vector<storage::ContentToken> block_tokens,
                      std::uint64_t new_size_bytes,
                      std::vector<SimFuture<Done>> data_futures,
                      obs::TraceContext ctx) {
  ++enqueued_;
  auto it = queued_.find(file);
  if (it == queued_.end()) {
    CommitTask task = slab_->acquire();
    task.file = file;
    task.shard = net::shard_of_id(file);
    task.extents = std::move(extents);
    task.block_tokens = std::move(block_tokens);
    task.new_size_bytes = new_size_bytes;
    task.enqueued_at = sim_->now();
    task.data_futures = std::move(data_futures);
    if (ctx.active()) task.traces.push_back({ctx, sim_->now()});
    queued_.emplace(file, std::move(task));
    order_.push_back(file);
  } else {
    // Same-file merge: one commit request per file in the queue.
    ++merged_;
    CommitTask& task = it->second;
    task.extents.insert(task.extents.end(), extents.begin(), extents.end());
    task.block_tokens.insert(task.block_tokens.end(), block_tokens.begin(),
                             block_tokens.end());
    task.new_size_bytes = std::max(task.new_size_bytes, new_size_bytes);
    for (auto& f : data_futures) task.data_futures.push_back(std::move(f));
    // The merged update keeps its own context: its chain shares the
    // task's checkout/RPC spans but retains per-update queue-wait/e2e.
    if (ctx.active()) task.traces.push_back({ctx, sim_->now()});
  }
  refresh_state();
  work_.notify_all();
}

SimFuture<Done> CommitQueue::wait_committed(net::FileId file) {
  SimPromise<Done> p(*sim_);
  auto fut = p.future();
  const bool queued = queued_.count(file) > 0;
  const bool flying = in_flight_files_.count(file) > 0;
  if (!queued && !flying) {
    p.set_value(Done{});
    return fut;
  }
  if (queued) {
    queued_[file].waiters.push_back(std::move(p));
  } else {
    in_flight_waiters_[file].push_back(std::move(p));
  }
  return fut;
}

void CommitQueue::drop(net::FileId file) {
  auto it = queued_.find(file);
  if (it == queued_.end()) return;
  for (auto& w : it->second.waiters) w.set_value(Done{});
  slab_->recycle(std::move(it->second));
  queued_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), file), order_.end());
  refresh_state();
  space_.notify_all();
}

bool CommitQueue::any_ready() const {
  for (const auto& file : order_) {
    if (queued_.at(file).data_complete()) return true;
  }
  return false;
}

std::vector<CommitTask> CommitQueue::checkout(std::size_t max) {
  std::vector<CommitTask> out;
  // Bound the scan: data writes complete roughly in FIFO order, so ready
  // entries cluster at the front; a deep scan over a long unready tail
  // would make daemon polling quadratic in the queue length.
  constexpr std::size_t kScanLimit = 128;
  std::size_t scanned = 0;
  // The first ready task pins the batch's target shard.
  std::uint32_t batch_shard = 0;
  for (auto it = order_.begin();
       it != order_.end() && out.size() < max && scanned < kScanLimit;
       ++scanned) {
    auto qit = queued_.find(*it);
    assert(qit != queued_.end());
    if (qit->second.data_complete() &&
        (out.empty() || qit->second.shard == batch_shard)) {
      if (out.empty()) batch_shard = qit->second.shard;
      // Queue-wait stage ends here for every update riding this task.
      if (obs_ != nullptr) {
        for (const obs::TraceLink& link : qit->second.traces) {
          obs_->tracer.record(obs::Stage::kQueueWait,
                              obs_->tracer.child(link.ctx), link.ctx.span,
                              track_, link.enqueued_at, sim_->now(),
                              qit->second.file);
        }
      }
      out.push_back(std::move(qit->second));
      queued_.erase(qit);
      it = order_.erase(it);
      ++in_flight_files_[out.back().file];
      ++in_flight_count_;
    } else {
      ++it;
    }
  }
  refresh_state();
  if (!out.empty()) space_.notify_all();
  return out;
}

std::optional<std::uint32_t> CommitQueue::first_ready_shard() const {
  constexpr std::size_t kScanLimit = 128;
  std::size_t scanned = 0;
  for (auto it = order_.begin(); it != order_.end() && scanned < kScanLimit;
       ++it, ++scanned) {
    const CommitTask& task = queued_.at(*it);
    if (task.data_complete()) return task.shard;
  }
  return std::nullopt;
}

void CommitQueue::ack(CommitTask& task, std::uint64_t batch_span) {
  ++committed_;
  commit_latency_.record(sim_->now() - task.enqueued_at);
  // Commit end-to-end: enqueue -> RPC acknowledged, one span per traced
  // update. arg1 links to the checkout-batch span whose compound RPC
  // carried this task, bridging the per-update and per-batch chains.
  if (obs_ != nullptr) {
    for (const obs::TraceLink& link : task.traces) {
      obs_->tracer.record(obs::Stage::kCommitE2e, obs_->tracer.child(link.ctx),
                          link.ctx.span, track_, link.enqueued_at, sim_->now(),
                          task.file, batch_span);
    }
  }
  for (auto& w : task.waiters) w.set_value(Done{});
  task.waiters.clear();

  auto fit = in_flight_files_.find(task.file);
  assert(fit != in_flight_files_.end());
  --in_flight_count_;
  if (--fit->second == 0) {
    in_flight_files_.erase(fit);
    // Waiters attached while this generation was in flight are satisfied
    // once it lands; writes issued after the fsync belong to a new task.
    if (auto wit = in_flight_waiters_.find(task.file);
        wit != in_flight_waiters_.end()) {
      for (auto& w : wit->second) w.set_value(Done{});
      in_flight_waiters_.erase(wit);
    }
  }
  // The acked record is dead; hand its buffers back for the next commit.
  slab_->recycle(std::move(task));
}

void CommitQueue::requeue(CommitTask task) {
  auto fit = in_flight_files_.find(task.file);
  assert(fit != in_flight_files_.end());
  --in_flight_count_;
  if (--fit->second == 0) in_flight_files_.erase(fit);

  const net::FileId file = task.file;
  auto it = queued_.find(file);
  if (it == queued_.end()) {
    queued_.emplace(file, std::move(task));
    order_.push_front(file);
  } else {
    CommitTask& q = it->second;
    q.extents.insert(q.extents.end(), task.extents.begin(),
                     task.extents.end());
    q.block_tokens.insert(q.block_tokens.end(), task.block_tokens.begin(),
                          task.block_tokens.end());
    q.new_size_bytes = std::max(q.new_size_bytes, task.new_size_bytes);
    for (auto& w : task.waiters) q.waiters.push_back(std::move(w));
    for (auto& t : task.traces) q.traces.push_back(t);
    slab_->recycle(std::move(task));
  }
  refresh_state();
  work_.notify_all();
}

}  // namespace redbud::client
