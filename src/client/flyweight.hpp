// Flyweight client multiplexing.
//
// A simulated host runs ONE ClientFs engine — one RPC endpoint, one page
// cache drawing on the host frame pool, one commit queue recycling
// records through the host commit slab, one daemon pool — and multiplexes
// an arbitrary number of *sessions* on top of it. A session is the
// flyweight client: a few words of identity and counters, no coroutine
// process, no heap arena. 10^5 clients therefore cost 10^5 session
// records plus eight engines, not 10^5 engines.
//
// Sessions implement fsapi::FsClient by forwarding 1:1 to the engine, so
// a session-driven run is event-identical to driving the engine directly
// (pinned by FlyweightReplay.*HostSession*). Session records are
// recycled LIFO on close; the live/peak gauges back the scale claims in
// EXPERIMENTS.md ("gauge-verified, not asserted").
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "client/client_fs.hpp"
#include "fsapi/fs_client.hpp"

namespace redbud::client {

class ClientHost;

// One flyweight client. POD-sized: identity, op counters and the backing
// host. All file-system calls forward to the host's engine unchanged.
class FlyweightSession final : public fsapi::FsClient {
 public:
  [[nodiscard]] redbud::sim::SimFuture<net::FileId> create(
      net::DirId dir, std::string name) override;
  [[nodiscard]] redbud::sim::SimFuture<fsapi::OpenResult> open(
      net::DirId dir, std::string name) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> write(
      net::FileId file, std::uint64_t offset_bytes,
      std::uint32_t nbytes) override;
  [[nodiscard]] redbud::sim::SimFuture<fsapi::ReadResult> read(
      net::FileId file, std::uint64_t offset_bytes,
      std::uint32_t nbytes) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> fsync(
      net::FileId file) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> close(
      net::FileId file) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> remove(
      net::DirId dir, std::string name) override;
  [[nodiscard]] storage::ContentToken expected_token(
      net::FileId file, std::uint64_t block) const override;

  // Fleet-wide client id (host base + slot), stable for the session's
  // lifetime; reused when a closed slot is reopened.
  [[nodiscard]] std::uint32_t client_id() const { return client_id_; }
  [[nodiscard]] std::uint64_t ops_issued() const { return ops_; }
  [[nodiscard]] bool live() const { return live_; }
  [[nodiscard]] ClientHost& host() { return *host_; }

 private:
  friend class ClientHost;
  ClientHost* host_ = nullptr;
  std::uint32_t client_id_ = 0;
  std::uint64_t ops_ = 0;
  bool live_ = false;
};

class ClientHost {
 public:
  // Adapts an existing engine (typically core::Cluster's client i); the
  // host does not own it. `first_client_id` is the fleet-wide id of the
  // host's first session slot — hosts number their clients in disjoint
  // contiguous ranges.
  ClientHost(ClientFs& engine, std::uint32_t host_id,
             std::uint32_t first_client_id);
  ClientHost(const ClientHost&) = delete;
  ClientHost& operator=(const ClientHost&) = delete;

  // Open a flyweight client. Recycles the most recently closed slot, or
  // grows the session table by one record.
  [[nodiscard]] FlyweightSession& open_session();
  void close_session(FlyweightSession& s);

  [[nodiscard]] ClientFs& engine() { return *engine_; }
  [[nodiscard]] std::uint64_t live_sessions() const { return live_; }
  [[nodiscard]] std::uint64_t peak_sessions() const { return peak_; }
  [[nodiscard]] std::uint64_t sessions_allocated() const {
    return sessions_.size();
  }
  [[nodiscard]] std::uint32_t host_id() const { return host_id_; }

  // Gauges under {host=id}: live/peak sessions plus the engine's pooled
  // page frames and commit-slab occupancy — the memory-bound evidence for
  // the 10^5-client claim.
  void register_metrics(obs::MetricsRegistry& reg) const;

 private:
  ClientFs* engine_;
  std::uint32_t host_id_;
  std::uint32_t first_client_id_;
  std::deque<FlyweightSession> sessions_;  // stable addresses
  std::vector<std::uint32_t> free_;        // closed slots, LIFO
  std::uint64_t live_ = 0;
  std::uint64_t peak_ = 0;
};

}  // namespace redbud::client
