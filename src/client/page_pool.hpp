// Shared page-frame pool.
//
// Flyweight clients must not each own a heap arena of cache pages: every
// page frame of a host (or of a standalone client — the classic
// one-client-per-ClientFs path simply owns a private pool) lives in one
// slab here, addressed by a 32-bit frame index. PageCache keeps only the
// (file, block) -> frame map and an intrusive LRU threaded through the
// frames themselves, so the per-page cost is one map node + one slab
// slot, and the pool's occupancy is a single gauge the obs layer exports
// (`page_pool.frames_in_use`).
//
// Frames are recycled LIFO. Indices are stable; Frame references are NOT
// (the slab grows by reallocation) — hold indices across operations that
// may acquire.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "storage/types.hpp"

namespace redbud::client {

class PageFramePool {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Frame {
    // Owning key, for reverse lookup at eviction time.
    std::uint64_t file = 0;
    std::uint64_t block = 0;
    storage::ContentToken token = 0;
    // Intrusive LRU links of the owning cache (kNil when not listed).
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    bool dirty = false;
  };

  [[nodiscard]] std::uint32_t acquire() {
    ++in_use_;
    if (in_use_ > peak_) peak_ = in_use_;
    if (!free_.empty()) {
      const std::uint32_t idx = free_.back();
      free_.pop_back();
      return idx;
    }
    frames_.emplace_back();
    return static_cast<std::uint32_t>(frames_.size() - 1);
  }

  void release(std::uint32_t idx) {
    --in_use_;
    free_.push_back(idx);
  }

  [[nodiscard]] Frame& at(std::uint32_t idx) { return frames_[idx]; }
  [[nodiscard]] const Frame& at(std::uint32_t idx) const {
    return frames_[idx];
  }

  [[nodiscard]] std::uint64_t in_use() const { return in_use_; }
  [[nodiscard]] std::uint64_t peak_in_use() const { return peak_; }
  [[nodiscard]] std::uint64_t allocated() const { return frames_.size(); }

  void register_metrics(obs::MetricsRegistry& reg,
                        const obs::Labels& labels) const {
    reg.register_value("page_pool.frames_in_use", labels, &in_use_);
    reg.register_value("page_pool.frames_peak", labels, &peak_);
  }

 private:
  std::vector<Frame> frames_;
  std::vector<std::uint32_t> free_;
  std::uint64_t in_use_ = 0;
  std::uint64_t peak_ = 0;
};

}  // namespace redbud::client
