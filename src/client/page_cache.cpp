#include "client/page_cache.hpp"

#include <cassert>

namespace redbud::client {

PageCache::PageCache(std::size_t capacity_pages) : capacity_(capacity_pages) {
  assert(capacity_ > 0);
}

void PageCache::insert(net::FileId file, std::uint64_t block,
                       storage::ContentToken token, bool dirty) {
  const Key key{file, block};
  auto it = pages_.find(key);
  if (it != pages_.end()) {
    Page& p = it->second;
    p.token = token;
    if (p.dirty != dirty) {
      if (dirty) {
        lru_.erase(p.lru_it);
        ++dirty_;
        dirty_index_[file].insert(block);
      } else {
        lru_.push_front(key);
        p.lru_it = lru_.begin();
        --dirty_;
        drop_dirty_index(file, block);
      }
      p.dirty = dirty;
    } else if (!dirty) {
      lru_.splice(lru_.begin(), lru_, p.lru_it);
    }
    return;
  }
  evict_if_needed();
  Page p;
  p.token = token;
  p.dirty = dirty;
  if (dirty) {
    ++dirty_;
    dirty_index_[file].insert(block);
  } else {
    lru_.push_front(key);
    p.lru_it = lru_.begin();
  }
  pages_.emplace(key, p);
}

void PageCache::evict_if_needed() {
  // Only clean pages are evictable; a cache full of dirty pages grows past
  // capacity rather than lose uncommitted data.
  while (pages_.size() >= capacity_ && !lru_.empty()) {
    const Key victim = lru_.back();
    lru_.pop_back();
    pages_.erase(victim);
    ++evictions_;
  }
}

void PageCache::put_dirty(net::FileId file, std::uint64_t block,
                          storage::ContentToken token) {
  insert(file, block, token, true);
}

void PageCache::put_clean(net::FileId file, std::uint64_t block,
                          storage::ContentToken token) {
  insert(file, block, token, false);
}

void PageCache::mark_clean(net::FileId file, std::uint64_t block) {
  auto it = pages_.find(Key{file, block});
  if (it == pages_.end() || !it->second.dirty) return;
  it->second.dirty = false;
  --dirty_;
  drop_dirty_index(file, block);
  lru_.push_front(Key{file, block});
  it->second.lru_it = lru_.begin();
}

void PageCache::drop_dirty_index(net::FileId file, std::uint64_t block) {
  auto it = dirty_index_.find(file);
  if (it == dirty_index_.end()) return;
  it->second.erase(block);
  if (it->second.empty()) dirty_index_.erase(it);
}

std::optional<storage::ContentToken> PageCache::get(net::FileId file,
                                                    std::uint64_t block) {
  auto it = pages_.find(Key{file, block});
  if (it == pages_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  if (!it->second.dirty) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  }
  return it->second.token;
}

bool PageCache::is_dirty(net::FileId file, std::uint64_t block) const {
  auto it = pages_.find(Key{file, block});
  return it != pages_.end() && it->second.dirty;
}

std::vector<std::pair<std::uint64_t, storage::ContentToken>>
PageCache::dirty_pages_of(net::FileId file) const {
  std::vector<std::pair<std::uint64_t, storage::ContentToken>> out;
  auto it = dirty_index_.find(file);
  if (it == dirty_index_.end()) return out;
  out.reserve(it->second.size());
  for (const auto block : it->second) {
    out.emplace_back(block, pages_.at(Key{file, block}).token);
  }
  return out;
}

void PageCache::invalidate_file(net::FileId file) {
  for (auto it = pages_.begin(); it != pages_.end();) {
    if (it->first.file == file) {
      if (it->second.dirty) {
        --dirty_;
      } else {
        lru_.erase(it->second.lru_it);
      }
      it = pages_.erase(it);
    } else {
      ++it;
    }
  }
  dirty_index_.erase(file);
}

}  // namespace redbud::client
