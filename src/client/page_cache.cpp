#include "client/page_cache.hpp"

#include <cassert>

namespace redbud::client {

PageCache::PageCache(std::size_t capacity_pages)
    : capacity_(capacity_pages),
      owned_pool_(std::make_unique<PageFramePool>()),
      pool_(owned_pool_.get()) {
  assert(capacity_ > 0);
}

PageCache::PageCache(std::size_t capacity_pages, PageFramePool* pool)
    : capacity_(capacity_pages), pool_(pool) {
  assert(capacity_ > 0);
  assert(pool_ != nullptr);
}

PageCache::~PageCache() {
  // Return shared frames; an owned pool dies with the cache anyway.
  if (owned_pool_) return;
  for (const auto& [key, idx] : pages_) pool_->release(idx);
}

void PageCache::lru_unlink(std::uint32_t idx) {
  auto& f = pool_->at(idx);
  if (f.prev != kNil) {
    pool_->at(f.prev).next = f.next;
  } else {
    lru_head_ = f.next;
  }
  if (f.next != kNil) {
    pool_->at(f.next).prev = f.prev;
  } else {
    lru_tail_ = f.prev;
  }
  f.prev = kNil;
  f.next = kNil;
}

void PageCache::lru_push_front(std::uint32_t idx) {
  auto& f = pool_->at(idx);
  f.prev = kNil;
  f.next = lru_head_;
  if (lru_head_ != kNil) pool_->at(lru_head_).prev = idx;
  lru_head_ = idx;
  if (lru_tail_ == kNil) lru_tail_ = idx;
}

void PageCache::insert(net::FileId file, std::uint64_t block,
                       storage::ContentToken token, bool dirty) {
  const Key key{file, block};
  auto it = pages_.find(key);
  if (it != pages_.end()) {
    auto& f = pool_->at(it->second);
    f.token = token;
    if (f.dirty != dirty) {
      if (dirty) {
        lru_unlink(it->second);
        ++dirty_;
        dirty_index_[file].insert(block);
      } else {
        lru_push_front(it->second);
        --dirty_;
        drop_dirty_index(file, block);
      }
      f.dirty = dirty;
    } else if (!dirty) {
      lru_unlink(it->second);
      lru_push_front(it->second);
    }
    return;
  }
  evict_if_needed();
  const std::uint32_t idx = pool_->acquire();
  auto& f = pool_->at(idx);
  f.file = file;
  f.block = block;
  f.token = token;
  f.dirty = dirty;
  f.prev = kNil;
  f.next = kNil;
  if (dirty) {
    ++dirty_;
    dirty_index_[file].insert(block);
  } else {
    lru_push_front(idx);
  }
  pages_.emplace(key, idx);
}

void PageCache::evict_if_needed() {
  // Only clean pages are evictable; a cache full of dirty pages grows past
  // capacity rather than lose uncommitted data.
  while (pages_.size() >= capacity_ && lru_tail_ != kNil) {
    const std::uint32_t victim = lru_tail_;
    const auto& f = pool_->at(victim);
    const Key key{f.file, f.block};
    lru_unlink(victim);
    pages_.erase(key);
    pool_->release(victim);
    ++evictions_;
  }
}

void PageCache::put_dirty(net::FileId file, std::uint64_t block,
                          storage::ContentToken token) {
  insert(file, block, token, true);
}

void PageCache::put_clean(net::FileId file, std::uint64_t block,
                          storage::ContentToken token) {
  insert(file, block, token, false);
}

void PageCache::mark_clean(net::FileId file, std::uint64_t block) {
  auto it = pages_.find(Key{file, block});
  if (it == pages_.end() || !pool_->at(it->second).dirty) return;
  pool_->at(it->second).dirty = false;
  --dirty_;
  drop_dirty_index(file, block);
  lru_push_front(it->second);
}

void PageCache::drop_dirty_index(net::FileId file, std::uint64_t block) {
  auto it = dirty_index_.find(file);
  if (it == dirty_index_.end()) return;
  it->second.erase(block);
  if (it->second.empty()) dirty_index_.erase(it);
}

std::optional<storage::ContentToken> PageCache::get(net::FileId file,
                                                    std::uint64_t block) {
  auto it = pages_.find(Key{file, block});
  if (it == pages_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  if (!pool_->at(it->second).dirty) {
    lru_unlink(it->second);
    lru_push_front(it->second);
  }
  return pool_->at(it->second).token;
}

bool PageCache::is_dirty(net::FileId file, std::uint64_t block) const {
  auto it = pages_.find(Key{file, block});
  return it != pages_.end() && pool_->at(it->second).dirty;
}

std::vector<std::pair<std::uint64_t, storage::ContentToken>>
PageCache::dirty_pages_of(net::FileId file) const {
  std::vector<std::pair<std::uint64_t, storage::ContentToken>> out;
  auto it = dirty_index_.find(file);
  if (it == dirty_index_.end()) return out;
  out.reserve(it->second.size());
  for (const auto block : it->second) {
    out.emplace_back(block, pool_->at(pages_.at(Key{file, block})).token);
  }
  return out;
}

void PageCache::invalidate_file(net::FileId file) {
  for (auto it = pages_.begin(); it != pages_.end();) {
    if (it->first.file == file) {
      auto& f = pool_->at(it->second);
      if (f.dirty) {
        --dirty_;
      } else {
        lru_unlink(it->second);
      }
      pool_->release(it->second);
      it = pages_.erase(it);
    } else {
      ++it;
    }
  }
  dirty_index_.erase(file);
}

}  // namespace redbud::client
