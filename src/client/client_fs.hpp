// The Redbud client file system.
//
// Implements both update protocols of the paper on top of the shared
// substrates:
//
//  * synchronous commit (original Redbud): writepage -> wait for the data
//    to be durable -> send the commit RPC -> wait for the reply -> return;
//  * delayed commit: writepage is issued, the commit request joins the
//    commit queue (deduplicated per file), and the call returns at once —
//    background daemons keep the write order and send compound RPCs;
//  * unordered (deliberately broken, for the crash experiments): the
//    commit RPC races the data write — exactly the inconsistency ordered
//    writes exist to prevent.
//
// Space delegation (double space pool) and the adaptive commit machinery
// are wired here.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/commit_daemon.hpp"
#include "client/commit_queue.hpp"
#include "client/compound_controller.hpp"
#include "client/page_cache.hpp"
#include "client/space_pool.hpp"
#include "fsapi/fs_client.hpp"
#include "net/rpc.hpp"
#include "storage/disk_array.hpp"

namespace redbud::client {

enum class CommitMode : std::uint8_t {
  kSync,      // original Redbud ordered writes
  kDelayed,   // the paper's contribution
  kUnordered  // broken ordering (crash-consistency demonstrations only)
};

struct ClientFsParams {
  CommitMode mode = CommitMode::kDelayed;
  bool delegation = true;
  std::uint64_t chunk_blocks = (16ull << 20) / storage::kBlockSize;  // 16 MiB
  CommitPoolParams pool;
  CompoundParams compound;
  std::size_t cache_pages = 1 << 18;  // 1 GiB of 4 KiB pages
  // Client-side CPU costs.
  redbud::sim::SimTime cpu_op = redbud::sim::SimTime::micros(5);
  redbud::sim::SimTime cpu_page = redbud::sim::SimTime::micros(1);
};

using OpenResult = fsapi::OpenResult;
using ReadResult = fsapi::ReadResult;

class ClientFs final : public fsapi::FsClient {
 public:
  ClientFs(redbud::sim::Simulation& sim, net::Network& network,
           net::RpcEndpoint& mds, storage::DiskArray& array,
           ClientFsParams params);
  ClientFs(const ClientFs&) = delete;
  ClientFs& operator=(const ClientFs&) = delete;

  // Spawn background machinery (commit daemons in delayed mode). Once.
  void start();

  // --- file operations (all awaitable futures) ------------------------------
  [[nodiscard]] redbud::sim::SimFuture<net::FileId> create(
      net::DirId dir, std::string name) override;
  [[nodiscard]] redbud::sim::SimFuture<OpenResult> open(
      net::DirId dir, std::string name) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> write(
      net::FileId file, std::uint64_t offset_bytes,
      std::uint32_t nbytes) override;
  [[nodiscard]] redbud::sim::SimFuture<ReadResult> read(
      net::FileId file, std::uint64_t offset_bytes,
      std::uint32_t nbytes) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> fsync(
      net::FileId file) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> close(
      net::FileId file) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> remove(
      net::DirId dir, std::string name) override;

  // Token the most recent write stored for (file, block) — lets workloads
  // verify read-back without tracking contents themselves.
  [[nodiscard]] storage::ContentToken expected_token(
      net::FileId file, std::uint64_t block) const override;
  [[nodiscard]] std::uint64_t known_size(net::FileId file) const;

  // --- introspection ----------------------------------------------------------
  [[nodiscard]] net::RpcEndpoint& endpoint() { return endpoint_; }
  [[nodiscard]] CommitQueue& commit_queue() { return queue_; }
  [[nodiscard]] CommitDaemonPool& commit_pool() { return pool_daemons_; }
  [[nodiscard]] CompoundController& compound() { return compound_; }
  [[nodiscard]] PageCache& cache() { return cache_; }
  [[nodiscard]] DoubleSpacePool& space_pool() { return pool_; }
  [[nodiscard]] const ClientFsParams& params() const { return params_; }
  [[nodiscard]] std::uint64_t writes_issued() const { return writes_; }
  [[nodiscard]] std::uint64_t reads_issued() const { return reads_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_; }

 private:
  struct FileState {
    std::uint64_t size_bytes = 0;
    // Layout cache: extents by file block.
    std::map<std::uint64_t, net::Extent> layout;
    // Version per block (drives content tokens).
    std::unordered_map<std::uint64_t, std::uint64_t> versions;
    // In-flight writeback per block (Linux PG_writeback analogue): a page
    // with an outstanding array write may not be written again until that
    // I/O completes, or the elevator could reorder two writes of the same
    // block and let stale data land last on the platter.
    std::unordered_map<std::uint64_t,
                       redbud::sim::SimFuture<redbud::sim::Done>>
        writeback;
  };

  redbud::sim::Process create_proc(net::DirId dir, std::string name,
                                   redbud::sim::SimPromise<net::FileId> p);
  redbud::sim::Process open_proc(net::DirId dir, std::string name,
                                 redbud::sim::SimPromise<OpenResult> p);
  redbud::sim::Process write_proc(net::FileId file, std::uint64_t offset,
                                  std::uint32_t nbytes,
                                  redbud::sim::SimPromise<net::Status> p);
  redbud::sim::Process read_proc(net::FileId file, std::uint64_t offset,
                                 std::uint32_t nbytes,
                                 redbud::sim::SimPromise<ReadResult> p);
  redbud::sim::Process fsync_proc(net::FileId file,
                                  redbud::sim::SimPromise<net::Status> p);
  redbud::sim::Process remove_proc(net::DirId dir, std::string name,
                                   redbud::sim::SimPromise<net::Status> p);
  redbud::sim::Process refill_proc();
  redbud::sim::Process return_leftovers_proc();

  // Allocate physical extents for [file_block, file_block + nblocks).
  // Fills `out` (file-block annotated) — may suspend on a delegation
  // refill or a layout-get RPC.
  redbud::sim::Process allocate_space(net::FileId file,
                                      std::uint64_t file_block,
                                      std::uint32_t nblocks,
                                      std::vector<net::Extent>* out,
                                      redbud::sim::SimPromise<net::Status> p);

  void cache_layout(FileState& st, const std::vector<net::Extent>& extents);
  [[nodiscard]] FileState& state(net::FileId file) { return files_[file]; }

  redbud::sim::Simulation* sim_;
  net::RpcEndpoint* mds_;
  storage::DiskArray* array_;
  ClientFsParams params_;
  net::NodeId node_;
  net::RpcEndpoint endpoint_;
  PageCache cache_;
  DoubleSpacePool pool_;
  CommitQueue queue_;
  CompoundController compound_;
  CommitDaemonPool pool_daemons_;
  redbud::sim::Signal refill_done_;
  bool refill_in_progress_ = false;
  bool started_ = false;
  std::unordered_map<net::FileId, FileState> files_;
  std::uint64_t writes_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
};

}  // namespace redbud::client
