// The Redbud client file system.
//
// Implements both update protocols of the paper on top of the shared
// substrates:
//
//  * synchronous commit (original Redbud): writepage -> wait for the data
//    to be durable -> send the commit RPC -> wait for the reply -> return;
//  * delayed commit: writepage is issued, the commit request joins the
//    commit queue (deduplicated per file), and the call returns at once —
//    background daemons keep the write order and send compound RPCs;
//  * unordered (deliberately broken, for the crash experiments): the
//    commit RPC races the data write — exactly the inconsistency ordered
//    writes exist to prevent.
//
// Space delegation (double space pool) and the adaptive commit machinery
// are wired here.
//
// The client is shard-aware: namespace ops (create/open/remove) route by
// the ShardMap's (dir, name) hash, per-file ops (layout/commit/stat)
// route by the shard tag in the FileId, and the delegation machinery
// keeps one double space pool per shard — a file's space always comes
// from its home shard's disjoint partition, so frees and recovery stay
// shard-local. A single-shard deployment behaves exactly as before.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/commit_daemon.hpp"
#include "client/commit_queue.hpp"
#include "client/compound_controller.hpp"
#include "client/page_cache.hpp"
#include "client/space_pool.hpp"
#include "core/shard_map.hpp"
#include "fsapi/fs_client.hpp"
#include "net/rpc.hpp"
#include "obs/obs.hpp"
#include "storage/disk_array.hpp"

namespace redbud::client {

enum class CommitMode : std::uint8_t {
  kSync,      // original Redbud ordered writes
  kDelayed,   // the paper's contribution
  kUnordered  // broken ordering (crash-consistency demonstrations only)
};

// The immutable "personality" of a client fleet: everything about a
// client's behaviour that does not depend on which client it is. One
// shared instance configures an arbitrary number of clients — a fleet of
// 10^5 flyweight clients carries one personality table, not 10^5 copies
// of the pool/compound/retry parameter blocks.
struct ClientPersonality {
  CommitMode mode = CommitMode::kDelayed;
  bool delegation = true;
  std::uint64_t chunk_blocks = (16ull << 20) / storage::kBlockSize;  // 16 MiB
  CommitPoolParams pool;
  CompoundParams compound;
  std::size_t cache_pages = 1 << 18;  // 1 GiB of 4 KiB pages
  // Client-side CPU costs.
  redbud::sim::SimTime cpu_op = redbud::sim::SimTime::micros(5);
  redbud::sim::SimTime cpu_page = redbud::sim::SimTime::micros(1);
  // RPC robustness: retransmit metadata RPCs with exponential backoff (and
  // re-queue unacked commit batches) instead of parking forever on a lossy
  // or crashed shard. Off by default: the fault-free paths stay exactly as
  // they were.
  bool rpc_retry = false;
  net::RetryPolicy retry;
};

// Convenience aggregate for single-client construction: a personality
// plus the one per-client field. Cluster splits this into one shared
// personality for the whole fleet.
struct ClientFsParams : ClientPersonality {
  // Identity used for metric labels and Perfetto track grouping; the
  // Cluster numbers its clients 0..nclients-1.
  std::uint32_t client_id = 0;
};

using OpenResult = fsapi::OpenResult;
using ReadResult = fsapi::ReadResult;

class ClientFs final : public fsapi::FsClient {
 public:
  // `mds_shards[s]` is the endpoint of metadata shard s; `smap` decides
  // which shard each operation targets. Single-MDS callers pass a
  // one-element vector and ShardMap(1).
  ClientFs(redbud::sim::Simulation& sim, net::Network& network,
           const core::ShardMap& smap,
           std::vector<net::RpcEndpoint*> mds_shards,
           storage::DiskArray& array, ClientFsParams params);
  // Flyweight form: the fleet's shared personality plus this client's id.
  ClientFs(redbud::sim::Simulation& sim, net::Network& network,
           const core::ShardMap& smap,
           std::vector<net::RpcEndpoint*> mds_shards,
           storage::DiskArray& array,
           std::shared_ptr<const ClientPersonality> personality,
           std::uint32_t client_id);
  ClientFs(const ClientFs&) = delete;
  ClientFs& operator=(const ClientFs&) = delete;

  // Spawn background machinery (commit daemons in delayed mode). Once.
  void start();

  // Attach the cluster's observability bundle: names this client's
  // Perfetto tracks, registers client/cache/queue/pool/RPC instruments
  // under {client=params.client_id} and arms op-span minting at every
  // entry point. Call before start(); without it the client runs fully
  // untracked (the pre-observability behaviour).
  void set_obs(obs::Obs* obs);

  // --- file operations (all awaitable futures) ------------------------------
  [[nodiscard]] redbud::sim::SimFuture<net::FileId> create(
      net::DirId dir, std::string name) override;
  [[nodiscard]] redbud::sim::SimFuture<OpenResult> open(
      net::DirId dir, std::string name) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> write(
      net::FileId file, std::uint64_t offset_bytes,
      std::uint32_t nbytes) override;
  [[nodiscard]] redbud::sim::SimFuture<ReadResult> read(
      net::FileId file, std::uint64_t offset_bytes,
      std::uint32_t nbytes) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> fsync(
      net::FileId file) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> close(
      net::FileId file) override;
  [[nodiscard]] redbud::sim::SimFuture<net::Status> remove(
      net::DirId dir, std::string name) override;

  // Token the most recent write stored for (file, block) — lets workloads
  // verify read-back without tracking contents themselves.
  [[nodiscard]] storage::ContentToken expected_token(
      net::FileId file, std::uint64_t block) const override;
  [[nodiscard]] std::uint64_t known_size(net::FileId file) const;

  // --- introspection ----------------------------------------------------------
  [[nodiscard]] net::RpcEndpoint& endpoint() { return endpoint_; }
  [[nodiscard]] CommitQueue& commit_queue() { return queue_; }
  [[nodiscard]] CommitDaemonPool& commit_pool() { return pool_daemons_; }
  [[nodiscard]] CompoundController& compound() { return compound_; }
  [[nodiscard]] PageCache& cache() { return cache_; }
  // Shard 0's pool — the whole story on a single-MDS cluster.
  [[nodiscard]] DoubleSpacePool& space_pool() { return pools_[0]; }
  [[nodiscard]] DoubleSpacePool& space_pool(std::uint32_t shard) {
    return pools_[shard];
  }
  [[nodiscard]] const core::ShardMap& shard_map() const { return smap_; }
  [[nodiscard]] const ClientPersonality& personality() const {
    return *persona_;
  }
  [[nodiscard]] std::uint32_t client_id() const { return client_id_; }
  [[nodiscard]] std::uint64_t writes_issued() const { return writes_; }
  [[nodiscard]] std::uint64_t reads_issued() const { return reads_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_; }

 private:
  struct FileState {
    std::uint64_t size_bytes = 0;
    // Layout cache: extents by file block.
    std::map<std::uint64_t, net::Extent> layout;
    // Version per block (drives content tokens).
    std::unordered_map<std::uint64_t, std::uint64_t> versions;
    // In-flight writeback per block (Linux PG_writeback analogue): a page
    // with an outstanding array write may not be written again until that
    // I/O completes, or the elevator could reorder two writes of the same
    // block and let stale data land last on the platter.
    std::unordered_map<std::uint64_t,
                       redbud::sim::SimFuture<redbud::sim::Done>>
        writeback;
  };

  redbud::sim::Process create_proc(net::DirId dir, std::string name,
                                   redbud::sim::SimPromise<net::FileId> p);
  redbud::sim::Process open_proc(net::DirId dir, std::string name,
                                 redbud::sim::SimPromise<OpenResult> p);
  redbud::sim::Process write_proc(net::FileId file, std::uint64_t offset,
                                  std::uint32_t nbytes,
                                  redbud::sim::SimPromise<net::Status> p);
  redbud::sim::Process read_proc(net::FileId file, std::uint64_t offset,
                                 std::uint32_t nbytes,
                                 redbud::sim::SimPromise<ReadResult> p);
  redbud::sim::Process fsync_proc(net::FileId file,
                                  redbud::sim::SimPromise<net::Status> p);
  redbud::sim::Process remove_proc(net::DirId dir, std::string name,
                                   redbud::sim::SimPromise<net::Status> p);
  redbud::sim::Process refill_proc(std::uint32_t shard);
  redbud::sim::Process return_leftovers_proc(std::uint32_t shard);

  // Allocate physical extents for [file_block, file_block + nblocks).
  // Fills `out` (file-block annotated) — may suspend on a delegation
  // refill or a layout-get RPC.
  redbud::sim::Process allocate_space(net::FileId file,
                                      std::uint64_t file_block,
                                      std::uint32_t nblocks,
                                      std::vector<net::Extent>* out,
                                      redbud::sim::SimPromise<net::Status> p);

  void cache_layout(FileState& st, const std::vector<net::Extent>& extents);
  // One metadata RPC under the client's robustness policy: retryable with
  // params_.retry when rpc_retry is on, a plain single-shot call (that can
  // park forever on loss — the historical semantics) otherwise. Always
  // resolves to an RpcResult envelope so call sites handle both uniformly.
  [[nodiscard]] redbud::sim::SimFuture<net::RpcResult> mds_call(
      std::uint32_t shard, net::RequestBody req, obs::TraceContext ctx = {});
  // The commit pool inherits the client's retry policy.
  [[nodiscard]] static CommitPoolParams pool_params(const ClientPersonality& p);
  // Mint the root context of one traced client op (inert when untracked).
  [[nodiscard]] obs::TraceContext begin_op() {
    return obs_ != nullptr ? obs_->tracer.mint() : obs::TraceContext{};
  }
  // Record the op span begun by begin_op() (no-op for inert contexts).
  void end_op(obs::Stage stage, obs::TraceContext ctx,
              redbud::sim::SimTime start, std::uint64_t arg0 = 0) {
    if (obs_ != nullptr && ctx.active()) {
      obs_->tracer.record(stage, ctx, 0, op_track_, start, sim_->now(), arg0);
    }
  }
  [[nodiscard]] FileState& state(net::FileId file) { return files_[file]; }
  // Endpoint of the shard owning `file`.
  [[nodiscard]] net::RpcEndpoint& mds_of(net::FileId file) {
    return *mds_[smap_.shard_of_file(file)];
  }

  redbud::sim::Simulation* sim_;
  core::ShardMap smap_;
  std::vector<net::RpcEndpoint*> mds_;
  storage::DiskArray* array_;
  std::shared_ptr<const ClientPersonality> persona_;
  std::uint32_t client_id_;
  net::NodeId node_;
  net::RpcEndpoint endpoint_;
  PageCache cache_;
  std::vector<DoubleSpacePool> pools_;  // one per shard
  CommitQueue queue_;
  CompoundController compound_;
  CommitDaemonPool pool_daemons_;
  redbud::sim::Signal refill_done_;
  std::vector<std::uint8_t> refill_in_progress_;  // per shard
  // Last refill attempt came back kNoSpace; allocate_space falls back to
  // central allocation instead of re-requesting in a tight loop.
  std::vector<std::uint8_t> refill_failed_;  // per shard
  // Adaptive delegation chunk: halved when the shard's partition cannot
  // produce a contiguous chunk (aged/fragmented volume), doubled back
  // toward params_.chunk_blocks on success.
  std::vector<std::uint64_t> chunk_target_;  // per shard
  bool started_ = false;
  obs::Obs* obs_ = nullptr;
  obs::Track op_track_;  // client track group, fs-op row
  std::unordered_map<net::FileId, FileState> files_;
  std::uint64_t writes_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
};

}  // namespace redbud::client
