// The client's double space pool for space delegation (§IV-A).
//
// Two delegated chunks are kept: the *active* pool serves allocations; when
// it cannot fit the running request, the standby pool is promoted and the
// old active (with its leftover returned to the MDS) becomes the standby
// with the space-need flag set — the client then refills it with a new
// delegate RPC off the critical path. A single allocation never exceeds
// the chunk size, so a swap always succeeds when the standby is filled.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mds/space_manager.hpp"

namespace redbud::client {

class DoubleSpacePool {
 public:
  explicit DoubleSpacePool(std::uint64_t chunk_blocks);

  [[nodiscard]] std::uint64_t chunk_blocks() const { return chunk_blocks_; }

  // True when a request of `nblocks` is pool-eligible (small-file path).
  [[nodiscard]] bool eligible(std::uint64_t nblocks) const {
    return nblocks <= chunk_blocks_;
  }

  // Allocate a contiguous extent from the active pool, swapping in the
  // standby when needed. Returns nullopt when both pools are empty — the
  // caller must refill (and should have refilled the standby already).
  [[nodiscard]] std::optional<mds::PhysExtent> alloc(std::uint64_t nblocks);

  // Does the pool want a new chunk? (standby invalid, or nothing at all)
  [[nodiscard]] bool needs_refill() const;
  // Install a freshly delegated chunk into the first empty slot.
  void install_chunk(mds::PhysExtent chunk);

  // Leftovers of retired pools that should be returned to the MDS; call
  // repeatedly until nullopt.
  [[nodiscard]] std::optional<mds::PhysExtent> take_leftover();
  [[nodiscard]] bool has_leftover() const { return !leftovers_.empty(); }

  [[nodiscard]] std::uint64_t active_free() const;
  [[nodiscard]] std::uint64_t swaps() const { return swaps_; }
  [[nodiscard]] std::uint64_t allocs() const { return allocs_; }

 private:
  struct Pool {
    mds::PhysExtent chunk;
    std::uint64_t used = 0;
    bool valid = false;
    [[nodiscard]] std::uint64_t free() const { return chunk.nblocks - used; }
  };

  Pool active_;
  Pool standby_;
  std::vector<mds::PhysExtent> leftovers_;
  std::uint64_t chunk_blocks_;
  std::uint64_t swaps_ = 0;
  std::uint64_t allocs_ = 0;
};

}  // namespace redbud::client
