#include "client/compound_controller.hpp"

#include <algorithm>
#include <cassert>

namespace redbud::client {

CompoundController::CompoundController(CompoundParams params)
    : params_(params), degree_(params.adaptive ? params.min_degree
                                               : params.fixed_degree) {
  assert(params_.min_degree >= 1);
  assert(params_.max_degree >= params_.min_degree);
}

void CompoundController::on_reply(std::uint32_t mds_queue_len,
                                  redbud::sim::SimTime rtt) {
  constexpr double kAlpha = 0.25;
  if (!primed_) {
    ema_queue_ = mds_queue_len;
    ema_rtt_us_ = rtt.to_micros();
    primed_ = true;
  } else {
    ema_queue_ += kAlpha * (double(mds_queue_len) - ema_queue_);
    ema_rtt_us_ += kAlpha * (rtt.to_micros() - ema_rtt_us_);
  }
  if (!params_.adaptive) return;

  const bool congested = ema_queue_ > double(params_.mds_busy_queue) ||
                         ema_rtt_us_ > params_.rtt_high.to_micros();
  const bool relaxed = ema_queue_ < double(params_.mds_idle_queue) &&
                       ema_rtt_us_ < params_.rtt_low.to_micros();
  if (congested && degree_ < params_.max_degree) {
    ++degree_;
    ++increases_;
  } else if (relaxed && degree_ > params_.min_degree) {
    --degree_;
    ++decreases_;
  }
}

}  // namespace redbud::client
