#include "client/compound_controller.hpp"

#include <algorithm>
#include <cassert>

namespace redbud::client {

CompoundController::CompoundController(CompoundParams params,
                                       std::uint32_t nshards)
    : params_(params) {
  assert(params_.min_degree >= 1);
  assert(params_.max_degree >= params_.min_degree);
  assert(nshards >= 1);
  shards_.resize(nshards);
  for (auto& s : shards_) {
    s.degree = params_.adaptive ? params_.min_degree : params_.fixed_degree;
  }
}

void CompoundController::on_reply(std::uint32_t shard,
                                  std::uint32_t mds_queue_len,
                                  redbud::sim::SimTime rtt) {
  assert(shard < shards_.size());
  ShardState& st = shards_[shard];
  constexpr double kAlpha = 0.25;
  if (!st.primed) {
    st.ema_queue = mds_queue_len;
    st.ema_rtt_us = rtt.to_micros();
    st.primed = true;
  } else {
    st.ema_queue += kAlpha * (double(mds_queue_len) - st.ema_queue);
    st.ema_rtt_us += kAlpha * (rtt.to_micros() - st.ema_rtt_us);
  }
  if (!params_.adaptive) return;

  const bool congested = st.ema_queue > double(params_.mds_busy_queue) ||
                         st.ema_rtt_us > params_.rtt_high.to_micros();
  const bool relaxed = st.ema_queue < double(params_.mds_idle_queue) &&
                       st.ema_rtt_us < params_.rtt_low.to_micros();
  if (congested && st.degree < params_.max_degree) {
    ++st.degree;
    ++increases_;
  } else if (relaxed && st.degree > params_.min_degree) {
    --st.degree;
    ++decreases_;
  }
}

}  // namespace redbud::client
