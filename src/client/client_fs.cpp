#include "client/client_fs.hpp"

#include <algorithm>
#include <cassert>

namespace redbud::client {

using net::Status;
using redbud::sim::Done;
using redbud::sim::Process;
using redbud::sim::SimFuture;
using redbud::sim::SimPromise;
using storage::ContentToken;
using storage::kBlockSize;

namespace {
// Block span covering [offset, offset + nbytes).
struct BlockRange {
  std::uint64_t first;
  std::uint32_t count;
};
BlockRange block_range(std::uint64_t offset, std::uint32_t nbytes) {
  const std::uint64_t first = offset / kBlockSize;
  const std::uint64_t last = (offset + nbytes + kBlockSize - 1) / kBlockSize;
  return {first, static_cast<std::uint32_t>(last - first)};
}
}  // namespace

CommitPoolParams ClientFs::pool_params(const ClientPersonality& p) {
  CommitPoolParams out = p.pool;
  if (p.rpc_retry) {
    out.rpc_retry = true;
    out.retry = p.retry;
  }
  return out;
}

ClientFs::ClientFs(redbud::sim::Simulation& sim, net::Network& network,
                   const core::ShardMap& smap,
                   std::vector<net::RpcEndpoint*> mds_shards,
                   storage::DiskArray& array, ClientFsParams params)
    : ClientFs(sim, network, smap, std::move(mds_shards), array,
               std::make_shared<const ClientPersonality>(params),
               params.client_id) {}

ClientFs::ClientFs(redbud::sim::Simulation& sim, net::Network& network,
                   const core::ShardMap& smap,
                   std::vector<net::RpcEndpoint*> mds_shards,
                   storage::DiskArray& array,
                   std::shared_ptr<const ClientPersonality> personality,
                   std::uint32_t client_id)
    : sim_(&sim),
      smap_(smap),
      mds_(std::move(mds_shards)),
      array_(&array),
      persona_(std::move(personality)),
      client_id_(client_id),
      node_(network.add_node(sim)),
      endpoint_(sim, network, node_),
      cache_(persona_->cache_pages),
      pools_(smap.nshards(), DoubleSpacePool(persona_->chunk_blocks)),
      queue_(sim),
      compound_(persona_->compound, smap.nshards()),
      pool_daemons_(sim, queue_, endpoint_, mds_, compound_, cache_,
                    pool_params(*persona_)),
      refill_done_(sim),
      refill_in_progress_(smap.nshards(), 0),
      refill_failed_(smap.nshards(), 0),
      chunk_target_(smap.nshards(), persona_->chunk_blocks) {
  assert(mds_.size() == smap_.nshards());
}

void ClientFs::start() {
  assert(!started_);
  started_ = true;
  if (persona_->mode == CommitMode::kDelayed) pool_daemons_.start();
}

void ClientFs::set_obs(obs::Obs* obs) {
  obs_ = obs;
  const std::uint32_t id = client_id_;
  const std::uint32_t pid = obs::client_track(id);
  op_track_ = obs::Track{pid, 1};
  const std::string process = "client " + std::to_string(id);
  obs->tracer.name_track({pid, 1}, process, "fs ops");
  obs->tracer.name_track({pid, 2}, process, "commit queue");
  obs->tracer.name_track({pid, 3}, process, "commit daemons");
  obs->tracer.name_track({pid, 4}, process, "rpc");

  const obs::Labels labels{{"client", std::to_string(id)}};
  auto& reg = obs->registry;
  reg.register_value("client_fs.writes", labels, &writes_);
  reg.register_value("client_fs.reads", labels, &reads_);
  reg.register_value("client_fs.bytes_written", labels, &bytes_written_);
  reg.register_value("client_fs.bytes_read", labels, &bytes_read_);
  cache_.register_metrics(reg, labels);
  endpoint_.set_obs(obs, obs::Track{pid, 4}, labels);
  queue_.set_obs(obs, id);
  pool_daemons_.set_obs(obs, id);
}

// --- public API -----------------------------------------------------------------

SimFuture<net::FileId> ClientFs::create(net::DirId dir, std::string name) {
  SimPromise<net::FileId> p(*sim_);
  auto fut = p.future();
  sim_->spawn(create_proc(dir, std::move(name), std::move(p)));
  return fut;
}

SimFuture<OpenResult> ClientFs::open(net::DirId dir, std::string name) {
  SimPromise<OpenResult> p(*sim_);
  auto fut = p.future();
  sim_->spawn(open_proc(dir, std::move(name), std::move(p)));
  return fut;
}

SimFuture<Status> ClientFs::write(net::FileId file, std::uint64_t offset,
                                  std::uint32_t nbytes) {
  SimPromise<Status> p(*sim_);
  auto fut = p.future();
  sim_->spawn(write_proc(file, offset, nbytes, std::move(p)));
  return fut;
}

SimFuture<ReadResult> ClientFs::read(net::FileId file, std::uint64_t offset,
                                     std::uint32_t nbytes) {
  SimPromise<ReadResult> p(*sim_);
  auto fut = p.future();
  sim_->spawn(read_proc(file, offset, nbytes, std::move(p)));
  return fut;
}

SimFuture<Status> ClientFs::fsync(net::FileId file) {
  SimPromise<Status> p(*sim_);
  auto fut = p.future();
  sim_->spawn(fsync_proc(file, std::move(p)));
  return fut;
}

SimFuture<Status> ClientFs::close(net::FileId file) {
  // Delayed commit's headline latency win: close does not wait for the
  // file's pending commits; the file system keeps the order in background.
  (void)file;
  SimPromise<Status> p(*sim_);
  auto fut = p.future();
  p.set_value(Status::kOk);
  return fut;
}

SimFuture<Status> ClientFs::remove(net::DirId dir, std::string name) {
  SimPromise<Status> p(*sim_);
  auto fut = p.future();
  sim_->spawn(remove_proc(dir, std::move(name), std::move(p)));
  return fut;
}

ContentToken ClientFs::expected_token(net::FileId file,
                                      std::uint64_t block) const {
  auto fit = files_.find(file);
  if (fit == files_.end()) return storage::kUnwrittenToken;
  auto vit = fit->second.versions.find(block);
  if (vit == fit->second.versions.end()) return storage::kUnwrittenToken;
  return storage::make_token(file, block, vit->second);
}

std::uint64_t ClientFs::known_size(net::FileId file) const {
  auto fit = files_.find(file);
  return fit == files_.end() ? 0 : fit->second.size_bytes;
}

// --- processes ------------------------------------------------------------------

redbud::sim::SimFuture<net::RpcResult> ClientFs::mds_call(
    std::uint32_t shard, net::RequestBody req, obs::TraceContext ctx) {
  if (persona_->rpc_retry) {
    return endpoint_.call_retry(*mds_[shard], std::move(req), persona_->retry,
                                ctx);
  }
  return endpoint_.call_result(*mds_[shard], std::move(req), ctx);
}

Process ClientFs::create_proc(net::DirId dir, std::string name,
                              SimPromise<net::FileId> p) {
  const obs::TraceContext octx = begin_op();
  const auto op_start = sim_->now();
  co_await sim_->delay(persona_->cpu_op);
  const std::uint32_t shard = smap_.shard_of_name(dir, name);
  net::RequestBody req = net::CreateReq{dir, std::move(name)};
  auto fut = mds_call(shard, std::move(req), octx);
  auto res = co_await fut;
  if (!res.ok) {
    end_op(obs::Stage::kClientMeta, octx, op_start, net::kInvalidFile);
    p.set_value(net::kInvalidFile);
    co_return;
  }
  const auto& cr = std::get<net::CreateResp>(res.body);
  // Under at-least-once retry a lost reply re-executes the create, so a
  // kExists answer on a retransmitted attempt IS our own earlier success —
  // the server returns the existing id for exactly this case.
  const bool created = cr.status == Status::kOk;
  const bool retried_dup = cr.status == Status::kExists &&
                           res.attempts > 1 && cr.file != net::kInvalidFile;
  if (created || retried_dup) files_[cr.file];  // fresh state
  end_op(obs::Stage::kClientMeta, octx, op_start, cr.file);
  p.set_value(created || retried_dup ? cr.file : net::kInvalidFile);
}

Process ClientFs::open_proc(net::DirId dir, std::string name,
                            SimPromise<OpenResult> p) {
  const obs::TraceContext octx = begin_op();
  const auto op_start = sim_->now();
  co_await sim_->delay(persona_->cpu_op);
  const std::uint32_t shard = smap_.shard_of_name(dir, name);
  net::RequestBody req = net::LookupReq{dir, std::move(name)};
  auto fut = mds_call(shard, std::move(req), octx);
  auto res = co_await fut;
  if (!res.ok) {
    end_op(obs::Stage::kClientMeta, octx, op_start, net::kInvalidFile);
    p.set_value(OpenResult{Status::kUnavailable, net::kInvalidFile, 0});
    co_return;
  }
  const auto& lr = std::get<net::LookupResp>(res.body);
  OpenResult out;
  out.status = lr.status;
  out.file = lr.file;
  out.size_bytes = lr.size_bytes;
  if (lr.status == Status::kOk) {
    auto& st = state(lr.file);
    st.size_bytes = std::max(st.size_bytes, lr.size_bytes);
  }
  end_op(obs::Stage::kClientMeta, octx, op_start, lr.file);
  p.set_value(out);
}

void ClientFs::cache_layout(FileState& st,
                            const std::vector<net::Extent>& extents) {
  for (const auto& e : extents) st.layout[e.file_block] = e;
}

Process ClientFs::allocate_space(net::FileId file, std::uint64_t file_block,
                                 std::uint32_t nblocks,
                                 std::vector<net::Extent>* out,
                                 SimPromise<Status> p) {
  // Reuse extents already known from the layout cache (overwrites), and
  // collect the holes that still need fresh space.
  struct Hole {
    std::uint64_t block;
    std::uint32_t count;
  };
  std::vector<Hole> holes;
  {
    FileState& st = state(file);
    std::uint64_t cursor = file_block;
    const std::uint64_t end = file_block + nblocks;
    while (cursor < end) {
      // Find a cached extent containing `cursor`.
      const net::Extent* covering = nullptr;
      auto it = st.layout.upper_bound(cursor);
      if (it != st.layout.begin()) {
        auto prev = std::prev(it);
        if (prev->second.end_block() > cursor) covering = &prev->second;
      }
      if (covering) {
        const std::uint64_t take =
            std::min<std::uint64_t>(end, covering->end_block()) - cursor;
        net::Extent e;
        e.file_block = cursor;
        e.nblocks = static_cast<std::uint32_t>(take);
        e.addr.device = covering->addr.device;
        e.addr.block =
            covering->addr.block + (cursor - covering->file_block);
        out->push_back(e);
        cursor += take;
      } else {
        const std::uint64_t next =
            it == st.layout.end() ? end : std::min(end, it->first);
        holes.push_back(Hole{cursor, static_cast<std::uint32_t>(next - cursor)});
        cursor = next;
      }
    }
  }

  // All of a file's space comes from its home shard: the shard's pool for
  // delegated allocations, the shard's MDS for central ones. That keeps
  // every extent inside the shard's disjoint device partition, so frees
  // and recovery never cross shards.
  const std::uint32_t shard = smap_.shard_of_file(file);
  DoubleSpacePool& pool = pools_[shard];
  for (const auto& hole : holes) {
    bool central = !(persona_->delegation && pool.eligible(hole.count));
    if (!central) {
      // Local allocation from the delegated double space pool.
      for (;;) {
        if (auto got = pool.alloc(hole.count)) {
          net::Extent e;
          e.file_block = hole.block;
          e.nblocks = hole.count;
          e.addr = got->addr;
          out->push_back(e);
          break;
        }
        if (refill_failed_[shard]) {
          // The shard's partition could not produce a contiguous chunk
          // just now. Take this hole through central allocation (which
          // can splice small runs) instead of spinning on delegation;
          // the next refill attempt will try a smaller chunk.
          refill_failed_[shard] = 0;
          central = true;
          break;
        }
        if (!refill_in_progress_[shard]) {
          refill_in_progress_[shard] = 1;
          sim_->spawn(refill_proc(shard));
        }
        co_await refill_done_.wait();
      }
      // Keep the standby pool filled off the critical path.
      if (pool.needs_refill() && !refill_in_progress_[shard]) {
        refill_in_progress_[shard] = 1;
        sim_->spawn(refill_proc(shard));
      }
      if (pool.has_leftover()) sim_->spawn(return_leftovers_proc(shard));
    }
    if (central) {
      // Central allocation at the MDS. A duplicate execution under retry
      // just allocates twice — the extra extents age out as orphans, which
      // recovery reclaims; nothing references them.
      net::RequestBody req =
          net::LayoutGetReq{file, hole.block, hole.count, true};
      auto fut = mds_call(shard, std::move(req));
      auto res = co_await fut;
      if (!res.ok) {
        p.set_value(Status::kUnavailable);
        co_return;
      }
      const auto& lg = std::get<net::LayoutGetResp>(res.body);
      if (lg.status != Status::kOk) {
        p.set_value(lg.status);
        co_return;
      }
      for (const auto& e : lg.extents) out->push_back(e);
    }
  }

  std::sort(out->begin(), out->end(),
            [](const net::Extent& a, const net::Extent& b) {
              return a.file_block < b.file_block;
            });
  cache_layout(state(file), *out);
  p.set_value(Status::kOk);
}

Process ClientFs::refill_proc(std::uint32_t shard) {
  net::RequestBody req = net::DelegateReq{chunk_target_[shard]};
  auto fut = mds_call(shard, std::move(req));
  auto res = co_await fut;
  refill_in_progress_[shard] = 0;
  if (!res.ok) {
    // Shard unreachable: make waiters fall back to central allocation
    // (which will surface kUnavailable if the outage persists) instead of
    // spinning on delegation.
    refill_failed_[shard] = 1;
    refill_done_.notify_all();
    co_return;
  }
  const auto& dr = std::get<net::DelegateResp>(res.body);
  if (dr.status == Status::kOk) {
    pools_[shard].install_chunk(mds::PhysExtent{dr.start, dr.nblocks});
    refill_failed_[shard] = 0;
    // Recover the chunk size gradually after a shrink.
    chunk_target_[shard] =
        std::min(persona_->chunk_blocks, chunk_target_[shard] * 2);
  } else {
    // An aged partition may have no contiguous run of the requested size
    // left. Ask for half next time rather than hammering the MDS, and
    // let waiters fall back to central allocation meanwhile.
    refill_failed_[shard] = 1;
    chunk_target_[shard] = std::max<std::uint64_t>(64, chunk_target_[shard] / 2);
  }
  refill_done_.notify_all();
}

Process ClientFs::return_leftovers_proc(std::uint32_t shard) {
  // Leftovers go back to the shard that granted them.
  while (auto leftover = pools_[shard].take_leftover()) {
    net::RequestBody req =
        net::DelegateReturnReq{leftover->addr, leftover->nblocks};
    auto fut = mds_call(shard, std::move(req));
    // A return that never lands just leaves the blocks delegated-but-idle:
    // they show up as reclaimable orphans, never as corruption.
    (void)co_await fut;
  }
}

Process ClientFs::write_proc(net::FileId file, std::uint64_t offset,
                             std::uint32_t nbytes, SimPromise<Status> p) {
  const obs::TraceContext octx = begin_op();
  const auto op_start = sim_->now();
  ++writes_;
  bytes_written_ += nbytes;
  const BlockRange range = block_range(offset, nbytes);
  co_await sim_->delay(persona_->cpu_op +
                       persona_->cpu_page * std::int64_t(range.count));

  // Content tokens: one fresh version per page touched.
  std::vector<ContentToken> tokens(range.count);
  {
    FileState& st = state(file);
    for (std::uint32_t i = 0; i < range.count; ++i) {
      const std::uint64_t blk = range.first + i;
      const std::uint64_t ver = ++st.versions[blk];
      tokens[i] = storage::make_token(file, blk, ver);
      cache_.put_dirty(file, blk, tokens[i]);
    }
    st.size_bytes = std::max(st.size_bytes, offset + nbytes);
  }

  // Physical space.
  std::vector<net::Extent> extents;
  {
    SimPromise<Status> ap(*sim_);
    auto afut = ap.future();
    sim_->spawn(
        allocate_space(file, range.first, range.count, &extents, std::move(ap)));
    const Status ast = co_await afut;
    if (ast != Status::kOk) {
      p.set_value(ast);
      co_return;
    }
  }

  // Writeback ordering: wait out any in-flight array write that still
  // covers one of this write's pages (rewriting a page whose previous
  // writeback has not completed could be reordered by the elevator).
  {
    std::vector<SimFuture<Done>> waits;
    FileState& st = state(file);
    for (std::uint32_t i = 0; i < range.count; ++i) {
      auto it = st.writeback.find(range.first + i);
      if (it == st.writeback.end()) continue;
      if (it->second.ready()) {
        st.writeback.erase(it);
      } else {
        waits.push_back(it->second);
      }
    }
    for (auto& f : waits) co_await f;
  }

  // Issue writepage: one array write per extent.
  std::vector<SimFuture<Done>> data_futures;
  {
    std::size_t ti = 0;
    FileState& st = state(file);
    for (const auto& e : extents) {
      std::vector<ContentToken> slice(tokens.begin() + std::ptrdiff_t(ti),
                                      tokens.begin() +
                                          std::ptrdiff_t(ti + e.nblocks));
      auto fut = array_->write(*sim_, e.addr, e.nblocks, std::move(slice));
      for (std::uint32_t b = 0; b < e.nblocks; ++b) {
        st.writeback[e.file_block + b] = fut;
      }
      data_futures.push_back(std::move(fut));
      ti += e.nblocks;
    }
    assert(ti == tokens.size());
  }

  const std::uint64_t new_size = state(file).size_bytes;

  switch (persona_->mode) {
    case CommitMode::kSync: {
      // Ordered writes on the critical path: data durable first, then the
      // metadata commit RPC, then return.
      for (auto& f : data_futures) co_await f;
      net::CommitReq creq;
      creq.entries.push_back(
          net::CommitEntry{file, extents, new_size, tokens});
      net::RequestBody req = std::move(creq);
      auto fut = mds_call(smap_.shard_of_file(file), std::move(req), octx);
      const auto res = co_await fut;
      if (!res.ok) {
        // Data is on disk but the commit never got acked: the pages stay
        // dirty and the caller sees the failure — nothing claims the
        // update is durable-ordered when it is not.
        p.set_value(Status::kUnavailable);
        break;
      }
      for (std::uint32_t i = 0; i < range.count; ++i) {
        cache_.mark_clean(file, range.first + i);
      }
      p.set_value(Status::kOk);
      break;
    }
    case CommitMode::kDelayed: {
      // Backpressure: the paper's adaptive pool is parameterised by
      // QueueLen_max; incoming commit requests slow down when the queue
      // is full ("slowing down the incoming commit requests", §IV-B).
      while (queue_.size() >= persona_->pool.max_queue_len) {
        co_await queue_.space().wait();
      }
      // Hand order-keeping to the file system and return immediately.
      queue_.add(file, std::move(extents), std::move(tokens), new_size,
                 std::move(data_futures), octx);
      p.set_value(Status::kOk);
      break;
    }
    case CommitMode::kUnordered: {
      // Deliberately broken: the commit races the data write. Used only to
      // demonstrate the crash inconsistency ordered writes prevent.
      net::CommitReq creq;
      creq.entries.push_back(
          net::CommitEntry{file, extents, new_size, tokens});
      net::RequestBody req = std::move(creq);
      auto fut = mds_call(smap_.shard_of_file(file), std::move(req), octx);
      (void)co_await fut;
      p.set_value(Status::kOk);
      break;
    }
  }
  end_op(obs::Stage::kClientWrite, octx, op_start, file);
}

Process ClientFs::read_proc(net::FileId file, std::uint64_t offset,
                            std::uint32_t nbytes, SimPromise<ReadResult> p) {
  const obs::TraceContext octx = begin_op();
  const auto op_start = sim_->now();
  ++reads_;
  bytes_read_ += nbytes;
  const BlockRange range = block_range(offset, nbytes);
  co_await sim_->delay(persona_->cpu_op +
                       persona_->cpu_page * std::int64_t(range.count));

  ReadResult out;
  out.tokens.assign(range.count, storage::kUnwrittenToken);
  std::vector<bool> have(range.count, false);
  bool all_hit = true;
  for (std::uint32_t i = 0; i < range.count; ++i) {
    if (auto tok = cache_.get(file, range.first + i)) {
      out.tokens[i] = *tok;
      have[i] = true;
    } else {
      all_hit = false;
    }
  }
  if (all_hit) {
    end_op(obs::Stage::kClientRead, octx, op_start, file);
    p.set_value(std::move(out));
    co_return;
  }

  // Make sure the layout cache covers the requested range; ask the MDS for
  // the committed layout when it does not.
  {
    FileState& st = state(file);
    bool covered = true;
    for (std::uint32_t i = 0; i < range.count && covered; ++i) {
      if (have[i]) continue;
      const std::uint64_t blk = range.first + i;
      auto it = st.layout.upper_bound(blk);
      if (it == st.layout.begin() ||
          std::prev(it)->second.end_block() <= blk) {
        covered = false;
      }
    }
    if (!covered) {
      net::RequestBody req =
          net::LayoutGetReq{file, range.first, range.count, false};
      auto fut = mds_call(smap_.shard_of_file(file), std::move(req), octx);
      auto res = co_await fut;
      if (!res.ok) {
        out.status = Status::kUnavailable;
        p.set_value(std::move(out));
        co_return;
      }
      const auto& lg = std::get<net::LayoutGetResp>(res.body);
      if (lg.status != Status::kOk) {
        out.status = lg.status;
        p.set_value(std::move(out));
        co_return;
      }
      cache_layout(state(file), lg.extents);
    }
  }

  // Fetch missing runs from the array, grouped per physical extent.
  struct Fetch {
    std::uint32_t index;  // into out.tokens
    storage::PhysAddr addr;
    std::uint32_t count;
    SimFuture<Done> fut;  // serial path: completion signal, then peek()
    SimFuture<std::vector<storage::ContentToken>> tfut;  // parallel path
  };
  const bool parallel_array = array_->parallel();
  std::vector<Fetch> fetches;
  {
    FileState& st = state(file);
    std::uint32_t i = 0;
    while (i < range.count) {
      if (have[i]) {
        ++i;
        continue;
      }
      const std::uint64_t blk = range.first + i;
      const net::Extent* covering = nullptr;
      auto it = st.layout.upper_bound(blk);
      if (it != st.layout.begin()) {
        auto prev = std::prev(it);
        if (prev->second.end_block() > blk) covering = &prev->second;
      }
      if (!covering) {
        ++i;  // hole: reads back as unwritten
        continue;
      }
      std::uint32_t run = 1;
      while (i + run < range.count && !have[i + run] &&
             blk + run < covering->end_block()) {
        ++run;
      }
      storage::PhysAddr addr{covering->addr.device,
                             covering->addr.block +
                                 (blk - covering->file_block)};
      if (parallel_array) {
        // The array lives in another partition: the tokens travel with
        // the completion instead of being peeked from the device.
        fetches.push_back(
            Fetch{i, addr, run, {}, array_->read_tokens(*sim_, addr, run)});
      } else {
        fetches.push_back(Fetch{i, addr, run, array_->read(addr, run), {}});
      }
      i += run;
    }
  }
  for (auto& f : fetches) {
    std::vector<storage::ContentToken> toks;
    if (parallel_array) {
      toks = co_await f.tfut;
    } else {
      co_await f.fut;
      toks = array_->peek(f.addr, f.count);
    }
    for (std::uint32_t k = 0; k < f.count; ++k) {
      out.tokens[f.index + k] = toks[k];
      cache_.put_clean(file, range.first + f.index + k, toks[k]);
    }
  }
  end_op(obs::Stage::kClientRead, octx, op_start, file);
  p.set_value(std::move(out));
}

Process ClientFs::fsync_proc(net::FileId file, SimPromise<Status> p) {
  const obs::TraceContext octx = begin_op();
  const auto op_start = sim_->now();
  co_await sim_->delay(persona_->cpu_op);
  if (persona_->mode == CommitMode::kDelayed) {
    auto fut = queue_.wait_committed(file);
    co_await fut;
  }
  // Sync mode: every write already waited for durability + commit.
  end_op(obs::Stage::kClientFsync, octx, op_start, file);
  p.set_value(Status::kOk);
}

Process ClientFs::remove_proc(net::DirId dir, std::string name,
                              SimPromise<Status> p) {
  const obs::TraceContext octx = begin_op();
  const auto op_start = sim_->now();
  co_await sim_->delay(persona_->cpu_op);
  // The entry's shard serves both the lookup and the remove.
  const std::uint32_t shard = smap_.shard_of_name(dir, name);
  // Resolve the id so local state can be dropped.
  net::RequestBody lreq = net::LookupReq{dir, name};
  auto lfut = mds_call(shard, std::move(lreq));
  auto lres = co_await lfut;
  if (!lres.ok) {
    end_op(obs::Stage::kClientMeta, octx, op_start);
    p.set_value(Status::kUnavailable);
    co_return;
  }
  const auto& lr = std::get<net::LookupResp>(lres.body);
  if (lr.status == Status::kOk) {
    queue_.drop(lr.file);
    cache_.invalidate_file(lr.file);
    files_.erase(lr.file);
  }
  net::RequestBody req = net::RemoveReq{dir, std::move(name)};
  auto fut = mds_call(shard, std::move(req), octx);
  auto res = co_await fut;
  end_op(obs::Stage::kClientMeta, octx, op_start);
  if (!res.ok) {
    p.set_value(Status::kUnavailable);
    co_return;
  }
  const auto st = std::get<net::RemoveResp>(res.body).status;
  // kNoEnt on a retransmitted attempt means our own earlier attempt
  // already removed the entry (the reply was lost with the crash).
  p.set_value(st == Status::kNoEnt && res.attempts > 1 ? Status::kOk : st);
}

}  // namespace redbud::client
