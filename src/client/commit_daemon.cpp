#include "client/commit_daemon.hpp"

#include <algorithm>
#include <cassert>

namespace redbud::client {

using redbud::sim::Process;
using redbud::sim::SimTime;

CommitDaemonPool::CommitDaemonPool(redbud::sim::Simulation& sim,
                                   CommitQueue& queue, net::RpcEndpoint& self,
                                   std::vector<net::RpcEndpoint*> mds_shards,
                                   CompoundController& compound,
                                   PageCache& cache, CommitPoolParams params)
    : sim_(&sim),
      queue_(&queue),
      self_(&self),
      mds_(std::move(mds_shards)),
      compound_(&compound),
      cache_(&cache),
      params_(params) {
  assert(params_.max_threads >= 1 && params_.max_queue_len >= 1);
  assert(!mds_.empty());
}

void CommitDaemonPool::set_obs(obs::Obs* obs, std::uint32_t client_id) {
  obs_ = obs;
  track_ = obs::Track{obs::client_track(client_id), 3};
  const obs::Labels labels{{"client", std::to_string(client_id)}};
  obs->registry.register_value("commit_pool.rpcs_sent", labels, &rpcs_sent_);
  obs->registry.register_value("commit_pool.entries_committed", labels,
                               &entries_committed_);
  obs->registry.register_value("commit_pool.batches_requeued", labels,
                               &batches_requeued_);
}

void CommitDaemonPool::start() {
  assert(!started_);
  started_ = true;
  const std::uint32_t initial =
      params_.adaptive_threads ? 1 : params_.fixed_threads;
  for (std::uint32_t i = 0; i < initial; ++i) {
    ++live_threads_;
    sim_->spawn(daemon());
  }
  if (params_.adaptive_threads) sim_->spawn(controller());
}

std::uint32_t CommitDaemonPool::target_threads() const {
  // ThreadNums = rho * QueueLen, rho = max_threads / max_queue.
  const double rho =
      double(params_.max_threads) / double(params_.max_queue_len);
  const auto target =
      static_cast<std::uint32_t>(rho * double(queue_->size()) + 0.999);
  return std::clamp<std::uint32_t>(target, 1, params_.max_threads);
}

Process CommitDaemonPool::controller() {
  for (;;) {
    co_await sim_->delay(params_.control_interval);
    const std::uint32_t target = target_threads();
    while (live_threads_ < target) {
      ++live_threads_;
      sim_->spawn(daemon());
    }
    if (live_threads_ > target) {
      exit_requests_ = live_threads_ - target;
      // Idle daemons park on the work signal; nudge them so they can
      // observe the shrink request.
      queue_->work().notify_all();
    }
  }
}

Process CommitDaemonPool::daemon() {
  for (;;) {
    // Honour shrink requests between batches ("a certain thread
    // terminates to keep proper thread numbers"), but never below one.
    if (exit_requests_ > 0 && live_threads_ > 1) {
      --exit_requests_;
      break;
    }
    if (queue_->empty()) {
      co_await queue_->work().wait();
      continue;
    }
    const auto ready_shard = queue_->first_ready_shard();
    if (!ready_shard) {
      // Entries exist but their data writes are still in flight: poll.
      co_await sim_->delay(params_.poll_interval);
      continue;
    }
    auto batch = queue_->checkout(compound_->degree(*ready_shard));
    if (batch.empty()) {
      co_await sim_->delay(params_.poll_interval);
      continue;
    }
    const std::uint32_t shard = batch.front().shard;
    const SimTime checkout_at = sim_->now();

    net::CommitReq req;
    req.entries.reserve(batch.size());
    for (const auto& task : batch) {
      net::CommitEntry e;
      e.file = task.file;
      e.extents = task.extents;
      e.new_size_bytes = task.new_size_bytes;
      e.block_tokens = task.block_tokens;
      req.entries.push_back(std::move(e));
    }

    // The batch's chain gets its own trace; per-update commit-e2e spans
    // link to it via the checkout-batch span id (ack's batch_span).
    obs::TraceContext bctx;
    if (obs_ != nullptr && obs_->tracer.enabled()) {
      bool traced = false;
      for (const auto& task : batch) traced = traced || !task.traces.empty();
      if (traced) bctx = obs_->tracer.mint();
    }

    const SimTime sent_at = sim_->now();
    if (bctx.active()) {
      obs_->tracer.record(obs::Stage::kCheckoutBatch, bctx, 0, track_,
                          checkout_at, sent_at, batch.size(), shard);
    }
    net::CommitResp cr;
    if (params_.rpc_retry) {
      auto fut =
          self_->call_retry(*mds_[shard], std::move(req), params_.retry, bctx);
      auto res = co_await fut;
      if (!res.ok) {
        // The shard stayed dark past the whole backoff ladder. Nothing was
        // acked, so nothing may be dropped: push every task back onto the
        // queue (requeue merges with any newer dirty state for the same
        // file) and let a later daemon pass re-send it after failover.
        ++batches_requeued_;
        for (auto& task : batch) queue_->requeue(std::move(task));
        continue;
      }
      cr = std::get<net::CommitResp>(res.body);
    } else {
      auto fut = self_->call(*mds_[shard], std::move(req), bctx);
      auto resp = co_await fut;
      cr = std::get<net::CommitResp>(resp);
    }
    ++rpcs_sent_;
    entries_committed_ += batch.size();
    compound_->on_reply(shard, cr.mds_queue_len, sim_->now() - sent_at);

    for (auto& task : batch) {
      for (const auto& e : task.extents) {
        for (std::uint32_t b = 0; b < e.nblocks; ++b) {
          cache_->mark_clean(task.file, e.file_block + b);
        }
      }
      queue_->ack(task, bctx.span);
    }
  }
  --live_threads_;
}

Process CommitDaemonPool::tracer(SimTime interval) {
  for (;;) {
    thread_series_.record(sim_->now(), double(live_threads_));
    queue_series_.record(sim_->now(), double(queue_->size()));
    co_await sim_->delay(interval);
  }
}

void CommitDaemonPool::enable_tracing(SimTime sample_interval) {
  if (tracing_) return;
  tracing_ = true;
  sim_->spawn(tracer(sample_interval));
}

}  // namespace redbud::client
