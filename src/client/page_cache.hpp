// Client page cache.
//
// Pages are keyed by (file, file block) and hold the content token the
// client wrote or read. Dirty pages — written but not yet committed — are
// pinned: they cannot be evicted, because delayed commit relies on the
// client cache to serve reads of not-yet-committed data (the paper's
// "conflict reads"). Clean pages are evicted in LRU order when the cache
// is full.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/protocol.hpp"
#include "obs/metrics_registry.hpp"
#include "storage/types.hpp"

namespace redbud::client {

class PageCache {
 public:
  explicit PageCache(std::size_t capacity_pages);

  // Insert or refresh a dirty (uncommitted) page. Dirty pages are pinned.
  void put_dirty(net::FileId file, std::uint64_t block,
                 storage::ContentToken token);
  // Insert or refresh a clean page (read from the array, or committed).
  void put_clean(net::FileId file, std::uint64_t block,
                 storage::ContentToken token);
  // Transition a dirty page to clean (commit acknowledged); no-op if the
  // page was re-dirtied or dropped meanwhile.
  void mark_clean(net::FileId file, std::uint64_t block);

  [[nodiscard]] std::optional<storage::ContentToken> get(net::FileId file,
                                                         std::uint64_t block);
  [[nodiscard]] bool is_dirty(net::FileId file, std::uint64_t block) const;

  void invalidate_file(net::FileId file);

  // Enumerate the dirty pages of one file (block, token), unordered.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, storage::ContentToken>>
  dirty_pages_of(net::FileId file) const;

  [[nodiscard]] std::size_t size() const { return pages_.size(); }
  [[nodiscard]] std::size_t dirty_count() const { return dirty_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  // Register this cache's counters with the central registry.
  void register_metrics(obs::MetricsRegistry& reg,
                        const obs::Labels& labels) const {
    reg.register_value("page_cache.hits", labels, &hits_);
    reg.register_value("page_cache.misses", labels, &misses_);
    reg.register_value("page_cache.evictions", labels, &evictions_);
  }

 private:
  struct Key {
    net::FileId file;
    std::uint64_t block;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}(k.file * 0x9E3779B97F4A7C15ULL ^
                                        k.block);
    }
  };
  struct Page {
    storage::ContentToken token;
    bool dirty;
    std::list<Key>::iterator lru_it;  // valid only when clean
  };

  void insert(net::FileId file, std::uint64_t block,
              storage::ContentToken token, bool dirty);
  void evict_if_needed();
  void drop_dirty_index(net::FileId file, std::uint64_t block);

  std::size_t capacity_;
  std::unordered_map<Key, Page, KeyHash> pages_;
  // Per-file dirty-block index so flushes never scan the whole cache.
  std::unordered_map<net::FileId, std::unordered_set<std::uint64_t>>
      dirty_index_;
  std::list<Key> lru_;  // clean pages, most recent at front
  std::size_t dirty_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace redbud::client
