// Client page cache.
//
// Pages are keyed by (file, file block) and hold the content token the
// client wrote or read. Dirty pages — written but not yet committed — are
// pinned: they cannot be evicted, because delayed commit relies on the
// client cache to serve reads of not-yet-committed data (the paper's
// "conflict reads"). Clean pages are evicted in LRU order when the cache
// is full.
//
// Page frames live in a PageFramePool slab rather than inline in the map:
// a flyweight host shares ONE pool across all its clients' caches, so ten
// thousand mostly-idle clients cost ten thousand empty maps, not ten
// thousand heap arenas. The LRU list is intrusive (frame prev/next
// indices) and strictly per-cache; the pool only recycles storage, it
// never mixes eviction order across caches. A cache constructed without
// an explicit pool owns a private one — the classic one-client path is
// unchanged, byte for byte.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "client/page_pool.hpp"
#include "net/protocol.hpp"
#include "obs/metrics_registry.hpp"
#include "storage/types.hpp"

namespace redbud::client {

class PageCache {
 public:
  explicit PageCache(std::size_t capacity_pages);
  // Flyweight form: frames come from (and return to) a shared host pool.
  PageCache(std::size_t capacity_pages, PageFramePool* pool);
  ~PageCache();

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // Insert or refresh a dirty (uncommitted) page. Dirty pages are pinned.
  void put_dirty(net::FileId file, std::uint64_t block,
                 storage::ContentToken token);
  // Insert or refresh a clean page (read from the array, or committed).
  void put_clean(net::FileId file, std::uint64_t block,
                 storage::ContentToken token);
  // Transition a dirty page to clean (commit acknowledged); no-op if the
  // page was re-dirtied or dropped meanwhile.
  void mark_clean(net::FileId file, std::uint64_t block);

  [[nodiscard]] std::optional<storage::ContentToken> get(net::FileId file,
                                                         std::uint64_t block);
  [[nodiscard]] bool is_dirty(net::FileId file, std::uint64_t block) const;

  void invalidate_file(net::FileId file);

  // Enumerate the dirty pages of one file (block, token), unordered.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, storage::ContentToken>>
  dirty_pages_of(net::FileId file) const;

  [[nodiscard]] std::size_t size() const { return pages_.size(); }
  [[nodiscard]] std::size_t dirty_count() const { return dirty_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] PageFramePool& pool() { return *pool_; }

  // Register this cache's counters with the central registry.
  void register_metrics(obs::MetricsRegistry& reg,
                        const obs::Labels& labels) const {
    reg.register_value("page_cache.hits", labels, &hits_);
    reg.register_value("page_cache.misses", labels, &misses_);
    reg.register_value("page_cache.evictions", labels, &evictions_);
  }

 private:
  static constexpr std::uint32_t kNil = PageFramePool::kNil;

  struct Key {
    net::FileId file;
    std::uint64_t block;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}(k.file * 0x9E3779B97F4A7C15ULL ^
                                        k.block);
    }
  };

  void insert(net::FileId file, std::uint64_t block,
              storage::ContentToken token, bool dirty);
  void evict_if_needed();
  void drop_dirty_index(net::FileId file, std::uint64_t block);
  void lru_unlink(std::uint32_t idx);
  void lru_push_front(std::uint32_t idx);

  std::size_t capacity_;
  std::unique_ptr<PageFramePool> owned_pool_;  // null when pool is shared
  PageFramePool* pool_;
  std::unordered_map<Key, std::uint32_t, KeyHash> pages_;  // key -> frame
  // Per-file dirty-block index so flushes never scan the whole cache.
  std::unordered_map<net::FileId, std::unordered_set<std::uint64_t>>
      dirty_index_;
  std::uint32_t lru_head_ = kNil;  // clean frames, most recent first
  std::uint32_t lru_tail_ = kNil;
  std::size_t dirty_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace redbud::client
