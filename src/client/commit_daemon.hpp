// Background commit daemon pool with adaptive sizing (§IV-B).
//
// Daemons check out I/O-complete commit tasks, build compound commit RPCs
// and send them to the MDS. A controller keeps the pool size proportional
// to the commit queue length:
//
//   ThreadNums_cur = rho * QueueLen_cur,   rho = ThreadNums_max / QueueLen_max
//
// clamped to [1, max]. Figure 6 plots the thread count against the queue
// length over time; enable_tracing() records exactly those two series.
#pragma once

#include <cstdint>
#include <vector>

#include "client/commit_queue.hpp"
#include "client/compound_controller.hpp"
#include "client/page_cache.hpp"
#include "net/rpc.hpp"
#include "sim/stats.hpp"

namespace redbud::client {

struct CommitPoolParams {
  bool adaptive_threads = true;
  std::uint32_t max_threads = 9;       // paper's Figure 6 maximum
  std::size_t max_queue_len = 450;     // rho denominator
  std::uint32_t fixed_threads = 1;     // used when !adaptive_threads
  redbud::sim::SimTime control_interval = redbud::sim::SimTime::millis(50);
  // Poll period while queued entries wait for their data writes.
  redbud::sim::SimTime poll_interval = redbud::sim::SimTime::micros(500);
  // At-least-once commit RPCs: retransmit under `retry` and, when even the
  // retry budget is exhausted (shard down longer than the backoff ladder),
  // push the whole batch back onto the commit queue instead of losing it.
  // Off by default — fault-free runs keep the historical wire behaviour.
  bool rpc_retry = false;
  net::RetryPolicy retry;
};

class CommitDaemonPool {
 public:
  // `mds_shards[s]` is the endpoint of metadata shard s; checkout()
  // guarantees every batch is homogeneous, so each compound RPC goes to
  // exactly one shard's endpoint.
  CommitDaemonPool(redbud::sim::Simulation& sim, CommitQueue& queue,
                   net::RpcEndpoint& self,
                   std::vector<net::RpcEndpoint*> mds_shards,
                   CompoundController& compound, PageCache& cache,
                   CommitPoolParams params);
  CommitDaemonPool(const CommitDaemonPool&) = delete;
  CommitDaemonPool& operator=(const CommitDaemonPool&) = delete;

  // Spawn the controller and the initial daemon. Call once.
  void start();

  // Attach the cluster's observability bundle; checkout-batch spans land
  // on the client's daemon row, counters register under {client=id}.
  void set_obs(obs::Obs* obs, std::uint32_t client_id);

  [[nodiscard]] std::uint32_t live_threads() const { return live_threads_; }
  [[nodiscard]] std::uint64_t rpcs_sent() const { return rpcs_sent_; }
  // Batches whose commit RPC exhausted its retry budget and were pushed
  // back onto the queue (requeued entries are re-sent until acked).
  [[nodiscard]] std::uint64_t batches_requeued() const {
    return batches_requeued_;
  }
  [[nodiscard]] std::uint64_t entries_committed() const {
    return entries_committed_;
  }
  // Mean compound degree actually achieved.
  [[nodiscard]] double mean_degree() const {
    return rpcs_sent_ == 0 ? 0.0
                           : double(entries_committed_) / double(rpcs_sent_);
  }

  // Figure 6 instrumentation: sample (threads, queue length) periodically.
  void enable_tracing(redbud::sim::SimTime sample_interval);
  [[nodiscard]] const redbud::sim::TimeSeries& thread_series() const {
    return thread_series_;
  }
  [[nodiscard]] const redbud::sim::TimeSeries& queue_series() const {
    return queue_series_;
  }

 private:
  redbud::sim::Process daemon();
  redbud::sim::Process controller();
  redbud::sim::Process tracer(redbud::sim::SimTime interval);
  [[nodiscard]] std::uint32_t target_threads() const;

  redbud::sim::Simulation* sim_;
  CommitQueue* queue_;
  net::RpcEndpoint* self_;
  std::vector<net::RpcEndpoint*> mds_;
  CompoundController* compound_;
  PageCache* cache_;
  CommitPoolParams params_;
  bool started_ = false;
  std::uint32_t live_threads_ = 0;
  std::uint32_t exit_requests_ = 0;
  std::uint64_t rpcs_sent_ = 0;
  std::uint64_t entries_committed_ = 0;
  std::uint64_t batches_requeued_ = 0;
  redbud::sim::TimeSeries thread_series_{"commit_threads"};
  redbud::sim::TimeSeries queue_series_{"commit_queue_len"};
  bool tracing_ = false;
  obs::Obs* obs_ = nullptr;
  obs::Track track_;  // client track group, commit-daemon row
};

}  // namespace redbud::client
