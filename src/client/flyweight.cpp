#include "client/flyweight.hpp"

#include <cassert>
#include <string>

#include "client/commit_slab.hpp"

namespace redbud::client {

redbud::sim::SimFuture<net::FileId> FlyweightSession::create(
    net::DirId dir, std::string name) {
  ++ops_;
  return host_->engine().create(dir, std::move(name));
}

redbud::sim::SimFuture<fsapi::OpenResult> FlyweightSession::open(
    net::DirId dir, std::string name) {
  ++ops_;
  return host_->engine().open(dir, std::move(name));
}

redbud::sim::SimFuture<net::Status> FlyweightSession::write(
    net::FileId file, std::uint64_t offset_bytes, std::uint32_t nbytes) {
  ++ops_;
  return host_->engine().write(file, offset_bytes, nbytes);
}

redbud::sim::SimFuture<fsapi::ReadResult> FlyweightSession::read(
    net::FileId file, std::uint64_t offset_bytes, std::uint32_t nbytes) {
  ++ops_;
  return host_->engine().read(file, offset_bytes, nbytes);
}

redbud::sim::SimFuture<net::Status> FlyweightSession::fsync(net::FileId file) {
  ++ops_;
  return host_->engine().fsync(file);
}

redbud::sim::SimFuture<net::Status> FlyweightSession::close(net::FileId file) {
  ++ops_;
  return host_->engine().close(file);
}

redbud::sim::SimFuture<net::Status> FlyweightSession::remove(
    net::DirId dir, std::string name) {
  ++ops_;
  return host_->engine().remove(dir, std::move(name));
}

storage::ContentToken FlyweightSession::expected_token(
    net::FileId file, std::uint64_t block) const {
  return host_->engine().expected_token(file, block);
}

ClientHost::ClientHost(ClientFs& engine, std::uint32_t host_id,
                       std::uint32_t first_client_id)
    : engine_(&engine), host_id_(host_id), first_client_id_(first_client_id) {}

FlyweightSession& ClientHost::open_session() {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(sessions_.size());
    sessions_.emplace_back();
  }
  FlyweightSession& s = sessions_[slot];
  s.host_ = this;
  s.client_id_ = first_client_id_ + slot;
  s.ops_ = 0;
  s.live_ = true;
  ++live_;
  if (live_ > peak_) peak_ = live_;
  return s;
}

void ClientHost::close_session(FlyweightSession& s) {
  assert(s.host_ == this && s.live_);
  s.live_ = false;
  free_.push_back(s.client_id_ - first_client_id_);
  --live_;
}

void ClientHost::register_metrics(obs::MetricsRegistry& reg) const {
  const obs::Labels labels{{"host", std::to_string(host_id_)}};
  reg.register_value("client_host.sessions_live", labels, &live_);
  reg.register_value("client_host.sessions_peak", labels, &peak_);
  engine_->cache().pool().register_metrics(reg, labels);
  engine_->commit_queue().slab().register_metrics(reg, labels);
}

}  // namespace redbud::client
