#include "client/space_pool.hpp"

#include <cassert>

namespace redbud::client {

DoubleSpacePool::DoubleSpacePool(std::uint64_t chunk_blocks)
    : chunk_blocks_(chunk_blocks) {
  assert(chunk_blocks_ > 0);
}

std::optional<mds::PhysExtent> DoubleSpacePool::alloc(std::uint64_t nblocks) {
  assert(eligible(nblocks));
  if (active_.valid && active_.free() >= nblocks) {
    mds::PhysExtent out{
        {active_.chunk.addr.device, active_.chunk.addr.block + active_.used},
        nblocks};
    active_.used += nblocks;
    ++allocs_;
    return out;
  }
  // Swap: promote the standby; retire the old active's leftover.
  if (!standby_.valid) return std::nullopt;
  if (active_.valid && active_.free() > 0) {
    leftovers_.push_back(mds::PhysExtent{
        {active_.chunk.addr.device, active_.chunk.addr.block + active_.used},
        active_.free()});
  }
  active_ = standby_;
  standby_ = Pool{};
  ++swaps_;
  return alloc(nblocks);
}

bool DoubleSpacePool::needs_refill() const {
  return !standby_.valid;
}

void DoubleSpacePool::install_chunk(mds::PhysExtent chunk) {
  Pool p;
  p.chunk = chunk;
  p.used = 0;
  p.valid = true;
  if (!active_.valid) {
    active_ = p;
  } else {
    assert(!standby_.valid && "installing into a full pool pair");
    standby_ = p;
  }
}

std::optional<mds::PhysExtent> DoubleSpacePool::take_leftover() {
  if (leftovers_.empty()) return std::nullopt;
  auto out = leftovers_.back();
  leftovers_.pop_back();
  return out;
}

std::uint64_t DoubleSpacePool::active_free() const {
  return active_.valid ? active_.free() : 0;
}

}  // namespace redbud::client
