// Adaptive RPC compound degree (§IV-B).
//
// "The compound degree changes periodically with the knowledge of the
// network traffic in the cluster and the workload on the MDS. The
// compound degree increases as the network is congested or the MDS is
// busy enough, so as to reduce the RPC requests."
//
// Signals: the MDS queue length piggybacked on every commit reply, and
// the observed commit RPC round-trip time (congestion proxy).
//
// With a sharded metadata cluster each shard is an independent server
// with its own queue and its own network path, so the controller keeps
// one (degree, EMA) state per shard. Single-shard deployments see the
// exact same behaviour as before through the shard-0 default arguments.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace redbud::client {

struct CompoundParams {
  bool adaptive = true;
  std::uint32_t fixed_degree = 1;  // used when !adaptive
  std::uint32_t min_degree = 1;
  std::uint32_t max_degree = 8;
  // MDS queue length above which the server counts as busy / below which
  // it counts as idle.
  std::uint32_t mds_busy_queue = 24;
  std::uint32_t mds_idle_queue = 4;
  // RTT thresholds marking network congestion.
  redbud::sim::SimTime rtt_high = redbud::sim::SimTime::millis(2);
  redbud::sim::SimTime rtt_low = redbud::sim::SimTime::micros(700);
};

class CompoundController {
 public:
  explicit CompoundController(CompoundParams params, std::uint32_t nshards = 1);

  [[nodiscard]] std::uint32_t degree(std::uint32_t shard = 0) const {
    return params_.adaptive ? shards_[shard].degree : params_.fixed_degree;
  }

  // Feed one commit-RPC observation from `shard`.
  void on_reply(std::uint32_t shard, std::uint32_t mds_queue_len,
                redbud::sim::SimTime rtt);
  // Single-MDS convenience: observation from shard 0.
  void on_reply(std::uint32_t mds_queue_len, redbud::sim::SimTime rtt) {
    on_reply(0, mds_queue_len, rtt);
  }

  // Degree adjustments summed over all shards.
  [[nodiscard]] std::uint32_t increases() const { return increases_; }
  [[nodiscard]] std::uint32_t decreases() const { return decreases_; }
  [[nodiscard]] const CompoundParams& params() const { return params_; }

 private:
  // Per-shard control state: exponentially-smoothed observations plus the
  // current compound degree for commits bound to that shard.
  struct ShardState {
    std::uint32_t degree = 1;
    double ema_queue = 0.0;
    double ema_rtt_us = 0.0;
    bool primed = false;
  };

  CompoundParams params_;
  std::vector<ShardState> shards_;
  std::uint32_t increases_ = 0;
  std::uint32_t decreases_ = 0;
};

}  // namespace redbud::client
