// The commit queue of the Delayed Commit Protocol (§III-A).
//
// Each update enqueues its file's metadata commit; requests for a file
// that already has a queued commit are *merged into it* ("inserted into
// the commit queue if no commit request of the same file exists"), so one
// RPC commits all of a file's accumulated dirty metadata. Background
// commit daemons check out entries whose local data writes have completed
// and send compound commit RPCs.
//
// The ordered-writes invariant lives here: an entry is only *ready* for
// checkout once every data-write future attached to it has resolved, i.e.
// the commit RPC can never overtake its file data to stable storage.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "obs/obs.hpp"
#include "sim/future.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"

namespace redbud::client {

// One file's accumulated uncommitted metadata.
struct CommitTask {
  net::FileId file = net::kInvalidFile;
  // Home metadata shard of `file` (decoded from its id). A compound
  // commit RPC targets exactly one shard, so checkout() only batches
  // tasks that agree on this.
  std::uint32_t shard = 0;
  std::vector<net::Extent> extents;
  std::vector<storage::ContentToken> block_tokens;  // per block of extents
  std::uint64_t new_size_bytes = 0;
  redbud::sim::SimTime enqueued_at;
  // Local writepage completions this commit must wait for.
  std::vector<redbud::sim::SimFuture<redbud::sim::Done>> data_futures;
  // fsync/close waiters resolved when the commit RPC is acknowledged.
  std::vector<redbud::sim::SimPromise<redbud::sim::Done>> waiters;
  // One link per traced update riding this task: dedup-merged updates each
  // keep their own context, so every originating op's chain stays whole.
  std::vector<obs::TraceLink> traces;

  [[nodiscard]] bool data_complete() const {
    for (const auto& f : data_futures) {
      if (!f.ready()) return false;
    }
    return true;
  }
};

class CommitSlab;

class CommitQueue {
 public:
  explicit CommitQueue(redbud::sim::Simulation& sim);
  // Flyweight form: task records come from (and return to) a shared host
  // slab instead of a private one.
  CommitQueue(redbud::sim::Simulation& sim, CommitSlab* slab);
  ~CommitQueue();

  CommitQueue(const CommitQueue&) = delete;
  CommitQueue& operator=(const CommitQueue&) = delete;

  // Merge an update into the file's queued commit (or enqueue a new one).
  // An active `ctx` attaches the update's trace to the task.
  void add(net::FileId file, std::vector<net::Extent> extents,
           std::vector<storage::ContentToken> block_tokens,
           std::uint64_t new_size_bytes,
           std::vector<redbud::sim::SimFuture<redbud::sim::Done>> data_futures,
           obs::TraceContext ctx = {});

  // Attach the cluster's observability bundle; spans land on the client's
  // track group. Also registers this queue's counters under {client=id}.
  void set_obs(obs::Obs* obs, std::uint32_t client_id);

  // Future resolving when everything currently pending for `file` (queued
  // or in flight) has been committed; immediately ready when nothing is.
  [[nodiscard]] redbud::sim::SimFuture<redbud::sim::Done> wait_committed(
      net::FileId file);

  // Drop the queued commit of a file (file removed before commit). Waiters
  // are resolved — there is nothing left to commit.
  void drop(net::FileId file);

  // Daemon side: take up to `max` FIFO entries whose data writes are
  // complete. Checked-out tasks become "in flight" until ack()/fail().
  // The first ready entry fixes the batch's shard; later ready entries
  // homed on other shards are left queued for the next daemon pass, so a
  // batch always forms a single-shard compound RPC.
  [[nodiscard]] std::vector<CommitTask> checkout(std::size_t max);
  // Shard of the task a checkout() would pick first, or nullopt when no
  // entry is ready. Lets the daemon size the batch with that shard's
  // compound degree before committing to the checkout.
  [[nodiscard]] std::optional<std::uint32_t> first_ready_shard() const;
  // Acknowledge an in-flight task: resolves waiters, updates stats.
  // `batch_span` is the checkout-batch span the task's commit RPC rode —
  // recorded on each commit-e2e span so chains cross the batch boundary.
  void ack(CommitTask& task, std::uint64_t batch_span = 0);
  // Re-queue an in-flight task after a failed RPC.
  void requeue(CommitTask task);

  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] bool empty() const { return order_.empty(); }
  [[nodiscard]] std::size_t in_flight() const { return in_flight_count_; }
  // True when at least one queued entry has all its data durable.
  [[nodiscard]] bool any_ready() const;

  [[nodiscard]] redbud::sim::Signal& work() { return work_; }
  // Notified whenever entries leave the queue — writers blocked on a full
  // queue (the paper's QueueLen_max backpressure) wait on this.
  [[nodiscard]] redbud::sim::Signal& space() { return space_; }
  [[nodiscard]] std::uint64_t enqueued_total() const { return enqueued_; }
  [[nodiscard]] std::uint64_t merged_total() const { return merged_; }
  [[nodiscard]] std::uint64_t committed_total() const { return committed_; }
  [[nodiscard]] redbud::sim::LatencyHistogram& commit_latency() {
    return commit_latency_;
  }
  [[nodiscard]] CommitSlab& slab() { return *slab_; }

 private:
  redbud::sim::Simulation* sim_;
  std::unique_ptr<CommitSlab> owned_slab_;  // null when slab is shared
  CommitSlab* slab_;
  // FIFO of queued files; the map holds the actual tasks.
  std::deque<net::FileId> order_;
  std::unordered_map<net::FileId, CommitTask> queued_;
  // fsync waiters attached to in-flight commits, keyed by file.
  std::unordered_map<net::FileId,
                     std::vector<redbud::sim::SimPromise<redbud::sim::Done>>>
      in_flight_waiters_;
  std::unordered_map<net::FileId, std::size_t> in_flight_files_;
  std::size_t in_flight_count_ = 0;
  redbud::sim::Signal work_;
  redbud::sim::Signal space_;
  // Queue-state views for the registry: current depth and the enqueue
  // instant (microseconds, 0 = empty) of the oldest queued entry. The
  // watchdog's commit-stall detector turns the latter into an age.
  void refresh_state();
  std::uint64_t depth_ = 0;
  std::uint64_t oldest_enqueued_us_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t merged_ = 0;
  std::uint64_t committed_ = 0;
  redbud::sim::LatencyHistogram commit_latency_;
  obs::Obs* obs_ = nullptr;
  obs::Track track_;  // client track group, commit-queue row
};

}  // namespace redbud::client
