// Commit-record slab.
//
// Every queued or in-flight commit carries five vectors (extents, tokens,
// data futures, waiters, traces). Under steady delayed-commit churn those
// buffers are allocated and freed once per update — and with 10^4 clients
// multiplexed on one host that is the hottest malloc site in the client
// layer. The slab recycles whole CommitTask records instead: recycle()
// clears the vectors but keeps their capacity, acquire() hands the shell
// back out, so steady state does zero per-commit heap traffic.
//
// Recycling changes no observable behaviour — a recycled task is
// field-identical to a fresh one — so replay digests are unaffected. One
// slab is shared by all commit queues of a host; a queue built without an
// explicit slab owns a private one (classic path).
#pragma once

#include <utility>
#include <vector>

#include "client/commit_queue.hpp"
#include "obs/metrics_registry.hpp"

namespace redbud::client {

class CommitSlab {
 public:
  [[nodiscard]] CommitTask acquire() {
    ++in_use_;
    if (in_use_ > peak_) peak_ = in_use_;
    if (free_.empty()) return CommitTask{};
    CommitTask t = std::move(free_.back());
    free_.pop_back();
    return t;
  }

  void recycle(CommitTask&& t) {
    --in_use_;
    t.file = net::kInvalidFile;
    t.shard = 0;
    t.new_size_bytes = 0;
    t.enqueued_at = {};
    t.extents.clear();
    t.block_tokens.clear();
    t.data_futures.clear();
    t.waiters.clear();
    t.traces.clear();
    free_.push_back(std::move(t));
  }

  [[nodiscard]] std::uint64_t in_use() const { return in_use_; }
  [[nodiscard]] std::uint64_t peak_in_use() const { return peak_; }
  [[nodiscard]] std::uint64_t allocated() const {
    return in_use_ + free_.size();
  }

  void register_metrics(obs::MetricsRegistry& reg,
                        const obs::Labels& labels) const {
    reg.register_value("commit_slab.in_use", labels, &in_use_);
    reg.register_value("commit_slab.peak", labels, &peak_);
  }

 private:
  std::vector<CommitTask> free_;
  std::uint64_t in_use_ = 0;
  std::uint64_t peak_ = 0;
};

}  // namespace redbud::client
