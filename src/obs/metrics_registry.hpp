// Central metrics registry.
//
// Components own their instruments exactly as before (plain uint64
// counters, sim::Counter / Gauge / LatencyHistogram members) and register
// *views* of them here at construction, under a canonical
// `name{key=value,...}` identity. The registry is the one place benches,
// exporters and tests resolve instruments by name, replacing the previous
// pattern of reaching into each component's accessors.
//
// Non-owning by design: registration costs one map insert at construction
// and nothing on the hot path — the instrument update sites are exactly
// the code that already existed. The registry must outlive registered
// components only for reads, which the owning Cluster guarantees by
// declaration order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace redbud::obs {

struct Label {
  std::string key;
  std::string value;
};
using Labels = std::vector<Label>;

// Canonical identity: name{k1=v1,k2=v2} with labels sorted by key.
[[nodiscard]] std::string canonical_metric_name(const std::string& name,
                                                Labels labels);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration (construction-time). A duplicate canonical identity is
  // refused loudly (REDBUD_REQUIRE): a silent replace would shadow one
  // component's view in every export and sampled series. A component that
  // legitimately rebuilds must unregister() its old identity first.
  void register_counter(const std::string& name, Labels labels,
                        const redbud::sim::Counter* c);
  void register_value(const std::string& name, Labels labels,
                      const std::uint64_t* v);
  void register_gauge(const std::string& name, Labels labels,
                      const redbud::sim::Gauge* g);
  void register_histogram(const std::string& name, Labels labels,
                          const redbud::sim::LatencyHistogram* h);

  // Remove a canonical identity from every kind map (no-op when absent).
  // The sanctioned path for re-registration after a component rebuild.
  void unregister(const std::string& canonical);

  // Reads by canonical name. value() resolves both counter kinds.
  [[nodiscard]] std::optional<std::uint64_t> value(
      const std::string& canonical) const;
  [[nodiscard]] const redbud::sim::Gauge* gauge(
      const std::string& canonical) const;
  [[nodiscard]] const redbud::sim::LatencyHistogram* histogram(
      const std::string& canonical) const;

  // Sum of a counter over every label set registered under `name`.
  [[nodiscard]] std::uint64_t sum(const std::string& name) const;
  // Number of label sets registered under a metric name (cardinality).
  [[nodiscard]] std::size_t cardinality(const std::string& name) const;
  [[nodiscard]] std::size_t size() const {
    return counters_.size() + values_.size() + gauges_.size() +
           histograms_.size();
  }

  [[nodiscard]] const std::map<std::string, const redbud::sim::Counter*>&
  counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, const std::uint64_t*>& values()
      const {
    return values_;
  }
  [[nodiscard]] const std::map<std::string, const redbud::sim::Gauge*>&
  gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string,
                               const redbud::sim::LatencyHistogram*>&
  histograms() const {
    return histograms_;
  }

 private:
  // Base metric name of a canonical identity (strip the label block).
  [[nodiscard]] static std::string base_name(const std::string& canonical);
  // Abort (REDBUD_REQUIRE) when `canonical` is already registered.
  void require_fresh(const std::string& canonical) const;

  std::map<std::string, const redbud::sim::Counter*> counters_;
  std::map<std::string, const std::uint64_t*> values_;
  std::map<std::string, const redbud::sim::Gauge*> gauges_;
  std::map<std::string, const redbud::sim::LatencyHistogram*> histograms_;
};

}  // namespace redbud::obs
