#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/parallel.hpp"

namespace redbud::obs {

std::string canonical_metric_name(const std::string& name, Labels labels) {
  if (labels.empty()) return name;
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string out = name;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].key;
    out += '=';
    out += labels[i].value;
  }
  out += '}';
  return out;
}

std::string MetricsRegistry::base_name(const std::string& canonical) {
  const auto brace = canonical.find('{');
  return brace == std::string::npos ? canonical : canonical.substr(0, brace);
}

void MetricsRegistry::require_fresh(const std::string& canonical) const {
  // The export merges counters and raw values into one JSON object, so a
  // duplicate identity in *any* kind map would silently shadow a column.
  const bool taken =
      counters_.count(canonical) > 0 || values_.count(canonical) > 0 ||
      gauges_.count(canonical) > 0 || histograms_.count(canonical) > 0;
  if (taken) {
    std::fprintf(stderr, "duplicate metric registration: %s\n",
                 canonical.c_str());
    REDBUD_REQUIRE(false, "duplicate metric registration");
  }
}

void MetricsRegistry::unregister(const std::string& canonical) {
  counters_.erase(canonical);
  values_.erase(canonical);
  gauges_.erase(canonical);
  histograms_.erase(canonical);
}

void MetricsRegistry::register_counter(const std::string& name, Labels labels,
                                       const redbud::sim::Counter* c) {
  auto canonical = canonical_metric_name(name, std::move(labels));
  require_fresh(canonical);
  counters_[std::move(canonical)] = c;
}

void MetricsRegistry::register_value(const std::string& name, Labels labels,
                                     const std::uint64_t* v) {
  auto canonical = canonical_metric_name(name, std::move(labels));
  require_fresh(canonical);
  values_[std::move(canonical)] = v;
}

void MetricsRegistry::register_gauge(const std::string& name, Labels labels,
                                     const redbud::sim::Gauge* g) {
  auto canonical = canonical_metric_name(name, std::move(labels));
  require_fresh(canonical);
  gauges_[std::move(canonical)] = g;
}

void MetricsRegistry::register_histogram(
    const std::string& name, Labels labels,
    const redbud::sim::LatencyHistogram* h) {
  auto canonical = canonical_metric_name(name, std::move(labels));
  require_fresh(canonical);
  histograms_[std::move(canonical)] = h;
}

std::optional<std::uint64_t> MetricsRegistry::value(
    const std::string& canonical) const {
  if (auto it = counters_.find(canonical); it != counters_.end()) {
    return it->second->value();
  }
  if (auto it = values_.find(canonical); it != values_.end()) {
    return *it->second;
  }
  return std::nullopt;
}

const redbud::sim::Gauge* MetricsRegistry::gauge(
    const std::string& canonical) const {
  auto it = gauges_.find(canonical);
  return it == gauges_.end() ? nullptr : it->second;
}

const redbud::sim::LatencyHistogram* MetricsRegistry::histogram(
    const std::string& canonical) const {
  auto it = histograms_.find(canonical);
  return it == histograms_.end() ? nullptr : it->second;
}

std::uint64_t MetricsRegistry::sum(const std::string& name) const {
  std::uint64_t total = 0;
  for (const auto& [canon, c] : counters_) {
    if (base_name(canon) == name) total += c->value();
  }
  for (const auto& [canon, v] : values_) {
    if (base_name(canon) == name) total += *v;
  }
  return total;
}

std::size_t MetricsRegistry::cardinality(const std::string& name) const {
  std::size_t n = 0;
  const auto count_in = [&](const auto& map) {
    for (const auto& [canon, _] : map) {
      if (base_name(canon) == name) ++n;
    }
  };
  count_in(counters_);
  count_in(values_);
  count_in(gauges_);
  count_in(histograms_);
  return n;
}

}  // namespace redbud::obs
