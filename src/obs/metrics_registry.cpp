#include "obs/metrics_registry.hpp"

#include <algorithm>

namespace redbud::obs {

std::string canonical_metric_name(const std::string& name, Labels labels) {
  if (labels.empty()) return name;
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string out = name;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].key;
    out += '=';
    out += labels[i].value;
  }
  out += '}';
  return out;
}

std::string MetricsRegistry::base_name(const std::string& canonical) {
  const auto brace = canonical.find('{');
  return brace == std::string::npos ? canonical : canonical.substr(0, brace);
}

void MetricsRegistry::register_counter(const std::string& name, Labels labels,
                                       const redbud::sim::Counter* c) {
  counters_[canonical_metric_name(name, std::move(labels))] = c;
}

void MetricsRegistry::register_value(const std::string& name, Labels labels,
                                     const std::uint64_t* v) {
  values_[canonical_metric_name(name, std::move(labels))] = v;
}

void MetricsRegistry::register_gauge(const std::string& name, Labels labels,
                                     const redbud::sim::Gauge* g) {
  gauges_[canonical_metric_name(name, std::move(labels))] = g;
}

void MetricsRegistry::register_histogram(
    const std::string& name, Labels labels,
    const redbud::sim::LatencyHistogram* h) {
  histograms_[canonical_metric_name(name, std::move(labels))] = h;
}

std::optional<std::uint64_t> MetricsRegistry::value(
    const std::string& canonical) const {
  if (auto it = counters_.find(canonical); it != counters_.end()) {
    return it->second->value();
  }
  if (auto it = values_.find(canonical); it != values_.end()) {
    return *it->second;
  }
  return std::nullopt;
}

const redbud::sim::Gauge* MetricsRegistry::gauge(
    const std::string& canonical) const {
  auto it = gauges_.find(canonical);
  return it == gauges_.end() ? nullptr : it->second;
}

const redbud::sim::LatencyHistogram* MetricsRegistry::histogram(
    const std::string& canonical) const {
  auto it = histograms_.find(canonical);
  return it == histograms_.end() ? nullptr : it->second;
}

std::uint64_t MetricsRegistry::sum(const std::string& name) const {
  std::uint64_t total = 0;
  for (const auto& [canon, c] : counters_) {
    if (base_name(canon) == name) total += c->value();
  }
  for (const auto& [canon, v] : values_) {
    if (base_name(canon) == name) total += *v;
  }
  return total;
}

std::size_t MetricsRegistry::cardinality(const std::string& name) const {
  std::size_t n = 0;
  const auto count_in = [&](const auto& map) {
    for (const auto& [canon, _] : map) {
      if (base_name(canon) == name) ++n;
    }
  };
  count_in(counters_);
  count_in(values_);
  count_in(gauges_);
  count_in(histograms_);
  return n;
}

}  // namespace redbud::obs
