// The per-cluster observability bundle: one metrics registry plus one
// span tracer, threaded through every component of the delayed-commit
// pipeline. Components accept an `obs::Obs*` (nullptr = fully untracked,
// the pre-observability behaviour) and a Cluster owns one instance whose
// lifetime brackets every registered component.
#pragma once

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace redbud::obs {

struct ObsParams {
  TracerParams tracing;
};

struct Obs {
  Obs() = default;
  explicit Obs(const ObsParams& params) : tracer(params.tracing) {}
  Obs(const Obs&) = delete;
  Obs& operator=(const Obs&) = delete;

  MetricsRegistry registry;
  Tracer tracer;
};

}  // namespace redbud::obs
