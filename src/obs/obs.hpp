// The per-cluster observability bundle: one metrics registry, one span
// tracer, one time-series sampler and one incident watchdog, threaded
// through every component of the delayed-commit pipeline. Components
// accept an `obs::Obs*` (nullptr = fully untracked, the
// pre-observability behaviour) and a Cluster owns one instance whose
// lifetime brackets every registered component.
#pragma once

#include "obs/metrics_registry.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace redbud::obs {

struct ObsParams {
  TracerParams tracing;
  SamplerParams sampling;
};

struct Obs {
  Obs() {
    sampler.bind(&registry);
    watchdog.bind(&registry);
  }
  explicit Obs(const ObsParams& params)
      : tracer(params.tracing), sampler(params.sampling) {
    sampler.bind(&registry);
    watchdog.bind(&registry);
  }
  Obs(const Obs&) = delete;
  Obs& operator=(const Obs&) = delete;

  // Combined kernel-probe trampoline: one off-event grid drives both the
  // sampler and the watchdog, so incidents are evaluated at exactly the
  // instants the series they read were sampled. `ctx` is the Obs bundle.
  static void probe_thunk(void* ctx, redbud::sim::SimTime instant) {
    auto* obs = static_cast<Obs*>(ctx);
    if (obs->sampler.enabled()) obs->sampler.sample(instant);
    if (obs->watchdog.enabled()) obs->watchdog.tick(instant);
  }

  MetricsRegistry registry;
  Tracer tracer;
  TimeSeriesSampler sampler;
  Watchdog watchdog;
};

}  // namespace redbud::obs
