// The per-cluster observability bundle: one metrics registry, one span
// tracer and one time-series sampler, threaded through every component of
// the delayed-commit pipeline. Components accept an `obs::Obs*` (nullptr
// = fully untracked, the pre-observability behaviour) and a Cluster owns
// one instance whose lifetime brackets every registered component.
#pragma once

#include "obs/metrics_registry.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace redbud::obs {

struct ObsParams {
  TracerParams tracing;
  SamplerParams sampling;
};

struct Obs {
  Obs() { sampler.bind(&registry); }
  explicit Obs(const ObsParams& params)
      : tracer(params.tracing), sampler(params.sampling) {
    sampler.bind(&registry);
  }
  Obs(const Obs&) = delete;
  Obs& operator=(const Obs&) = delete;

  MetricsRegistry registry;
  Tracer tracer;
  TimeSeriesSampler sampler;
};

}  // namespace redbud::obs
