// Span tracing for the delayed-commit pipeline.
//
// A TraceContext (trace id + span id) is minted at each FsClient entry
// point and handed from stage to stage — page-cache writeback, commit
// queue, daemon checkout, compound RPC (carried in the RPC message
// header), MDS handling, journal durability — so one update's full causal
// chain is reconstructable from the flat span log, including updates that
// were dedup-merged into an existing queued commit and updates batched
// into a multi-file compound RPC.
//
// Determinism: the tracer is strictly passive. It never schedules events,
// never spawns processes and never suspends anything; it only reads
// Simulation::now() at points the pipeline already visits. Enabling or
// disabling tracing therefore cannot change the event order of a run, and
// two traced runs with the same seed produce byte-identical span logs
// (span ids come from a deterministic counter).
//
// Cost when disabled: every tracing call sites guards on
// `tracer.enabled()`, which is an inline load-and-test (and folds to
// `false` at compile time when REDBUD_OBS_DISABLED is defined, making the
// whole layer a no-op the optimiser deletes).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace redbud::obs {

// The stage taxonomy of the distributed-update path (DESIGN.md §6). One
// span = one stage traversal; per-stage latency histograms aggregate the
// same durations for metrics.json.
enum class Stage : std::uint8_t {
  kClientWrite,    // FsClient::write entry -> return
  kClientRead,     // FsClient::read entry -> return
  kClientMeta,     // create / open / remove entry -> return
  kClientFsync,    // FsClient::fsync entry -> return
  kQueueWait,      // commit-queue enqueue -> daemon checkout
  kCheckoutBatch,  // daemon checkout -> compound RPC handed to the wire
  kRpcWire,        // RPC request sent -> response fully received
  kMdsHandle,      // MDS daemon dequeues the RPC -> reply issued
  kJournalFsync,   // journal append -> covering group-commit flush durable
  kCommitE2e,      // commit-queue enqueue -> commit RPC acknowledged
  kFaultEvent,     // fault-injector window: fault raised -> cleared
  kFailover,       // shard crash detected -> standby serving again
};
inline constexpr std::size_t kStageCount = 12;
[[nodiscard]] const char* stage_name(Stage s);

// Track identity for the Perfetto export: `pid` groups rows per actor
// (one process group per client, one per metadata shard), `tid` is the
// row within the group.
struct Track {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
};
[[nodiscard]] constexpr std::uint32_t client_track(std::uint32_t client_id) {
  return 100 + client_id;
}
[[nodiscard]] constexpr std::uint32_t shard_track(std::uint32_t shard) {
  return 1 + shard;
}

// Propagated identity of one causal chain. trace == 0 means "not traced":
// the context is inert and every tracer call that receives it no-ops.
struct TraceContext {
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  [[nodiscard]] bool active() const { return trace != 0; }
};

// One update's handle inside a queued commit task: the minting op's
// context plus the enqueue instant (start of the queue-wait stage). A
// dedup-merged task carries one link per merged update.
struct TraceLink {
  TraceContext ctx;
  redbud::sim::SimTime enqueued_at;
};

// A completed stage traversal. arg0/arg1 are stage-specific annotations
// (file id, batch size, linked batch span — see DESIGN.md §6).
struct SpanRecord {
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;  // span id within the same export, 0 = root
  Stage stage = Stage::kClientWrite;
  Track track;
  redbud::sim::SimTime start;
  redbud::sim::SimTime end;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

struct TracerParams {
  bool enabled = false;
  // Span log cap: histograms keep aggregating past it, so long runs keep
  // correct percentiles while the export stays bounded.
  std::size_t max_spans = 1u << 20;
};

class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(TracerParams params) : params_(params) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

#if defined(REDBUD_OBS_DISABLED)
  static constexpr bool kCompiledIn = false;
#else
  static constexpr bool kCompiledIn = true;
#endif
  [[nodiscard]] bool enabled() const { return kCompiledIn && params_.enabled; }
  void set_enabled(bool on) { params_.enabled = on; }

  // Partitioned kernels give every partition its own tracer lane so spans
  // can be recorded from worker threads without locks. Lane 0 keeps the
  // plain id counters (so serial runs are untouched); lane i >= 1 tags its
  // ids with i << 48. Lanes are merged deterministically — spans sorted by
  // (start, trace, span, ...) with per-lane-deterministic contents — the
  // first time the span log or stage histograms are read after a run.
  void set_lane_count(std::size_t nlanes);

  // Mint a fresh context: a new root chain, or a child span of `parent`
  // (same trace). Inert context when disabled.
  [[nodiscard]] TraceContext mint() {
    if (!enabled()) return {};
    if (Lane* l = lane()) {
      return TraceContext{l->tag | ++l->next_trace, l->tag | ++l->next_span};
    }
    return TraceContext{++next_trace_, ++next_span_};
  }
  [[nodiscard]] TraceContext child(TraceContext parent) {
    if (!enabled() || !parent.active()) return {};
    if (Lane* l = lane()) {
      return TraceContext{parent.trace, l->tag | ++l->next_span};
    }
    return TraceContext{parent.trace, ++next_span_};
  }

  // Record a completed stage traversal for `ctx` (no-op when the context
  // is inert). `parent` is the causally preceding span.
  void record(Stage stage, TraceContext ctx, std::uint64_t parent, Track track,
              redbud::sim::SimTime start, redbud::sim::SimTime end,
              std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

  // Aggregate a stage duration into the per-(stage, shard) histogram
  // without a span record — used for stages that must feed metrics.json
  // even when no chain is sampled.
  void observe(Stage stage, std::uint32_t shard, redbud::sim::SimTime dur);

  // Name a Perfetto track row (idempotent; later names win).
  void name_track(Track track, std::string process, std::string thread);

  // Readers collapse any extra lanes into lane 0 first. Only call these
  // while the domain is quiescent (between run_until calls).
  [[nodiscard]] const std::vector<SpanRecord>& spans() const {
    collapse_lanes();
    return spans_;
  }
  [[nodiscard]] std::uint64_t spans_dropped() const {
    collapse_lanes();
    return dropped_;
  }
  [[nodiscard]] const std::map<std::pair<std::uint32_t, Stage>,
                               redbud::sim::LatencyHistogram>&
  stage_latency() const {
    collapse_lanes();
    return stage_lat_;
  }
  // Track names keyed by (pid, tid); tid 0 rows name the process group.
  [[nodiscard]] const std::map<std::pair<std::uint32_t, std::uint32_t>,
                               std::pair<std::string, std::string>>&
  track_names() const {
    return tracks_;
  }

 private:
  // Per-partition recording state for lanes >= 1; lane 0 lives directly in
  // the members below so serial tracing stays exactly as it was.
  struct Lane {
    std::uint64_t tag = 0;  // high bits OR-ed into every minted id
    std::uint64_t next_trace = 0;
    std::uint64_t next_span = 0;
    std::uint64_t dropped = 0;
    std::vector<SpanRecord> spans;
    std::map<std::pair<std::uint32_t, Stage>, redbud::sim::LatencyHistogram>
        stage_lat;
  };

  // The lane of the partition the calling thread is executing, or nullptr
  // for lane 0 / serial operation.
  [[nodiscard]] Lane* lane() {
    if (extra_lanes_.empty()) return nullptr;
    const std::uint32_t p = redbud::sim::Simulation::current_partition();
    if (p == 0 || p > extra_lanes_.size()) return nullptr;
    return extra_lanes_[p - 1].get();
  }
  // Deterministic merge of the extra lanes into lane 0; requires a
  // quiescent domain. Logically const: readers trigger it lazily.
  void collapse_lanes() const;

  TracerParams params_;
  std::uint64_t next_trace_ = 0;
  std::uint64_t next_span_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<SpanRecord> spans_;
  std::map<std::pair<std::uint32_t, Stage>, redbud::sim::LatencyHistogram>
      stage_lat_;
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::pair<std::string, std::string>>
      tracks_;
  std::vector<std::unique_ptr<Lane>> extra_lanes_;
};

}  // namespace redbud::obs
