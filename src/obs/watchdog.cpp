#include "obs/watchdog.hpp"

#include <algorithm>
#include <utility>

#include "obs/json_fmt.hpp"
#include "obs/metrics_registry.hpp"

namespace redbud::obs {

using redbud::sim::SimTime;

double window_slope(const std::vector<double>& x_s,
                    const std::vector<double>& y, double from_s,
                    double until_s) {
  double n = 0, sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x_s.size() && i < y.size(); ++i) {
    if (x_s[i] < from_s || x_s[i] > until_s) continue;
    n += 1;
    sx += x_s[i];
    sy += y[i];
    sxx += x_s[i] * x_s[i];
    sxy += x_s[i] * y[i];
  }
  const double det = n * sxx - sx * sx;
  return (n >= 2 && det > 0) ? (n * sxy - sx * sy) / det : 0.0;
}

const char* incident_kind_name(IncidentKind k) {
  switch (k) {
    case IncidentKind::kBacklogGrowth:
      return "backlog_growth";
    case IncidentKind::kRetryStorm:
      return "retry_storm";
    case IncidentKind::kCommitStall:
      return "commit_stall";
    case IncidentKind::kFailoverStall:
      return "failover_stall";
  }
  return "?";
}

namespace {

std::string base_of(const std::string& canonical) {
  const auto brace = canonical.find('{');
  return brace == std::string::npos ? canonical : canonical.substr(0, brace);
}

// Drop history entries older than the fit window, keeping the vectors
// aligned. Histories are a handful of entries (window / grid stride), so
// the front erase stays cheap.
void prune(std::vector<double>& t_s, std::vector<double>& v, double from_s) {
  std::size_t keep = 0;
  while (keep < t_s.size() && t_s[keep] < from_s) ++keep;
  if (keep > 0) {
    t_s.erase(t_s.begin(), t_s.begin() + std::ptrdiff_t(keep));
    v.erase(v.begin(), v.begin() + std::ptrdiff_t(keep));
  }
}

}  // namespace

void Watchdog::arm(DetectorParams params) {
  Detector d;
  d.params = std::move(params);
  detectors_.push_back(std::move(d));
}

Watchdog::Reading Watchdog::evaluate(Detector& d, SimTime now) const {
  Reading r;
  const DetectorParams& p = d.params;
  const double now_s = now.to_seconds();
  const double window_s = p.window.to_seconds();
  switch (p.kind) {
    case IncidentKind::kBacklogGrowth: {
      const double level = double(registry_->sum(p.series));
      d.hist_t_s.push_back(now_s);
      d.hist_v.push_back(level);
      prune(d.hist_t_s, d.hist_v, now_s - window_s);
      const double slope =
          window_slope(d.hist_t_s, d.hist_v, now_s - window_s, now_s);
      r.value = slope;
      r.breached = level >= p.floor && slope > p.threshold;
      if (r.breached) {
        r.target = p.series;
        r.evidence = "sum=" + fmt_double(level, 1) + " slope=" +
                     fmt_double(slope, 1) + "/s over " +
                     fmt_double(window_s * 1000.0, 0) + "ms (threshold " +
                     fmt_double(p.threshold, 1) + "/s, floor " +
                     fmt_double(p.floor, 1) + ")";
      }
      break;
    }
    case IncidentKind::kRetryStorm: {
      const double cum = double(registry_->sum(p.series));
      d.hist_t_s.push_back(now_s);
      d.hist_v.push_back(cum);
      prune(d.hist_t_s, d.hist_v, now_s - window_s);
      const double delta = cum - d.hist_v.front();
      r.value = delta;
      r.breached = delta >= p.threshold;
      if (r.breached) {
        r.target = p.series;
        r.evidence = "retransmits=" + fmt_double(delta, 0) + " in " +
                     fmt_double(window_s * 1000.0, 0) + "ms (threshold " +
                     fmt_double(p.threshold, 0) + ")";
      }
      break;
    }
    case IncidentKind::kCommitStall: {
      // The series is a *_us epoch value per label set (0 = queue empty);
      // the reading is the age of the oldest entry across the fleet.
      const double now_us = now.to_micros();
      double worst = 0.0;
      std::string worst_name = p.series;
      const auto scan = [&](const auto& map, auto read) {
        for (const auto& [canon, v] : map) {
          if (base_of(canon) != p.series) continue;
          const double epoch_us = double(read(v));
          const double age = epoch_us > 0.0 ? now_us - epoch_us : 0.0;
          if (age > worst) {
            worst = age;
            worst_name = canon;
          }
        }
      };
      scan(registry_->values(), [](const std::uint64_t* v) { return *v; });
      scan(registry_->counters(),
           [](const redbud::sim::Counter* c) { return c->value(); });
      r.value = worst;
      r.breached = worst > p.threshold;
      if (r.breached) {
        r.target = worst_name;
        r.evidence = "oldest_age_us=" + fmt_double(worst, 0) +
                     " (threshold " + fmt_double(p.threshold, 0) + "us)";
      }
      break;
    }
    case IncidentKind::kFailoverStall: {
      const double open =
          double(registry_->sum(p.series)) - double(registry_->sum(p.series2));
      r.value = open;
      r.breached = open >= p.threshold;
      if (r.breached) {
        r.target = p.series;
        r.evidence = p.series + "-" + p.series2 + "=" + fmt_double(open, 0) +
                     " (threshold " + fmt_double(p.threshold, 0) + ")";
      }
      break;
    }
  }
  return r;
}

void Watchdog::tick(SimTime now) {
  if (!enabled()) return;
  ++ticks_;
  for (Detector& d : detectors_) {
    const Reading r = evaluate(d, now);
    if (d.active < 0) {
      if (r.breached) {
        if (++d.breach_run >= d.params.breach_ticks) {
          Incident inc;
          inc.kind = d.params.kind;
          inc.at = now;
          inc.target = r.target;
          inc.evidence = r.evidence;
          incidents_.push_back(std::move(inc));
          d.active = int(incidents_.size()) - 1;
          d.breach_run = 0;
          d.clear_run = 0;
        }
      } else {
        d.breach_run = 0;
      }
    } else {
      if (!r.breached) {
        if (++d.clear_run >= d.params.clear_ticks) {
          incidents_[std::size_t(d.active)].cleared = true;
          incidents_[std::size_t(d.active)].clear_at = now;
          d.active = -1;
          d.clear_run = 0;
        }
      } else {
        d.clear_run = 0;
      }
    }
  }
}

}  // namespace redbud::obs
