#include "obs/export.hpp"

#include <algorithm>
#include <fstream>
#include <map>

#include "obs/json_fmt.hpp"

namespace redbud::obs {

namespace {

void append_histogram_json(std::string& out,
                           const redbud::sim::LatencyHistogram& h) {
  out += "{\"count\": " + std::to_string(h.count());
  out += ", \"mean_us\": " + us_fixed(h.mean());
  out += ", \"p50_us\": " + us_fixed(h.percentile(50));
  out += ", \"p90_us\": " + us_fixed(h.percentile(90));
  out += ", \"p99_us\": " + us_fixed(h.percentile(99));
  out += ", \"min_us\": " +
         us_fixed(h.count() ? h.min() : redbud::sim::SimTime::zero());
  out += ", \"max_us\": " + us_fixed(h.max());
  out += "}";
}

// Display name of a track group: the registered process name, or a
// stable placeholder.
std::string pid_name(const Tracer& tracer, std::uint32_t pid) {
  for (const auto& [key, names] : tracer.track_names()) {
    if (key.first == pid) return names.first;
  }
  return "track " + std::to_string(pid);
}

}  // namespace

std::string perfetto_json(const Tracer& tracer,
                          const TimeSeriesSampler* sampler) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  const auto emit = [&](const std::string& ev) {
    if (!first) out += ",\n";
    first = false;
    out += "  " + ev;
  };

  // Track metadata: one process_name per group, one thread_name per row.
  std::uint32_t last_pid = ~0u;
  for (const auto& [key, names] : tracer.track_names()) {
    const auto [pid, tid] = key;
    if (pid != last_pid) {
      emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
           std::to_string(pid) + ", \"tid\": 0, \"args\": {\"name\": \"" +
           json_escape(names.first) + "\"}}");
      last_pid = pid;
    }
    emit("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " +
         std::to_string(pid) + ", \"tid\": " + std::to_string(tid) +
         ", \"args\": {\"name\": \"" + json_escape(names.second) + "\"}}");
  }

  for (const SpanRecord& s : tracer.spans()) {
    std::string ev = "{\"name\": \"";
    ev += stage_name(s.stage);
    ev += "\", \"cat\": \"redbud\", \"ph\": \"X\", \"ts\": ";
    ev += us_fixed(s.start);
    ev += ", \"dur\": ";
    ev += us_fixed(s.end - s.start);
    ev += ", \"pid\": " + std::to_string(s.track.pid);
    ev += ", \"tid\": " + std::to_string(s.track.tid);
    ev += ", \"args\": {\"trace\": " + std::to_string(s.trace);
    ev += ", \"span\": " + std::to_string(s.span);
    ev += ", \"parent\": " + std::to_string(s.parent);
    ev += ", \"arg0\": " + std::to_string(s.arg0);
    ev += ", \"arg1\": " + std::to_string(s.arg1);
    ev += "}}";
    emit(ev);
  }

  // Flow annotations for batch attribution: every commit-e2e span whose
  // arg1 resolves to a checkout-batch span gets an s/f flow pair, so the
  // Perfetto UI draws an arrow from the per-update chain into the batch
  // that carried it (dedup merges and riders converge on one batch).
  {
    std::map<std::uint64_t, const SpanRecord*> batches;
    for (const SpanRecord& s : tracer.spans()) {
      if (s.stage == Stage::kCheckoutBatch) batches[s.span] = &s;
    }
    for (const SpanRecord& s : tracer.spans()) {
      if (s.stage != Stage::kCommitE2e) continue;
      const auto it = batches.find(s.arg1);
      if (it == batches.end()) continue;
      const SpanRecord& b = *it->second;
      emit("{\"name\": \"commit_link\", \"cat\": \"redbud\", \"ph\": \"s\", "
           "\"id\": " +
           std::to_string(s.span) + ", \"ts\": " + us_fixed(s.start) +
           ", \"pid\": " + std::to_string(s.track.pid) +
           ", \"tid\": " + std::to_string(s.track.tid) + "}");
      emit("{\"name\": \"commit_link\", \"cat\": \"redbud\", \"ph\": \"f\", "
           "\"bp\": \"e\", \"id\": " +
           std::to_string(s.span) + ", \"ts\": " + us_fixed(b.start) +
           ", \"pid\": " + std::to_string(b.track.pid) +
           ", \"tid\": " + std::to_string(b.track.tid) + "}");
    }
  }

  // Sampled series as counter tracks: one "ph":"C" event per channel per
  // retained sample, all under a dedicated process group so Perfetto
  // renders them as stacked counter plots below the span rows.
  if (sampler != nullptr && sampler->retained() > 0) {
    emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
         std::to_string(kSampledSeriesPid) +
         ", \"tid\": 0, \"args\": {\"name\": \"sampled series\"}}");
    const auto instants = sampler->instants();
    for (const auto& s : sampler->series()) {
      for (std::size_t i = 0; i < instants.size(); ++i) {
        emit("{\"name\": \"" + json_escape(s.name) +
             "\", \"cat\": \"redbud\", \"ph\": \"C\", \"ts\": " +
             us_fixed(instants[i]) + ", \"pid\": " +
             std::to_string(kSampledSeriesPid) +
             ", \"tid\": 0, \"args\": {\"value\": " + fmt_double(s.values[i]) +
             "}}");
      }
    }
  }

  out += "\n]}\n";
  return out;
}

bool write_perfetto_json(const Tracer& tracer, const std::string& path,
                         const TimeSeriesSampler* sampler) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << perfetto_json(tracer, sampler);
  return bool(f);
}

std::string metrics_json(const Obs& obs, redbud::sim::SimTime now,
                         const ProcessMem* mem) {
  std::string out = "{\n  \"schema\": \"redbud.metrics.v1\",\n";
  out += "  \"sim_time_s\": " + fmt_double(now.to_seconds(), 6) + ",\n";
  if (mem != nullptr) {
    out += "  \"process\": {\"vm_rss_kb\": " + std::to_string(mem->vm_rss_kb) +
           ", \"vm_hwm_kb\": " + std::to_string(mem->vm_hwm_kb) + "},\n";
  }

  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : obs.registry.counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(c->value());
  }
  for (const auto& [name, v] : obs.registry.values()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(*v);
  }
  out += "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : obs.registry.gauges()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"current\": " +
           fmt_double(g->current()) + ", \"mean\": " +
           fmt_double(g->time_weighted_mean(now)) + ", \"max\": " +
           fmt_double(g->max()) + "}";
  }
  out += "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : obs.registry.histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": ";
    append_histogram_json(out, *h);
  }
  out += "\n  },\n";

  // Per-stage latency percentiles, one entry per (track group, stage).
  out += "  \"stages\": [";
  first = true;
  for (const auto& [key, hist] : obs.tracer.stage_latency()) {
    const auto [pid, stage] = key;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"stage\": \"";
    out += stage_name(stage);
    out += "\", \"track\": \"" + json_escape(pid_name(obs.tracer, pid));
    out += "\", \"pid\": " + std::to_string(pid) + ", \"latency\": ";
    append_histogram_json(out, hist);
    out += "}";
  }
  out += "\n  ],\n";

  out += "  \"spans\": {\"recorded\": " +
         std::to_string(obs.tracer.spans().size()) + ", \"dropped\": " +
         std::to_string(obs.tracer.spans_dropped()) + "}\n}\n";
  return out;
}

bool write_metrics_json(const Obs& obs, redbud::sim::SimTime now,
                        const std::string& path, const ProcessMem* mem) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << metrics_json(obs, now, mem);
  return bool(f);
}

std::string timeseries_json(const TimeSeriesSampler& sampler) {
  std::string out = "{\n  \"schema\": \"redbud.timeseries.v1\",\n";
  out += "  \"interval_us\": " + us_fixed(sampler.interval()) + ",\n";
  out += "  \"samples\": " + std::to_string(sampler.samples_taken()) + ",\n";
  out += "  \"dropped\": " + std::to_string(sampler.samples_dropped()) + ",\n";
  out += "  \"instants_us\": [";
  bool first = true;
  for (const auto t : sampler.instants()) {
    out += first ? "" : ", ";
    first = false;
    out += us_fixed(t);
  }
  out += "],\n";
  out += "  \"series\": [";
  first = true;
  for (const auto& s : sampler.series()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + json_escape(s.name) + "\", \"kind\": \"";
    out += TimeSeriesSampler::kind_name(s.kind);
    out += "\", \"values\": [";
    bool fv = true;
    for (const double v : s.values) {
      out += fv ? "" : ", ";
      fv = false;
      out += fmt_double(v);
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool write_timeseries_json(const TimeSeriesSampler& sampler,
                           const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << timeseries_json(sampler);
  return bool(f);
}

std::vector<Stage> reconstruct_chain(const Tracer& tracer,
                                     std::uint64_t trace_id) {
  const auto& spans = tracer.spans();
  const auto find_span = [&](auto pred) -> const SpanRecord* {
    for (const auto& s : spans) {
      if (pred(s)) return &s;
    }
    return nullptr;
  };

  std::vector<Stage> chain;
  // Root: the client op span of this trace.
  const SpanRecord* op = find_span([&](const SpanRecord& s) {
    return s.trace == trace_id && s.parent == 0 &&
           s.stage <= Stage::kClientFsync;
  });
  if (!op) return chain;
  chain.push_back(op->stage);

  const SpanRecord* qwait = find_span([&](const SpanRecord& s) {
    return s.trace == trace_id && s.stage == Stage::kQueueWait;
  });
  if (qwait) chain.push_back(Stage::kQueueWait);

  const SpanRecord* e2e = find_span([&](const SpanRecord& s) {
    return s.trace == trace_id && s.stage == Stage::kCommitE2e;
  });
  if (!e2e) return chain;

  // The e2e span's arg1 names the checkout-batch span this update rode.
  const SpanRecord* batch = find_span([&](const SpanRecord& s) {
    return s.span == e2e->arg1 && s.stage == Stage::kCheckoutBatch;
  });
  if (batch) {
    chain.push_back(Stage::kCheckoutBatch);
    const SpanRecord* rpc = find_span([&](const SpanRecord& s) {
      return s.parent == batch->span && s.stage == Stage::kRpcWire;
    });
    if (rpc) {
      chain.push_back(Stage::kRpcWire);
      const SpanRecord* mds = find_span([&](const SpanRecord& s) {
        return s.parent == rpc->span && s.stage == Stage::kMdsHandle;
      });
      if (mds) {
        chain.push_back(Stage::kMdsHandle);
        const SpanRecord* jrn = find_span([&](const SpanRecord& s) {
          return s.parent == mds->span && s.stage == Stage::kJournalFsync;
        });
        if (jrn) chain.push_back(Stage::kJournalFsync);
      }
    }
  }
  chain.push_back(Stage::kCommitE2e);
  return chain;
}

bool chain_unbroken(const Tracer& tracer, std::uint64_t trace_id) {
  const auto chain = reconstruct_chain(tracer, trace_id);
  const Stage required[] = {Stage::kQueueWait,  Stage::kCheckoutBatch,
                            Stage::kRpcWire,    Stage::kMdsHandle,
                            Stage::kJournalFsync, Stage::kCommitE2e};
  for (const Stage st : required) {
    if (std::find(chain.begin(), chain.end(), st) == chain.end()) return false;
  }
  return !chain.empty() && chain.front() <= Stage::kClientFsync;
}

}  // namespace redbud::obs
