#include "obs/trace.hpp"

#include <algorithm>
#include <tuple>

namespace redbud::obs {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kClientWrite:
      return "client_write";
    case Stage::kClientRead:
      return "client_read";
    case Stage::kClientMeta:
      return "client_meta";
    case Stage::kClientFsync:
      return "client_fsync";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kCheckoutBatch:
      return "checkout_batch";
    case Stage::kRpcWire:
      return "rpc_wire";
    case Stage::kMdsHandle:
      return "mds_handle";
    case Stage::kJournalFsync:
      return "journal_fsync";
    case Stage::kCommitE2e:
      return "commit_e2e";
    case Stage::kFaultEvent:
      return "fault_event";
    case Stage::kFailover:
      return "failover";
  }
  return "unknown";
}

void Tracer::set_lane_count(std::size_t nlanes) {
  extra_lanes_.clear();
  for (std::size_t i = 1; i < nlanes; ++i) {
    auto l = std::make_unique<Lane>();
    l->tag = std::uint64_t(i) << 48;
    extra_lanes_.push_back(std::move(l));
  }
}

void Tracer::record(Stage stage, TraceContext ctx, std::uint64_t parent,
                    Track track, redbud::sim::SimTime start,
                    redbud::sim::SimTime end, std::uint64_t arg0,
                    std::uint64_t arg1) {
  if (!enabled() || !ctx.active()) return;
  if (Lane* l = lane()) {
    l->stage_lat[{track.pid, stage}].record(end - start);
    if (l->spans.size() >= params_.max_spans) {
      ++l->dropped;
      return;
    }
    l->spans.push_back(SpanRecord{ctx.trace, ctx.span, parent, stage, track,
                                  start, end, arg0, arg1});
    return;
  }
  stage_lat_[{track.pid, stage}].record(end - start);
  if (spans_.size() >= params_.max_spans) {
    ++dropped_;
    return;
  }
  spans_.push_back(
      SpanRecord{ctx.trace, ctx.span, parent, stage, track, start, end, arg0,
                 arg1});
}

void Tracer::observe(Stage stage, std::uint32_t shard,
                     redbud::sim::SimTime dur) {
  if (!enabled()) return;
  if (Lane* l = lane()) {
    l->stage_lat[{shard_track(shard), stage}].record(dur);
    return;
  }
  stage_lat_[{shard_track(shard), stage}].record(dur);
}

void Tracer::collapse_lanes() const {
  auto* self = const_cast<Tracer*>(this);
  if (self->extra_lanes_.empty()) return;
  // Drain every lane into the primary log. Per-lane contents are
  // deterministic (each lane is written only by the one partition mapped
  // to it, in that partition's event order), so the concatenation below —
  // lane 0 first, then lanes in index order — is too, regardless of how
  // many worker threads drove the run.
  for (auto& lp : self->extra_lanes_) {
    Lane& l = *lp;
    self->spans_.insert(self->spans_.end(),
                        std::make_move_iterator(l.spans.begin()),
                        std::make_move_iterator(l.spans.end()));
    l.spans.clear();
    for (auto& [key, hist] : l.stage_lat) self->stage_lat_[key].merge(hist);
    l.stage_lat.clear();
    self->dropped_ += l.dropped;
    l.dropped = 0;
    self->next_trace_ = std::max(self->next_trace_, l.next_trace);
    self->next_span_ = std::max(self->next_span_, l.next_span);
  }
  self->extra_lanes_.clear();
  // Span ids are unique across lanes (the lane tag lives in the high
  // bits), so this key is a strict total order and the sorted log is
  // identical for every worker count. stable_sort keeps the (already
  // deterministic) concatenation order for any exact duplicates.
  std::stable_sort(self->spans_.begin(), self->spans_.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return std::tie(a.start, a.trace, a.span, a.stage) <
                            std::tie(b.start, b.trace, b.span, b.stage);
                   });
}

void Tracer::name_track(Track track, std::string process, std::string thread) {
  if (!enabled()) return;
  tracks_[{track.pid, track.tid}] = {std::move(process), std::move(thread)};
}

}  // namespace redbud::obs
