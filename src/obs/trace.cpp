#include "obs/trace.hpp"

namespace redbud::obs {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kClientWrite:
      return "client_write";
    case Stage::kClientRead:
      return "client_read";
    case Stage::kClientMeta:
      return "client_meta";
    case Stage::kClientFsync:
      return "client_fsync";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kCheckoutBatch:
      return "checkout_batch";
    case Stage::kRpcWire:
      return "rpc_wire";
    case Stage::kMdsHandle:
      return "mds_handle";
    case Stage::kJournalFsync:
      return "journal_fsync";
    case Stage::kCommitE2e:
      return "commit_e2e";
  }
  return "unknown";
}

void Tracer::record(Stage stage, TraceContext ctx, std::uint64_t parent,
                    Track track, redbud::sim::SimTime start,
                    redbud::sim::SimTime end, std::uint64_t arg0,
                    std::uint64_t arg1) {
  if (!enabled() || !ctx.active()) return;
  stage_lat_[{track.pid, stage}].record(end - start);
  if (spans_.size() >= params_.max_spans) {
    ++dropped_;
    return;
  }
  spans_.push_back(
      SpanRecord{ctx.trace, ctx.span, parent, stage, track, start, end, arg0,
                 arg1});
}

void Tracer::observe(Stage stage, std::uint32_t shard,
                     redbud::sim::SimTime dur) {
  if (!enabled()) return;
  stage_lat_[{shard_track(shard), stage}].record(dur);
}

void Tracer::name_track(Track track, std::string process, std::string thread) {
  if (!enabled()) return;
  tracks_[{track.pid, track.tid}] = {std::move(process), std::move(thread)};
}

}  // namespace redbud::obs
