#include "obs/critical_path.hpp"

#include <fstream>

#include "obs/json_fmt.hpp"
#include "obs/metrics_registry.hpp"

namespace redbud::obs {

using redbud::sim::SimTime;

const char* blame_stage_name(BlameStage s) {
  switch (s) {
    case BlameStage::kClientSubmit:
      return "client_submit";
    case BlameStage::kQueueWait:
      return "queue_wait";
    case BlameStage::kDaemonCheckout:
      return "daemon_checkout";
    case BlameStage::kRpcNetwork:
      return "rpc_network";
    case BlameStage::kMdsService:
      return "mds_service";
    case BlameStage::kJournalFsync:
      return "journal_fsync";
    case BlameStage::kAckReturn:
      return "ack_return";
  }
  return "?";
}

bool blame_is_queueing(BlameStage s) {
  // queue_wait is the delayed-commit queue itself; rpc_network folds the
  // request/reply transit together with the MDS ingress queue (the wire
  // span brackets the whole round trip, the MDS span only its service).
  return s == BlameStage::kQueueWait || s == BlameStage::kRpcNetwork;
}

const char* open_stage_name(OpenStage s) {
  switch (s) {
    case OpenStage::kQueued:
      return "queued";
    case OpenStage::kInFlight:
      return "in_flight";
    case OpenStage::kUnlinked:
      return "unlinked";
  }
  return "?";
}

namespace {

const SpanRecord* lookup(
    const std::map<std::uint64_t, const SpanRecord*>& map, std::uint64_t key) {
  const auto it = map.find(key);
  return it == map.end() ? nullptr : it->second;
}

SimTime clamp0(SimTime t) {
  return t < SimTime::zero() ? SimTime::zero() : t;
}

}  // namespace

void CriticalPath::analyze(const Tracer& tracer) {
  tracer_ = &tracer;
  chains_.clear();
  batch_by_span_.clear();
  wire_by_parent_.clear();
  mds_by_parent_.clear();
  journal_by_parent_.clear();
  for (auto& agg : stages_) {
    agg.hist.reset();
    agg.total_ns = 0;
  }
  total_.hist.reset();
  total_.total_ns = 0;
  roots_ = 0;
  completed_ = 0;
  open_ = {};

  // Pass 1: index the collapsed span log. Span records are stable once
  // the lanes are collapsed (quiescent domain), so raw pointers are safe
  // for the analyzer's lifetime.
  for (const SpanRecord& s : tracer.spans()) {
    switch (s.stage) {
      case Stage::kClientWrite:
        if (s.parent == 0 && s.trace != 0) chains_[s.trace].root = &s;
        break;
      case Stage::kQueueWait:
        chains_[s.trace].has_qwait = true;
        break;
      case Stage::kCommitE2e:
        // Requeue re-records per checkout; collapsed order is
        // deterministic, so last-wins is too (the acked attempt).
        chains_[s.trace].e2e = &s;
        break;
      case Stage::kCheckoutBatch:
        batch_by_span_[s.span] = &s;
        break;
      case Stage::kRpcWire:
        wire_by_parent_[s.parent] = &s;
        break;
      case Stage::kMdsHandle:
        mds_by_parent_[s.parent] = &s;
        break;
      case Stage::kJournalFsync:
        journal_by_parent_[s.parent] = &s;
        break;
      default:
        break;
    }
  }

  // Pass 2: decompose every write root. chains_ is an ordered map, so
  // aggregation order — and with it every histogram and exact sum — is
  // independent of span-log layout details.
  for (const auto& [trace, ci] : chains_) {
    if (ci.root == nullptr) continue;  // qwait/e2e without a write root
    ++roots_;
    const BlameBreakdown b = decompose(trace);
    if (!b.completed) {
      ++open_[std::size_t(b.open)];
      continue;
    }
    ++completed_;
    for (std::size_t i = 0; i < kBlameStageCount; ++i) {
      stages_[i].hist.record(b.stage[i]);
      stages_[i].total_ns += redbud::sim::WideNanos(b.stage[i].ns());
    }
    total_.hist.record(b.total);
    total_.total_ns += redbud::sim::WideNanos(b.total.ns());
  }
}

BlameBreakdown CriticalPath::decompose(std::uint64_t trace_id) const {
  BlameBreakdown b;
  const auto it = chains_.find(trace_id);
  if (it == chains_.end() || it->second.root == nullptr) return b;
  const ChainIndex& ci = it->second;
  if (ci.e2e == nullptr) {
    b.open = ci.has_qwait ? OpenStage::kInFlight : OpenStage::kQueued;
    return b;
  }
  // Batch linkage: the e2e span's arg1 names the checkout-batch span that
  // carried this update (dedup merges and batch riders included); the
  // wire, MDS and journal spans hang off that batch's chain.
  const SpanRecord* batch = lookup(batch_by_span_, ci.e2e->arg1);
  const SpanRecord* wire =
      batch ? lookup(wire_by_parent_, batch->span) : nullptr;
  const SpanRecord* mds = wire ? lookup(mds_by_parent_, wire->span) : nullptr;
  const SpanRecord* jrn = mds ? lookup(journal_by_parent_, mds->span) : nullptr;
  if (jrn == nullptr) {
    b.open = OpenStage::kUnlinked;
    return b;
  }

  // Boundary instants the pipeline records directly. The seven components
  // partition [t0, t5] exactly: t2 (final checkout) closes the queue wait
  // and opens the batch span, and the MDS/journal spans nest inside the
  // wire span (the MDS replies only after its journal append is durable).
  const SimTime t0 = ci.root->start;  // op entry
  const SimTime t1 = ci.e2e->start;   // this update's enqueue
  const SimTime t2 = batch->start;    // final daemon checkout
  const SimTime t3 = batch->end;      // compound RPC handed to the wire
  const SimTime t4 = wire->end;       // reply received at the client
  const SimTime t5 = ci.e2e->end;     // commit acknowledged
  const SimTime mds_span = clamp0(mds->end - mds->start);
  const SimTime jrn_span = clamp0(jrn->end - jrn->start);

  b.stage[std::size_t(BlameStage::kClientSubmit)] = clamp0(t1 - t0);
  b.stage[std::size_t(BlameStage::kQueueWait)] = clamp0(t2 - t1);
  b.stage[std::size_t(BlameStage::kDaemonCheckout)] = clamp0(t3 - t2);
  b.stage[std::size_t(BlameStage::kRpcNetwork)] =
      clamp0((t4 - t3) - mds_span);
  b.stage[std::size_t(BlameStage::kMdsService)] = clamp0(mds_span - jrn_span);
  b.stage[std::size_t(BlameStage::kJournalFsync)] = jrn_span;
  b.stage[std::size_t(BlameStage::kAckReturn)] = clamp0(t5 - t4);
  b.total = clamp0(t5 - t0);
  b.completed = true;
  return b;
}

void CriticalPath::register_metrics(MetricsRegistry* registry) const {
  registry->register_value("chains_open", {{"stage", "queued"}},
                           &open_[std::size_t(OpenStage::kQueued)]);
  registry->register_value("chains_open", {{"stage", "in_flight"}},
                           &open_[std::size_t(OpenStage::kInFlight)]);
  registry->register_value("chains_open", {{"stage", "unlinked"}},
                           &open_[std::size_t(OpenStage::kUnlinked)]);
}

namespace {

void append_blame_agg(std::string& out, const CriticalPath::StageAgg& agg) {
  const auto& h = agg.hist;
  out += "\"count\": " + std::to_string(h.count());
  out += ", \"mean_us\": " + us_fixed(h.mean());
  out += ", \"p50_us\": " + us_fixed(h.percentile(50));
  out += ", \"p99_us\": " + us_fixed(h.percentile(99));
  out += ", \"p999_us\": " + us_fixed(h.percentile(99.9));
  out += ", \"max_us\": " + us_fixed(h.max());
}

}  // namespace

std::string blame_json(const CriticalPath& cp, SimTime now,
                       const Watchdog* watchdog) {
  std::string out = "{\n  \"schema\": \"redbud.blame.v1\",\n";
  out += "  \"sim_time_s\": " + fmt_double(now.to_seconds(), 6) + ",\n";
  out += "  \"chains\": {\"roots\": " + std::to_string(cp.roots());
  out += ", \"completed\": " + std::to_string(cp.completed());
  out += ", \"open\": {";
  for (std::size_t i = 0; i < kOpenStageCount; ++i) {
    out += i ? ", " : "";
    out += "\"";
    out += open_stage_name(OpenStage(i));
    out += "\": " + std::to_string(cp.open(OpenStage(i)));
  }
  out += "}},\n";

  // Shares are exact-integer ratios (WideNanos sums), so they are
  // bit-identical across worker counts whenever the span log is.
  const double total_ns = double(cp.total().total_ns);
  out += "  \"stages\": [\n";
  for (std::size_t i = 0; i < kBlameStageCount; ++i) {
    const auto s = BlameStage(i);
    const auto& agg = cp.stage(s);
    out += "    {\"stage\": \"";
    out += blame_stage_name(s);
    out += "\", \"kind\": \"";
    out += blame_is_queueing(s) ? "queueing" : "service";
    out += "\", \"share\": ";
    out += fmt_double(total_ns > 0 ? double(agg.total_ns) / total_ns : 0.0, 6);
    out += ", ";
    append_blame_agg(out, agg);
    out += "}";
    out += i + 1 < kBlameStageCount ? ",\n" : "\n";
  }
  out += "  ],\n";

  out += "  \"total\": {";
  append_blame_agg(out, cp.total());
  out += "},\n";

  out += "  \"incidents\": [";
  bool first = true;
  if (watchdog != nullptr) {
    for (const Incident& inc : watchdog->incidents()) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    {\"kind\": \"";
      out += incident_kind_name(inc.kind);
      out += "\", \"target\": \"" + json_escape(inc.target);
      out += "\", \"at_us\": " + us_fixed(inc.at);
      out += ", \"cleared\": ";
      out += inc.cleared ? "true" : "false";
      out += ", \"clear_at_us\": " + us_fixed(inc.clear_at);
      out += ", \"evidence\": \"" + json_escape(inc.evidence) + "\"}";
    }
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool write_blame_json(const CriticalPath& cp, SimTime now,
                      const std::string& path, const Watchdog* watchdog) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << blame_json(cp, now, watchdog);
  return bool(f);
}

}  // namespace redbud::obs
