// Time-series telemetry plane: periodic off-event sampling of the
// metrics registry.
//
// A TimeSeriesSampler turns the registry's point-in-time instruments into
// columnar series over simulated time: at every grid instant
// `interval, 2*interval, ...` it reads each registered counter, value and
// gauge and appends one column entry per channel into a keep-last-N ring.
//
// The sampling contract is *off-event*: the sampler is driven by the
// kernel probe hook (Simulation::set_probe / SimDomain::set_probe), which
// fires from inside the run loop when the clock is about to cross a grid
// instant — it never schedules events, never allocates sequence numbers
// and never suspends anything. Enabling sampling therefore cannot change
// the event order of a run; fig3/fig4 replay digests are byte-identical
// with sampling on or off. In a partitioned domain the probe fires on the
// coordinator thread between synchronization rounds while every worker is
// parked at the barrier, so registry reads are race-free, and because the
// firing sequence depends only on the deterministic series of round start
// times, sampled series are bit-identical across worker counts under
// force_partitioned (instants inside a window lag by < lookahead of
// simulated time — see SimDomain::set_probe).
//
// The channel set is frozen at the first sample (sorted registry order:
// counters, then raw values, then gauges); instruments registered later
// are ignored so every column has the same length. Channels are matched
// to the registry by canonical name on every sample, so a component that
// re-registers a view (rebuild/failover) transparently feeds the same
// column.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace redbud::obs {

class MetricsRegistry;

struct SamplerParams {
  // Grid stride in simulated time; zero disables sampling entirely.
  redbud::sim::SimTime interval = redbud::sim::SimTime::zero();
  // Ring capacity: the newest N samples are kept, older ones are
  // overwritten and counted as dropped.
  std::size_t max_samples = 8192;
};

class TimeSeriesSampler {
 public:
  enum class Kind : std::uint8_t { kCounter, kValue, kGauge };

  // One channel's unrolled (oldest -> newest) view for exporters.
  struct Series {
    std::string name;
    Kind kind = Kind::kCounter;
    std::vector<double> values;
  };

  TimeSeriesSampler() = default;
  explicit TimeSeriesSampler(SamplerParams params) : params_(params) {}
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

#if defined(REDBUD_OBS_DISABLED)
  static constexpr bool kCompiledIn = false;
#else
  static constexpr bool kCompiledIn = true;
#endif
  [[nodiscard]] bool enabled() const {
    return kCompiledIn && params_.interval > redbud::sim::SimTime::zero() &&
           registry_ != nullptr;
  }
  [[nodiscard]] redbud::sim::SimTime interval() const {
    return params_.interval;
  }

  // Attach the registry to sample from (done by the owning Obs bundle).
  void bind(const MetricsRegistry* registry) { registry_ = registry; }

  // Take one sample at grid instant `instant`. Called from the kernel
  // probe; strictly read-only with respect to simulation state.
  void sample(redbud::sim::SimTime instant);
  // Probe-compatible trampoline: `ctx` is the TimeSeriesSampler.
  static void probe_thunk(void* ctx, redbud::sim::SimTime instant);

  // ---- Readers (quiescent domain only) ----------------------------------
  [[nodiscard]] std::uint64_t samples_taken() const { return count_; }
  [[nodiscard]] std::uint64_t samples_dropped() const {
    return count_ > retained() ? count_ - retained() : 0;
  }
  // Samples currently held in the ring.
  [[nodiscard]] std::size_t retained() const { return instants_.size(); }
  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }

  // Unrolled oldest -> newest copies, deterministic order (counters,
  // values, gauges; name-sorted within each kind).
  [[nodiscard]] std::vector<redbud::sim::SimTime> instants() const;
  [[nodiscard]] std::vector<Series> series() const;

  [[nodiscard]] static const char* kind_name(Kind k);

 private:
  struct Channel {
    std::string name;  // canonical registry identity
    Kind kind = Kind::kCounter;
    std::vector<double> values;  // ring, same layout as instants_
  };

  void init_channels();
  void push(std::size_t slot, Channel& ch, double v);
  template <typename Map, typename Read>
  void sample_kind(std::size_t slot, std::size_t begin, std::size_t end,
                   const Map& map, Read read);

  SamplerParams params_;
  const MetricsRegistry* registry_ = nullptr;
  bool initialized_ = false;
  std::uint64_t count_ = 0;  // samples taken over the sampler's lifetime
  // Channel layout: [0, n_counters_) counters, then values, then gauges.
  std::size_t n_counters_ = 0;
  std::size_t n_values_ = 0;
  std::vector<Channel> channels_;
  std::vector<redbud::sim::SimTime> instants_;  // ring, slot = count % cap
};

}  // namespace redbud::obs
