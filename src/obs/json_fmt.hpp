// Deterministic JSON formatting helpers shared by the obs exporters
// (export.cpp, critical_path.cpp). All rendering is fixed-point via
// snprintf so artifacts are byte-identical across platforms and runs.
#pragma once

#include <cstdio>
#include <string>

#include "sim/time.hpp"

namespace redbud::obs {

// Deterministic fixed-point microsecond rendering of a SimTime.
inline std::string us_fixed(redbud::sim::SimTime t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", t.to_micros());
  return buf;
}

inline std::string fmt_double(double v, int precision = 3) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace redbud::obs
