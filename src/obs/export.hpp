// Run artifacts: a Chrome/Perfetto trace_events JSON of the span log and
// a metrics.json snapshot of the registry plus per-stage latency
// percentiles. Both are deterministic renderings — same run, same bytes —
// so they can be golden-file tested and diffed across PRs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sim/time.hpp"

namespace redbud::obs {

// Chrome trace_events ("Perfetto legacy JSON") rendering of the span log:
// one complete event ("ph":"X") per span, sim-time microseconds, one
// process group per client / shard with named tracks, span identity and
// annotations under "args". Open with https://ui.perfetto.dev.
[[nodiscard]] std::string perfetto_json(const Tracer& tracer);
// Returns false when the file cannot be opened or written.
[[nodiscard]] bool write_perfetto_json(const Tracer& tracer,
                                       const std::string& path);

// Registry + stage-latency snapshot. `now` timestamps the snapshot and
// finalises time-weighted gauges.
[[nodiscard]] std::string metrics_json(const Obs& obs, redbud::sim::SimTime now);
[[nodiscard]] bool write_metrics_json(const Obs& obs, redbud::sim::SimTime now,
                                      const std::string& path);

// Reconstruct the causal chain of the update whose root span is the op
// span of `trace`: client op -> queue wait -> (via the commit-e2e span's
// batch annotation) checkout batch -> RPC wire -> MDS handle -> journal
// fsync. Returns the stages found in causal order; an unbroken
// delayed-commit chain contains all of kClientWrite, kQueueWait,
// kCommitE2e, kCheckoutBatch, kRpcWire, kMdsHandle, kJournalFsync.
[[nodiscard]] std::vector<Stage> reconstruct_chain(const Tracer& tracer,
                                                   std::uint64_t trace_id);
// True when `trace_id` reconstructs every stage of the delayed-commit
// pipeline (the acceptance check used by mds_scaling --trace and tests).
[[nodiscard]] bool chain_unbroken(const Tracer& tracer,
                                  std::uint64_t trace_id);

}  // namespace redbud::obs
