// Run artifacts: a Chrome/Perfetto trace_events JSON of the span log and
// a metrics.json snapshot of the registry plus per-stage latency
// percentiles. Both are deterministic renderings — same run, same bytes —
// so they can be golden-file tested and diffed across PRs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sim/time.hpp"

namespace redbud::obs {

// Chrome trace_events ("Perfetto legacy JSON") rendering of the span log:
// one complete event ("ph":"X") per span, sim-time microseconds, one
// process group per client / shard with named tracks, span identity and
// annotations under "args". When a sampler with samples is passed, every
// sampled channel is additionally emitted as a Perfetto counter track
// ("ph":"C") under a dedicated "sampled series" process group. Open with
// https://ui.perfetto.dev.
[[nodiscard]] std::string perfetto_json(
    const Tracer& tracer, const TimeSeriesSampler* sampler = nullptr);
// Returns false when the file cannot be opened or written.
[[nodiscard]] bool write_perfetto_json(
    const Tracer& tracer, const std::string& path,
    const TimeSeriesSampler* sampler = nullptr);

// Process group id of the sampled-series counter tracks in the Perfetto
// export (outside the client/shard track ranges).
inline constexpr std::uint32_t kSampledSeriesPid = 999;

// Snapshot of the host process's memory footprint, read by the bench
// layer from /proc/self/status (zeros when unavailable).
struct ProcessMem {
  std::uint64_t vm_rss_kb = 0;
  std::uint64_t vm_hwm_kb = 0;
};

// Registry + stage-latency snapshot. `now` timestamps the snapshot and
// finalises time-weighted gauges; a non-null `mem` adds a "process"
// memory block.
[[nodiscard]] std::string metrics_json(const Obs& obs, redbud::sim::SimTime now,
                                       const ProcessMem* mem = nullptr);
[[nodiscard]] bool write_metrics_json(const Obs& obs, redbud::sim::SimTime now,
                                      const std::string& path,
                                      const ProcessMem* mem = nullptr);

// Columnar rendering of a sampler's series: schema redbud.timeseries.v1,
// shared `instants_us` axis plus one {name, kind, values} row per
// channel. Deterministic — same run, same bytes.
[[nodiscard]] std::string timeseries_json(const TimeSeriesSampler& sampler);
[[nodiscard]] bool write_timeseries_json(const TimeSeriesSampler& sampler,
                                         const std::string& path);

// Reconstruct the causal chain of the update whose root span is the op
// span of `trace`: client op -> queue wait -> (via the commit-e2e span's
// batch annotation) checkout batch -> RPC wire -> MDS handle -> journal
// fsync. Returns the stages found in causal order; an unbroken
// delayed-commit chain contains all of kClientWrite, kQueueWait,
// kCommitE2e, kCheckoutBatch, kRpcWire, kMdsHandle, kJournalFsync.
[[nodiscard]] std::vector<Stage> reconstruct_chain(const Tracer& tracer,
                                                   std::uint64_t trace_id);
// True when `trace_id` reconstructs every stage of the delayed-commit
// pipeline (the acceptance check used by mds_scaling --trace and tests).
[[nodiscard]] bool chain_unbroken(const Tracer& tracer,
                                  std::uint64_t trace_id);

}  // namespace redbud::obs
