#include "obs/timeseries.hpp"

#include "obs/metrics_registry.hpp"

namespace redbud::obs {

const char* TimeSeriesSampler::kind_name(Kind k) {
  switch (k) {
    case Kind::kCounter:
      return "counter";
    case Kind::kValue:
      return "value";
    case Kind::kGauge:
      return "gauge";
  }
  return "?";
}

void TimeSeriesSampler::probe_thunk(void* ctx, redbud::sim::SimTime instant) {
  static_cast<TimeSeriesSampler*>(ctx)->sample(instant);
}

void TimeSeriesSampler::init_channels() {
  channels_.clear();
  for (const auto& [name, c] : registry_->counters()) {
    (void)c;
    channels_.push_back({name, Kind::kCounter, {}});
  }
  n_counters_ = channels_.size();
  for (const auto& [name, v] : registry_->values()) {
    (void)v;
    channels_.push_back({name, Kind::kValue, {}});
  }
  n_values_ = channels_.size() - n_counters_;
  for (const auto& [name, g] : registry_->gauges()) {
    (void)g;
    channels_.push_back({name, Kind::kGauge, {}});
  }
  for (auto& ch : channels_) ch.values.reserve(params_.max_samples);
  instants_.reserve(params_.max_samples);
  initialized_ = true;
}

void TimeSeriesSampler::push(std::size_t slot, Channel& ch, double v) {
  if (ch.values.size() < params_.max_samples) {
    ch.values.push_back(v);
  } else {
    ch.values[slot] = v;
  }
}

// Advance through one sorted registry map in lockstep with the frozen
// channel slice [begin, end): both are name-sorted, so a single merge pass
// re-resolves every channel's instrument by canonical name (robust to
// re-registration; names that vanished — the registry never erases, but be
// defensive — sample as 0).
template <typename Map, typename Read>
void TimeSeriesSampler::sample_kind(std::size_t slot, std::size_t begin,
                                    std::size_t end, const Map& map,
                                    Read read) {
  auto it = map.begin();
  for (std::size_t i = begin; i < end; ++i) {
    Channel& ch = channels_[i];
    while (it != map.end() && it->first < ch.name) ++it;
    const double v =
        (it != map.end() && it->first == ch.name) ? read(it->second) : 0.0;
    push(slot, ch, v);
  }
}

void TimeSeriesSampler::sample(redbud::sim::SimTime instant) {
  if (!enabled()) return;
  if (!initialized_) init_channels();
  const std::size_t slot =
      static_cast<std::size_t>(count_ % params_.max_samples);
  if (instants_.size() < params_.max_samples) {
    instants_.push_back(instant);
  } else {
    instants_[slot] = instant;
  }
  sample_kind(slot, 0, n_counters_, registry_->counters(),
              [](const redbud::sim::Counter* c) {
                return static_cast<double>(c->value());
              });
  sample_kind(slot, n_counters_, n_counters_ + n_values_, registry_->values(),
              [](const std::uint64_t* v) { return static_cast<double>(*v); });
  sample_kind(slot, n_counters_ + n_values_, channels_.size(),
              registry_->gauges(),
              [](const redbud::sim::Gauge* g) { return g->current(); });
  ++count_;
}

std::vector<redbud::sim::SimTime> TimeSeriesSampler::instants() const {
  std::vector<redbud::sim::SimTime> out;
  const std::size_t n = instants_.size();
  out.reserve(n);
  // Oldest sample sits at slot count_ % cap once the ring has wrapped.
  const std::size_t head =
      count_ > n ? static_cast<std::size_t>(count_ % params_.max_samples) : 0;
  for (std::size_t i = 0; i < n; ++i) out.push_back(instants_[(head + i) % n]);
  return out;
}

std::vector<TimeSeriesSampler::Series> TimeSeriesSampler::series() const {
  std::vector<Series> out;
  out.reserve(channels_.size());
  const std::size_t n = instants_.size();
  const std::size_t head =
      count_ > n ? static_cast<std::size_t>(count_ % params_.max_samples) : 0;
  for (const Channel& ch : channels_) {
    Series s;
    s.name = ch.name;
    s.kind = ch.kind;
    s.values.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      s.values.push_back(ch.values[(head + i) % n]);
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace redbud::obs
