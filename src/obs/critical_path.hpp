// Critical-path latency attribution over the delayed-commit span chains.
//
// CriticalPath consumes a quiescent Tracer's collapsed span log and
// decomposes every *completed* write chain's end-to-end latency into
// seven contiguous blame stages (queueing vs service — DESIGN.md §6c):
//
//   client_submit   op entry -> commit-queue enqueue          (service)
//   queue_wait      enqueue -> final daemon checkout          (queueing)
//   daemon_checkout checkout -> compound RPC on the wire      (service)
//   rpc_network     wire residency minus MDS handling         (queueing)
//   mds_service     MDS handling minus journal flush          (service)
//   journal_fsync   journal append -> group commit durable    (service)
//   ack_return      reply on the wire -> commit acked         (service)
//
// The boundaries are instants the pipeline already records, so the seven
// components sum *exactly* to the end-to-end latency (enqueue epoch to
// ack, plus the client submit prefix). Dedup-merged updates and batch
// riders are attributed to the batch that actually carried them: each
// commit-e2e span's arg1 names its checkout-batch span, and the wire /
// MDS / journal spans hang off that batch's chain, so merged updates
// share batch-side residency while keeping per-update queue waits.
//
// Chains that never completed are not silently dropped: every write root
// is classified as completed or open at one of three stages (queued,
// in-flight, unlinked), exported as chains_open{stage=...} counters and
// in latency_blame.json, so a truncated run is distinguishable from a
// span-log hole.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "sim/stats.hpp"

namespace redbud::obs {

class MetricsRegistry;

enum class BlameStage : std::uint8_t {
  kClientSubmit,
  kQueueWait,
  kDaemonCheckout,
  kRpcNetwork,
  kMdsService,
  kJournalFsync,
  kAckReturn,
};
inline constexpr std::size_t kBlameStageCount = 7;
[[nodiscard]] const char* blame_stage_name(BlameStage s);
// Attribution rule: a stage is *queueing* when the op is waiting on
// capacity someone else is using, *service* when work is being done on
// its behalf (DESIGN.md §6c).
[[nodiscard]] bool blame_is_queueing(BlameStage s);

// Where an uncompleted chain stopped.
enum class OpenStage : std::uint8_t {
  kQueued,    // enqueued (or only submitted), never checked out
  kInFlight,  // checked out, commit RPC not yet acknowledged
  kUnlinked,  // acknowledged, but the batch linkage is missing/truncated
};
inline constexpr std::size_t kOpenStageCount = 3;
[[nodiscard]] const char* open_stage_name(OpenStage s);

// One chain's decomposition (exposed for unit tests).
struct BlameBreakdown {
  bool completed = false;
  OpenStage open = OpenStage::kQueued;  // meaningful when !completed
  std::array<redbud::sim::SimTime, kBlameStageCount> stage{};
  redbud::sim::SimTime total;  // op entry -> commit acknowledged
};

class CriticalPath {
 public:
  struct StageAgg {
    redbud::sim::LatencyHistogram hist;
    redbud::sim::WideNanos total_ns = 0;
  };

  CriticalPath() = default;
  CriticalPath(const CriticalPath&) = delete;
  CriticalPath& operator=(const CriticalPath&) = delete;

  // Index the tracer's span log and aggregate blame over every write
  // root. Quiescent domain only (the tracer collapses its lanes). The
  // tracer must outlive this analyzer.
  void analyze(const Tracer& tracer);

  // Decompose a single root trace using the indexes built by analyze().
  [[nodiscard]] BlameBreakdown decompose(std::uint64_t trace_id) const;

  [[nodiscard]] const StageAgg& stage(BlameStage s) const {
    return stages_[std::size_t(s)];
  }
  [[nodiscard]] const StageAgg& total() const { return total_; }
  [[nodiscard]] std::uint64_t roots() const { return roots_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t open(OpenStage s) const {
    return open_[std::size_t(s)];
  }
  [[nodiscard]] std::uint64_t open_total() const {
    return open_[0] + open_[1] + open_[2];
  }

  // Register chains_open{stage=...} views over the open-chain counts.
  // Call once per analyzer, after analyze() and before the metrics
  // export; the registry rejects duplicate registrations.
  void register_metrics(MetricsRegistry* registry) const;

 private:
  // Per-trace handles into the span log, built in one pass by analyze().
  struct ChainIndex {
    const SpanRecord* root = nullptr;  // the kClientWrite root span
    const SpanRecord* e2e = nullptr;   // this update's kCommitE2e span
    bool has_qwait = false;            // saw at least one kQueueWait
  };

  const Tracer* tracer_ = nullptr;
  // trace id -> per-chain span indexes; span id -> batch-side records.
  std::map<std::uint64_t, ChainIndex> chains_;
  std::map<std::uint64_t, const SpanRecord*> batch_by_span_;
  std::map<std::uint64_t, const SpanRecord*> wire_by_parent_;
  std::map<std::uint64_t, const SpanRecord*> mds_by_parent_;
  std::map<std::uint64_t, const SpanRecord*> journal_by_parent_;

  std::array<StageAgg, kBlameStageCount> stages_{};
  StageAgg total_{};
  std::uint64_t roots_ = 0;
  std::uint64_t completed_ = 0;
  std::array<std::uint64_t, kOpenStageCount> open_{};
};

// latency_blame.json (schema redbud.blame.v1): per-stage blame shares and
// percentiles, open-chain accounting, and the watchdog's incident log.
[[nodiscard]] std::string blame_json(const CriticalPath& cp,
                                     redbud::sim::SimTime now,
                                     const Watchdog* watchdog = nullptr);
[[nodiscard]] bool write_blame_json(const CriticalPath& cp,
                                    redbud::sim::SimTime now,
                                    const std::string& path,
                                    const Watchdog* watchdog = nullptr);

}  // namespace redbud::obs
