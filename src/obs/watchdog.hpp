// Online incident detection over the sampled metrics plane.
//
// A Watchdog owns a set of strictly passive detectors evaluated at every
// probe-grid instant (the same off-event hook that drives the
// TimeSeriesSampler — see timeseries.hpp for the determinism contract).
// Each detector reads registered instruments by base name, applies a
// kind-specific predicate with breach/clear hysteresis, and raises
// structured Incident records into an append-only log that exporters fold
// into latency_blame.json.
//
// Determinism: tick() only reads the registry and its own state; it never
// schedules events, allocates sequence numbers or suspends anything.
// Because the probe fires at deterministic grid instants on the
// coordinator thread (workers parked at the window barrier), the incident
// log is byte-identical with the watchdog armed or not, and bit-identical
// across worker counts under force_partitioned — the same argument as the
// sampler's (DESIGN.md §6b, §6c).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace redbud::obs {

class MetricsRegistry;

// Least-squares slope of y over x, both restricted to [from_s, until_s].
// Hoisted from bench/load_sweep.cpp so the sweep's saturation verdict and
// the online backlog detector share one fit and cannot drift.
[[nodiscard]] double window_slope(const std::vector<double>& x_s,
                                  const std::vector<double>& y, double from_s,
                                  double until_s);

// Incident taxonomy (DESIGN.md §6c). Each kind maps onto one injected
// fault family in bench/fault_matrix.
enum class IncidentKind : std::uint8_t {
  kBacklogGrowth,  // summed backlog series growing at a material slope
  kRetryStorm,     // RPC retransmissions observed inside the window
  kCommitStall,    // oldest queued commit older than the stall bound
  kFailoverStall,  // shard crash not yet answered by a completed failover
};
inline constexpr std::size_t kIncidentKindCount = 4;
[[nodiscard]] const char* incident_kind_name(IncidentKind k);

// One raised incident. `at` is the grid instant the breach persisted past
// the detector's hysteresis; `clear_at` is set when the reading stayed
// below threshold for `clear_ticks` consecutive samples.
struct Incident {
  IncidentKind kind = IncidentKind::kBacklogGrowth;
  redbud::sim::SimTime at;
  redbud::sim::SimTime clear_at;
  bool cleared = false;
  std::string target;    // base series (plus label set for stalls)
  std::string evidence;  // rendered detector reading at raise time
};

// Detector configuration. `threshold` units are kind-specific:
//   kBacklogGrowth — slope of sum(series) in units/s (floor gates the
//                    absolute level so an empty queue cannot breach);
//   kRetryStorm    — retransmissions counted inside `window`;
//   kCommitStall   — age of the oldest queued commit, in microseconds,
//                    read per label set of `series` (a *_us epoch value);
//   kFailoverStall — sum(series) - sum(series2), e.g. crashes - failovers.
struct DetectorParams {
  IncidentKind kind = IncidentKind::kBacklogGrowth;
  std::string series;
  std::string series2;  // second operand, kFailoverStall only
  double threshold = 0.0;
  double floor = 0.0;
  redbud::sim::SimTime window = redbud::sim::SimTime::millis(100);
  std::uint32_t breach_ticks = 2;
  std::uint32_t clear_ticks = 2;
};

class Watchdog {
 public:
  Watchdog() = default;
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

#if defined(REDBUD_OBS_DISABLED)
  static constexpr bool kCompiledIn = false;
#else
  static constexpr bool kCompiledIn = true;
#endif
  [[nodiscard]] bool enabled() const {
    return kCompiledIn && registry_ != nullptr && !detectors_.empty();
  }

  // Attach the registry to read from (done by the owning Obs bundle).
  void bind(const MetricsRegistry* registry) { registry_ = registry; }

  // Arm one detector. Call before the run; arming mid-run is safe (the
  // detector simply starts with an empty history).
  void arm(DetectorParams params);

  // Evaluate every armed detector at grid instant `now`. Called from the
  // kernel probe; strictly read-only with respect to simulation state.
  void tick(redbud::sim::SimTime now);

  // ---- Readers (quiescent domain only) ----------------------------------
  [[nodiscard]] const std::vector<Incident>& incidents() const {
    return incidents_;
  }
  [[nodiscard]] std::size_t detector_count() const {
    return detectors_.size();
  }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  struct Detector {
    DetectorParams params;
    // Sample history (t seconds, reading) pruned to the fit window; used
    // by the slope and rate kinds only.
    std::vector<double> hist_t_s;
    std::vector<double> hist_v;
    std::uint32_t breach_run = 0;
    std::uint32_t clear_run = 0;
    int active = -1;  // index into incidents_, -1 when not breaching
  };

  // One detector evaluation at a grid instant. `target`/`evidence` are
  // filled only when breached (they seed the Incident at raise time).
  struct Reading {
    double value = 0.0;
    bool breached = false;
    std::string target;
    std::string evidence;
  };
  [[nodiscard]] Reading evaluate(Detector& d, redbud::sim::SimTime now) const;

  const MetricsRegistry* registry_ = nullptr;
  std::vector<Detector> detectors_;
  std::vector<Incident> incidents_;
  std::uint64_t ticks_ = 0;
};

}  // namespace redbud::obs
