# Empty dependencies file for redbud.
# This may be replaced when dependencies are built.
