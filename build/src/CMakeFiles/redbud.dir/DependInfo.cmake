
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/nfs3.cpp" "src/CMakeFiles/redbud.dir/baseline/nfs3.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/baseline/nfs3.cpp.o.d"
  "/root/repo/src/baseline/pvfs2.cpp" "src/CMakeFiles/redbud.dir/baseline/pvfs2.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/baseline/pvfs2.cpp.o.d"
  "/root/repo/src/client/client_fs.cpp" "src/CMakeFiles/redbud.dir/client/client_fs.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/client/client_fs.cpp.o.d"
  "/root/repo/src/client/commit_daemon.cpp" "src/CMakeFiles/redbud.dir/client/commit_daemon.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/client/commit_daemon.cpp.o.d"
  "/root/repo/src/client/commit_queue.cpp" "src/CMakeFiles/redbud.dir/client/commit_queue.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/client/commit_queue.cpp.o.d"
  "/root/repo/src/client/compound_controller.cpp" "src/CMakeFiles/redbud.dir/client/compound_controller.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/client/compound_controller.cpp.o.d"
  "/root/repo/src/client/page_cache.cpp" "src/CMakeFiles/redbud.dir/client/page_cache.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/client/page_cache.cpp.o.d"
  "/root/repo/src/client/space_pool.cpp" "src/CMakeFiles/redbud.dir/client/space_pool.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/client/space_pool.cpp.o.d"
  "/root/repo/src/core/cluster.cpp" "src/CMakeFiles/redbud.dir/core/cluster.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/core/cluster.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/redbud.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/recovery.cpp" "src/CMakeFiles/redbud.dir/core/recovery.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/core/recovery.cpp.o.d"
  "/root/repo/src/core/testbed.cpp" "src/CMakeFiles/redbud.dir/core/testbed.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/core/testbed.cpp.o.d"
  "/root/repo/src/mds/alloc_group.cpp" "src/CMakeFiles/redbud.dir/mds/alloc_group.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/mds/alloc_group.cpp.o.d"
  "/root/repo/src/mds/btree.cpp" "src/CMakeFiles/redbud.dir/mds/btree.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/mds/btree.cpp.o.d"
  "/root/repo/src/mds/inode.cpp" "src/CMakeFiles/redbud.dir/mds/inode.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/mds/inode.cpp.o.d"
  "/root/repo/src/mds/journal.cpp" "src/CMakeFiles/redbud.dir/mds/journal.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/mds/journal.cpp.o.d"
  "/root/repo/src/mds/mds_server.cpp" "src/CMakeFiles/redbud.dir/mds/mds_server.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/mds/mds_server.cpp.o.d"
  "/root/repo/src/mds/space_manager.cpp" "src/CMakeFiles/redbud.dir/mds/space_manager.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/mds/space_manager.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/redbud.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/net/network.cpp.o.d"
  "/root/repo/src/net/rpc.cpp" "src/CMakeFiles/redbud.dir/net/rpc.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/net/rpc.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/redbud.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/sim/random.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/redbud.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/sim/simulation.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/redbud.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/sim/stats.cpp.o.d"
  "/root/repo/src/storage/blktrace.cpp" "src/CMakeFiles/redbud.dir/storage/blktrace.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/storage/blktrace.cpp.o.d"
  "/root/repo/src/storage/disk.cpp" "src/CMakeFiles/redbud.dir/storage/disk.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/storage/disk.cpp.o.d"
  "/root/repo/src/storage/disk_array.cpp" "src/CMakeFiles/redbud.dir/storage/disk_array.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/storage/disk_array.cpp.o.d"
  "/root/repo/src/storage/io_scheduler.cpp" "src/CMakeFiles/redbud.dir/storage/io_scheduler.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/storage/io_scheduler.cpp.o.d"
  "/root/repo/src/workload/filebench.cpp" "src/CMakeFiles/redbud.dir/workload/filebench.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/workload/filebench.cpp.o.d"
  "/root/repo/src/workload/npb_bt.cpp" "src/CMakeFiles/redbud.dir/workload/npb_bt.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/workload/npb_bt.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/CMakeFiles/redbud.dir/workload/workload.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/workload/workload.cpp.o.d"
  "/root/repo/src/workload/xcdn.cpp" "src/CMakeFiles/redbud.dir/workload/xcdn.cpp.o" "gcc" "src/CMakeFiles/redbud.dir/workload/xcdn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
