file(REMOVE_RECURSE
  "libredbud.a"
)
