# Empty dependencies file for redbud_tests.
# This may be replaced when dependencies are built.
