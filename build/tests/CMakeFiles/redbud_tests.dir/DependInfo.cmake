
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline/baseline_test.cpp" "tests/CMakeFiles/redbud_tests.dir/baseline/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/baseline/baseline_test.cpp.o.d"
  "/root/repo/tests/client/client_fs_test.cpp" "tests/CMakeFiles/redbud_tests.dir/client/client_fs_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/client/client_fs_test.cpp.o.d"
  "/root/repo/tests/client/commit_queue_test.cpp" "tests/CMakeFiles/redbud_tests.dir/client/commit_queue_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/client/commit_queue_test.cpp.o.d"
  "/root/repo/tests/client/compound_controller_test.cpp" "tests/CMakeFiles/redbud_tests.dir/client/compound_controller_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/client/compound_controller_test.cpp.o.d"
  "/root/repo/tests/client/page_cache_fuzz_test.cpp" "tests/CMakeFiles/redbud_tests.dir/client/page_cache_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/client/page_cache_fuzz_test.cpp.o.d"
  "/root/repo/tests/client/page_cache_test.cpp" "tests/CMakeFiles/redbud_tests.dir/client/page_cache_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/client/page_cache_test.cpp.o.d"
  "/root/repo/tests/client/space_pool_test.cpp" "tests/CMakeFiles/redbud_tests.dir/client/space_pool_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/client/space_pool_test.cpp.o.d"
  "/root/repo/tests/core/metrics_test.cpp" "tests/CMakeFiles/redbud_tests.dir/core/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/core/metrics_test.cpp.o.d"
  "/root/repo/tests/core/recovery_test.cpp" "tests/CMakeFiles/redbud_tests.dir/core/recovery_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/core/recovery_test.cpp.o.d"
  "/root/repo/tests/mds/alloc_test.cpp" "tests/CMakeFiles/redbud_tests.dir/mds/alloc_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/mds/alloc_test.cpp.o.d"
  "/root/repo/tests/mds/btree_test.cpp" "tests/CMakeFiles/redbud_tests.dir/mds/btree_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/mds/btree_test.cpp.o.d"
  "/root/repo/tests/mds/inode_fuzz_test.cpp" "tests/CMakeFiles/redbud_tests.dir/mds/inode_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/mds/inode_fuzz_test.cpp.o.d"
  "/root/repo/tests/mds/inode_test.cpp" "tests/CMakeFiles/redbud_tests.dir/mds/inode_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/mds/inode_test.cpp.o.d"
  "/root/repo/tests/mds/journal_test.cpp" "tests/CMakeFiles/redbud_tests.dir/mds/journal_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/mds/journal_test.cpp.o.d"
  "/root/repo/tests/mds/mds_server_test.cpp" "tests/CMakeFiles/redbud_tests.dir/mds/mds_server_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/mds/mds_server_test.cpp.o.d"
  "/root/repo/tests/net/congestion_test.cpp" "tests/CMakeFiles/redbud_tests.dir/net/congestion_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/net/congestion_test.cpp.o.d"
  "/root/repo/tests/net/network_test.cpp" "tests/CMakeFiles/redbud_tests.dir/net/network_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/net/network_test.cpp.o.d"
  "/root/repo/tests/net/rpc_test.cpp" "tests/CMakeFiles/redbud_tests.dir/net/rpc_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/net/rpc_test.cpp.o.d"
  "/root/repo/tests/sim/kernel_stress_test.cpp" "tests/CMakeFiles/redbud_tests.dir/sim/kernel_stress_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/sim/kernel_stress_test.cpp.o.d"
  "/root/repo/tests/sim/pipe_test.cpp" "tests/CMakeFiles/redbud_tests.dir/sim/pipe_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/sim/pipe_test.cpp.o.d"
  "/root/repo/tests/sim/primitives_test.cpp" "tests/CMakeFiles/redbud_tests.dir/sim/primitives_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/sim/primitives_test.cpp.o.d"
  "/root/repo/tests/sim/random_test.cpp" "tests/CMakeFiles/redbud_tests.dir/sim/random_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/sim/random_test.cpp.o.d"
  "/root/repo/tests/sim/simulation_test.cpp" "tests/CMakeFiles/redbud_tests.dir/sim/simulation_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/sim/simulation_test.cpp.o.d"
  "/root/repo/tests/sim/stats_test.cpp" "tests/CMakeFiles/redbud_tests.dir/sim/stats_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/sim/stats_test.cpp.o.d"
  "/root/repo/tests/sim/time_test.cpp" "tests/CMakeFiles/redbud_tests.dir/sim/time_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/sim/time_test.cpp.o.d"
  "/root/repo/tests/storage/disk_array_test.cpp" "tests/CMakeFiles/redbud_tests.dir/storage/disk_array_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/storage/disk_array_test.cpp.o.d"
  "/root/repo/tests/storage/disk_test.cpp" "tests/CMakeFiles/redbud_tests.dir/storage/disk_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/storage/disk_test.cpp.o.d"
  "/root/repo/tests/storage/io_scheduler_fuzz_test.cpp" "tests/CMakeFiles/redbud_tests.dir/storage/io_scheduler_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/storage/io_scheduler_fuzz_test.cpp.o.d"
  "/root/repo/tests/storage/io_scheduler_test.cpp" "tests/CMakeFiles/redbud_tests.dir/storage/io_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/storage/io_scheduler_test.cpp.o.d"
  "/root/repo/tests/workload/workload_test.cpp" "tests/CMakeFiles/redbud_tests.dir/workload/workload_test.cpp.o" "gcc" "tests/CMakeFiles/redbud_tests.dir/workload/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/redbud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
