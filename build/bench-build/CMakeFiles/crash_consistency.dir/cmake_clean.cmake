file(REMOVE_RECURSE
  "../bench/crash_consistency"
  "../bench/crash_consistency.pdb"
  "CMakeFiles/crash_consistency.dir/crash_consistency.cpp.o"
  "CMakeFiles/crash_consistency.dir/crash_consistency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
