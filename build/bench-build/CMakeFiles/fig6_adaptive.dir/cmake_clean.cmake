file(REMOVE_RECURSE
  "../bench/fig6_adaptive"
  "../bench/fig6_adaptive.pdb"
  "CMakeFiles/fig6_adaptive.dir/fig6_adaptive.cpp.o"
  "CMakeFiles/fig6_adaptive.dir/fig6_adaptive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
