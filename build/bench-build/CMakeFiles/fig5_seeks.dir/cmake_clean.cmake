file(REMOVE_RECURSE
  "../bench/fig5_seeks"
  "../bench/fig5_seeks.pdb"
  "CMakeFiles/fig5_seeks.dir/fig5_seeks.cpp.o"
  "CMakeFiles/fig5_seeks.dir/fig5_seeks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_seeks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
