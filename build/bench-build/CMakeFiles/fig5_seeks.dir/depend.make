# Empty dependencies file for fig5_seeks.
# This may be replaced when dependencies are built.
