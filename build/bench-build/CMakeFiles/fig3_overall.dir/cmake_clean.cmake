file(REMOVE_RECURSE
  "../bench/fig3_overall"
  "../bench/fig3_overall.pdb"
  "CMakeFiles/fig3_overall.dir/fig3_overall.cpp.o"
  "CMakeFiles/fig3_overall.dir/fig3_overall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
