# Empty dependencies file for fig3_overall.
# This may be replaced when dependencies are built.
