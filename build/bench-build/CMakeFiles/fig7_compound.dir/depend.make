# Empty dependencies file for fig7_compound.
# This may be replaced when dependencies are built.
