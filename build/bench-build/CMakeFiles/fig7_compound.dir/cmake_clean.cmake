file(REMOVE_RECURSE
  "../bench/fig7_compound"
  "../bench/fig7_compound.pdb"
  "CMakeFiles/fig7_compound.dir/fig7_compound.cpp.o"
  "CMakeFiles/fig7_compound.dir/fig7_compound.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_compound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
