file(REMOVE_RECURSE
  "../bench/ablation_chunk"
  "../bench/ablation_chunk.pdb"
  "CMakeFiles/ablation_chunk.dir/ablation_chunk.cpp.o"
  "CMakeFiles/ablation_chunk.dir/ablation_chunk.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
