# Empty compiler generated dependencies file for fig4_iomerge.
# This may be replaced when dependencies are built.
