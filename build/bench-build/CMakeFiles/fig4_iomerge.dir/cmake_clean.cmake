file(REMOVE_RECURSE
  "../bench/fig4_iomerge"
  "../bench/fig4_iomerge.pdb"
  "CMakeFiles/fig4_iomerge.dir/fig4_iomerge.cpp.o"
  "CMakeFiles/fig4_iomerge.dir/fig4_iomerge.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_iomerge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
