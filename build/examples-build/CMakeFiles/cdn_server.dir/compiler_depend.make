# Empty compiler generated dependencies file for cdn_server.
# This may be replaced when dependencies are built.
