file(REMOVE_RECURSE
  "../examples/cdn_server"
  "../examples/cdn_server.pdb"
  "CMakeFiles/cdn_server.dir/cdn_server.cpp.o"
  "CMakeFiles/cdn_server.dir/cdn_server.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
