#!/usr/bin/env bash
# Tier-1 gate: plain build + ctest, then the same suite under ASan+UBSan.
#
#   scripts/check.sh            # both passes
#   SKIP_SANITIZE=1 scripts/check.sh   # plain pass only
#
# The sanitizer pass builds Debug so asserts are live — the coroutine-frame
# arena and the kernel's monotonic-time/live-index invariants are exactly
# the kind of change this pass is meant to gate.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

run_suite() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

echo "== plain build + ctest =="
run_suite build

if [[ "${SKIP_SANITIZE:-0}" != "1" ]]; then
  echo "== ASan+UBSan build + ctest =="
  run_suite build-asan -DCMAKE_BUILD_TYPE=Debug \
    -DREDBUD_SANITIZE=address,undefined
fi

echo "check.sh: all suites passed"
