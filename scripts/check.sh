#!/usr/bin/env bash
# Tier-1 gate: plain build + ctest, then the same suite under ASan+UBSan.
#
#   scripts/check.sh            # both passes
#   SKIP_SANITIZE=1 scripts/check.sh   # plain pass only
#   REDBUD_SANITIZE=thread scripts/check.sh
#       # TSan pass only: Debug build, parallel-kernel suite (ctest -R
#       # Parallel) — the surface where worker threads actually share
#       # kernel state.
#
# The sanitizer pass builds Debug so asserts are live — the coroutine-frame
# arena and the kernel's monotonic-time/live-index invariants are exactly
# the kind of change this pass is meant to gate.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

run_suite() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

if [[ "${REDBUD_SANITIZE:-}" == "thread" ]]; then
  echo "== TSan build + parallel-kernel ctest =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug -DREDBUD_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -R Parallel
  echo "check.sh: TSan parallel suite passed"
  exit 0
fi

echo "== plain build + ctest =="
run_suite build

if [[ "${SKIP_SANITIZE:-0}" != "1" ]]; then
  echo "== ASan+UBSan build + ctest =="
  run_suite build-asan -DCMAKE_BUILD_TYPE=Debug \
    -DREDBUD_SANITIZE=address,undefined
fi

echo "check.sh: all suites passed"
