#!/usr/bin/env python3
"""Validate a bench_out JSON artifact against a checked-in schema.

Stdlib-only: implements the small JSON-Schema subset the checked-in
schemas use (type, enum, required, properties, additionalProperties,
items, minimum, $ref into #/definitions). CI runs this against the traced
mds_scaling run's bench_out/metrics.json and timeseries.json, the fault
matrix's bench_out/BENCH_faults.json, and the load sweep's
bench_out/BENCH_load.json and timeseries.json.

Usage: validate_metrics.py <schema.json> <artifact.json>
"""
import json
import sys


class ValidationError(Exception):
    pass


TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; a JSON true is not an integer.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def resolve_ref(root, ref):
    if not ref.startswith("#/"):
        raise ValidationError(f"unsupported $ref: {ref}")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def validate(value, schema, root, path="$"):
    if "$ref" in schema:
        validate(value, resolve_ref(root, schema["$ref"]), root, path)
        return

    stype = schema.get("type")
    if stype is not None:
        check = TYPE_CHECKS.get(stype)
        if check is None:
            raise ValidationError(f"{path}: unsupported schema type {stype!r}")
        if not check(value):
            raise ValidationError(
                f"{path}: expected {stype}, got {type(value).__name__}")

    if "enum" in schema and value not in schema["enum"]:
        raise ValidationError(f"{path}: {value!r} not in {schema['enum']}")

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        raise ValidationError(
            f"{path}: {value} below minimum {schema['minimum']}")

    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                raise ValidationError(f"{path}: missing required key {req!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                validate(sub, props[key], root, f"{path}.{key}")
            elif isinstance(extra, dict):
                validate(sub, extra, root, f"{path}.{key}")
            elif extra is False:
                raise ValidationError(f"{path}: unexpected key {key!r}")

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], root, f"{path}[{i}]")


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        schema = json.load(f)
    with open(argv[2]) as f:
        doc = json.load(f)
    try:
        validate(doc, schema, schema)
    except ValidationError as e:
        print(f"INVALID {argv[2]}: {e}", file=sys.stderr)
        return 1
    if doc.get("schema") == "redbud.timeseries.v1":  # sampled time-series
        if "points" in doc:  # load-sweep shape: one sampled block per point
            n_series = sum(len(p.get("series", [])) for p in doc["points"])
            sat = doc.get("saturation", {})
            knee = (f"knee at {sat['knee_offered_ops_s']:.0f} ops/s"
                    if sat.get("reached") else "knee not reached")
            summary = (f"{len(doc['points'])} load points, "
                       f"{n_series} series, {knee}")
        else:  # single-run shape
            summary = (f"{len(doc.get('series', []))} channels x "
                       f"{len(doc.get('instants_us', []))} samples "
                       f"({doc.get('dropped', 0)} dropped)")
    elif doc.get("schema") == "redbud.blame.v1":  # critical-path blame
        chains = doc.get("chains", {})
        open_total = sum(chains.get("open", {}).values())
        top = max(doc.get("stages", []), key=lambda s: s.get("share", 0),
                  default={})
        raised = len(doc.get("incidents", []))
        summary = (f"{chains.get('completed', 0)}/{chains.get('roots', 0)} "
                   f"chains complete ({open_total} open), top stage "
                   f"{top.get('stage', '?')} at "
                   f"{100.0 * top.get('share', 0.0):.1f}%, "
                   f"{raised} incidents")
    elif "cells" in doc:  # fault matrix artifact
        covered = sum(1 for c in doc["cells"] if c.get("incidents_covered"))
        summary = (f"{len(doc['cells'])} matrix cells, "
                   f"{covered} incident-covered")
    elif "points" in doc:  # load sweep artifact
        live = max((p["sessions_live"] for p in doc["points"]), default=0)
        summary = (f"{len(doc['points'])} load points, "
                   f"{doc.get('clients_total', 0)} clients "
                   f"({live} gauge-verified live)")
    else:  # metrics snapshot artifact
        n_stages = len(doc.get("stages", []))
        n_metrics = len(doc.get("counters", {})) + len(doc.get("gauges", {})) \
            + len(doc.get("histograms", {}))
        summary = (f"{n_metrics} metrics, {n_stages} stage entries, "
                   f"{doc.get('spans', {}).get('recorded', 0)} spans recorded")
    print(f"OK {argv[2]}: {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
