// Watch the adaptive machinery react to a bursty workload: the commit
// daemon pool grows with the queue (ThreadNums = rho * QueueLen) and the
// compound degree rises while the MDS is busy, then both relax.
//
//   $ ./build/examples/adaptive_tuning
#include <cstdio>

#include "core/cluster.hpp"

using namespace redbud;
using core::Cluster;
using core::ClusterParams;
using redbud::sim::Process;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

namespace {

Process one_writer(Simulation& sim, client::ClientFs& fs, int base,
                   int nfiles) {
  (void)sim;
  for (int i = 0; i < nfiles; ++i) {
    auto cfut = fs.create(net::kRootDir, "burst_" + std::to_string(base + i));
    const auto id = co_await cfut;
    auto wfut = fs.write(id, 0, 8 * 1024);
    (void)co_await wfut;
  }
}

Process bursty_writer(Simulation& sim, client::ClientFs& fs, int bursts,
                      int files_per_burst) {
  constexpr int kWriters = 24;  // many application threads per burst
  int seq = 0;
  for (int b = 0; b < bursts; ++b) {
    std::vector<redbud::sim::ProcRef> writers;
    for (int wtr = 0; wtr < kWriters; ++wtr) {
      writers.push_back(sim.spawn(
          one_writer(sim, fs, seq, files_per_burst / kWriters)));
      seq += files_per_burst / kWriters;
    }
    for (auto& w : writers) co_await w.join();
    // Quiet period between bursts: the pool should shrink back.
    co_await sim.delay(SimTime::millis(900));
  }
}

Process sampler(Simulation& sim, client::ClientFs& fs) {
  std::printf("%8s %12s %14s %16s %16s\n", "time", "queue len",
              "commit threads", "compound degree", "commits acked");
  for (int i = 0; i < 40; ++i) {
    std::printf("%6.1f s %12zu %14u %16u %16llu\n", sim.now().to_seconds(),
                fs.commit_queue().size(), fs.commit_pool().live_threads(),
                fs.compound().degree(),
                static_cast<unsigned long long>(
                    fs.commit_queue().committed_total()));
    co_await sim.delay(SimTime::millis(200));
  }
}

}  // namespace

int main() {
  ClusterParams params;
  params.nclients = 1;
  params.client.mode = client::CommitMode::kDelayed;
  params.client.pool.max_threads = 9;
  params.client.pool.max_queue_len = 200;  // small queue: visible scaling
  params.client.compound.adaptive = true;
  // One slow MDS daemon so the compound controller sees real pressure.
  params.mds.ndaemons = 1;

  Cluster cluster(params);
  cluster.start();
  cluster.sim().spawn(
      bursty_writer(cluster.sim(), cluster.client(0), 5, 1200));
  cluster.sim().spawn(sampler(cluster.sim(), cluster.client(0)));
  cluster.sim().run_until(SimTime::seconds(30));
  cluster.sim().check_failures();

  auto& fs = cluster.client(0);
  std::printf("\nfinal: %llu commit RPCs for %llu commits "
              "(mean compound degree %.2f)\n",
              static_cast<unsigned long long>(fs.commit_pool().rpcs_sent()),
              static_cast<unsigned long long>(
                  fs.commit_pool().entries_committed()),
              fs.commit_pool().mean_degree());
  return 0;
}
