// Quickstart: bring up a simulated Redbud cluster, create a file, write
// it with delayed commit, read it back, and make it durable with fsync.
//
//   $ ./build/examples/quickstart
//
// Everything runs in virtual time inside a deterministic discrete-event
// simulation — re-running prints identical numbers.
#include <cstdint>
#include <cstdio>

#include "core/cluster.hpp"

using namespace redbud;
using core::Cluster;
using core::ClusterParams;
using redbud::sim::Process;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

namespace {

Process demo(Simulation& sim, Cluster& cluster, client::ClientFs& fs) {
  // 1. Create a file (a metadata RPC to the MDS).
  auto cfut = fs.create(net::kRootDir, "hello.dat");
  const net::FileId file = co_await cfut;
  std::printf("[%7.3f ms] created file id=%llu\n", sim.now().to_millis(),
              static_cast<unsigned long long>(file));

  // 2. Write 64 KiB. Under delayed commit this returns as soon as the
  //    data pages are issued and the commit request joins the queue —
  //    microseconds, not a disk round trip.
  const SimTime w0 = sim.now();
  auto wfut = fs.write(file, 0, 64 * 1024);
  (void)co_await wfut;
  std::printf("[%7.3f ms] write returned after %.1f us (commit queue: %zu)\n",
              sim.now().to_millis(), (sim.now() - w0).to_micros(),
              fs.commit_queue().size());

  // 3. Read it straight back: served from the client cache even though
  //    the commit is still in flight (a "conflict read").
  auto rfut = fs.read(file, 0, 64 * 1024);
  auto rr = co_await rfut;
  bool ok = rr.status == net::Status::kOk;
  for (std::size_t b = 0; ok && b < rr.tokens.size(); ++b) {
    ok = rr.tokens[b] == fs.expected_token(file, b);
  }
  std::printf("[%7.3f ms] read-back of 16 pages: %s\n", sim.now().to_millis(),
              ok ? "verified" : "MISMATCH");

  // 4. fsync: wait for the data to be durable on the array AND the
  //    metadata commit to be journaled at the MDS.
  const SimTime s0 = sim.now();
  auto sfut = fs.fsync(file);
  (void)co_await sfut;
  std::printf("[%7.3f ms] fsync completed after %.2f ms\n",
              sim.now().to_millis(), (sim.now() - s0).to_millis());

  // 5. Inspect what the background machinery did. The metadata service
  //    is a (here: two-shard) cluster; the file's home shard carries its
  //    commits, so the per-shard lines show where the ShardMap routed it.
  std::printf("\ncluster state after the run:\n");
  std::printf("  commit RPCs sent       : %llu (mean compound degree %.2f)\n",
              static_cast<unsigned long long>(fs.commit_pool().rpcs_sent()),
              fs.commit_pool().mean_degree());
  for (std::uint32_t s = 0; s < cluster.nshards(); ++s) {
    std::printf(
        "  shard %u: durable commits %zu, journal flushes %llu, "
        "delegated chunks %zu\n",
        s, cluster.mds(s).durable_commits().size(),
        static_cast<unsigned long long>(cluster.journal(s).flushes()),
        cluster.mds(s).grants().size());
  }
}

}  // namespace

int main() {
  ClusterParams params;
  params.nclients = 1;
  params.nshards = 2;  // a small sharded metadata service
  params.client.mode = client::CommitMode::kDelayed;

  Cluster cluster(params);
  cluster.start();
  cluster.sim().spawn(demo(cluster.sim(), cluster, cluster.client(0)));
  cluster.sim().run_until(SimTime::seconds(10));
  cluster.sim().check_failures();
  return 0;
}
