// Crash and recovery walkthrough: why ordered writes matter, and what
// garbage collection cleans up afterwards.
//
//   $ ./build/examples/crash_recovery
//
// The cluster is crashed mid-burst (the simulation simply stops); the
// recovery checker then replays the MDS's durable commit log against the
// disks' durable contents.
#include <cstdint>
#include <cstdio>

#include "core/recovery.hpp"

using namespace redbud;
using core::Cluster;
using core::ClusterParams;
using redbud::sim::Process;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

namespace {

Process writer(Simulation& sim, client::ClientFs& fs, int id) {
  for (int i = 0; i < 50; ++i) {
    auto cfut = fs.create(net::kRootDir,
                          "w" + std::to_string(id) + "_" + std::to_string(i));
    const auto file = co_await cfut;
    if (file == net::kInvalidFile) continue;
    auto wfut = fs.write(file, 0, 16 * 1024);
    (void)co_await wfut;
    co_await sim.delay(SimTime::millis(2));
  }
}

void crash_once(client::CommitMode mode, const char* label) {
  ClusterParams params;
  params.nclients = 2;
  params.nshards = 2;  // recovery must hold across a sharded MDS cluster
  params.client.mode = mode;
  Cluster cluster(params);
  cluster.start();
  for (std::size_t c = 0; c < cluster.nclients(); ++c) {
    cluster.sim().spawn(writer(cluster.sim(), cluster.client(c), int(c)));
  }

  // CRASH: stop the world 40 ms in, with writes and commits in flight.
  cluster.sim().run_until(SimTime::millis(40));

  // Whole-cluster check: every shard's durable commit log against the
  // shared array.
  const auto report = core::check_consistency(cluster);
  std::printf("%s\n", label);
  std::printf("  durable commits in the journal        : %llu\n",
              static_cast<unsigned long long>(report.commits_checked));
  std::printf("  committed blocks checked against disk : %llu\n",
              static_cast<unsigned long long>(report.blocks_checked));
  std::printf("  metadata pointing at missing data     : %llu  %s\n",
              static_cast<unsigned long long>(report.inconsistent_blocks),
              report.consistent() ? "(consistent)" : "(INCONSISTENT!)");

  std::uint64_t before = 0;
  for (std::uint32_t s = 0; s < cluster.nshards(); ++s) {
    before += cluster.space(s).free_blocks();
  }
  const auto gc = core::collect_orphans(cluster);
  std::uint64_t after = 0;
  bool valid = true;
  for (std::uint32_t s = 0; s < cluster.nshards(); ++s) {
    after += cluster.space(s).free_blocks();
    valid = valid && cluster.space(s).validate();
  }
  std::printf("  orphaned blocks recycled by GC        : %llu"
              "  (provisional %llu + delegated %llu)\n",
              static_cast<unsigned long long>(after - before),
              static_cast<unsigned long long>(gc.provisional_blocks_freed),
              static_cast<unsigned long long>(gc.delegated_blocks_reclaimed));
  std::printf("  allocator invariants after GC         : %s\n\n",
              valid ? "valid" : "BROKEN");
}

}  // namespace

int main() {
  std::printf("Crashing a busy cluster in three commit modes\n\n");
  crash_once(client::CommitMode::kSync,
             "synchronous commit (original Redbud)");
  crash_once(client::CommitMode::kDelayed,
             "delayed commit (order kept by the file system)");
  crash_once(client::CommitMode::kUnordered,
             "unordered (what happens WITHOUT ordered writes)");
  std::printf(
      "Ordered writes keep metadata behind data at every crash point;\n"
      "the unordered variant shows the corruption they prevent. Orphan\n"
      "data (written but never committed) is recycled by GC, exactly as\n"
      "the paper describes.\n");
  return 0;
}
