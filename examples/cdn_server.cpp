// CDN edge-server scenario (the paper's motivating workload): a burst of
// small cache fills hits the file system. Run it twice — once with the
// original synchronous ordered writes, once with delayed commit — and
// watch where the time goes.
//
//   $ ./build/examples/cdn_server
#include <cstdio>

#include "core/cluster.hpp"

using namespace redbud;
using core::Cluster;
using core::ClusterParams;
using redbud::sim::Process;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

namespace {

constexpr int kObjects = 400;
constexpr std::uint32_t kObjectBytes = 32 * 1024;

Process edge_server(Simulation& sim, client::ClientFs& fs,
                    SimTime* burst_done, SimTime* durable_at) {
  // A burst of fills: 400 objects of 32 KiB arrive back-to-back.
  std::vector<net::FileId> ids;
  const SimTime t0 = sim.now();
  for (int i = 0; i < kObjects; ++i) {
    auto cfut = fs.create(net::kRootDir, "obj_" + std::to_string(i));
    const auto id = co_await cfut;
    auto wfut = fs.write(id, 0, kObjectBytes);
    (void)co_await wfut;
    auto clfut = fs.close(id);
    (void)co_await clfut;
    ids.push_back(id);
  }
  *burst_done = sim.now() - t0;
  // Drain everything so the two configurations are compared fairly.
  for (auto id : ids) {
    auto sfut = fs.fsync(id);
    (void)co_await sfut;
  }
  *durable_at = sim.now() - t0;
}

void run(client::CommitMode mode, const char* label) {
  ClusterParams params;
  params.nclients = 1;
  params.client.mode = mode;
  Cluster cluster(params);
  cluster.start();

  SimTime burst = SimTime::zero();
  SimTime durable = SimTime::zero();
  cluster.sim().spawn(
      edge_server(cluster.sim(), cluster.client(0), &burst, &durable));
  cluster.sim().run_until(SimTime::seconds(120));
  cluster.sim().check_failures();

  auto& fs = cluster.client(0);
  std::printf("%s\n", label);
  std::printf("  burst of %d x %u KiB fills accepted in : %8.1f ms\n",
              kObjects, kObjectBytes / 1024, burst.to_millis());
  std::printf("  per-fill latency                       : %8.2f ms\n",
              burst.to_millis() / kObjects);
  std::printf("  everything durable after               : %8.1f ms\n",
              durable.to_millis());
  std::printf("  commit RPCs sent                       : %8llu\n\n",
              static_cast<unsigned long long>(
                  mode == client::CommitMode::kDelayed
                      ? fs.commit_pool().rpcs_sent()
                      : std::uint64_t(kObjects)));
}

}  // namespace

int main() {
  std::printf("CDN edge burst: accepting fills vs making them durable\n\n");
  run(client::CommitMode::kSync, "original Redbud (synchronous commit)");
  run(client::CommitMode::kDelayed, "Redbud with delayed commit");
  std::printf(
      "Delayed commit accepts the burst at memory speed; ordering,\n"
      "merging and compound commits happen in the background daemons.\n");
  return 0;
}
