// Figure 6: the relation between the number of commit threads and the
// commit queue length over time, for varmail / fileserver / webproxy /
// xcdn (plus the NPB check that a quiet workload stays at one thread).
//
// Paper shapes: the thread count tracks the queue length (ThreadNums =
// rho * QueueLen, max 9); spikes in queue length pull the pool to its
// maximum and drain back; NPB barely exercises the queue, so the pool
// stays at a single thread.
#include <filesystem>
#include <memory>
#include <vector>

#include "common.hpp"
#include "parallel_runner.hpp"

using namespace redbud;
using namespace redbud::workload;
using core::Protocol;

namespace {

struct Row {
  double threads_max = 0.0;
  double threads_mean = 0.0;
  double queue_max = 0.0;
  double queue_mean = 0.0;
};

std::unique_ptr<Workload> make_workload(const std::string& name) {
  if (name == "varmail") return std::make_unique<VarmailWorkload>();
  if (name == "fileserver") {
    return std::make_unique<FileserverWorkload>(bench::fileserver_params());
  }
  if (name == "webproxy") return std::make_unique<WebproxyWorkload>();
  if (name == "xcdn-32KB") {
    return std::make_unique<XcdnWorkload>(bench::xcdn_params(32));
  }
  return std::make_unique<NpbBtWorkload>();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options cli = bench::Options::parse(argc, argv);
  core::print_banner(std::cout,
                     "Figure 6 — Commit threads vs commit queue length",
                     "Redbud + delayed commit, max 9 commit threads; "
                     "time series CSV in bench_out/fig6/");
  std::filesystem::create_directories("bench_out/fig6");

  core::Table table({"workload", "max threads", "mean threads", "max queue",
                     "mean queue", "paper expectation"});

  // Five independent workload runs; fan out over OS threads with one
  // preallocated result slot per workload.
  const std::vector<std::string> names = {"varmail", "fileserver", "webproxy",
                                          "xcdn-32KB", "NPB-BT"};
  std::vector<Row> rows(names.size());
  bench::ParallelRunner runner;
  for (std::size_t wi = 0; wi < names.size(); ++wi) {
    const std::string name = names[wi];
    Row& row = rows[wi];
    runner.add(name, [name, &row, cli]() -> bench::KernelStats {
      auto w = make_workload(name);
      auto params = bench::paper_testbed(Protocol::kRedbudDelayed, cli);
      params.redbud.client.pool.max_threads = 9;  // the paper's maximum
      core::Testbed bed(params);
      bed.start();
      // Trace the first client's pool (all clients behave alike).
      auto& pool = bed.cluster()->client(0).commit_pool();
      pool.enable_tracing(redbud::sim::SimTime::millis(100));

      auto opt = bench::paper_run(cli.smoke);
      opt.duration = redbud::sim::SimTime::seconds(12);
      (void)run_workload(bed, *w, opt);

      bench::write_obs_artifacts(*bed.cluster(), "fig6_" + name);

      const auto& ts = pool.thread_series();
      const auto& qs = pool.queue_series();
      bench::write_series_csv(ts, "bench_out/fig6/" + name + "_threads.csv");
      bench::write_series_csv(qs, "bench_out/fig6/" + name + "_queue.csv");
      row.threads_max = ts.max_value();
      row.threads_mean = ts.mean_value();
      row.queue_max = qs.max_value();
      row.queue_mean = qs.mean_value();
      std::fprintf(stderr, "  done: %s threads<=%.0f queue<=%.0f\n",
                   name.c_str(), row.threads_max, row.queue_max);
      return bench::kernel_stats(bed);
    });
  }
  runner.run_all();
  runner.write_json("fig6_adaptive");

  for (std::size_t wi = 0; wi < names.size(); ++wi) {
    const Row& row = rows[wi];
    table.add_row({names[wi], core::Table::fmt(row.threads_max, 0),
                   core::Table::fmt(row.threads_mean, 2),
                   core::Table::fmt(row.queue_max, 0),
                   core::Table::fmt(row.queue_mean, 1),
                   names[wi] == "NPB-BT"
                       ? "stays at 1 thread"
                       : "threads track queue; spikes hit the max"});
  }
  table.print(std::cout);
  return 0;
}
