// Figure 6: the relation between the number of commit threads and the
// commit queue length over time, for varmail / fileserver / webproxy /
// xcdn (plus the NPB check that a quiet workload stays at one thread).
//
// Paper shapes: the thread count tracks the queue length (ThreadNums =
// rho * QueueLen, max 9); spikes in queue length pull the pool to its
// maximum and drain back; NPB barely exercises the queue, so the pool
// stays at a single thread.
#include <filesystem>
#include <memory>

#include "common.hpp"

using namespace redbud;
using namespace redbud::workload;
using core::Protocol;

int main(int argc, char** argv) {
  const bench::Options cli = bench::Options::parse(argc, argv);
  core::print_banner(std::cout,
                     "Figure 6 — Commit threads vs commit queue length",
                     "Redbud + delayed commit, max 9 commit threads; "
                     "time series CSV in bench_out/fig6/");
  std::filesystem::create_directories("bench_out/fig6");

  core::Table table({"workload", "max threads", "mean threads", "max queue",
                     "mean queue", "paper expectation"});

  const std::vector<std::string> names = {"varmail", "fileserver", "webproxy",
                                          "xcdn-32KB", "NPB-BT"};
  for (const auto& name : names) {
    std::unique_ptr<Workload> w;
    if (name == "varmail") {
      w = std::make_unique<VarmailWorkload>();
    } else if (name == "fileserver") {
      w = std::make_unique<FileserverWorkload>(bench::fileserver_params());
    } else if (name == "webproxy") {
      w = std::make_unique<WebproxyWorkload>();
    } else if (name == "xcdn-32KB") {
      w = std::make_unique<XcdnWorkload>(bench::xcdn_params(32));
    } else {
      w = std::make_unique<NpbBtWorkload>();
    }

    auto params = bench::paper_testbed(Protocol::kRedbudDelayed, cli);
    params.redbud.client.pool.max_threads = 9;  // the paper's maximum
    core::Testbed bed(params);
    bed.start();
    // Trace the first client's pool (all clients behave alike).
    auto& pool = bed.cluster()->client(0).commit_pool();
    pool.enable_tracing(redbud::sim::SimTime::millis(100));

    auto opt = bench::paper_run(cli.smoke);
    opt.duration = redbud::sim::SimTime::seconds(12);
    (void)run_workload(bed, *w, opt);

    bench::write_obs_artifacts(*bed.cluster(), "fig6_" + name);

    const auto& ts = pool.thread_series();
    const auto& qs = pool.queue_series();
    bench::write_series_csv(ts, "bench_out/fig6/" + name + "_threads.csv");
    bench::write_series_csv(qs, "bench_out/fig6/" + name + "_queue.csv");

    table.add_row(
        {name, core::Table::fmt(ts.max_value(), 0),
         core::Table::fmt(ts.mean_value(), 2),
         core::Table::fmt(qs.max_value(), 0),
         core::Table::fmt(qs.mean_value(), 1),
         name == "NPB-BT" ? "stays at 1 thread"
                          : "threads track queue; spikes hit the max"});
    std::fprintf(stderr, "  done: %s threads<=%.0f queue<=%.0f\n",
                 name.c_str(), ts.max_value(), qs.max_value());
  }
  table.print(std::cout);
  return 0;
}
