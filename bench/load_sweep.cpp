// Open-loop load sweep: offered load vs latency at 10^5 live clients.
//
// The capstone for the flyweight client refactor: a 4-shard cluster
// serves 8 client hosts, each multiplexing thousands of flyweight
// sessions through one ClientFs engine (shared page pool, shared commit
// slab, one open-loop dispatcher per host — see src/client/flyweight.hpp
// and src/workload/openloop.hpp). The sweep drives Poisson arrivals at a
// range of offered loads and reports per-op-class p50/p99 into
// bench_out/BENCH_load.json (schemas/bench_load.schema.json).
//
// Live-client count and pooled-memory occupancy are read back from the
// obs gauge family (client_host.sessions_live, page_pool.frames_in_use,
// commit_slab.in_use) rather than trusted from the driver, and process
// peak memory (VmHWM) is recorded per point so memory-per-client is a
// measured number, not an estimate.
//
// Saturation is detected, not eyeballed: every point runs with the
// time-series sampler on (default 25 ms grid, --sample-interval to
// change), the per-host openloop.outstanding series are summed, and the
// least-squares slope of that sum over the measurement window is the
// open-loop overload signature — past the service capacity the in-flight
// set grows linearly at (offered - capacity) ops/s. A point is saturated
// when that slope is material (> 5% of offered), when completed
// throughput falls under 90% of offered, or when the drain window cannot
// empty the queue. The sweep reports the knee (first saturated offered
// load) and saturation_ops_s (the best completed rate seen) and writes
// the sampled series per point into bench_out/timeseries.json
// (schemas/timeseries.schema.json).
//
// Runs under the partitioned kernel with force_partitioned, so results
// are bit-identical for any --threads value. --smoke shrinks the fleet
// to 10^4 clients and two load points for CI.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "client/flyweight.hpp"
#include "common.hpp"
#include "core/cluster.hpp"
#include "core/metrics.hpp"
#include "obs/watchdog.hpp"
#include "parallel_runner.hpp"
#include "sim/random.hpp"
#include "workload/openloop.hpp"

using namespace redbud;
using client::ClientHost;
using core::Cluster;
using core::ClusterParams;
using redbud::sim::Rng;
using redbud::sim::SimTime;
using workload::kNumOpClasses;
using workload::op_class_name;
using workload::OpClass;
using workload::OpClassStats;
using workload::OpenLoopEngine;
using workload::OpenLoopParams;

namespace {

constexpr std::uint32_t kHosts = 8;
constexpr std::uint32_t kShards = 4;

struct ClassResult {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t measured = 0;
  double p50_us = 0, p99_us = 0, mean_us = 0;
};

// One offered-load level. Past the array's saturation point an open-loop
// queue grows without bound, so a finite drain window cannot empty it;
// such points set expect_drain=false and report the leftover backlog as
// data (drained=false, outstanding_at_end) instead of failing the sweep.
struct LoadPoint {
  double offered_ops;
  bool expect_drain;
};

// The sampled channels exported per point: the engines' live load state
// plus the pooled-resource occupancy gauges (the "queue depth" of the
// flyweight stack). The full registry is sampled; only these series go
// into the artifact to keep it reviewable.
constexpr const char* kExportPrefixes[] = {
    "openloop.outstanding", "openloop.shed", "commit_slab.in_use",
    "page_pool.frames_in_use"};

struct PointSeries {
  std::string name;
  const char* kind = "value";
  std::vector<double> values;
};

struct PointResult {
  double offered_ops = 0;       // offered load, ops/s across the fleet
  double measured_ops = 0;      // completed measured ops / measured span
  double span_s = 0;
  bool expect_drain = true;
  bool drained = false;
  std::uint64_t outstanding_end = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t shed = 0;
  std::uint64_t peak_outstanding = 0;
  std::uint64_t sessions_live = 0;
  std::uint64_t sessions_peak = 0;
  std::uint64_t pool_in_use = 0;
  std::uint64_t pool_peak = 0;
  std::uint64_t slab_in_use = 0;
  std::uint64_t slab_peak = 0;
  std::uint64_t prepare_failures = 0;
  obs::ProcessMem mem;
  ClassResult cls[kNumOpClasses];
  // Saturation signature: least-squares slope of the summed outstanding
  // series over the measurement window, in ops/s of queue growth.
  double outstanding_slope = 0;
  bool saturated = false;
  // Sampled series for the timeseries.json artifact.
  std::uint64_t samples = 0;
  std::uint64_t dropped = 0;
  std::vector<double> instants_us;
  std::vector<PointSeries> series;
  bench::KernelStats kernel;
  bool ok = false;
};

bool wants_export(const std::string& name) {
  for (const char* prefix : kExportPrefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

PointResult run_point(const LoadPoint& pt, std::uint32_t clients_per_host,
                      unsigned nthreads, SimTime sample_interval,
                      bool trace) {
  const double offered_ops = pt.offered_ops;
  PointResult res;
  res.offered_ops = offered_ops;
  res.expect_drain = pt.expect_drain;

  ClusterParams p;
  p.nclients = kHosts;
  p.nshards = kShards;
  p.nthreads = nthreads;
  // Identical results for every worker count (see sim/parallel.hpp).
  p.force_partitioned = true;
  p.array.ndisks = 4;
  p.array.disk.total_blocks = 1 << 22;
  p.metadata_disk.total_blocks = 1 << 22;
  p.journal.region_blocks = 1 << 16;
  p.client.cache_pages = 1 << 14;
  p.obs.sampling.interval = sample_interval;
  // --trace / REDBUD_TRACE: span-trace the point and attribute its e2e
  // latency per pipeline stage into a per-point blame artifact below.
  p.obs.tracing.enabled = trace;
  auto cluster = std::make_unique<Cluster>(p);

  std::vector<std::unique_ptr<ClientHost>> hosts;
  std::vector<std::unique_ptr<OpenLoopEngine>> engines;
  Rng master(0xC0FFEEull + std::uint64_t(offered_ops));
  for (std::uint32_t h = 0; h < kHosts; ++h) {
    hosts.push_back(std::make_unique<ClientHost>(cluster->client(h), h,
                                                 h * clients_per_host));
    hosts.back()->register_metrics(cluster->obs().registry);
    OpenLoopParams op;
    op.arrivals.kind = workload::ArrivalKind::kPoisson;
    op.arrivals.rate = offered_ops / kHosts;
    op.clients = clients_per_host;
    op.files_per_client = 1;
    op.write_bytes = 4 << 10;
    op.read_bytes = 4 << 10;
    op.prepare_parallelism = 128;
    engines.push_back(std::make_unique<OpenLoopEngine>(
        cluster->client_sim(h), *hosts.back(), op, master.split()));
    engines.back()->register_metrics(cluster->obs().registry, h);
  }

  Cluster& c = *cluster;
  c.start();
  std::vector<redbud::sim::SimFuture<redbud::sim::Done>> prep;
  for (auto& e : engines) prep.push_back(e->prepare());
  const SimTime t_start = SimTime::seconds(60);  // far past any prepare
  const OpenLoopEngine::Schedule sched{t_start, t_start,
                                       t_start + SimTime::seconds(5),
                                       t_start + SimTime::seconds(5)};
  for (auto& e : engines) e->start(sched);
  // The drain window is generous (the commit backlog drains at disk
  // speed), but bounded: points flagged expect_drain=false are allowed
  // to finish with ops still queued — that is the overload signature.
  c.run_until(t_start + SimTime::seconds(45));
  c.check_failures();

  res.ok = true;
  for (const auto& fut : prep) {
    if (!fut.ready()) {
      res.ok = false;
      std::fprintf(stderr, "    FAIL: prepare did not finish\n");
    }
  }

  OpClassStats agg[kNumOpClasses];
  for (auto& e : engines) {
    for (std::size_t i = 0; i < kNumOpClasses; ++i) {
      agg[i].merge(e->stats(static_cast<OpClass>(i)));
    }
    res.arrivals += e->arrivals_total();
    res.shed += e->shed_total();
    res.peak_outstanding += e->peak_outstanding();
    res.prepare_failures += e->prepare_failures();
    res.span_s = e->measured_span().to_seconds();
    res.outstanding_end += e->outstanding();
  }
  res.drained = res.outstanding_end == 0;
  if (!res.drained) {
    if (res.expect_drain) {
      res.ok = false;
      std::fprintf(stderr, "    FAIL: %llu ops still in flight at drain end\n",
                   static_cast<unsigned long long>(res.outstanding_end));
    } else {
      std::fprintf(stderr,
                   "    note: %llu ops queued at drain end "
                   "(expected past saturation)\n",
                   static_cast<unsigned long long>(res.outstanding_end));
    }
  }
  std::uint64_t measured_total = 0;
  for (std::size_t i = 0; i < kNumOpClasses; ++i) {
    ClassResult& r = res.cls[i];
    r.issued = agg[i].issued;
    r.completed = agg[i].completed;
    r.failed = agg[i].failed;
    r.measured = agg[i].latency.count();
    if (r.measured > 0) {
      r.p50_us = agg[i].latency.percentile(50).ns() / 1000.0;
      r.p99_us = agg[i].latency.percentile(99).ns() / 1000.0;
      r.mean_us = agg[i].latency.mean().ns() / 1000.0;
    }
    measured_total += r.measured;
    if (r.failed != 0) {
      res.ok = false;
      std::fprintf(stderr, "    FAIL: %llu %s ops failed\n",
                   static_cast<unsigned long long>(r.failed),
                   op_class_name(OpClass(i)));
    }
  }
  res.measured_ops =
      res.span_s > 0 ? double(measured_total) / res.span_s : 0.0;

  // Gauge-verified occupancy: the fleet size and pooled-resource usage as
  // the obs registry sees them, not as the driver believes them to be.
  const obs::MetricsRegistry& reg = c.obs().registry;
  res.sessions_live = reg.sum("client_host.sessions_live");
  res.sessions_peak = reg.sum("client_host.sessions_peak");
  res.pool_in_use = reg.sum("page_pool.frames_in_use");
  res.pool_peak = reg.sum("page_pool.frames_peak");
  res.slab_in_use = reg.sum("commit_slab.in_use");
  res.slab_peak = reg.sum("commit_slab.peak");
  res.ok = res.ok &&
           res.sessions_live == std::uint64_t(kHosts) * clients_per_host &&
           res.prepare_failures == 0;

  // Sampled series: extract the load-state channels, sum the per-host
  // outstanding series and fit its growth over the measurement window.
  const obs::TimeSeriesSampler& sampler = c.obs().sampler;
  res.samples = sampler.samples_taken();
  res.dropped = sampler.samples_dropped();
  std::vector<double> instants_s;
  for (const SimTime t : sampler.instants()) {
    instants_s.push_back(t.to_seconds());
    res.instants_us.push_back(double(t.ns()) / 1000.0);
  }
  std::vector<double> out_sum(instants_s.size(), 0.0);
  for (const auto& s : sampler.series()) {
    if (s.name.rfind("openloop.outstanding", 0) == 0) {
      for (std::size_t i = 0; i < s.values.size() && i < out_sum.size(); ++i) {
        out_sum[i] += s.values[i];
      }
    }
    if (wants_export(s.name)) {
      res.series.push_back(
          {s.name, obs::TimeSeriesSampler::kind_name(s.kind), s.values});
    }
  }
  // Saturation slope via the shared obs::window_slope — the same fit the
  // online watchdog's backlog detector runs, so bench and online path
  // cannot drift.
  res.outstanding_slope =
      obs::window_slope(instants_s, out_sum, t_start.to_seconds(),
                        (t_start + SimTime::seconds(5)).to_seconds());
  res.saturated = !res.drained ||
                  res.measured_ops < 0.9 * res.offered_ops ||
                  res.outstanding_slope > 0.05 * res.offered_ops;

  res.kernel = bench::kernel_stats(c);
  res.mem = bench::read_proc_mem();

  // Traced points decompose where the (often multi-second) op latency
  // lives — the knee point's table is quoted in EXPERIMENTS.md "where
  // the p99 lives".
  if (c.obs().tracer.enabled()) {
    obs::CriticalPath blame;
    blame.analyze(c.obs().tracer);
    std::filesystem::create_directories("bench_out");
    const std::string path = "bench_out/load_sweep_offered" +
                             std::to_string(std::uint64_t(offered_ops)) +
                             ".blame.json";
    if (!obs::write_blame_json(blame, c.now(), path, &c.obs().watchdog)) {
      std::fprintf(stderr, "    warning: failed to write %s\n", path.c_str());
    }
    std::fprintf(stderr,
                 "    blame: %llu/%llu chains complete -> %s\n",
                 static_cast<unsigned long long>(blame.completed()),
                 static_cast<unsigned long long>(blame.roots()), path.c_str());
  }
  return res;
}

struct Saturation {
  double saturation_ops_s = 0;   // best completed rate the sweep observed
  double knee_offered_ops_s = 0; // first offered load flagged saturated
  bool reached = false;
};

Saturation detect_saturation(const std::vector<PointResult>& points) {
  Saturation s;
  for (const PointResult& r : points) {
    s.saturation_ops_s = std::max(s.saturation_ops_s, r.measured_ops);
    if (r.saturated && !s.reached) {
      s.reached = true;
      s.knee_offered_ops_s = r.offered_ops;
    }
  }
  return s;
}

void write_load_json(const std::vector<PointResult>& points,
                     const Saturation& sat, std::uint32_t clients_total,
                     unsigned nthreads, bool smoke) {
  std::filesystem::create_directories("bench_out");
  std::ofstream out("bench_out/BENCH_load.json", std::ios::trunc);
  out << "{\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"nthreads\": " << nthreads << ",\n  \"hosts\": " << kHosts
      << ",\n  \"shards\": " << kShards
      << ",\n  \"clients_total\": " << clients_total
      << ",\n  \"saturation_ops_s\": " << sat.saturation_ops_s
      << ",\n  \"knee_offered_ops_s\": " << sat.knee_offered_ops_s
      << ",\n  \"saturation_reached\": " << (sat.reached ? "true" : "false")
      << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& r = points[i];
    out << "    {\"offered_ops_per_sec\": " << r.offered_ops
        << ", \"measured_ops_per_sec\": " << r.measured_ops
        << ", \"measured_span_s\": " << r.span_s
        << ", \"arrivals\": " << r.arrivals << ", \"shed\": " << r.shed
        << ", \"peak_outstanding\": " << r.peak_outstanding
        << ", \"drained\": " << (r.drained ? "true" : "false")
        << ", \"outstanding_at_end\": " << r.outstanding_end
        << ", \"outstanding_slope_ops_s\": " << r.outstanding_slope
        << ", \"saturated\": " << (r.saturated ? "true" : "false")
        << ", \"sessions_live\": " << r.sessions_live
        << ", \"sessions_peak\": " << r.sessions_peak
        << ", \"pool_frames_in_use\": " << r.pool_in_use
        << ", \"pool_frames_peak\": " << r.pool_peak
        << ", \"commit_slab_in_use\": " << r.slab_in_use
        << ", \"commit_slab_peak\": " << r.slab_peak
        << ", \"vm_rss_kb\": " << r.mem.vm_rss_kb
        << ", \"vm_hwm_kb\": " << r.mem.vm_hwm_kb << ",\n     \"classes\": {";
    for (std::size_t k = 0; k < kNumOpClasses; ++k) {
      const ClassResult& cr = r.cls[k];
      out << (k ? ", " : "") << "\"" << op_class_name(OpClass(k))
          << "\": {\"issued\": " << cr.issued
          << ", \"completed\": " << cr.completed
          << ", \"failed\": " << cr.failed
          << ", \"measured\": " << cr.measured << ", \"p50_us\": " << cr.p50_us
          << ", \"p99_us\": " << cr.p99_us << ", \"mean_us\": " << cr.mean_us
          << "}";
    }
    out << "}}" << (i + 1 < points.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "  BENCH_load.json: %zu points, %u clients\n",
               points.size(), clients_total);
}

// Sweep-shaped redbud.timeseries.v1 artifact: the sampled load-state
// series per point plus the saturation verdict. The single-run shape
// (obs::write_timeseries_json) and this one share
// schemas/timeseries.schema.json.
void write_sweep_timeseries(const std::vector<PointResult>& points,
                            const Saturation& sat, SimTime interval) {
  std::filesystem::create_directories("bench_out");
  std::ofstream out("bench_out/timeseries.json", std::ios::trunc);
  out << "{\n  \"schema\": \"redbud.timeseries.v1\",\n  \"interval_us\": "
      << double(interval.ns()) / 1000.0 << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& r = points[i];
    out << "    {\"offered_ops_per_sec\": " << r.offered_ops
        << ", \"outstanding_slope_ops_s\": " << r.outstanding_slope
        << ", \"saturated\": " << (r.saturated ? "true" : "false")
        << ", \"samples\": " << r.samples << ", \"dropped\": " << r.dropped
        << ",\n     \"instants_us\": [";
    for (std::size_t k = 0; k < r.instants_us.size(); ++k) {
      out << (k ? "," : "") << r.instants_us[k];
    }
    out << "],\n     \"series\": [\n";
    for (std::size_t s = 0; s < r.series.size(); ++s) {
      const PointSeries& ps = r.series[s];
      out << "       {\"name\": \"" << ps.name << "\", \"kind\": \""
          << ps.kind << "\", \"values\": [";
      for (std::size_t k = 0; k < ps.values.size(); ++k) {
        out << (k ? "," : "") << ps.values[k];
      }
      out << "]}" << (s + 1 < r.series.size() ? ",\n" : "\n");
    }
    out << "     ]}" << (i + 1 < points.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"saturation\": {\"saturation_ops_s\": "
      << sat.saturation_ops_s
      << ", \"knee_offered_ops_s\": " << sat.knee_offered_ops_s
      << ", \"reached\": " << (sat.reached ? "true" : "false") << "}\n}\n";
  std::fprintf(stderr, "  timeseries.json: %zu points, knee at %.0f ops/s\n",
               points.size(), sat.knee_offered_ops_s);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options cli = bench::Options::parse(argc, argv);
  const std::uint32_t clients_per_host = cli.smoke ? 1250 : 12500;
  const std::uint32_t clients_total = clients_per_host * kHosts;
  // Sampling is on by default here (the knee detector needs the series);
  // --sample-interval overrides the grid.
  const SimTime sample_interval = SimTime::millis_f(
      cli.sample_interval_ms > 0 ? cli.sample_interval_ms : 25.0);
  // Log-spaced offered loads spanning unsaturated, knee and overload (the
  // 4-spindle array saturates near 2k random 4 KiB commits/s, so the top
  // points exercise the open-loop valve, not just the service curve).
  // Drain is asserted only up to the knee; the top points run the valve
  // far past saturation, where an undrained backlog is the expected
  // result, not a failure.
  const std::vector<LoadPoint> loads =
      cli.smoke ? std::vector<LoadPoint>{{1000, true}, {4000, true}}
                : std::vector<LoadPoint>{
                      {1000, true}, {4000, true}, {16000, false},
                      {64000, false}};

  core::print_banner(
      std::cout, "Open-loop load sweep — flyweight client fleet",
      std::to_string(clients_total) + " live clients over " +
          std::to_string(kHosts) + " hosts, " + std::to_string(kShards) +
          " MDS shards; offered load vs per-class latency");

  // One runner thread: points run sequentially so per-point VmRSS/VmHWM
  // stays attributable, while the kernel accounting still lands in
  // BENCH_kernel.json rows like every other bench.
  std::vector<PointResult> points(loads.size());
  bench::ParallelRunner runner(1);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const LoadPoint& pt = loads[i];
    PointResult& slot = points[i];
    runner.add("offered=" + std::to_string(std::uint64_t(pt.offered_ops)),
               cli.threads,
               [&pt, &slot, &cli, clients_per_host,
                sample_interval]() -> bench::KernelStats {
                 std::fprintf(stderr, "  point: %.0f ops/s offered...\n",
                              pt.offered_ops);
                 slot = run_point(pt, clients_per_host, cli.threads,
                                  sample_interval,
                                  cli.obs().tracing.enabled);
                 return slot.kernel;
               });
  }
  runner.run_all();
  runner.write_json("load_sweep");

  bool ok = true;
  for (const PointResult& r : points) ok = ok && r.ok;
  const Saturation sat = detect_saturation(points);
  write_load_json(points, sat, clients_total, cli.threads, cli.smoke);
  write_sweep_timeseries(points, sat, sample_interval);

  core::Table table({"offered ops/s", "measured ops/s", "write p50 us",
                     "write p99 us", "fsync p99 us", "create p99 us", "shed",
                     "drained", "outq slope/s", "saturated", "live clients",
                     "VmHWM MiB"});
  for (const PointResult& r : points) {
    table.add_row(
        {core::Table::fmt(r.offered_ops, 0), core::Table::fmt(r.measured_ops, 0),
         core::Table::fmt(r.cls[std::size_t(OpClass::kWrite)].p50_us, 0),
         core::Table::fmt(r.cls[std::size_t(OpClass::kWrite)].p99_us, 0),
         core::Table::fmt(r.cls[std::size_t(OpClass::kFsync)].p99_us, 0),
         core::Table::fmt(r.cls[std::size_t(OpClass::kCreate)].p99_us, 0),
         std::to_string(r.shed), r.drained ? "yes" : "no",
         core::Table::fmt(r.outstanding_slope, 1),
         r.saturated ? "yes" : "no", std::to_string(r.sessions_live),
         core::Table::fmt(double(r.mem.vm_hwm_kb) / 1024.0, 0)});
  }
  table.print(std::cout);
  if (sat.reached) {
    std::cout << "saturation: knee at " << std::uint64_t(sat.knee_offered_ops_s)
              << " offered ops/s, capacity ~"
              << std::uint64_t(sat.saturation_ops_s) << " completed ops/s\n";
  } else {
    std::cout << "saturation: not reached (capacity > "
              << std::uint64_t(sat.saturation_ops_s) << " completed ops/s)\n";
  }
  std::cout << "sweep: " << (ok ? "OK" : "FAILED") << "\n";
  return ok ? 0 : 1;
}
