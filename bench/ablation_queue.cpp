// Ablation B (DESIGN.md): the adaptive commit pool's parameters — the
// queue bound (QueueLen_max, which also sets rho) and the thread cap
// (ThreadNums_max). Small queues throttle writers early; small thread
// caps leave commit RPCs under-parallelised; the paper's 9/450 sits on
// the flat part of both curves.
#include "common.hpp"

using namespace redbud;
using namespace redbud::workload;
using core::Protocol;

int main() {
  core::print_banner(std::cout,
                     "Ablation — commit pool sizing (xcdn-32KB)",
                     "ThreadNums_max x QueueLen_max sweep");

  core::Table table({"max threads", "max queue", "ops/s",
                     "mean commit latency", "mean compound degree"});

  for (std::uint32_t threads : {3u, 9u, 18u}) {
    for (std::size_t queue : {50ul, 450ul, 2000ul}) {
      auto params = bench::paper_testbed(Protocol::kRedbudDelayed);
      params.redbud.client.pool.max_threads = threads;
      params.redbud.client.pool.max_queue_len = queue;
      core::Testbed bed(params);
      bed.start();
      XcdnWorkload w(bench::xcdn_params(32));
      auto opt = bench::paper_run();
      auto r = run_workload(bed, w, opt);

      auto* cluster = bed.cluster();
      double commit_ms = 0.0;
      double degree = 0.0;
      for (std::size_t i = 0; i < cluster->nclients(); ++i) {
        commit_ms +=
            cluster->client(i).commit_queue().commit_latency().mean().to_millis();
        degree += cluster->client(i).commit_pool().mean_degree();
      }
      commit_ms /= double(cluster->nclients());
      degree /= double(cluster->nclients());
      table.add_row({std::to_string(threads), std::to_string(queue),
                     core::Table::fmt(r.ops_per_sec, 0),
                     core::Table::fmt(commit_ms, 2) + " ms",
                     core::Table::fmt(degree, 2)});
      std::fprintf(stderr, "  done: t=%u q=%zu ops=%.0f\n", threads, queue,
                   r.ops_per_sec);
    }
  }
  table.print(std::cout);
  return 0;
}
