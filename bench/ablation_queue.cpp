// Ablation B (DESIGN.md): the adaptive commit pool's parameters — the
// queue bound (QueueLen_max, which also sets rho) and the thread cap
// (ThreadNums_max). Small queues throttle writers early; small thread
// caps leave commit RPCs under-parallelised; the paper's 9/450 sits on
// the flat part of both curves.
#include <array>

#include "common.hpp"
#include "parallel_runner.hpp"

using namespace redbud;
using namespace redbud::workload;
using core::Protocol;

namespace {

constexpr std::uint32_t kThreadCaps[] = {3, 9, 18};
constexpr std::size_t kQueueCaps[] = {50, 450, 2000};

struct Row {
  double ops_per_sec = 0.0;
  double commit_ms = 0.0;
  double degree = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options cli = bench::Options::parse(argc, argv);
  core::print_banner(std::cout,
                     "Ablation — commit pool sizing (xcdn-32KB)",
                     "ThreadNums_max x QueueLen_max sweep");

  // 3x3 grid of independent simulations; fan out over OS threads with
  // one preallocated result slot per configuration.
  std::array<Row, std::size(kThreadCaps) * std::size(kQueueCaps)> rows{};
  bench::ParallelRunner runner;
  for (std::size_t ti = 0; ti < std::size(kThreadCaps); ++ti) {
    for (std::size_t qi = 0; qi < std::size(kQueueCaps); ++qi) {
      const std::uint32_t threads = kThreadCaps[ti];
      const std::size_t queue = kQueueCaps[qi];
      Row& row = rows[ti * std::size(kQueueCaps) + qi];
      runner.add("t" + std::to_string(threads) + "/q" + std::to_string(queue),
                 [threads, queue, &row, cli]() -> bench::KernelStats {
                   auto params = bench::paper_testbed(Protocol::kRedbudDelayed, cli);
                   params.redbud.client.pool.max_threads = threads;
                   params.redbud.client.pool.max_queue_len = queue;
                   core::Testbed bed(params);
                   bed.start();
                   XcdnWorkload w(bench::xcdn_params(32));
                   auto opt = bench::paper_run(cli.smoke);
                   auto r = run_workload(bed, w, opt);

                   auto* cluster = bed.cluster();
                   for (std::size_t i = 0; i < cluster->nclients(); ++i) {
                     row.commit_ms += cluster->client(i)
                                          .commit_queue()
                                          .commit_latency()
                                          .mean()
                                          .to_millis();
                     row.degree += cluster->client(i).commit_pool().mean_degree();
                   }
                   row.commit_ms /= double(cluster->nclients());
                   row.degree /= double(cluster->nclients());
                   row.ops_per_sec = r.ops_per_sec;
                   bench::write_obs_artifacts(
                       *cluster, "ablation_queue_t" + std::to_string(threads) +
                                     "_q" + std::to_string(queue));
                   return bench::kernel_stats(bed);
                 });
    }
  }
  runner.run_all();
  runner.write_json("ablation_queue");

  core::Table table({"max threads", "max queue", "ops/s",
                     "mean commit latency", "mean compound degree"});
  for (std::size_t ti = 0; ti < std::size(kThreadCaps); ++ti) {
    for (std::size_t qi = 0; qi < std::size(kQueueCaps); ++qi) {
      const Row& row = rows[ti * std::size(kQueueCaps) + qi];
      table.add_row({std::to_string(kThreadCaps[ti]),
                     std::to_string(kQueueCaps[qi]),
                     core::Table::fmt(row.ops_per_sec, 0),
                     core::Table::fmt(row.commit_ms, 2) + " ms",
                     core::Table::fmt(row.degree, 2)});
    }
  }
  table.print(std::cout);
  return 0;
}
