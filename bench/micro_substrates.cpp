// Substrate microbenchmarks (google-benchmark): the data structures and
// kernel paths every experiment leans on.
#include <benchmark/benchmark.h>

#include "client/commit_queue.hpp"
#include "client/page_cache.hpp"
#include "mds/alloc_group.hpp"
#include "mds/btree.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace redbud;

void BM_BPlusTreeInsert(benchmark::State& state) {
  const auto n = std::uint64_t(state.range(0));
  sim::Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    mds::BPlusTree t;
    std::vector<std::uint64_t> keys(n);
    for (auto& k : keys) k = rng.next_u64();
    state.ResumeTiming();
    for (auto k : keys) benchmark::DoNotOptimize(t.insert(k, k));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * std::int64_t(n));
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BPlusTreeLookup(benchmark::State& state) {
  const auto n = std::uint64_t(state.range(0));
  sim::Rng rng(2);
  mds::BPlusTree t;
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) {
    k = rng.next_u64();
    (void)t.insert(k, k);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.find(keys[i++ % n]));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_BPlusTreeLookup)->Arg(10000)->Arg(100000);

void BM_BPlusTreeMixed(benchmark::State& state) {
  sim::Rng rng(3);
  mds::BPlusTree t;
  for (auto _ : state) {
    const auto k = rng.next_below(100000);
    switch (rng.next_below(3)) {
      case 0:
        benchmark::DoNotOptimize(t.insert(k, k));
        break;
      case 1:
        benchmark::DoNotOptimize(t.erase(k));
        break;
      default:
        benchmark::DoNotOptimize(t.lower_bound(k));
        break;
    }
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_BPlusTreeMixed);

void BM_AllocGroupChurn(benchmark::State& state) {
  sim::Rng rng(4);
  mds::AllocGroup ag(0, 0, 1 << 20);
  std::vector<mds::FreeExtent> held;
  for (auto _ : state) {
    if (held.empty() || rng.bernoulli(0.6)) {
      if (auto got = ag.alloc(1 + rng.next_below(64),
                              mds::AllocPolicy::kNextFit)) {
        held.push_back(*got);
      }
    } else {
      const auto i = rng.next_below(held.size());
      ag.free(held[i].offset, held[i].nblocks);
      held[i] = held.back();
      held.pop_back();
    }
  }
  for (const auto& h : held) ag.free(h.offset, h.nblocks);
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_AllocGroupChurn);

void BM_PageCacheHit(benchmark::State& state) {
  client::PageCache cache(1 << 16);
  for (std::uint64_t b = 0; b < (1 << 15); ++b) cache.put_clean(1, b, b + 1);
  sim::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(1, rng.next_below(1 << 15)));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_PageCacheHit);

void BM_CommitQueueAddCheckout(benchmark::State& state) {
  sim::Simulation sim;
  client::CommitQueue q(sim);
  sim::Rng rng(6);
  std::uint64_t file = 1;
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      sim::SimPromise<sim::Done> data(sim);
      data.set_value(sim::Done{});
      std::vector<sim::SimFuture<sim::Done>> futs{data.future()};
      q.add(file++, {net::Extent{0, 4, {0, 100}}},
            std::vector<storage::ContentToken>(4, 1), 16384, std::move(futs));
    }
    auto batch = q.checkout(16);
    for (auto& task : batch) q.ack(task);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 16);
}
BENCHMARK(BM_CommitQueueAddCheckout);

void BM_EventLoopThroughput(benchmark::State& state) {
  // Cost of scheduling + dispatching one simulation event.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    constexpr int kEvents = 10000;
    int fired = 0;
    for (int i = 0; i < kEvents; ++i) {
      sim.call_at(sim::SimTime::micros(i), [&fired] { ++fired; });
    }
    state.ResumeTiming();
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 10000);
}
BENCHMARK(BM_EventLoopThroughput);

void BM_CallAt(benchmark::State& state) {
  // The timer path in isolation: call_at through the SmallFn slab —
  // captures up to 48 bytes ride inline in the slot, no per-timer heap
  // allocation. Capture size is the benchmark arg (8 = a bare pointer,
  // 48 = the SmallFn inline capacity).
  const auto capture_bytes = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    constexpr int kTimers = 10000;
    std::uint64_t acc = 0;
    state.ResumeTiming();
    if (capture_bytes <= 8) {
      for (int i = 0; i < kTimers; ++i) {
        sim.call_at(sim::SimTime::micros(i), [&acc] { ++acc; });
      }
    } else {
      struct Fat {
        std::uint64_t* acc;
        std::uint64_t pad[5];
      };
      for (int i = 0; i < kTimers; ++i) {
        Fat fat{&acc, {}};
        sim.call_at(sim::SimTime::micros(i), [fat] { ++*fat.acc; });
      }
    }
    sim.run();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 10000);
}
BENCHMARK(BM_CallAt)->Arg(8)->Arg(48);

void BM_CoroutineSpawnJoin(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    constexpr int kProcs = 1000;
    state.ResumeTiming();
    for (int i = 0; i < kProcs; ++i) {
      sim.spawn([](sim::Simulation& s) -> sim::Process {
        co_await s.delay(sim::SimTime::micros(1));
      }(sim));
    }
    sim.run();
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 1000);
}
BENCHMARK(BM_CoroutineSpawnJoin);

void BM_EventQueueScheduleDispatch(benchmark::State& state) {
  // The kernel's real access mix: a standing population of processes
  // stepping through a zero-delay-heavy mixed distribution (70% yields,
  // 30% random microsecond delays) — every channel/semaphore/future
  // wakeup in the system is a zero-delay event.
  constexpr int kProcs = 200;
  constexpr int kSteps = 100;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    sim::Rng rng(42);
    state.ResumeTiming();
    for (int i = 0; i < kProcs; ++i) {
      sim.spawn([](sim::Simulation& s, sim::Rng& r) -> sim::Process {
        for (int k = 0; k < kSteps; ++k) {
          if (r.next_below(10) < 7) {
            co_await s.yield();
          } else {
            co_await s.delay(
                sim::SimTime::micros(std::int64_t(1 + r.next_below(100))));
          }
        }
      }(sim, rng));
    }
    sim.run();
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * kProcs * kSteps);
}
BENCHMARK(BM_EventQueueScheduleDispatch);

void BM_ZeroDelayYield(benchmark::State& state) {
  // Pure ready-ring path: a yield chain never touches the heap.
  constexpr int kYields = 10000;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    state.ResumeTiming();
    sim.spawn([](sim::Simulation& s) -> sim::Process {
      for (int i = 0; i < kYields; ++i) co_await s.yield();
    }(sim));
    sim.run();
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * kYields);
}
BENCHMARK(BM_ZeroDelayYield);

void BM_SpawnRetire(benchmark::State& state) {
  // Frame allocation + live-table insert + retirement for short-lived
  // processes — the coroutine-per-request pattern of every workload.
  constexpr int kProcs = 2000;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    state.ResumeTiming();
    for (int i = 0; i < kProcs; ++i) {
      sim.spawn([](sim::Simulation& s) -> sim::Process {
        co_await s.yield();
      }(sim));
    }
    sim.run();
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * kProcs);
}
BENCHMARK(BM_SpawnRetire);

void BM_RngZipf(benchmark::State& state) {
  sim::Rng rng(7);
  sim::Zipf zipf(10000, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_RngZipf);

}  // namespace

BENCHMARK_MAIN();
