// Parallel fan-out of independent bench configurations over OS threads.
//
// Each configuration owns its entire stack — Simulation, testbed, workload
// — so running configurations on different threads is safe by construction
// (DESIGN.md §5: single-threaded simulation core, parallel harness). The
// runner also records per-configuration wall-clock seconds and kernel
// events/sec and appends them to bench_out/BENCH_kernel.json, keyed by
// bench name, so the kernel's performance trajectory is tracked PR-over-PR.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace redbud::bench {

// Kernel execution accounting for one configuration, summarised from the
// SimDomain's KernelProfile (see bench::kernel_stats in common.hpp). A
// baseline stack with no domain reports events only; profile fields stay
// zero but are present in every BENCH_kernel.json row.
struct KernelStats {
  std::uint64_t events = 0;
  std::uint64_t rounds = 0;    // partitioned synchronization rounds
  std::uint64_t busy_ns = 0;   // wall ns executing partition windows
  std::uint64_t stall_ns = 0;  // wall ns in barrier wake/wait stalls
  std::uint64_t injections_staged = 0;
  std::uint64_t injections_delivered = 0;
  std::uint64_t max_partition_events = 0;  // imbalance numerator
  std::uint32_t nparts = 1;
};

struct RunRecord {
  std::string label;
  double wall_s = 0.0;
  std::uint64_t events = 0;
  // Kernel worker threads the configuration ran with (1 = serial kernel).
  unsigned nthreads = 1;
  KernelStats kernel;
  [[nodiscard]] double events_per_sec() const {
    return wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0;
  }
};

class ParallelRunner {
 public:
  // threads == 0 picks the hardware concurrency (min 1).
  explicit ParallelRunner(unsigned threads = 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads_ = threads != 0 ? threads : (hw != 0 ? hw : 1);
  }

  // Enqueue one configuration. `fn` runs on a worker thread, must build and
  // own everything it touches (results go into caller-preallocated slots —
  // one slot per job, so no synchronisation is needed), and returns the
  // configuration's kernel accounting (bench::kernel_stats builds it from
  // a Cluster or Testbed).
  void add(std::string label, std::function<KernelStats()> fn) {
    jobs_.push_back({std::move(label), 1, std::move(fn)});
  }
  // Same, tagging the record with the kernel thread count the
  // configuration runs its simulation with.
  void add(std::string label, unsigned nthreads,
           std::function<KernelStats()> fn) {
    jobs_.push_back({std::move(label), nthreads, std::move(fn)});
  }

  // Run every configuration; records() preserves submission order no
  // matter which thread finishes first.
  void run_all() {
    records_.assign(jobs_.size(), RunRecord{});
    std::atomic<std::size_t> next{0};
    const auto worker = [this, &next] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= jobs_.size()) return;
        const auto t0 = std::chrono::steady_clock::now();
        const KernelStats stats = jobs_[i].fn();
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        RunRecord& r = records_[i];
        r.label = jobs_[i].label;
        r.wall_s = dt.count();
        r.events = stats.events;
        r.nthreads = jobs_[i].nthreads;
        r.kernel = stats;
        std::fprintf(stderr, "  done: %-32s %7.2fs  %6.2fM events/s\n",
                     r.label.c_str(), r.wall_s, r.events_per_sec() / 1e6);
      }
    };
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t n =
        std::min<std::size_t>(threads_, std::max<std::size_t>(jobs_.size(), 1));
    std::vector<std::thread> pool;
    pool.reserve(n > 0 ? n - 1 : 0);
    for (std::size_t t = 1; t < n; ++t) pool.emplace_back(worker);
    worker();  // the calling thread participates
    for (auto& th : pool) th.join();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    total_wall_s_ = dt.count();
  }

  [[nodiscard]] const std::vector<RunRecord>& records() const {
    return records_;
  }
  [[nodiscard]] double total_wall_s() const { return total_wall_s_; }
  [[nodiscard]] unsigned threads() const { return threads_; }

  // Merge this run's records into bench_out/BENCH_kernel.json under
  // `bench_name` (other benches' entries are preserved).
  void write_json(const std::string& bench_name) const {
    namespace fs = std::filesystem;
    fs::create_directories("bench_out");
    const fs::path path = "bench_out/BENCH_kernel.json";

    std::vector<std::pair<std::string, std::string>> entries;
    if (fs::exists(path)) {
      std::ifstream in(path);
      std::stringstream buf;
      buf << in.rdbuf();
      entries = parse_top_level(buf.str());
    }

    std::ostringstream own;
    own << "{\n    \"threads\": " << threads_
        << ",\n    \"total_wall_s\": " << total_wall_s_
        << ",\n    \"configs\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const RunRecord& r = records_[i];
      own << "      {\"label\": \"" << r.label << "\", \"wall_s\": " << r.wall_s
          << ", \"events\": " << r.events
          << ", \"events_per_sec\": " << r.events_per_sec()
          << ", \"nthreads\": " << r.nthreads
          << ", \"nparts\": " << r.kernel.nparts
          << ", \"rounds\": " << r.kernel.rounds
          << ", \"busy_ns\": " << r.kernel.busy_ns
          << ", \"stall_ns\": " << r.kernel.stall_ns
          << ", \"injections_staged\": " << r.kernel.injections_staged
          << ", \"injections_delivered\": " << r.kernel.injections_delivered
          << ", \"max_partition_events\": " << r.kernel.max_partition_events
          << "}" << (i + 1 < records_.size() ? ",\n" : "\n");
    }
    own << "    ]\n  }";

    bool replaced = false;
    for (auto& [key, value] : entries) {
      if (key == bench_name) {
        value = own.str();
        replaced = true;
      }
    }
    if (!replaced) entries.emplace_back(bench_name, own.str());

    std::ofstream out(path, std::ios::trunc);
    out << "{\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      out << "  \"" << entries[i].first << "\": " << entries[i].second
          << (i + 1 < entries.size() ? ",\n" : "\n");
    }
    out << "}\n";
    std::fprintf(stderr, "  BENCH_kernel.json: %s = %zu configs, %.2fs wall\n",
                 bench_name.c_str(), records_.size(), total_wall_s_);
  }

 private:
  struct Job {
    std::string label;
    unsigned nthreads = 1;
    std::function<KernelStats()> fn;
  };

  // Parse the flat `{ "key": { ... }, ... }` object this class writes.
  // Values are balanced-brace objects with no braces inside strings, which
  // holds for everything the harness emits.
  [[nodiscard]] static std::vector<std::pair<std::string, std::string>>
  parse_top_level(const std::string& s) {
    std::vector<std::pair<std::string, std::string>> out;
    std::size_t i = s.find('{');
    if (i == std::string::npos) return out;
    ++i;
    for (;;) {
      const std::size_t k0 = s.find('"', i);
      if (k0 == std::string::npos) break;
      const std::size_t k1 = s.find('"', k0 + 1);
      if (k1 == std::string::npos) break;
      const std::size_t colon = s.find(':', k1);
      if (colon == std::string::npos) break;
      const std::size_t v0 = s.find_first_not_of(" \t\r\n", colon + 1);
      if (v0 == std::string::npos || s[v0] != '{') break;
      std::size_t v1 = v0;
      int depth = 0;
      do {
        if (s[v1] == '{') ++depth;
        if (s[v1] == '}') --depth;
        ++v1;
      } while (v1 < s.size() && depth > 0);
      if (depth != 0) break;
      out.emplace_back(s.substr(k0 + 1, k1 - k0 - 1), s.substr(v0, v1 - v0));
      i = v1;
    }
    return out;
  }

  unsigned threads_ = 1;
  std::vector<Job> jobs_;
  std::vector<RunRecord> records_;
  double total_wall_s_ = 0.0;
};

}  // namespace redbud::bench
