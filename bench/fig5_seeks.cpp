// Figure 5: blktrace-style disk seek scatter under xcdn (32 KB and 1 MB)
// for the same three Redbud configurations as Figure 4.
//
// Paper shapes: both the original Redbud and plain delayed commit seek
// constantly (dense scatter); space delegation nearly eliminates seeks,
// leaving only sparse spikes when the head jumps to a fresh chunk.
//
// The raw scatter series (time vs block / seek distance) is written as
// CSV per configuration under bench_out/fig5/; the table summarises the
// per-dispatch seek statistics.
#include <array>
#include <filesystem>
#include <vector>

#include "common.hpp"
#include "parallel_runner.hpp"
#include "storage/blktrace.hpp"

using namespace redbud;
using namespace redbud::workload;
using core::Protocol;

namespace {

struct Config {
  const char* name;
  const char* slug;
  Protocol protocol;
  bool delegation;
};

constexpr Config kConfigs[] = {
    {"Original Redbud", "original", Protocol::kRedbudSync, false},
    {"Delayed Commit", "delayed", Protocol::kRedbudDelayed, false},
    {"Space Delegation", "delegation", Protocol::kRedbudDelayed, true},
};

constexpr std::uint32_t kSizesKb[] = {32, 1024};

struct Cell {
  std::uint64_t dispatches = 0;
  double frac = 0.0;
  double seeks_per_mb = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options cli = bench::Options::parse(argc, argv);
  core::print_banner(std::cout, "Figure 5 — Disk seeks (blktrace)",
                     "xcdn; seek fraction = dispatches requiring head "
                     "movement; CSV scatter in bench_out/fig5/");
  std::filesystem::create_directories("bench_out/fig5");

  core::Table table({"config", "file size", "dispatches", "seek fraction",
                     "seeks per MB moved", "paper expectation"});

  // 2 file sizes x 3 configurations, each an independent simulation with
  // its own CSV output paths; fan out over OS threads.
  std::array<Cell, std::size(kSizesKb) * std::size(kConfigs)> cells{};
  bench::ParallelRunner runner;
  for (std::size_t si = 0; si < std::size(kSizesKb); ++si) {
    for (std::size_t ci = 0; ci < std::size(kConfigs); ++ci) {
      const std::uint32_t kb = kSizesKb[si];
      const Config& cfg = kConfigs[ci];
      Cell& cell = cells[si * std::size(kConfigs) + ci];
      runner.add(std::string(cfg.slug) + "/" + std::to_string(kb) + "KB",
                 [kb, &cfg, &cell, cli]() -> bench::KernelStats {
                   auto params = bench::paper_testbed(cfg.protocol, cli);
                   params.redbud.client.delegation = cfg.delegation;
                   core::Testbed bed(params);
                   bed.start();
                   XcdnWorkload w(bench::xcdn_params(kb));
                   auto opt = bench::paper_run(cli.smoke);
                   auto* cluster = bed.cluster();
                   opt.on_measure_start = [cluster] {
                     cluster->array().reset_stats();
                     for (std::uint32_t d = 0; d < cluster->array().ndisks();
                          ++d) {
                       cluster->array().disk(d).trace().set_enabled(true);
                     }
                   };
                   (void)run_workload(bed, w, opt);
                   bench::write_obs_artifacts(
                       *cluster, "fig5_" + std::string(cfg.slug) + "_" +
                                     std::to_string(kb) + "KB");

                   std::uint64_t dispatches = 0;
                   std::uint64_t seeks = 0;
                   std::uint64_t blocks_moved = 0;
                   for (std::uint32_t d = 0; d < cluster->array().ndisks();
                        ++d) {
                     const auto& tr = cluster->array().disk(d).trace();
                     dispatches += tr.events().size();
                     seeks += tr.seek_count();
                     for (const auto& ev : tr.events()) {
                       blocks_moved += ev.nblocks;
                     }
                     const std::string path =
                         "bench_out/fig5/" + std::string(cfg.slug) + "_" +
                         std::to_string(kb) + "KB_disk" + std::to_string(d) +
                         ".csv";
                     bench::write_trace_csv(tr, path);
                   }
                   cell.dispatches = dispatches;
                   cell.frac = dispatches == 0
                                   ? 0.0
                                   : double(seeks) / double(dispatches);
                   const double mb = double(blocks_moved) *
                                     double(storage::kBlockSize) / (1 << 20);
                   cell.seeks_per_mb = mb > 0 ? double(seeks) / mb : 0.0;
                   std::fprintf(stderr, "  done: %s %uKB seeks=%.3f\n",
                                cfg.name, kb, cell.frac);
                   return bench::kernel_stats(bed);
                 });
    }
  }
  runner.run_all();
  runner.write_json("fig5_seeks");

  for (std::size_t si = 0; si < std::size(kSizesKb); ++si) {
    for (std::size_t ci = 0; ci < std::size(kConfigs); ++ci) {
      const Cell& cell = cells[si * std::size(kConfigs) + ci];
      table.add_row({kConfigs[ci].name, std::to_string(kSizesKb[si]) + " KB",
                     std::to_string(cell.dispatches),
                     core::Table::fmt(cell.frac, 3),
                     core::Table::fmt(cell.seeks_per_mb, 1),
                     kConfigs[ci].delegation ? "few seeks, sparse spikes"
                                             : "dense seeking"});
    }
  }
  table.print(std::cout);
  return 0;
}
