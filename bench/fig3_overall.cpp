// Figure 3: overall performance of PVFS2, NFS3, original Redbud and
// Redbud with delayed commit across the five workloads, normalised to
// original Redbud.
//
// Paper shapes to reproduce:
//  * varmail / webproxy: delayed commit ~1.5x over original Redbud;
//  * xcdn 32KB: ~2.6x, close to NFS3 (which wins this one);
//  * xcdn 1MB: delayed commit still improves; Redbud >> NFS3 on large
//    files (FC data path vs the NFS server's single Ethernet NIC);
//  * NPB BT: PVFS2 best (MPI-IO collective buffering); no degradation
//    from delayed commit despite the verify phase's conflict reads.
#include <memory>
#include <vector>

#include "common.hpp"
#include "parallel_runner.hpp"

using namespace redbud;
using namespace redbud::workload;
using core::Protocol;

namespace {

struct Row {
  std::string workload;
  std::string paper_note;
  double value[4] = {0, 0, 0, 0};  // PVFS2, NFS3, Redbud, Redbud+DC
  // Per-protocol so parallel configuration runs never share a slot.
  std::uint64_t verify[4] = {0, 0, 0, 0};
};

constexpr Protocol kProtocols[] = {Protocol::kPvfs2, Protocol::kNfs3,
                                   Protocol::kRedbudSync,
                                   Protocol::kRedbudDelayed};

std::unique_ptr<Workload> make_workload(const std::string& which) {
  if (which == "fileserver") {
    return std::make_unique<FileserverWorkload>(bench::fileserver_params());
  }
  if (which == "varmail") return std::make_unique<VarmailWorkload>();
  if (which == "webproxy") {
    // Default fileset: webproxy's read set fits the cache, as the paper's
    // did in 8 GB of client RAM — the gains come from the writes/deletes.
    return std::make_unique<WebproxyWorkload>();
  }
  if (which == "xcdn-32KB") {
    return std::make_unique<XcdnWorkload>(bench::xcdn_params(32));
  }
  if (which == "xcdn-1MB") {
    return std::make_unique<XcdnWorkload>(bench::xcdn_params(1024));
  }
  return std::make_unique<NpbBtWorkload>();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options cli = bench::Options::parse(argc, argv);
  core::print_banner(
      std::cout, "Figure 3 — Overall performance",
      "throughput normalised to original Redbud (higher is better)");

  const std::vector<std::pair<std::string, std::string>> workloads = {
      {"fileserver", "DC gains on small-file creates/appends"},
      {"varmail", "paper: DC ~1.5x"},
      {"webproxy", "paper: DC ~1.5x"},
      {"xcdn-32KB", "paper: DC ~2.6x, ~NFS3"},
      {"xcdn-1MB", "paper: DC still improves; Redbud >> NFS3"},
      {"NPB-BT", "paper: PVFS2 best; DC unharmed by conflict reads"},
  };

  // Every (workload, protocol) cell is an independent simulation; fan the
  // 24-configuration grid out over OS threads.
  std::vector<Row> rows(workloads.size());
  bench::ParallelRunner runner;
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    rows[wi].workload = workloads[wi].first;
    rows[wi].paper_note = workloads[wi].second;
    for (int pi = 0; pi < 4; ++pi) {
      const std::string name = workloads[wi].first;
      Row& row = rows[wi];
      runner.add(name + "/" + core::protocol_name(kProtocols[pi]),
                 [name, pi, &row, cli]() -> bench::KernelStats {
                   auto w = make_workload(name);
                   core::Testbed bed(bench::paper_testbed(kProtocols[pi], cli));
                   bed.start();
                   auto opt = bench::paper_run(cli.smoke);
                   auto r = run_workload(bed, *w, opt);
                   // Time-driven workloads compare ops/s; the fixed-work NPB
                   // job compares aggregate bandwidth (inverse makespan).
                   row.value[pi] = w->fixed_work() ? r.mb_per_sec : r.ops_per_sec;
                   row.verify[pi] = r.verify_failures + r.op_errors;
                   if (auto* c = bed.cluster()) {
                     bench::write_obs_artifacts(
                         *c, "fig3_" + name + "_" +
                                 core::protocol_name(kProtocols[pi]));
                   }
                   return bench::kernel_stats(bed);
                 });
    }
  }
  runner.run_all();
  runner.write_json("fig3_overall");

  core::Table table({"workload", "PVFS2", "NFS3", "Redbud", "Redbud+DC",
                     "DC gain", "paper expectation"});
  bool clean = true;
  for (const auto& row : rows) {
    const double base = row.value[2];  // original Redbud
    auto norm = [&](double v) {
      return base > 0 ? core::Table::fmt_ratio(v / base) : "-";
    };
    table.add_row({row.workload, norm(row.value[0]), norm(row.value[1]),
                   norm(row.value[2]), norm(row.value[3]),
                   norm(row.value[3]), row.paper_note});
    for (auto v : row.verify) clean = clean && v == 0;
  }
  table.print(std::cout);
  std::cout << "verification: "
            << (clean ? "all reads verified, no op errors"
                      : "FAILURES DETECTED")
            << "\n";
  return clean ? 0 : 1;
}
