// Crash-consistency sweep (beyond the paper's figures, validating its
// §I/§III consistency argument): crash the cluster at a range of points
// under each commit mode, fsck the durable state, and garbage-collect
// orphans.
//
// Expected: ordered modes (sync, delayed) are consistent at EVERY crash
// point — "even if the system crashes in between the two sub-operations,
// the file system can still be kept consistent"; the deliberately
// unordered mode lets metadata outrun data and is caught by the checker;
// orphan GC reclaims every unreachable block.
#include <cstdint>
#include <iostream>
#include <string>

#include "core/metrics.hpp"
#include "core/recovery.hpp"

using namespace redbud;
using client::CommitMode;
using core::Cluster;
using core::ClusterParams;
using redbud::sim::Process;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

namespace {

ClusterParams crash_cluster(CommitMode mode, std::uint32_t nshards) {
  ClusterParams p;
  p.nclients = 4;
  p.array.ndisks = 2;
  p.nshards = nshards;
  p.client.mode = mode;
  p.client.chunk_blocks = 1024;
  return p;
}

Process churn(Simulation& sim, client::ClientFs& fs, int id, int nfiles) {
  for (int i = 0; i < nfiles; ++i) {
    auto cfut =
        fs.create(net::kRootDir, "c" + std::to_string(id) + "_" +
                                     std::to_string(i));
    const auto file = co_await cfut;
    if (file == net::kInvalidFile) continue;
    auto wfut = fs.write(file, 0, 16384);
    (void)co_await wfut;
    co_await sim.delay(SimTime::millis(1));
  }
}

const char* mode_name(CommitMode m) {
  switch (m) {
    case CommitMode::kSync:
      return "sync (ordered)";
    case CommitMode::kDelayed:
      return "delayed (ordered)";
    default:
      return "unordered (broken)";
  }
}

}  // namespace

int main() {
  core::print_banner(std::cout, "Crash consistency sweep",
                     "crash at T, fsck the durable state, collect orphans");

  core::Table table({"mode", "shards", "crash point", "durable commits",
                     "blocks checked", "inconsistent", "orphan blocks GC'd",
                     "verdict"});

  // Ordered modes must survive every crash point on a single MDS *and* on
  // a sharded metadata cluster — a shard whose journal flushed out of
  // step with its peers must not leave dangling metadata.
  bool ordered_ok = true;
  bool unordered_caught = false;
  for (auto mode :
       {CommitMode::kSync, CommitMode::kDelayed, CommitMode::kUnordered}) {
    for (std::uint32_t nshards : {1u, 4u}) {
      for (int crash_ms : {5, 25, 100, 400, 1500}) {
        Cluster c(crash_cluster(mode, nshards));
        c.start();
        for (std::size_t i = 0; i < c.nclients(); ++i) {
          c.sim().spawn(churn(c.sim(), c.client(i), int(i), 80));
        }
        c.sim().run_until(SimTime::millis(crash_ms));  // <- the crash

        const auto report = core::check_consistency(c);
        const auto gc = core::collect_orphans(c);
        const bool consistent = report.consistent();
        if (mode == CommitMode::kUnordered) {
          unordered_caught = unordered_caught || !consistent;
        } else {
          ordered_ok = ordered_ok && consistent;
        }
        table.add_row(
            {mode_name(mode), std::to_string(nshards),
             std::to_string(crash_ms) + " ms",
             std::to_string(report.commits_checked),
             std::to_string(report.blocks_checked),
             std::to_string(report.inconsistent_blocks),
             std::to_string(gc.provisional_blocks_freed +
                            gc.delegated_blocks_reclaimed),
             consistent ? "consistent" : "METADATA OUTRAN DATA"});
      }
    }
  }
  table.print(std::cout);

  std::cout << "ordered modes consistent at every crash point: "
            << (ordered_ok ? "yes" : "NO — BUG") << "\n"
            << "unordered mode caught violating the invariant: "
            << (unordered_caught ? "yes" : "no (model too forgiving)")
            << "\n";
  return ordered_ok && unordered_caught ? 0 : 1;
}
