// Figure 4: I/O merge ratio under xcdn at 32 KB / 64 KB / 1 MB for three
// Redbud configurations — original Redbud (synchronous commit), delayed
// commit without space delegation, and delayed commit with space
// delegation (16 MB chunks).
//
// Paper shapes: original Redbud shows (almost) no merging; delayed commit
// introduces merges through parallel I/O submission; space delegation
// multiplies the merge ratio 2.8–5.9x over plain delayed commit; larger
// files merge more.
#include <vector>

#include "common.hpp"
#include "parallel_runner.hpp"

using namespace redbud;
using namespace redbud::workload;
using core::Protocol;

namespace {

struct Config {
  const char* name;
  Protocol protocol;
  bool delegation;
};

constexpr Config kConfigs[] = {
    {"Original Redbud", Protocol::kRedbudSync, false},
    {"Delayed Commit", Protocol::kRedbudDelayed, false},
    {"Space Delegation", Protocol::kRedbudDelayed, true},
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options cli = bench::Options::parse(argc, argv);
  core::print_banner(std::cout, "Figure 4 — I/O merge ratio",
                     "xcdn, delegation chunk 16 MiB; merge ratio = merged "
                     "requests / submitted requests on the data array");

  core::Table table({"file size", "Original Redbud", "Delayed Commit",
                     "Space Delegation", "delegation gain",
                     "paper expectation"});

  // 3 file sizes x 3 configurations, each an independent simulation.
  constexpr std::uint32_t kSizesKb[] = {32, 64, 1024};
  double ratio[3][3] = {};
  bench::ParallelRunner runner;
  for (int si = 0; si < 3; ++si) {
    for (int ci = 0; ci < 3; ++ci) {
      const std::uint32_t kb = kSizesKb[si];
      double* out = &ratio[si][ci];
      runner.add(std::to_string(kb) + "KB/" + kConfigs[ci].name,
                 [kb, ci, out, cli]() -> bench::KernelStats {
                   auto params = bench::paper_testbed(kConfigs[ci].protocol, cli);
                   params.redbud.client.delegation = kConfigs[ci].delegation;
                   params.redbud.client.chunk_blocks =
                       (16ull << 20) / storage::kBlockSize;  // the paper's 16 MB
                   core::Testbed bed(params);
                   bed.start();
                   XcdnWorkload w(bench::xcdn_params(kb));
                   auto opt = bench::paper_run(cli.smoke);
                   auto* cluster = bed.cluster();
                   opt.on_measure_start = [cluster] {
                     cluster->array().reset_stats();
                   };
                   auto r = run_workload(bed, w, opt);
                   *out = cluster->array().write_merge_ratio();
                   bench::write_obs_artifacts(
                       *cluster, "fig4_" + std::to_string(kb) + "KB_" +
                                     std::string(kConfigs[ci].name));
                   std::fprintf(stderr,
                                "  done: %uKB %-17s merge=%.3f (ops/s %.0f)\n",
                                kb, kConfigs[ci].name, *out, r.ops_per_sec);
                   return bench::kernel_stats(bed);
                 });
    }
  }
  runner.run_all();
  runner.write_json("fig4_iomerge");

  for (int si = 0; si < 3; ++si) {
    const double* r = ratio[si];
    const double gain = r[1] > 0 ? r[2] / r[1] : 0.0;
    table.add_row({std::to_string(kSizesKb[si]) + " KB",
                   core::Table::fmt(r[0], 3), core::Table::fmt(r[1], 3),
                   core::Table::fmt(r[2], 3), core::Table::fmt_ratio(gain),
                   "orig ~0; delegation 2.8-5.9x over DC"});
  }
  table.print(std::cout);
  return 0;
}
