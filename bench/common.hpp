// Shared configuration for the figure-reproduction benches.
//
// The paper's testbed: eight nodes (1 MDS + 7 clients), 1 Gb Ethernet for
// metadata, 4 Gb FC to a shared disk array, 3.0 GHz single-core servers
// with 8 GB RAM. The simulated equivalent below scales the caches down
// with the workloads (DESIGN.md §2) so that cache-miss behaviour — which
// drives every figure — is preserved.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/metrics.hpp"
#include "core/testbed.hpp"
#include "obs/export.hpp"
#include "sim/stats.hpp"
#include "storage/blktrace.hpp"
#include "workload/filebench.hpp"
#include "workload/npb_bt.hpp"
#include "workload/workload.hpp"
#include "workload/xcdn.hpp"

namespace redbud::bench {

// Write a series CSV and warn (instead of silently dropping figure data)
// when the open or write fails; returns success for callers that care.
inline bool write_series_csv(const redbud::sim::TimeSeries& series,
                             const std::string& path) {
  if (!series.write_csv(path)) {
    std::cerr << "warning: failed to write series '" << series.name()
              << "' to " << path << "\n";
    return false;
  }
  return true;
}

// Same contract for the blktrace recorder used by Figure 5.
inline bool write_trace_csv(const redbud::storage::BlkTrace& trace,
                            const std::string& path) {
  if (!trace.write_csv(path)) {
    std::cerr << "warning: failed to write blktrace CSV to " << path << "\n";
    return false;
  }
  return true;
}

// Observability defaults for the benches: tracing is off unless the
// REDBUD_TRACE environment variable is set non-zero, so untraced figure
// runs stay byte-identical to the pre-observability binaries.
inline obs::ObsParams obs_from_env() {
  obs::ObsParams o;
  const char* env = std::getenv("REDBUD_TRACE");
  o.tracing.enabled = env != nullptr && env[0] != '\0' && env[0] != '0';
  return o;
}

// Emit the run's observability artifacts into bench_out/: always a
// `<name>.metrics.json` registry snapshot, plus a `<name>.trace.json`
// Perfetto trace when the run was traced.
inline void write_obs_artifacts(core::Cluster& cluster, std::string name) {
  for (char& c : name) {
    if (c == '/' || c == ' ') c = '_';
  }
  std::filesystem::create_directories("bench_out");
  const std::string metrics = "bench_out/" + name + ".metrics.json";
  if (!obs::write_metrics_json(cluster.obs(), cluster.sim().now(), metrics)) {
    std::cerr << "warning: failed to write " << metrics << "\n";
  }
  if (cluster.obs().tracer.enabled()) {
    const std::string trace = "bench_out/" + name + ".trace.json";
    if (!obs::write_perfetto_json(cluster.obs().tracer, trace)) {
      std::cerr << "warning: failed to write " << trace << "\n";
    }
  }
}

// Parse `--threads N` / `--threads=N`: the worker-thread count for the
// partitioned simulation kernel (ClusterParams::nthreads). Benches hand
// it to their testbeds and record it per row in BENCH_kernel.json;
// absent, the kernel runs serial (1), byte-identical to the
// pre-partitioning figures.
inline unsigned parse_threads(int argc, char** argv, unsigned def = 1) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads" && i + 1 < argc) {
      return static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
    }
    if (a.rfind("--threads=", 0) == 0) {
      return static_cast<unsigned>(std::strtoul(a.c_str() + 10, nullptr, 10));
    }
  }
  return def;
}

inline core::TestbedParams paper_testbed(core::Protocol proto) {
  core::TestbedParams p;
  p.protocol = proto;
  p.redbud.obs = obs_from_env();
  p.nclients = 7;  // eight-node cluster: one MDS + seven clients
  p.redbud.array.ndisks = 4;
  // Scaled-down client cache: the xcdn namespace must dwarf it, as the
  // paper's namespace dwarfed the clients' RAM ("client cache is useless").
  p.redbud.client.cache_pages = 4096;  // 16 MiB
  // Aged-volume allocation scatter at the MDS (see SpaceManagerParams).
  p.redbud.space.fragmented = true;
  p.pvfs_io_servers = 4;
  return p;
}

inline workload::RunOptions paper_run() {
  workload::RunOptions o;
  o.warmup = redbud::sim::SimTime::seconds(2);
  o.duration = redbud::sim::SimTime::seconds(8);
  return o;
}

inline workload::XcdnParams xcdn_params(std::uint32_t file_kb) {
  workload::XcdnParams x;
  x.file_bytes = file_kb * 1024;
  x.threads_per_client = 4;
  x.initial_files_per_client = file_kb >= 512 ? 300 : 2000;
  x.write_fraction = 0.7;    // xcdn is an update workload (§I, §V-B)
  x.read_zipf_theta = 0.99;  // serves hit the hottest (cached) objects
  return x;
}

inline workload::FilebenchParams fileserver_params() {
  workload::FilebenchParams f;
  f.nfiles_per_client = 150;
  f.threads_per_client = 12;
  return f;
}

}  // namespace redbud::bench
