// Shared configuration for the figure-reproduction benches.
//
// The paper's testbed: eight nodes (1 MDS + 7 clients), 1 Gb Ethernet for
// metadata, 4 Gb FC to a shared disk array, 3.0 GHz single-core servers
// with 8 GB RAM. The simulated equivalent below scales the caches down
// with the workloads (DESIGN.md §2) so that cache-miss behaviour — which
// drives every figure — is preserved.
#pragma once

#include <cstdio>
#include <iostream>

#include "core/metrics.hpp"
#include "core/testbed.hpp"
#include "workload/filebench.hpp"
#include "workload/npb_bt.hpp"
#include "workload/workload.hpp"
#include "workload/xcdn.hpp"

namespace redbud::bench {

inline core::TestbedParams paper_testbed(core::Protocol proto) {
  core::TestbedParams p;
  p.protocol = proto;
  p.nclients = 7;  // eight-node cluster: one MDS + seven clients
  p.redbud.array.ndisks = 4;
  // Scaled-down client cache: the xcdn namespace must dwarf it, as the
  // paper's namespace dwarfed the clients' RAM ("client cache is useless").
  p.redbud.client.cache_pages = 4096;  // 16 MiB
  // Aged-volume allocation scatter at the MDS (see SpaceManagerParams).
  p.redbud.space.fragmented = true;
  p.pvfs_io_servers = 4;
  return p;
}

inline workload::RunOptions paper_run() {
  workload::RunOptions o;
  o.warmup = redbud::sim::SimTime::seconds(2);
  o.duration = redbud::sim::SimTime::seconds(8);
  return o;
}

inline workload::XcdnParams xcdn_params(std::uint32_t file_kb) {
  workload::XcdnParams x;
  x.file_bytes = file_kb * 1024;
  x.threads_per_client = 4;
  x.initial_files_per_client = file_kb >= 512 ? 300 : 2000;
  x.write_fraction = 0.7;    // xcdn is an update workload (§I, §V-B)
  x.read_zipf_theta = 0.99;  // serves hit the hottest (cached) objects
  return x;
}

inline workload::FilebenchParams fileserver_params() {
  workload::FilebenchParams f;
  f.nfiles_per_client = 150;
  f.threads_per_client = 12;
  return f;
}

}  // namespace redbud::bench
