// Shared configuration for the figure-reproduction benches.
//
// The paper's testbed: eight nodes (1 MDS + 7 clients), 1 Gb Ethernet for
// metadata, 4 Gb FC to a shared disk array, 3.0 GHz single-core servers
// with 8 GB RAM. The simulated equivalent below scales the caches down
// with the workloads (DESIGN.md §2) so that cache-miss behaviour — which
// drives every figure — is preserved.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "core/metrics.hpp"
#include "core/testbed.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "parallel_runner.hpp"
#include "sim/stats.hpp"
#include "storage/blktrace.hpp"
#include "workload/filebench.hpp"
#include "workload/npb_bt.hpp"
#include "workload/workload.hpp"
#include "workload/xcdn.hpp"

namespace redbud::bench {

// Write a series CSV and warn (instead of silently dropping figure data)
// when the open or write fails; returns success for callers that care.
inline bool write_series_csv(const redbud::sim::TimeSeries& series,
                             const std::string& path) {
  if (!series.write_csv(path)) {
    std::cerr << "warning: failed to write series '" << series.name()
              << "' to " << path << "\n";
    return false;
  }
  return true;
}

// Same contract for the blktrace recorder used by Figure 5.
inline bool write_trace_csv(const redbud::storage::BlkTrace& trace,
                            const std::string& path) {
  if (!trace.write_csv(path)) {
    std::cerr << "warning: failed to write blktrace CSV to " << path << "\n";
    return false;
  }
  return true;
}

// Observability defaults for the benches: tracing is off unless the
// REDBUD_TRACE environment variable is set non-zero, so untraced figure
// runs stay byte-identical to the pre-observability binaries.
inline obs::ObsParams obs_from_env() {
  obs::ObsParams o;
  const char* env = std::getenv("REDBUD_TRACE");
  o.tracing.enabled = env != nullptr && env[0] != '\0' && env[0] != '0';
  return o;
}

// Process memory snapshot from /proc/self/status (Linux-only; both fields
// stay 0 elsewhere and the artifacts record that). Hoisted out of
// load_sweep so every bench's obs artifacts carry measured memory.
inline obs::ProcessMem read_proc_mem() {
  obs::ProcessMem m;
  std::ifstream in("/proc/self/status");
  std::string key;
  while (in >> key) {
    if (key == "VmRSS:") {
      in >> m.vm_rss_kb;
    } else if (key == "VmHWM:") {
      in >> m.vm_hwm_kb;
    } else {
      in.ignore(256, '\n');
    }
  }
  return m;
}

// Kernel accounting of a finished configuration for the runner's
// BENCH_kernel.json rows: the SimDomain's KernelProfile summarised into
// the flat per-row fields.
inline KernelStats kernel_stats(core::Cluster& cluster) {
  const redbud::sim::KernelProfile kp = cluster.domain().kernel_profile();
  KernelStats s;
  s.events = kp.events_total();
  s.rounds = kp.rounds;
  s.busy_ns = kp.busy_ns_total();
  s.stall_ns = kp.stall_ns_total();
  s.injections_staged = kp.injections_staged;
  s.injections_delivered = kp.injections_delivered;
  s.max_partition_events = kp.max_partition_events();
  s.nparts = static_cast<std::uint32_t>(kp.partitions.size());
  return s;
}
// Baseline stacks run a bare Simulation with no domain: events only.
inline KernelStats kernel_stats(core::Testbed& bed) {
  if (bed.cluster() != nullptr) return kernel_stats(*bed.cluster());
  KernelStats s;
  s.events = bed.events_processed();
  s.max_partition_events = s.events;
  return s;
}

// Emit the run's observability artifacts into bench_out/: always a
// `<name>.metrics.json` registry snapshot (with the process memory
// footprint), plus — when the run was traced — a `<name>.trace.json`
// Perfetto trace and a `<name>.blame.json` critical-path attribution
// (schema redbud.blame.v1), and a `<name>.timeseries.json` when sampling
// took samples.
inline void write_obs_artifacts(core::Cluster& cluster, std::string name) {
  for (char& c : name) {
    if (c == '/' || c == ' ') c = '_';
  }
  std::filesystem::create_directories("bench_out");
  const obs::ProcessMem mem = read_proc_mem();
  // Analyze before the metrics snapshot so chains_open{stage=...} rides
  // along in metrics.json; the views are unregistered again below because
  // they point into this stack-local analyzer.
  const bool traced = cluster.obs().tracer.enabled();
  obs::CriticalPath blame;
  if (traced) {
    blame.analyze(cluster.obs().tracer);
    blame.register_metrics(&cluster.obs().registry);
  }
  const std::string metrics = "bench_out/" + name + ".metrics.json";
  if (!obs::write_metrics_json(cluster.obs(), cluster.sim().now(), metrics,
                               &mem)) {
    std::cerr << "warning: failed to write " << metrics << "\n";
  }
  if (traced) {
    const std::string bpath = "bench_out/" + name + ".blame.json";
    if (!obs::write_blame_json(blame, cluster.sim().now(), bpath,
                               &cluster.obs().watchdog)) {
      std::cerr << "warning: failed to write " << bpath << "\n";
    }
    for (const char* s : {"queued", "in_flight", "unlinked"}) {
      cluster.obs().registry.unregister(std::string("chains_open{stage=") + s +
                                        "}");
    }
  }
  const bool sampled = cluster.obs().sampler.samples_taken() > 0;
  if (cluster.obs().tracer.enabled() || sampled) {
    const std::string trace = "bench_out/" + name + ".trace.json";
    if (!obs::write_perfetto_json(cluster.obs().tracer, trace,
                                  &cluster.obs().sampler)) {
      std::cerr << "warning: failed to write " << trace << "\n";
    }
  }
  if (sampled) {
    const std::string series = "bench_out/" + name + ".timeseries.json";
    if (!obs::write_timeseries_json(cluster.obs().sampler, series)) {
      std::cerr << "warning: failed to write " << series << "\n";
    }
  }
}

// Command-line options shared by every bench binary.
//
//   --threads N   worker threads for the partitioned simulation kernel
//                 (ClusterParams::nthreads); default 1 = the serial
//                 kernel, byte-identical to the pre-partitioning figures
//   --smoke       reduced grid / shortened run for CI smoke jobs
//   --trace       enable span tracing (same effect as REDBUD_TRACE=1)
//   --sample-interval M
//                 time-series sampling stride in simulated milliseconds
//                 (fractions allowed); 0 disables sampling, the default
//                 for the replay-pinned benches
//
// Unknown arguments warn on stderr and are otherwise ignored, so adding a
// flag never breaks an older bench invocation in a CI matrix.
struct Options {
  unsigned threads = 1;
  bool smoke = false;
  bool trace = false;
  double sample_interval_ms = 0.0;

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--threads" && i + 1 < argc) {
        o.threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      } else if (a.rfind("--threads=", 0) == 0) {
        o.threads =
            static_cast<unsigned>(std::strtoul(a.c_str() + 10, nullptr, 10));
      } else if (a == "--smoke") {
        o.smoke = true;
      } else if (a == "--trace") {
        o.trace = true;
      } else if (a == "--sample-interval" && i + 1 < argc) {
        o.sample_interval_ms = std::strtod(argv[++i], nullptr);
      } else if (a.rfind("--sample-interval=", 0) == 0) {
        o.sample_interval_ms = std::strtod(a.c_str() + 18, nullptr);
      } else {
        std::cerr << "warning: unknown bench option '" << a
                  << "' (known: --threads N, --smoke, --trace, "
                     "--sample-interval M)\n";
      }
    }
    if (o.threads == 0) o.threads = 1;
    if (o.sample_interval_ms < 0) o.sample_interval_ms = 0;
    return o;
  }

  // Observability params honouring both --trace and REDBUD_TRACE.
  [[nodiscard]] obs::ObsParams obs() const {
    obs::ObsParams o = obs_from_env();
    o.tracing.enabled = o.tracing.enabled || trace;
    if (sample_interval_ms > 0) {
      o.sampling.interval = redbud::sim::SimTime::millis_f(sample_interval_ms);
    }
    return o;
  }
};

inline core::TestbedParams paper_testbed(core::Protocol proto,
                                         const Options& opt = {}) {
  core::TestbedParams p;
  p.protocol = proto;
  p.redbud.obs = opt.obs();
  p.redbud.nthreads = opt.threads;
  p.nclients = 7;  // eight-node cluster: one MDS + seven clients
  p.redbud.array.ndisks = 4;
  // Scaled-down client cache: the xcdn namespace must dwarf it, as the
  // paper's namespace dwarfed the clients' RAM ("client cache is useless").
  p.redbud.client.cache_pages = 4096;  // 16 MiB
  // Aged-volume allocation scatter at the MDS (see SpaceManagerParams).
  p.redbud.space.fragmented = true;
  p.pvfs_io_servers = 4;
  return p;
}

// Smoke runs keep the warmup (cold caches would distort every figure's
// shape) but measure a quarter of the span.
inline workload::RunOptions paper_run(bool smoke = false) {
  workload::RunOptions o;
  o.warmup = redbud::sim::SimTime::seconds(2);
  o.duration = redbud::sim::SimTime::seconds(smoke ? 2 : 8);
  return o;
}

inline workload::XcdnParams xcdn_params(std::uint32_t file_kb) {
  workload::XcdnParams x;
  x.file_bytes = file_kb * 1024;
  x.threads_per_client = 4;
  x.initial_files_per_client = file_kb >= 512 ? 300 : 2000;
  x.write_fraction = 0.7;    // xcdn is an update workload (§I, §V-B)
  x.read_zipf_theta = 0.99;  // serves hit the hottest (cached) objects
  return x;
}

inline workload::FilebenchParams fileserver_params() {
  workload::FilebenchParams f;
  f.nfiles_per_client = 150;
  f.threads_per_client = 12;
  return f;
}

}  // namespace redbud::bench
