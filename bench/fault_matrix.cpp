// Fault scenario matrix: fault kind x intensity x shard count.
//
// Every cell builds a delayed-commit cluster with the RPC retry path on,
// replays a seed-derived FaultSchedule against it while a fileserver-style
// churn runs, then checks the two properties the fault subsystem promises:
//
//  1. Correctness is absolute: the whole-cluster ordered-writes check
//     passes on EVERY cell, every fault clears, every crashed shard fails
//     over, and no operation exhausts its retry budget — no matter the
//     fault kind or intensity.
//  2. Degradation is bounded: client-observed fsync p99 and commit-RPC
//     p99 may grow under faults, but only within a per-kind factor of the
//     same-topology fault-free baseline cell. The bounds are calibrated
//     from measured runs (see EXPERIMENTS.md) with headroom, so a
//     regression that, say, makes the retry ladder restart from scratch
//     after failover shows up as a matrix failure, not a silent slowdown.
//
// Results land in bench_out/BENCH_faults.json (schema:
// schemas/bench_faults.schema.json). --smoke runs the reduced grid the CI
// job uses; --threads N drives every cell under the partitioned kernel.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common.hpp"
#include "core/recovery.hpp"
#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "obs/critical_path.hpp"
#include "obs/watchdog.hpp"
#include "sim/random.hpp"

using namespace redbud;
using core::Cluster;
using core::ClusterParams;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultSchedule;
using fault::FaultScheduleParams;
using net::Status;
using redbud::sim::LatencyHistogram;
using redbud::sim::Process;
using redbud::sim::Rng;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

namespace {

constexpr std::uint64_t kScheduleSeed = 2026;

struct CellSpec {
  const char* fault;      // "none" | "slow_disk" | "lossy_link" | "shard_crash"
  const char* intensity;  // "base" | "mild" | "harsh"
  std::uint32_t nshards;
  // Degradation ceilings vs the same-topology baseline cell, calibrated
  // from measured runs with ~2x headroom (EXPERIMENTS.md has the raw
  // numbers). A fault-free baseline bounds itself at 1.0 by definition.
  double fsync_bound;
  double commit_bound;
};

struct CellResult {
  CellSpec spec;
  std::uint64_t ops = 0;
  std::uint64_t op_failures = 0;
  double fsync_p99_us = 0.0;
  double fsync_mean_us = 0.0;
  double commit_p99_us = 0.0;
  double fsync_degradation = 1.0;
  double commit_degradation = 1.0;
  bool within_bound = true;
  std::uint64_t drops = 0;
  std::uint64_t crashes = 0;
  std::uint64_t failovers = 0;
  double failover_mean_us = 0.0;
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_cleared = 0;
  bool faults_all_cleared = false;
  bool consistent = false;
  std::uint64_t incidents = 0;
  bool incidents_covered = false;
  double max_queue_age_us = 0.0;  // max sampled commit-queue head age
  // Carried out of run_cell so coverage can be judged in main, where the
  // degradation vs the same-topology baseline is known (the slow-disk
  // impact guard below needs it).
  std::vector<obs::Incident> incident_log;
  std::vector<fault::FaultEvent> fault_events;
  // Sampled total fabric drops (sum of net.frames_dropped over nodes) at
  // each grid instant, for the lossy-window observability guard.
  std::vector<double> drop_instants_us;
  std::vector<double> drop_totals;
};

ClusterParams cell_cluster(std::uint32_t nshards, std::uint32_t nthreads) {
  ClusterParams p;
  p.nclients = 4;
  p.nshards = nshards;
  p.nthreads = nthreads;
  p.array.ndisks = 4;
  p.array.disk.total_blocks = 1 << 20;
  p.metadata_disk.total_blocks = 1 << 20;
  p.journal.region_blocks = 1 << 16;
  p.client.mode = client::CommitMode::kDelayed;
  p.client.chunk_blocks = 1024;
  p.client.rpc_retry = true;
  // Observability rides along in every cell: span tracing feeds the
  // critical-path blame artifact, and the 5 ms sampling grid drives the
  // passive incident watchdog. Both are strictly off-event, so the cell
  // results are unchanged by their presence.
  p.obs.tracing.enabled = true;
  p.obs.sampling.interval = SimTime::millis(5);
  return p;
}

// --- Incident detection over the cells --------------------------------------
//
// Every cell (including the fault-free baselines) arms the same three
// calibrated detectors; the acceptance gate below then demands that every
// injected fault window is covered by an incident of the mapped kind
// within a per-kind detection bound, and that fault-free cells raise
// ZERO incidents. Thresholds are calibrated against the deterministic
// kScheduleSeed runs (see EXPERIMENTS.md "where the p99 lives"): the
// baseline cells never drop a frame and their commit-queue head age
// peaks at 65.1 ms (4 shards), while a fail-slow disk that measurably
// degrades fsync holds the queue head past 73 ms.

// Commit-stall age threshold (us). Measured max sampled head age:
// baselines 48.4/60.6/65.1 ms (1/2/4 shards); slow_disk mild 73.3/100.2;
// slow_disk harsh 223/335/136 ms. 70 ms splits the populations.
constexpr double kStallThresholdUs = 70'000.0;

// A slow-disk window the topology fully absorbs raises no incident and
// must not be required to: at 4 shards the mild schedule leaves fsync p99
// at 0.87x baseline. Coverage is demanded only when the cell's measured
// fsync degradation reaches this floor — a passive detector that raised
// anyway would be reading noise.
constexpr double kSlowDiskImpactFloor = 1.25;

void arm_detectors(obs::Watchdog& wd) {
  obs::DetectorParams stall;
  stall.kind = obs::IncidentKind::kCommitStall;
  stall.series = "commit_queue.oldest_enqueued_us";
  stall.threshold = kStallThresholdUs;
  // The head age grows one 5 ms grid stride per tick, so demanding two
  // ticks above threshold would raise the effective threshold by a
  // stride; mild slow-disk cells peak only ~3-8 ms past it.
  stall.breach_ticks = 1;
  stall.clear_ticks = 2;
  wd.arm(stall);

  obs::DetectorParams storm;
  storm.kind = obs::IncidentKind::kRetryStorm;
  // Fabric frame drops, NOT rpc.retries_sent: the 5 ms first-retry
  // timeout sits at the commit RTT p99, so even loss-free cells
  // retransmit (measured 100 ms retransmit deltas 4-16 at baseline vs
  // 4-10 under mild loss — inseparable at any threshold). Drops separate
  // perfectly: baseline and crash cells drop zero frames, every lossy
  // cell drops >= 2.
  storm.series = "net.frames_dropped";
  storm.threshold = 1.0;
  storm.window = SimTime::millis(100);
  storm.breach_ticks = 1;
  storm.clear_ticks = 2;
  wd.arm(storm);

  obs::DetectorParams fo;
  fo.kind = obs::IncidentKind::kFailoverStall;
  fo.series = "cluster.shard_crashes";
  fo.series2 = "cluster.failovers";
  fo.threshold = 1.0;
  fo.breach_ticks = 2;
  fo.clear_ticks = 1;
  wd.arm(fo);
}

obs::IncidentKind mapped_kind(FaultKind k) {
  switch (k) {
    case FaultKind::kSlowDisk:
      return obs::IncidentKind::kCommitStall;
    case FaultKind::kLossyLink:
    case FaultKind::kLinkPartition:
      return obs::IncidentKind::kRetryStorm;
    case FaultKind::kShardCrash:
      return obs::IncidentKind::kFailoverStall;
  }
  return obs::IncidentKind::kCommitStall;
}

// How long after a fault window closes its incident may still legitimately
// raise. A retry storm raises at the first sampling instant after a frame
// drop, so it lags by at most the grid stride; a commit stall must first
// *age* past the threshold; failover stalls raise while the crash is
// still undetected (the window duration IS the detection delay), needing
// only the grid + hysteresis.
SimTime detection_bound(FaultKind k) {
  switch (k) {
    case FaultKind::kLossyLink:
    case FaultKind::kLinkPartition:
      return SimTime::millis(50);
    case FaultKind::kSlowDisk:
      return SimTime::micros(std::int64_t(kStallThresholdUs)) +
             SimTime::millis(100);
    case FaultKind::kShardCrash:
      return SimTime::millis(25);
  }
  return SimTime::millis(50);
}

// Incident coverage: a fault-free cell must raise nothing; a faulted cell
// must cover EVERY injected window with an incident of the mapped kind
// whose active interval intersects the window (plus the per-kind
// detection bound). Extra incidents in faulted cells are legitimate —
// e.g. a harsh lossy link also stalls commit chains. Slow-disk windows
// the topology absorbed below kSlowDiskImpactFloor are exempt (see the
// constant). Runs after the degradations are computed in main.
// Sampled total drops at the last grid instant <= t_us (0 before the
// first sample).
double drops_at(const CellResult& r, double t_us) {
  double v = 0.0;
  for (std::size_t i = 0;
       i < r.drop_instants_us.size() && r.drop_instants_us[i] <= t_us; ++i) {
    v = r.drop_totals[i];
  }
  return v;
}

bool incidents_covered(const CellResult& r) {
  if (r.fault_events.empty()) return r.incident_log.empty();
  for (const fault::FaultEvent& ev : r.fault_events) {
    if (ev.kind == FaultKind::kSlowDisk &&
        r.fsync_degradation < kSlowDiskImpactFloor) {
      continue;
    }
    const SimTime deadline_t = ev.at + ev.duration + detection_bound(ev.kind);
    if ((ev.kind == FaultKind::kLossyLink ||
         ev.kind == FaultKind::kLinkPartition) &&
        drops_at(r, deadline_t.to_micros()) - drops_at(r, ev.at.to_micros()) <=
            0.0) {
      // A lossy window during which the fabric never actually dropped a
      // frame (few frames in flight x a mild loss rate) is unobservable
      // to any passive detector; nothing to cover.
      continue;
    }
    const obs::IncidentKind want = mapped_kind(ev.kind);
    bool covered = false;
    for (const obs::Incident& inc : r.incident_log) {
      const bool ends_before_window = inc.cleared && inc.clear_at < ev.at;
      if (inc.kind == want && inc.at <= deadline_t && !ends_before_window) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

// The schedule for one cell. Faults land inside [40ms, 400ms); the churn
// straddles the whole window and the drain phase runs long past it.
FaultScheduleParams cell_faults(const CellSpec& c) {
  FaultScheduleParams fp;
  fp.seed = kScheduleSeed;
  fp.window_start = SimTime::millis(40);
  fp.window_end = SimTime::millis(400);
  const bool harsh = std::string_view(c.intensity) == "harsh";
  if (std::string_view(c.fault) == "slow_disk") {
    fp.slow_disks = harsh ? 4 : 2;
    fp.min_slow = harsh ? 8.0 : 2.0;
    fp.max_slow = harsh ? 16.0 : 4.0;
    fp.min_duration = SimTime::millis(harsh ? 60 : 30);
    fp.max_duration = SimTime::millis(harsh ? 120 : 60);
  } else if (std::string_view(c.fault) == "lossy_link") {
    fp.lossy_links = harsh ? 4 : 2;
    fp.min_loss = harsh ? 0.25 : 0.05;
    fp.max_loss = harsh ? 0.40 : 0.15;
    fp.link_partitions = harsh ? 1 : 0;
    fp.min_duration = SimTime::millis(harsh ? 60 : 30);
    fp.max_duration = SimTime::millis(harsh ? 120 : 60);
  } else if (std::string_view(c.fault) == "shard_crash") {
    fp.shard_crashes = harsh ? 2 : 1;  // generate() caps at nshards
    // duration is the crash-detection delay before failover starts.
    fp.min_duration = SimTime::millis(harsh ? 50 : 20);
    fp.max_duration = SimTime::millis(harsh ? 90 : 50);
  }
  return fp;
}

// Fileserver-style churn: create / write / fsync per file, with the fsync
// completion latency recorded client-side. One histogram per client —
// partitions run on distinct workers under --threads, so no sharing.
Process churn(Simulation& sim, client::ClientFs& fs, std::uint32_t client_id,
              int nfiles, LatencyHistogram* fsync_lat, std::uint64_t* ops,
              std::uint64_t* failures) {
  Rng rng(9100 + client_id);
  co_await sim.delay(SimTime::micros(173 * client_id));
  for (int i = 0; i < nfiles; ++i) {
    const std::string name =
        "m_c" + std::to_string(client_id) + "_f" + std::to_string(i);
    auto cfut = fs.create(net::kRootDir, name);
    const net::FileId id = co_await cfut;
    if (id == net::kInvalidFile) {
      ++*failures;
      continue;
    }
    ++*ops;
    const std::uint32_t nbytes =
        4096 * (1 + static_cast<std::uint32_t>(rng.next_below(8)));
    auto wfut = fs.write(id, 0, nbytes);
    if (co_await wfut != Status::kOk) ++*failures;
    ++*ops;
    const SimTime t0 = sim.now();
    auto sfut = fs.fsync(id);
    if (co_await sfut == Status::kOk) {
      fsync_lat->record(sim.now() - t0);
      ++*ops;
    } else {
      ++*failures;
    }
    co_await sim.delay(SimTime::micros(500 + rng.next_below(3000)));
  }
}

CellResult run_cell(const CellSpec& spec, std::uint32_t nthreads, bool smoke) {
  CellResult r;
  r.spec = spec;
  Cluster c(cell_cluster(spec.nshards, nthreads));
  const auto& cp = c.params();
  FaultSchedule sched = FaultSchedule::generate(
      cell_faults(spec), cp.array.ndisks, cp.nclients, cp.nshards);
  FaultInjector inj(c, std::move(sched));
  inj.register_metrics();
  if (!inj.schedule().empty()) inj.arm();
  arm_detectors(c.obs().watchdog);
  c.start();

  const int nfiles = smoke ? 10 : 40;
  std::vector<LatencyHistogram> fsync_lat(c.nclients());
  std::vector<std::uint64_t> ops(c.nclients(), 0);
  std::vector<std::uint64_t> failures(c.nclients(), 0);
  std::vector<redbud::sim::ProcRef> refs;
  for (std::size_t i = 0; i < c.nclients(); ++i) {
    Simulation& csim = c.client_sim(i);
    refs.push_back(csim.spawn(churn(csim, c.client(i),
                                    static_cast<std::uint32_t>(i), nfiles,
                                    &fsync_lat[i], &ops[i], &failures[i])));
  }
  c.run_until(SimTime::seconds(smoke ? 2 : 4));
  c.check_failures();
  for (const auto& ref : refs) {
    if (!ref.done()) ++r.op_failures;  // a stuck churn is a failure too
  }

  // Drain requeued/queued commit batches before the consistency check.
  for (int spin = 0; spin < 500; ++spin) {
    std::size_t pending = 0;
    for (std::size_t ci = 0; ci < c.nclients(); ++ci) {
      auto& q = c.client(ci).commit_queue();
      pending += q.size() + q.in_flight();
    }
    if (pending == 0) break;
    c.run_until(c.now() + SimTime::millis(20));
  }

  LatencyHistogram fsync_all;
  LatencyHistogram commit_all;
  for (std::size_t i = 0; i < c.nclients(); ++i) {
    fsync_all.merge(fsync_lat[i]);
    r.ops += ops[i];
    r.op_failures += failures[i];
    const auto& stats = c.client(i).endpoint().op_stats();
    if (const auto it = stats.find("commit"); it != stats.end()) {
      commit_all.merge(it->second.rtt);
    }
  }
  r.fsync_p99_us = fsync_all.percentile(99).to_micros();
  r.fsync_mean_us = fsync_all.mean().to_micros();
  r.commit_p99_us = commit_all.percentile(99).to_micros();
  r.drops = c.network().messages_dropped();
  r.crashes = c.shard_crashes();
  r.failovers = c.failovers_completed();
  if (c.failover_time().count() > 0) {
    r.failover_mean_us = c.failover_time().mean().to_micros();
  }
  r.faults_injected = inj.total_injected();
  r.faults_cleared = inj.total_cleared();
  bool shards_up = true;
  for (std::uint32_t s = 0; s < c.nshards(); ++s) {
    shards_up = shards_up && !c.shard_crashed(s);
  }
  r.faults_all_cleared = r.faults_injected == inj.schedule().size() &&
                         r.faults_cleared == inj.schedule().size() &&
                         r.failovers == r.crashes && shards_up;
  r.consistent = core::check_consistency(c).consistent();

  // Calibration evidence for kStallThresholdUs, kept in the JSON: the max
  // commit-queue head age the 5 ms sampling grid observed in this cell.
  {
    const auto instants = c.obs().sampler.instants();
    for (const SimTime& t : instants) {
      r.drop_instants_us.push_back(t.to_micros());
    }
    r.drop_totals.assign(instants.size(), 0.0);
    for (const auto& s : c.obs().sampler.series()) {
      if (s.name.rfind("net.frames_dropped", 0) == 0) {
        for (std::size_t i = 0; i < s.values.size() && i < r.drop_totals.size();
             ++i) {
          r.drop_totals[i] += s.values[i];
        }
        continue;
      }
      if (s.name.rfind("commit_queue.oldest_enqueued_us", 0) != 0) continue;
      for (std::size_t i = 0; i < s.values.size() && i < instants.size();
           ++i) {
        if (s.values[i] <= 0) continue;
        const double age = instants[i].to_micros() - s.values[i];
        if (age > r.max_queue_age_us) r.max_queue_age_us = age;
      }
    }
  }

  // Coverage is judged in main (it needs the degradation vs the baseline
  // cell); carry the raw material out before the cluster goes away.
  r.incident_log = c.obs().watchdog.incidents();
  r.incidents = r.incident_log.size();
  r.fault_events = inj.schedule().events();

  // Critical-path blame artifact; every cell overwrites, so the canonical
  // bench_out/latency_blame.json carries the grid's final cell.
  obs::CriticalPath blame;
  blame.analyze(c.obs().tracer);
  std::filesystem::create_directories("bench_out");
  if (!obs::write_blame_json(blame, c.now(), "bench_out/latency_blame.json",
                             &c.obs().watchdog)) {
    std::cerr << "warning: failed to write bench_out/latency_blame.json\n";
  }
  if (blame.roots() != blame.completed() + blame.open_total()) {
    std::cerr << "BLAME accounting broken in cell " << spec.fault << "/"
              << spec.intensity << "/" << spec.nshards << "\n";
    r.consistent = false;
  }
  return r;
}

void write_faults_json(const std::vector<CellResult>& cells,
                       std::uint32_t nthreads, bool smoke) {
  std::filesystem::create_directories("bench_out");
  std::ofstream out("bench_out/BENCH_faults.json", std::ios::trunc);
  out << "{\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"nthreads\": " << nthreads << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& r = cells[i];
    out << "    {\"fault\": \"" << r.spec.fault << "\", \"intensity\": \""
        << r.spec.intensity << "\", \"nshards\": " << r.spec.nshards
        << ", \"ops\": " << r.ops << ", \"op_failures\": " << r.op_failures
        << ", \"fsync_p99_us\": " << r.fsync_p99_us
        << ", \"fsync_mean_us\": " << r.fsync_mean_us
        << ", \"commit_p99_us\": " << r.commit_p99_us
        << ", \"fsync_degradation\": " << r.fsync_degradation
        << ", \"commit_degradation\": " << r.commit_degradation
        << ", \"fsync_bound\": " << r.spec.fsync_bound
        << ", \"commit_bound\": " << r.spec.commit_bound
        << ", \"within_bound\": " << (r.within_bound ? "true" : "false")
        << ", \"drops\": " << r.drops << ", \"crashes\": " << r.crashes
        << ", \"failovers\": " << r.failovers
        << ", \"failover_mean_us\": " << r.failover_mean_us
        << ", \"faults_injected\": " << r.faults_injected
        << ", \"faults_cleared\": " << r.faults_cleared
        << ", \"consistent\": " << (r.consistent ? "true" : "false")
        << ", \"incidents\": " << r.incidents << ", \"incidents_covered\": "
        << (r.incidents_covered ? "true" : "false")
        << ", \"max_queue_age_us\": " << r.max_queue_age_us << "}"
        << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options cli = bench::Options::parse(argc, argv);
  const bool smoke = cli.smoke;
  const std::uint32_t nthreads = cli.threads;
  core::print_banner(
      std::cout, "Fault scenario matrix",
      smoke ? "reduced CI grid: fault kind x intensity, 2 shards"
            : "fault kind x intensity x shard count; consistency + bounded "
              "degradation on every cell");

  // One baseline + six fault cells per topology. Bounds are vs the
  // same-topology baseline; see EXPERIMENTS.md for the measured runs they
  // were calibrated from.
  const std::vector<std::uint32_t> shard_counts =
      smoke ? std::vector<std::uint32_t>{2}
            : std::vector<std::uint32_t>{1, 2, 4};
  std::vector<CellSpec> grid;
  for (const std::uint32_t n : shard_counts) {
    grid.push_back({"none", "base", n, 1.0, 1.0});
    grid.push_back({"slow_disk", "mild", n, 4.0, 2.0});
    grid.push_back({"slow_disk", "harsh", n, 12.0, 2.0});
    grid.push_back({"lossy_link", "mild", n, 3.0, 3.0});
    grid.push_back({"lossy_link", "harsh", n, 4.0, 5.0});
    grid.push_back({"shard_crash", "mild", n, 4.0, 3.0});
    grid.push_back({"shard_crash", "harsh", n, 6.0, 3.0});
  }

  std::vector<CellResult> cells;
  std::map<std::uint32_t, CellResult> baselines;  // nshards -> "none" cell
  bool ok = true;
  for (const CellSpec& spec : grid) {
    CellResult r = run_cell(spec, nthreads, smoke);
    if (std::string_view(spec.fault) == "none") {
      baselines[spec.nshards] = r;
      r.within_bound = true;
    } else {
      const CellResult& base = baselines.at(spec.nshards);
      r.fsync_degradation =
          base.fsync_p99_us > 0 ? r.fsync_p99_us / base.fsync_p99_us : 0.0;
      r.commit_degradation =
          base.commit_p99_us > 0 ? r.commit_p99_us / base.commit_p99_us : 0.0;
      r.within_bound = r.fsync_degradation <= spec.fsync_bound &&
                       r.commit_degradation <= spec.commit_bound;
    }
    r.incidents_covered = incidents_covered(r);
    ok = ok && r.consistent && r.within_bound && r.faults_all_cleared &&
         r.op_failures == 0 && r.ops > 0 && r.incidents_covered;
    cells.push_back(std::move(r));
  }
  write_faults_json(cells, nthreads, smoke);

  core::Table table({"fault", "intensity", "shards", "ops", "fsync p99 us",
                     "commit p99 us", "x base (f/c)", "drops", "failover",
                     "incid", "covered", "consistent", "bounded"});
  for (const CellResult& r : cells) {
    table.add_row(
        {r.spec.fault, r.spec.intensity, std::to_string(r.spec.nshards),
         std::to_string(r.ops), core::Table::fmt(r.fsync_p99_us, 0),
         core::Table::fmt(r.commit_p99_us, 0),
         core::Table::fmt(r.fsync_degradation, 1) + "/" +
             core::Table::fmt(r.commit_degradation, 1),
         std::to_string(r.drops),
         std::to_string(r.failovers) + "/" + std::to_string(r.crashes),
         std::to_string(r.incidents), r.incidents_covered ? "yes" : "NO",
         r.consistent ? "yes" : "NO", r.within_bound ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "fault matrix: " << cells.size() << " cells, "
            << (ok ? "all consistent, degradation within bounds"
                   : "FAILURES DETECTED")
            << "\n";
  return ok ? 0 : 1;
}
