// Fault scenario matrix: fault kind x intensity x shard count.
//
// Every cell builds a delayed-commit cluster with the RPC retry path on,
// replays a seed-derived FaultSchedule against it while a fileserver-style
// churn runs, then checks the two properties the fault subsystem promises:
//
//  1. Correctness is absolute: the whole-cluster ordered-writes check
//     passes on EVERY cell, every fault clears, every crashed shard fails
//     over, and no operation exhausts its retry budget — no matter the
//     fault kind or intensity.
//  2. Degradation is bounded: client-observed fsync p99 and commit-RPC
//     p99 may grow under faults, but only within a per-kind factor of the
//     same-topology fault-free baseline cell. The bounds are calibrated
//     from measured runs (see EXPERIMENTS.md) with headroom, so a
//     regression that, say, makes the retry ladder restart from scratch
//     after failover shows up as a matrix failure, not a silent slowdown.
//
// Results land in bench_out/BENCH_faults.json (schema:
// schemas/bench_faults.schema.json). --smoke runs the reduced grid the CI
// job uses; --threads N drives every cell under the partitioned kernel.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common.hpp"
#include "core/recovery.hpp"
#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "sim/random.hpp"

using namespace redbud;
using core::Cluster;
using core::ClusterParams;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultSchedule;
using fault::FaultScheduleParams;
using net::Status;
using redbud::sim::LatencyHistogram;
using redbud::sim::Process;
using redbud::sim::Rng;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

namespace {

constexpr std::uint64_t kScheduleSeed = 2026;

struct CellSpec {
  const char* fault;      // "none" | "slow_disk" | "lossy_link" | "shard_crash"
  const char* intensity;  // "base" | "mild" | "harsh"
  std::uint32_t nshards;
  // Degradation ceilings vs the same-topology baseline cell, calibrated
  // from measured runs with ~2x headroom (EXPERIMENTS.md has the raw
  // numbers). A fault-free baseline bounds itself at 1.0 by definition.
  double fsync_bound;
  double commit_bound;
};

struct CellResult {
  CellSpec spec;
  std::uint64_t ops = 0;
  std::uint64_t op_failures = 0;
  double fsync_p99_us = 0.0;
  double fsync_mean_us = 0.0;
  double commit_p99_us = 0.0;
  double fsync_degradation = 1.0;
  double commit_degradation = 1.0;
  bool within_bound = true;
  std::uint64_t drops = 0;
  std::uint64_t crashes = 0;
  std::uint64_t failovers = 0;
  double failover_mean_us = 0.0;
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_cleared = 0;
  bool faults_all_cleared = false;
  bool consistent = false;
};

ClusterParams cell_cluster(std::uint32_t nshards, std::uint32_t nthreads) {
  ClusterParams p;
  p.nclients = 4;
  p.nshards = nshards;
  p.nthreads = nthreads;
  p.array.ndisks = 4;
  p.array.disk.total_blocks = 1 << 20;
  p.metadata_disk.total_blocks = 1 << 20;
  p.journal.region_blocks = 1 << 16;
  p.client.mode = client::CommitMode::kDelayed;
  p.client.chunk_blocks = 1024;
  p.client.rpc_retry = true;
  return p;
}

// The schedule for one cell. Faults land inside [40ms, 400ms); the churn
// straddles the whole window and the drain phase runs long past it.
FaultScheduleParams cell_faults(const CellSpec& c) {
  FaultScheduleParams fp;
  fp.seed = kScheduleSeed;
  fp.window_start = SimTime::millis(40);
  fp.window_end = SimTime::millis(400);
  const bool harsh = std::string_view(c.intensity) == "harsh";
  if (std::string_view(c.fault) == "slow_disk") {
    fp.slow_disks = harsh ? 4 : 2;
    fp.min_slow = harsh ? 8.0 : 2.0;
    fp.max_slow = harsh ? 16.0 : 4.0;
    fp.min_duration = SimTime::millis(harsh ? 60 : 30);
    fp.max_duration = SimTime::millis(harsh ? 120 : 60);
  } else if (std::string_view(c.fault) == "lossy_link") {
    fp.lossy_links = harsh ? 4 : 2;
    fp.min_loss = harsh ? 0.25 : 0.05;
    fp.max_loss = harsh ? 0.40 : 0.15;
    fp.link_partitions = harsh ? 1 : 0;
    fp.min_duration = SimTime::millis(harsh ? 60 : 30);
    fp.max_duration = SimTime::millis(harsh ? 120 : 60);
  } else if (std::string_view(c.fault) == "shard_crash") {
    fp.shard_crashes = harsh ? 2 : 1;  // generate() caps at nshards
    // duration is the crash-detection delay before failover starts.
    fp.min_duration = SimTime::millis(harsh ? 50 : 20);
    fp.max_duration = SimTime::millis(harsh ? 90 : 50);
  }
  return fp;
}

// Fileserver-style churn: create / write / fsync per file, with the fsync
// completion latency recorded client-side. One histogram per client —
// partitions run on distinct workers under --threads, so no sharing.
Process churn(Simulation& sim, client::ClientFs& fs, std::uint32_t client_id,
              int nfiles, LatencyHistogram* fsync_lat, std::uint64_t* ops,
              std::uint64_t* failures) {
  Rng rng(9100 + client_id);
  co_await sim.delay(SimTime::micros(173 * client_id));
  for (int i = 0; i < nfiles; ++i) {
    const std::string name =
        "m_c" + std::to_string(client_id) + "_f" + std::to_string(i);
    auto cfut = fs.create(net::kRootDir, name);
    const net::FileId id = co_await cfut;
    if (id == net::kInvalidFile) {
      ++*failures;
      continue;
    }
    ++*ops;
    const std::uint32_t nbytes =
        4096 * (1 + static_cast<std::uint32_t>(rng.next_below(8)));
    auto wfut = fs.write(id, 0, nbytes);
    if (co_await wfut != Status::kOk) ++*failures;
    ++*ops;
    const SimTime t0 = sim.now();
    auto sfut = fs.fsync(id);
    if (co_await sfut == Status::kOk) {
      fsync_lat->record(sim.now() - t0);
      ++*ops;
    } else {
      ++*failures;
    }
    co_await sim.delay(SimTime::micros(500 + rng.next_below(3000)));
  }
}

CellResult run_cell(const CellSpec& spec, std::uint32_t nthreads, bool smoke) {
  CellResult r;
  r.spec = spec;
  Cluster c(cell_cluster(spec.nshards, nthreads));
  const auto& cp = c.params();
  FaultSchedule sched = FaultSchedule::generate(
      cell_faults(spec), cp.array.ndisks, cp.nclients, cp.nshards);
  FaultInjector inj(c, std::move(sched));
  inj.register_metrics();
  if (!inj.schedule().empty()) inj.arm();
  c.start();

  const int nfiles = smoke ? 10 : 40;
  std::vector<LatencyHistogram> fsync_lat(c.nclients());
  std::vector<std::uint64_t> ops(c.nclients(), 0);
  std::vector<std::uint64_t> failures(c.nclients(), 0);
  std::vector<redbud::sim::ProcRef> refs;
  for (std::size_t i = 0; i < c.nclients(); ++i) {
    Simulation& csim = c.client_sim(i);
    refs.push_back(csim.spawn(churn(csim, c.client(i),
                                    static_cast<std::uint32_t>(i), nfiles,
                                    &fsync_lat[i], &ops[i], &failures[i])));
  }
  c.run_until(SimTime::seconds(smoke ? 2 : 4));
  c.check_failures();
  for (const auto& ref : refs) {
    if (!ref.done()) ++r.op_failures;  // a stuck churn is a failure too
  }

  // Drain requeued/queued commit batches before the consistency check.
  for (int spin = 0; spin < 500; ++spin) {
    std::size_t pending = 0;
    for (std::size_t ci = 0; ci < c.nclients(); ++ci) {
      auto& q = c.client(ci).commit_queue();
      pending += q.size() + q.in_flight();
    }
    if (pending == 0) break;
    c.run_until(c.now() + SimTime::millis(20));
  }

  LatencyHistogram fsync_all;
  LatencyHistogram commit_all;
  for (std::size_t i = 0; i < c.nclients(); ++i) {
    fsync_all.merge(fsync_lat[i]);
    r.ops += ops[i];
    r.op_failures += failures[i];
    const auto& stats = c.client(i).endpoint().op_stats();
    if (const auto it = stats.find("commit"); it != stats.end()) {
      commit_all.merge(it->second.rtt);
    }
  }
  r.fsync_p99_us = fsync_all.percentile(99).to_micros();
  r.fsync_mean_us = fsync_all.mean().to_micros();
  r.commit_p99_us = commit_all.percentile(99).to_micros();
  r.drops = c.network().messages_dropped();
  r.crashes = c.shard_crashes();
  r.failovers = c.failovers_completed();
  if (c.failover_time().count() > 0) {
    r.failover_mean_us = c.failover_time().mean().to_micros();
  }
  r.faults_injected = inj.total_injected();
  r.faults_cleared = inj.total_cleared();
  bool shards_up = true;
  for (std::uint32_t s = 0; s < c.nshards(); ++s) {
    shards_up = shards_up && !c.shard_crashed(s);
  }
  r.faults_all_cleared = r.faults_injected == inj.schedule().size() &&
                         r.faults_cleared == inj.schedule().size() &&
                         r.failovers == r.crashes && shards_up;
  r.consistent = core::check_consistency(c).consistent();
  return r;
}

void write_faults_json(const std::vector<CellResult>& cells,
                       std::uint32_t nthreads, bool smoke) {
  std::filesystem::create_directories("bench_out");
  std::ofstream out("bench_out/BENCH_faults.json", std::ios::trunc);
  out << "{\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"nthreads\": " << nthreads << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& r = cells[i];
    out << "    {\"fault\": \"" << r.spec.fault << "\", \"intensity\": \""
        << r.spec.intensity << "\", \"nshards\": " << r.spec.nshards
        << ", \"ops\": " << r.ops << ", \"op_failures\": " << r.op_failures
        << ", \"fsync_p99_us\": " << r.fsync_p99_us
        << ", \"fsync_mean_us\": " << r.fsync_mean_us
        << ", \"commit_p99_us\": " << r.commit_p99_us
        << ", \"fsync_degradation\": " << r.fsync_degradation
        << ", \"commit_degradation\": " << r.commit_degradation
        << ", \"fsync_bound\": " << r.spec.fsync_bound
        << ", \"commit_bound\": " << r.spec.commit_bound
        << ", \"within_bound\": " << (r.within_bound ? "true" : "false")
        << ", \"drops\": " << r.drops << ", \"crashes\": " << r.crashes
        << ", \"failovers\": " << r.failovers
        << ", \"failover_mean_us\": " << r.failover_mean_us
        << ", \"faults_injected\": " << r.faults_injected
        << ", \"faults_cleared\": " << r.faults_cleared
        << ", \"consistent\": " << (r.consistent ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options cli = bench::Options::parse(argc, argv);
  const bool smoke = cli.smoke;
  const std::uint32_t nthreads = cli.threads;
  core::print_banner(
      std::cout, "Fault scenario matrix",
      smoke ? "reduced CI grid: fault kind x intensity, 2 shards"
            : "fault kind x intensity x shard count; consistency + bounded "
              "degradation on every cell");

  // One baseline + six fault cells per topology. Bounds are vs the
  // same-topology baseline; see EXPERIMENTS.md for the measured runs they
  // were calibrated from.
  const std::vector<std::uint32_t> shard_counts =
      smoke ? std::vector<std::uint32_t>{2}
            : std::vector<std::uint32_t>{1, 2, 4};
  std::vector<CellSpec> grid;
  for (const std::uint32_t n : shard_counts) {
    grid.push_back({"none", "base", n, 1.0, 1.0});
    grid.push_back({"slow_disk", "mild", n, 4.0, 2.0});
    grid.push_back({"slow_disk", "harsh", n, 12.0, 2.0});
    grid.push_back({"lossy_link", "mild", n, 3.0, 3.0});
    grid.push_back({"lossy_link", "harsh", n, 4.0, 5.0});
    grid.push_back({"shard_crash", "mild", n, 4.0, 3.0});
    grid.push_back({"shard_crash", "harsh", n, 6.0, 3.0});
  }

  std::vector<CellResult> cells;
  std::map<std::uint32_t, CellResult> baselines;  // nshards -> "none" cell
  bool ok = true;
  for (const CellSpec& spec : grid) {
    CellResult r = run_cell(spec, nthreads, smoke);
    if (std::string_view(spec.fault) == "none") {
      baselines[spec.nshards] = r;
      r.within_bound = true;
    } else {
      const CellResult& base = baselines.at(spec.nshards);
      r.fsync_degradation =
          base.fsync_p99_us > 0 ? r.fsync_p99_us / base.fsync_p99_us : 0.0;
      r.commit_degradation =
          base.commit_p99_us > 0 ? r.commit_p99_us / base.commit_p99_us : 0.0;
      r.within_bound = r.fsync_degradation <= spec.fsync_bound &&
                       r.commit_degradation <= spec.commit_bound;
    }
    ok = ok && r.consistent && r.within_bound && r.faults_all_cleared &&
         r.op_failures == 0 && r.ops > 0;
    cells.push_back(std::move(r));
  }
  write_faults_json(cells, nthreads, smoke);

  core::Table table({"fault", "intensity", "shards", "ops", "fsync p99 us",
                     "commit p99 us", "x base (f/c)", "drops", "failover",
                     "consistent", "bounded"});
  for (const CellResult& r : cells) {
    table.add_row(
        {r.spec.fault, r.spec.intensity, std::to_string(r.spec.nshards),
         std::to_string(r.ops), core::Table::fmt(r.fsync_p99_us, 0),
         core::Table::fmt(r.commit_p99_us, 0),
         core::Table::fmt(r.fsync_degradation, 1) + "/" +
             core::Table::fmt(r.commit_degradation, 1),
         std::to_string(r.drops),
         std::to_string(r.failovers) + "/" + std::to_string(r.crashes),
         r.consistent ? "yes" : "NO", r.within_bound ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "fault matrix: " << cells.size() << " cells, "
            << (ok ? "all consistent, degradation within bounds"
                   : "FAILURES DETECTED")
            << "\n";
  return ok ? 0 : 1;
}
