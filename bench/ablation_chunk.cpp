// Ablation A (DESIGN.md): delegation chunk size vs I/O merge ratio and
// throughput. The paper fixes the chunk at 16 MB; this sweep shows the
// design space — tiny chunks behave like no delegation (a client's
// allocations interleave with others'), huge chunks add little once the
// client's write window is covered.
#include "common.hpp"

using namespace redbud;
using namespace redbud::workload;
using core::Protocol;

int main() {
  core::print_banner(std::cout,
                     "Ablation — space delegation chunk size (xcdn-32KB)",
                     "merge ratio and throughput vs chunk size");

  core::Table table(
      {"chunk", "merge ratio", "ops/s", "pool swaps", "delegate RPCs"});

  for (std::uint64_t mib : {1ull, 4ull, 16ull, 64ull}) {
    auto params = bench::paper_testbed(Protocol::kRedbudDelayed);
    params.redbud.client.delegation = true;
    params.redbud.client.chunk_blocks = (mib << 20) / storage::kBlockSize;
    core::Testbed bed(params);
    bed.start();
    XcdnWorkload w(bench::xcdn_params(32));
    auto opt = bench::paper_run();
    auto* cluster = bed.cluster();
    opt.on_measure_start = [cluster] { cluster->array().reset_stats(); };
    auto r = run_workload(bed, w, opt);

    std::uint64_t swaps = 0;
    std::uint64_t delegate_rpcs = 0;
    for (std::size_t i = 0; i < cluster->nclients(); ++i) {
      swaps += cluster->client(i).space_pool().swaps();
    }
    delegate_rpcs = cluster->mds().grants().size();
    table.add_row({std::to_string(mib) + " MiB",
                   core::Table::fmt(cluster->array().write_merge_ratio(), 3),
                   core::Table::fmt(r.ops_per_sec, 0), std::to_string(swaps),
                   std::to_string(delegate_rpcs)});
    std::fprintf(stderr, "  done: %lluMiB merge=%.3f\n",
                 static_cast<unsigned long long>(mib),
                 cluster->array().write_merge_ratio());
  }
  table.print(std::cout);
  return 0;
}
