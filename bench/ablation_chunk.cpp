// Ablation A (DESIGN.md): delegation chunk size vs I/O merge ratio and
// throughput. The paper fixes the chunk at 16 MB; this sweep shows the
// design space — tiny chunks behave like no delegation (a client's
// allocations interleave with others'), huge chunks add little once the
// client's write window is covered.
#include "common.hpp"
#include "parallel_runner.hpp"

using namespace redbud;
using namespace redbud::workload;
using core::Protocol;

int main(int argc, char** argv) {
  const bench::Options cli = bench::Options::parse(argc, argv);
  core::print_banner(std::cout,
                     "Ablation — space delegation chunk size (xcdn-32KB)",
                     "merge ratio and throughput vs chunk size");

  core::Table table(
      {"chunk", "merge ratio", "ops/s", "pool swaps", "delegate RPCs"});

  struct Cell {
    double merge = 0;
    double ops_per_sec = 0;
    std::uint64_t swaps = 0;
    std::uint64_t delegate_rpcs = 0;
  };
  constexpr std::uint64_t kChunksMib[] = {1, 4, 16, 64};
  Cell cells[4];
  bench::ParallelRunner runner;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t mib = kChunksMib[i];
    Cell* cell = &cells[i];
    runner.add(std::to_string(mib) + "MiB",
               [mib, cell, cli]() -> bench::KernelStats {
      auto params = bench::paper_testbed(Protocol::kRedbudDelayed, cli);
      params.redbud.client.delegation = true;
      params.redbud.client.chunk_blocks = (mib << 20) / storage::kBlockSize;
      core::Testbed bed(params);
      bed.start();
      XcdnWorkload w(bench::xcdn_params(32));
      auto opt = bench::paper_run(cli.smoke);
      auto* cluster = bed.cluster();
      opt.on_measure_start = [cluster] { cluster->array().reset_stats(); };
      auto r = run_workload(bed, w, opt);

      cell->merge = cluster->array().write_merge_ratio();
      cell->ops_per_sec = r.ops_per_sec;
      for (std::size_t c = 0; c < cluster->nclients(); ++c) {
        for (std::uint32_t s = 0; s < cluster->nshards(); ++s) {
          cell->swaps += cluster->client(c).space_pool(s).swaps();
        }
      }
      for (std::uint32_t s = 0; s < cluster->nshards(); ++s) {
        cell->delegate_rpcs += cluster->mds(s).grants().size();
      }
      std::fprintf(stderr, "  done: %lluMiB merge=%.3f\n",
                   static_cast<unsigned long long>(mib), cell->merge);
      return bench::kernel_stats(bed);
    });
  }
  runner.run_all();
  runner.write_json("ablation_chunk");

  for (int i = 0; i < 4; ++i) {
    table.add_row({std::to_string(kChunksMib[i]) + " MiB",
                   core::Table::fmt(cells[i].merge, 3),
                   core::Table::fmt(cells[i].ops_per_sec, 0),
                   std::to_string(cells[i].swaps),
                   std::to_string(cells[i].delegate_rpcs)});
  }
  table.print(std::cout);
  return 0;
}
