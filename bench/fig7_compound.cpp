// Figure 7: per-client throughput as a function of the number of MDS
// server daemon threads (1 / 8 / 16) and the RPC compound degree
// (1 / 3 / 6), under xcdn.
//
// Paper shapes (absolute values there: ~2.3 -> ~2.6 MB/s per client):
//  * more server daemons help (1 -> 8), because journal waits overlap;
//  * 16 daemons run slightly WORSE than 8 (multi-thread contention);
//  * compounding helps most when the server has few daemons;
//  * degree 6 adds little over degree 3 ("I/O is slower compared with
//    network requests").
#include <array>
#include <sstream>

#include "common.hpp"
#include "parallel_runner.hpp"

using namespace redbud;
using namespace redbud::workload;
using core::Protocol;

namespace {

constexpr std::uint32_t kDaemonCounts[] = {1, 8, 16};
constexpr std::uint32_t kDegrees[] = {1, 3, 6};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options cli = bench::Options::parse(argc, argv);
  core::print_banner(std::cout,
                     "Figure 7 — Compound degree vs MDS server daemons",
                     "xcdn-8KB (MDS-bound); per-client throughput (MB/s)");

  core::Table table({"server daemons", "degree 1", "degree 3", "degree 6",
                     "paper expectation"});

  // 3x3 grid of independent simulations; fan out over OS threads. The
  // per-op RPC dump at the paper's operating point (8 daemons, degree 3)
  // is captured inside the job and printed after the fan-out so stdout
  // stays deterministic.
  std::array<double, std::size(kDaemonCounts) * std::size(kDegrees)>
      per_client{};
  std::ostringstream rpc_dump;
  bench::ParallelRunner runner;
  for (std::size_t di = 0; di < std::size(kDaemonCounts); ++di) {
    for (std::size_t gi = 0; gi < std::size(kDegrees); ++gi) {
      const std::uint32_t nd = kDaemonCounts[di];
      const std::uint32_t degree = kDegrees[gi];
      double& out = per_client[di * std::size(kDegrees) + gi];
      runner.add("d" + std::to_string(nd) + "/c" + std::to_string(degree),
                 [nd, degree, &out, &rpc_dump, cli]() -> bench::KernelStats {
                   auto params =
                       bench::paper_testbed(Protocol::kRedbudDelayed, cli);
                   params.redbud.mds.ndaemons = nd;
                   params.redbud.client.compound.adaptive = false;
                   params.redbud.client.compound.fixed_degree = degree;
                   core::Testbed bed(params);
                   bed.start();
                   // Small files + more threads: the commit RPC rate must
                   // press on the MDS for the daemon/compound trade-offs to
                   // be visible at all (the paper's MDS was a single 3 GHz
                   // core).
                   auto xp = bench::xcdn_params(8);
                   xp.threads_per_client = 16;
                   XcdnWorkload w(xp);
                   auto opt = bench::paper_run(cli.smoke);
                   auto r = run_workload(bed, w, opt);
                   bench::write_obs_artifacts(*bed.cluster(),
                                              "fig7_d" + std::to_string(nd) +
                                                  "_c" +
                                                  std::to_string(degree));
                   out = r.mb_per_sec / double(bed.nclients());
                   std::fprintf(
                       stderr,
                       "  done: daemons=%u degree=%u -> %.2f MB/s/client\n",
                       nd, degree, out);
                   // Per-op RPC service mix at the paper's operating point —
                   // shows commit RPCs dominating the MDS and their RTT
                   // under compounding.
                   if (nd == 8 && degree == 3) {
                     bed.cluster()->mds_endpoint().dump(
                         rpc_dump, "mds per-op RPC stats (8 daemons, degree 3)");
                   }
                   return bench::kernel_stats(bed);
                 });
    }
  }
  runner.run_all();
  runner.write_json("fig7_compound");

  std::cout << rpc_dump.str();
  for (std::size_t di = 0; di < std::size(kDaemonCounts); ++di) {
    const std::uint32_t nd = kDaemonCounts[di];
    std::vector<std::string> cells = {std::to_string(nd) + " daemons"};
    for (std::size_t gi = 0; gi < std::size(kDegrees); ++gi) {
      cells.push_back(
          core::Table::fmt(per_client[di * std::size(kDegrees) + gi], 2));
    }
    cells.push_back(nd == 1    ? "compounding helps most here"
                    : nd == 8  ? "best daemon count"
                               : "slightly below 8 (contention)");
    table.add_row(std::move(cells));
  }
  table.print(std::cout);
  return 0;
}
