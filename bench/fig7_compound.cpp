// Figure 7: per-client throughput as a function of the number of MDS
// server daemon threads (1 / 8 / 16) and the RPC compound degree
// (1 / 3 / 6), under xcdn.
//
// Paper shapes (absolute values there: ~2.3 -> ~2.6 MB/s per client):
//  * more server daemons help (1 -> 8), because journal waits overlap;
//  * 16 daemons run slightly WORSE than 8 (multi-thread contention);
//  * compounding helps most when the server has few daemons;
//  * degree 6 adds little over degree 3 ("I/O is slower compared with
//    network requests").
#include "common.hpp"

using namespace redbud;
using namespace redbud::workload;
using core::Protocol;

int main(int argc, char** argv) {
  const bench::Options cli = bench::Options::parse(argc, argv);
  core::print_banner(std::cout,
                     "Figure 7 — Compound degree vs MDS server daemons",
                     "xcdn-8KB (MDS-bound); per-client throughput (MB/s)");

  const std::uint32_t daemon_counts[] = {1, 8, 16};
  const std::uint32_t degrees[] = {1, 3, 6};

  core::Table table({"server daemons", "degree 1", "degree 3", "degree 6",
                     "paper expectation"});

  for (auto nd : daemon_counts) {
    std::vector<std::string> cells = {std::to_string(nd) + " daemons"};
    for (auto degree : degrees) {
      auto params = bench::paper_testbed(Protocol::kRedbudDelayed, cli);
      params.redbud.mds.ndaemons = nd;
      params.redbud.client.compound.adaptive = false;
      params.redbud.client.compound.fixed_degree = degree;
      core::Testbed bed(params);
      bed.start();
      // Small files + more threads: the commit RPC rate must press on the
      // MDS for the daemon/compound trade-offs to be visible at all
      // (the paper's MDS was a single 3 GHz core).
      auto xp = bench::xcdn_params(8);
      xp.threads_per_client = 16;
      XcdnWorkload w(xp);
      auto opt = bench::paper_run(cli.smoke);
      auto r = run_workload(bed, w, opt);
      bench::write_obs_artifacts(*bed.cluster(),
                                 "fig7_d" + std::to_string(nd) + "_c" +
                                     std::to_string(degree));
      const double per_client = r.mb_per_sec / double(bed.nclients());
      cells.push_back(core::Table::fmt(per_client, 2));
      std::fprintf(stderr, "  done: daemons=%u degree=%u -> %.2f MB/s/client\n",
                   nd, degree, per_client);
      // Per-op RPC service mix at the paper's operating point — shows
      // commit RPCs dominating the MDS and their RTT under compounding.
      if (nd == 8 && degree == 3) {
        bed.cluster()->mds_endpoint().dump(
            std::cout, "mds per-op RPC stats (8 daemons, degree 3)");
      }
    }
    cells.push_back(nd == 1    ? "compounding helps most here"
                    : nd == 8  ? "best daemon count"
                               : "slightly below 8 (contention)");
    table.add_row(std::move(cells));
  }
  table.print(std::cout);
  return 0;
}
