// Metadata-service scaling: aggregate small-file throughput as the MDS is
// sharded 1 / 2 / 4 / 8 ways.
//
// The paper's testbed has a single metadata server; under the fileserver
// small-file workload its one CPU core is the bottleneck that delayed
// commit batches around. Sharding the metadata service multiplies the
// metadata CPU, journal bandwidth, and RPC queues; directory-entry
// striping (ShardMap) spreads the root directory's creates across all
// shards. Expected shape: aggregate ops/s and commit entries/s grow with
// the shard count and the per-shard commit load evens out, while the
// whole-cluster crash-consistency check keeps passing — sharding must not
// weaken ordered writes.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common.hpp"
#include "core/recovery.hpp"
#include "parallel_runner.hpp"

using namespace redbud;
using namespace redbud::workload;
using core::Protocol;

namespace {

constexpr std::uint32_t kShardCounts[] = {1, 2, 4, 8};

// A config that actually stresses the metadata service. The paper testbed
// (7 clients, 128 KiB mean files, 4 disks) is data-seek-bound: its single
// MDS idles near 10% CPU, so sharding it can only add overhead. Here the
// files are genuinely small — half a cycle's RPCs are pure metadata — the
// client count is doubled, and the data array is provisioned wide enough
// (16 spindles; small writes are pool-chunk-sequential and merge anyway)
// that the MDS, not the disks, caps aggregate throughput.
workload::FilebenchParams small_file_params() {
  workload::FilebenchParams f;
  f.nfiles_per_client = 150;   // fileset fits the 16 MiB client cache
  f.threads_per_client = 16;
  f.mean_file_bytes = 8 * 1024;
  f.max_file_bytes = 32 * 1024;
  f.append_bytes = 8 * 1024;
  return f;
}

core::TestbedParams scaling_testbed(std::uint32_t nshards,
                                    std::uint32_t nthreads = 1) {
  auto p = bench::paper_testbed(Protocol::kRedbudDelayed);
  p.redbud.nthreads = nthreads;
  p.nclients = 16;
  // Wide enough that the data path never binds: a single MDS serves
  // ~4k RPC/s, which drives roughly the same IOPS — 16 spindles
  // (~250 seek-bound IOPS each) would saturate at exactly the 1-shard
  // rate and flatten the curve for every shard count.
  p.redbud.array.ndisks = 64;
  p.redbud.nshards = nshards;
  // The AG list is device-major and this workload only ever asks for a
  // handful of delegation chunks — plain round-robin would park them all
  // on the first few spindles and leave half the array idle. Stripe the
  // cursor across devices so the data path doesn't mask MDS scaling.
  p.redbud.space.across_ags = mds::AgSelect::kDeviceStripe;
  // Deal whole spindles to shards: slicing every device N ways makes one
  // head serve N distant partitions, and the seek cost swamps the
  // metadata win this bench exists to measure.
  p.redbud.partition = core::SpacePartition::kWholeDevices;
  return p;
}

struct Row {
  std::uint32_t nshards = 0;
  double ops_per_sec = 0.0;
  double commit_entries_per_sec = 0.0;
  std::uint64_t commit_entries_total = 0;
  std::vector<std::uint64_t> per_shard_commits;
  bool consistent = false;
  std::uint64_t commits_checked = 0;
  std::uint64_t verify = 0;
};

void write_shards_json(const std::vector<Row>& rows) {
  std::filesystem::create_directories("bench_out");
  std::ofstream out("bench_out/BENCH_shards.json", std::ios::trunc);
  out << "{\n  \"mds_scaling\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"nshards\": " << r.nshards
        << ", \"ops_per_sec\": " << r.ops_per_sec
        << ", \"commit_entries_per_sec\": " << r.commit_entries_per_sec
        << ", \"consistent\": " << (r.consistent ? "true" : "false")
        << ", \"per_shard_commits\": [";
    for (std::size_t s = 0; s < r.per_shard_commits.size(); ++s) {
      out << r.per_shard_commits[s]
          << (s + 1 < r.per_shard_commits.size() ? ", " : "");
    }
    out << "]}" << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

// --trace: run the 4-shard configuration once with span tracing enabled,
// emit bench_out/metrics.json and bench_out/mds_scaling.trace.json, and
// verify the observability acceptance property: at least one traced
// update reconstructs as an unbroken span chain
// (write -> queue wait -> checkout -> compound RPC -> MDS -> journal -> ack).
int run_traced(const bench::Options& cli) {
  core::print_banner(std::cout, "MDS scaling — traced run (4 shards)",
                     "span tracing + time-series sampling enabled; "
                     "artifacts in bench_out/");
  auto params = scaling_testbed(4);
  params.redbud.obs.tracing.enabled = true;
  // Time-series plane: sample every registered instrument at a 10 ms
  // stride (or the explicit --sample-interval) into bench_out/timeseries.json.
  params.redbud.obs.sampling.interval = redbud::sim::SimTime::millis_f(
      cli.sample_interval_ms > 0 ? cli.sample_interval_ms : 10.0);
  core::Testbed bed(params);
  bed.start();
  FileserverWorkload w(small_file_params());
  auto opt = bench::paper_run();
  opt.warmup = redbud::sim::SimTime::seconds(1);
  opt.duration = redbud::sim::SimTime::seconds(2);
  (void)run_workload(bed, w, opt);

  core::Cluster& c = *bed.cluster();
  std::filesystem::create_directories("bench_out");
  bool ok = true;
  // Critical-path blame: analyze before the metrics snapshot so the
  // chains_open{stage=...} accounting rides along in metrics.json.
  obs::CriticalPath blame;
  blame.analyze(c.obs().tracer);
  blame.register_metrics(&c.obs().registry);
  const obs::ProcessMem mem = bench::read_proc_mem();
  if (!obs::write_metrics_json(c.obs(), c.sim().now(),
                               "bench_out/metrics.json", &mem)) {
    std::cerr << "FAILED to write bench_out/metrics.json\n";
    ok = false;
  }
  if (!obs::write_blame_json(blame, c.sim().now(),
                             "bench_out/latency_blame.json",
                             &c.obs().watchdog)) {
    std::cerr << "FAILED to write bench_out/latency_blame.json\n";
    ok = false;
  }
  if (!obs::write_perfetto_json(c.obs().tracer,
                                "bench_out/mds_scaling.trace.json",
                                &c.obs().sampler)) {
    std::cerr << "FAILED to write bench_out/mds_scaling.trace.json\n";
    ok = false;
  }
  if (!obs::write_timeseries_json(c.obs().sampler,
                                  "bench_out/timeseries.json")) {
    std::cerr << "FAILED to write bench_out/timeseries.json\n";
    ok = false;
  }
  if (c.obs().sampler.samples_taken() == 0 ||
      c.obs().sampler.channel_count() == 0) {
    std::cerr << "NO time-series samples taken\n";
    ok = false;
  }
  std::cout << "time-series samples: " << c.obs().sampler.samples_taken()
            << " across " << c.obs().sampler.channel_count()
            << " channels\n";

  // Scan the root client-write spans for a fully reconstructable chain.
  // Tail updates whose commits were still queued at shutdown legitimately
  // stop at the queue-wait stage, so the check is "at least one unbroken",
  // reported alongside the overall ratio.
  const auto& spans = c.obs().tracer.spans();
  std::uint64_t roots = 0;
  std::uint64_t unbroken = 0;
  std::uint64_t first_unbroken_trace = 0;
  for (const auto& s : spans) {
    if (s.stage != obs::Stage::kClientWrite || s.parent != 0) continue;
    ++roots;
    if (obs::chain_unbroken(c.obs().tracer, s.trace)) {
      ++unbroken;
      if (first_unbroken_trace == 0) first_unbroken_trace = s.trace;
    }
  }
  std::cout << "spans recorded: " << spans.size()
            << " (dropped " << c.obs().tracer.spans_dropped() << ")\n"
            << "client-write root spans: " << roots << ", unbroken chains: "
            << unbroken << "\n";
  if (first_unbroken_trace != 0) {
    std::cout << "first unbroken chain (trace " << first_unbroken_trace
              << "):";
    for (const auto st : obs::reconstruct_chain(c.obs().tracer,
                                                first_unbroken_trace)) {
      std::cout << " " << obs::stage_name(st);
    }
    std::cout << "\n";
  } else {
    std::cerr << "NO unbroken write->journal->ack chain reconstructed\n";
    ok = false;
  }

  // Blame acceptance: the open-chain accounting must close (every write
  // root is completed or classified open at a known stage) and at least
  // one chain must have been fully attributed.
  if (blame.roots() != blame.completed() + blame.open_total()) {
    std::cerr << "BLAME accounting broken: roots=" << blame.roots()
              << " != completed=" << blame.completed()
              << " + open=" << blame.open_total() << "\n";
    ok = false;
  }
  if (blame.completed() == 0) {
    std::cerr << "NO completed chains attributed\n";
    ok = false;
  }
  std::cout << "critical-path blame: " << blame.completed() << "/"
            << blame.roots() << " chains completed (open: queued "
            << blame.open(obs::OpenStage::kQueued) << ", in-flight "
            << blame.open(obs::OpenStage::kInFlight) << ", unlinked "
            << blame.open(obs::OpenStage::kUnlinked) << ")\n";
  const double total_ns = double(blame.total().total_ns);
  for (std::size_t i = 0; i < obs::kBlameStageCount; ++i) {
    const auto s = obs::BlameStage(i);
    const auto& agg = blame.stage(s);
    std::printf("  %-16s %-9s share %5.1f%%  p99 %10.1f us\n",
                obs::blame_stage_name(s),
                obs::blame_is_queueing(s) ? "queueing" : "service",
                total_ns > 0 ? 100.0 * double(agg.total_ns) / total_ns : 0.0,
                agg.hist.percentile(99).to_micros());
  }
  std::cout << "traced run: " << (ok ? "OK" : "FAILED") << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options cli = bench::Options::parse(argc, argv);
  if (cli.trace) return run_traced(cli);
  // --threads N runs every configuration under the partitioned kernel
  // with N worker threads (default 1 = the serial kernel, byte-identical
  // to the pre-partitioning figures).
  const unsigned kthreads = cli.threads;
  core::print_banner(
      std::cout, "MDS scaling — sharded metadata service",
      "fileserver small-file workload; aggregate throughput vs shard count");

  std::vector<Row> rows(std::size(kShardCounts));
  bench::ParallelRunner runner;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::uint32_t n = kShardCounts[i];
    Row& row = rows[i];
    row.nshards = n;
    runner.add("shards/" + std::to_string(n), kthreads,
               [n, kthreads, &row]() -> bench::KernelStats {
      FileserverWorkload w(small_file_params());
      core::Testbed bed(scaling_testbed(n, kthreads));
      bed.start();
      auto opt = bench::paper_run();
      const auto r = run_workload(bed, w, opt);
      row.ops_per_sec = r.ops_per_sec;
      row.verify = r.verify_failures + r.op_errors;

      core::Cluster& c = *bed.cluster();
      const double secs = opt.duration.to_micros() / 1e6;
      for (std::uint32_t s = 0; s < c.nshards(); ++s) {
        row.per_shard_commits.push_back(c.mds(s).commit_entries_processed());
        row.commit_entries_total += c.mds(s).commit_entries_processed();
      }
      row.commit_entries_per_sec = double(row.commit_entries_total) / secs;

      // Drain the delayed-commit pipeline before checking: a tail block
      // rewritten in place whose commit is still queued is legal under
      // ordered writes (data newer than metadata), but the checker would
      // flag it. Once every client queue is empty, every durable commit
      // on every shard must match the array exactly.
      for (int spin = 0; spin < 1500; ++spin) {
        std::size_t pending = 0;
        for (std::size_t ci = 0; ci < c.nclients(); ++ci) {
          auto& q = c.client(ci).commit_queue();
          pending += q.size() + q.in_flight();
        }
        if (pending == 0) break;
        bed.run_until(bed.now() + redbud::sim::SimTime::millis(20));
      }
      const auto report = core::check_consistency(c);
      row.consistent = report.consistent();
      row.commits_checked = report.commits_checked;
      bench::write_obs_artifacts(c, "mds_scaling_shards" + std::to_string(n));

      // Per-op RPC service mix, one table per shard (4-shard config only,
      // to keep the output readable).
      if (n == 4) {
        for (std::uint32_t s = 0; s < c.nshards(); ++s) {
          c.mds_endpoint(s).dump(std::cout,
                                 "mds shard " + std::to_string(s));
        }
      }
      return bench::kernel_stats(bed);
    });
  }
  runner.run_all();
  runner.write_json("mds_scaling");
  write_shards_json(rows);

  // Kernel thread-scaling sweep: the 8-shard configuration re-run under
  // the partitioned kernel at 1 / 2 / 4 / 8 worker threads. Sequential
  // (one configuration at a time) so each run owns every core the host
  // has, and shorter than the figure runs — this measures the kernel's
  // events/sec, not the filesystem. Results land in BENCH_kernel.json
  // under "mds_scaling_threads" with nthreads per row.
  {
    constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};
    bench::ParallelRunner sweep(1);
    for (const unsigned nt : kThreadCounts) {
      sweep.add("shards/8 threads/" + std::to_string(nt), nt,
                [nt]() -> bench::KernelStats {
                  FileserverWorkload w(small_file_params());
                  core::Testbed bed(scaling_testbed(8, nt));
                  bed.start();
                  auto opt = bench::paper_run();
                  opt.warmup = redbud::sim::SimTime::seconds(1);
                  opt.duration = redbud::sim::SimTime::seconds(2);
                  (void)run_workload(bed, w, opt);
                  return bench::kernel_stats(bed);
                });
    }
    sweep.run_all();
    sweep.write_json("mds_scaling_threads");
  }

  core::Table table({"shards", "ops/s", "commit entries/s", "speedup",
                     "shard commit spread", "consistent"});
  const double base = rows[0].ops_per_sec;
  bool ok = true;
  for (const auto& row : rows) {
    std::uint64_t lo = row.per_shard_commits.empty()
                           ? 0
                           : row.per_shard_commits[0];
    std::uint64_t hi = lo;
    for (const auto v : row.per_shard_commits) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    table.add_row({std::to_string(row.nshards), core::Table::fmt(row.ops_per_sec, 0),
                   core::Table::fmt(row.commit_entries_per_sec, 0),
                   base > 0 ? core::Table::fmt_ratio(row.ops_per_sec / base)
                            : "-",
                   std::to_string(lo) + ".." + std::to_string(hi),
                   row.consistent ? "yes" : "NO"});
    ok = ok && row.consistent && row.verify == 0 && row.commits_checked > 0;
  }
  table.print(std::cout);

  // The scaling claim itself: 4 shards must beat 1 on aggregate
  // small-file commit throughput.
  const Row& r1 = rows[0];
  const Row& r4 = rows[2];
  const bool scales =
      r4.commit_entries_per_sec > r1.commit_entries_per_sec &&
      r4.ops_per_sec > r1.ops_per_sec;
  std::cout << "scaling (4 shards vs 1): "
            << (scales ? "aggregate commit throughput up" : "NO SCALING")
            << "  (" << core::Table::fmt(r1.commit_entries_per_sec, 0)
            << " -> " << core::Table::fmt(r4.commit_entries_per_sec, 0)
            << " entries/s)\n";
  ok = ok && scales;
  std::cout << "verification: "
            << (ok ? "consistent on every shard, reads verified"
                   : "FAILURES DETECTED")
            << "\n";
  return ok ? 0 : 1;
}
