// Synthetic-series tests for the incident watchdog: every detector kind
// gets a breach, a clear, a hysteresis and a no-false-positive case, all
// driven by hand off a fake probe grid (no simulation involved — the
// watchdog only ever sees the registry and grid instants).
#include <gtest/gtest.h>

#include <cstdint>

#include "obs/metrics_registry.hpp"
#include "obs/watchdog.hpp"
#include "sim/stats.hpp"

namespace redbud::obs {
namespace {

using redbud::sim::Counter;
using redbud::sim::SimTime;

// --- The hoisted least-squares fit ----------------------------------------

TEST(WindowSlope, FitsALineInsideTheWindowOnly) {
  const std::vector<double> x{0, 1, 2, 3, 4};
  const std::vector<double> y{0, 2, 4, 6, 8};
  EXPECT_DOUBLE_EQ(window_slope(x, y, 0, 4), 2.0);
  EXPECT_DOUBLE_EQ(window_slope(x, y, 2, 4), 2.0);
  // Points outside the window must not contribute.
  const std::vector<double> y2{100, 2, 4, 6, 200};
  EXPECT_DOUBLE_EQ(window_slope(x, y2, 1, 3), 2.0);
}

TEST(WindowSlope, DegenerateInputsReturnZero) {
  EXPECT_DOUBLE_EQ(window_slope({}, {}, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(window_slope({1}, {5}, 0, 2), 0.0);      // one point
  EXPECT_DOUBLE_EQ(window_slope({1, 1}, {5, 9}, 0, 2), 0.0);  // det == 0
}

// --- Backlog-slope detector ------------------------------------------------

struct BacklogRig {
  MetricsRegistry reg;
  std::uint64_t backlog = 0;

  explicit BacklogRig(double threshold, double floor) {
    reg.register_value("commit_queue.depth", {{"client", "0"}}, &backlog);
    wd.bind(&reg);
    DetectorParams p;
    p.kind = IncidentKind::kBacklogGrowth;
    p.series = "commit_queue.depth";
    p.threshold = threshold;
    p.floor = floor;
    p.window = SimTime::millis(100);
    p.breach_ticks = 2;
    p.clear_ticks = 2;
    wd.arm(p);
  }
  Watchdog wd;
};

TEST(Watchdog, BacklogSlopeBreachRaisesThenClears) {
  BacklogRig rig(/*threshold=*/50.0, /*floor=*/10.0);
  // Grow by 10 per 10 ms tick: slope ~1000/s, far past threshold. Two
  // consecutive breaching samples are required, so the incident lands on
  // the third grid instant (the first has a single-point history).
  int t = 0;
  for (int i = 1; i <= 5; ++i) {
    rig.backlog = std::uint64_t(10 * i);
    rig.wd.tick(SimTime::millis(t += 10));
  }
  ASSERT_EQ(rig.wd.incidents().size(), 1u);
  const Incident& inc = rig.wd.incidents()[0];
  EXPECT_EQ(inc.kind, IncidentKind::kBacklogGrowth);
  EXPECT_EQ(inc.at, SimTime::millis(30));
  EXPECT_EQ(inc.target, "commit_queue.depth");
  EXPECT_NE(inc.evidence.find("slope="), std::string::npos);
  EXPECT_FALSE(inc.cleared);

  // Plateau: once the window fills with flat samples the slope decays
  // under threshold and the incident clears after clear_ticks samples.
  for (int i = 0; i < 15 && !rig.wd.incidents()[0].cleared; ++i) {
    rig.wd.tick(SimTime::millis(t += 10));
  }
  EXPECT_TRUE(rig.wd.incidents()[0].cleared);
  EXPECT_GT(rig.wd.incidents()[0].clear_at, rig.wd.incidents()[0].at);
  EXPECT_EQ(rig.wd.incidents().size(), 1u) << "clearing must not re-raise";
}

TEST(Watchdog, BacklogBelowFloorNeverBreaches) {
  BacklogRig rig(/*threshold=*/50.0, /*floor=*/1000.0);
  int t = 0;
  for (int i = 1; i <= 20; ++i) {
    rig.backlog = std::uint64_t(10 * i);  // steep slope, tiny level
    rig.wd.tick(SimTime::millis(t += 10));
  }
  EXPECT_TRUE(rig.wd.incidents().empty());
}

TEST(Watchdog, FlatBacklogAtHighLevelNeverBreaches) {
  BacklogRig rig(/*threshold=*/50.0, /*floor=*/10.0);
  rig.backlog = 5000;  // far above floor, but not growing
  for (int t = 10; t <= 300; t += 10) rig.wd.tick(SimTime::millis(t));
  EXPECT_TRUE(rig.wd.incidents().empty());
}

// --- Retry-storm detector ---------------------------------------------------

struct RetryRig {
  MetricsRegistry reg;
  Counter retries;
  Watchdog wd;

  RetryRig() {
    reg.register_counter("rpc.retries_sent", {{"client", "0"}}, &retries);
    wd.bind(&reg);
    DetectorParams p;
    p.kind = IncidentKind::kRetryStorm;
    p.series = "rpc.retries_sent";
    p.threshold = 1.0;  // any retransmission inside the window
    p.window = SimTime::millis(100);
    p.breach_ticks = 1;
    p.clear_ticks = 2;
    wd.arm(p);
  }
};

TEST(Watchdog, RetryStormRaisesOnWindowDeltaAndClearsWhenQuiet) {
  RetryRig rig;
  rig.wd.tick(SimTime::millis(10));
  EXPECT_TRUE(rig.wd.incidents().empty());

  rig.retries.add(1);
  rig.wd.tick(SimTime::millis(20));
  ASSERT_EQ(rig.wd.incidents().size(), 1u);
  EXPECT_EQ(rig.wd.incidents()[0].kind, IncidentKind::kRetryStorm);
  EXPECT_EQ(rig.wd.incidents()[0].at, SimTime::millis(20));

  // No further retransmissions: the delta stays 1 until the breaching
  // sample ages out of the 100 ms window, then two quiet samples clear.
  for (int t = 30; t <= 200 && !rig.wd.incidents()[0].cleared; t += 10) {
    rig.wd.tick(SimTime::millis(t));
  }
  EXPECT_TRUE(rig.wd.incidents()[0].cleared);
  EXPECT_EQ(rig.wd.incidents().size(), 1u);
}

TEST(Watchdog, LossFreeRunRaisesNoRetryStorm) {
  RetryRig rig;
  for (int t = 10; t <= 500; t += 10) rig.wd.tick(SimTime::millis(t));
  EXPECT_TRUE(rig.wd.incidents().empty());
}

// --- Commit-stall detector ---------------------------------------------------

struct StallRig {
  MetricsRegistry reg;
  std::uint64_t oldest_us = 0;
  Watchdog wd;

  explicit StallRig(std::uint32_t breach_ticks) {
    reg.register_value("commit_queue.oldest_enqueued_us", {{"client", "0"}},
                       &oldest_us);
    wd.bind(&reg);
    DetectorParams p;
    p.kind = IncidentKind::kCommitStall;
    p.series = "commit_queue.oldest_enqueued_us";
    p.threshold = 50'000.0;  // 50 ms age
    p.breach_ticks = breach_ticks;
    p.clear_ticks = 1;
    wd.arm(p);
  }
};

TEST(Watchdog, CommitStallAgeRaisesAndDrainClears) {
  StallRig rig(/*breach_ticks=*/2);
  rig.oldest_us = 10'000;  // enqueued at t=10ms and never checked out
  rig.wd.tick(SimTime::millis(20));
  rig.wd.tick(SimTime::millis(60));  // age 50ms: not yet > threshold
  EXPECT_TRUE(rig.wd.incidents().empty());
  rig.wd.tick(SimTime::millis(70));  // age 60ms, run=1
  rig.wd.tick(SimTime::millis(80));  // age 70ms, run=2 -> raise
  ASSERT_EQ(rig.wd.incidents().size(), 1u);
  const Incident& inc = rig.wd.incidents()[0];
  EXPECT_EQ(inc.kind, IncidentKind::kCommitStall);
  EXPECT_EQ(inc.at, SimTime::millis(80));
  EXPECT_EQ(inc.target, "commit_queue.oldest_enqueued_us{client=0}")
      << "the stalled queue's label set is the blamed target";

  rig.oldest_us = 0;  // queue drained
  rig.wd.tick(SimTime::millis(90));
  EXPECT_TRUE(rig.wd.incidents()[0].cleared);
  EXPECT_EQ(rig.wd.incidents()[0].clear_at, SimTime::millis(90));
}

TEST(Watchdog, BreachShorterThanHysteresisDoesNotRaise) {
  StallRig rig(/*breach_ticks=*/2);
  rig.oldest_us = 10'000;
  rig.wd.tick(SimTime::millis(70));  // age 60ms > threshold, run=1
  rig.oldest_us = 0;                 // drained before the second sample
  rig.wd.tick(SimTime::millis(80));
  rig.oldest_us = 60'000;            // a fresh, young entry
  rig.wd.tick(SimTime::millis(90));  // age 30ms: below threshold
  EXPECT_TRUE(rig.wd.incidents().empty());
}

// --- Failover-stall detector --------------------------------------------------

struct FailoverRig {
  MetricsRegistry reg;
  std::uint64_t crashes = 0;
  std::uint64_t failovers = 0;
  Watchdog wd;

  FailoverRig() {
    reg.register_value("cluster.shard_crashes", {}, &crashes);
    reg.register_value("cluster.failovers", {}, &failovers);
    wd.bind(&reg);
    DetectorParams p;
    p.kind = IncidentKind::kFailoverStall;
    p.series = "cluster.shard_crashes";
    p.series2 = "cluster.failovers";
    p.threshold = 1.0;
    p.breach_ticks = 2;
    p.clear_ticks = 1;
    wd.arm(p);
  }
};

TEST(Watchdog, CrashWithoutFailoverRaisesUntilFailoverLands) {
  FailoverRig rig;
  rig.wd.tick(SimTime::millis(10));
  rig.crashes = 1;
  rig.wd.tick(SimTime::millis(20));  // run=1
  rig.wd.tick(SimTime::millis(30));  // run=2 -> raise
  ASSERT_EQ(rig.wd.incidents().size(), 1u);
  EXPECT_EQ(rig.wd.incidents()[0].kind, IncidentKind::kFailoverStall);
  EXPECT_EQ(rig.wd.incidents()[0].at, SimTime::millis(30));

  rig.failovers = 1;  // standby serving again
  rig.wd.tick(SimTime::millis(40));
  EXPECT_TRUE(rig.wd.incidents()[0].cleared);
}

TEST(Watchdog, FastFailoverInsideHysteresisRaisesNothing) {
  FailoverRig rig;
  rig.crashes = 1;
  rig.wd.tick(SimTime::millis(10));  // run=1
  rig.failovers = 1;                 // failover completes before next tick
  rig.wd.tick(SimTime::millis(20));
  rig.wd.tick(SimTime::millis(30));
  EXPECT_TRUE(rig.wd.incidents().empty());
}

// --- Enablement ---------------------------------------------------------------

TEST(Watchdog, DisabledWithoutDetectorsOrRegistry) {
  Watchdog unbound;
  EXPECT_FALSE(unbound.enabled());
  MetricsRegistry reg;
  Watchdog no_detectors;
  no_detectors.bind(&reg);
  EXPECT_FALSE(no_detectors.enabled());
  no_detectors.tick(SimTime::millis(1));  // safe no-op
  EXPECT_EQ(no_detectors.ticks(), 0u);
  no_detectors.arm(DetectorParams{});
  EXPECT_TRUE(no_detectors.enabled());
}

}  // namespace
}  // namespace redbud::obs
