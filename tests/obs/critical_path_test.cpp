// Critical-path blame attribution tests: exact decomposition on a
// hand-built span chain, dedup-merge and batch-rider attribution,
// open-chain classification, chains_open metric export, a golden
// latency_blame.json on a pinned small-testbed run, and bit-identity of
// the blame artifact across worker counts under force_partitioned.
//
// Regenerate the golden file after an intentional format change:
//   REDBUD_REGEN_GOLDEN=1 ./build/tests/redbud_tests \
//       --gtest_filter=BlameGolden.SmallTestbedRun
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/cluster.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace redbud::obs {
namespace {

using core::Cluster;
using core::ClusterParams;
using redbud::sim::Process;
using redbud::sim::SimTime;

SimTime us(std::int64_t v) { return SimTime::micros(v); }

SimTime st(const BlameBreakdown& b, BlameStage s) {
  return b.stage[std::size_t(s)];
}

// Record the batch-side chain (checkout -> wire -> MDS -> journal) and
// return the batch context so per-update e2e spans can link to it.
struct BatchSide {
  TraceContext batch, wire, mds, journal;
};
BatchSide record_batch(Tracer& t, std::int64_t checkout_us,
                       std::int64_t sent_us, std::int64_t reply_us,
                       std::int64_t mds0_us, std::int64_t mds1_us,
                       std::int64_t j0_us, std::int64_t j1_us,
                       std::uint64_t batch_size) {
  const Track cl{client_track(0), 3};
  const Track sh{shard_track(0), 1};
  BatchSide b;
  b.batch = t.mint();
  t.record(Stage::kCheckoutBatch, b.batch, 0, cl, us(checkout_us), us(sent_us),
           batch_size, /*shard=*/0);
  b.wire = t.child(b.batch);
  t.record(Stage::kRpcWire, b.wire, b.batch.span, cl, us(sent_us),
           us(reply_us));
  b.mds = t.child(b.wire);
  t.record(Stage::kMdsHandle, b.mds, b.wire.span, sh, us(mds0_us), us(mds1_us));
  b.journal = t.child(b.mds);
  t.record(Stage::kJournalFsync, b.journal, b.mds.span, sh, us(j0_us),
           us(j1_us));
  return b;
}

// One update's client side: write root, queue wait, commit e2e linking to
// the carrying batch span. Returns the root context.
TraceContext record_update(Tracer& t, std::int64_t entry_us,
                           std::int64_t enq_us, std::int64_t checkout_us,
                           std::int64_t ack_us, std::uint64_t batch_span,
                           std::uint64_t file) {
  const Track cl{client_track(0), 2};
  const TraceContext op = t.mint();
  t.record(Stage::kClientWrite, op, 0, cl, us(entry_us), us(enq_us), file);
  const TraceContext qw = t.child(op);
  t.record(Stage::kQueueWait, qw, op.span, cl, us(enq_us), us(checkout_us),
           file);
  const TraceContext e2e = t.child(op);
  t.record(Stage::kCommitE2e, e2e, op.span, cl, us(enq_us), us(ack_us), file,
           batch_span);
  return op;
}

TEST(CriticalPath, SingleChainDecomposesExactly) {
  Tracer t(TracerParams{.enabled = true});
  // op entry 10, enqueue 40, checkout 90, RPC sent 95, MDS handles
  // 120-180 with the journal flush at 130-170, reply+ack at 200.
  const BatchSide bs = record_batch(t, 90, 95, 200, 120, 180, 130, 170, 1);
  const TraceContext op =
      record_update(t, 10, 40, 90, 200, bs.batch.span, /*file=*/7);

  CriticalPath cp;
  cp.analyze(t);
  EXPECT_EQ(cp.roots(), 1u);
  EXPECT_EQ(cp.completed(), 1u);
  EXPECT_EQ(cp.open_total(), 0u);

  const BlameBreakdown b = cp.decompose(op.trace);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(st(b, BlameStage::kClientSubmit), us(30));
  EXPECT_EQ(st(b, BlameStage::kQueueWait), us(50));
  EXPECT_EQ(st(b, BlameStage::kDaemonCheckout), us(5));
  // Wire residency 95->200 is 105us, of which 60us was MDS handling:
  // 45us of pure network queueing.
  EXPECT_EQ(st(b, BlameStage::kRpcNetwork), us(45));
  EXPECT_EQ(st(b, BlameStage::kMdsService), us(20));
  EXPECT_EQ(st(b, BlameStage::kJournalFsync), us(40));
  EXPECT_EQ(st(b, BlameStage::kAckReturn), us(0));
  EXPECT_EQ(b.total, us(190));

  // The seven components sum *exactly* to the end-to-end latency.
  SimTime sum = SimTime::zero();
  for (std::size_t i = 0; i < kBlameStageCount; ++i) sum = sum + b.stage[i];
  EXPECT_EQ(sum, b.total);

  // Aggregates saw the same chain.
  EXPECT_EQ(cp.total().hist.count(), 1u);
  EXPECT_EQ(cp.stage(BlameStage::kQueueWait).hist.count(), 1u);
  EXPECT_EQ(std::uint64_t(cp.stage(BlameStage::kQueueWait).total_ns), 50'000u);
  EXPECT_EQ(std::uint64_t(cp.total().total_ns), 190'000u);
}

TEST(CriticalPath, DedupMergedUpdatesKeepTheirOwnQueueWait) {
  Tracer t(TracerParams{.enabled = true});
  const BatchSide bs = record_batch(t, 90, 95, 200, 120, 180, 130, 170, 1);
  // Two updates to the same file dedup-merged into one queued task: the
  // first enqueued at 40, the second rode in at 60. Both share the batch
  // spans but keep their own enqueue epochs.
  const TraceContext op1 =
      record_update(t, 10, 40, 90, 200, bs.batch.span, /*file=*/7);
  const TraceContext op2 =
      record_update(t, 50, 60, 90, 200, bs.batch.span, /*file=*/7);

  CriticalPath cp;
  cp.analyze(t);
  EXPECT_EQ(cp.completed(), 2u);

  const BlameBreakdown b1 = cp.decompose(op1.trace);
  const BlameBreakdown b2 = cp.decompose(op2.trace);
  ASSERT_TRUE(b1.completed);
  ASSERT_TRUE(b2.completed);
  // Per-update waits differ...
  EXPECT_EQ(st(b1, BlameStage::kQueueWait), us(50));
  EXPECT_EQ(st(b2, BlameStage::kQueueWait), us(30));
  EXPECT_EQ(b1.total, us(190));
  EXPECT_EQ(b2.total, us(150));
  // ...while every batch-side stage is attributed identically.
  for (const auto s : {BlameStage::kDaemonCheckout, BlameStage::kRpcNetwork,
                       BlameStage::kMdsService, BlameStage::kJournalFsync,
                       BlameStage::kAckReturn}) {
    EXPECT_EQ(st(b1, s), st(b2, s)) << blame_stage_name(s);
  }
}

TEST(CriticalPath, BatchRidersShareTheCarryingBatch) {
  Tracer t(TracerParams{.enabled = true});
  // Two different files checked out into one compound RPC (arg0 = 2).
  const BatchSide bs = record_batch(t, 90, 95, 200, 120, 180, 130, 170, 2);
  const TraceContext op1 =
      record_update(t, 10, 40, 90, 200, bs.batch.span, /*file=*/7);
  const TraceContext op2 =
      record_update(t, 20, 30, 90, 200, bs.batch.span, /*file=*/8);

  CriticalPath cp;
  cp.analyze(t);
  EXPECT_EQ(cp.roots(), 2u);
  EXPECT_EQ(cp.completed(), 2u);
  EXPECT_EQ(cp.stage(BlameStage::kDaemonCheckout).hist.count(), 2u);

  const BlameBreakdown b1 = cp.decompose(op1.trace);
  const BlameBreakdown b2 = cp.decompose(op2.trace);
  EXPECT_EQ(st(b1, BlameStage::kMdsService), st(b2, BlameStage::kMdsService));
  EXPECT_EQ(st(b1, BlameStage::kJournalFsync),
            st(b2, BlameStage::kJournalFsync));
  // The rider that queued earlier carries the longer wait.
  EXPECT_EQ(st(b1, BlameStage::kQueueWait), us(50));
  EXPECT_EQ(st(b2, BlameStage::kQueueWait), us(60));
}

TEST(CriticalPath, OpenChainsAreClassifiedNotDropped) {
  Tracer t(TracerParams{.enabled = true});
  const Track cl{client_track(0), 2};

  // Queued: enqueued (root recorded), never checked out.
  const TraceContext q = t.mint();
  t.record(Stage::kClientWrite, q, 0, cl, us(10), us(40), 1);

  // In flight: checked out, commit RPC never acknowledged.
  const TraceContext i = t.mint();
  t.record(Stage::kClientWrite, i, 0, cl, us(10), us(40), 2);
  const TraceContext iq = t.child(i);
  t.record(Stage::kQueueWait, iq, i.span, cl, us(40), us(90), 2);

  // Unlinked (a): acked, but arg1 names a batch span that is not in the
  // log (e.g. evicted by the span cap).
  const TraceContext u1 = t.mint();
  t.record(Stage::kClientWrite, u1, 0, cl, us(10), us(40), 3);
  const TraceContext u1q = t.child(u1);
  t.record(Stage::kQueueWait, u1q, u1.span, cl, us(40), us(90), 3);
  const TraceContext u1e = t.child(u1);
  t.record(Stage::kCommitE2e, u1e, u1.span, cl, us(40), us(200), 3,
           /*batch_span=*/999'999);

  // Unlinked (b): the batch and wire spans exist but the MDS-side chain
  // is truncated.
  const TraceContext batch = t.mint();
  t.record(Stage::kCheckoutBatch, batch, 0, cl, us(90), us(95), 1, 0);
  const TraceContext wire = t.child(batch);
  t.record(Stage::kRpcWire, wire, batch.span, cl, us(95), us(200));
  const TraceContext u2 = t.mint();
  t.record(Stage::kClientWrite, u2, 0, cl, us(10), us(40), 4);
  const TraceContext u2q = t.child(u2);
  t.record(Stage::kQueueWait, u2q, u2.span, cl, us(40), us(90), 4);
  const TraceContext u2e = t.child(u2);
  t.record(Stage::kCommitE2e, u2e, u2.span, cl, us(40), us(200), 4,
           batch.span);

  CriticalPath cp;
  cp.analyze(t);
  EXPECT_EQ(cp.roots(), 4u);
  EXPECT_EQ(cp.completed(), 0u);
  EXPECT_EQ(cp.open(OpenStage::kQueued), 1u);
  EXPECT_EQ(cp.open(OpenStage::kInFlight), 1u);
  EXPECT_EQ(cp.open(OpenStage::kUnlinked), 2u);
  EXPECT_EQ(cp.open_total(), 3u + 1u);
  EXPECT_EQ(cp.total().hist.count(), 0u);

  EXPECT_EQ(cp.decompose(q.trace).open, OpenStage::kQueued);
  EXPECT_EQ(cp.decompose(i.trace).open, OpenStage::kInFlight);
  EXPECT_EQ(cp.decompose(u1.trace).open, OpenStage::kUnlinked);
  EXPECT_EQ(cp.decompose(u2.trace).open, OpenStage::kUnlinked);
  // An unknown trace is simply "never got anywhere".
  const BlameBreakdown unknown = cp.decompose(123'456'789);
  EXPECT_FALSE(unknown.completed);
  EXPECT_EQ(unknown.open, OpenStage::kQueued);

  MetricsRegistry reg;
  cp.register_metrics(&reg);
  EXPECT_EQ(reg.cardinality("chains_open"), 3u);
  EXPECT_EQ(reg.value("chains_open{stage=queued}").value_or(99), 1u);
  EXPECT_EQ(reg.value("chains_open{stage=in_flight}").value_or(99), 1u);
  EXPECT_EQ(reg.value("chains_open{stage=unlinked}").value_or(99), 2u);
  EXPECT_EQ(reg.sum("chains_open"), 4u);
}

TEST(CriticalPath, BlameJsonCarriesSchemaStagesAndAccounting) {
  Tracer t(TracerParams{.enabled = true});
  const BatchSide bs = record_batch(t, 90, 95, 200, 120, 180, 130, 170, 1);
  record_update(t, 10, 40, 90, 200, bs.batch.span, 7);

  CriticalPath cp;
  cp.analyze(t);
  const std::string json = blame_json(cp, SimTime::millis(1));
  EXPECT_NE(json.find("\"schema\": \"redbud.blame.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"queueing\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"journal_fsync\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"service\""), std::string::npos);
  EXPECT_NE(json.find("\"roots\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"completed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"incidents\": []"), std::string::npos);
}

// --- Pinned small-testbed run: golden artifact + worker-count identity -----

ClusterParams traced_params(std::uint32_t nthreads) {
  ClusterParams p;
  p.nclients = 2;
  p.nthreads = nthreads;
  // Same partitioned window kernel for every worker count, so the blame
  // artifact is required to be bit-identical across {1, 2, 4}.
  p.force_partitioned = true;
  p.array.ndisks = 2;
  p.array.disk.total_blocks = 1 << 20;
  p.metadata_disk.total_blocks = 1 << 20;
  p.journal.region_blocks = 1 << 16;
  p.client.mode = client::CommitMode::kDelayed;
  p.client.chunk_blocks = 1024;
  p.obs.tracing.enabled = true;
  p.obs.sampling.interval = SimTime::millis(5);
  return p;
}

Process churn(Cluster& cl, std::uint32_t h) {
  auto& fs = cl.client(h);
  auto cfut = fs.create(net::kRootDir, "f" + std::to_string(h));
  const net::FileId id = co_await cfut;
  EXPECT_NE(id, net::kInvalidFile);
  if (id == net::kInvalidFile) co_return;
  for (int i = 0; i < 6; ++i) {
    auto wfut = fs.write(id, std::uint64_t(i) * 8192, 4096);
    (void)co_await wfut;
    co_await cl.client_sim(h).delay(SimTime::millis(3));
  }
  auto ffut = fs.fsync(id);
  (void)co_await ffut;
}

// Run the pinned workload and return the latency_blame.json artifact.
std::string traced_blame(std::uint32_t nthreads) {
  Cluster c(traced_params(nthreads));
  // A deliberately touchy commit-stall detector so the pinned run also
  // exercises the incident branch of the artifact, deterministically.
  DetectorParams dp;
  dp.kind = IncidentKind::kCommitStall;
  dp.series = "commit_queue.oldest_enqueued_us";
  dp.threshold = 1'000.0;  // 1 ms queue age
  dp.breach_ticks = 2;
  dp.clear_ticks = 2;
  c.obs().watchdog.arm(dp);
  c.start();
  auto r0 = c.client_sim(0).spawn(churn(c, 0));
  auto r1 = c.client_sim(1).spawn(churn(c, 1));
  c.run_until(SimTime::seconds(2));
  c.check_failures();
  EXPECT_TRUE(r0.done() && r1.done()) << "workload did not finish";

  CriticalPath cp;
  cp.analyze(c.obs().tracer);
  EXPECT_GT(cp.completed(), 0u);
  EXPECT_EQ(cp.roots(), cp.completed() + cp.open_total());
  return blame_json(cp, c.now(), &c.obs().watchdog);
}

TEST(BlameGolden, SmallTestbedRun) {
  const std::string json = traced_blame(1);
  const std::string golden_path =
      std::string(REDBUD_TEST_SRC_DIR) + "/obs/golden/blame_small.json";
  if (std::getenv("REDBUD_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::trunc);
    out << json;
    ASSERT_TRUE(bool(out)) << "failed to regenerate " << golden_path;
    return;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.is_open()) << "missing golden file " << golden_path;
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(json, buf.str())
      << "latency_blame.json drifted from the golden file; regenerate with "
         "REDBUD_REGEN_GOLDEN=1 if the change is intentional.";
}

TEST(BlameGolden, ArtifactIsBitIdenticalAcrossWorkerCounts) {
  const std::string one = traced_blame(1);
  EXPECT_NE(one.find("\"schema\": \"redbud.blame.v1\""), std::string::npos);
  EXPECT_EQ(one, traced_blame(2)) << "blame artifact differs at nthreads=2";
  EXPECT_EQ(one, traced_blame(4)) << "blame artifact differs at nthreads=4";
}

}  // namespace
}  // namespace redbud::obs
