// Tests for the time-series telemetry plane: the kernel probe's
// off-event grid semantics, the sampler ring, channel freezing and
// name-based re-resolution, sampled-series determinism across worker
// counts, the KernelProfile's accounting invariants, and a golden-file
// check of the Perfetto counter-track export.
//
// Regenerate the golden file after an intentional export-format change:
//   REDBUD_REGEN_GOLDEN=1 ./build/tests/redbud_tests
//       --gtest_filter=TimeSeriesExport.PerfettoCounterGoldenFile
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/obs.hpp"
#include "obs/timeseries.hpp"
#include "sim/parallel.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"

namespace redbud::obs {
namespace {

using redbud::sim::Counter;
using redbud::sim::Gauge;
using redbud::sim::KernelProfile;
using redbud::sim::SimDomain;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

constexpr SimTime kLookahead = SimTime::micros(40);

// --- Serial probe: grid semantics ----------------------------------------

struct ProbeLog {
  Simulation* sim = nullptr;
  // (tag, instant-or-event time ns, now() ns when it ran)
  std::vector<std::array<std::int64_t, 3>> entries;

  static void thunk(void* ctx, SimTime instant) {
    auto* self = static_cast<ProbeLog*>(ctx);
    self->entries.push_back({0, instant.ns(), self->sim->now().ns()});
  }
  void event(std::int64_t at_ns) { entries.push_back({1, at_ns, at_ns}); }
};

TEST(KernelProbe, FiresAtExactGridInstantsBeforeCrossingEvents) {
  Simulation sim;
  ProbeLog log;
  log.sim = &sim;
  sim.set_probe(SimTime::micros(10), SimTime::micros(10), &log,
                &ProbeLog::thunk);
  for (const std::int64_t us : {5, 25, 40, 104}) {
    sim.call_at(SimTime::micros(us), [&log, us] { log.event(us * 1000); });
  }
  sim.run_until(SimTime::micros(120));

  // Probes fired at every exact grid instant up to the horizon, and the
  // clock had NOT yet reached the instant when each one ran (t_k^-).
  std::vector<std::int64_t> probe_instants;
  for (const auto& e : log.entries) {
    if (e[0] == 0) {
      probe_instants.push_back(e[1]);
      EXPECT_LT(e[2], e[1]) << "probe must run before the clock crosses it";
    }
  }
  std::vector<std::int64_t> want;
  for (std::int64_t us = 10; us <= 120; us += 10) want.push_back(us * 1000);
  EXPECT_EQ(probe_instants, want);

  // An event AT a grid instant runs after that instant's probe: the probe
  // at 40us precedes the event at 40us in the log.
  std::size_t probe40 = 0, event40 = 0;
  for (std::size_t i = 0; i < log.entries.size(); ++i) {
    if (log.entries[i] == std::array<std::int64_t, 3>{0, 40000, 25000}) {
      probe40 = i;
    }
    if (log.entries[i][0] == 1 && log.entries[i][1] == 40000) event40 = i;
  }
  EXPECT_LT(probe40, event40);
  EXPECT_EQ(sim.now(), SimTime::micros(120));
}

// --- Serial probe: sampling cannot perturb the event stream --------------

std::uint64_t churn_digest(bool with_sampler, std::uint64_t* samples_out) {
  Simulation sim;
  MetricsRegistry reg;
  Counter ops;
  reg.register_counter("churn.ops", {}, &ops);
  TimeSeriesSampler sampler(SamplerParams{SimTime::micros(15), 4096});
  sampler.bind(&reg);
  if (with_sampler) {
    sim.set_probe(sampler.interval(), sampler.interval(), &sampler,
                  &TimeSeriesSampler::probe_thunk);
  }

  std::uint64_t digest = 1469598103934665603ull;
  const auto fold = [&digest](std::uint64_t v) {
    digest = (digest ^ v) * 1099511628211ull;
  };
  // Two interleaved timer chains with colliding timestamps; every event
  // folds (now, tag) into the digest, so any sampling-induced reordering
  // or extra event would change it.
  struct Chain {
    Simulation* sim;
    Counter* ops;
    decltype(fold)* h;
    void arm(std::uint64_t tag, std::uint64_t k, SimTime period) {
      sim->call_in(period, [this, tag, k, period] {
        ops->add();
        (*h)(std::uint64_t(sim->now().ns()) << 8 ^ tag ^ k);
        if (k < 300) arm(tag, k + 1, period);
      });
    }
  };
  Chain c{&sim, &ops, &fold};
  c.arm(1, 0, SimTime::micros(7));
  c.arm(2, 0, SimTime::micros(35));
  sim.run_until(SimTime::millis(5));
  fold(sim.events_processed());
  if (samples_out != nullptr) *samples_out = sampler.samples_taken();
  return digest;
}

TEST(KernelProbe, SamplingOnVsOffEventStreamDigestIdentical) {
  std::uint64_t samples = 0;
  const std::uint64_t with = churn_digest(true, &samples);
  const std::uint64_t without = churn_digest(false, nullptr);
  EXPECT_EQ(with, without)
      << "off-event sampling must not change the event stream";
  EXPECT_GT(samples, 0u) << "the sampler must actually have run";
}

// --- Sampler: ring wrap and channel freezing -----------------------------

TEST(TimeSeriesSampler, RingKeepsNewestAndCountsDropped) {
  MetricsRegistry reg;
  Counter c;
  reg.register_counter("a", {}, &c);
  TimeSeriesSampler sampler(SamplerParams{SimTime::millis(1), 4});
  sampler.bind(&reg);
  for (int i = 1; i <= 10; ++i) {
    c.add();
    sampler.sample(SimTime::millis(i));
  }
  EXPECT_EQ(sampler.samples_taken(), 10u);
  EXPECT_EQ(sampler.retained(), 4u);
  EXPECT_EQ(sampler.samples_dropped(), 6u);
  const auto instants = sampler.instants();
  ASSERT_EQ(instants.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(instants[i], SimTime::millis(7 + i)) << "oldest -> newest";
  }
  const auto series = sampler.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].values, (std::vector<double>{7, 8, 9, 10}));
}

TEST(TimeSeriesSampler, ChannelSetFreezesButNamesReResolve) {
  MetricsRegistry reg;
  Counter first;
  first.add(1);
  reg.register_counter("a", {}, &first);
  TimeSeriesSampler sampler(SamplerParams{SimTime::millis(1), 16});
  sampler.bind(&reg);
  sampler.sample(SimTime::millis(1));
  EXPECT_EQ(sampler.channel_count(), 1u);

  // Registered after the first sample: ignored (columns stay rectangular).
  Counter late;
  reg.register_counter("b", {}, &late);
  sampler.sample(SimTime::millis(2));
  EXPECT_EQ(sampler.channel_count(), 1u);

  // Re-registering the same canonical name (rebuild/failover, via the
  // unregister escape — duplicates are refused) transparently feeds the
  // same column.
  Counter rebuilt;
  rebuilt.add(42);
  reg.unregister("a");
  reg.register_counter("a", {}, &rebuilt);
  sampler.sample(SimTime::millis(3));
  const auto series = sampler.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].name, "a");
  EXPECT_EQ(series[0].values, (std::vector<double>{1, 1, 42}));
}

// --- Parallel domain: sampled series are worker-count invariant ----------

// Four partitions with cross-partition traffic; each partition bumps its
// own counter per executed event and tracks its in-flight chain depth in
// a gauge. The sampler rides the domain probe.
struct DomainHarness {
  static constexpr std::uint32_t kParts = 4;

  explicit DomainHarness(unsigned nthreads, SimTime interval)
      : domain(nthreads, kLookahead, /*force_partitioned=*/true),
        sampler(SamplerParams{interval, 8192}) {
    for (std::uint32_t p = 0; p < kParts; ++p) {
      sims[p] = &domain.add_partition();
      registry.register_counter("part.events",
                                {{"part", std::to_string(p)}}, &events[p]);
      registry.register_gauge("part.depth", {{"part", std::to_string(p)}},
                              &depth[p]);
    }
    sampler.bind(&registry);
    domain.set_probe(interval, interval, &sampler,
                     &TimeSeriesSampler::probe_thunk);
  }

  void start() {
    for (std::uint32_t p = 0; p < kParts; ++p) {
      chain(p, 0);
      relay(p, 0);
    }
  }

  void chain(std::uint32_t p, std::uint64_t k) {
    sims[p]->call_in(SimTime::micros(9 + p), [this, p, k] {
      events[p].add();
      depth[p].set(sims[p]->now(), double(k % 7));
      if (k < 250) chain(p, k + 1);
    });
  }

  void relay(std::uint32_t p, std::uint64_t k) {
    const std::uint32_t dst = (p + 1) % kParts;
    const SimTime at = sims[p]->now() + kLookahead + SimTime::micros(11);
    domain.post(*sims[p], dst, at, [this, dst, k] {
      events[dst].add();
      if (k < 120) relay(dst, k + 1);
    });
  }

  SimDomain domain;
  MetricsRegistry registry;
  TimeSeriesSampler sampler;
  std::array<Simulation*, kParts> sims{};
  std::array<Counter, kParts> events;
  std::array<Gauge, kParts> depth;
};

std::string run_sampled(unsigned nthreads) {
  DomainHarness h(nthreads, SimTime::micros(100));
  h.start();
  h.domain.run_until(SimTime::millis(10));
  EXPECT_GT(h.sampler.samples_taken(), 0u);
  return timeseries_json(h.sampler);
}

TEST(ParallelTimeSeries, SampledSeriesIdenticalAcrossWorkerCounts) {
  const std::string t1 = run_sampled(1);
  const std::string t2 = run_sampled(2);
  const std::string t4 = run_sampled(4);
  EXPECT_EQ(t1, t2) << "sampled series must not depend on the worker count";
  EXPECT_EQ(t2, t4) << "sampled series must not depend on the worker count";
  EXPECT_EQ(t2, run_sampled(2)) << "same worker count must replay identically";
}

// --- KernelProfile: accounting invariants --------------------------------

TEST(ParallelKernelProfile, EventsConserveAndTimeSplitsIntoBusyAndStall) {
  DomainHarness h(2, SimTime::micros(100));
  h.start();
  h.domain.run_until(SimTime::millis(10));

  const KernelProfile prof = h.domain.kernel_profile();
  ASSERT_EQ(prof.partitions.size(), DomainHarness::kParts);
  ASSERT_EQ(prof.workers.size(), 2u);
  EXPECT_GT(prof.rounds, 0u);
  EXPECT_GT(prof.wall_ns, 0u);
  EXPECT_GT(prof.busy_ns_total(), 0u);

  // Every executed event is attributed to exactly one partition.
  std::uint64_t events = 0;
  for (std::uint32_t p = 0; p < DomainHarness::kParts; ++p) {
    EXPECT_EQ(prof.partitions[p].events, h.sims[p]->events_processed());
    events += prof.partitions[p].events;
  }
  EXPECT_EQ(events, prof.events_total());
  EXPECT_GT(events, 0u);
  EXPECT_GE(prof.max_partition_events(), events / DomainHarness::kParts);

  // Per worker, window execution and barrier stalls are disjoint slices
  // of the domain's run loop, so their sum cannot exceed the wall clock.
  for (const KernelProfile::Worker& w : prof.workers) {
    EXPECT_LE(w.busy_ns + w.stall_ns, prof.wall_ns);
  }

  // The domain went quiescent, so every staged injection was delivered.
  EXPECT_GT(prof.injections_staged, 0u);
  EXPECT_EQ(prof.injections_staged, prof.injections_delivered);
}

TEST(ParallelKernelProfile, SerialDomainReportsWallAsWorkerZeroBusy) {
  SimDomain d(1, kLookahead);
  Simulation& s = d.add_partition();
  int fired = 0;
  for (int i = 1; i <= 64; ++i) {
    s.call_at(SimTime::micros(i * 3), [&fired] { ++fired; });
  }
  d.run_until(SimTime::millis(1));
  EXPECT_EQ(fired, 64);

  const KernelProfile prof = d.kernel_profile();
  ASSERT_EQ(prof.partitions.size(), 1u);
  ASSERT_EQ(prof.workers.size(), 1u);
  EXPECT_EQ(prof.partitions[0].events, s.events_processed());
  EXPECT_EQ(prof.workers[0].busy_ns, prof.wall_ns);
  EXPECT_EQ(prof.workers[0].stall_ns, 0u);
  EXPECT_EQ(prof.rounds, 0u) << "the serial path runs no barrier rounds";
}

// --- Perfetto counter-track export (golden file) -------------------------

TEST(TimeSeriesExport, PerfettoCounterGoldenFile) {
  Obs obs(ObsParams{TracerParams{}, SamplerParams{SimTime::millis(1), 8}});
  Counter rpcs;
  Gauge queue;
  obs.registry.register_counter("mds.rpcs", {{"shard", "0"}}, &rpcs);
  obs.registry.register_gauge("queue.depth", {}, &queue);
  for (int i = 1; i <= 3; ++i) {
    rpcs.add(10);
    queue.set(SimTime::millis(i), i * 1.5);
    obs.sampler.sample(SimTime::millis(i));
  }
  const std::string json = perfetto_json(obs.tracer, &obs.sampler);

  const std::string golden_path =
      std::string(REDBUD_TEST_SRC_DIR) + "/obs/golden/perfetto_counters.json";
  if (std::getenv("REDBUD_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::trunc);
    out << json;
    ASSERT_TRUE(bool(out)) << "failed to regenerate " << golden_path;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.is_open()) << "missing golden file " << golden_path;
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(json, buf.str())
      << "Perfetto counter export drifted from the golden file; regenerate "
         "with REDBUD_REGEN_GOLDEN=1 if the change is intentional.";
}

}  // namespace
}  // namespace redbud::obs
