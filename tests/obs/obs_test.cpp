// Tests for the observability layer: span propagation across an RPC
// round-trip, dedup-merge span linking in the commit queue, registry
// label cardinality, chain reconstruction, and a golden-file check of
// the Perfetto export.
//
// Regenerate the golden file after an intentional export-format change:
//   REDBUD_REGEN_GOLDEN=1 ./build/tests/redbud_tests
//       --gtest_filter=ObsExport.PerfettoGoldenFile
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "client/commit_queue.hpp"
#include "net/rpc.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"

namespace redbud::obs {
namespace {

using redbud::sim::Done;
using redbud::sim::Process;
using redbud::sim::SimFuture;
using redbud::sim::SimPromise;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

struct TracedObs : Obs {
  TracedObs() : Obs(ObsParams{TracerParams{true, 1u << 20}}) {}
};

// --- Tracer basics -------------------------------------------------------

TEST(Tracer, DisabledMintsInertContextsAndRecordsNothing) {
  Obs obs;  // default params: tracing off
  auto ctx = obs.tracer.mint();
  EXPECT_FALSE(ctx.active());
  obs.tracer.record(Stage::kClientWrite, ctx, 0, {100, 1}, SimTime::zero(),
                    SimTime::micros(5));
  EXPECT_TRUE(obs.tracer.spans().empty());
}

TEST(Tracer, ChildSharesTraceWithFreshSpan) {
  TracedObs obs;
  auto root = obs.tracer.mint();
  auto kid = obs.tracer.child(root);
  EXPECT_TRUE(root.active());
  EXPECT_EQ(kid.trace, root.trace);
  EXPECT_NE(kid.span, root.span);
}

// --- RPC round-trip propagation ------------------------------------------

struct RpcRig {
  Simulation sim;
  net::Network netw;
  net::NodeId client_node, server_node;
  net::RpcEndpoint client, server;
  TracedObs obs;

  RpcRig()
      : netw(sim, net::NetworkParams{}),
        client_node(netw.add_node()),
        server_node(netw.add_node()),
        client(sim, netw, client_node),
        server(sim, netw, server_node) {
    client.set_obs(&obs, {client_track(0), 4}, {{"client", "0"}});
    server.set_obs(&obs, {shard_track(0), 1}, {{"shard", "0"}});
  }
};

TEST(RpcTracing, ContextCrossesTheWireAndWireSpanIsRecorded) {
  RpcRig rig;
  const auto root = rig.obs.tracer.mint();
  TraceContext seen_at_server;
  rig.sim.spawn([](Simulation& s, RpcRig& r,
                   TraceContext& out) -> Process {
    net::IncomingRpc rpc = co_await r.server.incoming().recv();
    out = rpc.ctx;
    co_await s.delay(SimTime::micros(50));
    r.server.reply(rpc, net::StatResp{});
  }(rig.sim, rig, seen_at_server));
  rig.sim.spawn([](Simulation&, RpcRig& r, TraceContext root) -> Process {
    auto fut = r.client.call(r.server, net::StatReq{7}, root);
    (void)co_await fut;
  }(rig.sim, rig, root));
  rig.sim.run_until(SimTime::seconds(1));

  // The server saw the same trace on a fresh (wire) span.
  EXPECT_TRUE(seen_at_server.active());
  EXPECT_EQ(seen_at_server.trace, root.trace);
  EXPECT_NE(seen_at_server.span, root.span);

  // The client recorded the wire span, parented on the caller's span.
  ASSERT_EQ(rig.obs.tracer.spans().size(), 1u);
  const SpanRecord& s = rig.obs.tracer.spans()[0];
  EXPECT_EQ(s.stage, Stage::kRpcWire);
  EXPECT_EQ(s.trace, root.trace);
  EXPECT_EQ(s.span, seen_at_server.span);
  EXPECT_EQ(s.parent, root.span);
  EXPECT_GT(s.end, s.start);
}

TEST(RpcTracing, UntracedCallStaysUntraced) {
  RpcRig rig;
  bool server_saw_inert = false;
  rig.sim.spawn([](Simulation&, RpcRig& r, bool& out) -> Process {
    net::IncomingRpc rpc = co_await r.server.incoming().recv();
    out = !rpc.ctx.active();
    r.server.reply(rpc, net::StatResp{});
  }(rig.sim, rig, server_saw_inert));
  rig.sim.spawn([](Simulation&, RpcRig& r) -> Process {
    auto fut = r.client.call(r.server, net::StatReq{1});
    (void)co_await fut;
  }(rig.sim, rig));
  rig.sim.run_until(SimTime::seconds(1));
  EXPECT_TRUE(server_saw_inert);
  EXPECT_TRUE(rig.obs.tracer.spans().empty());
}

// --- Dedup-merge linking in the commit queue -----------------------------

struct QueueRig {
  Simulation sim;
  client::CommitQueue q{sim};
  TracedObs obs;

  QueueRig() { q.set_obs(&obs, 0); }

  SimPromise<Done> add(net::FileId file, std::uint64_t fb, TraceContext ctx) {
    SimPromise<Done> data(sim);
    std::vector<SimFuture<Done>> futs{data.future()};
    q.add(file, {net::Extent{fb, 1, {0, 100 + fb}}},
          std::vector<storage::ContentToken>(1, 7), storage::kBlockSize,
          std::move(futs), ctx);
    return data;
  }
};

TEST(QueueTracing, DedupMergedUpdatesEachKeepTheirChain) {
  QueueRig rig;
  const auto c1 = rig.obs.tracer.mint();
  const auto c2 = rig.obs.tracer.mint();
  auto d1 = rig.add(1, 0, c1);
  auto d2 = rig.add(1, 4, c2);  // merges into file 1's queued task
  EXPECT_EQ(rig.q.merged_total(), 1u);
  d1.set_value(Done{});
  d2.set_value(Done{});

  auto batch = rig.q.checkout(10);
  ASSERT_EQ(batch.size(), 1u);
  ASSERT_EQ(batch[0].traces.size(), 2u);

  // One queue-wait span per merged update, each on its own trace and
  // parented on its own originating op span.
  ASSERT_EQ(rig.obs.tracer.spans().size(), 2u);
  const auto& w1 = rig.obs.tracer.spans()[0];
  const auto& w2 = rig.obs.tracer.spans()[1];
  EXPECT_EQ(w1.stage, Stage::kQueueWait);
  EXPECT_EQ(w2.stage, Stage::kQueueWait);
  EXPECT_EQ(w1.trace, c1.trace);
  EXPECT_EQ(w2.trace, c2.trace);
  EXPECT_EQ(w1.parent, c1.span);
  EXPECT_EQ(w2.parent, c2.span);

  // Ack with a batch span: both end-to-end spans link to it via arg1.
  rig.q.ack(batch[0], /*batch_span=*/777);
  ASSERT_EQ(rig.obs.tracer.spans().size(), 4u);
  const auto& e1 = rig.obs.tracer.spans()[2];
  const auto& e2 = rig.obs.tracer.spans()[3];
  EXPECT_EQ(e1.stage, Stage::kCommitE2e);
  EXPECT_EQ(e2.stage, Stage::kCommitE2e);
  EXPECT_EQ(e1.trace, c1.trace);
  EXPECT_EQ(e2.trace, c2.trace);
  EXPECT_EQ(e1.arg1, 777u);
  EXPECT_EQ(e2.arg1, 777u);
}

TEST(QueueTracing, UntracedUpdatesCarryNoLinks) {
  QueueRig rig;
  auto d = rig.add(1, 0, {});
  d.set_value(Done{});
  auto batch = rig.q.checkout(10);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(batch[0].traces.empty());
  rig.q.ack(batch[0]);
  EXPECT_TRUE(rig.obs.tracer.spans().empty());
}

// --- Registry ------------------------------------------------------------

TEST(Registry, CanonicalNameSortsLabels) {
  EXPECT_EQ(canonical_metric_name("rpc.calls", {{"shard", "2"}, {"client", "0"}}),
            "rpc.calls{client=0,shard=2}");
  EXPECT_EQ(canonical_metric_name("mds.ops", {}), "mds.ops");
}

TEST(Registry, CardinalityCountsLabelSetsAndSumAggregates) {
  MetricsRegistry reg;
  std::uint64_t a = 3, b = 4, other = 9;
  reg.register_value("commit_queue.enqueued", {{"client", "0"}}, &a);
  reg.register_value("commit_queue.enqueued", {{"client", "1"}}, &b);
  reg.register_value("mds.ops", {{"shard", "0"}}, &other);
  EXPECT_EQ(reg.cardinality("commit_queue.enqueued"), 2u);
  EXPECT_EQ(reg.cardinality("mds.ops"), 1u);
  EXPECT_EQ(reg.cardinality("nope"), 0u);
  EXPECT_EQ(reg.sum("commit_queue.enqueued"), 7u);
  EXPECT_EQ(reg.value("commit_queue.enqueued{client=1}"), 4u);
  EXPECT_FALSE(reg.value("commit_queue.enqueued").has_value());
}

TEST(Registry, DuplicateRegistrationIsRefused) {
  // A silent replace used to shadow one component's view in every export;
  // a duplicate identity now trips REDBUD_REQUIRE across all kind maps.
  MetricsRegistry reg;
  std::uint64_t first = 1, rebuilt = 100;
  redbud::sim::LatencyHistogram h;
  reg.register_value("mds.ops", {{"shard", "0"}}, &first);
  EXPECT_DEATH(reg.register_value("mds.ops", {{"shard", "0"}}, &rebuilt),
               "duplicate metric registration");
  // Cross-kind duplicates are refused too: counters and values share one
  // JSON object in the export.
  EXPECT_DEATH(reg.register_histogram("mds.ops", {{"shard", "0"}}, &h),
               "duplicate metric registration");
}

TEST(Registry, UnregisterIsTheSanctionedRebuildPath) {
  MetricsRegistry reg;
  std::uint64_t first = 1, rebuilt = 100;
  reg.register_value("mds.ops", {{"shard", "0"}}, &first);
  reg.unregister("mds.ops{shard=0}");
  EXPECT_EQ(reg.cardinality("mds.ops"), 0u);
  reg.register_value("mds.ops", {{"shard", "0"}}, &rebuilt);
  EXPECT_EQ(reg.cardinality("mds.ops"), 1u);
  EXPECT_EQ(reg.value("mds.ops{shard=0}"), 100u);
  // Unregistering an unknown identity is a harmless no-op.
  reg.unregister("nope{x=1}");
}

// --- Chain reconstruction ------------------------------------------------

TEST(Chain, HandBuiltPipelineReconstructsUnbroken) {
  TracedObs obs;
  auto& t = obs.tracer;
  const auto op = t.mint();
  t.record(Stage::kClientWrite, op, 0, {client_track(0), 1},
           SimTime::micros(10), SimTime::micros(40), /*file=*/7);
  const auto qw = t.child(op);
  t.record(Stage::kQueueWait, qw, op.span, {client_track(0), 2},
           SimTime::micros(40), SimTime::micros(90), 7);
  const auto batch = t.mint();  // fresh trace for the shard-level batch
  t.record(Stage::kCheckoutBatch, batch, 0, {client_track(0), 3},
           SimTime::micros(90), SimTime::micros(90), /*size=*/1, /*shard=*/0);
  const auto wire = t.child(batch);
  t.record(Stage::kRpcWire, wire, batch.span, {client_track(0), 4},
           SimTime::micros(90), SimTime::micros(200));
  const auto mds = t.child(wire);
  t.record(Stage::kMdsHandle, mds, wire.span, {shard_track(0), 1},
           SimTime::micros(120), SimTime::micros(180));
  const auto jr = t.child(mds);
  t.record(Stage::kJournalFsync, jr, mds.span, {shard_track(0), 2},
           SimTime::micros(130), SimTime::micros(170), 4096);
  const auto e2e = t.child(op);
  t.record(Stage::kCommitE2e, e2e, op.span, {client_track(0), 2},
           SimTime::micros(40), SimTime::micros(200), 7, batch.span);

  EXPECT_TRUE(chain_unbroken(t, op.trace));
  const auto chain = reconstruct_chain(t, op.trace);
  ASSERT_EQ(chain.size(), 7u);
  EXPECT_EQ(chain[0], Stage::kClientWrite);
  EXPECT_EQ(chain[1], Stage::kQueueWait);
  EXPECT_EQ(chain.back(), Stage::kCommitE2e);

  // Sever the journal link: the chain must report broken.
  TracedObs partial;
  partial.tracer.record(Stage::kClientWrite, partial.tracer.mint(), 0,
                        {client_track(0), 1}, SimTime::micros(1),
                        SimTime::micros(2));
  EXPECT_FALSE(chain_unbroken(partial.tracer, 1));
}

// --- Golden-file Perfetto export -----------------------------------------

TEST(ObsExport, PerfettoGoldenFile) {
  TracedObs obs;
  auto& t = obs.tracer;
  t.name_track({client_track(0), 1}, "client 0", "fs ops");
  t.name_track({client_track(0), 2}, "client 0", "commit queue");
  t.name_track({shard_track(0), 1}, "mds shard 0", "mds daemons");

  const auto op = t.mint();
  t.record(Stage::kClientWrite, op, 0, {client_track(0), 1},
           SimTime::micros(10), SimTime::micros(250), 7);
  const auto qw = t.child(op);
  t.record(Stage::kQueueWait, qw, op.span, {client_track(0), 2},
           SimTime::micros(250), SimTime::nanos(1'312'500), 7);
  const auto mds = t.mint();
  t.record(Stage::kMdsHandle, mds, 0, {shard_track(0), 1},
           SimTime::micros(400), SimTime::micros(900), 3, 1);

  const std::string json = perfetto_json(t);
  const std::string golden_path =
      std::string(REDBUD_TEST_SRC_DIR) + "/obs/golden/perfetto_small.json";
  if (std::getenv("REDBUD_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::trunc);
    out << json;
    ASSERT_TRUE(bool(out)) << "failed to regenerate " << golden_path;
    return;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.is_open()) << "missing golden file " << golden_path;
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(json, buf.str())
      << "Perfetto export drifted from the golden file; regenerate with "
         "REDBUD_REGEN_GOLDEN=1 if the change is intentional.";
}

TEST(ObsExport, MetricsJsonHasSchemaAndStages) {
  TracedObs obs;
  std::uint64_t v = 5;
  obs.registry.register_value("mds.ops", {{"shard", "0"}}, &v);
  obs.tracer.observe(Stage::kJournalFsync, 0, SimTime::micros(100));
  const std::string json = metrics_json(obs, SimTime::seconds(1));
  EXPECT_NE(json.find("\"schema\": \"redbud.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("mds.ops{shard=0}"), std::string::npos);
  EXPECT_NE(json.find("journal_fsync"), std::string::npos);
}

}  // namespace
}  // namespace redbud::obs
