// Flyweight-equivalence replay digests.
//
// The flyweight client refactor (shared personality tables, pooled page
// frames, commit-slab recycling, host-multiplexed sessions) must not move
// a single event of the existing small-N closed-loop configurations. This
// suite pins that contract two ways:
//
//  1. Golden digests: a scripted fig3/fig4-style closed-loop churn over a
//     small cluster folds every op completion instant, every read-back
//     token and the final kernel event count into one FNV-1a digest. The
//     golden values below were captured from the pre-refactor client path
//     (PR 5 tree) and must never change — a digest drift means the
//     refactor perturbed event order, not just internals.
//
//  2. Path equivalence: the same scripted churn driven through the
//     flyweight ClientHost session layer must reproduce the classic
//     per-client path's digest exactly — the host adapter may not inject,
//     reorder or absorb events.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "client/flyweight.hpp"
#include "core/cluster.hpp"
#include "sim/random.hpp"

namespace redbud::client {
namespace {

using core::Cluster;
using core::ClusterParams;
using net::Status;
using redbud::sim::Process;
using redbud::sim::Rng;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

ClusterParams replay_cluster(CommitMode mode, std::uint32_t nshards) {
  ClusterParams p;
  p.nclients = 3;
  p.nshards = nshards;
  p.array.ndisks = 2;
  p.array.disk.total_blocks = 1 << 20;
  p.metadata_disk.total_blocks = 1 << 20;
  p.journal.region_blocks = 1 << 16;
  p.client.mode = mode;
  p.client.chunk_blocks = 1024;
  p.client.cache_pages = 512;
  return p;
}

// Scripted closed-loop churn: create / write / append / read / fsync /
// remove with a private deterministic RNG stream. Every completion
// instant and every read-back token folds into the per-client log.
Process churn(Simulation& sim, fsapi::FsClient& fs, std::uint32_t client_id,
              std::vector<std::uint64_t>* log) {
  Rng rng(9100 + client_id);
  co_await sim.delay(SimTime::micros(137 * client_id));
  std::vector<net::FileId> files;
  std::vector<std::uint32_t> sizes;
  std::vector<std::uint8_t> live;
  // Random live file, or -1 when none; bounded probing, linear fallback.
  const auto pick = [&]() -> int {
    for (int tries = 0; tries < 8; ++tries) {
      const auto k = rng.next_below(files.size());
      if (live[k]) return static_cast<int>(k);
    }
    for (std::size_t k = 0; k < files.size(); ++k) {
      if (live[k]) return static_cast<int>(k);
    }
    return -1;
  };
  for (int i = 0; i < 40; ++i) {
    const std::string name =
        "c" + std::to_string(client_id) + "_f" + std::to_string(i);
    auto cfut = fs.create(net::kRootDir, name);
    const net::FileId id = co_await cfut;
    EXPECT_NE(id, net::kInvalidFile);
    if (id == net::kInvalidFile) co_return;
    log->push_back(static_cast<std::uint64_t>(sim.now().ns()));
    const auto nbytes =
        static_cast<std::uint32_t>(4096 + rng.next_below(8) * 4096);
    auto wfut = fs.write(id, 0, nbytes);
    EXPECT_EQ(co_await wfut, Status::kOk);
    log->push_back(static_cast<std::uint64_t>(sim.now().ns()));
    files.push_back(id);
    sizes.push_back(nbytes);
    live.push_back(1);
    // Append to a random live file.
    if (i % 2 == 0) {
      if (const int k = pick(); k >= 0) {
        auto afut = fs.write(files[k], sizes[k], 4096);
        EXPECT_EQ(co_await afut, Status::kOk);
        sizes[k] += 4096;
        log->push_back(static_cast<std::uint64_t>(sim.now().ns()));
      }
    }
    // Read a random live file back and fold the tokens.
    if (i % 3 == 0) {
      if (const int k = pick(); k >= 0) {
        auto rfut = fs.read(files[k], 0, sizes[k]);
        fsapi::ReadResult rr = co_await rfut;
        EXPECT_EQ(rr.status, Status::kOk);
        log->push_back(static_cast<std::uint64_t>(sim.now().ns()));
        for (const auto tok : rr.tokens) log->push_back(tok);
      }
    }
    if (i % 4 == 0) {
      auto sfut = fs.fsync(files.back());
      EXPECT_EQ(co_await sfut, Status::kOk);
      log->push_back(static_cast<std::uint64_t>(sim.now().ns()));
    }
    if (i % 8 == 5) {
      const std::size_t victim = static_cast<std::size_t>(i) - 1;
      live[victim] = 0;
      const std::string name_v =
          "c" + std::to_string(client_id) + "_f" + std::to_string(i - 1);
      auto dfut = fs.remove(net::kRootDir, name_v);
      EXPECT_EQ(co_await dfut, Status::kOk);
      log->push_back(static_cast<std::uint64_t>(sim.now().ns()));
    }
    co_await sim.delay(SimTime::micros(200 + rng.next_below(1800)));
  }
}

// Issue the scripted churn against `sessions[i]` and digest the run.
std::uint64_t run_replay(Cluster& c,
                         const std::vector<fsapi::FsClient*>& sessions) {
  c.start();
  std::vector<std::vector<std::uint64_t>> logs(sessions.size());
  std::vector<redbud::sim::ProcRef> refs;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    refs.push_back(c.sim().spawn(churn(c.sim(), *sessions[i],
                                       static_cast<std::uint32_t>(i),
                                       &logs[i])));
  }
  c.sim().run_until(c.sim().now() + SimTime::seconds(60));
  c.check_failures();
  for (const auto& r : refs) EXPECT_TRUE(r.done()) << "churn did not finish";

  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& log : logs) {
    for (const auto v : log) h = fnv_mix(h, v);
  }
  for (std::uint32_t s = 0; s < c.nshards(); ++s) {
    h = fnv_mix(h, c.mds(s).commit_entries_processed());
  }
  h = fnv_mix(h, c.events_processed());
  return h;
}

std::uint64_t classic_digest(CommitMode mode, std::uint32_t nshards) {
  Cluster c(replay_cluster(mode, nshards));
  std::vector<fsapi::FsClient*> sessions;
  for (std::size_t i = 0; i < c.nclients(); ++i) {
    sessions.push_back(&c.client(i));
  }
  return run_replay(c, sessions);
}

// Same cluster, but every client engine is wrapped in a ClientHost and
// driven through a flyweight session. The adapter must not inject,
// reorder or absorb a single event.
std::uint64_t flyweight_digest(CommitMode mode, std::uint32_t nshards) {
  Cluster c(replay_cluster(mode, nshards));
  std::vector<std::unique_ptr<ClientHost>> hosts;
  std::vector<fsapi::FsClient*> sessions;
  for (std::size_t i = 0; i < c.nclients(); ++i) {
    hosts.push_back(std::make_unique<ClientHost>(
        c.client(i), static_cast<std::uint32_t>(i),
        static_cast<std::uint32_t>(i)));
    sessions.push_back(&hosts.back()->open_session());
  }
  const std::uint64_t h = run_replay(c, sessions);
  for (auto& host : hosts) {
    EXPECT_EQ(host->live_sessions(), 1u);
    EXPECT_EQ(host->peak_sessions(), 1u);
  }
  return h;
}

// Golden digests captured from the pre-refactor client path. If one of
// these fails after a client-layer change, the change moved events in a
// configuration that is promised to stay byte-identical.
constexpr std::uint64_t kGoldenDelayed1 = 9721046874394807916ull;
constexpr std::uint64_t kGoldenSync1 = 8452552011070524616ull;
constexpr std::uint64_t kGoldenDelayed2 = 8869075037071246817ull;

TEST(FlyweightReplay, DelayedSingleShardMatchesPreRefactorGolden) {
  EXPECT_EQ(classic_digest(CommitMode::kDelayed, 1), kGoldenDelayed1);
}

TEST(FlyweightReplay, SyncSingleShardMatchesPreRefactorGolden) {
  EXPECT_EQ(classic_digest(CommitMode::kSync, 1), kGoldenSync1);
}

TEST(FlyweightReplay, DelayedTwoShardMatchesPreRefactorGolden) {
  EXPECT_EQ(classic_digest(CommitMode::kDelayed, 2), kGoldenDelayed2);
}

TEST(FlyweightReplay, HostSessionDelayedSingleShardMatchesGolden) {
  EXPECT_EQ(flyweight_digest(CommitMode::kDelayed, 1), kGoldenDelayed1);
}

TEST(FlyweightReplay, HostSessionSyncSingleShardMatchesGolden) {
  EXPECT_EQ(flyweight_digest(CommitMode::kSync, 1), kGoldenSync1);
}

TEST(FlyweightReplay, HostSessionDelayedTwoShardMatchesGolden) {
  EXPECT_EQ(flyweight_digest(CommitMode::kDelayed, 2), kGoldenDelayed2);
}

// Session slots recycle LIFO and keep ids stable within a host range.
TEST(FlyweightReplay, SessionRecycling) {
  Cluster c(replay_cluster(CommitMode::kDelayed, 1));
  ClientHost host(c.client(0), 0, 100);
  auto& a = host.open_session();
  auto& b = host.open_session();
  EXPECT_EQ(a.client_id(), 100u);
  EXPECT_EQ(b.client_id(), 101u);
  EXPECT_EQ(host.live_sessions(), 2u);
  host.close_session(a);
  EXPECT_FALSE(a.live());
  EXPECT_EQ(host.live_sessions(), 1u);
  auto& a2 = host.open_session();
  EXPECT_EQ(&a2, &a);  // LIFO slot reuse
  EXPECT_EQ(a2.client_id(), 100u);
  EXPECT_EQ(host.peak_sessions(), 2u);
  EXPECT_EQ(host.sessions_allocated(), 2u);
}

}  // namespace
}  // namespace redbud::client
