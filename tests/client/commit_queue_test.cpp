// Tests for the commit queue: per-file dedup, readiness (ordered writes),
// checkout, fsync waiters.
#include <gtest/gtest.h>

#include "client/commit_queue.hpp"

namespace redbud::client {
namespace {

using net::Extent;
using redbud::sim::Done;
using redbud::sim::Process;
using redbud::sim::SimFuture;
using redbud::sim::SimPromise;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

Extent ext(std::uint64_t fb, std::uint32_t n, std::uint64_t phys) {
  return Extent{fb, n, {0, phys}};
}

struct Rig {
  Simulation sim;
  CommitQueue q{sim};

  SimPromise<Done> add(net::FileId file, std::uint64_t fb = 0,
                       std::uint32_t n = 1) {
    SimPromise<Done> data(sim);
    std::vector<SimFuture<Done>> futs{data.future()};
    q.add(file, {ext(fb, n, 100 + fb)}, std::vector<storage::ContentToken>(n, 7),
          n * storage::kBlockSize, std::move(futs));
    return data;
  }
};

TEST(CommitQueue, AddCreatesOneEntryPerFile) {
  Rig rig;
  auto d1 = rig.add(1);
  auto d2 = rig.add(2);
  EXPECT_EQ(rig.q.size(), 2u);
  EXPECT_EQ(rig.q.enqueued_total(), 2u);
  EXPECT_EQ(rig.q.merged_total(), 0u);
}

TEST(CommitQueue, SameFileMerges) {
  Rig rig;
  auto d1 = rig.add(1, 0);
  auto d2 = rig.add(1, 4);
  EXPECT_EQ(rig.q.size(), 1u);
  EXPECT_EQ(rig.q.merged_total(), 1u);
  d1.set_value(Done{});
  d2.set_value(Done{});
  auto batch = rig.q.checkout(10);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].extents.size(), 2u);
  EXPECT_EQ(batch[0].block_tokens.size(), 2u);
}

TEST(CommitQueue, NotReadyUntilDataDurable) {
  Rig rig;
  auto d = rig.add(1);
  EXPECT_FALSE(rig.q.any_ready());
  EXPECT_TRUE(rig.q.checkout(10).empty());
  d.set_value(Done{});
  EXPECT_TRUE(rig.q.any_ready());
  EXPECT_EQ(rig.q.checkout(10).size(), 1u);
}

TEST(CommitQueue, MergedEntryWaitsForAllWrites) {
  Rig rig;
  auto d1 = rig.add(1, 0);
  auto d2 = rig.add(1, 4);
  d1.set_value(Done{});
  EXPECT_TRUE(rig.q.checkout(10).empty());  // d2 still pending
  d2.set_value(Done{});
  EXPECT_EQ(rig.q.checkout(10).size(), 1u);
}

TEST(CommitQueue, CheckoutRespectsFifoAndMax) {
  Rig rig;
  std::vector<SimPromise<Done>> ds;
  for (net::FileId f = 1; f <= 5; ++f) {
    ds.push_back(rig.add(f));
    ds.back().set_value(Done{});
  }
  auto batch = rig.q.checkout(3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].file, 1u);
  EXPECT_EQ(batch[1].file, 2u);
  EXPECT_EQ(batch[2].file, 3u);
  EXPECT_EQ(rig.q.size(), 2u);
  EXPECT_EQ(rig.q.in_flight(), 3u);
}

TEST(CommitQueue, CheckoutSkipsUnreadyEntries) {
  Rig rig;
  auto d1 = rig.add(1);
  auto d2 = rig.add(2);
  d2.set_value(Done{});
  auto batch = rig.q.checkout(10);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].file, 2u);
  EXPECT_EQ(rig.q.size(), 1u);
}

TEST(CommitQueue, WaitCommittedImmediateWhenNothingPending) {
  Rig rig;
  auto fut = rig.q.wait_committed(42);
  EXPECT_TRUE(fut.ready());
}

TEST(CommitQueue, WaitCommittedResolvesOnAck) {
  Rig rig;
  auto d = rig.add(1);
  auto fut = rig.q.wait_committed(1);
  EXPECT_FALSE(fut.ready());
  d.set_value(Done{});
  auto batch = rig.q.checkout(10);
  ASSERT_EQ(batch.size(), 1u);
  rig.q.ack(batch[0]);
  rig.sim.run();  // deliver wakeups
  EXPECT_TRUE(fut.ready());
  EXPECT_EQ(rig.q.committed_total(), 1u);
  EXPECT_EQ(rig.q.in_flight(), 0u);
}

TEST(CommitQueue, WaitCommittedOnInFlightTask) {
  Rig rig;
  auto d = rig.add(1);
  d.set_value(Done{});
  auto batch = rig.q.checkout(10);
  ASSERT_EQ(batch.size(), 1u);
  auto fut = rig.q.wait_committed(1);  // attaches to the in-flight commit
  EXPECT_FALSE(fut.ready());
  rig.q.ack(batch[0]);
  rig.sim.run();
  EXPECT_TRUE(fut.ready());
}

TEST(CommitQueue, DropRemovesQueuedEntryAndReleasesWaiters) {
  Rig rig;
  auto d = rig.add(1);
  auto fut = rig.q.wait_committed(1);
  rig.q.drop(1);
  rig.sim.run();
  EXPECT_TRUE(fut.ready());
  EXPECT_EQ(rig.q.size(), 0u);
  EXPECT_TRUE(rig.q.checkout(10).empty());
}

TEST(CommitQueue, RequeuePutsTaskBackAtFront) {
  Rig rig;
  auto d1 = rig.add(1);
  auto d2 = rig.add(2);
  d1.set_value(Done{});
  d2.set_value(Done{});
  auto batch = rig.q.checkout(1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].file, 1u);
  rig.q.requeue(std::move(batch[0]));
  EXPECT_EQ(rig.q.in_flight(), 0u);
  auto batch2 = rig.q.checkout(2);
  ASSERT_EQ(batch2.size(), 2u);
  EXPECT_EQ(batch2[0].file, 1u);  // back at the front
}

TEST(CommitQueue, CommitLatencyRecorded) {
  Rig rig;
  auto d = rig.add(1);
  d.set_value(Done{});
  rig.sim.call_at(SimTime::millis(5), [&] {
    auto batch = rig.q.checkout(1);
    ASSERT_EQ(batch.size(), 1u);
    rig.q.ack(batch[0]);
  });
  rig.sim.run();
  EXPECT_EQ(rig.q.commit_latency().count(), 1u);
  EXPECT_GE(rig.q.commit_latency().mean(), SimTime::millis(4));
}

}  // namespace
}  // namespace redbud::client
