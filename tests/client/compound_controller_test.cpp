// Tests for the adaptive compound-degree controller.
#include <gtest/gtest.h>

#include "client/compound_controller.hpp"

namespace redbud::client {
namespace {

using redbud::sim::SimTime;

TEST(CompoundController, StartsAtMinDegree) {
  CompoundController c(CompoundParams{});
  EXPECT_EQ(c.degree(), 1u);
}

TEST(CompoundController, FixedDegreeWhenNotAdaptive) {
  CompoundParams p;
  p.adaptive = false;
  p.fixed_degree = 6;
  CompoundController c(p);
  EXPECT_EQ(c.degree(), 6u);
  for (int i = 0; i < 20; ++i) c.on_reply(1000, SimTime::millis(50));
  EXPECT_EQ(c.degree(), 6u);
}

TEST(CompoundController, DegreeGrowsWhenMdsBusy) {
  CompoundParams p;
  CompoundController c(p);
  for (int i = 0; i < 10; ++i) c.on_reply(100, SimTime::micros(500));
  EXPECT_GT(c.degree(), 1u);
  EXPECT_GT(c.increases(), 0u);
}

TEST(CompoundController, DegreeGrowsWhenNetworkCongested) {
  CompoundParams p;
  CompoundController c(p);
  // Queue is idle, but RTT is far above the congestion threshold.
  for (int i = 0; i < 10; ++i) c.on_reply(0, SimTime::millis(10));
  EXPECT_GT(c.degree(), 1u);
}

TEST(CompoundController, DegreeCappedAtMax) {
  CompoundParams p;
  p.max_degree = 4;
  CompoundController c(p);
  for (int i = 0; i < 100; ++i) c.on_reply(1000, SimTime::millis(50));
  EXPECT_EQ(c.degree(), 4u);
}

TEST(CompoundController, DegreeShrinksWhenRelaxed) {
  CompoundParams p;
  CompoundController c(p);
  for (int i = 0; i < 10; ++i) c.on_reply(100, SimTime::millis(10));
  const auto high = c.degree();
  ASSERT_GT(high, 1u);
  for (int i = 0; i < 50; ++i) c.on_reply(0, SimTime::micros(100));
  EXPECT_LT(c.degree(), high);
  EXPECT_GT(c.decreases(), 0u);
}

TEST(CompoundController, SmoothingIgnoresSingleSpike) {
  CompoundParams p;
  CompoundController c(p);
  for (int i = 0; i < 20; ++i) c.on_reply(0, SimTime::micros(100));
  EXPECT_EQ(c.degree(), 1u);
  c.on_reply(500, SimTime::millis(20));  // one spike
  // EMA dampens it: at most one step up.
  EXPECT_LE(c.degree(), 2u);
}

}  // namespace
}  // namespace redbud::client
