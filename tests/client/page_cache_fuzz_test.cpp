// Randomized differential test for the page cache against a naive
// reference model, checking the dirty-pinning contract: a dirty page may
// NEVER be evicted or lose its newest token; clean pages may vanish but
// must never resurrect stale data.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "client/page_cache.hpp"
#include "sim/random.hpp"

namespace redbud::client {
namespace {

struct Ref {
  struct Page {
    storage::ContentToken token;
    bool dirty;
  };
  std::map<std::pair<net::FileId, std::uint64_t>, Page> pages;
};

struct FuzzCase {
  std::uint64_t seed;
  int ops;
  std::size_t capacity;
  std::uint64_t files;
  std::uint64_t blocks;
};

class PageCacheFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(PageCacheFuzz, DirtyContractHolds) {
  const auto c = GetParam();
  sim::Rng rng(c.seed);
  PageCache cache(c.capacity);
  Ref ref;
  storage::ContentToken next_token = 1;

  for (int i = 0; i < c.ops; ++i) {
    const net::FileId file = 1 + rng.next_below(c.files);
    const std::uint64_t block = rng.next_below(c.blocks);
    const auto key = std::make_pair(file, block);
    switch (rng.next_below(5)) {
      case 0: {  // dirty write
        cache.put_dirty(file, block, next_token);
        ref.pages[key] = {next_token, true};
        ++next_token;
        break;
      }
      case 1: {  // clean fill
        cache.put_clean(file, block, next_token);
        ref.pages[key] = {next_token, false};
        ++next_token;
        break;
      }
      case 2: {  // commit ack
        cache.mark_clean(file, block);
        if (auto it = ref.pages.find(key); it != ref.pages.end()) {
          it->second.dirty = false;
        }
        break;
      }
      case 3: {  // lookup — THE check
        const auto got = cache.get(file, block);
        auto it = ref.pages.find(key);
        if (it != ref.pages.end() && it->second.dirty) {
          // Dirty pages are pinned: must be present with the newest token.
          ASSERT_TRUE(got.has_value()) << "dirty page evicted";
          ASSERT_EQ(*got, it->second.token) << "dirty page stale";
        } else if (got.has_value()) {
          // Clean hits must return the newest token, never stale data.
          ASSERT_NE(it, ref.pages.end()) << "hit on a never-written page";
          ASSERT_EQ(*got, it->second.token) << "stale clean page";
        }
        break;
      }
      default: {  // drop a file
        if (rng.bernoulli(0.05)) {
          cache.invalidate_file(file);
          for (auto it = ref.pages.begin(); it != ref.pages.end();) {
            it = it->first.first == file ? ref.pages.erase(it) : ++it;
          }
        }
        break;
      }
    }
    // Aggregate invariants.
    std::size_t ref_dirty = 0;
    for (const auto& [k, p] : ref.pages) {
      if (p.dirty) ++ref_dirty;
    }
    ASSERT_EQ(cache.dirty_count(), ref_dirty) << "op " << i;
    // Capacity may only be exceeded by pinned dirty pages.
    ASSERT_LE(cache.size(),
              std::max(c.capacity, cache.dirty_count() + c.capacity))
        << "op " << i;
  }

  // Every dirty page enumerable via dirty_pages_of with the right token.
  for (net::FileId f = 1; f <= c.files; ++f) {
    for (const auto& [block, token] : cache.dirty_pages_of(f)) {
      auto it = ref.pages.find({f, block});
      ASSERT_NE(it, ref.pages.end());
      ASSERT_TRUE(it->second.dirty);
      ASSERT_EQ(token, it->second.token);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PageCacheFuzz,
    ::testing::Values(FuzzCase{21, 5000, 16, 3, 32},    // tiny cache: churn
                      FuzzCase{22, 5000, 256, 5, 64},   // roomy cache
                      FuzzCase{23, 8000, 8, 2, 8},      // pathological
                      FuzzCase{24, 5000, 64, 10, 128},  // many files
                      FuzzCase{25, 3000, 4, 1, 64}));   // all-dirty overflow

}  // namespace
}  // namespace redbud::client
