// End-to-end client file system tests on a full simulated cluster:
// synchronous vs delayed commit semantics, ordered-writes invariants,
// conflict reads, delegation behaviour.
//
// Coroutine test notes: gtest ASSERT_* expands to a plain `return`, which
// is ill-formed in a coroutine — tests use EXPECT_* plus explicit
// `co_return` guards. Lambda coroutines may capture only because
// run_in_cluster() keeps the closure alive until the simulation drains.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cluster.hpp"

namespace redbud::client {
namespace {

using core::Cluster;
using core::ClusterParams;
using net::Status;
using redbud::sim::Process;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

ClusterParams small_cluster(CommitMode mode, bool delegation = true) {
  ClusterParams p;
  p.nclients = 2;
  p.array.ndisks = 2;
  p.array.disk.total_blocks = 1 << 20;
  p.metadata_disk.total_blocks = 1 << 20;
  p.journal.region_blocks = 1 << 16;
  p.client.mode = mode;
  p.client.delegation = delegation;
  p.client.chunk_blocks = 1024;
  return p;
}

// Runs `body(cluster)` (a Process factory — usually a capturing lambda
// coroutine) to completion. The closure outlives the coroutine because it
// is held here until the simulation has drained.
template <typename F>
void run_in_cluster(Cluster& c, F body) {
  auto ref = c.sim().spawn(body(c));
  c.sim().run_until(c.sim().now() + SimTime::seconds(600));
  c.sim().check_failures();
  ASSERT_TRUE(ref.done()) << "cluster body did not finish in sim time";
}

Process create_write_read(Cluster& cl, std::uint32_t nbytes, bool* ok) {
  auto& fs = cl.client(0);
  auto cfut = fs.create(net::kRootDir, "file");
  const net::FileId id = co_await cfut;
  EXPECT_NE(id, net::kInvalidFile);
  if (id == net::kInvalidFile) co_return;
  auto wfut = fs.write(id, 0, nbytes);
  const Status ws = co_await wfut;
  EXPECT_EQ(ws, Status::kOk);
  auto rfut = fs.read(id, 0, nbytes);
  ReadResult rr = co_await rfut;
  EXPECT_EQ(rr.status, Status::kOk);
  const auto nblocks = storage::blocks_for_bytes(nbytes);
  EXPECT_EQ(rr.tokens.size(), nblocks);
  if (rr.tokens.size() != nblocks) co_return;
  bool all_match = true;
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    all_match = all_match && rr.tokens[b] == fs.expected_token(id, b);
  }
  EXPECT_TRUE(all_match);
  *ok = all_match;
}

TEST(ClientFs, SyncModeWriteReadRoundTrip) {
  Cluster c(small_cluster(CommitMode::kSync));
  c.start();
  bool ok = false;
  run_in_cluster(c,
                 [&ok](Cluster& cl) { return create_write_read(cl, 32768, &ok); });
  EXPECT_TRUE(ok);
}

TEST(ClientFs, DelayedModeWriteReadRoundTrip) {
  Cluster c(small_cluster(CommitMode::kDelayed));
  c.start();
  bool ok = false;
  run_in_cluster(c,
                 [&ok](Cluster& cl) { return create_write_read(cl, 32768, &ok); });
  EXPECT_TRUE(ok);
}

TEST(ClientFs, LargeFileRoundTrip) {
  Cluster c(small_cluster(CommitMode::kDelayed));
  c.start();
  bool ok = false;
  run_in_cluster(
      c, [&ok](Cluster& cl) { return create_write_read(cl, 1 << 20, &ok); });
  EXPECT_TRUE(ok);
}

TEST(ClientFs, DelayedWriteLatencyFarBelowSync) {
  SimTime sync_lat, delayed_lat;
  for (auto mode : {CommitMode::kSync, CommitMode::kDelayed}) {
    Cluster c(small_cluster(mode));
    c.start();
    SimTime* out = mode == CommitMode::kSync ? &sync_lat : &delayed_lat;
    run_in_cluster(c, [out](Cluster& cl) -> Process {
      auto& fs = cl.client(0);
      auto cfut = fs.create(net::kRootDir, "f");
      const auto id = co_await cfut;
      // Prime the delegation pool and park the disk head elsewhere so the
      // measured write pays a realistic seek.
      auto pfut = fs.write(id, 0, 4096);
      (void)co_await pfut;
      auto pffut = fs.fsync(id);
      (void)co_await pffut;
      co_await cl.sim().delay(SimTime::millis(100));
      const SimTime t0 = cl.sim().now();
      auto wfut = fs.write(id, 4096, 32768);
      (void)co_await wfut;
      *out = cl.sim().now() - t0;
    });
  }
  // Sync waits for the data write + commit round trip; delayed returns
  // after queueing (microseconds).
  EXPECT_GT(sync_lat, SimTime::micros(400));
  EXPECT_LT(delayed_lat, SimTime::micros(100));
  EXPECT_GT(sync_lat, delayed_lat * std::int64_t{10});
}

TEST(ClientFs, ConflictReadServedFromCacheBeforeCommit) {
  // Read data whose commit is still pending (the paper's NPB conflict
  // reads): correct, and served without touching the disks.
  Cluster c(small_cluster(CommitMode::kDelayed));
  c.start();
  bool ok = false;
  run_in_cluster(c, [&ok](Cluster& cl) -> Process {
    auto& fs = cl.client(0);
    auto cfut = fs.create(net::kRootDir, "f");
    const auto id = co_await cfut;
    auto wfut = fs.write(id, 0, 16384);
    (void)co_await wfut;
    const auto reads_before =
        cl.array().disk(0).blocks_read() + cl.array().disk(1).blocks_read();
    auto rfut = fs.read(id, 0, 16384);
    ReadResult rr = co_await rfut;
    EXPECT_EQ(rr.status, Status::kOk);
    bool match = rr.tokens.size() == 4;
    for (std::uint64_t b = 0; match && b < 4; ++b) {
      match = rr.tokens[b] == fs.expected_token(id, b);
    }
    EXPECT_TRUE(match);
    const auto reads_after =
        cl.array().disk(0).blocks_read() + cl.array().disk(1).blocks_read();
    EXPECT_EQ(reads_before, reads_after) << "conflict read hit the disk";
    ok = match && reads_before == reads_after;
  });
  EXPECT_TRUE(ok);
}

TEST(ClientFs, FsyncMakesDataDurableAndCommitted) {
  Cluster c(small_cluster(CommitMode::kDelayed));
  c.start();
  bool ok = false;
  run_in_cluster(c, [&ok](Cluster& cl) -> Process {
    auto& fs = cl.client(0);
    auto cfut = fs.create(net::kRootDir, "f");
    const auto id = co_await cfut;
    auto wfut = fs.write(id, 0, 8192);
    (void)co_await wfut;
    EXPECT_EQ(cl.mds().durable_commits().size(), 0u);
    auto sfut = fs.fsync(id);
    (void)co_await sfut;
    EXPECT_GE(cl.mds().durable_commits().size(), 1u);
    if (cl.mds().durable_commits().empty()) co_return;
    const auto& rec = cl.mds().durable_commits().back();
    EXPECT_EQ(rec.file, id);
    bool durable = true;
    std::size_t bi = 0;
    for (const auto& e : rec.extents) {
      auto disk_tokens = cl.array().peek(e.addr, e.nblocks);
      for (std::uint32_t k = 0; k < e.nblocks; ++k, ++bi) {
        durable = durable && disk_tokens[k] == rec.block_tokens[bi];
      }
    }
    EXPECT_TRUE(durable) << "committed data not on the platter";
    ok = durable;
  });
  EXPECT_TRUE(ok);
}

TEST(ClientFs, OrderedWritesInvariantHeldUnderDelayedCommit) {
  Cluster c(small_cluster(CommitMode::kDelayed));
  c.start();
  bool ok = false;
  run_in_cluster(c, [&ok](Cluster& cl) -> Process {
    auto& fs = cl.client(0);
    std::vector<net::FileId> ids;
    for (int i = 0; i < 20; ++i) {
      auto cfut = fs.create(net::kRootDir, "f" + std::to_string(i));
      ids.push_back(co_await cfut);
      auto wfut = fs.write(ids.back(), 0, 16384);
      (void)co_await wfut;
    }
    for (auto id : ids) {
      auto sfut = fs.fsync(id);
      (void)co_await sfut;
    }
    EXPECT_EQ(cl.mds().durable_commits().size(), 20u);
    bool invariant = true;
    for (const auto& rec : cl.mds().durable_commits()) {
      std::size_t bi = 0;
      for (const auto& e : rec.extents) {
        auto disk_tokens = cl.array().peek(e.addr, e.nblocks);
        for (std::uint32_t k = 0; k < e.nblocks; ++k, ++bi) {
          invariant = invariant && disk_tokens[k] == rec.block_tokens[bi];
        }
      }
    }
    EXPECT_TRUE(invariant);
    ok = invariant;
  });
  EXPECT_TRUE(ok);
}

TEST(ClientFs, DelegationServesSmallWritesWithoutLayoutRpc) {
  Cluster c(small_cluster(CommitMode::kDelayed, /*delegation=*/true));
  c.start();
  bool ok = false;
  run_in_cluster(c, [&ok](Cluster& cl) -> Process {
    auto& fs = cl.client(0);
    auto cfut = fs.create(net::kRootDir, "f");
    const auto id = co_await cfut;
    auto w0 = fs.write(id, 0, 4096);
    (void)co_await w0;
    co_await cl.sim().delay(SimTime::millis(50));
    const auto calls_before = fs.endpoint().calls_sent();
    for (int i = 1; i <= 8; ++i) {
      auto wfut = fs.write(id, std::uint64_t(i) * 4096, 4096);
      (void)co_await wfut;
    }
    const auto calls_after = fs.endpoint().calls_sent();
    // Allocation is local; only background commit RPCs may appear.
    EXPECT_LE(calls_after - calls_before, 3u);
    EXPECT_GE(fs.space_pool().allocs(), 9u);
    ok = true;
  });
  EXPECT_TRUE(ok);
}

TEST(ClientFs, DelegatedWritesAreContiguousOnDisk) {
  Cluster c(small_cluster(CommitMode::kDelayed, /*delegation=*/true));
  c.start();
  bool ok = false;
  run_in_cluster(c, [&ok](Cluster& cl) -> Process {
    auto& fs = cl.client(0);
    std::vector<net::FileId> ids;
    for (int i = 0; i < 4; ++i) {
      auto cfut = fs.create(net::kRootDir, "f" + std::to_string(i));
      ids.push_back(co_await cfut);
    }
    for (auto id : ids) {
      auto wfut = fs.write(id, 0, 8192);
      (void)co_await wfut;
      auto sfut = fs.fsync(id);
      (void)co_await sfut;
    }
    const auto& recs = cl.mds().durable_commits();
    EXPECT_GE(recs.size(), 4u);
    bool contiguous = true;
    storage::BlockNo prev_end = 0;
    bool first = true;
    for (const auto& rec : recs) {
      for (const auto& e : rec.extents) {
        if (!first) contiguous = contiguous && e.addr.block == prev_end;
        first = false;
        prev_end = e.addr.block + e.nblocks;
      }
    }
    EXPECT_TRUE(contiguous) << "delegated allocations not adjacent";
    ok = contiguous;
  });
  EXPECT_TRUE(ok);
}

TEST(ClientFs, WithoutDelegationSmallWritesUseMds) {
  Cluster c(small_cluster(CommitMode::kDelayed, /*delegation=*/false));
  c.start();
  bool ok = false;
  run_in_cluster(c, [&ok](Cluster& cl) -> Process {
    auto& fs = cl.client(0);
    auto cfut = fs.create(net::kRootDir, "f");
    const auto id = co_await cfut;
    const auto before = fs.endpoint().calls_sent();
    auto wfut = fs.write(id, 0, 4096);
    (void)co_await wfut;
    EXPECT_GE(fs.endpoint().calls_sent(), before + 1);
    EXPECT_EQ(fs.space_pool().allocs(), 0u);
    ok = true;
  });
  EXPECT_TRUE(ok);
}

TEST(ClientFs, OverwriteReusesExtents) {
  Cluster c(small_cluster(CommitMode::kDelayed));
  c.start();
  bool ok = false;
  run_in_cluster(c, [&ok](Cluster& cl) -> Process {
    auto& fs = cl.client(0);
    auto cfut = fs.create(net::kRootDir, "f");
    const auto id = co_await cfut;
    auto w1 = fs.write(id, 0, 16384);
    (void)co_await w1;
    auto s1 = fs.fsync(id);
    (void)co_await s1;
    const auto allocs_before = fs.space_pool().allocs();
    auto w2 = fs.write(id, 0, 16384);  // overwrite in place
    (void)co_await w2;
    auto s2 = fs.fsync(id);
    (void)co_await s2;
    EXPECT_EQ(fs.space_pool().allocs(), allocs_before);
    auto rfut = fs.read(id, 0, 16384);
    ReadResult rr = co_await rfut;
    bool match = rr.tokens.size() == 4;
    for (std::uint64_t b = 0; match && b < 4; ++b) {
      match = rr.tokens[b] == fs.expected_token(id, b);
    }
    EXPECT_TRUE(match);
    ok = match;
  });
  EXPECT_TRUE(ok);
}

TEST(ClientFs, RemoveDropsPendingCommitAndFile) {
  Cluster c(small_cluster(CommitMode::kDelayed));
  c.start();
  bool ok = false;
  run_in_cluster(c, [&ok](Cluster& cl) -> Process {
    auto& fs = cl.client(0);
    auto cfut = fs.create(net::kRootDir, "doomed");
    const auto id = co_await cfut;
    auto wfut = fs.write(id, 0, 8192);
    (void)co_await wfut;
    auto dfut = fs.remove(net::kRootDir, "doomed");
    const Status ds = co_await dfut;
    EXPECT_EQ(ds, Status::kOk);
    auto ofut = fs.open(net::kRootDir, "doomed");
    OpenResult orr = co_await ofut;
    EXPECT_EQ(orr.status, Status::kNoEnt);
    ok = ds == Status::kOk && orr.status == Status::kNoEnt;
  });
  EXPECT_TRUE(ok);
}

TEST(ClientFs, AdaptiveCommitThreadsScaleWithBacklog) {
  Cluster c(small_cluster(CommitMode::kDelayed));
  c.start();
  bool ok = false;
  run_in_cluster(c, [&ok](Cluster& cl) -> Process {
    auto& fs = cl.client(0);
    std::vector<net::FileId> ids;
    for (int i = 0; i < 120; ++i) {
      auto cfut = fs.create(net::kRootDir, "f" + std::to_string(i));
      ids.push_back(co_await cfut);
    }
    for (auto id : ids) {
      auto wfut = fs.write(id, 0, 4096);
      (void)co_await wfut;
    }
    std::uint32_t peak = fs.commit_pool().live_threads();
    for (int i = 0; i < 20; ++i) {
      co_await cl.sim().delay(SimTime::millis(50));
      peak = std::max(peak, fs.commit_pool().live_threads());
    }
    EXPECT_GT(peak, 1u);
    for (auto id : ids) {
      auto sfut = fs.fsync(id);
      (void)co_await sfut;
    }
    for (int i = 0; i < 30 && fs.commit_pool().live_threads() > 1; ++i) {
      co_await cl.sim().delay(SimTime::millis(100));
    }
    EXPECT_EQ(fs.commit_pool().live_threads(), 1u);
    EXPECT_EQ(fs.commit_queue().size(), 0u);
    ok = peak > 1;
  });
  EXPECT_TRUE(ok);
}

TEST(ClientFs, CommitsAreCompoundedAtFixedDegree) {
  auto params = small_cluster(CommitMode::kDelayed);
  // A single quiet client never trips the adaptive congestion thresholds;
  // pin the compound degree to exercise the batching path directly.
  params.client.compound.adaptive = false;
  params.client.compound.fixed_degree = 4;
  Cluster c(params);
  c.start();
  bool ok = false;
  run_in_cluster(c, [&ok](Cluster& cl) -> Process {
    auto& fs = cl.client(0);
    std::vector<net::FileId> ids;
    for (int i = 0; i < 60; ++i) {
      auto cfut = fs.create(net::kRootDir, "f" + std::to_string(i));
      ids.push_back(co_await cfut);
    }
    for (auto id : ids) {
      auto wfut = fs.write(id, 0, 4096);
      (void)co_await wfut;
    }
    for (auto id : ids) {
      auto sfut = fs.fsync(id);
      (void)co_await sfut;
    }
    EXPECT_EQ(fs.commit_pool().entries_committed(), 60u);
    EXPECT_LT(fs.commit_pool().rpcs_sent(), 60u);
    EXPECT_GT(fs.commit_pool().mean_degree(), 1.0);
    ok = true;
  });
  EXPECT_TRUE(ok);
}

TEST(ClientFs, TwoClientsShareTheNamespace) {
  Cluster c(small_cluster(CommitMode::kDelayed));
  c.start();
  bool ok = false;
  run_in_cluster(c, [&ok](Cluster& cl) -> Process {
    auto& a = cl.client(0);
    auto& b = cl.client(1);
    auto cfut = a.create(net::kRootDir, "shared");
    const auto id = co_await cfut;
    auto wfut = a.write(id, 0, 8192);
    (void)co_await wfut;
    auto sfut = a.fsync(id);
    (void)co_await sfut;
    auto ofut = b.open(net::kRootDir, "shared");
    OpenResult orr = co_await ofut;
    EXPECT_EQ(orr.status, Status::kOk);
    EXPECT_EQ(orr.file, id);
    EXPECT_EQ(orr.size_bytes, 8192u);
    auto rfut = b.read(id, 0, 8192);
    ReadResult rr = co_await rfut;
    EXPECT_EQ(rr.status, Status::kOk);
    bool match = rr.tokens.size() == 2 &&
                 rr.tokens[0] == a.expected_token(id, 0) &&
                 rr.tokens[1] == a.expected_token(id, 1);
    EXPECT_TRUE(match);
    ok = match;
  });
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace redbud::client
