// Tests for the client page cache.
#include <gtest/gtest.h>

#include "client/page_cache.hpp"

namespace redbud::client {
namespace {

TEST(PageCache, MissThenHit) {
  PageCache c(16);
  EXPECT_EQ(c.get(1, 0), std::nullopt);
  c.put_clean(1, 0, 42);
  EXPECT_EQ(c.get(1, 0), 42u);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(PageCache, DirtyPagesArePinned) {
  PageCache c(4);
  c.put_dirty(1, 0, 10);
  // Flood with clean pages: the dirty page must survive.
  for (std::uint64_t b = 1; b <= 10; ++b) c.put_clean(1, b, b);
  EXPECT_EQ(c.get(1, 0), 10u);
  EXPECT_EQ(c.dirty_count(), 1u);
  EXPECT_GT(c.evictions(), 0u);
}

TEST(PageCache, LruEvictsColdestCleanPage) {
  PageCache c(3);
  c.put_clean(1, 0, 1);
  c.put_clean(1, 1, 2);
  c.put_clean(1, 2, 3);
  (void)c.get(1, 0);       // touch 0: now 1 is coldest
  c.put_clean(1, 3, 4);    // evicts one
  EXPECT_EQ(c.get(1, 1), std::nullopt);
  EXPECT_EQ(c.get(1, 0), 1u);
}

TEST(PageCache, MarkCleanUnpins) {
  PageCache c(2);
  c.put_dirty(1, 0, 5);
  EXPECT_TRUE(c.is_dirty(1, 0));
  c.mark_clean(1, 0);
  EXPECT_FALSE(c.is_dirty(1, 0));
  EXPECT_EQ(c.dirty_count(), 0u);
  // Now evictable.
  c.put_clean(1, 1, 6);
  c.put_clean(1, 2, 7);
  EXPECT_EQ(c.get(1, 0), std::nullopt);
}

TEST(PageCache, RedirtyRefreshesToken) {
  PageCache c(8);
  c.put_dirty(1, 0, 1);
  c.put_dirty(1, 0, 2);
  EXPECT_EQ(c.get(1, 0), 2u);
  EXPECT_EQ(c.dirty_count(), 1u);
  c.mark_clean(1, 0);
  c.put_dirty(1, 0, 3);
  EXPECT_TRUE(c.is_dirty(1, 0));
  EXPECT_EQ(c.dirty_count(), 1u);
}

TEST(PageCache, MarkCleanOnMissingPageIsNoop) {
  PageCache c(4);
  c.mark_clean(9, 9);
  EXPECT_EQ(c.dirty_count(), 0u);
}

TEST(PageCache, InvalidateFileDropsAllItsPages) {
  PageCache c(16);
  c.put_dirty(1, 0, 1);
  c.put_clean(1, 1, 2);
  c.put_clean(2, 0, 3);
  c.invalidate_file(1);
  EXPECT_EQ(c.get(1, 0), std::nullopt);
  EXPECT_EQ(c.get(1, 1), std::nullopt);
  EXPECT_EQ(c.get(2, 0), 3u);
  EXPECT_EQ(c.dirty_count(), 0u);
}

TEST(PageCache, CacheGrowsPastCapacityWhenAllDirty) {
  PageCache c(2);
  for (std::uint64_t b = 0; b < 6; ++b) c.put_dirty(1, b, b);
  EXPECT_EQ(c.size(), 6u);  // nothing evictable
  for (std::uint64_t b = 0; b < 6; ++b) EXPECT_TRUE(c.get(1, b).has_value());
}

}  // namespace
}  // namespace redbud::client
