// Tests for the double space pool (space delegation, §IV-A).
#include <gtest/gtest.h>

#include "client/space_pool.hpp"

namespace redbud::client {
namespace {

mds::PhysExtent chunk_at(std::uint64_t block, std::uint64_t n,
                         std::uint32_t dev = 0) {
  return mds::PhysExtent{{dev, block}, n};
}

TEST(DoubleSpacePool, EmptyPoolNeedsRefillAndFailsAlloc) {
  DoubleSpacePool pool(100);
  EXPECT_TRUE(pool.needs_refill());
  EXPECT_EQ(pool.alloc(10), std::nullopt);
}

TEST(DoubleSpacePool, AllocationsAreContiguousWithinChunk) {
  DoubleSpacePool pool(100);
  pool.install_chunk(chunk_at(1000, 100));
  auto a = pool.alloc(10);
  auto b = pool.alloc(20);
  auto c = pool.alloc(5);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->addr.block, 1000u);
  EXPECT_EQ(b->addr.block, 1010u);
  EXPECT_EQ(c->addr.block, 1030u);
  EXPECT_EQ(pool.active_free(), 65u);
  EXPECT_EQ(pool.allocs(), 3u);
}

TEST(DoubleSpacePool, SwapPromotesStandbyAndRetiresLeftover) {
  DoubleSpacePool pool(100);
  pool.install_chunk(chunk_at(1000, 100));
  pool.install_chunk(chunk_at(5000, 100));
  ASSERT_TRUE(pool.alloc(90).has_value());
  // 10 blocks left in active; a 20-block request forces the swap.
  auto got = pool.alloc(20);
  ASSERT_TRUE(got);
  EXPECT_EQ(got->addr.block, 5000u);
  EXPECT_EQ(pool.swaps(), 1u);
  ASSERT_TRUE(pool.has_leftover());
  auto leftover = pool.take_leftover();
  ASSERT_TRUE(leftover);
  EXPECT_EQ(leftover->addr.block, 1090u);
  EXPECT_EQ(leftover->nblocks, 10u);
  EXPECT_TRUE(pool.needs_refill());  // standby now empty
}

TEST(DoubleSpacePool, ExactFitLeavesNoLeftoverOnSwap) {
  DoubleSpacePool pool(100);
  pool.install_chunk(chunk_at(0, 100));
  pool.install_chunk(chunk_at(200, 100));
  ASSERT_TRUE(pool.alloc(100).has_value());
  ASSERT_TRUE(pool.alloc(1).has_value());
  EXPECT_FALSE(pool.has_leftover());
}

TEST(DoubleSpacePool, SwapWithoutStandbyFails) {
  DoubleSpacePool pool(100);
  pool.install_chunk(chunk_at(0, 100));
  ASSERT_TRUE(pool.alloc(95).has_value());
  EXPECT_EQ(pool.alloc(10), std::nullopt);  // no standby to promote
  // Refill and retry.
  pool.install_chunk(chunk_at(300, 100));
  auto got = pool.alloc(10);
  ASSERT_TRUE(got);
  EXPECT_EQ(got->addr.block, 300u);
}

TEST(DoubleSpacePool, EligibilityBoundedByChunkSize) {
  DoubleSpacePool pool(100);
  EXPECT_TRUE(pool.eligible(100));
  EXPECT_FALSE(pool.eligible(101));
}

TEST(DoubleSpacePool, TakeLeftoverDrains) {
  DoubleSpacePool pool(10);
  pool.install_chunk(chunk_at(0, 10));
  pool.install_chunk(chunk_at(20, 10));
  ASSERT_TRUE(pool.alloc(5).has_value());
  ASSERT_TRUE(pool.alloc(6).has_value());  // swap, leftover 5 blocks
  EXPECT_TRUE(pool.take_leftover().has_value());
  EXPECT_FALSE(pool.take_leftover().has_value());
}

}  // namespace
}  // namespace redbud::client
