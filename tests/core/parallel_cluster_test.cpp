// Partitioned-cluster tests: the full Redbud stack driven through the
// SimDomain. The determinism contract under test: a metadata-only
// workload with per-client RNG streams and staggered starts completes
// every operation at the same simulated instant whether the kernel runs
// serial (nthreads = 1, the classic code paths) or partitioned over any
// number of worker threads — the parallel network/RPC paths must
// reproduce the serial timing exactly. Data-path workloads additionally
// smoke-test the parallel disk-array and workload-driver plumbing.
//
// Naming: suites start with "Parallel" for the TSan job's `ctest -R
// Parallel` filter.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/recovery.hpp"
#include "core/testbed.hpp"
#include "sim/random.hpp"
#include "workload/filebench.hpp"
#include "workload/workload.hpp"

namespace redbud::core {
namespace {

using client::CommitMode;
using net::Status;
using redbud::sim::Process;
using redbud::sim::Rng;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

ClusterParams small_cluster(std::uint32_t nthreads) {
  ClusterParams p;
  p.nclients = 4;
  p.nshards = 2;
  p.nthreads = nthreads;
  p.array.ndisks = 2;
  p.array.disk.total_blocks = 1 << 20;
  p.metadata_disk.total_blocks = 1 << 20;
  p.journal.region_blocks = 1 << 16;
  p.client.mode = CommitMode::kDelayed;
  p.client.chunk_blocks = 1024;
  return p;
}

// One client's metadata churn: create / remove under a private RNG
// stream, think-time jitter, staggered start. Completion instants land in
// `log` (client-private, written only by this client's partition).
Process meta_churn(Simulation& sim, client::ClientFs& fs,
                   std::uint32_t client_id,
                   std::vector<std::int64_t>* log) {
  Rng rng(1000 + client_id);
  co_await sim.delay(SimTime::micros(137 * client_id));
  for (int i = 0; i < 40; ++i) {
    const std::string name =
        "c" + std::to_string(client_id) + "_f" + std::to_string(i);
    auto cfut = fs.create(net::kRootDir, name);
    const net::FileId id = co_await cfut;
    EXPECT_NE(id, net::kInvalidFile);
    log->push_back(sim.now().ns());
    co_await sim.delay(SimTime::micros(50 + rng.next_below(300)));
    if (i % 3 == 0 && id != net::kInvalidFile) {
      auto rfut = fs.remove(net::kRootDir, name);
      const Status rs = co_await rfut;
      EXPECT_EQ(rs, Status::kOk);
      log->push_back(sim.now().ns());
      co_await sim.delay(SimTime::micros(20 + rng.next_below(100)));
    }
  }
}

// Run the churn on a cluster with `nthreads` workers; return the
// per-client completion-time logs (client-major, deterministic layout).
std::vector<std::vector<std::int64_t>> run_meta_churn(std::uint32_t nthreads) {
  Cluster c(small_cluster(nthreads));
  c.start();
  std::vector<std::vector<std::int64_t>> logs(c.nclients());
  std::vector<redbud::sim::ProcRef> refs;
  for (std::size_t i = 0; i < c.nclients(); ++i) {
    Simulation& csim = c.client_sim(i);
    refs.push_back(csim.spawn(meta_churn(
        csim, c.client(i), static_cast<std::uint32_t>(i), &logs[i])));
  }
  c.run_until(SimTime::seconds(30));
  c.check_failures();
  for (const auto& r : refs) EXPECT_TRUE(r.done());
  return logs;
}

TEST(ParallelCluster, MetadataTimingIdenticalForAnyWorkerCount) {
  const auto serial = run_meta_churn(1);
  for (const auto& log : serial) ASSERT_GT(log.size(), 40u);
  const auto two = run_meta_churn(2);
  const auto four = run_meta_churn(4);
  EXPECT_EQ(serial, two)
      << "partitioned kernel diverged from the serial timing";
  EXPECT_EQ(serial, four);
  // And the partitioned kernel replays itself.
  EXPECT_EQ(two, run_meta_churn(2));
}

TEST(ParallelCluster, DataPathRoundTripsUnderPartitionedKernel) {
  // Write / fsync / read-verify through the parallel disk-array path:
  // content tokens must round-trip even though reads cannot peek the
  // array's state across partitions.
  Cluster c(small_cluster(2));
  ASSERT_TRUE(c.parallel());
  c.start();
  bool done = false;
  Simulation& csim = c.client_sim(0);
  auto& fs = c.client(0);
  auto ref = csim.spawn([](Simulation& sim, client::ClientFs& fs,
                           bool* done) -> Process {
    for (int i = 0; i < 8; ++i) {
      auto cfut = fs.create(net::kRootDir, "data_f" + std::to_string(i));
      const net::FileId id = co_await cfut;
      EXPECT_NE(id, net::kInvalidFile);
      if (id == net::kInvalidFile) co_return;
      auto wfut = fs.write(id, 0, 32768);
      EXPECT_EQ(co_await wfut, Status::kOk);
      auto sfut = fs.fsync(id);
      (void)co_await sfut;
      auto rfut = fs.read(id, 0, 32768);
      auto rr = co_await rfut;
      EXPECT_EQ(rr.status, Status::kOk);
      for (std::uint64_t b = 0; b < rr.tokens.size(); ++b) {
        EXPECT_EQ(rr.tokens[b], fs.expected_token(id, b));
      }
      (void)co_await fs.close(id);
    }
    *done = true;
  }(csim, fs, &done));
  c.run_until(SimTime::seconds(120));
  c.check_failures();
  ASSERT_TRUE(ref.done());
  EXPECT_TRUE(done);
}

TEST(ParallelCluster, WorkloadDriverRunsAndStaysConsistent) {
  // The partitioned workload driver end-to-end: fileserver over 2 shards
  // and 2 worker threads, then the whole-cluster consistency check.
  core::TestbedParams tp;
  tp.protocol = Protocol::kRedbudDelayed;
  tp.nclients = 4;
  tp.redbud = small_cluster(2);
  core::Testbed bed(tp);
  ASSERT_TRUE(bed.parallel());
  bed.start();

  workload::FilebenchParams fp;
  fp.nfiles_per_client = 20;
  fp.threads_per_client = 4;
  fp.mean_file_bytes = 8 * 1024;
  fp.max_file_bytes = 32 * 1024;
  workload::FileserverWorkload w(fp);
  workload::RunOptions opt;
  opt.warmup = SimTime::millis(500);
  opt.duration = SimTime::seconds(2);
  const auto r = run_workload(bed, w, opt);
  EXPECT_GT(r.ops, 0u);
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_EQ(r.op_errors, 0u);

  Cluster& c = *bed.cluster();
  // Drain queued commits, then every shard must match the array.
  for (int spin = 0; spin < 500; ++spin) {
    std::size_t pending = 0;
    for (std::size_t ci = 0; ci < c.nclients(); ++ci) {
      auto& q = c.client(ci).commit_queue();
      pending += q.size() + q.in_flight();
    }
    if (pending == 0) break;
    bed.run_until(bed.now() + SimTime::millis(20));
  }
  const auto report = core::check_consistency(c);
  EXPECT_TRUE(report.consistent());
  EXPECT_GT(report.commits_checked, 0u);
}

}  // namespace
}  // namespace redbud::core
