// Tests for the bench table printer and formatting helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "core/metrics.hpp"

namespace redbud::core {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const auto out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("| only |"), std::string::npos);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt_ratio(2.5999), "2.60x");
}

TEST(Banner, IncludesTitleAndSubtitle) {
  std::ostringstream os;
  print_banner(os, "Title", "sub");
  EXPECT_NE(os.str().find("=== Title ==="), std::string::npos);
  EXPECT_NE(os.str().find("sub"), std::string::npos);
}

}  // namespace
}  // namespace redbud::core
