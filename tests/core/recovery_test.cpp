// Crash-consistency property tests: the ordered-writes invariant holds
// under sync and delayed commit at ANY crash point; the deliberately
// unordered mode breaks it; orphan GC reclaims every unreachable block.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/recovery.hpp"

namespace redbud::core {
namespace {

using client::CommitMode;
using redbud::sim::Process;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

ClusterParams crash_cluster(CommitMode mode, std::uint32_t nshards = 1) {
  ClusterParams p;
  p.nclients = 2;
  p.nshards = nshards;
  p.array.ndisks = 2;
  p.array.disk.total_blocks = 1 << 20;
  p.metadata_disk.total_blocks = 1 << 20;
  p.journal.region_blocks = 1 << 16;
  p.client.mode = mode;
  p.client.chunk_blocks = 1024;
  return p;
}

// A small-file churn driver (no fsync: the crash window stays wide open).
Process churn(Simulation& sim, client::ClientFs& fs, int nfiles,
              std::uint32_t nbytes) {
  for (int i = 0; i < nfiles; ++i) {
    auto cfut = fs.create(net::kRootDir, "crash_f" + std::to_string(i));
    const auto id = co_await cfut;
    if (id == net::kInvalidFile) continue;
    auto wfut = fs.write(id, 0, nbytes);
    (void)co_await wfut;
    co_await sim.delay(SimTime::millis(2));
  }
}

// Crash the cluster at `crash_at` and check the invariant on every shard.
ConsistencyReport crash_and_check(CommitMode mode, SimTime crash_at,
                                  std::uint32_t nshards = 1) {
  Cluster c(crash_cluster(mode, nshards));
  c.start();
  for (std::size_t i = 0; i < c.nclients(); ++i) {
    c.sim().spawn(churn(c.sim(), c.client(i), 60, 16384));
  }
  c.sim().run_until(crash_at);  // <- the crash: nothing after this runs
  return check_consistency(c);
}

class CrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrashSweep, SyncCommitAlwaysConsistent) {
  const auto report =
      crash_and_check(CommitMode::kSync, SimTime::millis(GetParam()));
  EXPECT_TRUE(report.consistent())
      << report.inconsistent_blocks << " bad blocks of "
      << report.blocks_checked;
}

TEST_P(CrashSweep, DelayedCommitAlwaysConsistent) {
  const auto report =
      crash_and_check(CommitMode::kDelayed, SimTime::millis(GetParam()));
  EXPECT_TRUE(report.consistent())
      << report.inconsistent_blocks << " bad blocks of "
      << report.blocks_checked;
}

TEST_P(CrashSweep, DelayedCommitConsistentAcrossShards) {
  // Same invariant on a 4-shard metadata cluster: independently flushed
  // shard journals must never leave any shard's metadata ahead of data.
  const auto report = crash_and_check(CommitMode::kDelayed,
                                      SimTime::millis(GetParam()), 4);
  EXPECT_TRUE(report.consistent())
      << report.inconsistent_blocks << " bad blocks of "
      << report.blocks_checked;
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, CrashSweep,
                         ::testing::Values(3, 7, 20, 50, 120, 300, 800));

TEST(CrashConsistency, DelayedCommitActuallyCommitsSomething) {
  // Guard against a vacuous pass: by late crash points, commits exist.
  const auto report =
      crash_and_check(CommitMode::kDelayed, SimTime::millis(800));
  EXPECT_GT(report.commits_checked, 0u);
  EXPECT_GT(report.blocks_checked, 0u);
}

TEST(CrashConsistency, UnorderedModeViolatesInvariant) {
  // The broken mode sends the commit before the data is durable; some
  // crash point must catch metadata ahead of its data.
  bool violated = false;
  for (int ms : {3, 5, 8, 12, 20, 35, 60, 100}) {
    const auto report =
        crash_and_check(CommitMode::kUnordered, SimTime::millis(ms));
    if (!report.consistent()) {
      violated = true;
      break;
    }
  }
  EXPECT_TRUE(violated)
      << "unordered commits never outran their data — model too forgiving";
}

TEST(CrashConsistency, OrphanGcReclaimsAllSpace) {
  // Two shards: GC must stay shard-local (each shard frees into its own
  // partition) while the cluster-wide accounting still closes.
  Cluster c(crash_cluster(CommitMode::kDelayed, 2));
  c.start();
  for (std::size_t i = 0; i < c.nclients(); ++i) {
    c.sim().spawn(churn(c.sim(), c.client(i), 40, 16384));
  }
  c.sim().run_until(SimTime::millis(60));  // crash mid-churn

  const auto free_blocks = [&c] {
    std::uint64_t n = 0;
    for (std::uint32_t s = 0; s < c.nshards(); ++s) {
      n += c.space(s).free_blocks();
    }
    return n;
  };
  const auto before_free = free_blocks();
  const auto report = collect_orphans(c);
  const auto after_free = free_blocks();

  // GC freed exactly what it reports, and every allocator stays valid.
  EXPECT_EQ(after_free - before_free, report.provisional_blocks_freed +
                                          report.delegated_blocks_reclaimed);
  std::uint64_t committed = 0;
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < c.nshards(); ++s) {
    EXPECT_TRUE(c.space(s).validate());
    EXPECT_EQ(c.mds(s).provisional_extent_count(), 0u);
    EXPECT_TRUE(c.mds(s).grants().empty());
    for (const auto& [id, ino] : c.mds(s).ns().inodes()) {
      (void)id;
      for (const auto& e : ino.all_extents()) committed += e.nblocks;
    }
    total += c.space(s).total_blocks();
  }

  // Accounting closes: free space + committed extents == total.
  EXPECT_EQ(after_free + committed, total);
}

TEST(CrashConsistency, GcOnCleanShutdownReclaimsDelegationsOnly) {
  Cluster c(crash_cluster(CommitMode::kDelayed));
  c.start();
  bool done = false;
  c.sim().spawn([](Simulation& sim, Cluster& cl, bool& out) -> Process {
    auto& fs = cl.client(0);
    auto cfut = fs.create(net::kRootDir, "clean");
    const auto id = co_await cfut;
    auto wfut = fs.write(id, 0, 16384);
    (void)co_await wfut;
    auto sfut = fs.fsync(id);
    (void)co_await sfut;
    (void)sim;
    out = true;
  }(c.sim(), c, done));
  c.sim().run_until(c.sim().now() + SimTime::seconds(30));
  ASSERT_TRUE(done);

  const auto report = collect_orphans(c);
  EXPECT_EQ(report.provisional_extents_freed, 0u);  // everything committed
  EXPECT_GT(report.delegated_chunks_reclaimed, 0u);
  EXPECT_TRUE(c.space().validate());
  // The committed file's blocks survived GC.
  const auto check = check_consistency(c);
  EXPECT_TRUE(check.consistent());
  EXPECT_GT(check.blocks_checked, 0u);
}

}  // namespace
}  // namespace redbud::core
