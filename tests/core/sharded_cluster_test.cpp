// End-to-end tests of the multi-shard metadata cluster: files spread over
// shards, ids carry their shard tag, every shard's space partition stays
// disjoint, reads round-trip, and whole-cluster consistency checking and
// orphan GC work across shards.
//
// Coroutine test notes: gtest ASSERT_* expands to a plain `return`, which
// is ill-formed in a coroutine — tests use EXPECT_* plus explicit
// `co_return` guards.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/recovery.hpp"

namespace redbud::core {
namespace {

using client::CommitMode;
using net::Status;
using redbud::sim::Process;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

ClusterParams sharded_cluster(std::uint32_t nshards, CommitMode mode) {
  ClusterParams p;
  p.nclients = 2;
  p.nshards = nshards;
  p.array.ndisks = 2;
  p.array.disk.total_blocks = 1 << 20;
  p.metadata_disk.total_blocks = 1 << 20;
  p.journal.region_blocks = 1 << 16;
  p.client.mode = mode;
  p.client.chunk_blocks = 1024;
  return p;
}

template <typename F>
void run_in_cluster(Cluster& c, F body) {
  auto ref = c.sim().spawn(body(c));
  c.sim().run_until(c.sim().now() + SimTime::seconds(600));
  c.sim().check_failures();
  ASSERT_TRUE(ref.done()) << "cluster body did not finish in sim time";
}

// Create, write, fsync, read-verify `nfiles` files; record their ids.
Process churn_verify(Cluster& cl, int nfiles, std::vector<net::FileId>* ids,
                     bool* ok) {
  auto& fs = cl.client(0);
  bool all_ok = true;
  for (int i = 0; i < nfiles; ++i) {
    auto cfut = fs.create(net::kRootDir, "sh_f" + std::to_string(i));
    const net::FileId id = co_await cfut;
    EXPECT_NE(id, net::kInvalidFile);
    if (id == net::kInvalidFile) {
      all_ok = false;
      continue;
    }
    ids->push_back(id);
    auto wfut = fs.write(id, 0, 16384);
    const Status ws = co_await wfut;
    EXPECT_EQ(ws, Status::kOk);
    auto sfut = fs.fsync(id);
    (void)co_await sfut;
    auto rfut = fs.read(id, 0, 16384);
    auto rr = co_await rfut;
    EXPECT_EQ(rr.status, Status::kOk);
    for (std::uint64_t b = 0; b < rr.tokens.size(); ++b) {
      all_ok = all_ok && rr.tokens[b] == fs.expected_token(id, b);
    }
  }
  *ok = all_ok;
}

TEST(ShardedCluster, FilesSpreadAcrossShardsAndRoundTrip) {
  Cluster c(sharded_cluster(4, CommitMode::kDelayed));
  ASSERT_EQ(c.nshards(), 4u);
  c.start();
  std::vector<net::FileId> ids;
  bool ok = false;
  run_in_cluster(c, [&](Cluster& cl) {
    return churn_verify(cl, 40, &ids, &ok);
  });
  EXPECT_TRUE(ok);
  ASSERT_EQ(ids.size(), 40u);

  // Ids carry the shard that minted them, and more than one shard minted.
  std::set<std::uint32_t> shards_used;
  for (const auto id : ids) {
    const auto s = net::shard_of_id(id);
    ASSERT_LT(s, c.nshards());
    shards_used.insert(s);
    EXPECT_NE(c.mds(s).ns().inode(id), nullptr)
        << "file " << id << " missing on its home shard " << s;
  }
  EXPECT_GE(shards_used.size(), 2u)
      << "40 root-directory files all landed on one shard";

  // Each shard served commits for its own files only.
  for (std::uint32_t s = 0; s < c.nshards(); ++s) {
    for (const auto& rec : c.mds(s).durable_commits()) {
      EXPECT_EQ(net::shard_of_id(rec.file), s);
    }
  }
}

TEST(ShardedCluster, ShardSpacePartitionsAreDisjoint) {
  Cluster c(sharded_cluster(4, CommitMode::kDelayed));
  c.start();
  std::vector<net::FileId> ids;
  bool ok = false;
  run_in_cluster(c, [&](Cluster& cl) {
    return churn_verify(cl, 30, &ids, &ok);
  });
  EXPECT_TRUE(ok);

  // Every committed extent of shard s falls inside s's device slice.
  const std::uint64_t span = c.params().array.disk.total_blocks / c.nshards();
  for (std::uint32_t s = 0; s < c.nshards(); ++s) {
    const std::uint64_t lo = std::uint64_t(s) * span;
    const std::uint64_t hi = lo + span;
    for (const auto& [id, ino] : c.mds(s).ns().inodes()) {
      (void)id;
      for (const auto& e : ino.all_extents()) {
        EXPECT_GE(e.addr.block, lo);
        EXPECT_LE(e.addr.block + e.nblocks, hi);
      }
    }
    EXPECT_TRUE(c.space(s).validate());
  }
}

TEST(ShardedCluster, WholeClusterConsistencyAndGc) {
  Cluster c(sharded_cluster(4, CommitMode::kDelayed));
  c.start();
  for (std::size_t i = 0; i < c.nclients(); ++i) {
    c.sim().spawn([](Cluster& cl, std::size_t ci) -> Process {
      auto& fs = cl.client(ci);
      for (int f = 0; f < 40; ++f) {
        auto cfut = fs.create(
            net::kRootDir, "gc_c" + std::to_string(ci) + "_" +
                               std::to_string(f));
        const auto id = co_await cfut;
        if (id == net::kInvalidFile) continue;
        auto wfut = fs.write(id, 0, 16384);
        (void)co_await wfut;
        co_await cl.sim().delay(SimTime::millis(2));
      }
    }(c, i));
  }
  c.sim().run_until(SimTime::millis(80));  // crash mid-churn

  // Ordered writes hold on every shard.
  const auto report = check_consistency(c);
  EXPECT_TRUE(report.consistent())
      << report.inconsistent_blocks << " bad blocks of "
      << report.blocks_checked;
  EXPECT_GT(report.commits_checked, 0u);

  // Cluster-wide GC: frees exactly what it reports, across all shards.
  std::uint64_t before_free = 0;
  for (std::uint32_t s = 0; s < c.nshards(); ++s) {
    before_free += c.space(s).free_blocks();
  }
  const auto gc = collect_orphans(c);
  std::uint64_t after_free = 0;
  for (std::uint32_t s = 0; s < c.nshards(); ++s) {
    after_free += c.space(s).free_blocks();
    EXPECT_TRUE(c.space(s).validate());
    EXPECT_EQ(c.mds(s).provisional_extent_count(), 0u);
    EXPECT_TRUE(c.mds(s).grants().empty());
  }
  EXPECT_EQ(after_free - before_free,
            gc.provisional_blocks_freed + gc.delegated_blocks_reclaimed);
}

TEST(ShardedCluster, SingleShardMatchesSingularAccessors) {
  // The compatibility contract: shard-0 aliases are the whole service on
  // a one-shard cluster.
  Cluster c(sharded_cluster(1, CommitMode::kDelayed));
  EXPECT_EQ(c.nshards(), 1u);
  EXPECT_EQ(&c.mds(), &c.mds(0));
  EXPECT_EQ(&c.journal(), &c.journal(0));
  EXPECT_EQ(&c.space(), &c.space(0));
  EXPECT_EQ(&c.mds_endpoint(), &c.mds_endpoint(0));
  c.start();
  std::vector<net::FileId> ids;
  bool ok = false;
  run_in_cluster(c, [&](Cluster& cl) {
    return churn_verify(cl, 5, &ids, &ok);
  });
  EXPECT_TRUE(ok);
  // Untagged ids, exactly as a pre-sharding cluster minted them.
  for (const auto id : ids) EXPECT_EQ(net::shard_of_id(id), 0u);
}

}  // namespace
}  // namespace redbud::core
