// ShardMap routing-policy tests: single-shard identity, deterministic
// routing, id-tag round trips, and reasonable spread of one directory's
// entries across shards (the dirfrag striping property).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/shard_map.hpp"

namespace redbud::core {
namespace {

TEST(ShardMap, SingleShardRoutesEverythingToZero) {
  ShardMap m(1);
  EXPECT_EQ(m.nshards(), 1u);
  for (net::DirId dir : {net::kRootDir, net::DirId(7), net::DirId(123456)}) {
    EXPECT_EQ(m.shard_of_dir(dir), 0u);
    EXPECT_EQ(m.shard_of_name(dir, "a"), 0u);
    EXPECT_EQ(m.shard_of_name(dir, "some_longer_name.dat"), 0u);
  }
  // Untagged ids (shard 0 mints ids with tag 0).
  EXPECT_EQ(m.shard_of_file(1), 0u);
  EXPECT_EQ(m.shard_of_file(0xFFFFFF), 0u);
  EXPECT_EQ(ShardMap::id_tag(0), 0u);
}

TEST(ShardMap, RoutingIsDeterministicAcrossInstances) {
  ShardMap a(8);
  ShardMap b(8);
  for (int i = 0; i < 200; ++i) {
    const std::string name = "f" + std::to_string(i * 37);
    EXPECT_EQ(a.shard_of_name(net::kRootDir, name),
              b.shard_of_name(net::kRootDir, name));
  }
  EXPECT_EQ(a.shard_of_dir(42), b.shard_of_dir(42));
}

TEST(ShardMap, IdTagRoundTrips) {
  for (std::uint32_t s : {0u, 1u, 3u, 7u, 200u}) {
    const std::uint64_t id = ShardMap::id_tag(s) | 12345u;
    EXPECT_EQ(net::shard_of_id(id), s);
  }
  // kInvalidFile's tag (0xFF) stays outside the valid shard range.
  EXPECT_EQ(net::shard_of_id(net::kInvalidFile), net::kMaxShards);
}

TEST(ShardMap, ShardOfFileReadsTheTag) {
  ShardMap m(4);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(m.shard_of_file(ShardMap::id_tag(s) | 99), s);
  }
}

TEST(ShardMap, OneDirectoryStripesAcrossAllShards) {
  // The simulated workloads hammer a single directory; its entries must
  // not serialise on the home shard.
  const std::uint32_t n = 4;
  ShardMap m(n);
  std::vector<int> hits(n, 0);
  const int names = 400;
  for (int i = 0; i < names; ++i) {
    const auto s = m.shard_of_name(net::kRootDir, "wf" + std::to_string(i));
    ASSERT_LT(s, n);
    ++hits[s];
  }
  for (std::uint32_t s = 0; s < n; ++s) {
    // Loose bound: an even split is 100 each; demand at least a quarter
    // of that so only a grossly skewed hash fails.
    EXPECT_GT(hits[s], names / int(n) / 4)
        << "shard " << s << " starved: " << hits[s] << "/" << names;
  }
}

TEST(ShardMap, DifferentDirectoriesGetDifferentHomes) {
  // Not a hard guarantee per pair, but over many dirs all shards appear.
  const std::uint32_t n = 4;
  ShardMap m(n);
  std::vector<int> hits(n, 0);
  for (std::uint64_t d = 1; d <= 64; ++d) ++hits[m.shard_of_dir(d)];
  for (std::uint32_t s = 0; s < n; ++s) EXPECT_GT(hits[s], 0);
}

}  // namespace
}  // namespace redbud::core
