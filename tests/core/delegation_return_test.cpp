// Cluster-level integration tests of the delegation-return path:
//
//  * RPC level — a client returns the unused tail of a delegated chunk;
//    the MDS frees it, shrinks the covering grant, and a later delegation
//    hands the very same blocks back out (best-fit picks the exact hole);
//  * client-driven — small delegation chunks force double-space-pool
//    swaps, whose leftovers flow back as DelegateReturn RPCs observable
//    in the shard endpoint's per-op statistics.
#include <gtest/gtest.h>

#include <string>

#include "core/recovery.hpp"

namespace redbud::core {
namespace {

using client::CommitMode;
using net::Status;
using redbud::sim::Process;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

// Deterministic allocator: one disk, one AG, best-fit placement — a
// returned tail is exactly re-handed by the next delegation of its size.
ClusterParams delegation_cluster() {
  ClusterParams p;
  p.nclients = 1;
  p.array.ndisks = 1;
  p.array.disk.total_blocks = 1 << 20;
  p.metadata_disk.total_blocks = 1 << 20;
  p.journal.region_blocks = 1 << 16;
  p.space.ags_per_device = 1;
  p.space.within_ag = mds::AllocPolicy::kBestFit;
  p.client.mode = CommitMode::kDelayed;
  p.client.chunk_blocks = 1024;
  return p;
}

template <typename F>
void run_in_cluster(Cluster& c, F body) {
  auto ref = c.sim().spawn(body(c));
  c.sim().run_until(c.sim().now() + SimTime::seconds(600));
  c.sim().check_failures();
  ASSERT_TRUE(ref.done()) << "cluster body did not finish in sim time";
}

TEST(DelegationReturn, ReturnedTailIsReHandedOnNextDelegation) {
  Cluster c(delegation_cluster());
  c.start();
  run_in_cluster(c, [](Cluster& cl) -> Process {
    auto& ep = cl.client(0).endpoint();
    auto& mds_ep = cl.mds_endpoint();

    // Delegate a 256-block chunk.
    auto f1 = ep.call(mds_ep, net::DelegateReq{256});
    const auto r1 = std::get<net::DelegateResp>(co_await f1);
    EXPECT_EQ(r1.status, Status::kOk);
    EXPECT_EQ(r1.nblocks, 256u);
    if (r1.status != Status::kOk) co_return;

    // Return the unused 128-block tail.
    const storage::PhysAddr tail{r1.start.device, r1.start.block + 128};
    auto f2 = ep.call(mds_ep, net::DelegateReturnReq{tail, 128});
    const auto r2 = std::get<net::DelegateResp>(co_await f2);
    EXPECT_EQ(r2.status, Status::kOk);

    // The covering grant shrank to the kept half.
    EXPECT_EQ(cl.mds().grants().size(), 1u);
    if (!cl.mds().grants().empty()) {
      EXPECT_EQ(cl.mds().grants()[0].extent.nblocks, 128u);
      EXPECT_EQ(cl.mds().grants()[0].extent.addr.block, r1.start.block);
    }

    // A fresh 128-block delegation gets exactly the returned blocks:
    // best-fit prefers the 128-block hole over the large free region.
    auto f3 = ep.call(mds_ep, net::DelegateReq{128});
    const auto r3 = std::get<net::DelegateResp>(co_await f3);
    EXPECT_EQ(r3.status, Status::kOk);
    EXPECT_EQ(r3.start.device, tail.device);
    EXPECT_EQ(r3.start.block, tail.block);
    EXPECT_EQ(r3.nblocks, 128u);
    EXPECT_EQ(cl.mds().grants().size(), 2u);
  });
}

TEST(DelegationReturn, ReturningWholeGrantDropsIt) {
  Cluster c(delegation_cluster());
  c.start();
  run_in_cluster(c, [](Cluster& cl) -> Process {
    auto& ep = cl.client(0).endpoint();
    auto& mds_ep = cl.mds_endpoint();
    auto f1 = ep.call(mds_ep, net::DelegateReq{64});
    const auto r1 = std::get<net::DelegateResp>(co_await f1);
    EXPECT_EQ(r1.status, Status::kOk);
    const auto free_before = cl.space().free_blocks();

    auto f2 = ep.call(mds_ep, net::DelegateReturnReq{r1.start, r1.nblocks});
    const auto r2 = std::get<net::DelegateResp>(co_await f2);
    EXPECT_EQ(r2.status, Status::kOk);
    EXPECT_TRUE(cl.mds().grants().empty());
    EXPECT_EQ(cl.space().free_blocks(), free_before + 64);

    // Returning something never granted is rejected as stale.
    auto f3 = ep.call(
        mds_ep, net::DelegateReturnReq{{0, 1 << 19}, 16});
    const auto r3 = std::get<net::DelegateResp>(co_await f3);
    EXPECT_EQ(r3.status, Status::kStale);
  });
}

TEST(DelegationReturn, PoolSwapsSendReturnsVisibleInPerOpStats) {
  // Small chunks whose size the write pattern does not divide: each pool
  // retirement leaves a 4-block leftover that must travel back to the
  // granting shard as a DelegateReturn RPC.
  auto params = delegation_cluster();
  params.nshards = 2;
  params.client.chunk_blocks = 64;
  Cluster c(params);
  c.start();
  run_in_cluster(c, [](Cluster& cl) -> Process {
    auto& fs = cl.client(0);
    for (int i = 0; i < 60; ++i) {
      auto cfut = fs.create(net::kRootDir, "dl_f" + std::to_string(i));
      const auto id = co_await cfut;
      EXPECT_NE(id, net::kInvalidFile);
      if (id == net::kInvalidFile) continue;
      // 6 blocks: 10 allocations fill 60 of 64, leaving a leftover tail.
      auto wfut = fs.write(id, 0, 6 * storage::kBlockSize);
      const auto ws = co_await wfut;
      EXPECT_EQ(ws, Status::kOk);
      auto sfut = fs.fsync(id);
      (void)co_await sfut;
    }
  });

  std::uint64_t swaps = 0;
  for (std::uint32_t s = 0; s < c.nshards(); ++s) {
    swaps += c.client(0).space_pool(s).swaps();
  }
  EXPECT_GT(swaps, 0u) << "write pattern never retired a pool chunk";

  // The shard endpoints saw the returns (per-op RPC statistics).
  std::uint64_t returns_seen = 0;
  for (std::uint32_t s = 0; s < c.nshards(); ++s) {
    const auto& stats = c.mds_endpoint(s).op_stats();
    if (auto it = stats.find("delegate_return"); it != stats.end()) {
      returns_seen += it->second.received;
    }
  }
  EXPECT_GT(returns_seen, 0u);

  // And the books still balance under cluster-wide recovery.
  const auto report = check_consistency(c);
  EXPECT_TRUE(report.consistent());
  (void)collect_orphans(c);
  for (std::uint32_t s = 0; s < c.nshards(); ++s) {
    EXPECT_TRUE(c.space(s).validate());
  }
}

}  // namespace
}  // namespace redbud::core
