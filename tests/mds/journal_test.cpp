// Tests for the metadata journal's group commit behaviour.
#include <gtest/gtest.h>

#include "mds/journal.hpp"

namespace redbud::mds {
namespace {

using redbud::sim::Process;
using redbud::sim::SimTime;
using redbud::sim::Simulation;
using storage::Disk;
using storage::DiskParams;
using storage::IoScheduler;

struct Rig {
  Simulation sim;
  Disk disk;
  IoScheduler sched;
  Journal journal;

  Rig()
      : disk(sim,
             [] {
               DiskParams p;
               p.total_blocks = 1 << 20;
               return p;
             }()),
        sched(sim, disk, storage::SchedulerParams{}),
        journal(sim, sched, JournalParams{0, 1 << 18}) {
    sched.start();
    journal.start();
  }
};

TEST(Journal, AppendBecomesDurable) {
  Rig rig;
  bool durable = false;
  rig.sim.spawn([](Simulation&, Rig& r, bool& out) -> Process {
    co_await r.journal.append(128);
    out = true;
  }(rig.sim, rig, durable));
  rig.sim.run();
  EXPECT_TRUE(durable);
  EXPECT_EQ(rig.journal.records_appended(), 1u);
  EXPECT_EQ(rig.journal.flushes(), 1u);
}

TEST(Journal, GroupCommitBatchesConcurrentAppends) {
  Rig rig;
  int done = 0;
  // One append starts a flush; the rest arrive while the disk is busy and
  // must share the next flush.
  for (int i = 0; i < 10; ++i) {
    rig.sim.spawn([](Simulation&, Rig& r, int& d) -> Process {
      co_await r.journal.append(128);
      ++d;
    }(rig.sim, rig, done));
  }
  rig.sim.run();
  EXPECT_EQ(done, 10);
  EXPECT_LE(rig.journal.flushes(), 2u);
  EXPECT_GE(rig.journal.records_per_flush(), 5.0);
}

TEST(Journal, SequentialAppendsFlushIndividually) {
  Rig rig;
  rig.sim.spawn([](Simulation&, Rig& r) -> Process {
    for (int i = 0; i < 5; ++i) co_await r.journal.append(128);
  }(rig.sim, rig));
  rig.sim.run();
  EXPECT_EQ(rig.journal.flushes(), 5u);
}

TEST(Journal, JournalWritesAreSequentialOnDisk) {
  Rig rig;
  rig.disk.trace().set_enabled(true);
  rig.sim.spawn([](Simulation&, Rig& r) -> Process {
    for (int i = 0; i < 4; ++i) co_await r.journal.append(8192);
  }(rig.sim, rig));
  rig.sim.run();
  const auto& ev = rig.disk.trace().events();
  ASSERT_EQ(ev.size(), 4u);
  // After the first positioning seek, appends stream sequentially.
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_EQ(ev[i].seek_distance, 0) << "flush " << i;
  }
}

TEST(Journal, WrapsAtRegionEnd) {
  Rig rig;
  rig.disk.trace().set_enabled(true);
  // Region of 4 blocks; each append needs 2 blocks.
  Journal j(rig.sim, rig.sched, JournalParams{1000, 4});
  j.start();
  rig.sim.spawn([](Simulation&, Journal& jj) -> Process {
    for (int i = 0; i < 3; ++i) co_await jj.append(8192);
  }(rig.sim, j));
  rig.sim.run();
  const auto& ev = rig.disk.trace().events();
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_EQ(ev[0].block, 1000u);
  EXPECT_EQ(ev[1].block, 1002u);
  EXPECT_EQ(ev[2].block, 1000u);  // wrapped
}

TEST(Journal, BytesFlushedRoundsToBlocks) {
  Rig rig;
  rig.sim.spawn([](Simulation&, Rig& r) -> Process {
    co_await r.journal.append(100);  // < one block
  }(rig.sim, rig));
  rig.sim.run();
  EXPECT_EQ(rig.journal.bytes_flushed(), storage::kBlockSize);
}

}  // namespace
}  // namespace redbud::mds
