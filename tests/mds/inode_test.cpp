// Tests for inode extent maps and the namespace.
#include <gtest/gtest.h>

#include "mds/inode.hpp"

namespace redbud::mds {
namespace {

using net::Extent;

Extent ext(std::uint64_t file_block, std::uint32_t n, std::uint64_t phys,
           std::uint32_t dev = 0) {
  return Extent{file_block, n, {dev, phys}};
}

TEST(Inode, ApplyCommitMapsExtentsAndSize) {
  Inode ino(1);
  ino.apply_commit({ext(0, 8, 100)}, 32768);
  EXPECT_EQ(ino.size_bytes(), 32768u);
  EXPECT_EQ(ino.version(), 1u);
  auto got = ino.lookup(0, 8);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], ext(0, 8, 100));
  EXPECT_TRUE(ino.validate());
}

TEST(Inode, SizeNeverShrinksOnCommit) {
  Inode ino(1);
  ino.apply_commit({ext(0, 8, 100)}, 32768);
  ino.apply_commit({ext(0, 1, 200)}, 4096);
  EXPECT_EQ(ino.size_bytes(), 32768u);
}

TEST(Inode, LookupTrimsToRequestedRange) {
  Inode ino(1);
  ino.apply_commit({ext(0, 16, 100)}, 65536);
  auto got = ino.lookup(4, 4);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].file_block, 4u);
  EXPECT_EQ(got[0].nblocks, 4u);
  EXPECT_EQ(got[0].addr.block, 104u);
}

TEST(Inode, LookupSkipsHoles) {
  Inode ino(1);
  ino.apply_commit({ext(0, 4, 100), ext(8, 4, 200)}, 49152);
  auto got = ino.lookup(0, 12);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].file_block, 0u);
  EXPECT_EQ(got[1].file_block, 8u);
  EXPECT_TRUE(ino.lookup(4, 4).empty());
}

TEST(Inode, OverwriteReplacesFully) {
  Inode ino(1);
  ino.apply_commit({ext(0, 8, 100)}, 32768);
  ino.apply_commit({ext(0, 8, 500)}, 32768);
  auto got = ino.lookup(0, 8);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].addr.block, 500u);
  EXPECT_EQ(ino.extent_count(), 1u);
  EXPECT_TRUE(ino.validate());
}

TEST(Inode, OverwriteSplitsOldExtent) {
  Inode ino(1);
  ino.apply_commit({ext(0, 12, 100)}, 49152);
  // Overwrite the middle third.
  ino.apply_commit({ext(4, 4, 900)}, 49152);
  auto got = ino.lookup(0, 12);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], ext(0, 4, 100));
  EXPECT_EQ(got[1], ext(4, 4, 900));
  EXPECT_EQ(got[2], ext(8, 4, 108));  // physical address follows the split
  EXPECT_TRUE(ino.validate());
}

TEST(Inode, OverwriteTrimsHeadAndTailNeighbours) {
  Inode ino(1);
  ino.apply_commit({ext(0, 4, 100), ext(4, 4, 200)}, 32768);
  // Straddles the boundary of both extents.
  ino.apply_commit({ext(2, 4, 900)}, 32768);
  auto got = ino.lookup(0, 8);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], ext(0, 2, 100));
  EXPECT_EQ(got[1], ext(2, 4, 900));
  EXPECT_EQ(got[2], ext(6, 2, 202));
  EXPECT_TRUE(ino.validate());
}

TEST(Inode, AppendGrowsExtentList) {
  Inode ino(1);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ino.apply_commit({ext(i * 4, 4, 100 + i * 4)}, (i + 1) * 4 * 4096);
  }
  EXPECT_EQ(ino.extent_count(), 10u);
  EXPECT_EQ(ino.size_bytes(), 40u * 4096u);
  EXPECT_EQ(ino.version(), 10u);
  EXPECT_TRUE(ino.validate());
}

TEST(Namespace, CreateLookupRemove) {
  Namespace ns;
  const auto id = ns.create(net::kRootDir, "a.txt");
  ASSERT_NE(id, net::kInvalidFile);
  EXPECT_EQ(ns.lookup(net::kRootDir, "a.txt"), id);
  EXPECT_EQ(ns.file_count(), 1u);
  auto extents = ns.remove(net::kRootDir, "a.txt");
  ASSERT_TRUE(extents.has_value());
  EXPECT_TRUE(extents->empty());
  EXPECT_EQ(ns.lookup(net::kRootDir, "a.txt"), std::nullopt);
  EXPECT_EQ(ns.file_count(), 0u);
}

TEST(Namespace, DuplicateCreateFails) {
  Namespace ns;
  ASSERT_NE(ns.create(net::kRootDir, "x"), net::kInvalidFile);
  EXPECT_EQ(ns.create(net::kRootDir, "x"), net::kInvalidFile);
}

TEST(Namespace, SameNameInDifferentDirs) {
  Namespace ns;
  const auto d1 = ns.make_dir(net::kRootDir, "d1");
  const auto d2 = ns.make_dir(net::kRootDir, "d2");
  const auto f1 = ns.create(d1, "f");
  const auto f2 = ns.create(d2, "f");
  ASSERT_NE(f1, net::kInvalidFile);
  ASSERT_NE(f2, net::kInvalidFile);
  EXPECT_NE(f1, f2);
}

TEST(Namespace, RemoveReturnsExtentsForFreeing) {
  Namespace ns;
  const auto id = ns.create(net::kRootDir, "data");
  ns.inode(id)->apply_commit({ext(0, 8, 100)}, 32768);
  auto extents = ns.remove(net::kRootDir, "data");
  ASSERT_TRUE(extents.has_value());
  ASSERT_EQ(extents->size(), 1u);
  EXPECT_EQ((*extents)[0], ext(0, 8, 100));
  EXPECT_EQ(ns.inode(id), nullptr);
}

TEST(Namespace, RemoveMissingReturnsNullopt) {
  Namespace ns;
  EXPECT_EQ(ns.remove(net::kRootDir, "ghost"), std::nullopt);
}

}  // namespace
}  // namespace redbud::mds
