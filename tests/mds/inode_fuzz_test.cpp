// Randomized differential test for the inode extent map: arbitrary
// commit sequences (appends, overwrites, straddles, splits) are applied
// both to the Inode and to a naive per-block reference model; lookups
// must agree exactly.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "mds/inode.hpp"
#include "sim/random.hpp"

namespace redbud::mds {
namespace {

using net::Extent;

struct FuzzCase {
  std::uint64_t seed;
  int commits;
  std::uint64_t file_blocks;  // logical file size bound, in blocks
  std::uint32_t max_extent;
};

class InodeFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(InodeFuzz, MatchesPerBlockReferenceModel) {
  const auto c = GetParam();
  sim::Rng rng(c.seed);
  Inode ino(1);
  // Reference: logical block -> physical address.
  std::map<std::uint64_t, storage::PhysAddr> ref;

  std::uint64_t next_phys = 0;
  for (int i = 0; i < c.commits; ++i) {
    // Build one commit of 1..3 extents.
    std::vector<Extent> extents;
    const int next = 1 + int(rng.next_below(3));
    for (int e = 0; e < next; ++e) {
      Extent x;
      x.file_block = rng.next_below(c.file_blocks);
      x.nblocks = static_cast<std::uint32_t>(1 + rng.next_below(c.max_extent));
      x.addr.device = static_cast<std::uint32_t>(rng.next_below(4));
      x.addr.block = next_phys;
      next_phys += x.nblocks + 8;
      extents.push_back(x);
    }
    ino.apply_commit(extents, 0);
    for (const auto& x : extents) {
      for (std::uint32_t k = 0; k < x.nblocks; ++k) {
        ref[x.file_block + k] =
            storage::PhysAddr{x.addr.device, x.addr.block + k};
      }
    }
    ASSERT_TRUE(ino.validate()) << "commit " << i;

    // Probe a few random ranges for agreement.
    for (int probe = 0; probe < 8; ++probe) {
      const auto lo = rng.next_below(c.file_blocks);
      const auto len =
          static_cast<std::uint32_t>(1 + rng.next_below(c.max_extent * 2));
      const auto got = ino.lookup(lo, len);
      // Flatten the result for block-level comparison.
      std::map<std::uint64_t, storage::PhysAddr> flat;
      for (const auto& x : got) {
        for (std::uint32_t k = 0; k < x.nblocks; ++k) {
          flat[x.file_block + k] =
              storage::PhysAddr{x.addr.device, x.addr.block + k};
        }
      }
      for (std::uint64_t b = lo; b < lo + len; ++b) {
        auto rit = ref.find(b);
        auto fit = flat.find(b);
        if (rit == ref.end()) {
          ASSERT_EQ(fit, flat.end()) << "phantom mapping at block " << b;
        } else {
          ASSERT_NE(fit, flat.end()) << "missing mapping at block " << b;
          ASSERT_EQ(fit->second, rit->second) << "wrong mapping at " << b;
        }
      }
    }
  }

  // Full-range final agreement, and extent count sanity: a fully mapped
  // file of N blocks can never need more than N extents.
  const auto all = ino.all_extents();
  std::uint64_t mapped = 0;
  for (const auto& x : all) mapped += x.nblocks;
  EXPECT_EQ(mapped, ref.size());
  EXPECT_LE(all.size(), ref.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InodeFuzz,
    ::testing::Values(FuzzCase{11, 300, 64, 8},    // dense overwrite churn
                      FuzzCase{12, 300, 1024, 16},  // moderate density
                      FuzzCase{13, 150, 32, 32},    // extents >> file span
                      FuzzCase{14, 500, 256, 4},    // many small commits
                      FuzzCase{15, 300, 4096, 64}));  // sparse big file

}  // namespace
}  // namespace redbud::mds
