// B+ tree unit and property tests. The property suite drives the tree
// with randomized insert/erase/query mixes and cross-checks every answer
// against std::map while validating structural invariants.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "mds/btree.hpp"
#include "sim/random.hpp"

namespace redbud::mds {
namespace {

TEST(BPlusTree, EmptyTree) {
  BPlusTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.find(1), std::nullopt);
  EXPECT_EQ(t.lower_bound(0), std::nullopt);
  EXPECT_EQ(t.floor(100), std::nullopt);
  EXPECT_EQ(t.min(), std::nullopt);
  EXPECT_EQ(t.max(), std::nullopt);
  EXPECT_TRUE(t.validate());
}

TEST(BPlusTree, InsertAndFind) {
  BPlusTree t;
  EXPECT_TRUE(t.insert(5, 50));
  EXPECT_TRUE(t.insert(3, 30));
  EXPECT_TRUE(t.insert(8, 80));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.find(5), 50u);
  EXPECT_EQ(t.find(3), 30u);
  EXPECT_EQ(t.find(8), 80u);
  EXPECT_EQ(t.find(4), std::nullopt);
  EXPECT_TRUE(t.validate());
}

TEST(BPlusTree, DuplicateInsertRejected) {
  BPlusTree t;
  EXPECT_TRUE(t.insert(7, 1));
  EXPECT_FALSE(t.insert(7, 2));
  EXPECT_EQ(t.find(7), 1u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BPlusTree, UpdateExisting) {
  BPlusTree t;
  EXPECT_TRUE(t.insert(7, 1));
  EXPECT_TRUE(t.update(7, 99));
  EXPECT_EQ(t.find(7), 99u);
  EXPECT_FALSE(t.update(8, 1));
}

TEST(BPlusTree, EraseLeafEntries) {
  BPlusTree t;
  for (std::uint64_t k = 0; k < 10; ++k) EXPECT_TRUE(t.insert(k, k * 10));
  EXPECT_TRUE(t.erase(5));
  EXPECT_FALSE(t.erase(5));
  EXPECT_EQ(t.find(5), std::nullopt);
  EXPECT_EQ(t.size(), 9u);
  EXPECT_TRUE(t.validate());
}

TEST(BPlusTree, SplitsGrowHeight) {
  BPlusTree t;
  for (std::uint64_t k = 0; k < 1000; ++k) EXPECT_TRUE(t.insert(k, k));
  EXPECT_GT(t.height(), 1u);
  EXPECT_TRUE(t.validate());
  for (std::uint64_t k = 0; k < 1000; ++k) EXPECT_EQ(t.find(k), k);
}

TEST(BPlusTree, ReverseInsertOrder) {
  BPlusTree t;
  for (std::uint64_t k = 1000; k > 0; --k) EXPECT_TRUE(t.insert(k, k));
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.min()->first, 1u);
  EXPECT_EQ(t.max()->first, 1000u);
}

TEST(BPlusTree, EraseEverythingShrinksToEmpty) {
  BPlusTree t;
  for (std::uint64_t k = 0; k < 500; ++k) EXPECT_TRUE(t.insert(k, k));
  for (std::uint64_t k = 0; k < 500; ++k) EXPECT_TRUE(t.erase(k));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 1u);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_TRUE(t.validate());
}

TEST(BPlusTree, LowerBoundSemantics) {
  BPlusTree t;
  for (std::uint64_t k = 10; k <= 100; k += 10) EXPECT_TRUE(t.insert(k, k));
  EXPECT_EQ(t.lower_bound(0)->first, 10u);
  EXPECT_EQ(t.lower_bound(10)->first, 10u);
  EXPECT_EQ(t.lower_bound(11)->first, 20u);
  EXPECT_EQ(t.lower_bound(95)->first, 100u);
  EXPECT_EQ(t.lower_bound(100)->first, 100u);
  EXPECT_EQ(t.lower_bound(101), std::nullopt);
}

TEST(BPlusTree, FloorSemantics) {
  BPlusTree t;
  for (std::uint64_t k = 10; k <= 100; k += 10) EXPECT_TRUE(t.insert(k, k));
  EXPECT_EQ(t.floor(9), std::nullopt);
  EXPECT_EQ(t.floor(10)->first, 10u);
  EXPECT_EQ(t.floor(11)->first, 10u);
  EXPECT_EQ(t.floor(99)->first, 90u);
  EXPECT_EQ(t.floor(1000)->first, 100u);
}

TEST(BPlusTree, FloorAcrossLeafBoundaries) {
  // Enough keys that leaves split; probe floors between every pair.
  BPlusTree t;
  for (std::uint64_t k = 0; k < 300; ++k) EXPECT_TRUE(t.insert(k * 3, k));
  for (std::uint64_t probe = 1; probe < 900; ++probe) {
    auto f = t.floor(probe);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->first, probe - probe % 3);
  }
}

TEST(BPlusTree, ItemsEnumerateInOrder) {
  BPlusTree t;
  sim::Rng rng(99);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 500; ++i) {
    const auto k = rng.next_below(100000);
    if (t.insert(k, k + 1)) keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  const auto items = t.items();
  ASSERT_EQ(items.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(items[i].first, keys[i]);
    EXPECT_EQ(items[i].second, keys[i] + 1);
  }
}

// --- randomized differential property tests --------------------------------

struct FuzzCase {
  std::uint64_t seed;
  std::uint64_t key_space;
  int ops;
};

class BPlusTreeFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(BPlusTreeFuzz, MatchesStdMapUnderRandomOps) {
  const auto p = GetParam();
  sim::Rng rng(p.seed);
  BPlusTree t;
  std::map<std::uint64_t, std::uint64_t> ref;

  for (int i = 0; i < p.ops; ++i) {
    const auto k = rng.next_below(p.key_space);
    switch (rng.next_below(4)) {
      case 0: {  // insert
        const bool did = t.insert(k, i);
        EXPECT_EQ(did, ref.emplace(k, std::uint64_t(i)).second);
        break;
      }
      case 1: {  // erase
        EXPECT_EQ(t.erase(k), ref.erase(k) > 0);
        break;
      }
      case 2: {  // find
        auto got = t.find(k);
        auto it = ref.find(k);
        if (it == ref.end()) {
          EXPECT_EQ(got, std::nullopt);
        } else {
          EXPECT_EQ(got, it->second);
        }
        break;
      }
      default: {  // lower_bound + floor
        auto got = t.lower_bound(k);
        auto it = ref.lower_bound(k);
        if (it == ref.end()) {
          EXPECT_EQ(got, std::nullopt);
        } else {
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(got->first, it->first);
          EXPECT_EQ(got->second, it->second);
        }
        auto flr = t.floor(k);
        auto uit = ref.upper_bound(k);
        if (uit == ref.begin()) {
          EXPECT_EQ(flr, std::nullopt);
        } else {
          ASSERT_TRUE(flr.has_value());
          EXPECT_EQ(flr->first, std::prev(uit)->first);
        }
        break;
      }
    }
    EXPECT_EQ(t.size(), ref.size());
  }
  EXPECT_TRUE(t.validate());
  // Final full-order comparison.
  const auto items = t.items();
  ASSERT_EQ(items.size(), ref.size());
  auto rit = ref.begin();
  for (const auto& [k, v] : items) {
    EXPECT_EQ(k, rit->first);
    EXPECT_EQ(v, rit->second);
    ++rit;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BPlusTreeFuzz,
    ::testing::Values(FuzzCase{1, 50, 3000},       // dense: heavy rebalance
                      FuzzCase{2, 1000, 5000},     // moderate density
                      FuzzCase{3, 1 << 30, 5000},  // sparse: mostly inserts
                      FuzzCase{4, 200, 10000},     // long churn
                      FuzzCase{5, 10, 2000}));     // tiny key space

TEST(BPlusTree, ValidateAfterEveryRebalanceShape) {
  // Sequential fill then targeted erase patterns that exercise borrow-left,
  // borrow-right and merge paths near node boundaries.
  for (int pattern = 0; pattern < 3; ++pattern) {
    BPlusTree t;
    for (std::uint64_t k = 0; k < 200; ++k) ASSERT_TRUE(t.insert(k, k));
    switch (pattern) {
      case 0:  // front-to-back
        for (std::uint64_t k = 0; k < 200; ++k) {
          ASSERT_TRUE(t.erase(k));
          ASSERT_TRUE(t.validate()) << "pattern 0 at " << k;
        }
        break;
      case 1:  // back-to-front
        for (std::uint64_t k = 200; k-- > 0;) {
          ASSERT_TRUE(t.erase(k));
          ASSERT_TRUE(t.validate()) << "pattern 1 at " << k;
        }
        break;
      default:  // inside-out
        for (std::uint64_t i = 0; i < 200; ++i) {
          const std::uint64_t k =
              i % 2 == 0 ? 100 + i / 2 : 99 - i / 2;
          ASSERT_TRUE(t.erase(k));
          ASSERT_TRUE(t.validate()) << "pattern 2 at " << k;
        }
        break;
    }
    EXPECT_TRUE(t.empty());
  }
}

}  // namespace
}  // namespace redbud::mds
