// Integration tests for the MDS server: full RPC round trips against a
// simulated metadata disk and network.
#include <gtest/gtest.h>

#include <memory>

#include "mds/mds_server.hpp"

namespace redbud::mds {
namespace {

using net::RequestBody;
using net::ResponseBody;
using net::Status;
using redbud::sim::Process;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

struct Rig {
  Simulation sim;
  net::Network network;
  net::NodeId client_node, mds_node;
  net::RpcEndpoint client, mds_ep;
  storage::Disk meta_disk;
  storage::IoScheduler meta_sched;
  Journal journal;
  SpaceManager space;
  MdsServer mds;

  explicit Rig(MdsParams mp = {})
      : network(sim, net::NetworkParams{}),
        client_node(network.add_node()),
        mds_node(network.add_node()),
        client(sim, network, client_node),
        mds_ep(sim, network, mds_node),
        meta_disk(sim,
                  [] {
                    storage::DiskParams p;
                    p.total_blocks = 1 << 20;
                    return p;
                  }()),
        meta_sched(sim, meta_disk, storage::SchedulerParams{}),
        journal(sim, meta_sched, JournalParams{0, 1 << 18}),
        space(2, 1 << 18, SpaceManagerParams{}),
        mds(sim, mds_ep, space, journal, mp) {
    meta_sched.start();
    journal.start();
    mds.start();
  }

  // Run a single call to completion and return the response.
  ResponseBody call(RequestBody req) {
    ResponseBody out;
    sim.spawn([](Simulation&, Rig& r, RequestBody rq,
                 ResponseBody& o) -> Process {
      auto fut = r.client.call(r.mds_ep, std::move(rq));
      o = co_await fut;
    }(sim, *this, std::move(req), out));
    sim.run_until(sim.now() + SimTime::seconds(10));
    return out;
  }
};

TEST(MdsServer, CreateLookupStat) {
  Rig rig;
  auto cr = std::get<net::CreateResp>(rig.call(net::CreateReq{net::kRootDir, "f"}));
  ASSERT_EQ(cr.status, Status::kOk);

  auto lr = std::get<net::LookupResp>(rig.call(net::LookupReq{net::kRootDir, "f"}));
  EXPECT_EQ(lr.status, Status::kOk);
  EXPECT_EQ(lr.file, cr.file);

  auto sr = std::get<net::StatResp>(rig.call(net::StatReq{cr.file}));
  EXPECT_EQ(sr.status, Status::kOk);
  EXPECT_EQ(sr.size_bytes, 0u);
}

TEST(MdsServer, DuplicateCreateReturnsExists) {
  Rig rig;
  (void)rig.call(net::CreateReq{net::kRootDir, "dup"});
  auto cr = std::get<net::CreateResp>(rig.call(net::CreateReq{net::kRootDir, "dup"}));
  EXPECT_EQ(cr.status, Status::kExists);
}

TEST(MdsServer, LayoutGetAllocatesFreshExtents) {
  Rig rig;
  auto cr = std::get<net::CreateResp>(rig.call(net::CreateReq{net::kRootDir, "f"}));
  net::LayoutGetReq lg;
  lg.file = cr.file;
  lg.file_block = 0;
  lg.nblocks = 8;
  lg.allocate = true;
  auto resp = std::get<net::LayoutGetResp>(rig.call(lg));
  ASSERT_EQ(resp.status, Status::kOk);
  std::uint64_t total = 0;
  for (const auto& e : resp.extents) total += e.nblocks;
  EXPECT_EQ(total, 8u);
  EXPECT_EQ(rig.mds.provisional_extent_count(), resp.extents.size());
  // Uncommitted: a plain read sees nothing.
  lg.allocate = false;
  auto rd = std::get<net::LayoutGetResp>(rig.call(lg));
  EXPECT_TRUE(rd.extents.empty());
}

TEST(MdsServer, RepeatedAllocatingLayoutGetIsIdempotent) {
  Rig rig;
  auto cr = std::get<net::CreateResp>(rig.call(net::CreateReq{net::kRootDir, "f"}));
  net::LayoutGetReq lg{cr.file, 0, 8, true};
  auto a = std::get<net::LayoutGetResp>(rig.call(lg));
  auto b = std::get<net::LayoutGetResp>(rig.call(lg));
  ASSERT_EQ(a.extents.size(), b.extents.size());
  EXPECT_EQ(a.extents, b.extents);
  const auto free_before = rig.space.free_blocks();
  (void)rig.call(lg);
  EXPECT_EQ(rig.space.free_blocks(), free_before);  // no double allocation
}

TEST(MdsServer, CommitPublishesExtentsAndJournals) {
  Rig rig;
  auto cr = std::get<net::CreateResp>(rig.call(net::CreateReq{net::kRootDir, "f"}));
  auto lg = std::get<net::LayoutGetResp>(
      rig.call(net::LayoutGetReq{cr.file, 0, 8, true}));

  net::CommitReq commit;
  net::CommitEntry entry;
  entry.file = cr.file;
  entry.extents = lg.extents;
  entry.new_size_bytes = 8 * storage::kBlockSize;
  commit.entries.push_back(entry);
  auto resp = std::get<net::CommitResp>(rig.call(commit));
  EXPECT_EQ(resp.status, Status::kOk);

  // Now visible to readers and durable.
  auto rd = std::get<net::LayoutGetResp>(
      rig.call(net::LayoutGetReq{cr.file, 0, 8, false}));
  std::uint64_t total = 0;
  for (const auto& e : rd.extents) total += e.nblocks;
  EXPECT_EQ(total, 8u);
  EXPECT_EQ(rig.mds.provisional_extent_count(), 0u);
  ASSERT_EQ(rig.mds.durable_commits().size(), 1u);
  EXPECT_EQ(rig.mds.durable_commits()[0].file, cr.file);
  EXPECT_GE(rig.journal.flushes(), 1u);

  auto sr = std::get<net::StatResp>(rig.call(net::StatReq{cr.file}));
  EXPECT_EQ(sr.size_bytes, 8 * storage::kBlockSize);
}

TEST(MdsServer, CompoundCommitProcessesAllEntries) {
  Rig rig;
  net::CommitReq commit;
  std::vector<net::FileId> files;
  for (int i = 0; i < 3; ++i) {
    auto cr = std::get<net::CreateResp>(
        rig.call(net::CreateReq{net::kRootDir, "f" + std::to_string(i)}));
    auto lg = std::get<net::LayoutGetResp>(
        rig.call(net::LayoutGetReq{cr.file, 0, 4, true}));
    net::CommitEntry e;
    e.file = cr.file;
    e.extents = lg.extents;
    e.new_size_bytes = 4 * storage::kBlockSize;
    commit.entries.push_back(e);
    files.push_back(cr.file);
  }
  (void)rig.call(commit);
  EXPECT_EQ(rig.mds.commit_entries_processed(), 3u);
  EXPECT_EQ(rig.mds.durable_commits().size(), 3u);
  for (auto f : files) {
    auto sr = std::get<net::StatResp>(rig.call(net::StatReq{f}));
    EXPECT_EQ(sr.size_bytes, 4 * storage::kBlockSize);
  }
}

TEST(MdsServer, DelegationGrantsContiguousChunk) {
  Rig rig;
  auto dr = std::get<net::DelegateResp>(rig.call(net::DelegateReq{4096}));
  ASSERT_EQ(dr.status, Status::kOk);
  EXPECT_EQ(dr.nblocks, 4096u);
  ASSERT_EQ(rig.mds.grants().size(), 1u);
  EXPECT_EQ(rig.mds.grants()[0].client, rig.client_node);

  // Return the unused tail.
  net::DelegateReturnReq ret;
  ret.start = {dr.start.device, dr.start.block + 1024};
  ret.nblocks = 3072;
  auto rr = std::get<net::DelegateResp>(rig.call(ret));
  EXPECT_EQ(rr.status, Status::kOk);
  ASSERT_EQ(rig.mds.grants().size(), 1u);
  EXPECT_EQ(rig.mds.grants()[0].extent.nblocks, 1024u);
}

TEST(MdsServer, FullDelegationReturnDropsGrant) {
  Rig rig;
  auto dr = std::get<net::DelegateResp>(rig.call(net::DelegateReq{1024}));
  ASSERT_EQ(dr.status, Status::kOk);
  const auto free_before = rig.space.free_blocks();
  net::DelegateReturnReq ret;
  ret.start = dr.start;
  ret.nblocks = 1024;
  (void)rig.call(ret);
  EXPECT_TRUE(rig.mds.grants().empty());
  EXPECT_EQ(rig.space.free_blocks(), free_before + 1024);
}

TEST(MdsServer, RemoveFreesNonDelegatedSpace) {
  Rig rig;
  auto cr = std::get<net::CreateResp>(rig.call(net::CreateReq{net::kRootDir, "f"}));
  auto lg = std::get<net::LayoutGetResp>(
      rig.call(net::LayoutGetReq{cr.file, 0, 16, true}));
  net::CommitReq commit;
  commit.entries.push_back(
      net::CommitEntry{cr.file, lg.extents, 16 * storage::kBlockSize, {}});
  (void)rig.call(commit);
  const auto free_before = rig.space.free_blocks();
  auto rm = std::get<net::RemoveResp>(rig.call(net::RemoveReq{net::kRootDir, "f"}));
  EXPECT_EQ(rm.status, Status::kOk);
  EXPECT_EQ(rig.space.free_blocks(), free_before + 16);
  EXPECT_TRUE(rig.space.validate());
}

TEST(MdsServer, CommitReplyPiggybacksQueueLength) {
  Rig rig;
  net::CommitReq commit;  // empty commit is fine
  auto resp = std::get<net::CommitResp>(rig.call(commit));
  // Queue empty in this serial test.
  EXPECT_EQ(resp.mds_queue_len, 0u);
}

TEST(MdsServer, StaleFileOpsFail) {
  Rig rig;
  auto lg = std::get<net::LayoutGetResp>(
      rig.call(net::LayoutGetReq{1234, 0, 4, true}));
  EXPECT_EQ(lg.status, Status::kStale);
  auto sr = std::get<net::StatResp>(rig.call(net::StatReq{1234}));
  EXPECT_EQ(sr.status, Status::kNoEnt);
  auto rm = std::get<net::RemoveResp>(rig.call(net::RemoveReq{net::kRootDir, "x"}));
  EXPECT_EQ(rm.status, Status::kNoEnt);
}

TEST(MdsServer, ManyDaemonsProcessBacklogConcurrently) {
  MdsParams one;
  one.ndaemons = 1;
  MdsParams eight;
  eight.ndaemons = 8;

  auto run_backlog = [](Rig& rig) {
    int done = 0;
    for (int i = 0; i < 40; ++i) {
      rig.sim.spawn([](Simulation&, Rig& r, int& d, int i) -> Process {
        // Two-step await: GCC 12 mishandles non-trivial temporaries
        // inside co_await expressions.
        auto fut = r.client.call(
            r.mds_ep, net::CreateReq{net::kRootDir, "f" + std::to_string(i)});
        (void)co_await fut;
        ++d;
      }(rig.sim, rig, done, i));
    }
    rig.sim.run();
    return rig.sim.now();
  };

  Rig r1(one), r8(eight);
  const auto t1 = run_backlog(r1);
  const auto t8 = run_backlog(r8);
  // More daemons overlap journal waits: the backlog drains faster.
  EXPECT_LT(t8, t1);
  EXPECT_EQ(r8.mds.rpcs_processed(), 40u);
}

}  // namespace
}  // namespace redbud::mds
