// Tests for allocation groups and the space manager.
#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "mds/space_manager.hpp"
#include "sim/random.hpp"

namespace redbud::mds {
namespace {

TEST(AllocGroup, FreshGroupIsOneFreeExtent) {
  AllocGroup ag(0, 0, 1000);
  EXPECT_EQ(ag.free_blocks(), 1000u);
  EXPECT_EQ(ag.largest_free(), 1000u);
  EXPECT_EQ(ag.fragment_count(), 1u);
  EXPECT_TRUE(ag.validate());
}

TEST(AllocGroup, NextFitAllocatesSequentially) {
  AllocGroup ag(0, 0, 1000);
  auto a = ag.alloc(10, AllocPolicy::kNextFit);
  auto b = ag.alloc(10, AllocPolicy::kNextFit);
  auto c = ag.alloc(10, AllocPolicy::kNextFit);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->offset, 0u);
  EXPECT_EQ(b->offset, 10u);
  EXPECT_EQ(c->offset, 20u);
  EXPECT_EQ(ag.free_blocks(), 970u);
  EXPECT_TRUE(ag.validate());
}

TEST(AllocGroup, BestFitPrefersSmallestHole) {
  AllocGroup ag(0, 0, 1000);
  // Carve isolated holes of size 50 (at 100) and 20 (at 300).
  auto x = ag.alloc_near(100, 0);
  auto h1 = ag.alloc_near(50, 100);
  auto y = ag.alloc_near(150, 150);
  auto h2 = ag.alloc_near(20, 300);
  auto z = ag.alloc_near(680, 320);  // pins the tail so h2 stays isolated
  ASSERT_TRUE(x && h1 && y && h2 && z);
  ag.free(h1->offset, h1->nblocks);
  ag.free(h2->offset, h2->nblocks);
  // Best fit of 15 must take the 20-block hole at 300.
  auto got = ag.alloc(15, AllocPolicy::kBestFit);
  ASSERT_TRUE(got);
  EXPECT_EQ(got->offset, 300u);
  EXPECT_TRUE(ag.validate());
}

TEST(AllocGroup, FreeCoalescesWithBothNeighbours) {
  AllocGroup ag(0, 0, 1000);
  auto a = ag.alloc(10, AllocPolicy::kNextFit);
  auto b = ag.alloc(10, AllocPolicy::kNextFit);
  auto c = ag.alloc(10, AllocPolicy::kNextFit);
  ASSERT_TRUE(a && b && c);
  ag.free(a->offset, 10);
  ag.free(c->offset, 10);  // coalesces with the free tail
  EXPECT_EQ(ag.fragment_count(), 2u);  // [0,10) and [20,1000)
  ag.free(b->offset, 10);              // bridges the two fragments
  EXPECT_EQ(ag.fragment_count(), 1u);
  EXPECT_EQ(ag.free_blocks(), 1000u);
  EXPECT_TRUE(ag.validate());
}

TEST(AllocGroup, AllocNearCarvesFromHint) {
  AllocGroup ag(0, 0, 1000);
  auto got = ag.alloc_near(10, 500);
  ASSERT_TRUE(got);
  EXPECT_EQ(got->offset, 500u);
  EXPECT_EQ(ag.fragment_count(), 2u);  // [0,500) and [510,1000)
  EXPECT_TRUE(ag.validate());
}

TEST(AllocGroup, AllocNearWrapsWhenNoSpaceAhead) {
  AllocGroup ag(0, 0, 1000);
  auto tail = ag.alloc_near(100, 900);  // consumes [900,1000)
  ASSERT_TRUE(tail);
  auto got = ag.alloc_near(50, 950);  // nothing ahead: wraps to start
  ASSERT_TRUE(got);
  EXPECT_EQ(got->offset, 0u);
  EXPECT_TRUE(ag.validate());
}

TEST(AllocGroup, ExhaustionReturnsNullopt) {
  AllocGroup ag(0, 0, 100);
  auto a = ag.alloc(100, AllocPolicy::kNextFit);
  ASSERT_TRUE(a);
  EXPECT_FALSE(ag.alloc(1, AllocPolicy::kNextFit).has_value());
  EXPECT_FALSE(ag.alloc(1, AllocPolicy::kBestFit).has_value());
  ag.free(a->offset, 100);
  EXPECT_TRUE(ag.alloc(100, AllocPolicy::kBestFit).has_value());
}

TEST(AllocGroup, TooLargeRequestFailsWithoutSideEffects) {
  AllocGroup ag(0, 0, 100);
  EXPECT_FALSE(ag.alloc(101, AllocPolicy::kBestFit).has_value());
  EXPECT_EQ(ag.free_blocks(), 100u);
  EXPECT_TRUE(ag.validate());
}

TEST(AllocGroup, RandomAllocFreeChurnKeepsInvariants) {
  sim::Rng rng(7);
  AllocGroup ag(0, 0, 1 << 16);
  std::vector<FreeExtent> held;
  for (int i = 0; i < 5000; ++i) {
    if (held.empty() || rng.bernoulli(0.6)) {
      const auto n = 1 + rng.next_below(64);
      const auto policy =
          rng.bernoulli(0.5) ? AllocPolicy::kBestFit : AllocPolicy::kNextFit;
      if (auto got = ag.alloc(n, policy)) held.push_back(*got);
    } else {
      const auto idx = rng.next_below(held.size());
      ag.free(held[idx].offset, held[idx].nblocks);
      held[idx] = held.back();
      held.pop_back();
    }
    if (i % 500 == 0) ASSERT_TRUE(ag.validate()) << "iteration " << i;
  }
  ASSERT_TRUE(ag.validate());
  for (const auto& h : held) ag.free(h.offset, h.nblocks);
  EXPECT_EQ(ag.free_blocks(), std::uint64_t(1 << 16));
  EXPECT_EQ(ag.fragment_count(), 1u);
}

TEST(SpaceManager, BuildsAgsAcrossDevices) {
  SpaceManagerParams p;
  p.ags_per_device = 4;
  SpaceManager sm(2, 8000, p);
  EXPECT_EQ(sm.ag_count(), 8u);
  EXPECT_EQ(sm.total_blocks(), 16000u);
  EXPECT_EQ(sm.free_blocks(), 16000u);
  EXPECT_TRUE(sm.validate());
}

TEST(SpaceManager, RoundRobinSpreadsAcrossAgs) {
  SpaceManagerParams p;
  p.ags_per_device = 2;
  p.across_ags = AgSelect::kRoundRobin;
  SpaceManager sm(2, 2000, p);
  std::set<std::pair<std::uint32_t, storage::BlockNo>> starts;
  for (int i = 0; i < 4; ++i) {
    auto got = sm.alloc(10);
    ASSERT_EQ(got.size(), 1u);
    starts.insert({got[0].addr.device, got[0].addr.block});
  }
  // Four allocations land in four distinct AGs.
  EXPECT_EQ(starts.size(), 4u);
}

TEST(SpaceManager, SplitsWhenNoContiguousRun) {
  SpaceManagerParams p;
  p.ags_per_device = 2;
  SpaceManager sm(1, 200, p);  // two AGs of 100 blocks
  auto big = sm.alloc(150);    // must split across AGs
  std::uint64_t total = 0;
  for (const auto& e : big) total += e.nblocks;
  EXPECT_EQ(total, 150u);
  EXPECT_GE(big.size(), 2u);
  EXPECT_EQ(sm.free_blocks(), 50u);
}

TEST(SpaceManager, AllOrNothingOnExhaustion) {
  SpaceManagerParams p;
  p.ags_per_device = 2;
  SpaceManager sm(1, 200, p);
  EXPECT_TRUE(sm.alloc(300).empty());
  EXPECT_EQ(sm.free_blocks(), 200u);  // rolled back
  EXPECT_TRUE(sm.validate());
}

TEST(SpaceManager, ContiguousAllocationForDelegation) {
  SpaceManagerParams p;
  p.ags_per_device = 2;
  SpaceManager sm(1, 2000, p);
  auto chunk = sm.alloc_contiguous(500);
  ASSERT_TRUE(chunk);
  EXPECT_EQ(chunk->nblocks, 500u);
  // Too large for any single AG (1000 each): refused even though total
  // free space suffices.
  EXPECT_FALSE(sm.alloc_contiguous(1500).has_value());
}

TEST(SpaceManager, FreeReturnsToOwningAg) {
  SpaceManagerParams p;
  p.ags_per_device = 2;
  SpaceManager sm(2, 2000, p);
  auto got = sm.alloc(64);
  ASSERT_EQ(got.size(), 1u);
  const auto before = sm.free_blocks();
  sm.free(got[0]);
  EXPECT_EQ(sm.free_blocks(), before + 64);
  EXPECT_TRUE(sm.validate());
}

TEST(SpaceManager, MostFreePolicyPicksEmptiestAg) {
  SpaceManagerParams p;
  p.ags_per_device = 2;
  p.across_ags = AgSelect::kMostFree;
  SpaceManager sm(1, 2000, p);
  auto a = sm.alloc(400);  // drains one AG partially
  ASSERT_FALSE(a.empty());
  auto b = sm.alloc(10);
  ASSERT_EQ(b.size(), 1u);
  // The second allocation must land in the other (fuller) AG.
  EXPECT_NE(b[0].addr.block / 1000, a[0].addr.block / 1000);
}

}  // namespace
}  // namespace redbud::mds
