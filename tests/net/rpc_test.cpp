// Tests for RPC endpoints: request/reply matching, compound sizing, load
// signals.
#include <gtest/gtest.h>

#include "net/rpc.hpp"

namespace redbud::net {
namespace {

using redbud::sim::Process;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

struct Rig {
  Simulation sim;
  Network net;
  NodeId client_node, server_node;
  RpcEndpoint client, server;

  Rig()
      : net(sim, NetworkParams{}),
        client_node(net.add_node()),
        server_node(net.add_node()),
        client(sim, net, client_node),
        server(sim, net, server_node) {}

  // Echo server: replies to every stat request with a fixed size.
  void spawn_echo_server(SimTime service_time = SimTime::micros(50)) {
    sim.spawn([](Simulation& s, RpcEndpoint& srv, SimTime svc) -> Process {
      for (;;) {
        IncomingRpc rpc = co_await srv.incoming().recv();
        co_await s.delay(svc);
        StatResp resp;
        resp.size_bytes = 4242;
        srv.reply(rpc, resp);
      }
    }(sim, server, service_time));
  }
};

TEST(Rpc, CallRoundTripDeliversResponse) {
  Rig rig;
  rig.spawn_echo_server();
  std::uint64_t got = 0;
  rig.sim.spawn([](Simulation&, Rig& r, std::uint64_t& out) -> Process {
    auto fut = r.client.call(r.server, StatReq{7});
    auto resp = co_await fut;
    out = std::get<StatResp>(resp).size_bytes;
  }(rig.sim, rig, got));
  rig.sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(got, 4242u);
  EXPECT_EQ(rig.client.calls_sent(), 1u);
  EXPECT_EQ(rig.server.calls_received(), 1u);
}

TEST(Rpc, ConcurrentCallsMatchById) {
  Rig rig;
  // Server replies out of order: echoes the file id, but delays the first
  // request longer.
  rig.sim.spawn([](Simulation& s, RpcEndpoint& srv) -> Process {
    IncomingRpc first = co_await srv.incoming().recv();
    IncomingRpc second = co_await srv.incoming().recv();
    StatResp r2;
    r2.size_bytes = std::get<StatReq>(second.body).file;
    srv.reply(second, r2);
    co_await s.delay(SimTime::millis(5));
    StatResp r1;
    r1.size_bytes = std::get<StatReq>(first.body).file;
    srv.reply(first, r1);
  }(rig.sim, rig.server));
  std::uint64_t a = 0, b = 0;
  rig.sim.spawn([](Simulation&, Rig& r, std::uint64_t& out) -> Process {
    auto fut = r.client.call(r.server, StatReq{111});
    auto resp = co_await fut;
    out = std::get<StatResp>(resp).size_bytes;
  }(rig.sim, rig, a));
  rig.sim.spawn([](Simulation&, Rig& r, std::uint64_t& out) -> Process {
    auto fut = r.client.call(r.server, StatReq{222});
    auto resp = co_await fut;
    out = std::get<StatResp>(resp).size_bytes;
  }(rig.sim, rig, b));
  rig.sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(a, 111u);
  EXPECT_EQ(b, 222u);
}

TEST(Rpc, RttReflectsServiceTime) {
  Rig rig;
  rig.spawn_echo_server(SimTime::millis(10));
  rig.sim.spawn([](Simulation&, Rig& r) -> Process {
    auto fut = r.client.call(r.server, StatReq{1});
    (void)co_await fut;
  }(rig.sim, rig));
  rig.sim.run_until(SimTime::seconds(1));
  EXPECT_GE(rig.client.mean_rtt(), SimTime::millis(10));
  EXPECT_LT(rig.client.mean_rtt(), SimTime::millis(20));
}

TEST(Rpc, IncomingDepthVisibleToServer) {
  Rig rig;
  // No server loop: requests pile up.
  for (int i = 0; i < 5; ++i) {
    (void)rig.client.call(rig.server, StatReq{std::uint64_t(i)});
  }
  rig.sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(rig.server.incoming_depth(), 5u);
}

TEST(WireSize, CompoundCommitGrowsWithEntriesAndExtents) {
  CommitReq one;
  one.entries.push_back(CommitEntry{1, {Extent{0, 8, {0, 100}}}, 32768});
  CommitReq three = one;
  three.entries.push_back(CommitEntry{2, {Extent{0, 8, {0, 200}}}, 32768});
  three.entries.push_back(CommitEntry{3, {Extent{0, 8, {0, 300}}}, 32768});
  const auto s1 = wire_size(RequestBody{one});
  const auto s3 = wire_size(RequestBody{three});
  EXPECT_GT(s3, s1);
  // Compounding three into one RPC is cheaper than three separate RPCs
  // once headers are included.
  EXPECT_LT(s3 + kRpcHeaderBytes, 3 * (s1 + kRpcHeaderBytes));
}

TEST(WireSize, NfsWriteCarriesPayload) {
  NfsWriteReq w;
  w.nbytes = 32768;
  EXPECT_GT(wire_size(RequestBody{w}), 32768u);
  NfsReadResp r;
  r.tokens.assign(8, 1);
  EXPECT_GT(wire_size(ResponseBody{r}), 8 * storage::kBlockSize - 1);
}

TEST(WireSize, OpNames) {
  EXPECT_STREQ(op_name(RequestBody{CommitReq{}}), "commit");
  EXPECT_STREQ(op_name(RequestBody{LayoutGetReq{}}), "layout_get");
  EXPECT_STREQ(op_name(RequestBody{NfsWriteReq{}}), "nfs_write");
}

}  // namespace
}  // namespace redbud::net
