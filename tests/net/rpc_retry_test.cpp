// Tests for at-least-once RPC: exponential backoff retransmission, retry
// budget exhaustion, server-side dedup + reply cache, and the death
// contract for retry schedules that violate the network's RTT floor.
#include <gtest/gtest.h>

#include "net/rpc.hpp"

namespace redbud::net {
namespace {

using redbud::sim::Process;
using redbud::sim::SimTime;
using redbud::sim::Simulation;

struct Rig {
  Simulation sim;
  Network net;
  NodeId client_node, server_node;
  RpcEndpoint client, server;

  Rig()
      : net(sim, NetworkParams{}),
        client_node(net.add_node()),
        server_node(net.add_node()),
        client(sim, net, client_node),
        server(sim, net, server_node) {}

  void spawn_echo_server(SimTime service_time = SimTime::micros(50)) {
    sim.spawn([](Simulation& s, RpcEndpoint& srv, SimTime svc) -> Process {
      for (;;) {
        IncomingRpc rpc = co_await srv.incoming().recv();
        co_await s.delay(svc);
        StatResp resp;
        resp.size_bytes = 4242;
        srv.reply(rpc, resp);
      }
    }(sim, server, service_time));
  }
};

TEST(RpcRetry, BackoffLadderThenExhaustionSurfacesError) {
  Rig rig;
  rig.server.set_down(true);  // every attempt evaporates at the dark NIC
  RetryPolicy policy;
  policy.timeout = SimTime::millis(5);
  policy.backoff = 2.0;
  policy.max_timeout = SimTime::millis(20);
  policy.max_attempts = 4;

  bool resolved = false;
  RpcResult res;
  SimTime resolved_at;
  rig.sim.spawn([](Simulation& s, Rig& r, RetryPolicy pol, bool* done,
                   RpcResult* out, SimTime* at) -> Process {
    auto fut = r.client.call_retry(r.server, StatReq{7}, pol);
    *out = co_await fut;
    *at = s.now();
    *done = true;
  }(rig.sim, rig, policy, &resolved, &res, &resolved_at));
  rig.sim.run_until(SimTime::seconds(1));

  ASSERT_TRUE(resolved) << "exhausted retry calls must still resolve";
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.attempts, 4u);
  // Transmissions at 0, 5, 15, 35 ms (5 -> 10 -> 20 -> capped 20); the
  // last timeout fires at exactly 55 ms.
  EXPECT_EQ(resolved_at, SimTime::millis(55));
  EXPECT_EQ(rig.client.retries_sent(), 3u);
  EXPECT_EQ(rig.client.retries_exhausted(), 1u);
  EXPECT_EQ(rig.server.calls_received(), 0u);
  EXPECT_EQ(rig.server.dropped_while_down(), 4u);
}

TEST(RpcRetry, RecoveredServerAnswersALaterAttempt) {
  Rig rig;
  rig.spawn_echo_server();
  rig.server.set_down(true);
  // The host comes back mid-ladder: attempts at 0 and 5 ms die, the 15 ms
  // retransmission is served normally.
  rig.sim.call_at(SimTime::millis(12),
                  [&rig] { rig.server.set_down(false); });
  RetryPolicy policy;
  policy.max_attempts = 5;

  RpcResult res;
  rig.sim.spawn([](Simulation&, Rig& r, RetryPolicy pol,
                   RpcResult* out) -> Process {
    auto fut = r.client.call_retry(r.server, StatReq{7}, pol);
    *out = co_await fut;
  }(rig.sim, rig, policy, &res));
  rig.sim.run_until(SimTime::seconds(1));

  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 3u);
  EXPECT_EQ(std::get<StatResp>(res.body).size_bytes, 4242u);
  EXPECT_EQ(rig.server.calls_received(), 1u);  // executed exactly once
  EXPECT_EQ(rig.server.dropped_while_down(), 2u);
}

TEST(RpcRetry, LostReplyIsServedFromTheReplyCache) {
  Rig rig;
  rig.spawn_echo_server();
  // Lose the server's reply (request delivered fine), then heal the link
  // before the retransmission arrives: the server must answer the dup
  // from its reply cache without re-executing.
  rig.sim.call_at(SimTime::micros(60), [&rig] {
    rig.net.set_link_loss(rig.server_node, 1.0);
  });
  rig.sim.call_at(SimTime::millis(4), [&rig] {
    rig.net.set_link_loss(rig.server_node, 0.0);
  });
  RetryPolicy policy;

  RpcResult res;
  rig.sim.spawn([](Simulation&, Rig& r, RetryPolicy pol,
                   RpcResult* out) -> Process {
    auto fut = r.client.call_retry(r.server, StatReq{7}, pol);
    *out = co_await fut;
  }(rig.sim, rig, policy, &res));
  rig.sim.run_until(SimTime::seconds(1));

  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 2u);
  EXPECT_EQ(rig.server.calls_received(), 1u);  // no second execution
  EXPECT_EQ(rig.server.dup_replies_served(), 1u);
  EXPECT_EQ(rig.net.link_dropped(rig.server_node), 1u);
}

TEST(RpcRetry, RetransmitOfAnInflightRequestIsDropped) {
  Rig rig;
  // Service slower than the first timeout: the retransmission arrives
  // while the original is still executing and must be swallowed by the
  // in-flight dedup set; the eventual reply answers the one caller.
  rig.spawn_echo_server(SimTime::millis(8));
  RetryPolicy policy;
  policy.max_attempts = 3;

  RpcResult res;
  rig.sim.spawn([](Simulation&, Rig& r, RetryPolicy pol,
                   RpcResult* out) -> Process {
    auto fut = r.client.call_retry(r.server, StatReq{7}, pol);
    *out = co_await fut;
  }(rig.sim, rig, policy, &res));
  rig.sim.run_until(SimTime::seconds(1));

  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 2u);
  EXPECT_EQ(rig.server.calls_received(), 1u);
  EXPECT_EQ(rig.server.dup_requests_dropped(), 1u);
  EXPECT_EQ(rig.client.late_replies(), 0u);
}

TEST(RpcRetry, CallResultWrapsASingleShotCall) {
  Rig rig;
  rig.spawn_echo_server();
  RpcResult res;
  rig.sim.spawn([](Simulation&, Rig& r, RpcResult* out) -> Process {
    auto fut = r.client.call_result(r.server, StatReq{7});
    *out = co_await fut;
  }(rig.sim, rig, &res));
  rig.sim.run_until(SimTime::seconds(1));
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 1u);
  EXPECT_EQ(std::get<StatResp>(res.body).size_bytes, 4242u);
  EXPECT_EQ(rig.client.retries_sent(), 0u);
}

TEST(RpcRetryDeath, TimeoutBelowTheLookaheadFloorAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // A first timeout below the fabric's min RTT (which also bounds the
  // parallel kernel's lookahead window) could never observe a reply;
  // call_retry refuses the schedule outright.
  EXPECT_DEATH(
      {
        Rig rig;
        RetryPolicy policy;
        policy.timeout = SimTime::micros(10);  // min_rtt is 80 us
        (void)rig.client.call_retry(rig.server, StatReq{1}, policy);
      },
      "lookahead");
}

TEST(RpcRetryDeath, ZeroAttemptBudgetAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Rig rig;
        RetryPolicy policy;
        policy.max_attempts = 0;
        (void)rig.client.call_retry(rig.server, StatReq{1}, policy);
      },
      "zero attempts");
}

}  // namespace
}  // namespace redbud::net
